// Command docscheck enforces the repository's documentation
// invariants, so CI can fail on documentation rot the way it fails on
// broken code:
//
//   - every intra-repo markdown link (and image) resolves to an
//     existing file or directory;
//   - every Go package — root, internal/..., cmd/..., examples/... —
//     carries a package comment ("// Package xxx ..." or a command
//     comment on package main).
//
// Usage:
//
//	docscheck            # check the current directory tree
//	docscheck -root dir  # check another tree
package main

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"net/url"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// skipDirs are trees that hold no sources or docs of ours.
var skipDirs = map[string]bool{".git": true, "out": true, "testdata": true}

func main() {
	root := flag.String("root", ".", "repository root to check")
	flag.Parse()
	var problems []string
	problems = append(problems, checkMarkdownLinks(*root)...)
	problems = append(problems, checkPackageComments(*root)...)
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: ok")
}

// mdLink matches inline markdown links and images: [text](target) and
// ![alt](target), leaving reference-style definitions alone.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// checkMarkdownLinks resolves every relative link in every .md file.
func checkMarkdownLinks(root string) []string {
	var problems []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if skipDirs[d.Name()] {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		// Fenced code blocks show link-like syntax in examples; skip them.
		for _, m := range mdLink.FindAllStringSubmatch(stripCodeFences(string(data)), -1) {
			target := m[1]
			if u, err := url.Parse(target); err == nil && u.Scheme != "" {
				continue // external: http, https, mailto, ...
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue // pure fragment: same-file anchor
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems,
					fmt.Sprintf("%s: broken link %q (%s does not exist)", path, m[1], resolved))
			}
		}
		return nil
	})
	if err != nil {
		problems = append(problems, fmt.Sprintf("walking %s: %v", root, err))
	}
	return problems
}

// stripCodeFences blanks ``` fenced blocks so example snippets inside
// them are not treated as live links.
func stripCodeFences(s string) string {
	var out strings.Builder
	fenced := false
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			fenced = !fenced
			out.WriteString("\n")
			continue
		}
		if fenced {
			out.WriteString("\n")
			continue
		}
		out.WriteString(line)
		out.WriteString("\n")
	}
	return out.String()
}

// checkPackageComments requires a package comment in every directory
// holding non-test Go files.
func checkPackageComments(root string) []string {
	var problems []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if skipDirs[d.Name()] {
			return filepath.SkipDir
		}
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, path, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
		for name, pkg := range pkgs {
			if strings.HasSuffix(name, "_test") {
				continue
			}
			documented := false
			for _, f := range pkg.Files {
				if f.Doc != nil {
					documented = true
					break
				}
			}
			if !documented {
				problems = append(problems,
					fmt.Sprintf("%s: package %s has no package comment", path, name))
			}
		}
		return nil
	})
	if err != nil {
		problems = append(problems, fmt.Sprintf("walking %s: %v", root, err))
	}
	return problems
}
