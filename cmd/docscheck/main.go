// Command docscheck enforces the repository's documentation
// invariants, so CI can fail on documentation rot the way it fails on
// broken code:
//
//   - every intra-repo markdown link (and image) resolves to an
//     existing file or directory;
//   - every Go package — root, internal/..., cmd/..., examples/... —
//     carries a package comment ("// Package xxx ..." or a command
//     comment on package main);
//   - in the contract packages (see docDepthDirs), every exported
//     top-level identifier — funcs, methods, types, consts, vars —
//     carries a doc comment. Those packages are the performance and
//     streaming surface documented by docs/PERFORMANCE.md and
//     docs/STREAMING.md, and an undocumented export there is
//     documentation rot;
//   - every experiment in experiments.Registry() has its own section
//     heading in docs/EXPERIMENTS.md, so a runner cannot land without
//     its documentation;
//   - every flag cmd/damaris-bench defines is mentioned in README.md,
//     so the CLI reference cannot drift behind the binary;
//   - every docs/*.md file is reachable from README.md by following
//     intra-repo markdown links, so a document cannot exist without a
//     path readers can actually find;
//   - every Makefile `smoke-*` target names a registered experiment id
//     (optionally suffixed `-<mode>`, like smoke-e6-cross), so the CI
//     smoke matrix cannot drift behind the registry.
//
// Usage:
//
//	docscheck            # check the current directory tree
//	docscheck -root dir  # check another tree
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"net/url"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"repro/internal/experiments"
)

// skipDirs are trees that hold no sources or docs of ours.
var skipDirs = map[string]bool{".git": true, "out": true, "testdata": true}

func main() {
	root := flag.String("root", ".", "repository root to check")
	flag.Parse()
	var problems []string
	problems = append(problems, checkMarkdownLinks(*root)...)
	problems = append(problems, checkPackageComments(*root)...)
	problems = append(problems, checkExportedDocs(*root)...)
	problems = append(problems, checkExperimentDocs(*root)...)
	problems = append(problems, checkBenchFlags(*root)...)
	problems = append(problems, checkDocsReachable(*root)...)
	problems = append(problems, checkSmokeTargets(*root)...)
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: ok")
}

// mdLink matches inline markdown links and images: [text](target) and
// ![alt](target), leaving reference-style definitions alone.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// checkMarkdownLinks resolves every relative link in every .md file.
func checkMarkdownLinks(root string) []string {
	var problems []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if skipDirs[d.Name()] {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		// Fenced code blocks show link-like syntax in examples; skip them.
		for _, m := range mdLink.FindAllStringSubmatch(stripCodeFences(string(data)), -1) {
			target := m[1]
			if u, err := url.Parse(target); err == nil && u.Scheme != "" {
				continue // external: http, https, mailto, ...
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue // pure fragment: same-file anchor
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems,
					fmt.Sprintf("%s: broken link %q (%s does not exist)", path, m[1], resolved))
			}
		}
		return nil
	})
	if err != nil {
		problems = append(problems, fmt.Sprintf("walking %s: %v", root, err))
	}
	return problems
}

// stripCodeFences blanks ``` fenced blocks so example snippets inside
// them are not treated as live links.
func stripCodeFences(s string) string {
	var out strings.Builder
	fenced := false
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			fenced = !fenced
			out.WriteString("\n")
			continue
		}
		if fenced {
			out.WriteString("\n")
			continue
		}
		out.WriteString(line)
		out.WriteString("\n")
	}
	return out.String()
}

// docDepthDirs are the packages held to the stricter standard: every
// exported top-level identifier must carry a doc comment. These are
// the hot-path packages reworked by the performance pass (see
// docs/PERFORMANCE.md) plus the streaming/in-situ surface documented
// by docs/STREAMING.md — their exported surface is the contract the
// benchmarks, the pooling rules and the subscriber API hang off.
var docDepthDirs = []string{
	"internal/des",
	"internal/core",
	"internal/buf",
	"internal/storage",
	"internal/cluster",
	"internal/insitu",
	"internal/visitsim",
	"cmd/benchcompare",
	"cmd/benchjson",
}

// checkExportedDocs flags exported top-level declarations without doc
// comments in the docDepthDirs packages. A const/var group documents
// all its names with one group comment, matching godoc's rendering.
func checkExportedDocs(root string) []string {
	var problems []string
	for _, dir := range docDepthDirs {
		path := filepath.Join(root, dir)
		if _, err := os.Stat(path); err != nil {
			continue // package not present in this tree
		}
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, path, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			problems = append(problems, fmt.Sprintf("parsing %s: %v", path, err))
			continue
		}
		for _, pkg := range pkgs {
			for fname, f := range pkg.Files {
				for _, decl := range f.Decls {
					for _, p := range undocumentedExports(decl) {
						pos := fset.Position(p.pos)
						problems = append(problems, fmt.Sprintf(
							"%s:%d: exported %s %s has no doc comment",
							fname, pos.Line, p.kind, p.name))
					}
				}
			}
		}
	}
	return problems
}

// export is one undocumented exported identifier found in a decl.
type export struct {
	kind string
	name string
	pos  token.Pos
}

// undocumentedExports lists the exported names a declaration introduces
// without documentation: funcs and methods missing a doc comment, and
// specs in type/const/var groups covered by neither a spec comment nor
// the group comment.
func undocumentedExports(decl ast.Decl) []export {
	var out []export
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Name.IsExported() && d.Doc == nil {
			kind := "function"
			if d.Recv != nil {
				// Methods on unexported receivers never surface in
				// godoc; only exported receivers are held to the rule.
				if !receiverExported(d.Recv) {
					return nil
				}
				kind = "method"
			}
			out = append(out, export{kind: kind, name: d.Name.Name, pos: d.Pos()})
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && s.Doc == nil && d.Doc == nil {
					out = append(out, export{kind: "type", name: s.Name.Name, pos: s.Pos()})
				}
			case *ast.ValueSpec:
				if s.Doc != nil || d.Doc != nil {
					continue
				}
				for _, n := range s.Names {
					if n.IsExported() {
						out = append(out, export{kind: d.Tok.String(), name: n.Name, pos: n.Pos()})
					}
				}
			}
		}
	}
	return out
}

// receiverExported reports whether a method's receiver names an
// exported type (after stripping pointers and type parameters).
func receiverExported(recv *ast.FieldList) bool {
	if recv == nil || len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}

// checkExperimentDocs requires a docs/EXPERIMENTS.md section heading
// for every experiment in experiments.Registry(): a `##` heading must
// name the upper-case id as a whole word, so E1 cannot satisfy E10's
// requirement (or vice versa).
func checkExperimentDocs(root string) []string {
	path := filepath.Join(root, "docs", "EXPERIMENTS.md")
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v (required by the experiment registry)", path, err)}
	}
	var headings []string
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "##") {
			headings = append(headings, line)
		}
	}
	var problems []string
	for _, e := range experiments.Registry() {
		id := strings.ToUpper(e.ID)
		re := regexp.MustCompile(`\b` + regexp.QuoteMeta(id) + `\b`)
		found := false
		for _, h := range headings {
			if re.MatchString(h) {
				found = true
				break
			}
		}
		if !found {
			problems = append(problems, fmt.Sprintf(
				"%s: no section heading for experiment %s (%s)", path, id, e.Title))
		}
	}
	return problems
}

// checkBenchFlags requires every flag cmd/damaris-bench defines to be
// mentioned in README.md as `-name`, keeping the CLI reference in sync
// with the binary. Flags are collected from the AST — any flag.Xxx
// ("name", ...) call — so a new flag cannot land undocumented.
func checkBenchFlags(root string) []string {
	src := filepath.Join(root, "cmd", "damaris-bench", "main.go")
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, src, nil, 0)
	if err != nil {
		return []string{fmt.Sprintf("parsing %s: %v", src, err)}
	}
	var flags []string
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "flag" {
			return true
		}
		if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING {
			flags = append(flags, strings.Trim(lit.Value, `"`))
		}
		return true
	})
	readmePath := filepath.Join(root, "README.md")
	readme, err := os.ReadFile(readmePath)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v (required by the bench flag check)", readmePath, err)}
	}
	var problems []string
	for _, name := range flags {
		if !strings.Contains(string(readme), "-"+name) {
			problems = append(problems, fmt.Sprintf(
				"%s: damaris-bench flag -%s is not documented", readmePath, name))
		}
	}
	return problems
}

// checkDocsReachable walks the markdown link graph from README.md and
// requires every docs/*.md file to be reachable: a document nobody
// links to is a document nobody reads.
func checkDocsReachable(root string) []string {
	start := filepath.Join(root, "README.md")
	if _, err := os.Stat(start); err != nil {
		return []string{fmt.Sprintf("%s: %v (required by the docs reachability check)", start, err)}
	}
	visited := map[string]bool{}
	queue := []string{start}
	for len(queue) > 0 {
		path := queue[0]
		queue = queue[1:]
		abs, err := filepath.Abs(path)
		if err != nil || visited[abs] {
			continue
		}
		visited[abs] = true
		data, err := os.ReadFile(path)
		if err != nil {
			continue // broken links are checkMarkdownLinks' problem
		}
		for _, m := range mdLink.FindAllStringSubmatch(stripCodeFences(string(data)), -1) {
			target := m[1]
			if u, err := url.Parse(target); err == nil && u.Scheme != "" {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			if !strings.HasSuffix(target, ".md") {
				continue
			}
			queue = append(queue, filepath.Join(filepath.Dir(path), filepath.FromSlash(target)))
		}
	}
	var problems []string
	docs, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err != nil {
		return []string{fmt.Sprintf("globbing docs: %v", err)}
	}
	for _, doc := range docs {
		abs, err := filepath.Abs(doc)
		if err != nil {
			continue
		}
		if !visited[abs] {
			problems = append(problems, fmt.Sprintf(
				"%s: not reachable from README.md via markdown links", doc))
		}
	}
	return problems
}

// smokeTarget matches Makefile smoke-* rule definitions.
var smokeTarget = regexp.MustCompile(`(?m)^smoke-([a-z0-9-]+):`)

// checkSmokeTargets requires every Makefile smoke-* target to name a
// registered experiment id, optionally suffixed with a mode (like
// smoke-e6-cross), so a smoke rule cannot outlive — or precede — its
// experiment.
func checkSmokeTargets(root string) []string {
	path := filepath.Join(root, "Makefile")
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v (required by the smoke-target check)", path, err)}
	}
	registered := map[string]bool{}
	for _, e := range experiments.Registry() {
		registered[e.ID] = true
	}
	var problems []string
	for _, m := range smokeTarget.FindAllStringSubmatch(string(data), -1) {
		name := m[1]
		if registered[name] {
			continue
		}
		if i := strings.Index(name, "-"); i > 0 && registered[name[:i]] {
			continue // id + "-<mode>" variant
		}
		problems = append(problems, fmt.Sprintf(
			"%s: smoke target %q names no registered experiment id", path, m[0][:len(m[0])-1]))
	}
	return problems
}

// checkPackageComments requires a package comment in every directory
// holding non-test Go files.
func checkPackageComments(root string) []string {
	var problems []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if skipDirs[d.Name()] {
			return filepath.SkipDir
		}
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, path, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
		for name, pkg := range pkgs {
			if strings.HasSuffix(name, "_test") {
				continue
			}
			documented := false
			for _, f := range pkg.Files {
				if f.Doc != nil {
					documented = true
					break
				}
			}
			if !documented {
				problems = append(problems,
					fmt.Sprintf("%s: package %s has no package comment", path, name))
			}
		}
		return nil
	})
	if err != nil {
		problems = append(problems, fmt.Sprintf("walking %s: %v", root, err))
	}
	return problems
}
