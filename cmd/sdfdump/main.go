// Command sdfdump inspects SDF files (the repository's HDF5-substitute
// format): it lists groups, datasets, attributes and compression info,
// and optionally prints dataset statistics.
//
// Usage:
//
//	sdfdump file.sdf             # structure listing
//	sdfdump -stats file.sdf      # plus min/max/mean per float64 dataset
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/insitu"
	"repro/internal/sdf"
)

func main() {
	stats := flag.Bool("stats", false, "print min/max/mean for float64 datasets")
	flag.Parse()
	if flag.NArg() == 0 {
		log.Fatal("usage: sdfdump [-stats] file.sdf ...")
	}
	for _, path := range flag.Args() {
		if err := dump(path, *stats); err != nil {
			log.Fatalf("%s: %v", path, err)
		}
	}
}

func dump(path string, withStats bool) error {
	r, err := sdf.Open(path)
	if err != nil {
		return err
	}
	defer r.Close()

	fmt.Printf("%s\n", path)
	if groups := r.Groups(); len(groups) > 0 {
		fmt.Printf("  groups: %s\n", strings.Join(groups, ", "))
	}
	var raw, enc int64
	for _, d := range r.Datasets() {
		raw += d.RawSize
		enc += d.EncSize
		fmt.Printf("  %-40s %-8s dims=%v codec=%-7s %8d -> %8d bytes\n",
			d.Path, d.Type, d.Dims, d.Codec, d.RawSize, d.EncSize)
		if withStats && d.Type == "float64" {
			vals, err := r.ReadFloat64s(d.Path)
			if err != nil {
				return err
			}
			f := insitu.Field{Name: d.Path, NZ: 1, NY: 1, NX: len(vals), Data: vals}
			m := insitu.ComputeMoments(f)
			fmt.Printf("  %40s min=%.4g max=%.4g mean=%.4g std=%.4g\n",
				"", m.Min, m.Max, m.Mean, m.Std)
		}
	}
	if enc > 0 {
		fmt.Printf("  total: %d datasets, %d -> %d bytes (%.2fx)\n",
			len(r.Datasets()), raw, enc, float64(raw)/float64(enc))
	}
	return nil
}
