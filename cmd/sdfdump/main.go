// Command sdfdump inspects SDF files (the repository's HDF5-substitute
// format): it lists groups, datasets, attributes and compression info,
// and optionally prints dataset statistics. Given a directory, it
// treats it as an SDF object store (what the cluster layer's sdf
// backend writes) and prints a manifest-aware listing: per-iteration
// checkpoint manifests with their coverage, and the data objects with
// their sizes.
//
// Usage:
//
//	sdfdump file.sdf             # structure listing
//	sdfdump -stats file.sdf      # plus min/max/mean per float64 dataset
//	sdfdump out/ckpt/fail0       # object-store listing with manifests
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/cluster"
	"repro/internal/insitu"
	"repro/internal/sdf"
	"repro/internal/storage"
	"repro/internal/storage/chunk"
)

func main() {
	stats := flag.Bool("stats", false, "print min/max/mean for float64 datasets")
	flag.Parse()
	if flag.NArg() == 0 {
		log.Fatal("usage: sdfdump [-stats] file.sdf|store-dir ...")
	}
	for _, path := range flag.Args() {
		info, err := os.Stat(path)
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		if info.IsDir() {
			err = dumpStore(path)
		} else {
			err = dump(path, *stats)
		}
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
	}
}

// dumpStore lists an SDF object store: manifests first (the index a
// restart navigates by), then the remaining objects. Objects stored
// through the compression pipeline are reported with their codec and
// ratio (the frame header is self-describing), and objects stored
// through the dedup chunk store are reassembled from their recipes —
// both decoded before any manifest/batch parsing, so deduplicated,
// compressed and plain stores list alike. The content-addressed
// chunks themselves are summarized in one line rather than listed.
func dumpStore(dir string) error {
	inner, err := storage.NewSDF(nil, 1, 1e9, dir)
	if err != nil {
		return err
	}
	// The same read stack -restart-from uses: recipes reassemble,
	// frames decode, plain objects pass through untouched.
	stack := chunk.New(
		storage.NewCompressing(inner, storage.CompressionOptions{}),
		chunk.Options{})
	names, err := inner.List("")
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d objects\n", dir, len(names))
	var plain []string
	chunks, chunkBytes := 0, 0
	for _, name := range names {
		if strings.HasPrefix(name, chunk.ChunkObjectName("")) {
			chunks++
			if raw, err := inner.Get(name); err == nil {
				chunkBytes += len(raw)
			}
			continue
		}
		if !cluster.IsManifestName(name) {
			plain = append(plain, name)
			continue
		}
		data, codecNote, err := getDecoded(stack, inner, name)
		if err != nil {
			fmt.Printf("  %-44s unreadable: %v\n", name, err)
			continue
		}
		m, err := cluster.DecodeManifest(data)
		if err != nil {
			fmt.Printf("  %-44s not a manifest: %v\n", name, err)
			continue
		}
		bytes := 0
		for _, b := range m.Blocks {
			bytes += b.Bytes
		}
		status := ""
		if m.Partial {
			status = " PARTIAL"
		}
		if m.Codec != "" {
			// The manifest also records how its data object was stored.
			status += fmt.Sprintf(" data-codec=%s %d->%dB", m.Codec, m.RawBytes, m.EncodedBytes)
		}
		fmt.Printf("  %-44s job=%s root=%d it=%d covers=%d nodes blocks=%d payload=%dB%s%s\n",
			name, m.Job, m.Root, m.Iteration, len(m.Covers), len(m.Blocks), bytes, codecNote, status)
	}
	for _, name := range plain {
		data, codecNote, err := getDecoded(stack, inner, name)
		if err != nil {
			fmt.Printf("  %-44s unreadable: %v\n", name, err)
			continue
		}
		kind := "object"
		if b, err := cluster.DecodeBatch(data); err == nil {
			kind = fmt.Sprintf("batch it=%d blocks=%d", b.Iteration, len(b.Blocks))
		}
		fmt.Printf("  %-44s %s, %d bytes%s\n", name, kind, len(data), codecNote)
	}
	if chunks > 0 {
		fmt.Printf("  chunk/: %d content-addressed chunks, %d bytes stored\n", chunks, chunkBytes)
	}
	return nil
}

// getDecoded fetches one object fully decoded — reassembled from its
// chunk recipe and/or unwrapped from its compression frame as needed;
// the note describes the recipe (chunk count, raw size) and the codec
// ratio for framed objects ("" for plain ones).
func getDecoded(stack, inner storage.ObjectReader, name string) (data []byte, note string, err error) {
	raw, err := inner.Get(name)
	if err != nil {
		return nil, "", err
	}
	decoded := raw
	if storage.IsFramed(raw) {
		var h storage.FrameHeader
		decoded, h, err = storage.DecodeFrame(raw)
		if err != nil {
			return nil, "", err
		}
		note = fmt.Sprintf(" codec=%s %d->%dB (%.2fx)", h.Codec, h.RawSize, h.EncodedSize, h.Ratio())
	}
	if !chunk.IsRecipe(decoded) {
		return decoded, note, nil
	}
	refs, rawSize, err := chunk.DecodeRecipe(decoded)
	if err != nil {
		return nil, note, err
	}
	note += fmt.Sprintf(" dedup=%d chunks %dB raw", len(refs), rawSize)
	data, err = stack.Get(name)
	return data, note, err
}

func dump(path string, withStats bool) error {
	r, err := sdf.Open(path)
	if err != nil {
		return err
	}
	defer r.Close()

	fmt.Printf("%s\n", path)
	if groups := r.Groups(); len(groups) > 0 {
		fmt.Printf("  groups: %s\n", strings.Join(groups, ", "))
	}
	var raw, enc int64
	for _, d := range r.Datasets() {
		raw += d.RawSize
		enc += d.EncSize
		fmt.Printf("  %-40s %-8s dims=%v codec=%-7s %8d -> %8d bytes\n",
			d.Path, d.Type, d.Dims, d.Codec, d.RawSize, d.EncSize)
		if withStats && d.Type == "float64" {
			vals, err := r.ReadFloat64s(d.Path)
			if err != nil {
				return err
			}
			f := insitu.Field{Name: d.Path, NZ: 1, NY: 1, NX: len(vals), Data: vals}
			m := insitu.ComputeMoments(f)
			fmt.Printf("  %40s min=%.4g max=%.4g mean=%.4g std=%.4g\n",
				"", m.Min, m.Max, m.Mean, m.Std)
		}
	}
	if enc > 0 {
		fmt.Printf("  total: %d datasets, %d -> %d bytes (%.2fx)\n",
			len(r.Datasets()), raw, enc, float64(raw)/float64(enc))
	}
	return nil
}
