// Command cm1run runs the CM1 atmospheric proxy on an in-process MPI
// world with a selectable I/O approach, producing real output files —
// the executable version of the paper's primary workload.
//
// Usage:
//
//	cm1run -ranks 8 -cores-per-node 4 -io damaris -steps 20 -every 5 -out out/
//	cm1run -io fpp        # one file per rank
//	cm1run -io collective # one shared file per output phase
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"
	"sync"
	"time"

	damaris "repro"
	"repro/internal/baselines"
	"repro/internal/cm1"
	"repro/internal/compress"
	"repro/internal/mpi"
)

const configTemplate = `
<simulation name="cm1">
  <architecture><dedicated cores="1"/><buffer size="67108864"/></architecture>
  <data>
    <parameter name="nx" value="%d"/>
    <parameter name="ny" value="%d"/>
    <parameter name="nz" value="%d"/>
    <layout name="grid" type="float64" dimensions="nz,ny,nx"/>
    <variable name="theta" layout="grid" unit="K"/>
    <variable name="qv" layout="grid" unit="kg/kg"/>
    <variable name="w" layout="grid" unit="m/s"/>
  </data>
  <plugins>
    <plugin name="sdf-writer" event="end_iteration" dir="%s" codec="%s"/>
  </plugins>
</simulation>`

func main() {
	var (
		ranks   = flag.Int("ranks", 8, "MPI world size")
		perNode = flag.Int("cores-per-node", 4, "simulated cores per SMP node")
		ioMode  = flag.String("io", "damaris", "I/O approach: fpp, collective, damaris")
		steps   = flag.Int("steps", 20, "simulation time steps")
		every   = flag.Int("every", 5, "output every N steps")
		outDir  = flag.String("out", "cm1run-out", "output directory")
		codec   = flag.String("codec", "none", "damaris output codec")
		nx      = flag.Int("nx", 16, "local grid x size")
		ny      = flag.Int("ny", 16, "local grid y size")
		nz      = flag.Int("nz", 12, "local grid z size")
	)
	flag.Parse()
	if *ranks%*perNode != 0 {
		log.Fatalf("ranks (%d) must be a multiple of cores-per-node (%d)", *ranks, *perNode)
	}

	nodes := *ranks / *perNode
	var nodeRuntimes []*damaris.Node
	if *ioMode == "damaris" {
		for n := 0; n < nodes; n++ {
			xml := fmt.Sprintf(configTemplate, *nx, *ny, *nz, *outDir, *codec)
			node, err := damaris.NewNodeFromXML(xml, *perNode, damaris.Options{NodeID: n})
			if err != nil {
				log.Fatal(err)
			}
			nodeRuntimes = append(nodeRuntimes, node)
		}
	}

	var mu sync.Mutex
	var ioBlocked time.Duration
	var runErr error
	start := time.Now()

	mpi.Run(*ranks, func(c *mpi.Comm) {
		params := cm1.DefaultParams()
		params.NX, params.NY, params.NZ = *nx, *ny, *nz
		model, err := cm1.New(params, c)
		if err != nil {
			mu.Lock()
			runErr = err
			mu.Unlock()
			return
		}
		for step := 1; step <= *steps; step++ {
			model.Step()
			if step%*every != 0 {
				continue
			}
			it := step / *every
			t0 := time.Now()
			var werr error
			switch *ioMode {
			case "fpp":
				_, werr = baselines.WriteFPP(c, *outDir, "cm1", it, model.Fields())
			case "collective":
				_, werr = baselines.WriteCollective(c, *perNode, *outDir, "cm1", it, model.Fields())
			case "damaris":
				client := nodeRuntimes[c.Rank()/(*perNode)].Client(c.Rank() % *perNode)
				for _, f := range model.Fields() {
					if e := client.Write(f.Name, it, compress.Float64Bytes(f.Data)); e != nil {
						werr = e
						break
					}
				}
				client.EndIteration(it)
			default:
				werr = fmt.Errorf("unknown -io mode %q", *ioMode)
			}
			mu.Lock()
			ioBlocked += time.Since(t0)
			if werr != nil && runErr == nil {
				runErr = werr
			}
			mu.Unlock()
		}
	})
	for _, n := range nodeRuntimes {
		if err := n.Shutdown(); err != nil && runErr == nil {
			runErr = err
		}
	}
	if runErr != nil {
		log.Fatal(runErr)
	}

	files, _ := filepath.Glob(filepath.Join(*outDir, "*.sdf"))
	fmt.Printf("cm1run: %d ranks, %d steps, io=%s\n", *ranks, *steps, *ioMode)
	fmt.Printf("  wall time              %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("  simulation I/O-blocked %v\n", ioBlocked.Round(time.Millisecond))
	fmt.Printf("  output files           %d under %s\n", len(files), *outDir)
}
