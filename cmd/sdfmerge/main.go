// Command sdfmerge combines several SDF files (e.g. the per-rank files
// of a file-per-process run) into a single aggregated file — the
// post-processing step the paper's §II describes as the major issue with
// per-process output.
//
// Usage:
//
//	sdfmerge -o merged.sdf [-codec gorilla] rank0.sdf rank1.sdf ...
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/sdf"
)

func main() {
	out := flag.String("o", "merged.sdf", "output file")
	codec := flag.String("codec", "none", "re-encoding codec: none, gorilla, flate, rle")
	flag.Parse()
	if flag.NArg() == 0 {
		log.Fatal("usage: sdfmerge -o out.sdf file.sdf ...")
	}
	if err := sdf.Merge(*out, *codec, flag.Args()...); err != nil {
		log.Fatal(err)
	}
	r, err := sdf.Open(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()
	fmt.Printf("merged %d files into %s (%d datasets)\n", flag.NArg(), *out, len(r.Datasets()))
}
