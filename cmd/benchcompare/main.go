// Command benchcompare diffs two BENCH_*.json artifacts (see
// cmd/benchjson) and fails when a benchmark regressed beyond a
// threshold, so a hot-path slowdown breaks CI instead of silently
// accumulating.
//
// Usage:
//
//	benchcompare -old out/bench/BENCH_prev.json -new out/bench/BENCH_head.json
//
// Benchmarks are matched by package and name. Only the two
// throughput-bearing metrics gate the result: ns/op (lower is better)
// and MB/s (higher is better). Custom experiment metrics
// (speedup_vs_collective, compression_ratio, …) are paper-shape
// numbers, not machine performance, and are ignored here — the shape
// checks in the benchmarks themselves gate those. Benchmarks present
// in only one artifact are listed but never fail the run: renames and
// new benchmarks must not wedge CI.
//
// A missing or unparseable -old file exits 0 with a notice — the first
// run of a fresh repository has no previous artifact to compare
// against, and a corrupt baseline is no better than none. Only a bad
// -new artifact is an error: that one this run just produced.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// Benchmark mirrors cmd/benchjson's per-benchmark shape.
type Benchmark struct {
	Pkg        string             `json:"pkg"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Document mirrors cmd/benchjson's artifact shape.
type Document struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Label      string      `json:"label,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// delta is one matched benchmark's comparison on one metric.
type delta struct {
	key    string // pkg.Name
	unit   string // ns/op or MB/s
	oldVal float64
	newVal float64
	change float64 // signed fraction; positive = regression
}

func main() {
	oldPath := flag.String("old", "", "previous BENCH_*.json artifact")
	newPath := flag.String("new", "", "current BENCH_*.json artifact")
	threshold := flag.Float64("threshold", 0.10,
		"failure threshold as a fraction (0.10 = fail on >10% regression)")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchcompare: need -old and -new")
		os.Exit(2)
	}

	old, notice := loadBaseline(*oldPath)
	if notice != "" {
		fmt.Printf("benchcompare: %s\n", notice)
		return
	}
	cur, err := load(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
		os.Exit(2)
	}

	deltas, onlyOld, onlyNew := compare(old, cur)
	report(deltas, onlyOld, onlyNew, *threshold)
	for _, d := range deltas {
		if d.change > *threshold {
			fmt.Fprintf(os.Stderr,
				"benchcompare: FAIL — %s %s regressed %.1f%% (threshold %.0f%%)\n",
				d.key, d.unit, d.change*100, *threshold*100)
			os.Exit(1)
		}
	}
	fmt.Printf("benchcompare: %d benchmark(s) compared, none regressed beyond %.0f%%\n",
		len(deltas), *threshold*100)
}

// loadBaseline loads the -old artifact, degrading a missing or
// unusable baseline to an informational notice. A fresh repository has
// no baseline, and a corrupt one (truncated upload, interrupted
// producer) is no better than none: either way the first gated run
// must not wedge CI — only the -new artifact's problems are this run's
// problems.
func loadBaseline(path string) (*Document, string) {
	doc, err := load(path)
	switch {
	case err == nil:
		return doc, ""
	case os.IsNotExist(err):
		return nil, fmt.Sprintf("no previous artifact at %s — nothing to compare (first run)", path)
	default:
		return nil, fmt.Sprintf("baseline %s is unusable (%v) — treating as first run", path, err)
	}
}

func load(path string) (*Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

// gatedUnits maps the metrics that gate the comparison to their
// direction: true = higher is better.
var gatedUnits = map[string]bool{
	"ns/op": false,
	"MB/s":  true,
}

// compare matches benchmarks by pkg+name and computes the signed
// regression fraction for every gated metric both sides carry.
func compare(old, cur *Document) (deltas []delta, onlyOld, onlyNew []string) {
	prev := map[string]Benchmark{}
	for _, b := range old.Benchmarks {
		prev[b.Pkg+"."+b.Name] = b
	}
	seen := map[string]bool{}
	for _, b := range cur.Benchmarks {
		key := b.Pkg + "." + b.Name
		seen[key] = true
		p, ok := prev[key]
		if !ok {
			onlyNew = append(onlyNew, key)
			continue
		}
		for unit, higherBetter := range gatedUnits {
			ov, okOld := p.Metrics[unit]
			nv, okNew := b.Metrics[unit]
			if !okOld || !okNew || ov <= 0 || nv <= 0 {
				continue
			}
			change := nv/ov - 1 // fraction grew
			if higherBetter {
				change = ov/nv - 1 // fraction shrunk
			}
			deltas = append(deltas, delta{key: key, unit: unit, oldVal: ov, newVal: nv, change: change})
		}
	}
	for key := range prev {
		if !seen[key] {
			onlyOld = append(onlyOld, key)
		}
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].change > deltas[j].change })
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	return deltas, onlyOld, onlyNew
}

// report prints the comparison table, worst regression first.
func report(deltas []delta, onlyOld, onlyNew []string, threshold float64) {
	for _, d := range deltas {
		mark := " "
		switch {
		case d.change > threshold:
			mark = "!"
		case d.change < -threshold:
			mark = "+"
		}
		fmt.Printf("%s %-60s %-6s %14.2f -> %14.2f  %+7.1f%%\n",
			mark, d.key, d.unit, d.oldVal, d.newVal, d.change*100)
	}
	for _, key := range onlyNew {
		fmt.Printf("  %-60s new benchmark (no baseline)\n", key)
	}
	for _, key := range onlyOld {
		fmt.Printf("  %-60s dropped (present only in baseline)\n", key)
	}
}
