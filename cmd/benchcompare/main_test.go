package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func doc(benchmarks ...Benchmark) *Document { return &Document{Benchmarks: benchmarks} }

func bench(pkg, name string, metrics map[string]float64) Benchmark {
	return Benchmark{Pkg: pkg, Name: name, Iterations: 1, Metrics: metrics}
}

func TestCompareDirections(t *testing.T) {
	old := doc(
		bench("p", "BenchmarkA", map[string]float64{"ns/op": 100, "MB/s": 50}),
	)
	cur := doc(
		bench("p", "BenchmarkA", map[string]float64{"ns/op": 150, "MB/s": 40}),
	)
	deltas, _, _ := compare(old, cur)
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2", len(deltas))
	}
	for _, d := range deltas {
		switch d.unit {
		case "ns/op": // 100 → 150: 50% slower
			if d.change < 0.49 || d.change > 0.51 {
				t.Errorf("ns/op change = %v, want ~0.50", d.change)
			}
		case "MB/s": // 50 → 40: 25% regression (old/new - 1)
			if d.change < 0.24 || d.change > 0.26 {
				t.Errorf("MB/s change = %v, want ~0.25", d.change)
			}
		default:
			t.Errorf("unexpected gated unit %q", d.unit)
		}
	}
}

func TestCompareImprovementIsNegative(t *testing.T) {
	old := doc(bench("p", "BenchmarkA", map[string]float64{"ns/op": 100}))
	cur := doc(bench("p", "BenchmarkA", map[string]float64{"ns/op": 50}))
	deltas, _, _ := compare(old, cur)
	if len(deltas) != 1 || deltas[0].change >= 0 {
		t.Fatalf("improvement not negative: %+v", deltas)
	}
}

func TestCompareIgnoresCustomMetrics(t *testing.T) {
	// Paper-shape metrics (speedup ratios, compression ratios) must not
	// gate the comparison — only ns/op and MB/s do.
	old := doc(bench("p", "BenchmarkE1", map[string]float64{
		"ns/op": 100, "speedup_vs_collective": 3.5}))
	cur := doc(bench("p", "BenchmarkE1", map[string]float64{
		"ns/op": 100, "speedup_vs_collective": 1.0}))
	deltas, _, _ := compare(old, cur)
	if len(deltas) != 1 || deltas[0].unit != "ns/op" {
		t.Fatalf("custom metric leaked into the gate: %+v", deltas)
	}
}

func TestCompareNewAndDropped(t *testing.T) {
	old := doc(
		bench("p", "BenchmarkGone", map[string]float64{"ns/op": 5}),
		bench("p", "BenchmarkKept", map[string]float64{"ns/op": 5}),
	)
	cur := doc(
		bench("p", "BenchmarkKept", map[string]float64{"ns/op": 5}),
		bench("p", "BenchmarkNew", map[string]float64{"ns/op": 5}),
	)
	deltas, onlyOld, onlyNew := compare(old, cur)
	if len(deltas) != 1 {
		t.Fatalf("got %d deltas, want 1", len(deltas))
	}
	if len(onlyOld) != 1 || onlyOld[0] != "p.BenchmarkGone" {
		t.Fatalf("onlyOld = %v", onlyOld)
	}
	if len(onlyNew) != 1 || onlyNew[0] != "p.BenchmarkNew" {
		t.Fatalf("onlyNew = %v", onlyNew)
	}
}

func TestCompareSortsWorstFirst(t *testing.T) {
	old := doc(
		bench("p", "BenchmarkSmall", map[string]float64{"ns/op": 100}),
		bench("p", "BenchmarkBig", map[string]float64{"ns/op": 100}),
	)
	cur := doc(
		bench("p", "BenchmarkSmall", map[string]float64{"ns/op": 101}),
		bench("p", "BenchmarkBig", map[string]float64{"ns/op": 300}),
	)
	deltas, _, _ := compare(old, cur)
	if len(deltas) != 2 || deltas[0].key != "p.BenchmarkBig" {
		t.Fatalf("not sorted worst first: %+v", deltas)
	}
}

func TestCompareSkipsNonPositiveValues(t *testing.T) {
	// A zero or missing measurement cannot produce a ratio; it must be
	// skipped, not divide by zero or fabricate a regression.
	old := doc(bench("p", "BenchmarkZ", map[string]float64{"ns/op": 0, "MB/s": 10}))
	cur := doc(bench("p", "BenchmarkZ", map[string]float64{"ns/op": 5}))
	deltas, _, _ := compare(old, cur)
	if len(deltas) != 0 {
		t.Fatalf("non-positive/missing values produced deltas: %+v", deltas)
	}
}

func TestLoadBaselineDegradesGracefully(t *testing.T) {
	dir := t.TempDir()

	// A valid baseline loads with no notice.
	valid := filepath.Join(dir, "ok.json")
	if err := os.WriteFile(valid, []byte(`{"benchmarks":[{"pkg":"p","name":"B","metrics":{"ns/op":5}}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	doc, notice := loadBaseline(valid)
	if notice != "" || doc == nil || len(doc.Benchmarks) != 1 {
		t.Fatalf("valid baseline: doc=%+v notice=%q", doc, notice)
	}

	// A missing baseline is the first-run case.
	doc, notice = loadBaseline(filepath.Join(dir, "missing.json"))
	if doc != nil || !strings.Contains(notice, "first run") {
		t.Fatalf("missing baseline: doc=%v notice=%q", doc, notice)
	}

	// A corrupt baseline (truncated upload) must degrade to the same
	// informational path, never an error exit that wedges CI.
	corrupt := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corrupt, []byte(`{"benchmarks":[{"pkg":`), 0o644); err != nil {
		t.Fatal(err)
	}
	doc, notice = loadBaseline(corrupt)
	if doc != nil || !strings.Contains(notice, "unusable") {
		t.Fatalf("corrupt baseline: doc=%v notice=%q", doc, notice)
	}
}
