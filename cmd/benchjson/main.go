// Command benchjson converts `go test -bench` text output into a JSON
// document, so CI can archive one BENCH_*.json artifact per run and the
// performance trajectory of the repository accumulates in a
// machine-readable form.
//
// Usage:
//
//	go test -bench=. -benchtime=1x -run='^$' ./... | benchjson -out out/bench/BENCH_abc123.json
//
// Lines it understands:
//
//	goos: linux                      → top-level metadata
//	goarch: amd64
//	pkg: repro/internal/cluster      → attached to following benchmarks
//	BenchmarkFoo-8  4  123 ns/op  7 B/op  1 allocs/op
//
// Everything else (PASS, ok, test logs) is ignored. Exit status is
// non-zero when no benchmark line was seen — an empty artifact would
// silently end the perf history.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Pkg        string             `json:"pkg"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Document is the artifact's JSON shape.
type Document struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Label      string      `json:"label,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	label := flag.String("label", "", "free-form label recorded in the document (e.g. a commit hash)")
	flag.Parse()

	doc := Document{Label: *label}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(pkg, line); ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.MkdirAll(filepath.Dir(*out), 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d benchmark(s) to %s\n", len(doc.Benchmarks), *out)
}

// parseBenchLine parses "BenchmarkName-8 4 123 ns/op 7 B/op ...":
// name, iteration count, then value/unit pairs.
func parseBenchLine(pkg, line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Pkg:        pkg,
		Name:       fields[0],
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, len(b.Metrics) > 0
}
