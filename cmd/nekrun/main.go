// Command nekrun runs the Nek5000-proxy lid-driven cavity with in-situ
// visualization on a Damaris dedicated core, writing a PGM image per
// variable per output step — the paper's §V use case as an executable.
//
// Usage:
//
//	nekrun -steps 50 -grid 24 -every 5 -out nek-out/
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"
	"time"

	damaris "repro"
	"repro/internal/compress"
	"repro/internal/nek"
)

const configTemplate = `
<simulation name="cavity">
  <architecture><dedicated cores="1"/><buffer size="67108864"/></architecture>
  <data>
    <parameter name="n" value="%d"/>
    <layout name="cube" type="float64" dimensions="n,n,n"/>
    <variable name="u" layout="cube" unit="m/s"/>
    <variable name="v" layout="cube" unit="m/s"/>
    <variable name="w" layout="cube" unit="m/s"/>
    <variable name="p" layout="cube" unit="Pa"/>
  </data>
  <plugins>
    <plugin name="visualize" event="end_iteration" dir="%s" bins="32"/>
    <plugin name="stats" event="end_iteration"/>
  </plugins>
</simulation>`

func main() {
	var (
		steps  = flag.Int("steps", 50, "cavity time steps")
		grid   = flag.Int("grid", 24, "grid edge length")
		every  = flag.Int("every", 5, "visualize every N steps")
		outDir = flag.String("out", "nek-out", "image output directory")
	)
	flag.Parse()

	node, err := damaris.NewNodeFromXML(
		fmt.Sprintf(configTemplate, *grid, *outDir), 1, damaris.Options{})
	if err != nil {
		log.Fatal(err)
	}
	params := nek.DefaultParams()
	params.N = *grid
	solver, err := nek.New(params)
	if err != nil {
		log.Fatal(err)
	}

	client := node.Client(0)
	start := time.Now()
	frames := 0
	for step := 1; step <= *steps; step++ {
		solver.Step()
		if step%*every != 0 {
			continue
		}
		for _, f := range solver.Fields() {
			if err := client.Write(f.Name, frames, compress.Float64Bytes(f.Data)); err != nil {
				log.Printf("frame %d dropped: %v", frames, err)
				break
			}
		}
		client.EndIteration(frames)
		frames++
	}
	if frames > 0 {
		node.WaitIteration(frames - 1)
	}
	if err := node.Shutdown(); err != nil {
		log.Fatal(err)
	}

	images, _ := filepath.Glob(filepath.Join(*outDir, "*.pgm"))
	fmt.Printf("nekrun: %d steps in %v, kinetic energy %.4f\n",
		*steps, time.Since(start).Round(time.Millisecond), solver.KineticEnergy())
	fmt.Printf("  %d frames visualized asynchronously, %d images under %s\n",
		frames, len(images), *outDir)
}
