// Command damaris-bench regenerates the paper's evaluation: every
// quantitative claim of §IV and §V.C is one experiment (see
// docs/EXPERIMENTS.md), and each run prints the corresponding table
// plus shape checks against the published numbers.
//
// Usage:
//
//	damaris-bench                 # run everything at paper scale
//	damaris-bench -exp e1,e3      # select experiments (f1: failure sweep)
//	damaris-bench -quick          # small machine, fast smoke run
//	damaris-bench -iters 8        # more output phases per run
//	damaris-bench -csv out/       # also write each table as CSV
//
// Cluster-layer options (see internal/cluster and internal/storage):
//
//	damaris-bench -nodes 16       # one scale: a 16-node cluster
//	damaris-bench -fanout 4       # cross-node k-ary aggregation tree
//	damaris-bench -backend memory # storage backend: pfs, memory, sdf
//	damaris-bench -fail-nodes 3,5 -fail-at 2   # kill nodes mid-run
//
// Checkpoint/restart (experiment R1 and the object read path):
//
//	damaris-bench -exp r1                          # write + restore sweep
//	damaris-bench -exp r1 -backend sdf -backend-dir out/ckpt   # leave artifacts
//	damaris-bench -restart-from out/ckpt/fail0     # replay a stored run
//
// Compression pipeline (experiment C1 and the -codec option):
//
//	damaris-bench -exp c1                          # codec sweep + adaptive selection
//	damaris-bench -exp r1 -backend sdf -codec adaptive -backend-dir out/ckpt
//	                                               # compressed store, framed objects
//	damaris-bench -restart-from out/ckpt/fail0     # replays compressed stores too
//
// Multi-tenant admission (experiment E9 and cluster.Service):
//
//	damaris-bench -exp e9                          # tenancy × arrival × admission sweep
//	damaris-bench -exp e9 -tenants 48 -arrival 0.1 -admission deadline
//	                                               # pin one sweep point
//
// Streaming in-situ pipeline (experiment E7S and docs/STREAMING.md):
//
//	damaris-bench -exp e7s                         # streaming vs file-then-read, both faces
//	damaris-bench -exp e7s -stream-policy block -stream-buffer 4
//	                                               # pin the slow-consumer legs
//
// Incremental checkpoints (experiment E10 and the -dedup/-retain options):
//
//	damaris-bench -exp e10                         # overwrite-fraction sweep, both faces
//	damaris-bench -dedup                           # dedup chunk store under every run
//	damaris-bench -exp e10 -retain 4               # widen the retention/GC window
//
// Deterministic scenarios and elastic adaptation (experiment E11 and
// docs/SCENARIOS.md):
//
//	damaris-bench -exp e11                         # scenario × {static, adaptive}, both faces
//	damaris-bench -exp e11 -scenario nic-step -adapt adaptive -seed 7
//	                                               # pin one sweep point; any seed replays bit-identically
//	damaris-bench -scenario amr                    # replay an AMR trace under every DES run
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/iostrat"
	"repro/internal/storage"
	"repro/internal/storage/chunk"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	var (
		expList     = flag.String("exp", "all", "comma-separated experiment ids (e1..e11,e7s,a1,a2,f1,r1,c1) or 'all'")
		quick       = flag.Bool("quick", false, "reduced scale for a fast smoke run")
		seed        = flag.Uint64("seed", 2013, "root seed for all stochastic inputs")
		iters       = flag.Int("iters", 0, "output phases per run (0 = default)")
		platform    = flag.String("platform", "kraken", "platform preset: kraken, grid5000, power5")
		csvDir      = flag.String("csv", "", "directory to write per-table CSV files")
		nodes       = flag.Int("nodes", 0, "replace the weak-scaling sweep with one scale of N nodes")
		fanout      = flag.Int("fanout", 0, "cross-node aggregation tree fanout (>= 2 enables the cluster layer)")
		backend     = flag.String("backend", "pfs", "storage backend: pfs, memory, sdf")
		bdir        = flag.String("backend-dir", "out/sdf-objects", "artifact directory for the sdf backend")
		failNodes   = flag.String("fail-nodes", "", "comma-separated node ids to kill in tree-mode runs")
		failAt      = flag.Int("fail-at", 0, "iteration at which -fail-nodes die")
		codec       = flag.String("codec", "", "storage compression pipeline: none, rle, delta, gorilla, flate, or adaptive")
		sched       = flag.String("sched", "", "dedicated-core write scheduling: none, ost-token, global-token, or cluster-token (E6: cluster-token restricts to the cross-root sweep)")
		restartFrom = flag.String("restart-from", "", "restore a stored run from an sdf object-store directory, report what is recoverable, and exit")
		tenants     = flag.Int("tenants", 0, "E9: tenant jobs per sweep point (0 = default 24)")
		arrival     = flag.Float64("arrival", 0, "E9: job arrival rate in jobs/s (0 = sweep light and heavy)")
		admission   = flag.String("admission", "", "E9: pin the admission policy (fifo, deadline, reject, degrade; empty sweeps all)")
		dedup       = flag.Bool("dedup", false, "wrap every run's backend in the content-addressed dedup chunk store (E10 sweeps its own fractions)")
		retain      = flag.Int("retain", 0, "checkpoint retention window in iterations for runtime runs over a dedup store (0 = keep everything)")
		streamPol   = flag.String("stream-policy", "", "E7S: pin the slow-consumer policy (drop-oldest, block, sample; empty sweeps all on the DES face)")
		streamBuf   = flag.Int("stream-buffer", 0, "E7S: per-subscriber queue capacity in iterations for the slow-consumer legs (0 = 1)")
		scenario    = flag.String("scenario", "", "replay a deterministic workload scenario in every DES run (steady, bursty, amr, particle-mix, weak-ladder, strong-ladder, nic-step, pfs-step, node-churn; E11 sweeps all unless pinned)")
		adapt       = flag.String("adapt", "", "mid-run tree adaptation policy for scenario runs: static or adaptive (E11 sweeps both unless pinned)")
	)
	flag.Parse()

	if *restartFrom != "" {
		if err := restoreReport(*restartFrom); err != nil {
			fmt.Fprintf(os.Stderr, "restart-from: %v\n", err)
			os.Exit(1)
		}
		return
	}

	opts := experiments.Default()
	if *quick {
		opts = experiments.Quick()
	}
	opts.Seed = *seed
	opts.Platform = *platform
	if *iters > 0 {
		opts.Iterations = *iters
	}
	opts.Fanout = *fanout
	opts.Backend = *backend
	opts.BackendDir = *bdir
	opts.FailAt = *failAt
	if *codec != "" && *codec != "none" {
		if err := storage.ValidateCodecName(*codec); err != nil {
			fmt.Fprintf(os.Stderr, "bad -codec: %v\n", err)
			os.Exit(2)
		}
		opts.Codec = *codec
	}
	if *sched != "" {
		if err := iostrat.ValidateScheduling(iostrat.Scheduling(*sched)); err != nil {
			fmt.Fprintf(os.Stderr, "bad -sched: %v\n", err)
			os.Exit(2)
		}
		opts.Scheduling = iostrat.Scheduling(*sched)
	}
	opts.Dedup = *dedup
	opts.Retain = *retain
	if *streamPol != "" {
		if err := storage.ValidateSlowPolicy(*streamPol); err != nil {
			fmt.Fprintf(os.Stderr, "bad -stream-policy: %v\n", err)
			os.Exit(2)
		}
		opts.StreamPolicy = *streamPol
	}
	opts.StreamBuffer = *streamBuf
	if *scenario != "" {
		if err := workload.ValidateScenario(*scenario); err != nil {
			fmt.Fprintf(os.Stderr, "bad -scenario: %v\n", err)
			os.Exit(2)
		}
		opts.Scenario = *scenario
	}
	if *adapt != "" {
		if err := iostrat.ValidateAdaptPolicy(iostrat.AdaptPolicy(*adapt)); err != nil {
			fmt.Fprintf(os.Stderr, "bad -adapt: %v\n", err)
			os.Exit(2)
		}
		opts.Adapt = *adapt
	}
	opts.Tenants = *tenants
	opts.ArrivalRate = *arrival
	if *admission != "" {
		if err := cluster.ValidateAdmissionPolicy(cluster.AdmissionPolicy(*admission)); err != nil {
			fmt.Fprintf(os.Stderr, "bad -admission: %v\n", err)
			os.Exit(2)
		}
		opts.Admission = cluster.AdmissionPolicy(*admission)
	}
	if *failNodes != "" {
		for _, part := range strings.Split(*failNodes, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad -fail-nodes entry %q\n", part)
				os.Exit(2)
			}
			opts.FailNodes = append(opts.FailNodes, id)
		}
		if opts.Fanout < 2 {
			opts.Fanout = 2 // failures live in the aggregation tree
		}
	}
	if *nodes > 0 {
		plat, ok := topology.ByName(*platform, *nodes)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown platform %q\n", *platform)
			os.Exit(2)
		}
		opts.Scales = []int{plat.Cores()}
	}

	selected := map[string]bool{}
	for _, id := range strings.Split(*expList, ",") {
		selected[strings.ToLower(strings.TrimSpace(id))] = true
	}
	all := selected["all"]

	failures := 0
	for _, r := range experiments.Registry() {
		if !all && !selected[r.ID] {
			continue
		}
		start := time.Now()
		rep, err := r.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.ID, err)
			failures++
			continue
		}
		fmt.Println(rep.String())
		fmt.Printf("(%s completed in %.1fs wall time)\n\n", rep.ID, time.Since(start).Seconds())
		if !rep.AllPass() {
			failures++
		}
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, rep); err != nil {
				fmt.Fprintf(os.Stderr, "csv: %v\n", err)
			}
		}
	}
	if failures > 0 {
		fmt.Printf("%d experiment(s) with checks outside the paper band\n", failures)
		os.Exit(1)
	}
}

// restoreReport reads a stored run back from an SDF object-store
// directory (e.g. one left behind by `-exp r1 -backend sdf` or any
// cluster run with an sdf store) and prints what is recoverable: the
// checkpoint/restart consumer's view of the object read path.
func restoreReport(dir string) error {
	if _, err := os.Stat(dir); err != nil {
		return err
	}
	sdfStore, err := storage.NewSDF(nil, 1, 1e9, dir)
	if err != nil {
		return err
	}
	// The decompressing and dedup wrappers are always safe on the read
	// side: framed objects decode, chunk recipes reassemble, plain
	// objects pass through — so one code path replays compressed,
	// deduplicated and raw stores alike.
	store := chunk.New(
		storage.NewCompressing(sdfStore, storage.CompressionOptions{}),
		chunk.Options{})
	r, err := cluster.Restore(store, "")
	if err != nil {
		return err
	}
	if r.Manifests == 0 {
		return fmt.Errorf("no manifests under %s — nothing to restart from", dir)
	}
	// The cluster size is not stored anywhere except the data itself:
	// infer it from the widest coverage any iteration achieved.
	nodes := 0
	for _, ri := range r.Iterations {
		for n := range ri.Covers {
			if n+1 > nodes {
				nodes = n + 1
			}
		}
	}
	fmt.Printf("restore from %s: %d manifests, %d iterations, %d blocks, %d-node cluster (inferred)\n",
		dir, r.Manifests, len(r.Iterations), r.TotalBlocks(), nodes)
	for _, it := range r.IterationNumbers() {
		ri := r.Iterations[it]
		status := "complete"
		switch {
		case ri.PayloadMissing:
			status = "payload missing"
		case ri.Partial:
			status = "partial"
		case len(ri.Covers) < nodes:
			status = fmt.Sprintf("%d/%d nodes", len(ri.Covers), nodes)
		}
		fmt.Printf("  it %6d: %4d blocks, coverage %.2f, %s\n",
			it, len(ri.Blocks), float64(len(ri.Covers))/float64(nodes), status)
	}
	if it, ok := r.LatestComplete(nodes); ok {
		fmt.Printf("restartable from iteration %d\n", it)
	} else {
		fmt.Println("no fully-complete checkpoint; restart would lose data")
	}
	for _, p := range r.Problems {
		fmt.Printf("  problem: %v\n", p)
	}
	return nil
}

func writeCSVs(dir string, rep experiments.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, t := range rep.Tables {
		name := fmt.Sprintf("%s_table%d.csv", strings.ToLower(rep.ID), i+1)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(t.CSV()), 0o644); err != nil {
			return err
		}
	}
	return nil
}
