// Package damaris is the public API of this reproduction of "Efficient
// I/O using Dedicated Cores in Large-Scale HPC Simulations" (Dorier,
// IPDPS PhD Forum 2013) — a Go implementation of the Damaris middleware:
// dedicate one or a few cores per multicore node to asynchronous I/O and
// data management, and hand data from the simulation cores to them
// through node-local shared memory.
//
// A minimal integration is a handful of lines (the §V.C.2 usability
// claim):
//
//	node, _ := damaris.NewNodeFromXML(configXML, cores, damaris.Options{})
//	client := node.Client(coreID)
//	for it := 0; it < steps; it++ {
//		compute()
//		client.Write("theta", it, thetaBytes) // ≈0.1 s, never blocks on the PFS
//		client.EndIteration(it)
//	}
//	node.Shutdown()
//
// Everything else — what the variables look like, which plugins run on
// the dedicated core (aggregated SDF output, compression, statistics,
// in-situ visualization) — lives in the external XML description, as in
// the original middleware. See examples/ for complete programs and
// internal/experiments for the paper's evaluation.
//
// # Multi-node quickstart
//
// Past one node, internal/cluster instantiates N such nodes from a
// topology.Platform and wires their dedicated cores into a k-ary
// cross-node aggregation forest. Leaf dedicated cores forward each
// completed iteration's blocks upward, interior nodes batch their
// subtree, and tree roots store one large sequential object per
// iteration through a pluggable storage backend (internal/storage:
// the discrete-event Lustre model, an in-memory store for tests, or
// local SDF files):
//
//	cfg, _ := damaris.ParseConfigString(configXML)
//	store := storage.NewMemory(nil, 8, 1e9) // or storage.NewSDF(...)
//	c, _ := cluster.New(cluster.Config{
//		Platform: topology.Platform{Nodes: 16, CoresPerNode: 4},
//		Meta:     cfg,
//		Fanout:   4, // children per interior node
//		Store:    store,
//	})
//	client := c.Client(nodeID, coreID)
//	client.Write("theta", it, thetaBytes)
//	client.EndIteration(it)
//	...
//	c.WaitIteration(lastIt)
//	c.Shutdown()
//
// Cluster-wide end-of-iteration plugins (cluster.Hook) run at the tree
// roots with the merged batch. examples/cluster is the runnable
// version; `damaris-bench -nodes 16 -fanout 4 -backend memory` drives
// the paper's experiments through the same layer.
package damaris

import (
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/meta"

	// Importing the built-in plugins registers them (sdf-writer, stats,
	// visualize) so XML configurations can name them.
	_ "repro/internal/plugins"
)

// Re-exported middleware types; see the internal/core and internal/meta
// documentation for details.
type (
	// Node is one SMP node's Damaris instance: shared-memory segment,
	// event queue, block index and the dedicated-core server.
	Node = core.Node
	// Client is the per-simulation-core handle (Write, Alloc, Signal,
	// EndIteration).
	Client = core.Client
	// Options tunes NewNode beyond the XML configuration.
	Options = core.Options
	// Plugin is a user-provided action run on the dedicated core.
	Plugin = core.Plugin
	// PluginFunc adapts a function to the Plugin interface.
	PluginFunc = core.PluginFunc
	// PluginContext is what a plugin sees of the node.
	PluginContext = core.PluginContext
	// Event is one message on the node's queue.
	Event = core.Event
	// Config is the parsed XML data description.
	Config = meta.Config
	// BlockKey identifies one block (variable, source, iteration).
	BlockKey = meta.BlockKey
)

// ErrSkipped reports that data was dropped because the shared-memory
// segment was full — the paper's §V.C policy of losing data rather than
// blocking the simulation.
var ErrSkipped = core.ErrSkipped

// RegisterPlugin adds a plugin factory under a name usable from XML
// <plugin> elements.
func RegisterPlugin(name string, factory func(cfg map[string]string) (Plugin, error)) {
	core.RegisterPlugin(name, factory)
}

// ParseConfig reads a Damaris XML configuration.
func ParseConfig(r io.Reader) (*Config, error) { return meta.Parse(r) }

// ParseConfigString parses an XML configuration held in a string.
func ParseConfigString(s string) (*Config, error) { return meta.ParseString(s) }

// LoadConfig reads and parses an XML configuration file.
func LoadConfig(path string) (*Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return meta.Parse(f)
}

// NewNode starts a node runtime for the given parsed configuration and
// number of simulation cores.
func NewNode(cfg *Config, clients int, opts Options) (*Node, error) {
	return core.NewNode(cfg, clients, opts)
}

// NewNodeFromXML parses the XML configuration and starts a node runtime.
func NewNodeFromXML(xml string, clients int, opts Options) (*Node, error) {
	cfg, err := meta.ParseString(xml)
	if err != nil {
		return nil, err
	}
	return core.NewNode(cfg, clients, opts)
}
