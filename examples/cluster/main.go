// Cluster example: eight SMP nodes, each running the Damaris middleware
// with one dedicated core, wired into a binary cross-node aggregation
// tree. Every iteration, each node's dedicated core forwards the node's
// blocks toward the tree root, interior nodes batch their subtree, and
// the root stores one large object per iteration — first into an
// in-memory backend, then into a local SDF store whose artifacts you
// can inspect with cmd/sdfdump.
package main

import (
	"fmt"
	"log"
	"math"

	damaris "repro"
	"repro/internal/cluster"
	"repro/internal/compress"
	"repro/internal/storage"
	"repro/internal/topology"
)

const configXML = `
<simulation name="clusterdemo">
  <architecture>
    <dedicated cores="1"/>
    <buffer size="4194304"/>
  </architecture>
  <data>
    <parameter name="nx" value="32"/>
    <parameter name="ny" value="32"/>
    <layout name="slab" type="float64" dimensions="ny,nx"/>
    <variable name="theta" layout="slab" unit="K"/>
  </data>
</simulation>`

const (
	nodes      = 8
	coresPer   = 4 // 3 simulation clients + 1 dedicated
	iterations = 3
)

func main() {
	cfg, err := damaris.ParseConfigString(configXML)
	if err != nil {
		log.Fatal(err)
	}

	// A tiny platform: the cluster layer only needs Nodes/CoresPerNode.
	plat := topology.Platform{Name: "demo", Nodes: nodes, CoresPerNode: coresPer}

	for _, store := range []storage.Backend{
		storage.NewMemory(nil, 4, 1e9),
		mustSDF("cluster-out"),
	} {
		c, err := cluster.New(cluster.Config{
			Platform: plat,
			Meta:     cfg,
			Fanout:   2,
			Store:    store,
			Hooks: []cluster.Hook{cluster.HookFunc{
				HookName: "report",
				Fn: func(it int, b *cluster.Batch) error {
					fmt.Printf("  [%s] iteration %d aggregated: %d blocks, %d bytes\n",
						store.Name(), it, len(b.Blocks), b.Bytes())
					return nil
				},
			}},
		})
		if err != nil {
			log.Fatal(err)
		}

		// Drive every simulation core; in a real coupling each client
		// lives on its own core of its own node.
		field := make([]float64, 32*32)
		for n := 0; n < nodes; n++ {
			for s := 0; s < coresPer-1; s++ {
				client := c.Client(n, s)
				for it := 0; it < iterations; it++ {
					for i := range field {
						field[i] = 290 + 10*math.Sin(float64(n+s+it)+float64(i)/100)
					}
					if err := client.Write("theta", it, compress.Float64Bytes(field)); err != nil {
						log.Fatal(err)
					}
					client.EndIteration(it)
				}
			}
		}
		c.WaitIteration(iterations - 1)
		if err := c.Shutdown(); err != nil {
			log.Fatal(err)
		}

		st := c.Stats()
		acc := store.Accounting()
		fmt.Printf("[%s] tree depth %d: %d batches forwarded (%.1f MB), "+
			"%d objects stored (%.1f MB)\n\n",
			store.Name(), c.Tree().Depth(), st.BatchesForwarded,
			float64(st.BytesForwarded)/1e6, acc.Objects, float64(acc.ObjectBytes)/1e6)
	}
	fmt.Println("SDF objects left in cluster-out/ — inspect one with cmd/sdfdump")
}

func mustSDF(dir string) storage.Backend {
	b, err := storage.NewSDF(nil, 4, 1e9, dir)
	if err != nil {
		log.Fatal(err)
	}
	return b
}
