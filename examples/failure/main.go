// Failure example: a nine-node cluster wired into a binary aggregation
// tree loses an interior aggregation node mid-run. The tree re-routes
// the dead node's children to its parent, the orphaned in-flight merges
// drain upward, and the run finishes with only the dead node's own
// blocks missing — the trade the paper's §V.C skip policy makes on the
// producer side, applied to whole-node loss.
//
//	tree:  0 ── {1, 2};  1 ── {3, 4};  2 ── {5, 6};  3 ── {7, 8}
//	node 1 dies at iteration 2: children 3 and 4 re-route to the root.
package main

import (
	"fmt"
	"log"
	"sort"

	damaris "repro"
	"repro/internal/cluster"
	"repro/internal/storage"
	"repro/internal/topology"
)

const configXML = `
<simulation name="failuredemo">
  <architecture>
    <dedicated cores="1"/>
    <buffer size="1048576"/>
  </architecture>
  <data>
    <parameter name="n" value="128"/>
    <layout name="row" type="float64" dimensions="n"/>
    <variable name="theta" layout="row" unit="K"/>
  </data>
</simulation>`

const (
	nodes      = 9
	clients    = 2 // per node, plus 1 dedicated core
	iterations = 4
	deadNode   = 1
	failAt     = 2
)

func main() {
	cfg, err := damaris.ParseConfigString(configXML)
	if err != nil {
		log.Fatal(err)
	}
	store := storage.NewMemory(nil, 4, 1e9)
	c, err := cluster.New(cluster.Config{
		Platform: topology.Platform{Name: "demo", Nodes: nodes, CoresPerNode: clients + 1},
		Meta:     cfg,
		Fanout:   2,
		Store:    store,
		Failures: cluster.NewFailureSchedule().Add(deadNode, failAt),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d nodes, fanout 2, roots %v — node %d scheduled to die at iteration %d\n\n",
		nodes, c.Tree().Roots(), deadNode, failAt)

	field := make([]byte, 128*8)
	for n := 0; n < nodes; n++ {
		for s := 0; s < clients; s++ {
			cl := c.Client(n, s)
			for it := 0; it < iterations; it++ {
				for i := range field {
					field[i] = byte(n + s + it + i)
				}
				if err := cl.Write("theta", it, field); err != nil {
					log.Fatal(err)
				}
				cl.EndIteration(it)
			}
		}
	}
	c.WaitIteration(iterations - 1) // survives the death: no deadlock
	if err := c.Shutdown(); err != nil {
		log.Fatal(err)
	}

	st := c.Stats()
	tr := c.Tree()
	fmt.Printf("nodes failed:    %d (node %d at iteration %d)\n", st.NodesFailed, deadNode, failAt)
	fmt.Printf("re-routed edges: %d (children of %d now report to the root)\n",
		st.ReroutedEdges, deadNode)
	fmt.Printf("blocks lost:     %d (node %d's own output from iteration %d on)\n",
		st.BlocksLost, deadNode, failAt)
	fmt.Printf("surviving roots: %v, tree depth %d\n\n", tr.Roots(), tr.Depth())

	its := make([]int, 0, len(st.Completeness))
	for it := range st.Completeness {
		its = append(its, it)
	}
	sort.Ints(its)
	for _, it := range its {
		obj, _ := store.Object(fmt.Sprintf("failuredemo-root000-it%06d", it))
		b, err := cluster.DecodeBatch(obj)
		if err != nil {
			log.Fatal(err)
		}
		covered := map[int]bool{}
		for _, blk := range b.Blocks {
			covered[blk.Node] = true
		}
		fmt.Printf("iteration %d: %3.0f%% of the cluster stored (%d blocks from %d nodes)\n",
			it, 100*st.Completeness[it], len(b.Blocks), len(covered))
	}
	fmt.Println("\nthe re-routed subtrees (nodes 3, 4, 7, 8) kept flowing after the death;")
	fmt.Println("only the dead node's own blocks are missing from iterations ≥ 2.")
}
