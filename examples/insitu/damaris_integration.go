package main

import (
	"fmt"
	"log"
	"time"

	damaris "repro"
	"repro/internal/compress"
	"repro/internal/nek"
)

// The data description lives in an external XML file, exactly as with
// the original middleware — it is configuration, not code change, so it
// does not count toward the instrumentation the paper measures (§V.C.2).
const damarisXML = `
<simulation name="cavity">
  <architecture><dedicated cores="1"/><buffer size="33554432"/></architecture>
  <data>
    <parameter name="n" value="%d"/>
    <layout name="cube" type="float64" dimensions="n,n,n"/>
    <variable name="u" layout="cube" unit="m/s"/>
    <variable name="v" layout="cube" unit="m/s"/>
    <variable name="w" layout="cube" unit="m/s"/>
    <variable name="p" layout="cube" unit="Pa"/>
  </data>
  <plugins>
    <plugin name="visualize" event="end_iteration" dir="%s" bins="32"/>
  </plugins>
</simulation>`

// must keeps the example terse; a production integration would handle
// the error (it is part of neither coupling's instrumentation count).
func must[T any](v T, err error) T {
	if err != nil {
		log.Fatal(err)
	}
	return v
}

// runDamarisCoupled advances the cavity and ships each step's fields to
// the dedicated core, which runs the same visualization pipeline
// asynchronously. The instrumentation added to the simulation is the
// marked lines — one write per data object plus the iteration mark, as
// the paper claims (§V.C.2).
func runDamarisCoupled(steps int, gridN int, outDir string) (stepTimes []time.Duration, err error) {
	params := nek.DefaultParams()
	params.N = gridN
	solver, err := nek.New(params)
	if err != nil {
		return nil, err
	}
	// BEGIN-INSTRUMENTATION damaris
	node := must(damaris.NewNodeFromXML(fmt.Sprintf(damarisXML, gridN, outDir), 1, damaris.Options{}))
	client := node.Client(0)
	// END-INSTRUMENTATION
	for step := 0; step < steps; step++ {
		t0 := time.Now()
		solver.Step()
		// BEGIN-INSTRUMENTATION damaris
		for _, f := range solver.Fields() {
			client.Write(f.Name, step, compress.Float64Bytes(f.Data))
		}
		client.EndIteration(step)
		// END-INSTRUMENTATION
		stepTimes = append(stepTimes, time.Since(t0))
	}
	// BEGIN-INSTRUMENTATION damaris
	err = node.Shutdown()
	// END-INSTRUMENTATION
	return stepTimes, err
}
