package main

import (
	"time"

	"repro/internal/nek"
)

// runBaseline advances the cavity with no visualization at all: the
// reference step time both couplings are compared against.
func runBaseline(steps, gridN int) []time.Duration {
	params := nek.DefaultParams()
	params.N = gridN
	solver, err := nek.New(params)
	if err != nil {
		return nil
	}
	times := make([]time.Duration, 0, steps)
	for step := 0; step < steps; step++ {
		t0 := time.Now()
		solver.Step()
		times = append(times, time.Since(t0))
	}
	return times
}
