package main

import (
	"fmt"
	"time"

	"repro/internal/nek"
	"repro/internal/visitsim"
)

// runVisItCoupled advances the same cavity with VisIt-style synchronous
// in-situ coupling: the simulation must expose its data model through
// metadata, mesh and data-access callbacks, register control commands,
// drive the tool's control flow from its main loop, and stall inside
// UpdatePlots while the pipeline runs. Every marked line below is
// instrumentation a simulation author has to write — the >100 lines the
// paper measures for the VisIt examples (§V.C.2).
func runVisItCoupled(steps int, gridN int, outDir string) (stepTimes []time.Duration, err error) {
	params := nek.DefaultParams()
	params.N = gridN
	solver, err := nek.New(params)
	if err != nil {
		return nil, err
	}
	// BEGIN-INSTRUMENTATION visit
	// 1. Environment setup and connection bootstrap.
	sim := visitsim.Setup("cavity")
	renderEvery := 1
	saveImages := true

	// 2. Control commands the tool can send back to the simulation: the
	//    author has to wire each one into the run loop's state machine.
	sim.AddCommand("halt", func() {
		sim.SetMode("stopped")
	})
	sim.AddCommand("run", func() {
		sim.SetMode("running")
	})
	sim.AddCommand("render_off", func() {
		saveImages = false
	})
	sim.AddCommand("render_on", func() {
		saveImages = true
	})

	// 3. Metadata callback: describe the mesh and every variable in the
	//    tool's vocabulary, by hand, one declaration at a time.
	sim.SetGetMetaData(func(md *visitsim.MetaData) {
		md.AddMesh(visitsim.MeshMetaData{
			Name:            "cavity_grid",
			MeshType:        "rectilinear",
			TopologicalDim:  3,
			SpatialDim:      3,
			NumberOfDomains: 1,
		})
		md.AddVariable(visitsim.VariableMetaData{
			Name:       "u",
			MeshName:   "cavity_grid",
			Centering:  "nodal",
			Units:      "m/s",
			Components: 1,
		})
		md.AddVariable(visitsim.VariableMetaData{
			Name:       "v",
			MeshName:   "cavity_grid",
			Centering:  "nodal",
			Units:      "m/s",
			Components: 1,
		})
		md.AddVariable(visitsim.VariableMetaData{
			Name:       "w",
			MeshName:   "cavity_grid",
			Centering:  "nodal",
			Units:      "m/s",
			Components: 1,
		})
		md.AddVariable(visitsim.VariableMetaData{
			Name:       "p",
			MeshName:   "cavity_grid",
			Centering:  "zonal",
			Units:      "Pa",
			Components: 1,
		})
	})

	// 4. Mesh callback: build the coordinate arrays the tool's data
	//    model wants for a rectilinear grid.
	sim.SetGetMesh(func(name string) (*visitsim.MeshData, error) {
		if name != "cavity_grid" {
			return nil, fmt.Errorf("unknown mesh %q", name)
		}
		coords := func(n int) []float64 {
			cs := make([]float64, n)
			for i := range cs {
				cs[i] = float64(i)
			}
			return cs
		}
		md := &visitsim.MeshData{}
		if err := md.SetCoords(coords(gridN), coords(gridN), coords(gridN)); err != nil {
			return nil, err
		}
		return md, nil
	})

	// 5. Domain-list callback (single domain here, but the tool asks).
	sim.SetGetDomainList(func() []int {
		return []int{0}
	})

	// 6. Data-access callback: translate each tool-side variable request
	//    into the simulation's internal storage, with an explicit copy
	//    into the tool's buffer layout.
	sim.SetGetVariable(func(name string) (*visitsim.VariableData, error) {
		for _, f := range solver.Fields() {
			if f.Name != name {
				continue
			}
			buf := make([]float64, len(f.Data))
			copy(buf, f.Data)
			vd := &visitsim.VariableData{}
			if err := vd.SetData(f.NZ, f.NY, f.NX, buf); err != nil {
				return nil, err
			}
			return vd, nil
		}
		return nil, fmt.Errorf("unknown variable %q", name)
	})
	// END-INSTRUMENTATION
	for step := 0; step < steps; step++ {
		t0 := time.Now()
		solver.Step()
		// BEGIN-INSTRUMENTATION visit
		// 7. Main-loop surgery: poll the control state, notify the tool
		//    of the new time step, then block inside the synchronous
		//    pipeline execution and image dump before the next compute
		//    step may start.
		if sim.Mode() == "stopped" {
			if !sim.ProcessEngineCommand("run") {
				return nil, fmt.Errorf("control loop wedged")
			}
		}
		sim.TimeStepChanged(step)
		if step%renderEvery == 0 {
			if err := sim.UpdatePlots(); err != nil {
				return nil, err
			}
			if saveImages {
				if _, err := sim.SaveWindow(outDir, "visit"); err != nil {
					return nil, err
				}
			}
		}
		// END-INSTRUMENTATION
		stepTimes = append(stepTimes, time.Since(t0))
	}
	return stepTimes, nil
}
