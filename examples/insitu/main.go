// In-situ example: the paper's §V comparison on real code. The same
// Nek-proxy cavity runs twice — once coupled to a VisIt-style
// synchronous visualization (the simulation stalls inside every
// pipeline execution) and once through Damaris (a dedicated core runs
// the same pipeline asynchronously). The program prints the per-step
// cost of each coupling; the instrumentation line counts of the two
// integrations are what experiment E8 measures.
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"
	"time"
)

func main() {
	steps := flag.Int("steps", 10, "cavity time steps")
	grid := flag.Int("grid", 20, "cavity grid edge")
	outDir := flag.String("out", "insitu-out", "image output directory")
	flag.Parse()

	baseline := runBaseline(*steps, *grid)

	visitTimes, err := runVisItCoupled(*steps, *grid, filepath.Join(*outDir, "visit"))
	if err != nil {
		log.Fatalf("visit coupling: %v", err)
	}
	damarisTimes, err := runDamarisCoupled(*steps, *grid, filepath.Join(*outDir, "damaris"))
	if err != nil {
		log.Fatalf("damaris coupling: %v", err)
	}

	fmt.Printf("mean step time, %d³ cavity, %d steps:\n", *grid, *steps)
	fmt.Printf("  no visualization       %9.3f ms\n", mean(baseline))
	fmt.Printf("  VisIt-style (sync)     %9.3f ms  (simulation stalls in the pipeline)\n", mean(visitTimes))
	fmt.Printf("  Damaris (dedicated)    %9.3f ms  (pipeline runs on the dedicated core)\n", mean(damarisTimes))
	fmt.Printf("images written under %s/\n", *outDir)
}

func mean(ds []time.Duration) float64 {
	if len(ds) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range ds {
		total += d
	}
	return float64(total.Milliseconds()) / float64(len(ds))
}
