// Compression example: the §IV.D use of the dedicated cores' idle time.
// A CM1 proxy runs for a while; its fields are written through the
// sdf-writer plugin once uncompressed and once with each codec, and the
// program reports the achieved ratios and the simulation-side cost —
// which is zero by construction, because compression happens on the
// dedicated core.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	damaris "repro"
	"repro/internal/cm1"
	"repro/internal/compress"
	"repro/internal/plugins"
)

const configTemplate = `
<simulation name="cm1-compress">
  <architecture><dedicated cores="1"/><buffer size="67108864"/></architecture>
  <data>
    <parameter name="nx" value="32"/>
    <parameter name="ny" value="32"/>
    <parameter name="nz" value="24"/>
    <layout name="grid" type="float64" dimensions="nz,ny,nx"/>
    <variable name="theta" layout="grid" unit="K"/>
    <variable name="qv" layout="grid" unit="kg/kg"/>
    <variable name="w" layout="grid" unit="m/s"/>
  </data>
</simulation>`

func main() {
	steps := flag.Int("steps", 10, "CM1 steps before the measured output")
	flag.Parse()

	params := cm1.DefaultParams()
	params.NX, params.NY, params.NZ = 32, 32, 24
	model, err := cm1.New(params, nil)
	if err != nil {
		log.Fatal(err)
	}
	for s := 0; s < *steps; s++ {
		model.Step()
	}

	fmt.Printf("codec     ratio   client write cost\n")
	for _, codec := range []string{"none", "gorilla", "flate"} {
		ratio, clientCost, err := writeOnce(model, codec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s  %5.2fx  %v\n", codec, ratio, clientCost.Round(time.Microsecond))
	}
	fmt.Println("\nthe client-side cost is the shared-memory copy only: the codec")
	fmt.Println("runs on the dedicated core, so compression is free for the simulation")
}

// writeOnce pushes the model's fields through a fresh node with the
// given codec and returns the on-disk compression ratio and the
// simulation-visible write cost.
func writeOnce(model *cm1.Model, codec string) (ratio float64, clientCost time.Duration, err error) {
	dir, err := tempDir()
	if err != nil {
		return 0, 0, err
	}
	xml := configTemplate
	cfg, err := damaris.ParseConfigString(xml)
	if err != nil {
		return 0, 0, err
	}
	writer, err := newWriterPlugin(dir, codec)
	if err != nil {
		return 0, 0, err
	}
	node, err := damaris.NewNode(cfg, 1, damaris.Options{
		ExtraPlugins: map[string][]damaris.Plugin{"end_iteration": {writer}},
	})
	if err != nil {
		return 0, 0, err
	}
	client := node.Client(0)
	t0 := time.Now()
	for _, f := range model.Fields() {
		if err := client.Write(f.Name, 0, compress.Float64Bytes(f.Data)); err != nil {
			return 0, 0, err
		}
	}
	client.EndIteration(0)
	clientCost = time.Since(t0)
	node.WaitIteration(0)
	if err := node.Shutdown(); err != nil {
		return 0, 0, err
	}
	return writer.CompressionRatio(), clientCost, nil
}

// tempDir creates the output directory for one codec pass.
func tempDir() (string, error) {
	return os.MkdirTemp("", "cm1-compress-*")
}

// newWriterPlugin builds the aggregating SDF writer for one codec.
func newWriterPlugin(dir, codec string) (*plugins.SDFWriter, error) {
	return plugins.NewSDFWriter(dir, codec)
}
