// Quickstart: the smallest complete Damaris integration — one node,
// four simulation cores, the XML-configured sdf-writer plugin running on
// the dedicated core. Run it and inspect the aggregated output with
// cmd/sdfdump.
package main

import (
	"fmt"
	"log"
	"math"

	damaris "repro"
	"repro/internal/compress"
)

const configXML = `
<simulation name="quickstart">
  <architecture>
    <dedicated cores="1"/>
    <buffer size="16777216"/>
    <queue size="64"/>
  </architecture>
  <data>
    <parameter name="nx" value="24"/>
    <parameter name="ny" value="24"/>
    <parameter name="nz" value="16"/>
    <layout name="grid" type="float64" dimensions="nz,ny,nx"/>
    <mesh name="domain" type="rectilinear" origin="0,0,0" spacing="1,1,1"/>
    <variable name="temperature" layout="grid" mesh="domain" unit="K"/>
  </data>
  <plugins>
    <plugin name="sdf-writer" event="end_iteration" dir="quickstart-out" codec="gorilla"/>
    <plugin name="stats" event="end_iteration"/>
  </plugins>
</simulation>`

func main() {
	const cores = 4
	node, err := damaris.NewNodeFromXML(configXML, cores, damaris.Options{})
	if err != nil {
		log.Fatal(err)
	}

	const iterations = 3
	for it := 0; it < iterations; it++ {
		for src := 0; src < cores; src++ {
			client := node.Client(src)
			field := computeSlab(src, it)
			if err := client.Write("temperature", it, field); err != nil {
				log.Fatalf("core %d: %v", src, err)
			}
			client.EndIteration(it)
		}
	}
	node.WaitIteration(iterations - 1)
	if err := node.Shutdown(); err != nil {
		log.Fatal(err)
	}

	st := node.Stats()
	fmt.Printf("quickstart: %d blocks (%d bytes) handed to the dedicated core\n",
		st.BlocksWritten, st.BytesWritten)
	fmt.Printf("aggregated output written to quickstart-out/ (%d iterations)\n", iterations)
}

// computeSlab stands in for a simulation's compute phase: each core
// produces its share of a warm blob drifting across the domain.
func computeSlab(src, it int) []byte {
	const nz, ny, nx = 16, 24, 24
	vals := make([]float64, nz*ny*nx)
	cx := float64((it*4 + src*6) % nxit(nx)) // drifting center
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				d := math.Hypot(float64(i)-cx, float64(j)-12)
				vals[(k*ny+j)*nx+i] = 300 + 5*math.Exp(-d*d/40)
			}
		}
	}
	return compress.Float64Bytes(vals)
}

func nxit(nx int) int { return nx }
