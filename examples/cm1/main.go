// CM1 example: the paper's primary workload on a miniature cluster —
// two simulated SMP nodes of four cores each run the CM1 proxy with real
// halo exchanges, and write their output three ways: file-per-process,
// collective two-phase into a shared file, and through Damaris dedicated
// cores. It prints what each approach produced and how long the
// simulation loop spent blocked on I/O.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	damaris "repro"
	"repro/internal/baselines"
	"repro/internal/cm1"
	"repro/internal/compress"
	"repro/internal/mpi"
)

const (
	coresPerNode = 4
	nodes        = 2
	ranks        = coresPerNode * nodes
	outputEvery  = 5
	totalSteps   = 15
)

const configTemplate = `
<simulation name="cm1-example">
  <architecture><dedicated cores="1"/><buffer size="33554432"/></architecture>
  <data>
    <parameter name="nx" value="16"/>
    <parameter name="ny" value="16"/>
    <parameter name="nz" value="12"/>
    <layout name="grid" type="float64" dimensions="nz,ny,nx"/>
    <variable name="theta" layout="grid" unit="K"/>
    <variable name="qv" layout="grid" unit="kg/kg"/>
    <variable name="w" layout="grid" unit="m/s"/>
  </data>
  <plugins>
    <plugin name="sdf-writer" event="end_iteration" dir="%s" codec="none"/>
  </plugins>
</simulation>`

func main() {
	outDir := flag.String("out", "cm1-out", "output directory")
	flag.Parse()

	for _, mode := range []string{"fpp", "collective", "damaris"} {
		dir := filepath.Join(*outDir, mode)
		blocked, err := run(mode, dir)
		if err != nil {
			log.Fatalf("%s: %v", mode, err)
		}
		files, _ := filepath.Glob(filepath.Join(dir, "*.sdf"))
		fmt.Printf("%-10s  files=%2d  simulation blocked on I/O for %8.3f ms\n",
			mode, len(files), blocked.Seconds()*1e3)
	}
}

// run executes the proxy under one I/O mode and returns the total time
// the simulation ranks spent inside output calls.
func run(mode, dir string) (time.Duration, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}

	// Damaris mode: one node runtime per simulated SMP node.
	var nodeRuntimes []*damaris.Node
	if mode == "damaris" {
		for n := 0; n < nodes; n++ {
			cfgXML := fmt.Sprintf(configTemplate, dir)
			node, err := damaris.NewNodeFromXML(cfgXML, coresPerNode, damaris.Options{NodeID: n})
			if err != nil {
				return 0, err
			}
			nodeRuntimes = append(nodeRuntimes, node)
		}
	}

	var mu sync.Mutex
	var blocked time.Duration
	var runErr error

	mpi.Run(ranks, func(c *mpi.Comm) {
		model, err := cm1.New(cm1.DefaultParams(), c)
		if err != nil {
			mu.Lock()
			runErr = err
			mu.Unlock()
			return
		}
		node := c.Rank() / coresPerNode
		local := c.Rank() % coresPerNode
		for step := 1; step <= totalSteps; step++ {
			model.Step()
			if step%outputEvery != 0 {
				continue
			}
			it := step / outputEvery
			t0 := time.Now()
			switch mode {
			case "fpp":
				_, err = baselines.WriteFPP(c, dir, "cm1", it, model.Fields())
			case "collective":
				_, err = baselines.WriteCollective(c, coresPerNode, dir, "cm1", it, model.Fields())
			case "damaris":
				client := nodeRuntimes[node].Client(local)
				for _, f := range model.Fields() {
					if werr := client.Write(f.Name, it, compress.Float64Bytes(f.Data)); werr != nil {
						err = werr
						break
					}
				}
				client.EndIteration(it)
			}
			mu.Lock()
			blocked += time.Since(t0)
			if err != nil && runErr == nil {
				runErr = err
			}
			mu.Unlock()
		}
	})

	for _, n := range nodeRuntimes {
		if err := n.Shutdown(); err != nil && runErr == nil {
			runErr = err
		}
	}
	return blocked, runErr
}
