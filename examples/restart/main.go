// Restart example: the checkpoint/restart workload end to end. A
// nine-node cluster writes four iterations of objects plus per-
// iteration manifests into an on-disk SDF store — compressed, via the
// adaptive codec pipeline — losing one interior aggregation node
// halfway through. A second phase — pretending to be a fresh process
// after a crash — opens the store, restores the run from its
// manifests (frames decode transparently on Get), picks the latest
// fully-complete checkpoint, and verifies the recovered per-node
// state byte-for-byte against what the simulation wrote: compression
// is invisible to the restart except in the stored byte counts.
//
//	write:   leaf → interior → root → encode+frame → {object, manifest}
//	restart: manifests → framed objects → decode → DecodeBatch → blocks
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"os"

	damaris "repro"
	"repro/internal/cluster"
	"repro/internal/storage"
	"repro/internal/topology"
)

const configXML = `
<simulation name="restartdemo">
  <architecture>
    <dedicated cores="1"/>
    <buffer size="1048576"/>
  </architecture>
  <data>
    <parameter name="n" value="128"/>
    <layout name="row" type="float64" dimensions="n"/>
    <variable name="theta" layout="row" unit="K"/>
  </data>
</simulation>`

const (
	nodes      = 9
	clients    = 2 // per node, plus 1 dedicated core
	iterations = 4
	deadNode   = 1
	failAt     = 2
)

// field builds the deterministic payload for (node, source, iteration):
// a smooth float64 profile (as the layout declares), so the restore can
// be verified byte-for-byte and the codec pipeline has something real
// to compress.
func field(n, s, it int) []byte {
	p := make([]byte, 128*8)
	for i := 0; i < 128; i++ {
		v := 300.0 + float64(n) + float64(s)/4 + 2*math.Sin(float64(i+it*3)/11.0)
		binary.LittleEndian.PutUint64(p[i*8:], math.Float64bits(v))
	}
	return p
}

func main() {
	dir, err := os.MkdirTemp("", "restart-objects-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// ---- Phase 1: the original run, with a mid-run node death. ----
	cfg, err := damaris.ParseConfigString(configXML)
	if err != nil {
		log.Fatal(err)
	}
	sdfStore, err := storage.NewSDF(nil, 4, 1e9, dir)
	if err != nil {
		log.Fatal(err)
	}
	// The compression pipeline wraps any backend: every root object is
	// trial-encoded per dataset, framed with its codec choice, and
	// manifests record the codec and sizes.
	store := storage.NewCompressing(sdfStore, storage.CompressionOptions{
		Codec: storage.AdaptiveCodec,
	})
	c, err := cluster.New(cluster.Config{
		Platform: topology.Platform{Name: "demo", Nodes: nodes, CoresPerNode: clients + 1},
		Meta:     cfg,
		Fanout:   2,
		Store:    store,
		Failures: cluster.NewFailureSchedule().Add(deadNode, failAt),
	})
	if err != nil {
		log.Fatal(err)
	}
	for n := 0; n < nodes; n++ {
		for s := 0; s < clients; s++ {
			cl := c.Client(n, s)
			for it := 0; it < iterations; it++ {
				if err := cl.Write("theta", it, field(n, s, it)); err != nil {
					log.Fatal(err)
				}
				cl.EndIteration(it)
			}
		}
	}
	c.WaitIteration(iterations - 1)
	if err := c.Shutdown(); err != nil {
		log.Fatal(err)
	}
	st := c.Stats()
	fmt.Printf("run finished: %d objects + %d manifests in %s\n",
		st.ObjectsWritten, st.ManifestsWritten, dir)
	acc := store.Accounting()
	fmt.Printf("compression: %d objects framed, %d -> %d bytes\n",
		acc.ObjectsCompressed, acc.ObjectRawBytes, acc.ObjectEncodedBytes)
	fmt.Printf("node %d died at iteration %d: %d blocks lost\n\n", deadNode, failAt, st.BlocksLost)

	// ---- Phase 2: restart. A fresh backend over the same directory —
	// everything below here uses only what is on disk; the frame
	// headers inside the store say how to decode each object. ----
	sdfReader, err := storage.NewSDF(nil, 4, 1e9, dir)
	if err != nil {
		log.Fatal(err)
	}
	reader := storage.NewCompressing(sdfReader, storage.CompressionOptions{})
	r, err := cluster.Restore(reader, "restartdemo")
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range r.Problems {
		fmt.Printf("restore problem: %v\n", p)
	}
	fmt.Printf("restored %d manifests covering %d iterations, %d blocks total\n",
		r.Manifests, len(r.Iterations), r.TotalBlocks())
	for _, it := range r.IterationNumbers() {
		ri := r.Iterations[it]
		mark := "complete checkpoint"
		if !ri.Complete(nodes) {
			mark = fmt.Sprintf("%d/%d nodes — dead node's data is gone", len(ri.Covers), nodes)
		}
		fmt.Printf("  iteration %d: %2d blocks, %s\n", it, len(ri.Blocks), mark)
	}

	ckpt, ok := r.LatestComplete(nodes)
	if !ok {
		log.Fatal("no fully-complete checkpoint to restart from")
	}
	fmt.Printf("\nrestarting from iteration %d (latest complete checkpoint)\n", ckpt)

	// Load the checkpoint back as per-node state and verify every block
	// against what the simulation originally produced.
	state := r.NodeBlocks(ckpt)
	verified := 0
	for n, blocks := range state {
		for _, blk := range blocks {
			if !bytes.Equal(blk.Data, field(n, blk.Source, ckpt)) {
				log.Fatalf("node %d source %d: restored payload differs", n, blk.Source)
			}
			verified++
		}
	}
	fmt.Printf("verified %d blocks across %d nodes byte-for-byte\n", verified, len(state))

	// Replay is the read-side mirror of a cluster hook: the same logic
	// that could have run in-situ runs here over the stored iterations.
	var replayed []int
	err = r.Replay(func(it int, b *cluster.Batch) error {
		replayed = append(replayed, it)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed iterations %v through a hook-style callback\n", replayed)
	fmt.Println("\nthe simulation would now resume computing from iteration", ckpt+1)
}
