// Multitenant example: one long-lived cluster.Service hosting three
// simulations on a shared four-node machine. The service owns the
// platform, a sharded fair-share token broker, and one object store;
// each tenant borrows a slice of nodes through an admission policy.
// Two tenants fit side by side; the third oversubscribes the machine
// and queues until a core frees up — then one running tenant is
// evicted mid-flight to show the reclaim path: its broker tokens and
// pooled buffers come back, and the queued tenant starts.
package main

import (
	"fmt"
	"log"
	"math"
	"sync"

	damaris "repro"
	"repro/internal/cluster"
	"repro/internal/compress"
	"repro/internal/storage"
	"repro/internal/topology"
)

const configXML = `
<simulation name="tenantdemo">
  <architecture>
    <dedicated cores="1"/>
    <buffer size="4194304"/>
  </architecture>
  <data>
    <parameter name="nx" value="64"/>
    <layout name="row" type="float64" dimensions="nx"/>
    <variable name="theta" layout="row" unit="K"/>
  </data>
</simulation>`

const (
	nodes      = 4
	coresPer   = 3 // 2 simulation clients + 1 dedicated
	iterations = 3
)

func main() {
	// The shared substrate: every tenant's dedicated cores arbitrate
	// their writes on this one broker, fair-share weighted, holder-tagged
	// so the per-tenant accounting stays exact.
	broker := storage.NewShardedBroker(storage.BrokerOptions{
		Policy:  storage.PolicyFairShare,
		Targets: 2,
	}, 2)
	store := storage.NewMemory(nil, 2, 1e9)
	svc, err := cluster.NewService(cluster.ClusterConfig{
		Platform: topology.Platform{Name: "demo", Nodes: nodes, CoresPerNode: coresPer},
		Store:    store,
		Broker:   broker,
	}, cluster.ServiceOptions{Admission: cluster.AdmitDeadline})
	if err != nil {
		log.Fatal(err)
	}

	submit := func(name string, quota int, weight float64) *cluster.Tenant {
		cfg, err := damaris.ParseConfigString(configXML)
		if err != nil {
			log.Fatal(err)
		}
		tn, err := svc.Submit(cluster.RunSpec{
			Meta:    cfg,
			JobName: name,
			Quota:   cluster.Quota{Nodes: quota},
			Weight:  weight,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("submitted %q (quota %d nodes): %s\n", name, quota, tn.State())
		return tn
	}

	// Two tenants fill the machine; the third queues.
	alpha := submit("alpha", 2, 1)
	beta := submit("beta", 2, 2)
	gamma := submit("gamma", 2, 1)

	// Drive alpha and beta concurrently, like two independent jobs.
	var wg sync.WaitGroup
	for _, tn := range []*cluster.Tenant{alpha, beta} {
		wg.Add(1)
		go func(tn *cluster.Tenant) {
			defer wg.Done()
			drive(tn)
		}(tn)
	}
	wg.Wait()

	// Evict beta mid-life: its tokens and buffers are reclaimed, its
	// cores return to the pool, and gamma — queued until now — starts.
	if err := beta.Evict(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evicted %q; tokens outstanding on the shared broker: %d\n",
		"beta", broker.Outstanding())
	if err := gamma.Wait(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%q dispatched from the queue on %d nodes\n", "gamma", gamma.Nodes())
	drive(gamma)
	if err := gamma.Finish(); err != nil {
		log.Fatal(err)
	}
	if err := alpha.Finish(); err != nil {
		log.Fatal(err)
	}

	ss := svc.Stats()
	fmt.Printf("\nservice: %d submitted, %d completed, %d evicted, peak queue %d\n",
		ss.Submitted, ss.Completed, ss.Evicted, ss.MaxQueued)
	for id, st := range ss.PerTenant {
		fmt.Printf("  tenant %d: %d iterations, %d objects, %d token grants, %d reclaimed\n",
			id, st.IterationsCompleted, st.ObjectsWritten, st.TokenGrants, st.TokensReclaimed)
	}
	fmt.Printf("totals: %d objects on the shared store, %d broker grants accounted, 0 leaked (%d outstanding)\n",
		ss.Total.ObjectsWritten, ss.Total.TokenGrants, broker.Outstanding())
	if err := svc.Close(); err != nil {
		log.Fatal(err)
	}
}

// drive pushes every iteration through every client of a tenant's
// cluster, exactly as a standalone run would.
func drive(tn *cluster.Tenant) {
	c := tn.Cluster()
	if c == nil {
		log.Fatalf("tenant %d has no cluster (state %s)", tn.ID(), tn.State())
	}
	field := make([]float64, 64)
	var wg sync.WaitGroup
	for n := 0; n < c.Nodes(); n++ {
		for s := 0; s < c.ClientsPerNode(); s++ {
			wg.Add(1)
			go func(n, s int) {
				defer wg.Done()
				client := c.Client(n, s)
				for it := 0; it < iterations; it++ {
					for i := range field {
						field[i] = 290 + 10*math.Sin(float64(n+s+it)+float64(i)/10)
					}
					if err := client.Write("theta", it, compress.Float64Bytes(field)); err != nil {
						log.Fatal(err)
					}
					client.EndIteration(it)
				}
			}(n, s)
		}
	}
	wg.Wait()
	c.WaitIteration(iterations - 1)
	fmt.Printf("tenant %d (%d nodes) completed %d iterations\n",
		tn.ID(), c.Nodes(), iterations)
}
