package damaris

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/compress"
	"repro/internal/sdf"
)

// TestPublicAPIEndToEnd exercises the documented five-line integration:
// XML config, node, clients, writes, shutdown — with the XML-configured
// sdf-writer producing a readable aggregated file.
func TestPublicAPIEndToEnd(t *testing.T) {
	dir := t.TempDir()
	xml := `<simulation name="facade">
	  <architecture><dedicated cores="1"/><buffer size="8388608"/></architecture>
	  <data>
	    <parameter name="n" value="8"/>
	    <layout name="cube" type="float64" dimensions="n,n,n"/>
	    <variable name="theta" layout="cube" unit="K"/>
	  </data>
	  <plugins>
	    <plugin name="sdf-writer" event="end_iteration" dir="` + dir + `" codec="gorilla"/>
	  </plugins>
	</simulation>`
	node, err := NewNodeFromXML(xml, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]float64, 512)
	for i := range data {
		data[i] = 300
	}
	for it := 0; it < 2; it++ {
		for src := 0; src < 2; src++ {
			if err := node.Client(src).Write("theta", it, compress.Float64Bytes(data)); err != nil {
				t.Fatal(err)
			}
			node.Client(src).EndIteration(it)
		}
	}
	node.WaitIteration(1)
	if err := node.Shutdown(); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.sdf"))
	if len(files) != 2 {
		t.Fatalf("wrote %d files, want 2", len(files))
	}
	r, err := sdf.Open(files[0])
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if len(r.Datasets()) != 2 {
		t.Fatalf("aggregated %d datasets, want 2", len(r.Datasets()))
	}
}

func TestParseConfigHelpers(t *testing.T) {
	xml := `<simulation name="x"><data>
	  <layout name="l" type="float32" dimensions="4"/>
	  <variable name="v" layout="l"/>
	</data></simulation>`
	cfg, err := ParseConfigString(xml)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "x" {
		t.Fatalf("name = %q", cfg.Name)
	}
	cfg2, err := ParseConfig(strings.NewReader(xml))
	if err != nil || cfg2.Name != "x" {
		t.Fatalf("ParseConfig: %v", err)
	}
	if _, err := LoadConfig(filepath.Join(t.TempDir(), "missing.xml")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRegisterPluginFromFacade(t *testing.T) {
	called := false
	RegisterPlugin("facade-probe", func(cfg map[string]string) (Plugin, error) {
		return PluginFunc{PluginName: "facade-probe", Fn: func(*PluginContext, Event) error {
			called = true
			return nil
		}}, nil
	})
	xml := `<simulation name="t"><data>
	  <layout name="l" type="float64" dimensions="4"/>
	  <variable name="v" layout="l"/>
	</data>
	<plugins><plugin name="facade-probe" event="end_iteration"/></plugins>
	</simulation>`
	node, err := NewNodeFromXML(xml, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := node.Client(0)
	if err := c.Write("v", 0, make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	c.EndIteration(0)
	node.WaitIteration(0)
	node.Shutdown()
	if !called {
		t.Fatal("registered plugin never ran")
	}
}
