package damaris

// Full-stack integration tests: the CM1 proxy running on the in-process
// MPI runtime across several simulated SMP nodes, writing through the
// Damaris middleware with the aggregating SDF plugin, then reading every
// block back from disk and checking it bitwise against the simulation
// state — the complete §III pipeline end to end.

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/cm1"
	"repro/internal/compress"
	"repro/internal/mpi"
	"repro/internal/sdf"
)

const integrationXML = `
<simulation name="integration">
  <architecture><dedicated cores="1"/><buffer size="16777216"/></architecture>
  <data>
    <parameter name="nx" value="8"/>
    <parameter name="ny" value="8"/>
    <parameter name="nz" value="6"/>
    <layout name="grid" type="float64" dimensions="nz,ny,nx"/>
    <variable name="theta" layout="grid" unit="K"/>
    <variable name="qv" layout="grid" unit="kg/kg"/>
    <variable name="w" layout="grid" unit="m/s"/>
  </data>
  <plugins>
    <plugin name="sdf-writer" event="end_iteration" dir="%s" codec="gorilla"/>
  </plugins>
</simulation>`

func TestCM1ThroughDamarisEndToEnd(t *testing.T) {
	const (
		nodes        = 2
		coresPerNode = 4
		ranks        = nodes * coresPerNode
		steps        = 9
		outputEvery  = 3
	)
	dir := t.TempDir()

	// One Damaris node runtime per simulated SMP node, with the
	// aggregating writer configured from XML.
	var nodeRuntimes []*Node
	for n := 0; n < nodes; n++ {
		node, err := NewNodeFromXML(fmt.Sprintf(integrationXML, dir), coresPerNode, Options{NodeID: n})
		if err != nil {
			t.Fatal(err)
		}
		nodeRuntimes = append(nodeRuntimes, node)
	}

	// Keep a copy of what each rank wrote last, to verify the read-back.
	var mu sync.Mutex
	written := map[string][]float64{} // "var/src" -> data at final output

	mpi.Run(ranks, func(c *mpi.Comm) {
		params := cm1.DefaultParams()
		params.NX, params.NY, params.NZ = 8, 8, 6
		model, err := cm1.New(params, c)
		if err != nil {
			t.Error(err)
			return
		}
		node := c.Rank() / coresPerNode
		local := c.Rank() % coresPerNode
		client := nodeRuntimes[node].Client(local)
		for step := 1; step <= steps; step++ {
			model.Step()
			if step%outputEvery != 0 {
				continue
			}
			it := step / outputEvery
			for _, f := range model.Fields() {
				if err := client.Write(f.Name, it, compress.Float64Bytes(f.Data)); err != nil {
					t.Errorf("rank %d write %s: %v", c.Rank(), f.Name, err)
				}
				if step == steps {
					mu.Lock()
					key := fmt.Sprintf("node%d/%s/src%04d", node, f.Name, local)
					written[key] = append([]float64(nil), f.Data...)
					mu.Unlock()
				}
			}
			client.EndIteration(it)
		}
	})
	for _, n := range nodeRuntimes {
		if err := n.Shutdown(); err != nil {
			t.Fatal(err)
		}
	}

	// One aggregated file per node per output phase.
	files, err := filepath.Glob(filepath.Join(dir, "*.sdf"))
	if err != nil {
		t.Fatal(err)
	}
	wantFiles := nodes * (steps / outputEvery)
	if len(files) != wantFiles {
		t.Fatalf("found %d files, want %d", len(files), wantFiles)
	}

	// Read back the final iteration of every node and compare bitwise.
	finalIt := steps / outputEvery
	for n := 0; n < nodes; n++ {
		path := filepath.Join(dir, fmt.Sprintf("integration-node%04d-it%06d.sdf", n, finalIt))
		r, err := sdf.Open(path)
		if err != nil {
			t.Fatalf("node %d: %v", n, err)
		}
		if got := len(r.Datasets()); got != 3*coresPerNode {
			t.Fatalf("node %d file has %d datasets, want %d", n, got, 3*coresPerNode)
		}
		for _, varName := range []string{"theta", "qv", "w"} {
			for src := 0; src < coresPerNode; src++ {
				dsPath := fmt.Sprintf("%s/src%04d", varName, src)
				vals, err := r.ReadFloat64s(dsPath)
				if err != nil {
					t.Fatalf("node %d %s: %v", n, dsPath, err)
				}
				key := fmt.Sprintf("node%d/%s/src%04d", n, varName, src)
				want := written[key]
				if len(vals) != len(want) {
					t.Fatalf("%s: %d values, want %d", key, len(vals), len(want))
				}
				for i := range vals {
					if vals[i] != want[i] {
						t.Fatalf("%s: value %d = %v, want %v (gorilla round-trip broke?)",
							key, i, vals[i], want[i])
					}
				}
			}
		}
		r.Close()
	}

	// The middleware must have returned all shared memory.
	for n, rt := range nodeRuntimes {
		if rt.Segment().Allocated() != 0 {
			t.Errorf("node %d leaked %d bytes of shared memory", n, rt.Segment().Allocated())
		}
	}
}

func TestSkipPolicyUnderBackpressureEndToEnd(t *testing.T) {
	// A slow plugin plus a segment sized for one iteration: the client
	// must observe ErrSkipped on some iterations and never deadlock.
	xml := `<simulation name="pressure">
	  <architecture><buffer size="65536"/></architecture>
	  <data>
	    <layout name="l" type="float64" dimensions="4096"/>
	    <variable name="v" layout="l"/>
	  </data>
	</simulation>`
	slow := PluginFunc{PluginName: "slow", Fn: func(ctx *PluginContext, ev Event) error {
		// Consume the iteration slowly by scanning its blocks twice.
		for _, ref := range ctx.Index.Iteration(ev.Iteration) {
			sum := 0.0
			for _, b := range ctx.BlockBytes(ref) {
				sum += float64(b)
			}
			_ = sum
		}
		return nil
	}}
	node, err := NewNodeFromXML(xml, 1, Options{
		ExtraPlugins: map[string][]Plugin{"end_iteration": {slow}},
	})
	if err != nil {
		t.Fatal(err)
	}
	client := node.Client(0)
	data := make([]byte, 4096*8)
	skips := 0
	for it := 0; it < 200; it++ {
		if err := client.Write("v", it, data); err != nil {
			skips++
		}
		client.EndIteration(it)
	}
	if err := node.Shutdown(); err != nil {
		t.Fatal(err)
	}
	st := node.Stats()
	if st.BlocksWritten == 0 {
		t.Fatal("nothing was ever written")
	}
	if st.BlocksWritten+int64(skips) != 200 {
		t.Fatalf("accounting: %d written + %d skipped != 200", st.BlocksWritten, skips)
	}
}
