// Package buf provides pooled byte buffers for the hot data path: the
// per-iteration block payloads that travel from a node's shared-memory
// segment up the aggregation tree and into a storage backend.
//
// Without pooling, every iteration of every node allocates (and makes
// garbage of) one buffer per variable block — at high fan-in the
// allocator and the GC become the aggregation bottleneck. The pool
// recycles those buffers through size-class sync.Pools, so a
// steady-state run reaches an allocation fixed point: iteration N+1
// reuses the blocks iteration N released.
//
// Ownership rule (see docs/ARCHITECTURE.md, "Data path & memory
// model"): a buffer obtained from Get has exactly one owner at a time.
// The owner may hand it off (the forwarder hands payloads to the
// aggregation layer, which hands them to the root); whoever holds a
// buffer when it leaves the data path — the tree root after its
// backend Put returns, or the failure path when a batch is dropped —
// must call Put exactly once. Returning a buffer twice, or using it
// after Put, is a data race the pool does not detect; the race test in
// buf_test.go exists to catch regressions in the callers.
package buf

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// minClassBits is the smallest pooled size class (1<<minClassBits
// bytes). Requests below it round up: tiny buffers are cheaper to
// over-allocate than to fragment into more classes.
const minClassBits = 8 // 256 B

// maxClassBits is the largest pooled size class (1<<maxClassBits
// bytes). Requests above it fall through to the plain allocator: they
// are rare (a whole-cluster merged batch), and parking many of them in
// a pool would pin more memory than the recycling saves.
const maxClassBits = 24 // 16 MiB

// classes is the number of size-class pools.
const classes = maxClassBits - minClassBits + 1

// pools holds one sync.Pool per power-of-two size class. Every pooled
// buffer has cap(b) == 1<<(minClassBits+i) exactly; Get re-slices to
// the requested length.
var pools [classes]sync.Pool

// Stats counters (atomic; see PoolStats).
var (
	statGets   atomic.Int64
	statPuts   atomic.Int64
	statMisses atomic.Int64 // Gets served by the allocator, not the pool
	statBig    atomic.Int64 // requests beyond the largest class
)

// classFor returns the size-class index for a request of n bytes, or
// -1 when n exceeds the largest pooled class.
func classFor(n int) int {
	if n <= 1<<minClassBits {
		return 0
	}
	b := bits.Len(uint(n - 1)) // ceil(log2(n))
	if b > maxClassBits {
		return -1
	}
	return b - minClassBits
}

// Get returns a buffer of length n. The contents are unspecified — the
// caller must overwrite the bytes it will read (recycled buffers carry
// the previous owner's data). Get never returns nil, and n may be 0.
func Get(n int) []byte {
	statGets.Add(1)
	c := classFor(n)
	if c < 0 {
		statBig.Add(1)
		statMisses.Add(1)
		return make([]byte, n)
	}
	if v := pools[c].Get(); v != nil {
		w := v.(*poolBuf)
		b := w.b
		w.b = nil
		putPool.Put(w)
		return b[:n]
	}
	statMisses.Add(1)
	return make([]byte, 1<<(minClassBits+c))[:n]
}

// poolBuf wraps the slice so the pool stores a pointer (avoids an
// allocation per Put from the interface conversion of a slice header).
type poolBuf struct{ b []byte }

// putPool recycles poolBuf wrappers themselves.
var putPool = sync.Pool{New: func() any { return new(poolBuf) }}

// Put returns a buffer previously obtained from Get to its size-class
// pool. Buffers whose capacity is not a pooled class (including those
// larger than the largest class, and foreign slices) are dropped for
// the GC — Put never corrupts the pool with an odd-sized buffer that a
// later Get would hand out short. Put(nil) is a no-op.
func Put(b []byte) {
	if b == nil {
		return
	}
	statPuts.Add(1)
	c := cap(b)
	if c < 1<<minClassBits || c&(c-1) != 0 {
		return // not a pooled class: let the GC have it
	}
	idx := bits.Len(uint(c)) - 1 - minClassBits
	if idx < 0 || idx >= classes {
		return
	}
	w := putPool.Get().(*poolBuf)
	w.b = b[:cap(b)]
	pools[idx].Put(w)
}

// Clone returns a pooled copy of src: Get(len(src)) filled with src's
// bytes. It is the one-liner the forwarding path uses to snapshot a
// shared-memory block before the segment frees it.
func Clone(src []byte) []byte {
	dst := Get(len(src))
	copy(dst, src)
	return dst
}

// PoolStats is a snapshot of the pool's global counters, for tests and
// diagnostics.
type PoolStats struct {
	// Gets and Puts count Get and Put calls.
	Gets, Puts int64
	// Misses counts Gets that fell through to the allocator (empty
	// pool, or request beyond the largest class).
	Misses int64
	// Oversize counts requests beyond the largest pooled class.
	Oversize int64
}

// Stats returns a snapshot of the global pool counters. The counters
// are monotonic; rates come from differencing two snapshots.
func Stats() PoolStats {
	return PoolStats{
		Gets:     statGets.Load(),
		Puts:     statPuts.Load(),
		Misses:   statMisses.Load(),
		Oversize: statBig.Load(),
	}
}
