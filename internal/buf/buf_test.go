package buf

import (
	"bytes"
	"sync"
	"testing"
)

func TestClassFor(t *testing.T) {
	cases := []struct {
		n, class int
	}{
		{0, 0}, {1, 0}, {256, 0},
		{257, 1}, {512, 1},
		{513, 2}, {1024, 2},
		{1 << 24, maxClassBits - minClassBits},
		{1<<24 + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}

func TestGetLengthAndClassCapacity(t *testing.T) {
	for _, n := range []int{0, 1, 255, 256, 257, 4096, 100000, 1 << 24} {
		b := Get(n)
		if len(b) != n {
			t.Fatalf("Get(%d) returned len %d", n, len(b))
		}
		if c := classFor(n); c >= 0 && cap(b) != 1<<(minClassBits+c) {
			t.Fatalf("Get(%d) cap = %d, want class size %d", n, cap(b), 1<<(minClassBits+c))
		}
		Put(b)
	}
}

func TestOversizeFallsThrough(t *testing.T) {
	n := 1<<24 + 1
	before := Stats()
	b := Get(n)
	if len(b) != n {
		t.Fatalf("oversize Get returned len %d", len(b))
	}
	after := Stats()
	if after.Oversize <= before.Oversize {
		t.Fatal("oversize Get not counted")
	}
	Put(b) // must not wedge a pool with an unpooled size
}

func TestPutRejectsOddCapacities(t *testing.T) {
	// A foreign slice whose capacity is not a pooled power of two must
	// be dropped, never handed back out short by a later Get.
	Put(make([]byte, 300))
	Put(make([]byte, 0, 100))
	Put(nil)
	b := Get(512)
	if len(b) != 512 || cap(b) < 512 {
		t.Fatalf("Get(512) after odd Puts: len=%d cap=%d", len(b), cap(b))
	}
	Put(b)
}

func TestCloneCopies(t *testing.T) {
	src := []byte("the payload under test")
	dst := Clone(src)
	if !bytes.Equal(src, dst) {
		t.Fatalf("Clone = %q, want %q", dst, src)
	}
	dst[0] = 'X'
	if src[0] == 'X' {
		t.Fatal("Clone aliases its source")
	}
	Put(dst)
}

// TestPoolConcurrentReuse hammers the pool from many goroutines under
// the race detector: each goroutine stamps its buffers with a private
// pattern and verifies the stamp before releasing. A double Put (two
// owners holding the same buffer) shows up as either a failed verify
// or a race report.
func TestPoolConcurrentReuse(t *testing.T) {
	const (
		goroutines = 8
		rounds     = 2000
	)
	sizes := []int{64, 256, 300, 4096, 65536}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(stamp byte) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				n := sizes[i%len(sizes)]
				b := Get(n)
				for j := range b {
					b[j] = stamp
				}
				for j := range b {
					if b[j] != stamp {
						t.Errorf("buffer corrupted: got %d, want %d", b[j], stamp)
						return
					}
				}
				Put(b)
			}
		}(byte(g + 1))
	}
	wg.Wait()
}

func TestStatsMonotone(t *testing.T) {
	before := Stats()
	b := Get(1024)
	Put(b)
	after := Stats()
	if after.Gets <= before.Gets || after.Puts <= before.Puts {
		t.Fatalf("stats did not advance: %+v -> %+v", before, after)
	}
}
