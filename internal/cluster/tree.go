// Package cluster scales the middleware past one SMP node: it
// instantiates N core.Nodes from a topology.Platform and wires their
// dedicated cores into a forest of k-ary aggregation trees. Leaf
// dedicated cores forward each completed iteration's blocks to their
// parent; interior nodes batch the subtree's blocks into bigger
// payloads; tree roots issue few large sequential streams to a
// storage.Backend and drive cluster-wide end-of-iteration hooks.
//
// The same Tree arithmetic also routes the discrete-event model of the
// strategies in internal/iostrat, so simulated and runtime clusters
// aggregate along identical topologies.
package cluster

import (
	"fmt"
	"sort"
)

// Tree is a forest of complete k-ary aggregation trees over node ids
// 0..N-1. Nodes are partitioned into contiguous subtrees, one per root;
// within a subtree, heap indexing defines parent/child edges.
type Tree struct {
	n      int
	fanout int
	starts []int // first node id of each subtree, ascending
}

// NewTree builds a forest over n nodes with the given fanout (children
// per interior node, min 1) and number of roots (clamped to [1, n]).
func NewTree(n, fanout, roots int) Tree {
	if n <= 0 {
		panic(fmt.Sprintf("cluster: tree over %d nodes", n))
	}
	if fanout < 1 {
		fanout = 1
	}
	if roots < 1 {
		roots = 1
	}
	if roots > n {
		roots = n
	}
	starts := make([]int, roots)
	base, extra := n/roots, n%roots
	off := 0
	for s := range starts {
		starts[s] = off
		off += base
		if s < extra {
			off++
		}
	}
	return Tree{n: n, fanout: fanout, starts: starts}
}

// Nodes returns the number of nodes in the forest.
func (t Tree) Nodes() int { return t.n }

// Fanout returns the children-per-node limit.
func (t Tree) Fanout() int { return t.fanout }

// Roots returns the root node ids, ascending.
func (t Tree) Roots() []int { return append([]int(nil), t.starts...) }

// subtree returns the start and size of the subtree containing node i.
func (t Tree) subtree(i int) (start, size int) {
	t.check(i)
	// Last start <= i.
	s := sort.SearchInts(t.starts, i+1) - 1
	start = t.starts[s]
	if s+1 < len(t.starts) {
		size = t.starts[s+1] - start
	} else {
		size = t.n - start
	}
	return start, size
}

func (t Tree) check(i int) {
	if i < 0 || i >= t.n {
		panic(fmt.Sprintf("cluster: node %d out of range [0,%d)", i, t.n))
	}
}

// Parent returns the parent of node i, or ok=false when i is a root.
func (t Tree) Parent(i int) (parent int, ok bool) {
	start, _ := t.subtree(i)
	l := i - start
	if l == 0 {
		return 0, false
	}
	return start + (l-1)/t.fanout, true
}

// Children returns the child node ids of node i (empty for leaves).
func (t Tree) Children(i int) []int {
	start, size := t.subtree(i)
	l := i - start
	var kids []int
	for c := t.fanout*l + 1; c <= t.fanout*l+t.fanout && c < size; c++ {
		kids = append(kids, start+c)
	}
	return kids
}

// IsRoot reports whether node i is a subtree root.
func (t Tree) IsRoot(i int) bool {
	_, ok := t.Parent(i)
	return !ok
}

// IsLeaf reports whether node i has no children.
func (t Tree) IsLeaf(i int) bool { return len(t.Children(i)) == 0 }

// RootOf returns the root of the subtree containing node i.
func (t Tree) RootOf(i int) int {
	start, _ := t.subtree(i)
	return start
}

// Depth returns the number of levels of the deepest subtree (1 when
// every node is a root).
func (t Tree) Depth() int {
	max := 0
	for i := 0; i < t.n; i++ {
		d := 1
		for j := i; ; {
			p, ok := t.Parent(j)
			if !ok {
				break
			}
			j = p
			d++
		}
		if d > max {
			max = d
		}
	}
	return max
}
