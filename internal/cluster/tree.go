// Package cluster scales the middleware past one SMP node: it
// instantiates N core.Nodes from a topology.Platform and wires their
// dedicated cores into a forest of k-ary aggregation trees. Leaf
// dedicated cores forward each completed iteration's blocks to their
// parent; interior nodes batch the subtree's blocks into bigger
// payloads; tree roots issue few large sequential streams to a
// storage.Backend and drive cluster-wide end-of-iteration hooks.
//
// The same Tree arithmetic also routes the discrete-event model of the
// strategies in internal/iostrat, so simulated and runtime clusters
// aggregate along identical topologies.
//
// # Failure semantics
//
// A Tree tolerates node loss (Fail): when a node dies, its children are
// re-routed to the dead node's parent; when a root dies, its first live
// child is promoted to root and the remaining children re-route to that
// promoted sibling. A childless root that dies takes its (empty)
// subtree with it. Dead nodes keep a drain target (DrainTarget) — the
// destination their in-flight data is forwarded to — chased through any
// later deaths.
//
// What a failure loses and what it keeps, at the cluster layer:
//
//   - the dead node's own blocks from its failure iteration onward are
//     lost (Stats.BlocksLost);
//   - iterations already merged but not yet forwarded by the dead node
//     are flushed toward the drain target as partial contributions, so
//     the children's data still reaches a root;
//   - re-routed children's blocks from later iterations flow to the new
//     parent directly (Stats.ReroutedEdges counts the moved edges).
//
// Stats.PartialIterations counts the distinct iterations that some root
// stored without that root's full live-subtree coverage (straggler or
// orphaned data flushed at shutdown); data missing only because its
// origin node died does not make an iteration partial — that loss shows
// up in the per-iteration Stats.Completeness fractions instead.
package cluster

import (
	"fmt"
	"sort"
)

// Tree is a forest of complete k-ary aggregation trees over node ids
// 0..N-1. Nodes are partitioned into contiguous subtrees, one per root;
// within a subtree, heap indexing defines parent/child edges. Fail
// overlays re-routed edges on top of that arithmetic.
//
// The zero overlay is shared between copies of a Tree: Clone makes an
// independent copy, and a Tree being mutated by Fail must be externally
// synchronized with readers.
type Tree struct {
	n      int
	fanout int
	starts []int // first node id of each subtree, ascending

	// Failure overlay, nil until the first Fail.
	dead    map[int]bool
	reroute map[int]int // child → adopted parent; -1 = promoted to root
	drain   map[int]int // dead node → in-flight data target; -1 = nowhere
}

// RerouteEdge records one edge moved by a failure: Child now reports to
// NewParent; NewParent == -1 means Child was promoted to a tree root.
type RerouteEdge struct {
	Child     int
	NewParent int
}

// NewTree builds a forest over n nodes with the given fanout (children
// per interior node, min 1) and number of roots (clamped to [1, n]).
func NewTree(n, fanout, roots int) Tree {
	if n <= 0 {
		panic(fmt.Sprintf("cluster: tree over %d nodes", n))
	}
	if fanout < 1 {
		fanout = 1
	}
	if roots < 1 {
		roots = 1
	}
	if roots > n {
		roots = n
	}
	starts := make([]int, roots)
	base, extra := n/roots, n%roots
	off := 0
	for s := range starts {
		starts[s] = off
		off += base
		if s < extra {
			off++
		}
	}
	return Tree{n: n, fanout: fanout, starts: starts}
}

// Nodes returns the number of nodes in the forest, dead or alive.
func (t Tree) Nodes() int { return t.n }

// Fanout returns the children-per-node limit of the base arithmetic
// (re-routing may push a live node past it).
func (t Tree) Fanout() int { return t.fanout }

// Alive reports whether node i has not been failed.
func (t Tree) Alive(i int) bool {
	t.check(i)
	return !t.dead[i]
}

// Roots returns the live root node ids, ascending: the original subtree
// roots that are still alive plus any children promoted by root deaths.
func (t Tree) Roots() []int {
	var roots []int
	for _, s := range t.starts {
		if !t.dead[s] {
			roots = append(roots, s)
		}
	}
	for j, p := range t.reroute {
		if p == -1 && !t.dead[j] {
			roots = append(roots, j)
		}
	}
	sort.Ints(roots)
	return roots
}

// SubtreeIndex returns the ordinal of the base subtree containing node
// i — stable across failures (the overlay moves edges, not the
// partition), so per-tree resource windows (broker targets, stripe
// layouts) survive root promotion.
func (t Tree) SubtreeIndex(i int) int {
	t.check(i)
	return sort.SearchInts(t.starts, i+1) - 1
}

// subtree returns the start and size of the base subtree containing
// node i.
func (t Tree) subtree(i int) (start, size int) {
	t.check(i)
	// Last start <= i.
	s := sort.SearchInts(t.starts, i+1) - 1
	start = t.starts[s]
	if s+1 < len(t.starts) {
		size = t.starts[s+1] - start
	} else {
		size = t.n - start
	}
	return start, size
}

func (t Tree) check(i int) {
	if i < 0 || i >= t.n {
		panic(fmt.Sprintf("cluster: node %d out of range [0,%d)", i, t.n))
	}
}

// Parent returns the parent of node i, or ok=false when i is a root.
// For a dead node it reports the edge as of the moment of death.
func (t Tree) Parent(i int) (parent int, ok bool) {
	t.check(i)
	if p, moved := t.reroute[i]; moved {
		if p < 0 {
			return 0, false
		}
		return p, true
	}
	start, _ := t.subtree(i)
	l := i - start
	if l == 0 {
		return 0, false
	}
	return start + (l-1)/t.fanout, true
}

// Children returns the live child node ids of node i (empty for leaves
// and for dead nodes): the base children still attached, plus any nodes
// re-routed to i by failures.
func (t Tree) Children(i int) []int {
	if t.dead[i] {
		return nil
	}
	start, size := t.subtree(i)
	l := i - start
	var kids []int
	for c := t.fanout*l + 1; c <= t.fanout*l+t.fanout && c < size; c++ {
		kid := start + c
		if t.dead[kid] {
			continue
		}
		if _, moved := t.reroute[kid]; moved {
			continue
		}
		kids = append(kids, kid)
	}
	for j, p := range t.reroute {
		if p == i && !t.dead[j] {
			kids = append(kids, j)
		}
	}
	sort.Ints(kids)
	return kids
}

// Fail removes node d from the forest and re-routes its live children:
// to d's parent when d has one, otherwise (d was a root) the first live
// child is promoted to root and its siblings re-route to it. It returns
// the moved edges, including the promotion edge (NewParent == -1), and
// panics when d is out of range or already dead.
func (t *Tree) Fail(d int) []RerouteEdge {
	t.check(d)
	if t.dead[d] {
		panic(fmt.Sprintf("cluster: node %d failed twice", d))
	}
	kids := t.Children(d)
	parent, hasParent := t.Parent(d)
	if t.dead == nil {
		t.dead = map[int]bool{}
		t.reroute = map[int]int{}
		t.drain = map[int]int{}
	}
	t.dead[d] = true

	var edges []RerouteEdge
	switch {
	case hasParent:
		for _, k := range kids {
			t.reroute[k] = parent
			edges = append(edges, RerouteEdge{Child: k, NewParent: parent})
		}
		t.drain[d] = parent
	case len(kids) == 0:
		// A childless root: the subtree is gone, nothing to re-route and
		// nowhere for in-flight data to go.
		t.drain[d] = -1
	default:
		promoted := kids[0]
		t.reroute[promoted] = -1
		edges = append(edges, RerouteEdge{Child: promoted, NewParent: -1})
		for _, k := range kids[1:] {
			t.reroute[k] = promoted
			edges = append(edges, RerouteEdge{Child: k, NewParent: promoted})
		}
		t.drain[d] = promoted
	}
	return edges
}

// DrainTarget resolves where a dead node's in-flight data should be
// forwarded: its re-route destination, chased through any later deaths.
// ok=false when the data has nowhere to go (a childless root died, or i
// is alive and routes normally).
func (t Tree) DrainTarget(i int) (target int, ok bool) {
	t.check(i)
	if !t.dead[i] {
		return 0, false
	}
	x := t.drain[i]
	for x >= 0 && t.dead[x] {
		x = t.drain[x]
	}
	if x < 0 {
		return 0, false
	}
	return x, true
}

// Clone returns an independent copy of the tree, overlay included.
func (t Tree) Clone() Tree {
	c := t
	c.starts = append([]int(nil), t.starts...)
	if t.dead != nil {
		c.dead = make(map[int]bool, len(t.dead))
		for k, v := range t.dead {
			c.dead[k] = v
		}
		c.reroute = make(map[int]int, len(t.reroute))
		for k, v := range t.reroute {
			c.reroute[k] = v
		}
		c.drain = make(map[int]int, len(t.drain))
		for k, v := range t.drain {
			c.drain[k] = v
		}
	}
	return c
}

// LiveSubtree returns the live nodes of the subtree rooted at i,
// ascending (nil when i is dead: its children were re-routed away).
func (t Tree) LiveSubtree(i int) []int {
	if t.dead[i] {
		return nil
	}
	var nodes []int
	var walk func(j int)
	walk = func(j int) {
		nodes = append(nodes, j)
		for _, k := range t.Children(j) {
			walk(k)
		}
	}
	walk(i)
	sort.Ints(nodes)
	return nodes
}

// CoversAll reports whether every required node id is present in the
// covered set — the completion test of coverage-based aggregation,
// shared by the runtime aggregators and the DES mirror in
// internal/iostrat.
func CoversAll(covered map[int]bool, required []int) bool {
	for _, n := range required {
		if !covered[n] {
			return false
		}
	}
	return true
}

// IsRoot reports whether node i is a live subtree root.
func (t Tree) IsRoot(i int) bool {
	if t.dead[i] {
		return false
	}
	_, ok := t.Parent(i)
	return !ok
}

// IsLeaf reports whether node i has no live children.
func (t Tree) IsLeaf(i int) bool { return len(t.Children(i)) == 0 }

// RootOf returns the root of the subtree containing live node i.
func (t Tree) RootOf(i int) int {
	for {
		p, ok := t.Parent(i)
		if !ok {
			return i
		}
		i = p
	}
}

// Depth returns the number of levels of the deepest live subtree (1
// when every live node is a root).
func (t Tree) Depth() int {
	max := 0
	for i := 0; i < t.n; i++ {
		if t.dead[i] {
			continue
		}
		d := 1
		for j := i; ; {
			p, ok := t.Parent(j)
			if !ok {
				break
			}
			j = p
			d++
		}
		if d > max {
			max = d
		}
	}
	return max
}
