package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/meta"
	"repro/internal/storage"
	"repro/internal/topology"
)

const brokerTestMeta = `<simulation name="broker">
  <architecture><dedicated cores="1"/><buffer size="1048576"/></architecture>
  <data>
    <parameter name="n" value="16"/>
    <layout name="row" type="float64" dimensions="n"/>
    <variable name="theta" layout="row"/>
  </data>
</simulation>`

// driveBrokerCluster pushes iterations [from, to) through every client.
func driveBrokerCluster(t *testing.T, c *Cluster, nodes, clients, from, to int) {
	t.Helper()
	data := make([]byte, 16*8)
	var wg sync.WaitGroup
	for n := 0; n < nodes; n++ {
		for s := 0; s < clients; s++ {
			wg.Add(1)
			go func(n, s int) {
				defer wg.Done()
				cl := c.Client(n, s)
				for it := from; it < to; it++ {
					if err := cl.Write("theta", it, data); err != nil {
						t.Errorf("node %d src %d it %d: %v", n, s, it, err)
						return
					}
					cl.EndIteration(it)
				}
			}(n, s)
		}
	}
	wg.Wait()
}

// TestClusterBrokerCoordinatesRoots runs a 2-tree cluster through a
// shared broker: every root Put rides a token grant and every token
// comes back.
func TestClusterBrokerCoordinatesRoots(t *testing.T) {
	const (
		nodes   = 4
		clients = 2
		iters   = 3
		roots   = 2
	)
	cfg, err := meta.ParseString(brokerTestMeta)
	if err != nil {
		t.Fatal(err)
	}
	broker := storage.NewBroker(storage.BrokerOptions{
		Policy:  storage.PolicyDeadline,
		Targets: 1, // both trees contend for the same target
	})
	c, err := New(Config{
		Platform: topology.Platform{Name: "broker", Nodes: nodes, CoresPerNode: clients + 1},
		Meta:     cfg,
		Fanout:   2,
		Roots:    roots,
		Store:    storage.NewMemory(nil, 4, 1e9),
		Broker:   broker,
	})
	if err != nil {
		t.Fatal(err)
	}
	driveBrokerCluster(t, c, nodes, clients, 0, iters)
	c.WaitIteration(iters - 1)
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.ObjectsWritten != iters*roots {
		t.Fatalf("objects written %d, want %d", st.ObjectsWritten, iters*roots)
	}
	if st.TokenGrants != iters*roots {
		t.Fatalf("token grants %d, want one per root object (%d)", st.TokenGrants, iters*roots)
	}
	if broker.Outstanding() != 0 {
		t.Fatalf("%d tokens still held after shutdown", broker.Outstanding())
	}
	if st.IterationsCompleted != iters {
		t.Fatalf("iterations completed %d, want %d", st.IterationsCompleted, iters)
	}
}

// gateStore blocks data Puts until the gate opens, so a test can hold a
// root inside its write while the failure schedule kills nodes.
type gateStore struct {
	storage.ObjectStore
	gate    chan struct{}
	started chan string
}

func (g *gateStore) Put(name string, data []byte) error {
	select {
	case g.started <- name:
	default:
	}
	<-g.gate
	return g.ObjectStore.Put(name, data)
}

// TestDeadRootReleasesToken is the failure-aware release fix: a root
// killed by the schedule while holding (or queued for) a write token
// must not strand it — the broker reclaims the token and the surviving
// root's write proceeds.
func TestDeadRootReleasesToken(t *testing.T) {
	cfg, err := meta.ParseString(brokerTestMeta)
	if err != nil {
		t.Fatal(err)
	}
	broker := storage.NewBroker(storage.BrokerOptions{
		Policy:  storage.PolicyDeadline,
		Targets: 1, // one token: the two roots serialize on it
	})
	gate := &gateStore{
		ObjectStore: storage.NewMemory(nil, 1, 1e9),
		gate:        make(chan struct{}),
		started:     make(chan string, 4),
	}
	// Two single-node trees; node 0 dies at iteration 1, while iteration
	// 0's store is still gated in flight.
	c, err := New(Config{
		Platform:         topology.Platform{Name: "broker", Nodes: 2, CoresPerNode: 2},
		Meta:             cfg,
		Fanout:           2,
		Roots:            2,
		Store:            gate,
		Broker:           broker,
		DisableManifests: true,
		Failures:         NewFailureSchedule().Add(0, 1),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Iteration 0: both roots head for the store; one holds the token
	// inside the gated Put, the other queues on the broker.
	driveBrokerCluster(t, c, 2, 1, 0, 1)
	select {
	case <-gate.started:
	case <-time.After(5 * time.Second):
		t.Fatal("no root reached the store")
	}
	if err := waitFor(func() bool { return broker.QueueLen() == 1 }); err != nil {
		t.Fatalf("second root never queued for the token: %v", err)
	}

	// Iteration 1 kills node 0 (its forwarder sees the death iteration)
	// while the token is held and the queue populated.
	driveBrokerCluster(t, c, 2, 1, 1, 2)
	if err := waitFor(func() bool { return c.Stats().NodesFailed == 1 }); err != nil {
		t.Fatalf("scheduled death never happened: %v", err)
	}

	close(gate.gate)
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.TokensReclaimed == 0 {
		t.Fatal("the dead root's token (held or queued) was never reclaimed")
	}
	if broker.Outstanding() != 0 {
		t.Fatalf("%d tokens stranded after the failure", broker.Outstanding())
	}
	if st.ObjectsWritten == 0 {
		t.Fatal("the surviving root stored nothing")
	}
	if st.NodesFailed != 1 {
		t.Fatalf("nodes failed %d, want 1", st.NodesFailed)
	}
}

// waitFor polls cond for up to 5 seconds.
func waitFor(cond func() bool) error {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return fmt.Errorf("condition not reached in 5s")
}
