package cluster

import (
	"encoding/json"
	"fmt"
	"strings"
)

// ManifestSuffix is appended to a data object's name to form its
// manifest's name, so the two always sort and list together.
const ManifestSuffix = "-manifest"

// manifestFormat identifies (and versions) the manifest encoding.
const manifestFormat = "damaris-manifest-v1"

// ManifestBlock describes one block of a stored batch object: its
// identity and payload size, but not the payload itself.
type ManifestBlock struct {
	Node     int    `json:"node"`
	Source   int    `json:"source"`
	Variable string `json:"variable"`
	Bytes    int    `json:"bytes"`
}

// Manifest is the per-iteration index a tree root stores alongside its
// batch object: which origin nodes contributed, which blocks the object
// holds, and whether the root considered its coverage complete. It is
// the unit the restart path (Restore) navigates by — manifests are
// small, so a restart can decide *what* is recoverable before reading
// any payload.
type Manifest struct {
	// Format is manifestFormat; DecodeManifest rejects anything else.
	Format string `json:"format"`
	// Job is the cluster's job name (the object-name prefix).
	Job string `json:"job"`
	// Root is the tree root that stored the object.
	Root int `json:"root"`
	// Iteration is the simulation iteration the object holds.
	Iteration int `json:"iteration"`
	// Object is the name of the batch data object this manifest indexes.
	Object string `json:"object"`
	// Covers lists the origin nodes whose data (possibly zero blocks)
	// reached this root for the iteration, ascending.
	Covers []int `json:"covers"`
	// Partial marks an object stored below the root's full live-subtree
	// coverage (straggler or orphaned data flushed at shutdown).
	Partial bool `json:"partial"`
	// Blocks indexes the object's blocks in normalized order.
	Blocks []ManifestBlock `json:"blocks"`
	// Codec, RawBytes and EncodedBytes record how the store encoded the
	// data object when it runs the compression pipeline
	// (storage.Compressing): the chosen codec and the object's payload
	// size before and after encoding. Empty/zero on plain stores, so
	// old manifests keep decoding.
	Codec        string `json:"codec,omitempty"`
	RawBytes     int64  `json:"raw_bytes,omitempty"`
	EncodedBytes int64  `json:"encoded_bytes,omitempty"`
}

// Name returns the manifest's own object name.
func (m *Manifest) Name() string { return m.Object + ManifestSuffix }

// IsManifestName reports whether an object name denotes a manifest.
func IsManifestName(name string) bool { return strings.HasSuffix(name, ManifestSuffix) }

// newManifest builds the manifest for a normalized batch about to be
// stored under object name obj.
func newManifest(job string, root int, obj string, b *Batch, covers []int, partial bool) *Manifest {
	m := &Manifest{
		Format:    manifestFormat,
		Job:       job,
		Root:      root,
		Iteration: b.Iteration,
		Object:    obj,
		Covers:    append([]int(nil), covers...),
		Partial:   partial,
		Blocks:    make([]ManifestBlock, 0, len(b.Blocks)),
	}
	for _, blk := range b.Blocks {
		m.Blocks = append(m.Blocks, ManifestBlock{
			Node:     blk.Node,
			Source:   blk.Source,
			Variable: blk.Variable,
			Bytes:    len(blk.Data),
		})
	}
	return m
}

// EncodeManifest serializes a manifest. Field order is fixed and Covers
// and Blocks arrive sorted, so equal manifests encode to equal bytes —
// the same determinism contract EncodeBatch keeps.
func EncodeManifest(m *Manifest) []byte {
	data, err := json.Marshal(m)
	if err != nil {
		// Manifest contains only ints, strings and slices thereof.
		panic(fmt.Sprintf("cluster: manifest encoding: %v", err))
	}
	return data
}

// DecodeManifest parses an object produced by EncodeManifest.
func DecodeManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("cluster: not a manifest object: %w", err)
	}
	if m.Format != manifestFormat {
		return nil, fmt.Errorf("cluster: manifest format %q, want %q", m.Format, manifestFormat)
	}
	return &m, nil
}
