package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"repro/internal/storage"
)

// ManifestSuffix is appended to a data object's name to form its
// manifest's name, so the two always sort and list together.
const ManifestSuffix = "-manifest"

// manifestFormat identifies (and versions) the manifest encoding.
// Version 2 adds the content-addressed chunk set of the data object
// (dedup stores); a manifest without chunks stays v1, so stores written
// by older code and plain backends keep decoding bit-identically.
const (
	manifestFormat   = "damaris-manifest-v1"
	manifestFormatV2 = "damaris-manifest-v2"
)

// ErrNotManifest is returned by DecodeManifest for bytes that do not
// parse as a manifest object at all.
var ErrNotManifest = errors.New("cluster: not a manifest object")

// ErrManifestFormat is returned for a parsed manifest whose format tag
// is neither v1 nor v2 — a foreign or future object this code must not
// guess at.
var ErrManifestFormat = errors.New("cluster: unsupported manifest format")

// ErrBadChunkRef is returned for a v2 manifest whose chunk list is
// structurally invalid: a hash that is not 64 hex characters, a
// non-positive size, or chunks on a manifest claiming the v1 format.
// Restore paths treat it like a missing object — known, not
// recoverable.
var ErrBadChunkRef = errors.New("cluster: invalid manifest chunk reference")

// ManifestBlock describes one block of a stored batch object: its
// identity and payload size, but not the payload itself.
type ManifestBlock struct {
	Node     int    `json:"node"`
	Source   int    `json:"source"`
	Variable string `json:"variable"`
	Bytes    int    `json:"bytes"`
}

// Manifest is the per-iteration index a tree root stores alongside its
// batch object: which origin nodes contributed, which blocks the object
// holds, and whether the root considered its coverage complete. It is
// the unit the restart path (Restore) navigates by — manifests are
// small, so a restart can decide *what* is recoverable before reading
// any payload.
type Manifest struct {
	// Format is manifestFormat; DecodeManifest rejects anything else.
	Format string `json:"format"`
	// Job is the cluster's job name (the object-name prefix).
	Job string `json:"job"`
	// Root is the tree root that stored the object.
	Root int `json:"root"`
	// Iteration is the simulation iteration the object holds.
	Iteration int `json:"iteration"`
	// Object is the name of the batch data object this manifest indexes.
	Object string `json:"object"`
	// Covers lists the origin nodes whose data (possibly zero blocks)
	// reached this root for the iteration, ascending.
	Covers []int `json:"covers"`
	// Partial marks an object stored below the root's full live-subtree
	// coverage (straggler or orphaned data flushed at shutdown).
	Partial bool `json:"partial"`
	// Blocks indexes the object's blocks in normalized order.
	Blocks []ManifestBlock `json:"blocks"`
	// Codec, RawBytes and EncodedBytes record how the store encoded the
	// data object when it runs the compression pipeline
	// (storage.Compressing): the chosen codec and the object's payload
	// size before and after encoding. Empty/zero on plain stores, so
	// old manifests keep decoding.
	Codec        string `json:"codec,omitempty"`
	RawBytes     int64  `json:"raw_bytes,omitempty"`
	EncodedBytes int64  `json:"encoded_bytes,omitempty"`
	// Chunks, ChunkRawBytes and ChunkNewBytes (manifest v2) record the
	// data object's content-addressed decomposition when the store runs
	// the dedup layer (internal/storage/chunk): the chunk set the object
	// depends on, the payload size it reassembles to, and how much of it
	// was actually new — iteration N+1 of a slowly-changing variable
	// references mostly iteration N's chunks. A restart can read the
	// whole dependency graph from manifests alone.
	Chunks        []storage.ChunkRef `json:"chunks,omitempty"`
	ChunkRawBytes int64              `json:"chunk_raw_bytes,omitempty"`
	ChunkNewBytes int64              `json:"chunk_new_bytes,omitempty"`
}

// setChunks attaches a dedup store's chunk decomposition, upgrading the
// manifest to the v2 format (chunked manifests must not decode as v1 —
// a v1-only reader would silently ignore the dependency set).
func (m *Manifest) setChunks(info storage.ChunkInfo) {
	m.Format = manifestFormatV2
	m.Chunks = append([]storage.ChunkRef(nil), info.Chunks...)
	m.ChunkRawBytes = info.RawBytes
	m.ChunkNewBytes = info.NewBytes
}

// Name returns the manifest's own object name.
func (m *Manifest) Name() string { return m.Object + ManifestSuffix }

// IsManifestName reports whether an object name denotes a manifest.
func IsManifestName(name string) bool { return strings.HasSuffix(name, ManifestSuffix) }

// newManifest builds the manifest for a normalized batch about to be
// stored under object name obj.
func newManifest(job string, root int, obj string, b *Batch, covers []int, partial bool) *Manifest {
	m := &Manifest{
		Format:    manifestFormat,
		Job:       job,
		Root:      root,
		Iteration: b.Iteration,
		Object:    obj,
		Covers:    append([]int(nil), covers...),
		Partial:   partial,
		Blocks:    make([]ManifestBlock, 0, len(b.Blocks)),
	}
	for _, blk := range b.Blocks {
		m.Blocks = append(m.Blocks, ManifestBlock{
			Node:     blk.Node,
			Source:   blk.Source,
			Variable: blk.Variable,
			Bytes:    len(blk.Data),
		})
	}
	return m
}

// EncodeManifest serializes a manifest. Field order is fixed and Covers
// and Blocks arrive sorted, so equal manifests encode to equal bytes —
// the same determinism contract EncodeBatch keeps.
func EncodeManifest(m *Manifest) []byte {
	data, err := json.Marshal(m)
	if err != nil {
		// Manifest contains only ints, strings and slices thereof.
		panic(fmt.Sprintf("cluster: manifest encoding: %v", err))
	}
	return data
}

// DecodeManifest parses an object produced by EncodeManifest, accepting
// both format versions. A v2 manifest's chunk list is validated
// structurally — 64-hex hashes, positive sizes, sizes summing to the
// declared raw payload — so a corrupt or hand-forged manifest surfaces
// as a typed error here instead of a confusing failure deep in restore.
func DecodeManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotManifest, err)
	}
	switch m.Format {
	case manifestFormat:
		if len(m.Chunks) > 0 {
			return nil, fmt.Errorf("%w: v1 manifest carries %d chunks", ErrBadChunkRef, len(m.Chunks))
		}
	case manifestFormatV2:
		var sum int64
		for i, r := range m.Chunks {
			if len(r.Hash) != 64 || !isHex(r.Hash) {
				return nil, fmt.Errorf("%w: chunk %d hash %q", ErrBadChunkRef, i, r.Hash)
			}
			if r.Bytes <= 0 {
				return nil, fmt.Errorf("%w: chunk %d size %d", ErrBadChunkRef, i, r.Bytes)
			}
			sum += int64(r.Bytes)
		}
		if len(m.Chunks) > 0 && sum != m.ChunkRawBytes {
			return nil, fmt.Errorf("%w: chunks sum to %d bytes, manifest says %d",
				ErrBadChunkRef, sum, m.ChunkRawBytes)
		}
	default:
		return nil, fmt.Errorf("%w: %q", ErrManifestFormat, m.Format)
	}
	return &m, nil
}

// isHex reports whether s is entirely lowercase hex digits.
func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
