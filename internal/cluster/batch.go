package cluster

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// Block is one variable block as it travels up the aggregation tree:
// the payload plus enough identity to reassemble the global view.
type Block struct {
	Node     int    // node the block originated on
	Source   int    // simulation core within that node
	Variable string // variable name
	Data     []byte // payload (copied out of shared memory)
}

// Batch is the unit forwarded between dedicated cores: every block of
// one iteration produced by a subtree.
type Batch struct {
	Iteration int
	Blocks    []Block
}

// Bytes returns the total payload size of the batch.
func (b *Batch) Bytes() int {
	n := 0
	for _, blk := range b.Blocks {
		n += len(blk.Data)
	}
	return n
}

// merge absorbs another batch of the same iteration.
func (b *Batch) merge(o *Batch) {
	b.Blocks = append(b.Blocks, o.Blocks...)
}

// normalize sorts blocks by (node, source, variable) so encoded batches
// are identical regardless of arrival order.
func (b *Batch) normalize() {
	sort.Slice(b.Blocks, func(i, j int) bool {
		x, y := b.Blocks[i], b.Blocks[j]
		if x.Node != y.Node {
			return x.Node < y.Node
		}
		if x.Source != y.Source {
			return x.Source < y.Source
		}
		return x.Variable < y.Variable
	})
}

var batchMagic = []byte("DMB1")

// EncodeBatch serializes a batch into the flat object format the tree
// roots hand to the storage backend. Blocks are normalized first, so
// equal batches encode to equal bytes.
func EncodeBatch(b *Batch) []byte {
	b.normalize()
	var buf bytes.Buffer
	buf.Write(batchMagic)
	writeU32 := func(v uint32) { binary.Write(&buf, binary.LittleEndian, v) }
	writeU32(uint32(b.Iteration))
	writeU32(uint32(len(b.Blocks)))
	for _, blk := range b.Blocks {
		writeU32(uint32(blk.Node))
		writeU32(uint32(blk.Source))
		writeU32(uint32(len(blk.Variable)))
		buf.WriteString(blk.Variable)
		writeU32(uint32(len(blk.Data)))
		buf.Write(blk.Data)
	}
	return buf.Bytes()
}

// DecodeBatch parses an object produced by EncodeBatch.
func DecodeBatch(data []byte) (*Batch, error) {
	r := bytes.NewReader(data)
	head := make([]byte, len(batchMagic))
	if _, err := r.Read(head); err != nil || !bytes.Equal(head, batchMagic) {
		return nil, fmt.Errorf("cluster: not a batch object")
	}
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(r, binary.LittleEndian, &v)
		return v, err
	}
	it, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("cluster: truncated batch header")
	}
	n, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("cluster: truncated batch header")
	}
	b := &Batch{Iteration: int(it)}
	for i := uint32(0); i < n; i++ {
		var blk Block
		node, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("cluster: truncated block %d", i)
		}
		src, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("cluster: truncated block %d", i)
		}
		blk.Node, blk.Source = int(node), int(src)
		vlen, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("cluster: truncated block %d", i)
		}
		// Bound every length by the bytes actually left so a corrupted
		// length field cannot trigger a giant allocation.
		if int64(vlen) > int64(r.Len()) {
			return nil, fmt.Errorf("cluster: truncated variable name in block %d", i)
		}
		vbuf := make([]byte, vlen)
		if _, err := io.ReadFull(r, vbuf); err != nil {
			return nil, fmt.Errorf("cluster: truncated variable name in block %d", i)
		}
		blk.Variable = string(vbuf)
		dlen, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("cluster: truncated block %d", i)
		}
		if int64(dlen) > int64(r.Len()) {
			return nil, fmt.Errorf("cluster: truncated payload in block %d", i)
		}
		blk.Data = make([]byte, dlen)
		if _, err := io.ReadFull(r, blk.Data); err != nil {
			return nil, fmt.Errorf("cluster: truncated payload in block %d", i)
		}
		b.Blocks = append(b.Blocks, blk)
	}
	return b, nil
}
