package cluster

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/buf"
)

// Block is one variable block as it travels up the aggregation tree:
// the payload plus enough identity to reassemble the global view.
type Block struct {
	Node     int    // node the block originated on
	Source   int    // simulation core within that node
	Variable string // variable name
	Data     []byte // payload (copied out of shared memory)
}

// Batch is the unit forwarded between dedicated cores: every block of
// one iteration produced by a subtree.
type Batch struct {
	Iteration int
	Blocks    []Block
}

// Bytes returns the total payload size of the batch.
func (b *Batch) Bytes() int {
	n := 0
	for _, blk := range b.Blocks {
		n += len(blk.Data)
	}
	return n
}

// merge absorbs another batch of the same iteration.
func (b *Batch) merge(o *Batch) {
	b.Blocks = append(b.Blocks, o.Blocks...)
}

// normalize sorts blocks by (node, source, variable) so encoded batches
// are identical regardless of arrival order.
func (b *Batch) normalize() {
	sort.Slice(b.Blocks, func(i, j int) bool {
		x, y := b.Blocks[i], b.Blocks[j]
		if x.Node != y.Node {
			return x.Node < y.Node
		}
		if x.Source != y.Source {
			return x.Source < y.Source
		}
		return x.Variable < y.Variable
	})
}

var batchMagic = []byte("DMB1")

// ReleaseBuffers returns every block payload to the buffer pool and
// clears the batch. It is the end-of-life step for batches whose
// payloads came from buf.Get (the cluster forwarding path): the root
// calls it after its store Put returned (every built-in backend owns
// its own copy by then), and the failure paths call it when a batch is
// dropped. A hook that wants to keep payload bytes past OnIteration
// must copy them — the memory is recycled right after the store write.
func (b *Batch) ReleaseBuffers() {
	for i := range b.Blocks {
		buf.Put(b.Blocks[i].Data)
		b.Blocks[i].Data = nil
	}
	b.Blocks = nil
}

// encodedLen returns the exact EncodeBatch output size.
func (b *Batch) encodedLen() int {
	n := len(batchMagic) + 8
	for _, blk := range b.Blocks {
		n += 12 + len(blk.Variable) + 4 + len(blk.Data)
	}
	return n
}

// EncodeBatchVec serializes a batch as a scatter-gather segment list:
// the concatenation of the returned segments is byte-identical to
// EncodeBatch, but block payloads are aliased, not copied — the
// segments reference each Block's Data directly, and only the small
// framing headers are newly written (into one shared header buffer).
// Leaf→interior→root batching and the storage write path move headers
// this way, never payload bytes.
//
// The segments alias both the batch's payloads and an internal header
// buffer, so they are valid only until the batch is mutated or
// released; hand them to storage.PutVec (or flatten) before either.
func EncodeBatchVec(b *Batch) [][]byte {
	b.normalize()
	// One contiguous header arena keeps the per-block header segments
	// from costing an allocation each; slices of it are handed out
	// below. +1 segment for the leading magic/iteration/count header.
	headerLen := len(batchMagic) + 8
	for _, blk := range b.Blocks {
		headerLen += 12 + len(blk.Variable) + 4
	}
	arena := make([]byte, 0, headerLen)
	segs := make([][]byte, 0, 1+2*len(b.Blocks))

	arena = append(arena, batchMagic...)
	arena = binary.LittleEndian.AppendUint32(arena, uint32(b.Iteration))
	arena = binary.LittleEndian.AppendUint32(arena, uint32(len(b.Blocks)))
	segs = append(segs, arena)
	mark := len(arena)
	for i := range b.Blocks {
		blk := &b.Blocks[i]
		arena = binary.LittleEndian.AppendUint32(arena, uint32(blk.Node))
		arena = binary.LittleEndian.AppendUint32(arena, uint32(blk.Source))
		arena = binary.LittleEndian.AppendUint32(arena, uint32(len(blk.Variable)))
		arena = append(arena, blk.Variable...)
		arena = binary.LittleEndian.AppendUint32(arena, uint32(len(blk.Data)))
		segs = append(segs, arena[mark:len(arena):len(arena)], blk.Data)
		mark = len(arena)
	}
	return segs
}

// EncodeBatch serializes a batch into the flat object format the tree
// roots hand to the storage backend. Blocks are normalized first, so
// equal batches encode to equal bytes. It is the flattened form of
// EncodeBatchVec — callers on the hot path should prefer the vector
// form, which does not copy payloads.
func EncodeBatch(b *Batch) []byte {
	out := make([]byte, 0, b.encodedLen())
	for _, seg := range EncodeBatchVec(b) {
		out = append(out, seg...)
	}
	return out
}

// DecodeBatch parses an object produced by EncodeBatch.
func DecodeBatch(data []byte) (*Batch, error) {
	r := bytes.NewReader(data)
	head := make([]byte, len(batchMagic))
	if _, err := r.Read(head); err != nil || !bytes.Equal(head, batchMagic) {
		return nil, fmt.Errorf("cluster: not a batch object")
	}
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(r, binary.LittleEndian, &v)
		return v, err
	}
	it, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("cluster: truncated batch header")
	}
	n, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("cluster: truncated batch header")
	}
	b := &Batch{Iteration: int(it)}
	for i := uint32(0); i < n; i++ {
		var blk Block
		node, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("cluster: truncated block %d", i)
		}
		src, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("cluster: truncated block %d", i)
		}
		blk.Node, blk.Source = int(node), int(src)
		vlen, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("cluster: truncated block %d", i)
		}
		// Bound every length by the bytes actually left so a corrupted
		// length field cannot trigger a giant allocation.
		if int64(vlen) > int64(r.Len()) {
			return nil, fmt.Errorf("cluster: truncated variable name in block %d", i)
		}
		vbuf := make([]byte, vlen)
		if _, err := io.ReadFull(r, vbuf); err != nil {
			return nil, fmt.Errorf("cluster: truncated variable name in block %d", i)
		}
		blk.Variable = string(vbuf)
		dlen, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("cluster: truncated block %d", i)
		}
		if int64(dlen) > int64(r.Len()) {
			return nil, fmt.Errorf("cluster: truncated payload in block %d", i)
		}
		blk.Data = make([]byte, dlen)
		if _, err := io.ReadFull(r, blk.Data); err != nil {
			return nil, fmt.Errorf("cluster: truncated payload in block %d", i)
		}
		b.Blocks = append(b.Blocks, blk)
	}
	return b, nil
}
