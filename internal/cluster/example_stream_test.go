package cluster_test

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/compress"
	"repro/internal/insitu"
	"repro/internal/meta"
	"repro/internal/storage"
	"repro/internal/topology"
)

// Example_streamingHook wires a streaming hook into a cluster so an
// in-situ consumer analyzes each iteration live, while the root's
// store write proceeds independently (see docs/STREAMING.md).
func Example_streamingHook() {
	metaCfg, err := meta.ParseString(`<simulation name="example">
	  <architecture><dedicated cores="1"/><buffer size="1048576"/></architecture>
	  <data>
	    <parameter name="n" value="4"/>
	    <layout name="row" type="float64" dimensions="n"/>
	    <variable name="theta" layout="row"/>
	  </data>
	</simulation>`)
	if err != nil {
		fmt.Println("meta:", err)
		return
	}

	stream := storage.NewStream()
	sub := stream.Subscribe(storage.SubOptions{Buffer: 4, Policy: storage.DropOldest})
	c, err := cluster.New(cluster.Config{
		Platform: topology.Platform{Name: "example", Nodes: 1, CoresPerNode: 2},
		Meta:     metaCfg,
		Store:    storage.NewMemory(nil, 4, 1e9),
		Hooks:    []cluster.Hook{cluster.NewStreamingHook(stream)},
	})
	if err != nil {
		fmt.Println("cluster:", err)
		return
	}

	cl := c.Client(0, 0)
	for it := 0; it < 2; it++ {
		vals := []float64{1, 2, 3, 4 + float64(it)}
		if err := cl.Write("theta", it, compress.Float64Bytes(vals)); err != nil {
			fmt.Println("write:", err)
			return
		}
		cl.EndIteration(it)
	}
	c.WaitIteration(1)
	if err := c.Shutdown(); err != nil {
		fmt.Println("shutdown:", err)
		return
	}
	stream.Close()

	consumer := cluster.NewStreamConsumer(sub, insitu.Pipeline{Bins: 2})
	if err := consumer.Run(); err != nil {
		fmt.Println("consumer:", err)
		return
	}
	for _, r := range consumer.Results() {
		m := r.Result.Moments
		fmt.Printf("it %d %s: mean %.2f max %.0f hist %v\n",
			r.Result.Iteration, r.Result.Field, m.Mean, m.Max, r.Result.Histogram)
	}
	// Output:
	// it 0 theta: mean 2.50 max 4 hist [2 2]
	// it 1 theta: mean 2.75 max 5 hist [2 2]
}
