package cluster

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/insitu"
	"repro/internal/storage"
)

// TestStreamingHookDeliversLiveBatches: every iteration a root stores
// is also published, decodable, and analyzable — the live coupling of
// the in-situ pipeline.
func TestStreamingHookDeliversLiveBatches(t *testing.T) {
	const nodes, clients, iters = 9, 2, 4
	stream := storage.NewStream()
	sub := stream.Subscribe(storage.SubOptions{Buffer: 2 * iters})
	store := storage.NewMemory(nil, 4, 1e9)
	c, err := New(Config{
		Platform: testPlatform(nodes, clients+1),
		Meta:     testMeta(t),
		Fanout:   2,
		Store:    store,
		Hooks:    []Hook{NewStreamingHook(stream)},
	})
	if err != nil {
		t.Fatal(err)
	}

	consumer := NewStreamConsumer(sub, insitu.Pipeline{Bins: 8})
	consumerDone := make(chan error, 1)
	go func() { consumerDone <- consumer.Run() }()

	runWorkload(t, c, clients, iters)
	c.WaitIteration(iters - 1)
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	stream.Close()
	if err := <-consumerDone; err != nil {
		t.Fatalf("consumer: %v", err)
	}

	if got := consumer.Frames(); got != iters {
		t.Fatalf("Frames = %d, want %d (one batch per iteration, one root)", got, iters)
	}
	results := consumer.Results()
	if len(results) != iters {
		t.Fatalf("Results = %d, want %d (one variable)", len(results), iters)
	}
	for i, r := range results {
		if r.Result.Iteration != i {
			t.Fatalf("result %d analyzed iteration %d (out of order)", i, r.Result.Iteration)
		}
		if r.Result.Field != "theta" {
			t.Fatalf("result %d field = %q", i, r.Result.Field)
		}
		// 9 nodes × 2 clients × 64 float64 each.
		if want := nodes * clients * 64; r.Result.Moments.N != want {
			t.Fatalf("result %d analyzed %d values, want %d (full subtree)", i, r.Result.Moments.N, want)
		}
		if i > 0 && r.Seq <= results[i-1].Seq {
			t.Fatalf("stream sequence not increasing: %d after %d", r.Seq, results[i-1].Seq)
		}
	}
	if sub.Dropped() != 0 {
		t.Fatalf("fast consumer dropped %d frames", sub.Dropped())
	}
	// Streaming rode along with — not instead of — the store writes.
	if st := c.Stats(); st.ObjectsWritten != iters {
		t.Fatalf("ObjectsWritten = %d, want %d", st.ObjectsWritten, iters)
	}
}

// TestStreamingHookNeverBlocksWritePath: a subscriber that never
// drains, under drop-oldest, must not stall the cluster — iterations
// complete, objects land, and the laggard's losses are its own.
func TestStreamingHookNeverBlocksWritePath(t *testing.T) {
	const nodes, clients, iters = 4, 1, 8
	stream := storage.NewStream()
	sub := stream.Subscribe(storage.SubOptions{Buffer: 1, Policy: storage.DropOldest})
	store := storage.NewMemory(nil, 4, 1e9)
	c, err := New(Config{
		Platform: testPlatform(nodes, clients+1),
		Meta:     testMeta(t),
		Fanout:   2,
		Store:    store,
		Hooks:    []Hook{NewStreamingHook(stream)},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		runWorkload(t, c, clients, iters)
		c.WaitIteration(iters - 1)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("write path stalled behind an undrained drop-oldest subscriber")
	}
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	stream.Close()
	if st := c.Stats(); st.ObjectsWritten != iters {
		t.Fatalf("ObjectsWritten = %d, want %d", st.ObjectsWritten, iters)
	}
	if d := sub.Dropped(); d != iters-1 {
		t.Fatalf("Dropped = %d, want %d (buffer 1, nothing drained)", d, iters-1)
	}
}

// TestStreamSubscriberChurnDuringFailure is the churn race (`make
// stream-race`): subscribers attach and cancel continuously while a
// multi-root cluster loses a root mid-run and re-routes its subtree.
// The run must complete and publication must keep flowing to whoever
// is subscribed at the moment a surviving root emits.
func TestStreamSubscriberChurnDuringFailure(t *testing.T) {
	const nodes, clients, iters, roots = 16, 1, 6, 4
	rootID := NewTree(nodes, 2, roots).Roots()[1]
	stream := storage.NewStream()
	store := storage.NewMemory(nil, 4, 1e9)
	c, err := New(Config{
		Platform: testPlatform(nodes, clients+1),
		Meta:     testMeta(t),
		Fanout:   2,
		Roots:    roots,
		Store:    store,
		Hooks:    []Hook{NewStreamingHook(stream)},
		Failures: NewFailureSchedule().Add(rootID, 2),
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var churn sync.WaitGroup
	for g := 0; g < 6; g++ {
		churn.Add(1)
		go func(g int) {
			defer churn.Done()
			policies := storage.SlowPolicies()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				sub := stream.Subscribe(storage.SubOptions{
					Buffer:       2,
					Policy:       policies[(g+i)%len(policies)],
					BlockTimeout: time.Millisecond,
				})
				for j := 0; j < 4; j++ {
					if _, ok, err := sub.TryRecv(); !ok && err != nil {
						break
					}
				}
				sub.Cancel()
			}
		}(g)
	}

	runWorkload(t, c, clients, iters)
	c.WaitIteration(iters - 1)
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	churn.Wait()
	stream.Close()

	st := c.Stats()
	if st.NodesFailed != 1 {
		t.Fatalf("NodesFailed = %d, want 1", st.NodesFailed)
	}
	if st.ObjectsWritten == 0 {
		t.Fatal("no objects written under churn")
	}
}

// TestStreamConsumerSlowConsumerError: a Block-policy consumer that
// outlives its publisher's patience sees ErrSlowConsumer from Run.
func TestStreamConsumerSlowConsumerError(t *testing.T) {
	stream := storage.NewStream()
	sub := stream.Subscribe(storage.SubOptions{
		Buffer:       1,
		Policy:       storage.Block,
		BlockTimeout: 5 * time.Millisecond,
	})
	b := &Batch{Iteration: 0, Blocks: []Block{{Node: 0, Source: 0, Variable: "v", Data: make([]byte, 16)}}}
	stream.Publish("a", EncodeBatch(b))
	stream.Publish("b", EncodeBatch(b)) // times out against the full queue, detaches
	consumer := NewStreamConsumer(sub, insitu.Pipeline{})
	if err := consumer.Run(); !errors.Is(err, storage.ErrSlowConsumer) {
		t.Fatalf("Run = %v, want ErrSlowConsumer", err)
	}
	if consumer.Frames() != 1 {
		t.Fatalf("Frames = %d, want 1 (the backlog drained before the error)", consumer.Frames())
	}
}

// TestStreamConsumerDecodeError: junk on the stream is a consumer
// error, not a hang.
func TestStreamConsumerDecodeError(t *testing.T) {
	stream := storage.NewStream()
	sub := stream.Subscribe(storage.SubOptions{})
	stream.Publish("junk", []byte("not a batch"))
	consumer := NewStreamConsumer(sub, insitu.Pipeline{})
	if err := consumer.Run(); err == nil {
		t.Fatal("Run over junk = nil, want decode error")
	}
}
