package cluster

import (
	"fmt"
	"sort"
	"sync"
)

// AdmissionPolicy decides what a Service does with a tenant whose node
// quota exceeds the dedicated cores currently free.
type AdmissionPolicy string

const (
	// AdmitFIFO queues oversubscribed tenants in arrival order.
	AdmitFIFO AdmissionPolicy = "fifo"
	// AdmitDeadline queues oversubscribed tenants and dispatches the
	// highest-priority, earliest-deadline tenant first (EDF).
	AdmitDeadline AdmissionPolicy = "deadline"
	// AdmitReject refuses oversubscribed tenants outright.
	AdmitReject AdmissionPolicy = "reject"
	// AdmitDegrade shrinks an oversubscribed tenant's ask to whatever is
	// free right now — the paper's skip policy applied to admission:
	// run smaller (losing per-node throughput) rather than wait. A
	// tenant arriving when nothing is free still queues.
	AdmitDegrade AdmissionPolicy = "degrade"
)

// ValidateAdmissionPolicy rejects unknown policy names (flag parsing).
func ValidateAdmissionPolicy(p AdmissionPolicy) error {
	switch p {
	case AdmitFIFO, AdmitDeadline, AdmitReject, AdmitDegrade:
		return nil
	}
	return fmt.Errorf("cluster: unknown admission policy %q", p)
}

// TenantState is one tenant's position in the Service lifecycle.
type TenantState string

const (
	// TenantQueued: submitted, waiting for dedicated cores.
	TenantQueued TenantState = "queued"
	// TenantRunning: admitted; Cluster() is live.
	TenantRunning TenantState = "running"
	// TenantDone: finished and shut down cleanly.
	TenantDone TenantState = "done"
	// TenantRejected: refused at admission (policy or invalid spec).
	TenantRejected TenantState = "rejected"
	// TenantEvicted: cancelled mid-run; resources reclaimed.
	TenantEvicted TenantState = "evicted"
)

// ServiceOptions tunes a Service beyond its substrate.
type ServiceOptions struct {
	// Admission picks the oversubscription policy (default AdmitFIFO).
	Admission AdmissionPolicy
}

// Service is a long-lived multi-tenant run host: it owns a shared
// topology.Platform, a shared (ideally sharded) storage.TokenBroker and
// a shared object store, and admits N concurrent tenant runs that
// borrow slices of them. Admission is counted in dedicated cores: each
// platform node carries DedicatedPerNode dedicated cores, a tenant's
// Quota.Nodes claims that many nodes' worth, and when the claim exceeds
// what is free the Admission policy decides — queue (FIFO or EDF),
// reject, or degrade to a smaller slice. Cross-tenant interference at
// the storage targets is arbitrated by the shared broker through
// holder-tagged grants; see ClusterConfig.Broker.
type Service struct {
	cc   ClusterConfig
	opts ServiceOptions

	mu        sync.Mutex
	freeNodes int
	nextID    int
	tenants   []*Tenant // submission order, all states
	queue     []*Tenant // waiting for cores
	jobNames  map[string]bool
	closed    bool

	// rollup counters not derivable from tenant states alone
	maxQueued int
	degraded  int
}

// NewService opens a multi-tenant run host over the given substrate.
func NewService(cc ClusterConfig, opts ServiceOptions) (*Service, error) {
	cc = cc.withDefaults()
	if cc.Platform.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: platform has %d nodes", cc.Platform.Nodes)
	}
	if cc.Store == nil {
		return nil, fmt.Errorf("cluster: nil object store")
	}
	if opts.Admission == "" {
		opts.Admission = AdmitFIFO
	}
	if err := ValidateAdmissionPolicy(opts.Admission); err != nil {
		return nil, err
	}
	return &Service{
		cc:        cc,
		opts:      opts,
		freeNodes: cc.Platform.Nodes,
		jobNames:  map[string]bool{},
	}, nil
}

// Tenant is one admitted (or queued, or refused) run inside a Service.
type Tenant struct {
	svc  *Service
	id   int
	spec RunSpec
	need int // node ask after clamping

	// Guarded by svc.mu.
	state    TenantState
	nodes    int // granted (may be < need under AdmitDegrade)
	degraded bool
	cluster  *Cluster
	err      error
	final    Stats // snapshot at Finish/Evict

	decided chan struct{} // closed when state leaves TenantQueued
}

// ID returns the tenant's service-unique id.
func (t *Tenant) ID() int { return t.id }

// State returns the tenant's lifecycle state.
func (t *Tenant) State() TenantState {
	t.svc.mu.Lock()
	defer t.svc.mu.Unlock()
	return t.state
}

// Err returns the admission or shutdown error, if any.
func (t *Tenant) Err() error {
	t.svc.mu.Lock()
	defer t.svc.mu.Unlock()
	return t.err
}

// Nodes returns the node count actually granted (0 until admitted).
func (t *Tenant) Nodes() int {
	t.svc.mu.Lock()
	defer t.svc.mu.Unlock()
	return t.nodes
}

// Degraded reports whether admission shrank the tenant's node ask.
func (t *Tenant) Degraded() bool {
	t.svc.mu.Lock()
	defer t.svc.mu.Unlock()
	return t.degraded
}

// Cluster returns the tenant's live cluster (nil unless Running). The
// caller drives it exactly like a standalone one — Client writes,
// WaitIteration — but must end it through Finish or Evict, never the
// cluster's own Shutdown, so the Service can reclaim the cores.
func (t *Tenant) Cluster() *Cluster {
	t.svc.mu.Lock()
	defer t.svc.mu.Unlock()
	return t.cluster
}

// Wait blocks until the admission decision: nil once the tenant is
// running (or already finished), the admission error otherwise.
func (t *Tenant) Wait() error {
	<-t.decided
	t.svc.mu.Lock()
	defer t.svc.mu.Unlock()
	if t.state == TenantRejected {
		return t.err
	}
	return nil
}

// Stats returns the tenant's counters: live ones while running, the
// final snapshot afterwards.
func (t *Tenant) Stats() Stats {
	t.svc.mu.Lock()
	c, state, final := t.cluster, t.state, t.final
	t.svc.mu.Unlock()
	if state == TenantRunning && c != nil {
		return c.Stats()
	}
	return final
}

// Submit asks the Service to run one more simulation. The admission
// decision is immediate: the returned tenant is Running, Queued, or
// Rejected (with the error also returned). Queued tenants start
// automatically when cores free up; use Wait to block for that.
func (s *Service) Submit(spec RunSpec) (*Tenant, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("cluster: service is closed")
	}
	t := &Tenant{
		svc:     s,
		id:      s.nextID,
		spec:    spec,
		state:   TenantQueued,
		decided: make(chan struct{}),
	}
	s.nextID++
	// Tenants share one object store; distinct JobName prefixes keep
	// their objects (and manifests) disjoint.
	if s.jobNames[t.spec.JobName] {
		t.spec.JobName = fmt.Sprintf("%s-t%02d", t.spec.JobName, t.id)
	}
	s.jobNames[t.spec.JobName] = true
	t.need = spec.Quota.Nodes
	if t.need <= 0 || t.need > s.cc.Platform.Nodes {
		t.need = s.cc.Platform.Nodes
	}
	s.tenants = append(s.tenants, t)

	if t.need <= s.freeNodes {
		s.startLocked(t, t.need)
		return t, t.err
	}
	switch s.opts.Admission {
	case AdmitReject:
		s.rejectLocked(t, fmt.Errorf(
			"cluster: tenant %d needs %d nodes, %d free", t.id, t.need, s.freeNodes))
		return t, t.err
	case AdmitDegrade:
		if s.freeNodes > 0 {
			s.startLocked(t, s.freeNodes)
			return t, t.err
		}
		fallthrough // nothing free: even a degraded tenant must wait
	default: // AdmitFIFO, AdmitDeadline
		s.queue = append(s.queue, t)
		if len(s.queue) > s.maxQueued {
			s.maxQueued = len(s.queue)
		}
	}
	return t, nil
}

// startLocked admits t on `grant` nodes. Callers hold s.mu.
func (s *Service) startLocked(t *Tenant, grant int) {
	cc := s.cc
	cc.Platform = cc.Platform.WithNodes(grant)
	c, err := newTenantCluster(cc, t.spec, t.id)
	if err != nil {
		s.rejectLocked(t, err)
		return
	}
	s.freeNodes -= grant
	t.nodes = grant
	t.degraded = grant < t.need
	if t.degraded {
		s.degraded++
	}
	t.cluster = c
	t.state = TenantRunning
	close(t.decided)
}

// rejectLocked refuses t with err. Callers hold s.mu.
func (s *Service) rejectLocked(t *Tenant, err error) {
	t.state = TenantRejected
	t.err = err
	close(t.decided)
}

// Finish ends a running tenant cleanly: the cluster is shut down, its
// final stats snapshotted, the cores returned, and the queue
// re-dispatched. Returns the shutdown error (also kept in Err).
func (t *Tenant) Finish() error { return t.svc.end(t, TenantDone) }

// Evict cancels a running tenant mid-flight: every node is killed, the
// tenant's broker tokens are reclaimed, pooled payload buffers of
// in-flight batches are returned, and the cores go back to the pool.
func (t *Tenant) Evict() error { return t.svc.end(t, TenantEvicted) }

// end is the shared teardown of Finish and Evict.
func (s *Service) end(t *Tenant, final TenantState) error {
	s.mu.Lock()
	if t.state != TenantRunning {
		// Not running: dequeue if queued, keep terminal states as-is.
		if t.state == TenantQueued {
			for i, q := range s.queue {
				if q == t {
					s.queue = append(s.queue[:i], s.queue[i+1:]...)
					break
				}
			}
			s.rejectLocked(t, fmt.Errorf("cluster: tenant %d withdrawn while queued", t.id))
		}
		err := t.err
		s.mu.Unlock()
		return err
	}
	c := t.cluster
	s.mu.Unlock()

	// Teardown happens outside s.mu: Shutdown drains node goroutines
	// that may be blocked on broker tokens another tenant holds.
	var err error
	if final == TenantEvicted {
		err = c.Cancel()
	} else {
		err = c.Shutdown()
	}
	final2 := c.Stats()

	s.mu.Lock()
	t.state = final
	t.err = err
	t.final = final2
	s.freeNodes += t.nodes
	s.dispatchLocked()
	s.mu.Unlock()
	return err
}

// dispatchLocked starts queued tenants that now fit, in policy order.
// Head-of-line blocking is deliberate for FIFO and EDF: a wide tenant
// at the head is not overtaken by narrow latecomers, mirroring the
// broker's own anti-starvation rule. Callers hold s.mu.
func (s *Service) dispatchLocked() {
	if s.opts.Admission == AdmitDeadline {
		// Highest priority first, then earliest deadline, then arrival.
		sort.SliceStable(s.queue, func(i, j int) bool {
			a, b := s.queue[i], s.queue[j]
			if a.spec.Priority != b.spec.Priority {
				return a.spec.Priority > b.spec.Priority
			}
			da, db := a.spec.Deadline, b.spec.Deadline
			if da <= 0 {
				da = infDeadline
			}
			if db <= 0 {
				db = infDeadline
			}
			if da != db {
				return da < db
			}
			return a.id < b.id
		})
	}
	for len(s.queue) > 0 {
		t := s.queue[0]
		grant := t.need
		if grant > s.freeNodes {
			if s.opts.Admission != AdmitDegrade || s.freeNodes <= 0 {
				return
			}
			grant = s.freeNodes
		}
		s.queue = s.queue[1:]
		s.startLocked(t, grant)
	}
}

// infDeadline stands in for "no deadline" in EDF ordering.
const infDeadline = 1e18

// ServiceStats is the cross-tenant rollup: per-tenant Stats plus their
// sum and the admission counters. PerTenant holds every tenant that
// ever ran (live ones snapshotted now); Total is their element-wise
// sum, so on a shared broker the per-tenant token slices add back up to
// what the broker granted the service as a whole.
type ServiceStats struct {
	Submitted int
	Running   int
	Queued    int
	Completed int
	Rejected  int
	Evicted   int
	Degraded  int
	MaxQueued int
	PerTenant map[int]Stats
	Total     Stats
}

// Stats snapshots the service-wide rollup.
func (s *Service) Stats() ServiceStats {
	s.mu.Lock()
	out := ServiceStats{
		Submitted: len(s.tenants),
		Degraded:  s.degraded,
		MaxQueued: s.maxQueued,
		PerTenant: map[int]Stats{},
	}
	type live struct {
		id int
		c  *Cluster
	}
	var lives []live
	for _, t := range s.tenants {
		switch t.state {
		case TenantRunning:
			out.Running++
			lives = append(lives, live{t.id, t.cluster})
		case TenantQueued:
			out.Queued++
		case TenantDone:
			out.Completed++
			out.PerTenant[t.id] = t.final
		case TenantRejected:
			out.Rejected++
		case TenantEvicted:
			out.Evicted++
			out.PerTenant[t.id] = t.final
		}
	}
	s.mu.Unlock()
	// Live clusters are snapshotted outside s.mu: Cluster.Stats takes
	// the cluster's own lock and reads the shared broker.
	for _, l := range lives {
		out.PerTenant[l.id] = l.c.Stats()
	}
	for _, st := range out.PerTenant {
		out.Total.add(st)
	}
	return out
}

// Close shuts the service: queued tenants are rejected, running ones
// evicted, and further Submits refused. Returns the first eviction
// error.
func (s *Service) Close() error {
	s.mu.Lock()
	s.closed = true
	for _, t := range s.queue {
		s.rejectLocked(t, fmt.Errorf("cluster: service closed while tenant %d queued", t.id))
	}
	s.queue = nil
	var running []*Tenant
	for _, t := range s.tenants {
		if t.state == TenantRunning {
			running = append(running, t)
		}
	}
	s.mu.Unlock()
	var first error
	for _, t := range running {
		if err := t.Evict(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
