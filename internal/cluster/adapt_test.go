package cluster

import (
	"sync"
	"testing"

	"repro/internal/storage"
)

// collectBlocks decodes every data object in the store and returns, per
// iteration, the set of (node, source) pairs whose blocks reached a
// stored root object.
func collectBlocks(t *testing.T, store *storage.Memory) map[int]map[[2]int]bool {
	t.Helper()
	got := map[int]map[[2]int]bool{}
	for _, name := range dataNames(store.ObjectNames()) {
		obj, ok := store.Object(name)
		if !ok {
			t.Fatalf("listed object %s vanished", name)
		}
		b, err := DecodeBatch(obj)
		if err != nil {
			t.Fatalf("decode %s: %v", name, err)
		}
		m := got[b.Iteration]
		if m == nil {
			m = map[[2]int]bool{}
			got[b.Iteration] = m
		}
		for _, blk := range b.Blocks {
			key := [2]int{blk.Node, blk.Source}
			if m[key] {
				t.Fatalf("iteration %d: block (node %d, source %d) stored twice",
					b.Iteration, blk.Node, blk.Source)
			}
			m[key] = true
		}
	}
	return got
}

// TestReformMidRunCompleteness drives writers through several topology
// re-formations and asserts the epoch fence keeps every acknowledged
// block exactly once: no iteration loses data to a re-formation and
// none is double-stored.
func TestReformMidRunCompleteness(t *testing.T) {
	const nodes, clients, iters = 12, 2, 6
	store := storage.NewMemory(nil, 4, 1e9)
	c, err := New(Config{
		Platform: testPlatform(nodes, clients+1),
		Meta:     testMeta(t),
		Fanout:   2,
		Roots:    1,
		Store:    store,
	})
	if err != nil {
		t.Fatal(err)
	}

	shapes := [][2]int{{4, 2}, {2, 4}, {3, 1}} // fanout, roots per re-formation
	for it := 0; it < iters; it++ {
		for n := 0; n < nodes; n++ {
			for s := 0; s < clients; s++ {
				cl := c.Client(n, s)
				if err := cl.Write("theta", it, payload(n, s, it)); err != nil {
					t.Fatalf("node %d src %d it %d: %v", n, s, it, err)
				}
				cl.EndIteration(it)
			}
		}
		if it < len(shapes) {
			// Wait until the iteration has routed, so the fence lands
			// past it and each re-formation opens a genuinely new epoch.
			c.WaitIteration(it)
			from, err := c.Reform(shapes[it][0], shapes[it][1])
			if err != nil {
				t.Fatalf("reform %v: %v", shapes[it], err)
			}
			if from <= it {
				t.Fatalf("reform fence %d not past routed iteration %d", from, it)
			}
		}
	}
	c.WaitIteration(iters - 1)
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}

	st := c.Stats()
	if st.TreeReforms != len(shapes) {
		t.Fatalf("TreeReforms = %d, want %d", st.TreeReforms, len(shapes))
	}
	if c.Epochs() < 2 {
		t.Fatalf("expected multiple topology epochs, have %d", c.Epochs())
	}
	got := collectBlocks(t, store)
	for it := 0; it < iters; it++ {
		if len(got[it]) != nodes*clients {
			t.Fatalf("iteration %d: %d blocks stored, want %d", it, len(got[it]), nodes*clients)
		}
		if frac := st.Completeness[it]; frac != 1 {
			t.Fatalf("iteration %d: completeness %g, want 1 (no injected failures)", it, frac)
		}
	}
}

// TestAdaptReformRaceWithStreaming re-forms the tree continuously while
// every client writes concurrently and a streaming subscriber consumes
// merged batches — the race the epoch fence and the maxRouted high-water
// mark must survive (run under -race by `make adapt-race`).
func TestAdaptReformRaceWithStreaming(t *testing.T) {
	const nodes, clients, iters = 10, 2, 8
	store := storage.NewMemory(nil, 4, 1e9)
	stream := storage.NewStream()
	sub := stream.Subscribe(storage.SubOptions{Buffer: nodes * iters})
	c, err := New(Config{
		Platform: testPlatform(nodes, clients+1),
		Meta:     testMeta(t),
		Fanout:   2,
		Roots:    2,
		Store:    store,
		Hooks:    []Hook{NewStreamingHook(stream)},
	})
	if err != nil {
		t.Fatal(err)
	}

	var consumerWG sync.WaitGroup
	consumerWG.Add(1)
	frames := 0
	go func() {
		defer consumerWG.Done()
		var lastSeq uint64
		for {
			msg, err := sub.Recv()
			if err != nil {
				return
			}
			if msg.Seq <= lastSeq && lastSeq != 0 {
				t.Errorf("stream sequence went backwards: %d after %d", msg.Seq, lastSeq)
				return
			}
			lastSeq = msg.Seq
			if _, err := DecodeBatch(msg.Data); err != nil {
				t.Errorf("stream frame: %v", err)
				return
			}
			frames++
		}
	}()

	var writerWG sync.WaitGroup
	for n := 0; n < nodes; n++ {
		for s := 0; s < clients; s++ {
			writerWG.Add(1)
			go func(n, s int) {
				defer writerWG.Done()
				cl := c.Client(n, s)
				for it := 0; it < iters; it++ {
					if err := cl.Write("theta", it, payload(n, s, it)); err != nil {
						t.Errorf("node %d src %d it %d: %v", n, s, it, err)
						return
					}
					cl.EndIteration(it)
				}
			}(n, s)
		}
	}

	stop := make(chan struct{})
	var reformWG sync.WaitGroup
	reformWG.Add(1)
	go func() {
		defer reformWG.Done()
		shapes := [][2]int{{2, 1}, {4, 4}, {3, 2}, {2, 5}}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			sh := shapes[i%len(shapes)]
			if _, err := c.Reform(sh[0], sh[1]); err != nil {
				t.Errorf("reform %v: %v", sh, err)
				return
			}
		}
	}()

	writerWG.Wait()
	c.WaitIteration(iters - 1)
	close(stop)
	reformWG.Wait()
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	stream.Close()
	consumerWG.Wait()

	got := collectBlocks(t, store)
	for it := 0; it < iters; it++ {
		if len(got[it]) != nodes*clients {
			t.Fatalf("iteration %d: %d blocks stored, want %d", it, len(got[it]), nodes*clients)
		}
	}
	if frames == 0 {
		t.Fatal("streaming subscriber saw no frames")
	}
	if c.Stats().TreeReforms == 0 {
		t.Fatal("no re-formation actually happened during the run")
	}
}

// TestReformWithFailures kills a node mid-run and re-forms afterwards:
// the new epoch must keep the corpse dead, and only the dead node's
// contributions may go missing.
func TestReformWithFailures(t *testing.T) {
	const nodes, clients, iters, victim, failAt = 8, 2, 5, 5, 2
	store := storage.NewMemory(nil, 4, 1e9)
	c, err := New(Config{
		Platform: testPlatform(nodes, clients+1),
		Meta:     testMeta(t),
		Fanout:   2,
		Roots:    2,
		Store:    store,
		Failures: NewFailureSchedule().Add(victim, failAt),
	})
	if err != nil {
		t.Fatal(err)
	}

	for it := 0; it < iters; it++ {
		for n := 0; n < nodes; n++ {
			for s := 0; s < clients; s++ {
				cl := c.Client(n, s)
				if err := cl.Write("theta", it, payload(n, s, it)); err != nil {
					t.Fatalf("node %d src %d it %d: %v", n, s, it, err)
				}
				cl.EndIteration(it)
			}
		}
		if it == failAt {
			// The death happens when the victim's aggregator reaches
			// iteration failAt; wait for the round to settle, then
			// re-form — the overlay must carry over.
			c.WaitIteration(it)
			if _, err := c.Reform(4, 1); err != nil {
				t.Fatalf("reform after failure: %v", err)
			}
			if tr := c.Tree(); tr.Alive(victim) {
				t.Fatal("re-formed tree resurrected the dead node")
			}
		}
	}
	c.WaitIteration(iters - 1)
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}

	if c.Stats().NodesFailed != 1 {
		t.Fatalf("NodesFailed = %d, want 1", c.Stats().NodesFailed)
	}
	got := collectBlocks(t, store)
	for it := 0; it < iters; it++ {
		for n := 0; n < nodes; n++ {
			if n == victim && it >= failAt {
				continue // the dead node's loss is the tolerated one
			}
			for s := 0; s < clients; s++ {
				if !got[it][[2]int{n, s}] {
					t.Fatalf("iteration %d lost live block (node %d, source %d)", it, n, s)
				}
			}
		}
	}
}

// TestReformValidation exercises the argument checks and the in-place
// replacement of an epoch that never routed.
func TestReformValidation(t *testing.T) {
	c, err := New(Config{
		Platform: testPlatform(4, 2),
		Meta:     testMeta(t),
		Fanout:   2,
		Store:    storage.NewMemory(nil, 4, 1e9),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if _, err := c.Reform(1, 1); err == nil {
		t.Fatal("fanout 1 accepted")
	}
	if _, err := c.Reform(2, 0); err == nil {
		t.Fatal("zero roots accepted")
	}
	// Two re-formations before any routing: the second must replace the
	// first's unused epoch, not stack a third.
	if _, err := c.Reform(3, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Reform(4, 1); err != nil {
		t.Fatal(err)
	}
	if got := c.Epochs(); got != 1 {
		t.Fatalf("unused epochs stacked: %d, want 1 (in-place replacement)", got)
	}
	if got := c.Stats().TreeReforms; got != 2 {
		t.Fatalf("TreeReforms = %d, want 2", got)
	}
}

// TestRecommendTopology pins the adaptation heuristic's direction: a
// slower NIC must not shrink the root set (flatter forest, shorter
// store-and-forward chains), a slower PFS must not widen it (fewer,
// larger sequential streams), and the output is always a valid shape.
func TestRecommendTopology(t *testing.T) {
	const nodes, targets = 256, 336
	nodeBytes := 456e6

	fNIC, rNIC := RecommendTopology(nodes, nodeBytes, 1e8, 5e8, targets)
	fFast, rFast := RecommendTopology(nodes, nodeBytes, 1e10, 5e8, targets)
	if rNIC < rFast {
		t.Fatalf("slow NIC picked fewer roots (%d) than fast NIC (%d)", rNIC, rFast)
	}
	_, rPFS := RecommendTopology(nodes, nodeBytes, 1e10, 1e7, targets)
	if rPFS > rFast {
		t.Fatalf("slow PFS picked more roots (%d) than fast PFS (%d)", rPFS, rFast)
	}

	for _, tc := range [][5]int{
		{1, 1, 1, 1, 1}, {2, 1, 1, 1, 4}, {nodes, 1, 1, 1, targets},
	} {
		f, r := RecommendTopology(tc[0], float64(tc[1]), float64(tc[2]), float64(tc[3]), tc[4])
		if f < 2 {
			t.Fatalf("nodes=%d: fanout %d < 2", tc[0], f)
		}
		if r < 1 || r > tc[0] {
			t.Fatalf("nodes=%d: roots %d out of [1, %d]", tc[0], r, tc[0])
		}
	}
	if f, r := RecommendTopology(64, 456e6, 0, 0, 0); f < 2 || r < 1 {
		t.Fatalf("degenerate bandwidths gave invalid shape (%d, %d)", f, r)
	}
	if fNIC < 2 || fFast < 2 {
		t.Fatalf("invalid fanouts %d, %d", fNIC, fFast)
	}
}
