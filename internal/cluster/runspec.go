package cluster

import (
	"fmt"
	"log"

	"repro/internal/meta"
	"repro/internal/storage"
	"repro/internal/topology"
)

// ClusterConfig is the service-level half of a run description: the
// shared substrate — machine, object store, token broker — that every
// tenant of a Service borrows rather than constructs. One ClusterConfig
// outlives any individual run; a RunSpec describes what one tenant does
// with it.
type ClusterConfig struct {
	// Platform sizes the cluster: Nodes core.Node instances with
	// CoresPerNode-DedicatedPerNode simulation clients each. Under a
	// Service, this is the whole machine; each tenant runs on a slice of
	// it (RunSpec.Quota.Nodes).
	Platform topology.Platform
	// DedicatedPerNode is the number of cores per node devoted to data
	// management (default 1).
	DedicatedPerNode int
	// Fanout is the children-per-node limit of the aggregation trees
	// (default 2).
	Fanout int
	// Roots is the number of aggregation trees per tenant; each root
	// writes its subtree's merged iterations (default 1).
	Roots int
	// Store receives the root objects; any storage.Backend works. Under
	// a Service it is shared by every tenant — object names stay
	// disjoint because each carries the tenant's JobName prefix.
	Store storage.ObjectStore
	// Broker, when non-nil, arbitrates root object writes across every
	// aggregation tree — of this run, and of every other tenant sharing
	// the broker. Grants are holder-tagged: tenant t's root node n
	// acquires as holder t<<20+n, so a shared broker can account waits,
	// grants, and reclaims per tenant, and ReleaseHolder on a killed
	// node never touches another tenant's tokens.
	Broker storage.TokenBroker
	// BrokerStripes is how many broker targets each root's write claims
	// (default 1): the runtime mirror of the DES stripe window.
	BrokerStripes int
	// DisableManifests turns off the per-iteration manifest objects
	// roots write alongside their data objects.
	DisableManifests bool
	// OutputDir is passed to each node for its local plugins.
	OutputDir string
	// Logger defaults to a silent logger.
	Logger *log.Logger
}

// withDefaults fills the zero values in place (value receiver: callers
// keep their copy unchanged).
func (cc ClusterConfig) withDefaults() ClusterConfig {
	if cc.DedicatedPerNode <= 0 {
		cc.DedicatedPerNode = 1
	}
	if cc.Fanout <= 0 {
		cc.Fanout = 2
	}
	if cc.Roots <= 0 {
		cc.Roots = 1
	}
	if cc.Logger == nil {
		cc.Logger = log.New(nullWriter{}, "", 0)
	}
	return cc
}

// Quota bounds one tenant's draw on the shared substrate. Zero values
// mean unlimited (single-tenant runs keep today's semantics).
type Quota struct {
	// Nodes is the number of platform nodes (hence dedicated cores, at
	// DedicatedPerNode each) the tenant asks for. 0 = the whole
	// platform. The Service admits the tenant only when that many nodes'
	// dedicated cores are free — or degrades the ask under
	// AdmitDegrade.
	Nodes int
	// MaxBytes caps the encoded bytes the tenant may store. Once a
	// root's next object would cross the cap, the object is dropped —
	// the paper's skip policy applied to a tenant over budget — and
	// counted in Stats.QuotaDroppedObjects; the run keeps its liveness
	// (iterations still complete).
	MaxBytes int64
}

// RunSpec is the per-tenant half of a run description: what one
// simulation does on the substrate a ClusterConfig provides.
type RunSpec struct {
	// Meta is the per-node Damaris XML configuration.
	Meta *meta.Config
	// JobName prefixes object names (default Meta.Name). Tenants of a
	// shared Service must use distinct JobNames; the Service enforces
	// uniqueness by suffixing its tenant id when needed.
	JobName string
	// Hooks run at tree roots on every merged iteration.
	Hooks []Hook
	// Failures schedules node deaths within this tenant's run (nil or
	// empty: no failures). Node ids are tenant-local.
	Failures *FailureSchedule
	// Quota bounds the tenant's resource draw; see Quota.
	Quota Quota
	// Deadline is the tenant's completion deadline in abstract time
	// units (0 = none). AdmitDeadline admission orders the queue by it,
	// and broker requests under PolicyDeadline inherit it as the base of
	// their per-iteration deadline.
	Deadline float64
	// Priority breaks admission and broker-arbitration ties: higher
	// runs first (default 0).
	Priority int
	// Weight scales fair-share arbitration: a tenant of weight 2 is
	// entitled to twice the bytes of a weight-1 tenant before the
	// broker considers it "ahead" (default 1).
	Weight float64
	// Retain is the checkpoint retention window in iterations (0 = keep
	// everything). On a store with reference-lifecycle support
	// (storage.Retainer — the dedup chunk store), each root that stores
	// iteration N releases its object and manifest for iteration
	// N-Retain: they stay readable until the store's next GC sweep,
	// which reclaims them and every chunk only they referenced. On a
	// plain store the field is ignored.
	Retain int
}

// withDefaults fills the zero values in place.
func (spec RunSpec) withDefaults() RunSpec {
	if spec.JobName == "" && spec.Meta != nil {
		spec.JobName = spec.Meta.Name
	}
	return spec
}

// validate rejects a spec the cluster cannot run.
func (spec RunSpec) validate() error {
	if spec.Meta == nil {
		return fmt.Errorf("cluster: nil meta config")
	}
	if spec.Quota.Nodes < 0 {
		return fmt.Errorf("cluster: negative node quota %d", spec.Quota.Nodes)
	}
	return nil
}

// Config describes a single-tenant cluster run — the pre-Service API,
// kept as the convenient front door for one-run-per-process callers.
// It is exactly ClusterConfig + RunSpec flattened; New splits it.
type Config struct {
	// Platform sizes the cluster; see ClusterConfig.Platform.
	Platform topology.Platform
	// Meta is the per-node Damaris XML configuration.
	Meta *meta.Config
	// DedicatedPerNode is the number of cores per node devoted to data
	// management (default 1).
	DedicatedPerNode int
	// Fanout is the children-per-node limit of the aggregation trees
	// (default 2).
	Fanout int
	// Roots is the number of aggregation trees (default 1).
	Roots int
	// Store receives the root objects; any storage.Backend works.
	Store storage.ObjectStore
	// Broker, when non-nil, arbitrates root object writes across every
	// aggregation tree of the run; see ClusterConfig.Broker.
	Broker storage.TokenBroker
	// BrokerStripes is how many broker targets each root's write claims
	// (default 1).
	BrokerStripes int
	// DisableManifests turns off per-iteration manifest objects.
	DisableManifests bool
	// JobName prefixes object names (default Meta.Name).
	JobName string
	// OutputDir is passed to each node for its local plugins.
	OutputDir string
	// Logger defaults to a silent logger.
	Logger *log.Logger
	// Hooks run at tree roots on every merged iteration.
	Hooks []Hook
	// Failures schedules node deaths (nil or empty: no failures).
	Failures *FailureSchedule
	// Retain is the checkpoint retention window in iterations; see
	// RunSpec.Retain.
	Retain int
}

// split separates the flat single-tenant Config into its service-level
// and per-tenant halves.
func (cfg Config) split() (ClusterConfig, RunSpec) {
	cc := ClusterConfig{
		Platform:         cfg.Platform,
		DedicatedPerNode: cfg.DedicatedPerNode,
		Fanout:           cfg.Fanout,
		Roots:            cfg.Roots,
		Store:            cfg.Store,
		Broker:           cfg.Broker,
		BrokerStripes:    cfg.BrokerStripes,
		DisableManifests: cfg.DisableManifests,
		OutputDir:        cfg.OutputDir,
		Logger:           cfg.Logger,
	}
	spec := RunSpec{
		Meta:     cfg.Meta,
		JobName:  cfg.JobName,
		Hooks:    cfg.Hooks,
		Failures: cfg.Failures,
		Retain:   cfg.Retain,
	}
	return cc, spec
}

// holderSpan is the holder-id space reserved per tenant on a shared
// broker: tenant t's node n acquires as holder t*holderSpan+n. A
// million-node platform per tenant is far beyond any configuration
// this code hosts, so the spans never collide.
const holderSpan = 1 << 20

// tenantHolderBase returns the first holder id of a tenant's span.
func tenantHolderBase(tenant int) int { return tenant * holderSpan }
