package cluster

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/core"
	"repro/internal/meta"
	"repro/internal/storage"
	"repro/internal/topology"
)

// Hook is a cluster-wide end-of-iteration plugin: it runs at a tree
// root once that root's whole subtree has delivered an iteration, with
// the merged batch still in memory.
type Hook interface {
	// Name identifies the hook in errors.
	Name() string
	// OnIteration sees the merged batch before it is stored.
	OnIteration(it int, b *Batch) error
}

// HookFunc adapts a function to the Hook interface.
type HookFunc struct {
	HookName string
	Fn       func(it int, b *Batch) error
}

// Name implements Hook.
func (h HookFunc) Name() string { return h.HookName }

// OnIteration implements Hook.
func (h HookFunc) OnIteration(it int, b *Batch) error { return h.Fn(it, b) }

// Config describes a cluster run.
type Config struct {
	// Platform sizes the cluster: Nodes core.Node instances with
	// CoresPerNode-DedicatedPerNode simulation clients each.
	Platform topology.Platform
	// Meta is the per-node Damaris XML configuration.
	Meta *meta.Config
	// DedicatedPerNode is the number of cores per node devoted to data
	// management (default 1).
	DedicatedPerNode int
	// Fanout is the children-per-node limit of the aggregation trees
	// (default 2).
	Fanout int
	// Roots is the number of aggregation trees; each root writes its
	// subtree's merged iterations (default 1).
	Roots int
	// Store receives the root objects; any storage.Backend works.
	Store storage.ObjectStore
	// JobName prefixes object names (default Meta.Name).
	JobName string
	// OutputDir is passed to each node for its local plugins.
	OutputDir string
	// Logger defaults to a silent logger.
	Logger *log.Logger
	// Hooks run at tree roots on every merged iteration.
	Hooks []Hook
}

// Stats aggregates what the cluster measured.
type Stats struct {
	// BatchesForwarded counts node→parent transfers.
	BatchesForwarded int
	// BytesForwarded is the payload volume of those transfers.
	BytesForwarded int64
	// ObjectsWritten counts root objects handed to the store.
	ObjectsWritten int
	// ObjectBytes is the encoded size of those objects.
	ObjectBytes int64
	// IterationsCompleted counts iterations all roots finished.
	IterationsCompleted int
	// PartialIterations counts iterations flushed at shutdown without
	// the full subtree contribution (data loss tolerated, as in the
	// paper's skip policy).
	PartialIterations int
}

// Cluster is a multi-node Damaris deployment: N per-node middleware
// instances plus the cross-node aggregation layer.
type Cluster struct {
	cfg   Config
	tree  Tree
	nodes []*core.Node
	aggs  []*aggregator
	wg    sync.WaitGroup

	mu        sync.Mutex
	stats     Stats
	errs      []error
	doneRoots map[int]int // iteration → roots that emitted it
	iterDone  *sync.Cond
}

// New builds and starts the cluster: every node's shared-memory
// runtime, the forwarding plugin on each dedicated core, and one
// aggregator per node.
func New(cfg Config) (*Cluster, error) {
	if cfg.Platform.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: platform has %d nodes", cfg.Platform.Nodes)
	}
	if cfg.Meta == nil {
		return nil, fmt.Errorf("cluster: nil meta config")
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("cluster: nil object store")
	}
	if cfg.DedicatedPerNode <= 0 {
		cfg.DedicatedPerNode = 1
	}
	clients := cfg.Platform.CoresPerNode - cfg.DedicatedPerNode
	if clients <= 0 {
		return nil, fmt.Errorf("cluster: %d cores/node leaves no simulation cores",
			cfg.Platform.CoresPerNode)
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = 2
	}
	if cfg.Roots <= 0 {
		cfg.Roots = 1
	}
	if cfg.JobName == "" {
		cfg.JobName = cfg.Meta.Name
	}
	if cfg.Logger == nil {
		cfg.Logger = log.New(nullWriter{}, "", 0)
	}

	c := &Cluster{
		cfg:       cfg,
		tree:      NewTree(cfg.Platform.Nodes, cfg.Fanout, cfg.Roots),
		nodes:     make([]*core.Node, cfg.Platform.Nodes),
		aggs:      make([]*aggregator, cfg.Platform.Nodes),
		doneRoots: map[int]int{},
	}
	c.iterDone = sync.NewCond(&c.mu)

	for i := range c.aggs {
		c.aggs[i] = &aggregator{
			cluster: c,
			node:    i,
			// Producers: the node's own forwarder plus every child
			// aggregator; the inbox closes after one eof from each.
			expect:  1 + len(c.tree.Children(i)),
			inbox:   make(chan aggMsg, 8),
			pending: map[int]*pendingIter{},
		}
	}
	for i := range c.nodes {
		nodeID := i
		opts := core.Options{
			NodeID:    nodeID,
			OutputDir: cfg.OutputDir,
			Logger:    cfg.Logger,
			ExtraPlugins: map[string][]core.Plugin{
				"end_iteration": {&forwarder{agg: c.aggs[nodeID]}},
			},
		}
		n, err := core.NewNode(cfg.Meta, clients, opts)
		if err != nil {
			for j := 0; j < i; j++ {
				c.nodes[j].Shutdown()
			}
			return nil, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		c.nodes[i] = n
	}
	for _, a := range c.aggs {
		c.wg.Add(1)
		go a.run()
	}
	return c, nil
}

type nullWriter struct{}

func (nullWriter) Write(p []byte) (int, error) { return len(p), nil }

// Tree returns the aggregation topology.
func (c *Cluster) Tree() Tree { return c.tree }

// Nodes returns the number of nodes.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// Node returns one node's middleware instance.
func (c *Cluster) Node(i int) *core.Node { return c.nodes[i] }

// Client returns the handle for simulation core source on node i.
func (c *Cluster) Client(node, source int) *core.Client {
	return c.nodes[node].Client(source)
}

// Stats returns a snapshot of the cluster counters.
func (c *Cluster) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Errors returns the aggregation/store/hook errors collected so far.
func (c *Cluster) Errors() []error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]error(nil), c.errs...)
}

// WaitIteration blocks until every tree root has stored iteration it.
func (c *Cluster) WaitIteration(it int) {
	roots := len(c.tree.Roots())
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.doneRoots[it] < roots {
		c.iterDone.Wait()
	}
}

// Shutdown drains every node, flushes the aggregation trees and
// returns the first error observed anywhere in the cluster.
func (c *Cluster) Shutdown() error {
	var first error
	for i, n := range c.nodes {
		// Draining the node runs every queued end_iteration, so the
		// forwarder has delivered everything before the eof below.
		if err := n.Shutdown(); err != nil && first == nil {
			first = fmt.Errorf("node %d: %w", i, err)
		}
		c.aggs[i].inbox <- aggMsg{eof: true}
	}
	c.wg.Wait()
	c.mu.Lock()
	defer c.mu.Unlock()
	if first == nil && len(c.errs) > 0 {
		first = c.errs[0]
	}
	return first
}

func (c *Cluster) fail(err error) {
	c.mu.Lock()
	c.errs = append(c.errs, err)
	c.mu.Unlock()
	c.cfg.Logger.Printf("cluster: %v", err)
}

// markRootDone records one root having stored an iteration.
func (c *Cluster) markRootDone(it int) {
	roots := len(c.tree.Roots())
	c.mu.Lock()
	c.doneRoots[it]++
	if c.doneRoots[it] == roots {
		c.stats.IterationsCompleted++
	}
	c.mu.Unlock()
	c.iterDone.Broadcast()
}

// forwarder is the per-node plugin that snapshots a completed
// iteration out of shared memory and hands it to the aggregation
// layer. It runs on the dedicated core, before the node frees the
// iteration's blocks.
type forwarder struct{ agg *aggregator }

// Name implements core.Plugin.
func (f *forwarder) Name() string { return "cluster-forward" }

// OnEvent implements core.Plugin.
func (f *forwarder) OnEvent(ctx *core.PluginContext, ev core.Event) error {
	refs := ctx.Index.Iteration(ev.Iteration)
	b := &Batch{Iteration: ev.Iteration}
	for _, ref := range refs {
		b.Blocks = append(b.Blocks, Block{
			Node:     ctx.NodeID,
			Source:   ref.Key.Source,
			Variable: ref.Key.Variable,
			// The node frees the shared-memory block right after the
			// plugins return; the copy decouples aggregation from it.
			Data: append([]byte(nil), ctx.BlockBytes(ref)...),
		})
	}
	f.agg.inbox <- aggMsg{batch: b}
	return nil
}

// aggMsg is one message into an aggregator: a batch, or a producer's
// end-of-stream marker.
type aggMsg struct {
	batch *Batch
	eof   bool
}

// pendingIter accumulates one iteration's contributions at a node.
type pendingIter struct {
	batch *Batch
	got   int
}

// aggregator is one node's position in the aggregation tree: it merges
// the node's own iteration batches with its children's and forwards
// the result upward, or stores it when the node is a root.
type aggregator struct {
	cluster *Cluster
	node    int
	expect  int
	inbox   chan aggMsg
	pending map[int]*pendingIter
}

func (a *aggregator) run() {
	defer a.cluster.wg.Done()
	c := a.cluster
	eofs := 0
	for eofs < a.expect {
		msg := <-a.inbox
		if msg.eof {
			eofs++
			continue
		}
		p := a.pending[msg.batch.Iteration]
		if p == nil {
			p = &pendingIter{batch: &Batch{Iteration: msg.batch.Iteration}}
			a.pending[msg.batch.Iteration] = p
		}
		p.batch.merge(msg.batch)
		p.got++
		if p.got == a.expect {
			delete(a.pending, msg.batch.Iteration)
			a.emit(p.batch)
		}
	}
	// Every producer is done: flush incomplete iterations upward
	// rather than losing them silently (partial data beats no data —
	// the same trade the §V.C skip policy makes).
	for it, p := range a.pending {
		c.mu.Lock()
		c.stats.PartialIterations++
		c.mu.Unlock()
		delete(a.pending, it)
		a.emit(p.batch)
	}
	if parent, ok := c.tree.Parent(a.node); ok {
		c.aggs[parent].inbox <- aggMsg{eof: true}
	}
}

// emit sends a merged batch to the parent, or stores it at a root.
func (a *aggregator) emit(b *Batch) {
	c := a.cluster
	if parent, ok := c.tree.Parent(a.node); ok {
		c.mu.Lock()
		c.stats.BatchesForwarded++
		c.stats.BytesForwarded += int64(b.Bytes())
		c.mu.Unlock()
		c.aggs[parent].inbox <- aggMsg{batch: b}
		return
	}
	// Root: cluster-wide hooks see the merged subtree, then the batch
	// becomes one large sequential object on the backend.
	for _, h := range c.cfg.Hooks {
		if err := h.OnIteration(b.Iteration, b); err != nil {
			c.fail(fmt.Errorf("hook %q on iteration %d: %w", h.Name(), b.Iteration, err))
		}
	}
	obj := EncodeBatch(b)
	name := fmt.Sprintf("%s-root%03d-it%06d", c.cfg.JobName, a.node, b.Iteration)
	if err := c.cfg.Store.Put(name, obj); err != nil {
		c.fail(fmt.Errorf("storing %s: %w", name, err))
	} else {
		c.mu.Lock()
		c.stats.ObjectsWritten++
		c.stats.ObjectBytes += int64(len(obj))
		c.mu.Unlock()
	}
	c.markRootDone(b.Iteration)
}
