package cluster

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/buf"
	"repro/internal/core"
	"repro/internal/storage"
)

// Hook is a cluster-wide end-of-iteration plugin: it runs at a tree
// root once that root's whole subtree has delivered an iteration, with
// the merged batch still in memory. The batch is normalized before the
// hook runs, so hooks observe the same (node, source, variable) order
// that EncodeBatch later stores, regardless of arrival order. Block
// payloads live in pooled buffers that are recycled right after the
// iteration is stored — a hook that wants bytes past its own return
// must copy them.
type Hook interface {
	// Name identifies the hook in errors.
	Name() string
	// OnIteration sees the merged batch before it is stored.
	OnIteration(it int, b *Batch) error
}

// HookFunc adapts a function to the Hook interface.
type HookFunc struct {
	HookName string
	Fn       func(it int, b *Batch) error
}

// Name implements Hook.
func (h HookFunc) Name() string { return h.HookName }

// OnIteration implements Hook.
func (h HookFunc) OnIteration(it int, b *Batch) error { return h.Fn(it, b) }

// Stats aggregates what the cluster measured.
type Stats struct {
	// BatchesForwarded counts node→parent transfers.
	BatchesForwarded int
	// BytesForwarded is the payload volume of those transfers.
	BytesForwarded int64
	// ObjectsWritten counts root data objects handed to the store
	// (manifests are counted separately in ManifestsWritten).
	ObjectsWritten int
	// ObjectBytes is the encoded size of those objects.
	ObjectBytes int64
	// ManifestsWritten counts per-iteration manifest objects stored
	// alongside the data objects (one per data object unless
	// Config.DisableManifests is set or the manifest Put failed).
	ManifestsWritten int
	// IterationsCompleted counts iterations all live roots finished.
	IterationsCompleted int
	// PartialIterations counts the distinct iterations some root stored
	// without its full live-subtree coverage (stragglers or orphaned
	// data flushed at shutdown — data loss tolerated, as in the paper's
	// skip policy). An iteration missing only dead nodes' data is not
	// partial; that loss is visible in Completeness instead.
	PartialIterations int
	// NodesFailed counts nodes killed by the failure schedule.
	NodesFailed int
	// BlocksLost counts blocks that never reached a root object:
	// produced on a dead node, or orphaned with nowhere to drain.
	BlocksLost int
	// ReroutedEdges counts tree edges moved by failures, including
	// root promotions.
	ReroutedEdges int
	// TreeReforms counts mid-run topology re-formations (Reform): new
	// tree epochs opened by elastic adaptation. Failures re-route
	// edges inside an epoch and are counted separately above.
	TreeReforms int
	// Completeness maps iteration → fraction of the cluster's nodes
	// whose blocks reached a stored root object for that iteration
	// (1.0 for every iteration when nothing fails or straggles).
	Completeness map[int]float64
	// QuotaDroppedObjects counts root objects skipped because storing
	// them would cross the tenant's Quota.MaxBytes — the skip policy
	// applied to budget rather than time.
	QuotaDroppedObjects int
	// ObjectsReleased counts objects (data and manifests) the retention
	// window aged out of the store's reference set (RunSpec.Retain on a
	// storage.Retainer store). Released objects stay readable until the
	// store's next GC sweep.
	ObjectsReleased int

	// Token-broker counters, populated only when the run has a broker.
	// On a broker shared across tenants, every counter below is THIS
	// tenant's slice (grants are holder-tagged; see ClusterConfig.Broker).

	// TokenWaitTime is the total wall-clock seconds roots spent waiting
	// for a write token; TokenGrants counts tokens granted.
	TokenWaitTime float64
	TokenGrants   int
	// RootTokenWait splits TokenWaitTime per (tenant-local) root node
	// id, and RootContention counts each root's grants that had to
	// queue behind another root — same-tenant or cross-tenant — the
	// interference the broker absorbed.
	RootTokenWait  map[int]float64
	RootContention map[int]int
	// TokensReclaimed counts tokens (held or queued) freed because
	// their holder was killed by the failure schedule or evicted.
	TokensReclaimed int
}

// add accumulates another tenant's counters into s (map fields are
// summed key-wise; Completeness keys collide only within one tenant, so
// the union is taken). Used by ServiceStats rollups.
func (s *Stats) add(o Stats) {
	s.BatchesForwarded += o.BatchesForwarded
	s.BytesForwarded += o.BytesForwarded
	s.ObjectsWritten += o.ObjectsWritten
	s.ObjectBytes += o.ObjectBytes
	s.ManifestsWritten += o.ManifestsWritten
	s.IterationsCompleted += o.IterationsCompleted
	s.PartialIterations += o.PartialIterations
	s.NodesFailed += o.NodesFailed
	s.BlocksLost += o.BlocksLost
	s.ReroutedEdges += o.ReroutedEdges
	s.TreeReforms += o.TreeReforms
	s.QuotaDroppedObjects += o.QuotaDroppedObjects
	s.ObjectsReleased += o.ObjectsReleased
	s.TokenWaitTime += o.TokenWaitTime
	s.TokenGrants += o.TokenGrants
	s.TokensReclaimed += o.TokensReclaimed
}

// Cluster is a multi-node Damaris deployment: N per-node middleware
// instances plus the cross-node aggregation layer. It is one tenant's
// view of the machine — under a Service, several Clusters share the
// ClusterConfig's store and broker, each tagging broker requests with
// its own tenant id and holder span.
type Cluster struct {
	cc         ClusterConfig
	spec       RunSpec
	tenant     int // tenant id on the shared broker (0 standalone)
	holderBase int // first broker holder id of this tenant's span
	nodes      []*core.Node
	aggs       []*aggregator
	wg         sync.WaitGroup

	// mu guards the tree epochs (failures re-route them and Reform
	// appends new ones mid-run), the stats and the exited flags. Each
	// aggregator's mailbox has its own lock (aggregator.mboxMu) so
	// concurrent leaf deliveries do not contend on one cluster-wide
	// mutex; routing lookups and the posts they decide still happen
	// while c.mu is held, so a re-route or re-formation stays atomic
	// with respect to in-flight deliveries. Lock order: c.mu before
	// mboxMu, never the reverse.
	mu sync.Mutex
	// epochs is the topology history, ascending by fromIter; the last
	// entry is the current tree. Iteration k routes through treeFor(k)
	// for its whole life — parent lookup, coverage requirement, root
	// set, broker window — so re-formation never strands an in-flight
	// iteration (see Reform in adapt.go).
	epochs    []treeEpoch
	maxRouted int // highest iteration any routing decision was made for
	failEpoch int // bumped by killNode and Reform; invalidates coverage caches
	stats     Stats
	covered   map[int]int  // iteration → origin nodes stored at roots
	partials  map[int]bool // iterations stored below full live coverage
	completed map[int]bool // iterations done at every live root
	failed    []bool       // node → killed by the schedule
	exited    []bool       // node → aggregator goroutine returned
	errs      []error
	doneRoots map[int]int // iteration → roots that stored it
	iterDone  *sync.Cond
}

// New builds and starts a standalone single-tenant cluster: every
// node's shared-memory runtime, the forwarding plugin on each dedicated
// core, and one aggregator per node. It is Config split into its two
// halves and handed to newTenantCluster as tenant 0.
func New(cfg Config) (*Cluster, error) {
	cc, spec := cfg.split()
	return newTenantCluster(cc, spec, 0)
}

// newTenantCluster builds and starts one tenant's cluster on the given
// substrate. The tenant id selects the holder span its broker requests
// are tagged with; a standalone run is tenant 0, whose span starts at
// holder 0 so broker holder ids equal node ids as before.
func newTenantCluster(cc ClusterConfig, spec RunSpec, tenant int) (*Cluster, error) {
	cc = cc.withDefaults()
	spec = spec.withDefaults()
	if cc.Platform.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: platform has %d nodes", cc.Platform.Nodes)
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if cc.Store == nil {
		return nil, fmt.Errorf("cluster: nil object store")
	}
	clients := cc.Platform.CoresPerNode - cc.DedicatedPerNode
	if clients <= 0 {
		return nil, fmt.Errorf("cluster: %d cores/node leaves no simulation cores",
			cc.Platform.CoresPerNode)
	}

	c := &Cluster{
		cc:         cc,
		spec:       spec,
		tenant:     tenant,
		holderBase: tenantHolderBase(tenant),
		epochs:     []treeEpoch{{tree: NewTree(cc.Platform.Nodes, cc.Fanout, cc.Roots)}},
		maxRouted:  -1,
		nodes:      make([]*core.Node, cc.Platform.Nodes),
		aggs:       make([]*aggregator, cc.Platform.Nodes),
		covered:    map[int]int{},
		partials:   map[int]bool{},
		completed:  map[int]bool{},
		failed:     make([]bool, cc.Platform.Nodes),
		exited:     make([]bool, cc.Platform.Nodes),
		doneRoots:  map[int]int{},
	}
	c.iterDone = sync.NewCond(&c.mu)

	for i := range c.aggs {
		a := &aggregator{
			c:       c,
			node:    i,
			pending: map[int]*pendingIter{},
			eofFrom: map[int]bool{},
			stored:  map[int]bool{},
			written: map[int]bool{},
		}
		a.avail = sync.NewCond(&a.mboxMu)
		c.aggs[i] = a
	}
	for i := range c.nodes {
		nodeID := i
		opts := core.Options{
			NodeID:    nodeID,
			OutputDir: cc.OutputDir,
			Logger:    cc.Logger,
			ExtraPlugins: map[string][]core.Plugin{
				"end_iteration": {&forwarder{agg: c.aggs[nodeID]}},
			},
		}
		n, err := core.NewNode(spec.Meta, clients, opts)
		if err != nil {
			for j := 0; j < i; j++ {
				c.nodes[j].Shutdown()
			}
			return nil, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		c.nodes[i] = n
	}
	for _, a := range c.aggs {
		c.wg.Add(1)
		go a.run()
	}
	return c, nil
}

type nullWriter struct{}

func (nullWriter) Write(p []byte) (int, error) { return len(p), nil }

// Tree returns a snapshot of the current aggregation topology — the
// latest epoch — including any failure re-routing applied so far.
func (c *Cluster) Tree() Tree {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.curTree().Clone()
}

// Nodes returns the number of nodes.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// ClientsPerNode returns the simulation client count on each node —
// what a driver loops over when it writes through Client.
func (c *Cluster) ClientsPerNode() int {
	return c.cc.Platform.CoresPerNode - c.cc.DedicatedPerNode
}

// Node returns one node's middleware instance.
func (c *Cluster) Node(i int) *core.Node { return c.nodes[i] }

// Client returns the handle for simulation core source on node i.
func (c *Cluster) Client(node, source int) *core.Client {
	return c.nodes[node].Client(source)
}

// Stats returns a snapshot of the cluster counters. Token counters are
// carved out of the (possibly shared) broker's holder-tagged ledger:
// only grants and waits of this tenant's holder span count, keyed back
// to tenant-local node ids — so two tenants on one broker each see
// exactly their own slice, and the slices sum to the broker totals.
func (c *Cluster) Stats() Stats {
	c.mu.Lock()
	s := c.stats
	s.Completeness = make(map[int]float64, len(c.covered))
	for it, n := range c.covered {
		s.Completeness[it] = float64(n) / float64(len(c.nodes))
	}
	c.mu.Unlock()
	if c.cc.Broker != nil {
		bs := c.cc.Broker.Stats()
		lo, hi := c.holderBase, c.holderBase+len(c.nodes)
		for h, n := range bs.GrantsByHolder {
			if h >= lo && h < hi {
				s.TokenGrants += n
			}
		}
		s.RootTokenWait = map[int]float64{}
		for h, w := range bs.WaitByHolder {
			if h >= lo && h < hi {
				s.RootTokenWait[h-lo] = w
				s.TokenWaitTime += w
			}
		}
		s.RootContention = map[int]int{}
		for h, n := range bs.ContendedByHolder {
			if h >= lo && h < hi {
				s.RootContention[h-lo] = n
			}
		}
	}
	return s
}

// Tenant returns the tenant id this cluster runs as (0 standalone).
func (c *Cluster) Tenant() int { return c.tenant }

// objectName is the deterministic name root node stores iteration it
// under — shared by the write path and the retention release so the two
// can never drift.
func (c *Cluster) objectName(node, it int) string {
	return fmt.Sprintf("%s-root%03d-it%06d", c.spec.JobName, node, it)
}

// rootTargets maps a root to its broker target window for one
// iteration: one BrokerStripes-wide window per aggregation tree,
// indexed by the subtree the root leads in the iteration's epoch — a
// promoted root inherits the dead root's window, mirroring the DES
// side's rootOrdinal inheritance, and a re-formed epoch gets its own
// window layout without disturbing older iterations'.
func (c *Cluster) rootTargets(node, it int) []int {
	stripes := c.cc.BrokerStripes
	if stripes < 1 {
		stripes = 1
	}
	c.mu.Lock()
	idx := c.treeFor(it).SubtreeIndex(node)
	c.mu.Unlock()
	targets := make([]int, stripes)
	for i := range targets {
		targets[i] = idx*stripes + i
	}
	return targets
}

// Errors returns the aggregation/store/hook errors collected so far.
func (c *Cluster) Errors() []error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]error(nil), c.errs...)
}

// WaitIteration blocks until every live tree root has stored iteration
// it. A failure mid-wait shrinks the requirement to the surviving
// roots, so a killed node cannot wedge the caller; when every root is
// dead, nothing more will ever be stored and the wait returns.
func (c *Cluster) WaitIteration(it int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for !c.completed[it] && len(c.treeFor(it).Roots()) > 0 {
		c.iterDone.Wait()
	}
}

// Shutdown drains every node, flushes the aggregation trees and
// returns the first error observed anywhere in the cluster.
func (c *Cluster) Shutdown() error {
	var first error
	for i, n := range c.nodes {
		// Draining the node runs every queued end_iteration, so the
		// forwarder has delivered everything before the eof below.
		if err := n.Shutdown(); err != nil && first == nil {
			first = fmt.Errorf("node %d: %w", i, err)
		}
		c.mu.Lock()
		c.postTo(i, aggMsg{eof: true, from: i})
		c.mu.Unlock()
	}
	c.wg.Wait()
	c.mu.Lock()
	defer c.mu.Unlock()
	if first == nil && len(c.errs) > 0 {
		first = c.errs[0]
	}
	return first
}

func (c *Cluster) fail(err error) {
	c.mu.Lock()
	c.errs = append(c.errs, err)
	c.mu.Unlock()
	c.cc.Logger.Printf("cluster: %v", err)
}

// Cancel evicts the run mid-flight: every node is killed as if the
// failure schedule had fired, which re-routes nothing (the whole forest
// dies), reclaims the tenant's broker tokens, drains in-flight merges
// into the lost-blocks accounting — returning their pooled payload
// buffers — and then shuts the nodes down. Safe to call at any point,
// including concurrently with client writes; it is how a Service
// enforces an eviction.
func (c *Cluster) Cancel() error {
	for i := range c.nodes {
		c.killNode(i, 0)
	}
	return c.Shutdown()
}

// killNode executes one scheduled death: atomically re-route the tree,
// then tell the dead node's aggregator to flush and every survivor to
// re-check completion against the shrunken coverage requirements.
// blocksDropped are the dead node's own blocks for the triggering
// iteration — the mid-iteration loss. Repeat calls (every later
// iteration of the dead node) only account further dropped blocks.
func (c *Cluster) killNode(d, blocksDropped int) {
	c.mu.Lock()
	c.stats.BlocksLost += blocksDropped
	if c.failed[d] {
		c.mu.Unlock()
		return
	}
	c.failed[d] = true
	// The death applies to every epoch: an in-flight iteration routing
	// through an older tree must re-route around the corpse too. Edge
	// accounting reports the current epoch's re-routing.
	var edges []RerouteEdge
	for i := range c.epochs {
		e := c.epochs[i].tree.Fail(d)
		if i == len(c.epochs)-1 {
			edges = e
		}
	}
	c.failEpoch++
	c.stats.NodesFailed++
	c.stats.ReroutedEdges += len(edges)
	if c.cc.Broker != nil {
		// A dead root must not strand a write token for the rest of the
		// run: free what it holds, cancel what it queued for. The count
		// accumulates locally — on a shared broker, the global
		// HolderReleases tally mixes in other tenants' reclaims.
		c.stats.TokensReclaimed += c.cc.Broker.ReleaseHolder(c.holderBase + d)
	}
	c.postTo(d, aggMsg{die: true})
	for i, a := range c.aggs {
		if i != d && !c.exited[i] {
			a.post(aggMsg{poke: true})
		}
	}
	// Iterations waiting on the dead root's store may be complete now.
	for it := range c.doneRoots {
		c.checkIterComplete(it)
	}
	c.mu.Unlock()
	c.iterDone.Broadcast()
	c.cc.Logger.Printf("cluster: node %d failed, %d edges re-routed", d, len(edges))
}

// postTo delivers a message to node i's aggregator, counting a batch as
// lost when that aggregator already exited. Callers hold c.mu.
func (c *Cluster) postTo(i int, m aggMsg) {
	if c.exited[i] {
		if m.batch != nil {
			c.stats.BlocksLost += len(m.batch.Blocks)
			m.batch.ReleaseBuffers()
		}
		return
	}
	c.aggs[i].post(m)
}

// noteRootStored records one root having stored an iteration. Callers
// hold c.mu.
func (c *Cluster) noteRootStored(it int) {
	c.doneRoots[it]++
	c.checkIterComplete(it)
}

// checkIterComplete marks an iteration completed once every live root
// of the iteration's epoch has stored it. A forest with no live roots
// left completes nothing — WaitIteration observes that state directly
// instead. Callers hold c.mu.
func (c *Cluster) checkIterComplete(it int) {
	roots := len(c.treeFor(it).Roots())
	if roots > 0 && !c.completed[it] && c.doneRoots[it] >= roots {
		c.completed[it] = true
		c.stats.IterationsCompleted++
	}
}

// forwarder is the per-node plugin that snapshots a completed
// iteration out of shared memory and hands it to the aggregation
// layer. It runs on the dedicated core, before the node frees the
// iteration's blocks. It is also the failure injection point: a node
// scheduled to die at iteration k drops everything from k on.
type forwarder struct{ agg *aggregator }

// Name implements core.Plugin.
func (f *forwarder) Name() string { return "cluster-forward" }

// OnEvent implements core.Plugin.
func (f *forwarder) OnEvent(ctx *core.PluginContext, ev core.Event) error {
	c := f.agg.c
	refs := ctx.Index.Iteration(ev.Iteration)
	if at, ok := c.spec.Failures.At(f.agg.node); ok && ev.Iteration >= at {
		c.killNode(f.agg.node, len(refs))
		return nil
	}
	b := &Batch{Iteration: ev.Iteration}
	for _, ref := range refs {
		b.Blocks = append(b.Blocks, Block{
			Node:     ctx.NodeID,
			Source:   ref.Key.Source,
			Variable: ref.Key.Variable,
			// The node frees the shared-memory block right after the
			// plugins return; the copy decouples aggregation from it.
			// The snapshot buffer comes from the pool and is recycled
			// once the batch reaches a root object (or is dropped).
			Data: buf.Clone(ctx.BlockBytes(ref)),
		})
	}
	f.agg.post(aggMsg{batch: b, covers: []int{f.agg.node}, from: f.agg.node})
	return nil
}

// aggMsg is one message into an aggregator's mailbox: a batch tagged
// with the origin nodes it covers, a producer's end-of-stream marker, a
// death order, or a poke to re-check completion after a re-route.
type aggMsg struct {
	batch  *Batch
	covers []int // origin node ids whose data the batch carries
	from   int   // sending node (producer identity for eof)
	eof    bool
	die    bool
	poke   bool
}

// pendingIter accumulates one iteration's contributions at a node.
type pendingIter struct {
	batch   *Batch
	covered map[int]bool // origin nodes merged so far
}

// aggregator is one node's position in the aggregation tree: it merges
// the node's own iteration batches with its children's and forwards
// the result upward, or stores it when the node is a root. An
// iteration is complete when its coverage set spans the node's live
// subtree — a requirement that shrinks when nodes die, which is what
// lets the forest re-route around failures without deadlocking.
type aggregator struct {
	c    *Cluster
	node int

	// mboxMu guards this aggregator's mailbox alone, so deliveries to
	// different nodes never contend with each other (c.mu used to guard
	// every mailbox and was the aggregation layer's hottest lock).
	// Acquired after c.mu when both are needed.
	mboxMu sync.Mutex
	avail  *sync.Cond // on mboxMu
	mbox   []aggMsg   // unbounded so posts never block

	// Goroutine-local state (only touched by run()).
	pending  map[int]*pendingIter
	eofFrom  map[int]bool
	stored   map[int]bool // iterations this root has stored
	written  map[int]bool // iterations whose object actually landed (retention)
	dead     bool
	reqCache map[int][]int // epoch index → memoized live subtree, valid while reqEpoch holds
	reqEpoch int
}

// post enqueues a message. Safe with or without c.mu held (routing
// callers hold it; the forwarder does not).
func (a *aggregator) post(m aggMsg) {
	a.mboxMu.Lock()
	a.mbox = append(a.mbox, m)
	a.mboxMu.Unlock()
	a.avail.Signal()
}

// recv dequeues the next message, blocking until one arrives.
func (a *aggregator) recv() aggMsg {
	a.mboxMu.Lock()
	for len(a.mbox) == 0 {
		a.avail.Wait()
	}
	m := a.mbox[0]
	a.mbox[0] = aggMsg{}
	a.mbox = a.mbox[1:]
	a.mboxMu.Unlock()
	return m
}

// mboxEmpty reports whether the mailbox is drained.
func (a *aggregator) mboxEmpty() bool {
	a.mboxMu.Lock()
	defer a.mboxMu.Unlock()
	return len(a.mbox) == 0
}

func (a *aggregator) run() {
	c := a.c
	for {
		m := a.recv()
		switch {
		case m.die:
			a.die()
		case m.eof:
			a.eofFrom[m.from] = true
		case m.batch != nil:
			if a.dead {
				// Late delivery that raced the re-route: relay it toward
				// the drain target, coverage intact.
				a.drainUp(m.batch, m.covers)
				continue
			}
			p := a.pending[m.batch.Iteration]
			if p == nil {
				p = &pendingIter{
					batch:   &Batch{Iteration: m.batch.Iteration},
					covered: map[int]bool{},
				}
				a.pending[m.batch.Iteration] = p
			}
			p.batch.merge(m.batch)
			for _, n := range m.covers {
				p.covered[n] = true
			}
		}
		if !a.dead {
			a.emitComplete()
		}
		if a.finished() {
			break
		}
	}
	if !a.dead {
		// Every producer is done: flush incomplete iterations upward
		// rather than losing them silently (partial data beats no data —
		// the same trade the §V.C skip policy makes).
		for _, it := range a.pendingIterations() {
			p := a.pending[it]
			delete(a.pending, it)
			a.emit(p.batch, p.covered, true)
		}
	}
	c.mu.Lock()
	if !a.dead {
		// The eof goes to every node that considers this one a child in
		// any epoch — a parent from an older topology may still be
		// waiting on it for an in-flight iteration.
		for _, parent := range c.parentsUnion(a.node) {
			c.postTo(parent, aggMsg{eof: true, from: a.node})
		}
	}
	c.exited[a.node] = true
	c.mu.Unlock()
	c.wg.Done()
}

// die flushes the node's in-flight merges toward the drain target as
// orphaned partials and switches the aggregator into relay mode.
func (a *aggregator) die() {
	a.dead = true
	for _, it := range a.pendingIterations() {
		p := a.pending[it]
		delete(a.pending, it)
		a.drainUp(p.batch, sortedCovers(p.covered))
	}
}

// pendingIterations returns the pending iteration numbers ascending,
// so flush order (and stored partial objects) is deterministic.
func (a *aggregator) pendingIterations() []int {
	its := make([]int, 0, len(a.pending))
	for it := range a.pending {
		its = append(its, it)
	}
	sort.Ints(its)
	return its
}

// finished reports whether every producer this aggregator still waits
// on has signalled end-of-stream. A dead aggregator only waits for its
// own node's eof (delivered by Shutdown); a live one also waits for
// every currently live child that has not already exited. The mailbox
// must be drained too: a child that exited may still have unprocessed
// deliveries queued here, and they must be merged before the flush.
func (a *aggregator) finished() bool {
	if !a.eofFrom[a.node] {
		return false
	}
	c := a.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if !a.mboxEmpty() {
		return false
	}
	if a.dead {
		return true
	}
	// Wait on the union of children across epochs: any node that might
	// still forward an in-flight iteration here must end its stream
	// first. The union graph stays acyclic because every tree keeps
	// parent id < child id, re-routing included.
	for _, k := range c.childrenUnion(a.node) {
		if !a.eofFrom[k] && !c.exited[k] {
			return false
		}
	}
	return true
}

// emitComplete emits every pending iteration whose coverage spans the
// node's live subtree in that iteration's epoch. The subtree walks are
// memoized per epoch — the topology only changes when a node dies or
// the forest re-forms, both of which bump failEpoch.
func (a *aggregator) emitComplete() {
	c := a.c
	c.mu.Lock()
	if a.reqCache == nil || a.reqEpoch != c.failEpoch {
		a.reqCache = map[int][]int{}
		a.reqEpoch = c.failEpoch
	}
	var ready []int
	for it, p := range a.pending {
		ei := c.epochIndexFor(it)
		required, ok := a.reqCache[ei]
		if !ok {
			required = c.epochs[ei].tree.LiveSubtree(a.node)
			a.reqCache[ei] = required
		}
		if CoversAll(p.covered, required) {
			ready = append(ready, it)
		}
	}
	c.mu.Unlock()
	sort.Ints(ready)
	for _, it := range ready {
		p := a.pending[it]
		delete(a.pending, it)
		a.emit(p.batch, p.covered, false)
	}
}

func sortedCovers(covered map[int]bool) []int {
	covers := make([]int, 0, len(covered))
	for n := range covered {
		covers = append(covers, n)
	}
	sort.Ints(covers)
	return covers
}

// drainUp forwards a batch toward the dead node's drain target,
// counting it as lost when there is none.
func (a *aggregator) drainUp(b *Batch, covers []int) {
	c := a.c
	c.mu.Lock()
	c.noteRouted(b.Iteration)
	dest, ok := c.treeFor(b.Iteration).DrainTarget(a.node)
	if !ok {
		c.stats.BlocksLost += len(b.Blocks)
		b.ReleaseBuffers()
	} else {
		c.stats.BatchesForwarded++
		c.stats.BytesForwarded += int64(b.Bytes())
		c.postTo(dest, aggMsg{batch: b, covers: covers, from: a.node})
	}
	c.mu.Unlock()
}

// emit sends a merged batch to the parent, or stores it at a root.
// partial marks batches flushed without full live coverage.
func (a *aggregator) emit(b *Batch, covered map[int]bool, partial bool) {
	c := a.c
	covers := sortedCovers(covered)
	c.mu.Lock()
	c.noteRouted(b.Iteration)
	if c.failed[a.node] {
		// Killed between recv and emit: the data still drains upward.
		c.mu.Unlock()
		a.drainUp(b, covers)
		return
	}
	if parent, ok := c.treeFor(b.Iteration).Parent(a.node); ok {
		c.stats.BatchesForwarded++
		c.stats.BytesForwarded += int64(b.Bytes())
		c.postTo(parent, aggMsg{batch: b, covers: covers, from: a.node})
		c.mu.Unlock()
		return
	}
	if a.stored[b.Iteration] {
		// A straggler for an iteration this root already stored: the
		// object is immutable, so the late blocks are lost.
		c.stats.BlocksLost += len(b.Blocks)
		c.mu.Unlock()
		b.ReleaseBuffers()
		return
	}
	a.stored[b.Iteration] = true
	c.mu.Unlock()

	// Cluster-wide write scheduling: claim this root's target window
	// before touching the store, earliest iteration first, so roots of
	// different trees — this tenant's or another's — never hit the same
	// target at once. The request carries the tenant identity the
	// shared broker arbitrates and accounts by.
	if c.cc.Broker != nil {
		deadline := float64(b.Iteration)
		if c.spec.Deadline > 0 {
			deadline += c.spec.Deadline
		}
		grant := c.cc.Broker.Acquire(storage.TokenRequest{
			Holder:   c.holderBase + a.node,
			Tenant:   c.tenant,
			Priority: c.spec.Priority,
			Weight:   c.spec.Weight,
			Targets:  c.rootTargets(a.node, b.Iteration),
			Deadline: deadline,
			Bytes:    float64(b.Bytes()),
		})
		if grant.Denied {
			// Killed while queued for the token: the write never starts;
			// the batch drains toward the re-route target instead.
			delete(a.stored, b.Iteration)
			a.drainUp(b, covers)
			return
		}
		defer grant.Release()
	}

	// Root: normalize so hooks and the stored object agree on block
	// order, run the cluster-wide hooks on the merged subtree, then the
	// batch becomes one large sequential object on the backend. The
	// write is scatter-gather: only the small framing headers are newly
	// built, payload segments alias the batch's pooled buffers, and the
	// backend gathers (or discards) them in its own single copy.
	b.normalize()
	for _, h := range c.spec.Hooks {
		if err := h.OnIteration(b.Iteration, b); err != nil {
			c.fail(fmt.Errorf("hook %q on iteration %d: %w", h.Name(), b.Iteration, err))
		}
	}
	segs := EncodeBatchVec(b)
	objLen := storage.SegsLen(segs)

	// Byte-quota enforcement: a tenant whose next object would cross
	// its MaxBytes budget skips the write — the §V.C skip policy applied
	// to budget instead of time. The iteration still completes (waiters
	// must not hang on an over-budget tenant); the loss is visible in
	// QuotaDroppedObjects, BlocksLost and Completeness.
	if max := c.spec.Quota.MaxBytes; max > 0 {
		c.mu.Lock()
		over := c.stats.ObjectBytes+int64(objLen) > max
		if over {
			c.stats.QuotaDroppedObjects++
			c.stats.BlocksLost += len(b.Blocks)
			c.noteRootStored(b.Iteration)
		}
		c.mu.Unlock()
		if over {
			c.iterDone.Broadcast()
			b.ReleaseBuffers()
			return
		}
	}

	name := c.objectName(a.node, b.Iteration)
	err := storage.PutVec(c.cc.Store, name, segs)
	var manifestStored bool
	if err == nil && !c.cc.DisableManifests {
		// The manifest rides along with the data: a small index object
		// Restore navigates by without touching any payload. A failed
		// manifest Put degrades the run to unreplayable, not broken —
		// the data object is already durable.
		m := newManifest(c.spec.JobName, a.node, name, b, covers, partial)
		if ci, ok := c.cc.Store.(storage.ObjectCodecInfoer); ok {
			// A compressing store knows how it just encoded the data
			// object; the manifest records codec and sizes so a restart
			// can see the compression story without fetching payloads.
			if info, known := ci.ObjectCodec(name); known {
				m.Codec = info.Codec
				m.RawBytes = info.RawBytes
				m.EncodedBytes = info.EncodedBytes
			}
		}
		if chi, ok := c.cc.Store.(storage.ObjectChunkInfoer); ok {
			// A dedup store knows the object's content-addressed chunk
			// set; the manifest (v2) records it, so a restart can walk
			// the whole chunk dependency graph from manifests alone.
			if info, known := chi.ObjectChunks(name); known {
				m.setChunks(info)
			}
		}
		if merr := c.cc.Store.Put(m.Name(), EncodeManifest(m)); merr != nil {
			c.fail(fmt.Errorf("storing manifest %s: %w", m.Name(), merr))
		} else {
			manifestStored = true
		}
	}
	// The store (and the manifest, which reads only block metadata) is
	// done with the payloads; the pooled buffers go back for the next
	// iteration's snapshots.
	b.ReleaseBuffers()
	c.mu.Lock()
	if err == nil {
		// Coverage and partial accounting describe *stored* objects; a
		// failed Put stored nothing, so the loss shows in Completeness.
		c.stats.ObjectsWritten++
		c.stats.ObjectBytes += int64(objLen)
		if manifestStored {
			c.stats.ManifestsWritten++
		}
		c.covered[b.Iteration] += len(covers)
		if partial {
			c.partials[b.Iteration] = true
			c.stats.PartialIterations = len(c.partials)
		}
	}
	// Completion tracking is liveness, not accuracy: the root is done
	// with this iteration either way, and waiters must not hang on a
	// store error (the error itself surfaces through Errors/Shutdown).
	c.noteRootStored(b.Iteration)
	c.mu.Unlock()
	c.iterDone.Broadcast()
	if err == nil {
		a.releaseAged(b.Iteration)
	}
	if err != nil {
		c.fail(fmt.Errorf("storing %s: %w", name, err))
	}
}

// releaseAged applies the retention window after this root stored
// iteration it: the root's object and manifest for iteration it-Retain
// drop their store reference, making them collectable by the store's
// next GC sweep. Only objects this root actually wrote are released
// (quota-dropped iterations stored nothing), and eviction/cancel paths
// never call this — so every object inside any tenant's window keeps
// its reference, and a sweep can never break a retained restore.
// written is goroutine-local to this aggregator's run().
func (a *aggregator) releaseAged(it int) {
	c := a.c
	ret := c.spec.Retain
	if ret <= 0 {
		return
	}
	rt, ok := c.cc.Store.(storage.Retainer)
	if !ok {
		return
	}
	a.written[it] = true
	old := it - ret
	if !a.written[old] {
		return
	}
	delete(a.written, old)
	released := 0
	oldName := c.objectName(a.node, old)
	if rt.Release(oldName) == nil {
		released++
	}
	if !c.cc.DisableManifests {
		if rt.Release(oldName+ManifestSuffix) == nil {
			released++
		}
	}
	if released > 0 {
		c.mu.Lock()
		c.stats.ObjectsReleased += released
		c.mu.Unlock()
	}
}
