package cluster

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/storage/chunk"
	"repro/internal/topology"
)

// servicePayload is the dedup-friendly 128-byte block for the service
// race tests: stable pseudorandom content per (salt, node, source),
// with only node 0's source 0 varying by iteration — so chunks repeat
// across iterations and across tenants sharing the store.
func servicePayload(salt int64, node, source, it int) []byte {
	r := rand.New(rand.NewSource(salt<<32 | int64(node)<<16 | int64(source)))
	p := make([]byte, 16*8)
	r.Read(p)
	if node == 0 && source == 0 {
		for i := 0; i < 16; i++ {
			p[i] = byte(it*11 + i)
		}
	}
	return p
}

// driveDedupTenant pushes iterations [0, iters) through every client of
// a tenant's cluster with the dedup-friendly payloads. Tolerant of
// write errors (break, don't fail): the evicted tenant's clients die
// mid-iteration by design.
func driveDedupTenant(c *Cluster, salt int64, iters int) {
	var wg sync.WaitGroup
	for n := 0; n < c.Nodes(); n++ {
		for s := 0; s < c.ClientsPerNode(); s++ {
			wg.Add(1)
			go func(n, s int) {
				defer wg.Done()
				cl := c.Client(n, s)
				for it := 0; it < iters; it++ {
					if err := cl.Write("theta", it, servicePayload(salt, n, s, it)); err != nil {
						return
					}
					cl.EndIteration(it)
				}
			}(n, s)
		}
	}
	wg.Wait()
}

// TestServiceDedupSweepEvictRace is the GC-vs-writes race: two tenants
// share one dedup chunk store while a background goroutine sweeps it
// continuously. Tenant A runs a retention window (so it keeps releasing
// aged iterations into the sweeper's teeth); tenant B is evicted
// mid-iteration. No chunk referenced by a retained manifest may ever be
// collected: after the dust settles, A's retained window and every
// iteration B managed to store must restore byte-identical. Run under
// -race via the chunk-race make target.
func TestServiceDedupSweepEvictRace(t *testing.T) {
	const (
		aIters, aRetain = 8, 2
		bIters          = 20
		aSalt, bSalt    = 1, 2
	)
	st := chunk.New(storage.NewMemory(nil, 4, 1e9), chunk.Options{
		// Small chunks so the 128-byte-block objects are chunked rather
		// than passed through raw.
		Params: chunk.Params{Min: 64, Avg: 256, Max: 1024},
	})
	svc, err := NewService(ClusterConfig{
		Platform: topology.Platform{Name: "svc", Nodes: 6, CoresPerNode: 3},
		Store:    st,
	}, ServiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	a, err := svc.Submit(RunSpec{
		Meta: serviceMeta(t), JobName: "dedup-a",
		Quota: Quota{Nodes: 3}, Retain: aRetain,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := svc.Submit(RunSpec{
		Meta: serviceMeta(t), JobName: "dedup-b",
		Quota: Quota{Nodes: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	aC, bC := a.Cluster(), b.Cluster()
	if aC == nil || bC == nil {
		t.Fatalf("tenants not running: %s / %s", a.State(), b.State())
	}
	aNodes := aC.Nodes()

	// The sweeper: collects whatever is released, concurrently with both
	// tenants' writes and B's eviction.
	stopSweep := make(chan struct{})
	var sweeps sync.WaitGroup
	sweeps.Add(1)
	go func() {
		defer sweeps.Done()
		for {
			select {
			case <-stopSweep:
				return
			default:
				if _, err := st.Sweep(); err != nil {
					t.Errorf("concurrent sweep: %v", err)
					return
				}
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()

	// Tenant A writes its whole run with the retention window active.
	var aDone sync.WaitGroup
	aDone.Add(1)
	go func() {
		defer aDone.Done()
		driveDedupTenant(aC, aSalt, aIters)
	}()

	// Tenant B writes until evicted mid-iteration.
	var bDone sync.WaitGroup
	bDone.Add(1)
	go func() {
		defer bDone.Done()
		driveDedupTenant(bC, bSalt, bIters)
	}()
	bC.WaitIteration(2) // a few of B's objects are durable
	if err := b.Evict(); err != nil {
		t.Errorf("evict: %v", err)
	}
	bDone.Wait()

	aDone.Wait()
	aC.WaitIteration(aIters - 1)
	aStats := a.Stats()
	if err := a.Finish(); err != nil {
		t.Fatal(err)
	}
	close(stopSweep)
	sweeps.Wait()
	if aStats.ObjectsReleased == 0 {
		t.Fatal("tenant A's retention released nothing")
	}
	if _, err := st.Sweep(); err != nil {
		t.Fatal(err)
	}

	// Tenant A: the retained window survived every concurrent sweep.
	ra, err := Restore(st, "dedup-a")
	if err != nil {
		t.Fatal(err)
	}
	if len(ra.Problems) != 0 {
		t.Fatalf("tenant A restore problems: %v", ra.Problems)
	}
	if it, ok := ra.LatestComplete(aNodes); !ok || it != aIters-1 {
		t.Fatalf("tenant A LatestComplete = %d, %v; want %d", it, ok, aIters-1)
	}
	for it := aIters - aRetain; it < aIters; it++ {
		ri := ra.Iterations[it]
		if ri == nil || !ri.Complete(aNodes) {
			t.Fatalf("tenant A retained iteration %d not recoverable after concurrent sweeps", it)
		}
		for _, blk := range ri.Blocks {
			if !bytes.Equal(blk.Data, servicePayload(aSalt, blk.Node, blk.Source, it)) {
				t.Fatalf("tenant A iteration %d block (%d,%d) corrupted", it, blk.Node, blk.Source)
			}
		}
	}

	// Tenant B: eviction released nothing, so every manifest it stored
	// before dying still restores — its chunks were never collectable,
	// even the ones shared with A's released iterations.
	rb, err := Restore(st, "dedup-b")
	if err != nil {
		t.Fatal(err)
	}
	if len(rb.Problems) != 0 {
		t.Fatalf("evicted tenant's stored iterations must stay readable: %v", rb.Problems)
	}
	if len(rb.Iterations) == 0 {
		t.Fatal("tenant B stored nothing before eviction")
	}
	for it, ri := range rb.Iterations {
		if ri.PayloadMissing {
			t.Fatalf("tenant B iteration %d lost its payload to the sweeper", it)
		}
		for _, blk := range ri.Blocks {
			if !bytes.Equal(blk.Data, servicePayload(bSalt, blk.Node, blk.Source, it)) {
				t.Fatalf("tenant B iteration %d block (%d,%d) corrupted", it, blk.Node, blk.Source)
			}
		}
	}
}
