package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/rng"
	"repro/internal/storage"
)

// FuzzBatchCodec feeds arbitrary bytes to DecodeBatch; anything it
// accepts must re-encode and decode to the same normalized batch, and
// the decoder must never panic or over-allocate on corrupt input.
func FuzzBatchCodec(f *testing.F) {
	f.Add([]byte("not a batch"))
	f.Add(EncodeBatch(&Batch{Iteration: 3}))
	f.Add(EncodeBatch(&Batch{Iteration: 7, Blocks: []Block{
		{Node: 2, Source: 1, Variable: "theta", Data: []byte{1, 2, 3}},
		{Node: 0, Source: 0, Variable: "p", Data: nil},
		{Node: 2, Source: 0, Variable: "theta", Data: []byte{9}},
	}}))
	enc := EncodeBatch(&Batch{Iteration: 1, Blocks: []Block{
		{Node: 1, Source: 2, Variable: "v", Data: bytes.Repeat([]byte{7}, 100)},
	}})
	f.Add(enc)
	f.Add(enc[:len(enc)-3])
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBatch(data)
		if err != nil {
			return
		}
		enc1 := EncodeBatch(b) // normalizes b in place
		b2, err := DecodeBatch(enc1)
		if err != nil {
			t.Fatalf("re-decode of a valid encoding failed: %v", err)
		}
		enc2 := EncodeBatch(b2)
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("round trip not stable:\n%x\n%x", enc1, enc2)
		}
		if b2.Iteration != b.Iteration || len(b2.Blocks) != len(b.Blocks) {
			t.Fatalf("round trip changed shape: %+v vs %+v", b, b2)
		}
		for i := range b.Blocks {
			x, y := b.Blocks[i], b2.Blocks[i]
			if x.Node != y.Node || x.Source != y.Source || x.Variable != y.Variable ||
				!bytes.Equal(x.Data, y.Data) {
				t.Fatalf("block %d changed: %+v vs %+v", i, x, y)
			}
		}
	})
}

// FuzzManifestV2Decode feeds arbitrary bytes to DecodeManifest: corrupt
// chunk hashes, truncated chunk lists and format forgeries must surface
// as the typed manifest errors — never a panic — and anything accepted
// must round-trip through encode/decode with its chunk set intact.
func FuzzManifestV2Decode(f *testing.F) {
	b := &Batch{Iteration: 2, Blocks: []Block{
		{Node: 0, Source: 0, Variable: "theta", Data: bytes.Repeat([]byte{3}, 64)},
	}}
	v1 := newManifest("job", 0, "job-root000-it000002", b, []int{0, 1}, false)
	f.Add(EncodeManifest(v1))
	v2 := newManifest("job", 1, "job-root001-it000002", b, []int{0, 1}, false)
	v2.setChunks(storage.ChunkInfo{
		Chunks: []storage.ChunkRef{
			{Hash: "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef", Bytes: 700},
			{Hash: "fedcba9876543210fedcba9876543210fedcba9876543210fedcba9876543210", Bytes: 324},
		},
		RawBytes: 1024,
		NewBytes: 700,
	})
	enc2 := EncodeManifest(v2)
	f.Add(enc2)
	f.Add(enc2[:len(enc2)-9]) // truncated chunk list
	f.Add([]byte(`{"format":"damaris-manifest-v2","chunks":[{"hash":"xyz","bytes":4}],"chunk_raw_bytes":4}`))
	f.Add([]byte(`{"format":"damaris-manifest-v2","chunks":[{"hash":"0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef","bytes":-1}]}`))
	f.Add([]byte(`{"format":"damaris-manifest-v1","chunks":[{"hash":"0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef","bytes":4}]}`))
	f.Add([]byte(`{"format":"damaris-manifest-v9"}`))
	f.Add([]byte("not json"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			if !errors.Is(err, ErrNotManifest) && !errors.Is(err, ErrManifestFormat) &&
				!errors.Is(err, ErrBadChunkRef) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		var sum int64
		for _, r := range m.Chunks {
			if len(r.Hash) != 64 || r.Bytes <= 0 {
				t.Fatalf("invalid chunk ref survived decode: %+v", r)
			}
			sum += int64(r.Bytes)
		}
		if len(m.Chunks) > 0 && sum != m.ChunkRawBytes {
			t.Fatalf("inconsistent chunk sum survived decode: %d vs %d", sum, m.ChunkRawBytes)
		}
		m2, err := DecodeManifest(EncodeManifest(m))
		if err != nil {
			t.Fatalf("re-decode of a valid manifest failed: %v", err)
		}
		if m2.Format != m.Format || m2.Iteration != m.Iteration || len(m2.Chunks) != len(m.Chunks) {
			t.Fatalf("round trip changed shape: %+v vs %+v", m, m2)
		}
		for i := range m.Chunks {
			if m2.Chunks[i] != m.Chunks[i] {
				t.Fatalf("round trip changed chunk %d: %+v vs %+v", i, m.Chunks[i], m2.Chunks[i])
			}
		}
	})
}

// checkTreeInvariants verifies the structural contract of a forest:
// Parent/Children are mutual inverses, every live node is reachable
// from exactly one live root, and dead nodes are detached.
func checkTreeInvariants(t *testing.T, tr Tree, label string) {
	t.Helper()
	seen := map[int]bool{}
	var walk func(i int)
	walk = func(i int) {
		if seen[i] {
			t.Fatalf("%s: node %d reached twice", label, i)
		}
		seen[i] = true
		for _, k := range tr.Children(i) {
			if !tr.Alive(k) {
				t.Fatalf("%s: dead node %d listed as child of %d", label, k, i)
			}
			if p, ok := tr.Parent(k); !ok || p != i {
				t.Fatalf("%s: child %d of %d has Parent %d,%v", label, k, i, p, ok)
			}
			walk(k)
		}
	}
	live := 0
	for _, r := range tr.Roots() {
		if !tr.IsRoot(r) || tr.RootOf(r) != r {
			t.Fatalf("%s: root %d inconsistent", label, r)
		}
		walk(r)
	}
	for i := 0; i < tr.Nodes(); i++ {
		if !tr.Alive(i) {
			if len(tr.Children(i)) != 0 {
				t.Fatalf("%s: dead node %d has children", label, i)
			}
			if seen[i] {
				t.Fatalf("%s: dead node %d reachable from a root", label, i)
			}
			continue
		}
		live++
		if !seen[i] {
			t.Fatalf("%s: live node %d unreachable from any root", label, i)
		}
		if p, ok := tr.Parent(i); ok {
			found := false
			for _, k := range tr.Children(p) {
				if k == i {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s: Parent(%d)=%d but Children(%d)=%v", label, i, p, p, tr.Children(p))
			}
		}
		if r := tr.RootOf(i); !tr.IsRoot(r) {
			t.Fatalf("%s: RootOf(%d)=%d is not a root", label, i, r)
		}
		if tr.IsLeaf(i) != (len(tr.Children(i)) == 0) {
			t.Fatalf("%s: IsLeaf(%d) inconsistent", label, i)
		}
	}
	if len(seen) != live {
		t.Fatalf("%s: reached %d nodes, %d live", label, len(seen), live)
	}
}

// TestTreePropertyUnderFailures drives random forests through random
// kill sequences: Parent and Children must stay mutually consistent,
// and every live node reachable, after every single failure.
func TestTreePropertyUnderFailures(t *testing.T) {
	r := rng.New(20260729, 1)
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(40)
		fanout := 1 + r.Intn(5)
		roots := 1 + r.Intn(n)
		tr := NewTree(n, fanout, roots)
		label := func(step int) string {
			return fmtLabel(trial, n, fanout, roots, step)
		}
		checkTreeInvariants(t, tr, label(-1))
		kills := r.Intn(n) // up to n-1 deaths
		alive := make([]int, n)
		for i := range alive {
			alive[i] = i
		}
		for step := 0; step < kills; step++ {
			v := r.Intn(len(alive))
			d := alive[v]
			alive = append(alive[:v], alive[v+1:]...)
			hadKids := len(tr.Children(d))
			wasRoot := tr.IsRoot(d)
			edges := tr.Fail(d)
			// Every previously live child must have been re-routed,
			// promotion included.
			if len(edges) != hadKids {
				t.Fatalf("%s: %d children but %d rerouted edges", label(step), hadKids, len(edges))
			}
			if wasRoot && hadKids > 0 && edges[0].NewParent != -1 {
				t.Fatalf("%s: dead root's first child not promoted: %v", label(step), edges)
			}
			if dest, ok := tr.DrainTarget(d); ok && !tr.Alive(dest) {
				t.Fatalf("%s: drain target %d of %d is dead", label(step), dest, d)
			}
			checkTreeInvariants(t, tr, label(step))
		}
	}
}

func fmtLabel(trial, n, fanout, roots, step int) string {
	return fmt.Sprintf("trial %d n=%d f=%d r=%d step=%d", trial, n, fanout, roots, step)
}
