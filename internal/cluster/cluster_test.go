package cluster

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/meta"
	"repro/internal/storage"
	"repro/internal/topology"
)

func TestTreeShape(t *testing.T) {
	cases := []struct{ n, fanout, roots int }{
		{1, 2, 1}, {2, 2, 1}, {7, 2, 1}, {16, 4, 1}, {16, 2, 4},
		{9, 3, 2}, {30, 5, 3}, {12, 1, 2}, {5, 2, 9},
	}
	for _, tc := range cases {
		tr := NewTree(tc.n, tc.fanout, tc.roots)
		wantRoots := tc.roots
		if wantRoots > tc.n {
			wantRoots = tc.n
		}
		roots := tr.Roots()
		if len(roots) != wantRoots {
			t.Fatalf("n=%d f=%d r=%d: %d roots, want %d", tc.n, tc.fanout, tc.roots, len(roots), wantRoots)
		}
		seen := map[int]bool{}
		// Walk down from every root; every node must be visited once.
		var walk func(i int)
		walk = func(i int) {
			if seen[i] {
				t.Fatalf("n=%d f=%d r=%d: node %d reached twice", tc.n, tc.fanout, tc.roots, i)
			}
			seen[i] = true
			for _, ch := range tr.Children(i) {
				if p, ok := tr.Parent(ch); !ok || p != i {
					t.Fatalf("child %d of %d has parent %d", ch, i, p)
				}
				walk(ch)
			}
		}
		for _, r := range roots {
			if !tr.IsRoot(r) || tr.RootOf(r) != r {
				t.Fatalf("root %d not a root of itself", r)
			}
			walk(r)
		}
		if len(seen) != tc.n {
			t.Fatalf("n=%d f=%d r=%d: reached %d nodes", tc.n, tc.fanout, tc.roots, len(seen))
		}
		for i := 0; i < tc.n; i++ {
			if len(tr.Children(i)) > tc.fanout && tc.fanout >= 1 {
				t.Fatalf("node %d has %d children > fanout %d", i, len(tr.Children(i)), tc.fanout)
			}
			if tr.IsLeaf(i) != (len(tr.Children(i)) == 0) {
				t.Fatalf("IsLeaf(%d) inconsistent", i)
			}
			root := tr.RootOf(i)
			if !tr.IsRoot(root) {
				t.Fatalf("RootOf(%d)=%d is not a root", i, root)
			}
		}
		if d := tr.Depth(); d < 1 || d > tc.n {
			t.Fatalf("depth %d out of range", d)
		}
	}
}

func TestTreeSingleNode(t *testing.T) {
	tr := NewTree(1, 4, 1)
	if !tr.IsRoot(0) || !tr.IsLeaf(0) || tr.Depth() != 1 {
		t.Fatal("degenerate tree wrong")
	}
}

func TestBatchCodecRoundTrip(t *testing.T) {
	b := &Batch{Iteration: 7, Blocks: []Block{
		{Node: 2, Source: 1, Variable: "theta", Data: []byte{1, 2, 3}},
		{Node: 0, Source: 0, Variable: "p", Data: nil},
		{Node: 2, Source: 0, Variable: "theta", Data: []byte{9}},
	}}
	enc := EncodeBatch(b)
	got, err := DecodeBatch(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iteration != 7 || len(got.Blocks) != 3 {
		t.Fatalf("decoded %+v", got)
	}
	// EncodeBatch normalizes: (0,0,p), (2,0,theta), (2,1,theta).
	if got.Blocks[0].Variable != "p" || got.Blocks[1].Source != 0 || got.Blocks[2].Source != 1 {
		t.Fatalf("normalization wrong: %+v", got.Blocks)
	}
	if !bytes.Equal(got.Blocks[2].Data, []byte{1, 2, 3}) {
		t.Fatal("payload corrupted")
	}
	if _, err := DecodeBatch(enc[:len(enc)-2]); err == nil {
		t.Fatal("truncated batch should error")
	}
	if _, err := DecodeBatch([]byte("not a batch")); err == nil {
		t.Fatal("bad magic should error")
	}
}

// testMeta is a small per-node configuration: one 64-element float64
// variable, a 1 MB segment.
func testMeta(t *testing.T) *meta.Config {
	t.Helper()
	cfg, err := meta.ParseString(`<simulation name="clustertest">
	  <architecture><dedicated cores="1"/><buffer size="1048576"/></architecture>
	  <data>
	    <parameter name="n" value="64"/>
	    <layout name="row" type="float64" dimensions="n"/>
	    <variable name="theta" layout="row"/>
	  </data>
	</simulation>`)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func testPlatform(nodes, coresPerNode int) topology.Platform {
	return topology.Platform{Name: "test", Nodes: nodes, CoresPerNode: coresPerNode}
}

// dataNames filters manifest objects out of a store listing.
func dataNames(names []string) []string {
	var out []string
	for _, n := range names {
		if !IsManifestName(n) {
			out = append(out, n)
		}
	}
	return out
}

func keys(m map[string][]byte) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// payload builds the unique 512-byte block for (node, source, it).
func payload(node, source, it int) []byte {
	p := make([]byte, 64*8)
	for i := range p {
		p[i] = byte(node*131 + source*31 + it*7 + i)
	}
	return p
}

// runWorkload drives every client of the cluster through iters
// iterations with unique payloads.
func runWorkload(t *testing.T, c *Cluster, clientsPerNode, iters int) {
	t.Helper()
	var wg sync.WaitGroup
	for n := 0; n < c.Nodes(); n++ {
		for s := 0; s < clientsPerNode; s++ {
			wg.Add(1)
			go func(n, s int) {
				defer wg.Done()
				cl := c.Client(n, s)
				for it := 0; it < iters; it++ {
					if err := cl.Write("theta", it, payload(n, s, it)); err != nil {
						t.Errorf("node %d src %d it %d: %v", n, s, it, err)
						return
					}
					cl.EndIteration(it)
				}
			}(n, s)
		}
	}
	wg.Wait()
}

func TestClusterFanInCorrectness(t *testing.T) {
	const nodes, clients, iters = 9, 2, 3
	store := storage.NewMemory(nil, 4, 1e9)
	c, err := New(Config{
		Platform: testPlatform(nodes, clients+1),
		Meta:     testMeta(t),
		Fanout:   2,
		Store:    store,
	})
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, c, clients, iters)
	c.WaitIteration(iters - 1)
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}

	names := dataNames(store.ObjectNames())
	if len(names) != iters {
		t.Fatalf("stored %d data objects, want %d (one per iteration): %v", len(names), iters, names)
	}
	for it := 0; it < iters; it++ {
		name := fmt.Sprintf("clustertest-root000-it%06d", it)
		obj, ok := store.Object(name)
		if !ok {
			t.Fatalf("missing object %s (have %v)", name, names)
		}
		b, err := DecodeBatch(obj)
		if err != nil {
			t.Fatal(err)
		}
		if b.Iteration != it {
			t.Fatalf("object %s holds iteration %d", name, b.Iteration)
		}
		if len(b.Blocks) != nodes*clients {
			t.Fatalf("iteration %d aggregated %d blocks, want %d", it, len(b.Blocks), nodes*clients)
		}
		seen := map[string]bool{}
		for _, blk := range b.Blocks {
			key := fmt.Sprintf("%d/%d/%s", blk.Node, blk.Source, blk.Variable)
			if seen[key] {
				t.Fatalf("iteration %d: duplicate block %s", it, key)
			}
			seen[key] = true
			if !bytes.Equal(blk.Data, payload(blk.Node, blk.Source, it)) {
				t.Fatalf("iteration %d: block %s payload corrupted in the tree", it, key)
			}
		}
	}

	st := c.Stats()
	if st.IterationsCompleted != iters {
		t.Errorf("IterationsCompleted = %d, want %d", st.IterationsCompleted, iters)
	}
	if st.ObjectsWritten != iters {
		t.Errorf("ObjectsWritten = %d, want %d", st.ObjectsWritten, iters)
	}
	if st.ManifestsWritten != iters {
		t.Errorf("ManifestsWritten = %d, want %d (one per data object)", st.ManifestsWritten, iters)
	}
	// 9 nodes, 1 root: every non-root forwards once per iteration.
	if want := (nodes - 1) * iters; st.BatchesForwarded != want {
		t.Errorf("BatchesForwarded = %d, want %d", st.BatchesForwarded, want)
	}
	if st.PartialIterations != 0 {
		t.Errorf("PartialIterations = %d, want 0", st.PartialIterations)
	}
	if st.BytesForwarded <= 0 {
		t.Error("no bytes forwarded through the tree")
	}
}

func TestClusterMultiRoot(t *testing.T) {
	const nodes, clients, iters, roots = 16, 1, 2, 4
	store := storage.NewMemory(nil, 4, 1e9)
	c, err := New(Config{
		Platform: testPlatform(nodes, clients+1),
		Meta:     testMeta(t),
		Fanout:   2,
		Roots:    roots,
		Store:    store,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.Tree().Roots()); got != roots {
		t.Fatalf("%d roots, want %d", got, roots)
	}
	runWorkload(t, c, clients, iters)
	c.WaitIteration(iters - 1)
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if n := len(dataNames(store.ObjectNames())); n != roots*iters {
		t.Fatalf("stored %d data objects, want %d", n, roots*iters)
	}
	// The union of the four subtree objects must cover every node
	// exactly once per iteration.
	for it := 0; it < iters; it++ {
		covered := map[int]bool{}
		for _, root := range c.Tree().Roots() {
			obj, ok := store.Object(fmt.Sprintf("clustertest-root%03d-it%06d", root, it))
			if !ok {
				t.Fatalf("missing object for root %d it %d", root, it)
			}
			b, err := DecodeBatch(obj)
			if err != nil {
				t.Fatal(err)
			}
			for _, blk := range b.Blocks {
				if covered[blk.Node] {
					t.Fatalf("node %d appears in two subtrees", blk.Node)
				}
				covered[blk.Node] = true
			}
		}
		if len(covered) != nodes {
			t.Fatalf("iteration %d covered %d nodes, want %d", it, len(covered), nodes)
		}
	}
}

// TestBackendSwapEquivalence: the same workload through the memory and
// the SDF backend must produce identical object names and bytes.
func TestBackendSwapEquivalence(t *testing.T) {
	const nodes, clients, iters = 6, 2, 2
	mem := storage.NewMemory(nil, 4, 1e9)
	sdfB, err := storage.NewSDF(nil, 4, 1e9, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	objects := func(store storage.ObjectStore) map[string][]byte {
		c, err := New(Config{
			Platform: testPlatform(nodes, clients+1),
			Meta:     testMeta(t),
			Fanout:   3,
			Store:    store,
		})
		if err != nil {
			t.Fatal(err)
		}
		runWorkload(t, c, clients, iters)
		if err := c.Shutdown(); err != nil {
			t.Fatal(err)
		}
		type reader interface {
			Object(string) ([]byte, bool)
			ObjectNames() []string
		}
		out := map[string][]byte{}
		for _, name := range store.(reader).ObjectNames() {
			data, ok := store.(reader).Object(name)
			if !ok {
				t.Fatalf("object %s vanished", name)
			}
			out[name] = data
		}
		return out
	}
	a, b := objects(mem), objects(sdfB)
	if len(a) != len(b) || len(dataNames(keys(a))) != iters {
		t.Fatalf("object counts differ: memory=%d sdf=%d", len(a), len(b))
	}
	for name, data := range a {
		other, ok := b[name]
		if !ok {
			t.Fatalf("sdf backend missing object %s", name)
		}
		if !bytes.Equal(data, other) {
			t.Fatalf("object %s differs between backends", name)
		}
	}
}

func TestClusterHooks(t *testing.T) {
	const nodes, clients, iters = 4, 1, 3
	var mu sync.Mutex
	perIter := map[int]int{} // iteration → blocks seen by the hook
	hook := HookFunc{HookName: "count", Fn: func(it int, b *Batch) error {
		mu.Lock()
		perIter[it] += len(b.Blocks)
		mu.Unlock()
		return nil
	}}
	c, err := New(Config{
		Platform: testPlatform(nodes, clients+1),
		Meta:     testMeta(t),
		Store:    storage.NewMemory(nil, 4, 1e9),
		Hooks:    []Hook{hook},
	})
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, c, clients, iters)
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if len(perIter) != iters {
		t.Fatalf("hook ran for %d iterations, want %d", len(perIter), iters)
	}
	for it, blocks := range perIter {
		if blocks != nodes*clients {
			t.Errorf("iteration %d: hook saw %d blocks, want %d", it, blocks, nodes*clients)
		}
	}
}

func TestClusterHookError(t *testing.T) {
	boom := HookFunc{HookName: "boom", Fn: func(int, *Batch) error {
		return fmt.Errorf("synthetic failure")
	}}
	c, err := New(Config{
		Platform: testPlatform(2, 2),
		Meta:     testMeta(t),
		Store:    storage.NewMemory(nil, 4, 1e9),
		Hooks:    []Hook{boom},
	})
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, c, 1, 1)
	if err := c.Shutdown(); err == nil {
		t.Fatal("hook error must surface from Shutdown")
	}
	if len(c.Errors()) == 0 {
		t.Fatal("Errors() empty after failing hook")
	}
	// A failing hook must not block the data path.
	if c.Stats().ObjectsWritten != 1 {
		t.Fatalf("ObjectsWritten = %d, want 1", c.Stats().ObjectsWritten)
	}
}

func TestClusterValidation(t *testing.T) {
	good := Config{
		Platform: testPlatform(2, 2),
		Meta:     testMeta(t),
		Store:    storage.NewMemory(nil, 4, 1e9),
	}
	bad := []func(Config) Config{
		func(c Config) Config { c.Platform.Nodes = 0; return c },
		func(c Config) Config { c.Meta = nil; return c },
		func(c Config) Config { c.Store = nil; return c },
		func(c Config) Config { c.Platform.CoresPerNode = 1; return c }, // no sim cores left
	}
	for i, mutate := range bad {
		if _, err := New(mutate(good)); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	c, err := New(good)
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, c, 1, 1)
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

// TestClusterDeterministicObjects: two identical runs produce
// byte-identical root objects (normalization makes arrival order
// irrelevant).
func TestClusterDeterministicObjects(t *testing.T) {
	run := func() map[string][]byte {
		store := storage.NewMemory(nil, 4, 1e9)
		c, err := New(Config{
			Platform: testPlatform(8, 3),
			Meta:     testMeta(t),
			Fanout:   2,
			Roots:    2,
			Store:    store,
		})
		if err != nil {
			t.Fatal(err)
		}
		runWorkload(t, c, 2, 2)
		if err := c.Shutdown(); err != nil {
			t.Fatal(err)
		}
		out := map[string][]byte{}
		names := store.ObjectNames()
		sort.Strings(names)
		for _, n := range names {
			d, _ := store.Object(n)
			out[n] = d
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs stored %d vs %d objects", len(a), len(b))
	}
	for name, data := range a {
		if !bytes.Equal(data, b[name]) {
			t.Fatalf("object %s not deterministic", name)
		}
	}
}
