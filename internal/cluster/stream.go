package cluster

import (
	"fmt"
	"sync"

	"repro/internal/compress"
	"repro/internal/insitu"
	"repro/internal/storage"
)

// NewStreamingHook adapts a storage.Stream into a cluster Hook: every
// merged iteration batch a tree root completes is published live —
// before (and regardless of) the root's store write, so in-situ
// consumers see an iteration while it is still being written to the
// backend. The batch is re-encoded into a fresh buffer (hooks may not
// keep pooled payloads), so publishing costs one payload copy per root
// per iteration — and only while someone is subscribed. Slow consumers
// are the subscribers' problem, per their own SlowPolicy: under the
// default drop-oldest the hook never blocks the write path.
func NewStreamingHook(s *storage.Stream) Hook {
	return HookFunc{
		HookName: "streaming",
		Fn: func(it int, b *Batch) error {
			if !s.HasSubscribers() {
				return nil
			}
			name := fmt.Sprintf("stream-it%06d", it)
			s.Publish(name, EncodeBatch(b))
			return nil
		},
	}
}

// ConsumerResult is one analyzed variable of one streamed batch.
type ConsumerResult struct {
	// Seq is the stream sequence number of the batch the result came
	// from (gaps = batches this consumer's policy dropped).
	Seq uint64
	// Result is the insitu kernel output; Result.Iteration and
	// Result.Field identify what was analyzed.
	Result insitu.Result
}

// StreamConsumer drains a subscription and runs an insitu.Pipeline on
// every batch it receives — the live (Damaris-style asynchronous)
// coupling of the paper's §V visualization story. Each batch's blocks
// are grouped by variable, concatenated in the batch's normalized
// block order and reinterpreted as a flat float64 field, so the
// analysis sees each variable's full subtree footprint per iteration.
type StreamConsumer struct {
	sub  *storage.Subscription
	pipe insitu.Pipeline

	mu      sync.Mutex
	results []ConsumerResult
	frames  int
}

// NewStreamConsumer builds a consumer over an existing subscription.
func NewStreamConsumer(sub *storage.Subscription, pipe insitu.Pipeline) *StreamConsumer {
	return &StreamConsumer{sub: sub, pipe: pipe}
}

// Run receives and analyzes until the stream reaches a terminal state.
// It returns nil after a clean close (storage.ErrStreamClosed drained)
// and storage.ErrSlowConsumer if the consumer was detached for holding
// a Block-policy publisher past its timeout. Callers typically run it
// on its own goroutine, concurrent with the cluster writing.
func (sc *StreamConsumer) Run() error {
	for {
		msg, err := sc.sub.Recv()
		if err != nil {
			if err == storage.ErrStreamClosed {
				return nil
			}
			return err
		}
		if aerr := sc.analyze(msg); aerr != nil {
			return fmt.Errorf("cluster: stream consumer on %s: %w", msg.Name, aerr)
		}
	}
}

// analyze decodes one streamed batch and runs the pipeline per variable.
func (sc *StreamConsumer) analyze(msg storage.StreamMsg) error {
	b, err := DecodeBatch(msg.Data)
	if err != nil {
		return err
	}
	// Blocks arrive normalized (node, source, variable); group payloads
	// per variable preserving that order so reruns are deterministic.
	order := make([]string, 0, 4)
	byVar := map[string][]byte{}
	for _, blk := range b.Blocks {
		if _, seen := byVar[blk.Variable]; !seen {
			order = append(order, blk.Variable)
		}
		byVar[blk.Variable] = append(byVar[blk.Variable], blk.Data...)
	}
	for _, v := range order {
		vals := compress.BytesFloat64(byVar[v])
		if len(vals) == 0 {
			continue
		}
		f := insitu.Field{Name: v, NZ: 1, NY: 1, NX: len(vals), Data: vals}
		res, err := sc.pipe.Analyze(f, b.Iteration)
		if err != nil {
			return err
		}
		sc.mu.Lock()
		sc.results = append(sc.results, ConsumerResult{Seq: msg.Seq, Result: res})
		sc.mu.Unlock()
	}
	sc.mu.Lock()
	sc.frames++
	sc.mu.Unlock()
	return nil
}

// Results returns a snapshot of everything analyzed so far.
func (sc *StreamConsumer) Results() []ConsumerResult {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	out := make([]ConsumerResult, len(sc.results))
	copy(out, sc.results)
	return out
}

// Frames returns how many batches were analyzed so far.
func (sc *StreamConsumer) Frames() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.frames
}
