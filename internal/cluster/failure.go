package cluster

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rng"
)

// FailureSchedule declares which nodes die and when: node id × first
// iteration the node no longer serves. A node with entry (d, k)
// processes iterations < k normally and is killed the moment its
// dedicated core sees iteration k (its own iteration-k blocks are the
// "mid-iteration" loss). A nil or empty schedule injects nothing.
type FailureSchedule struct {
	at map[int]int
}

// NewFailureSchedule returns an empty schedule.
func NewFailureSchedule() *FailureSchedule {
	return &FailureSchedule{at: map[int]int{}}
}

// Add schedules node to die at iteration (clamped to 0) and returns the
// schedule for chaining. Adding a node twice keeps the earlier death.
func (s *FailureSchedule) Add(node, iteration int) *FailureSchedule {
	if iteration < 0 {
		iteration = 0
	}
	if s.at == nil {
		s.at = map[int]int{}
	}
	if prev, ok := s.at[node]; !ok || iteration < prev {
		s.at[node] = iteration
	}
	return s
}

// At returns the death iteration of node, ok=false when the node never
// dies. Safe on a nil schedule.
func (s *FailureSchedule) At(node int) (iteration int, ok bool) {
	if s == nil {
		return 0, false
	}
	iteration, ok = s.at[node]
	return iteration, ok
}

// Len returns the number of scheduled deaths. Safe on a nil schedule.
func (s *FailureSchedule) Len() int {
	if s == nil {
		return 0
	}
	return len(s.at)
}

// Empty reports whether the schedule injects nothing. Safe on nil.
func (s *FailureSchedule) Empty() bool { return s.Len() == 0 }

// Nodes returns the scheduled node ids, ascending. Safe on nil.
func (s *FailureSchedule) Nodes() []int {
	if s == nil {
		return nil
	}
	nodes := make([]int, 0, len(s.at))
	for n := range s.at {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	return nodes
}

// String renders the schedule as "node@iter" pairs, ascending by node.
func (s *FailureSchedule) String() string {
	if s.Empty() {
		return "none"
	}
	parts := make([]string, 0, s.Len())
	for _, n := range s.Nodes() {
		it, _ := s.At(n)
		parts = append(parts, fmt.Sprintf("%d@%d", n, it))
	}
	return strings.Join(parts, ",")
}

// RandomFailures builds a schedule from a seeded random process: each
// of the n nodes dies independently with probability rate, at an
// iteration drawn uniformly from [0, iterations). The same (n,
// iterations, rate, seed) always produces the same schedule, so sweeps
// over failure rates are reproducible.
func RandomFailures(n, iterations int, rate float64, seed uint64) *FailureSchedule {
	s := NewFailureSchedule()
	if n <= 0 || iterations <= 0 || rate <= 0 {
		return s
	}
	r := rng.New(seed, 0xFA17)
	for node := 0; node < n; node++ {
		if r.Float64() < rate {
			s.Add(node, r.Intn(iterations))
		}
	}
	return s
}
