package cluster

import (
	"fmt"
	"sort"
)

// treeEpoch binds one aggregation topology to the iteration range it
// routes: from fromIter until the next epoch's fromIter. Failures
// mutate every epoch's overlay (the corpse is dead in all of them);
// re-formation only ever appends epochs.
type treeEpoch struct {
	fromIter int
	tree     Tree
}

// curTree returns the current (latest) epoch's tree. Callers hold c.mu.
func (c *Cluster) curTree() *Tree { return &c.epochs[len(c.epochs)-1].tree }

// epochIndexFor returns the index of the epoch routing iteration it.
// Callers hold c.mu.
func (c *Cluster) epochIndexFor(it int) int {
	for i := len(c.epochs) - 1; i > 0; i-- {
		if c.epochs[i].fromIter <= it {
			return i
		}
	}
	return 0
}

// treeFor returns the tree routing iteration it. Callers hold c.mu.
func (c *Cluster) treeFor(it int) *Tree {
	return &c.epochs[c.epochIndexFor(it)].tree
}

// noteRouted records that a routing decision was made for iteration it,
// fencing future re-formations past it. Callers hold c.mu.
func (c *Cluster) noteRouted(it int) {
	if it > c.maxRouted {
		c.maxRouted = it
	}
}

// parentsUnion returns the distinct parents of node across all epochs,
// ascending. Callers hold c.mu.
func (c *Cluster) parentsUnion(node int) []int {
	seen := map[int]bool{}
	for i := range c.epochs {
		if p, ok := c.epochs[i].tree.Parent(node); ok {
			seen[p] = true
		}
	}
	return sortedCovers(seen)
}

// childrenUnion returns the distinct live children of node across all
// epochs, ascending. Callers hold c.mu.
func (c *Cluster) childrenUnion(node int) []int {
	seen := map[int]bool{}
	for i := range c.epochs {
		for _, k := range c.epochs[i].tree.Children(node) {
			seen[k] = true
		}
	}
	return sortedCovers(seen)
}

// Reform re-forms the aggregation forest mid-run with a new fanout and
// root count, returning the first iteration the new topology routes.
// Iterations below that fence keep flowing through their original
// epoch — parent edges, coverage requirements, root sets and broker
// windows included — so no in-flight mailbox entry is stranded or
// double-stored; acknowledged data is never lost to a re-formation.
// Nodes already killed by the failure schedule stay dead in the new
// epoch. Safe to call concurrently with client writes; it composes
// with failure re-routing and streaming hooks (the stream hub's
// sequence numbers are cluster-wide and simply continue).
func (c *Cluster) Reform(fanout, roots int) (fromIter int, err error) {
	if fanout < 2 {
		return 0, fmt.Errorf("cluster: Reform fanout %d < 2", fanout)
	}
	if roots < 1 {
		return 0, fmt.Errorf("cluster: Reform roots %d < 1", roots)
	}
	c.mu.Lock()
	nt := NewTree(len(c.nodes), fanout, roots)
	var dead []int
	for d, f := range c.failed {
		if f {
			dead = append(dead, d)
		}
	}
	sort.Ints(dead)
	for _, d := range dead {
		nt.Fail(d)
	}
	if len(nt.Roots()) == 0 {
		c.mu.Unlock()
		return 0, fmt.Errorf("cluster: Reform with every node dead")
	}
	fromIter = c.maxRouted + 1
	last := &c.epochs[len(c.epochs)-1]
	if last.fromIter >= fromIter {
		// The previous epoch never routed anything: replace it in place
		// rather than stacking unused epochs.
		fromIter = last.fromIter
		last.tree = nt
	} else {
		c.epochs = append(c.epochs, treeEpoch{fromIter: fromIter, tree: nt})
	}
	c.failEpoch++
	c.stats.TreeReforms++
	// Wake every live aggregator: an iteration already pending under
	// the new epoch may satisfy its (possibly smaller) new coverage
	// requirement immediately.
	for i, a := range c.aggs {
		if !c.failed[i] && !c.exited[i] {
			a.post(aggMsg{poke: true})
		}
	}
	c.mu.Unlock()
	c.cc.Logger.Printf("cluster: re-formed tree from iteration %d (fanout %d, %d roots)",
		fromIter, fanout, roots)
	return fromIter, nil
}

// Epochs reports how many topology epochs the run has accumulated
// (1 before any Reform).
func (c *Cluster) Epochs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.epochs)
}

// RecommendTopology picks an aggregation forest shape — fanout and
// root count — from observed bandwidths: nodeBytes is one node's
// output per iteration, nicBW the observed per-hop interconnect
// bandwidth, streamBW the observed bandwidth of one root's PFS stripe
// stream, and targets the number of storage targets (OSTs). It
// balances the two costs the dedicated-core design trades between:
//
//   - store-and-forward volume up the tree — a slow NIC wants a
//     flatter forest (more roots, smaller subtrees);
//   - stream concurrency on the file system — a slow or contended PFS
//     wants fewer, larger sequential streams per the paper's §IV.
//
// The model mirrors the DES cost faces (serialization per hop, stripe
// windows per root, sequential-efficiency loss once streams share a
// target) closely enough to rank candidates; the experiment E11 checks
// the ranking against the simulated outcome.
func RecommendTopology(nodes int, nodeBytes, nicBW, streamBW float64, targets int) (fanout, roots int) {
	if nodes <= 1 {
		return 2, 1
	}
	if nicBW <= 0 {
		nicBW = 1
	}
	if streamBW <= 0 {
		streamBW = 1
	}
	if targets < 1 {
		targets = 1
	}
	best := -1.0
	fanout, roots = 2, 1
	for r := 1; r <= nodes; r *= 2 {
		sub := (nodes + r - 1) / r
		stripes := adaptStripes(targets, r)
		// Per-root write time: the subtree's bytes over the root's
		// stripe window, derated once the forest's streams outnumber
		// the targets (sequential efficiency loss per shared OST).
		streams := r * stripes
		eff := 1.0
		if streams > targets {
			perOST := float64(streams) / float64(targets)
			eff = 1 / perOST / (1 + 0.3*(perOST-1))
		}
		pfsT := float64(sub) * nodeBytes / (float64(stripes) * streamBW * eff)
		for _, f := range []int{2, 3, 4, 8} {
			if f >= sub && f > 2 {
				break
			}
			total := aggChainTime(sub, f, nodeBytes, nicBW) + pfsT
			if best < 0 || total < best {
				best = total
				fanout, roots = f, r
			}
		}
	}
	return fanout, roots
}

// aggChainTime is the critical-path store-and-forward time for one
// subtree of s nodes with the given fanout: each level serializes its
// subtree's bytes over one NIC before the level above can forward.
func aggChainTime(s, fanout int, nodeBytes, nicBW float64) float64 {
	t := 0.0
	for s > 1 {
		child := (s - 1 + fanout - 1) / fanout
		t += float64(child) * nodeBytes / nicBW
		s = child
	}
	return t
}

// adaptStripes mirrors the DES face's per-root stripe window sizing:
// divide the targets across the roots, clamped to [8, 64] and to the
// target count itself.
func adaptStripes(targets, roots int) int {
	s := targets / (2 * roots)
	if s < 8 {
		s = 8
	}
	if s > 64 {
		s = 64
	}
	if s > targets {
		s = targets
	}
	if s < 1 {
		s = 1
	}
	return s
}
