package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/des"
	"repro/internal/rng"
	"repro/internal/storage"
	"repro/internal/topology"
)

func TestManifestCodecRoundTrip(t *testing.T) {
	b := &Batch{Iteration: 3, Blocks: []Block{
		{Node: 0, Source: 1, Variable: "theta", Data: []byte{1, 2}},
		{Node: 2, Source: 0, Variable: "p", Data: nil},
	}}
	m := newManifest("job", 4, "job-root004-it000003", b, []int{0, 2, 5}, true)
	got, err := DecodeManifest(EncodeManifest(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Job != "job" || got.Root != 4 || got.Iteration != 3 || !got.Partial {
		t.Fatalf("decoded %+v", got)
	}
	if len(got.Covers) != 3 || len(got.Blocks) != 2 {
		t.Fatalf("covers/blocks wrong: %+v", got)
	}
	if got.Blocks[0].Variable != "theta" || got.Blocks[0].Bytes != 2 {
		t.Fatalf("block index wrong: %+v", got.Blocks)
	}
	if got.Name() != "job-root004-it000003-manifest" {
		t.Fatalf("Name = %q", got.Name())
	}
	if !IsManifestName(got.Name()) || IsManifestName(got.Object) {
		t.Fatal("IsManifestName wrong")
	}
	if _, err := DecodeManifest([]byte(`{"format":"other"}`)); err == nil {
		t.Fatal("wrong format accepted")
	}
	if _, err := DecodeManifest([]byte("not json")); err == nil {
		t.Fatal("non-JSON accepted")
	}
}

// runRestoreWorkload runs a small cluster against store and returns its
// final stats.
func runRestoreWorkload(t *testing.T, store storage.ObjectStore, nodes, clients, iters int, sched *FailureSchedule) Stats {
	t.Helper()
	c, err := New(Config{
		Platform: testPlatform(nodes, clients+1),
		Meta:     testMeta(t),
		Fanout:   2,
		Store:    store,
		Failures: sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, c, clients, iters)
	c.WaitIteration(iters - 1)
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	return c.Stats()
}

// TestRestoreRoundTrip: a run without failures restores 100% of its
// blocks, byte-identical, and every iteration is a complete checkpoint.
func TestRestoreRoundTrip(t *testing.T) {
	const nodes, clients, iters = 9, 2, 3
	store := storage.NewMemory(nil, 4, 1e9)
	runRestoreWorkload(t, store, nodes, clients, iters, nil)

	r, err := Restore(store, "clustertest")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Problems) != 0 {
		t.Fatalf("restore problems: %v", r.Problems)
	}
	if r.Manifests != iters {
		t.Fatalf("Manifests = %d, want %d", r.Manifests, iters)
	}
	if got := r.TotalBlocks(); got != nodes*clients*iters {
		t.Fatalf("TotalBlocks = %d, want %d", got, nodes*clients*iters)
	}
	if it, ok := r.LatestComplete(nodes); !ok || it != iters-1 {
		t.Fatalf("LatestComplete = %d, %v; want %d", it, ok, iters-1)
	}
	for it, frac := range r.Completeness(nodes) {
		if frac != 1 {
			t.Fatalf("Completeness[%d] = %v, want 1", it, frac)
		}
	}
	for _, it := range r.IterationNumbers() {
		state := r.NodeBlocks(it)
		if len(state) != nodes {
			t.Fatalf("iteration %d: state covers %d nodes", it, len(state))
		}
		for n, blocks := range state {
			if len(blocks) != clients {
				t.Fatalf("iteration %d node %d: %d blocks", it, n, len(blocks))
			}
			for _, blk := range blocks {
				if !bytes.Equal(blk.Data, payload(blk.Node, blk.Source, it)) {
					t.Fatalf("iteration %d: node %d payload corrupted on the read path", it, n)
				}
			}
		}
	}
	// Replay visits iterations ascending with normalized batches, like
	// a live hook would have seen them.
	var visited []int
	err = r.Replay(func(it int, b *Batch) error {
		visited = append(visited, it)
		if len(b.Blocks) != nodes*clients {
			t.Fatalf("replay iteration %d: %d blocks", it, len(b.Blocks))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(visited) != iters {
		t.Fatalf("replay visited %v", visited)
	}
	for i, it := range visited {
		if it != i {
			t.Fatalf("replay order %v", visited)
		}
	}
}

// TestRestoreAfterFailure: the restore recovers exactly the blocks the
// failure did not lose, and the latest complete checkpoint is the last
// iteration before the death.
func TestRestoreAfterFailure(t *testing.T) {
	const nodes, clients, iters, failAt = 9, 2, 4, 2
	store := storage.NewMemory(nil, 4, 1e9)
	st := runRestoreWorkload(t, store, nodes, clients, iters,
		NewFailureSchedule().Add(1, failAt))
	if st.BlocksLost == 0 {
		t.Fatal("test needs actual loss")
	}

	r, err := Restore(store, "clustertest")
	if err != nil {
		t.Fatal(err)
	}
	produced := nodes * clients * iters
	if got, want := r.TotalBlocks(), produced-st.BlocksLost; got != want {
		t.Fatalf("recovered %d blocks, want exactly the non-lost %d (produced %d, lost %d)",
			got, want, produced, st.BlocksLost)
	}
	if it, ok := r.LatestComplete(nodes); !ok || it != failAt-1 {
		t.Fatalf("LatestComplete = %d, %v; want %d (last pre-death checkpoint)", it, ok, failAt-1)
	}
	for it, ri := range r.Iterations {
		wantComplete := it < failAt
		if ri.Complete(nodes) != wantComplete {
			t.Fatalf("iteration %d: Complete = %v, want %v", it, ri.Complete(nodes), wantComplete)
		}
		for _, blk := range ri.Blocks {
			if it >= failAt && blk.Node == 1 {
				t.Fatalf("iteration %d: dead node's block restored", it)
			}
		}
	}
	// The restore's view of coverage must agree with the run's stats.
	restored := r.Completeness(nodes)
	for it, frac := range st.Completeness {
		if restored[it] != frac {
			t.Fatalf("Completeness[%d]: restore %v vs run %v", it, restored[it], frac)
		}
	}
}

// TestRestoreFromSDFDirectory: restore must work in a fresh process —
// a new SDF backend over a directory an earlier backend wrote.
func TestRestoreFromSDFDirectory(t *testing.T) {
	const nodes, clients, iters = 5, 1, 2
	dir := t.TempDir()
	writer, err := storage.NewSDF(nil, 4, 1e9, dir)
	if err != nil {
		t.Fatal(err)
	}
	runRestoreWorkload(t, writer, nodes, clients, iters, nil)

	// A fresh backend has no in-memory owner map: List and Get must
	// recover names from the files themselves.
	reader, err := storage.NewSDF(nil, 4, 1e9, dir)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Restore(reader, "clustertest")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Problems) != 0 {
		t.Fatalf("restore problems: %v", r.Problems)
	}
	if got := r.TotalBlocks(); got != nodes*clients*iters {
		t.Fatalf("TotalBlocks = %d, want %d", got, nodes*clients*iters)
	}
	if it, ok := r.LatestComplete(nodes); !ok || it != iters-1 {
		t.Fatalf("LatestComplete = %d, %v", it, ok)
	}
}

// TestRestorePFSNothingRecoverable: the pure DES model retains no
// payloads at all — not even the manifests — so a restore comes back
// empty with one problem per unreadable manifest, instead of failing.
func TestRestorePFSNothingRecoverable(t *testing.T) {
	const nodes, clients, iters = 4, 1, 2
	plat := topology.Kraken(1)
	store := storage.NewPFS(des.NewEngine(), plat.PFS, rng.New(7, 1))
	st := runRestoreWorkload(t, store, nodes, clients, iters, nil)
	if st.ManifestsWritten != iters {
		t.Fatalf("ManifestsWritten = %d, want %d (accounted even on pfs)",
			st.ManifestsWritten, iters)
	}

	r, err := Restore(store, "clustertest")
	if err != nil {
		t.Fatal(err)
	}
	if r.Manifests != 0 || len(r.Iterations) != 0 || r.TotalBlocks() != 0 {
		t.Fatalf("recovered something from a payload-free model: %+v", r)
	}
	if _, ok := r.LatestComplete(nodes); ok {
		t.Fatal("no checkpoint is complete without payloads")
	}
	// Every manifest the run stored is visible in the listing but not
	// readable; each one must surface as a problem, not be dropped
	// silently.
	if len(r.Problems) != iters {
		t.Fatalf("%d problems, want %d: %v", len(r.Problems), iters, r.Problems)
	}
}

// TestRestoreMissingDataObject: a manifest whose data object vanished
// marks the iteration PayloadMissing but keeps the manifest's coverage
// view.
func TestRestoreMissingDataObject(t *testing.T) {
	const nodes, clients, iters = 4, 1, 2
	store := storage.NewMemory(nil, 4, 1e9)
	runRestoreWorkload(t, store, nodes, clients, iters, nil)

	// Simulate bit-rot: replace iteration 1's data object with garbage
	// on a second store holding the same manifests.
	corrupted := storage.NewMemory(nil, 4, 1e9)
	names, _ := store.List("")
	for _, n := range names {
		d, err := store.Get(n)
		if err != nil {
			t.Fatal(err)
		}
		if n == "clustertest-root000-it000001" {
			d = []byte("rotten")
		}
		if err := corrupted.Put(n, d); err != nil {
			t.Fatal(err)
		}
	}
	r, err := Restore(corrupted, "clustertest")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Problems) != 1 {
		t.Fatalf("problems = %v, want exactly the corrupted object", r.Problems)
	}
	ri := r.Iterations[1]
	if ri == nil || !ri.PayloadMissing || len(ri.Covers) != nodes {
		t.Fatalf("corrupted iteration state wrong: %+v", ri)
	}
	if it, ok := r.LatestComplete(nodes); !ok || it != 0 {
		t.Fatalf("LatestComplete = %d, %v; want 0 (iteration 1 unreadable)", it, ok)
	}
	if r.Iterations[0].PayloadMissing || len(r.Iterations[0].Blocks) != nodes*clients {
		t.Fatal("healthy iteration damaged by the corrupted one")
	}
}

// TestRestoreJobIsolation: a job whose name extends the requested one
// shares the prefix but must not leak into the restore.
func TestRestoreJobIsolation(t *testing.T) {
	store := storage.NewMemory(nil, 4, 1e9)
	put := func(job string, it int, node byte) {
		b := &Batch{Iteration: it, Blocks: []Block{
			{Node: int(node), Source: 0, Variable: "theta", Data: []byte{node}},
		}}
		name := fmt.Sprintf("%s-root000-it%06d", job, it)
		if err := store.Put(name, EncodeBatch(b)); err != nil {
			t.Fatal(err)
		}
		m := newManifest(job, 0, name, b, []int{int(node)}, false)
		if err := store.Put(m.Name(), EncodeManifest(m)); err != nil {
			t.Fatal(err)
		}
	}
	put("exp", 0, 1)
	put("exp-v2", 0, 2) // same iteration, different job, shares the prefix

	r, err := Restore(store, "exp")
	if err != nil {
		t.Fatal(err)
	}
	if r.Manifests != 1 || r.TotalBlocks() != 1 {
		t.Fatalf("restore leaked across jobs: %d manifests, %d blocks", r.Manifests, r.TotalBlocks())
	}
	if blocks := r.NodeBlocks(0); len(blocks[1]) != 1 || len(blocks[2]) != 0 {
		t.Fatalf("wrong job's blocks restored: %v", blocks)
	}
	// The extended job restores independently.
	r2, err := Restore(store, "exp-v2")
	if err != nil {
		t.Fatal(err)
	}
	if r2.Manifests != 1 || len(r2.NodeBlocks(0)[2]) != 1 {
		t.Fatalf("extended job broken: %d manifests", r2.Manifests)
	}
}

// TestRestoreDisabledManifests: with manifests off there is nothing to
// navigate by — the restore comes back empty, not broken.
func TestRestoreDisabledManifests(t *testing.T) {
	store := storage.NewMemory(nil, 4, 1e9)
	c, err := New(Config{
		Platform:         testPlatform(2, 2),
		Meta:             testMeta(t),
		Store:            store,
		DisableManifests: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, c, 1, 1)
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.ManifestsWritten != 0 {
		t.Fatalf("ManifestsWritten = %d with manifests disabled", st.ManifestsWritten)
	}
	r, err := Restore(store, "clustertest")
	if err != nil {
		t.Fatal(err)
	}
	if r.Manifests != 0 || len(r.Iterations) != 0 {
		t.Fatalf("restored %d manifests, %d iterations", r.Manifests, len(r.Iterations))
	}
}

// TestRestoreCompressedStore: a run written through the compression
// pipeline restores exactly like a plain one — byte-identical blocks,
// complete checkpoints — and the manifests record the codec story
// (name plus raw/encoded sizes) for every data object.
func TestRestoreCompressedStore(t *testing.T) {
	const nodes, clients, iters = 9, 2, 3
	for _, codec := range []string{"flate", storage.AdaptiveCodec} {
		t.Run(codec, func(t *testing.T) {
			inner := storage.NewMemory(nil, 4, 1e9)
			store := storage.NewCompressing(inner, storage.CompressionOptions{Codec: codec})
			runRestoreWorkload(t, store, nodes, clients, iters, nil)

			r, err := Restore(store, "clustertest")
			if err != nil {
				t.Fatal(err)
			}
			if len(r.Problems) != 0 {
				t.Fatalf("problems restoring a healthy compressed store: %v", r.Problems)
			}
			if got, want := r.TotalBlocks(), nodes*clients*iters; got != want {
				t.Fatalf("recovered %d blocks, want %d", got, want)
			}
			for it := 0; it < iters; it++ {
				ri := r.Iterations[it]
				if ri == nil || !ri.Complete(nodes) {
					t.Fatalf("iteration %d not a complete checkpoint: %+v", it, ri)
				}
				for _, blk := range ri.Blocks {
					if !bytes.Equal(blk.Data, payload(blk.Node, blk.Source, it)) {
						t.Fatalf("iteration %d block (%d,%d) differs after compressed round trip",
							it, blk.Node, blk.Source)
					}
				}
			}

			// Every manifest must carry the data object's codec info.
			names, err := store.List("clustertest-")
			if err != nil {
				t.Fatal(err)
			}
			manifests := 0
			for _, name := range names {
				if !IsManifestName(name) {
					continue
				}
				manifests++
				data, err := store.Get(name)
				if err != nil {
					t.Fatal(err)
				}
				m, err := DecodeManifest(data)
				if err != nil {
					t.Fatal(err)
				}
				if m.Codec == "" || m.RawBytes <= 0 || m.EncodedBytes <= 0 {
					t.Fatalf("manifest %s misses codec info: %+v", name, m)
				}
				info, ok := store.ObjectCodec(m.Object)
				if !ok || info.Codec != m.Codec || info.RawBytes != m.RawBytes ||
					info.EncodedBytes != m.EncodedBytes {
					t.Fatalf("manifest %s codec info %+v disagrees with store %+v", name, m, info)
				}
			}
			if manifests == 0 {
				t.Fatal("no manifests found")
			}

			// A fresh reader over the same (inner) store — knowing nothing
			// about how it was written — restores identically through a
			// default decompressing wrapper.
			fresh, err := Restore(storage.NewCompressing(inner, storage.CompressionOptions{}), "clustertest")
			if err != nil {
				t.Fatal(err)
			}
			if fresh.TotalBlocks() != r.TotalBlocks() || len(fresh.Problems) != 0 {
				t.Fatalf("fresh reader recovered %d blocks (%v), want %d",
					fresh.TotalBlocks(), fresh.Problems, r.TotalBlocks())
			}
		})
	}
}

// TestRestoreCorruptFramedObject: a framed data object damaged at rest
// is reported the same way a missing one is — a problem plus
// PayloadMissing — instead of aborting or panicking.
func TestRestoreCorruptFramedObject(t *testing.T) {
	const nodes, clients, iters = 4, 1, 2
	inner := storage.NewMemory(nil, 4, 1e9)
	store := storage.NewCompressing(inner, storage.CompressionOptions{Codec: "flate"})
	runRestoreWorkload(t, store, nodes, clients, iters, nil)

	names, err := store.List("clustertest-")
	if err != nil {
		t.Fatal(err)
	}
	var victim string
	for _, name := range names {
		if !IsManifestName(name) {
			victim = name
			break
		}
	}
	if victim == "" {
		t.Fatal("no data object found")
	}
	raw, err := inner.Get(victim)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := inner.Put(victim, raw); err != nil {
		t.Fatal(err)
	}

	r, err := Restore(store, "clustertest")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Problems) == 0 {
		t.Fatal("corrupt framed object produced no problem report")
	}
	found := false
	for _, p := range r.Problems {
		if errors.Is(p, storage.ErrCorruptFrame) {
			found = true
		}
	}
	if !found {
		t.Fatalf("problems %v do not wrap ErrCorruptFrame", r.Problems)
	}
	damaged := 0
	for _, ri := range r.Iterations {
		if ri.PayloadMissing {
			damaged++
		}
	}
	if damaged == 0 {
		t.Fatal("no iteration marked PayloadMissing after corruption")
	}
}
