package cluster

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/buf"
	"repro/internal/meta"
	"repro/internal/storage"
	"repro/internal/topology"
)

const serviceTestMeta = `<simulation name="svc">
  <architecture><dedicated cores="1"/><buffer size="1048576"/></architecture>
  <data>
    <parameter name="n" value="16"/>
    <layout name="row" type="float64" dimensions="n"/>
    <variable name="theta" layout="row"/>
  </data>
</simulation>`

func serviceMeta(t *testing.T) *meta.Config {
	t.Helper()
	cfg, err := meta.ParseString(serviceTestMeta)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// driveTenant pushes iterations [0, iters) through every client of a
// tenant's cluster and waits for the last one to complete.
func driveTenant(t *testing.T, tn *Tenant, iters int) {
	t.Helper()
	c := tn.Cluster()
	if c == nil {
		t.Fatalf("tenant %d has no cluster (state %s)", tn.ID(), tn.State())
	}
	driveBrokerCluster(t, c, c.Nodes(), c.ClientsPerNode(), 0, iters)
	c.WaitIteration(iters - 1)
}

// TestServiceTwoTenantsSharedBrokerNoLeaks is the runtime-face
// acceptance test: two concurrent tenants on one shared (sharded)
// broker complete with zero cross-tenant token leaks — every grant is
// reclaimed, each tenant's Stats carve out exactly its own holder
// span, and the per-tenant slices sum to the ServiceStats rollup and
// to the broker's own grant total.
func TestServiceTwoTenantsSharedBrokerNoLeaks(t *testing.T) {
	const (
		iters       = 3
		rootsPerTen = 2
	)
	broker := storage.NewShardedBroker(storage.BrokerOptions{
		Policy:  storage.PolicyFairShare,
		Targets: 2, // both tenants' root windows collide: real cross-tenant contention
	}, 2)
	svc, err := NewService(ClusterConfig{
		Platform: topology.Platform{Name: "svc", Nodes: 4, CoresPerNode: 3},
		Roots:    rootsPerTen,
		Store:    storage.NewMemory(nil, 4, 1e9),
		Broker:   broker,
	}, ServiceOptions{})
	if err != nil {
		t.Fatal(err)
	}

	var tenants [2]*Tenant
	for i := range tenants {
		tn, err := svc.Submit(RunSpec{
			Meta:    serviceMeta(t),
			JobName: []string{"alpha", "beta"}[i],
			Quota:   Quota{Nodes: 2},
			Weight:  float64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		if tn.State() != TenantRunning {
			t.Fatalf("tenant %d not admitted: %s", tn.ID(), tn.State())
		}
		tenants[i] = tn
	}

	var wg sync.WaitGroup
	for _, tn := range tenants {
		wg.Add(1)
		go func(tn *Tenant) {
			defer wg.Done()
			driveTenant(t, tn, iters)
			if err := tn.Finish(); err != nil {
				t.Errorf("tenant %d finish: %v", tn.ID(), err)
			}
		}(tn)
	}
	wg.Wait()

	if got := broker.Outstanding(); got != 0 {
		t.Fatalf("%d tokens leaked across tenants", got)
	}
	ss := svc.Stats()
	if ss.Completed != 2 || ss.Running != 0 {
		t.Fatalf("completed %d running %d, want 2/0", ss.Completed, ss.Running)
	}
	wantGrants := iters * rootsPerTen
	sumGrants, sumObjects := 0, 0
	for id, st := range ss.PerTenant {
		if st.TokenGrants != wantGrants {
			t.Errorf("tenant %d: %d token grants, want %d (cross-tenant stat bleed?)",
				id, st.TokenGrants, wantGrants)
		}
		if st.ObjectsWritten != wantGrants {
			t.Errorf("tenant %d: %d objects, want %d", id, st.ObjectsWritten, wantGrants)
		}
		sumGrants += st.TokenGrants
		sumObjects += st.ObjectsWritten
	}
	if ss.Total.TokenGrants != sumGrants || ss.Total.ObjectsWritten != sumObjects {
		t.Fatalf("Total (%d grants, %d objects) != per-tenant sum (%d, %d)",
			ss.Total.TokenGrants, ss.Total.ObjectsWritten, sumGrants, sumObjects)
	}
	if bs := broker.Stats(); bs.Grants != ss.Total.TokenGrants {
		t.Fatalf("broker granted %d, tenants account %d — grants unaccounted",
			bs.Grants, ss.Total.TokenGrants)
	}
	// Shared store, disjoint namespaces: each tenant's objects carry its
	// own JobName prefix and both sets are present.
	names, err := svc.cc.Store.(storage.ObjectReader).List("")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, n := range names {
		seen[strings.SplitN(n, "-", 2)[0]]++
	}
	if len(seen) != 2 {
		t.Fatalf("want 2 tenant namespaces in the shared store, got %v", seen)
	}
}

// TestServiceAdmissionFIFOQueue fills the platform, queues a second
// tenant, and checks it starts exactly when the first finishes.
func TestServiceAdmissionFIFOQueue(t *testing.T) {
	svc, err := NewService(ClusterConfig{
		Platform: topology.Platform{Name: "svc", Nodes: 2, CoresPerNode: 2},
		Store:    storage.NewMemory(nil, 2, 1e9),
	}, ServiceOptions{Admission: AdmitFIFO})
	if err != nil {
		t.Fatal(err)
	}
	a, err := svc.Submit(RunSpec{Meta: serviceMeta(t)})
	if err != nil || a.State() != TenantRunning {
		t.Fatalf("first tenant: err=%v state=%s", err, a.State())
	}
	b, err := svc.Submit(RunSpec{Meta: serviceMeta(t)})
	if err != nil {
		t.Fatal(err)
	}
	if b.State() != TenantQueued {
		t.Fatalf("oversubscribed tenant state %s, want queued", b.State())
	}
	if ss := svc.Stats(); ss.Queued != 1 || ss.MaxQueued != 1 {
		t.Fatalf("queued %d maxQueued %d, want 1/1", ss.Queued, ss.MaxQueued)
	}
	if err := a.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := b.Wait(); err != nil {
		t.Fatalf("queued tenant never admitted: %v", err)
	}
	if b.State() != TenantRunning || b.Nodes() != 2 {
		t.Fatalf("dispatched tenant: state %s nodes %d", b.State(), b.Nodes())
	}
	if err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if ss := svc.Stats(); ss.Completed != 2 {
		t.Fatalf("completed %d, want 2", ss.Completed)
	}
}

// TestServiceAdmissionReject refuses the tenant that does not fit.
func TestServiceAdmissionReject(t *testing.T) {
	svc, err := NewService(ClusterConfig{
		Platform: topology.Platform{Name: "svc", Nodes: 2, CoresPerNode: 2},
		Store:    storage.NewMemory(nil, 2, 1e9),
	}, ServiceOptions{Admission: AdmitReject})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := svc.Submit(RunSpec{Meta: serviceMeta(t)})
	b, err := svc.Submit(RunSpec{Meta: serviceMeta(t)})
	if err == nil || b.State() != TenantRejected {
		t.Fatalf("oversubscribed tenant not rejected: err=%v state=%s", err, b.State())
	}
	if werr := b.Wait(); werr == nil {
		t.Fatal("Wait on a rejected tenant returned nil")
	}
	if err := a.Finish(); err != nil {
		t.Fatal(err)
	}
	if ss := svc.Stats(); ss.Rejected != 1 || ss.Completed != 1 {
		t.Fatalf("rejected %d completed %d, want 1/1", ss.Rejected, ss.Completed)
	}
}

// TestServiceAdmissionDegrade shrinks the second tenant's ask to the
// free remainder instead of queueing it.
func TestServiceAdmissionDegrade(t *testing.T) {
	svc, err := NewService(ClusterConfig{
		Platform: topology.Platform{Name: "svc", Nodes: 4, CoresPerNode: 2},
		Store:    storage.NewMemory(nil, 2, 1e9),
	}, ServiceOptions{Admission: AdmitDegrade})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := svc.Submit(RunSpec{Meta: serviceMeta(t), Quota: Quota{Nodes: 3}})
	b, err := svc.Submit(RunSpec{Meta: serviceMeta(t), Quota: Quota{Nodes: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if b.State() != TenantRunning || b.Nodes() != 1 || !b.Degraded() {
		t.Fatalf("degraded tenant: state %s nodes %d degraded %v, want running/1/true",
			b.State(), b.Nodes(), b.Degraded())
	}
	// With zero nodes free, even a degradable tenant has to queue.
	c, err := svc.Submit(RunSpec{Meta: serviceMeta(t), Quota: Quota{Nodes: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if c.State() != TenantQueued {
		t.Fatalf("tenant with nothing free: state %s, want queued", c.State())
	}
	for _, tn := range []*Tenant{a, b} {
		if err := tn.Finish(); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	if ss := svc.Stats(); ss.Degraded != 1 || ss.Completed != 3 {
		t.Fatalf("degraded %d completed %d, want 1/3", ss.Degraded, ss.Completed)
	}
}

// TestServiceAdmissionDeadlineOrder queues three tenants behind a
// platform-filling one and checks EDF dispatch: priority first, then
// earliest deadline, regardless of arrival order.
func TestServiceAdmissionDeadlineOrder(t *testing.T) {
	svc, err := NewService(ClusterConfig{
		Platform: topology.Platform{Name: "svc", Nodes: 2, CoresPerNode: 2},
		Store:    storage.NewMemory(nil, 2, 1e9),
	}, ServiceOptions{Admission: AdmitDeadline})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := svc.Submit(RunSpec{Meta: serviceMeta(t)})
	c, _ := svc.Submit(RunSpec{Meta: serviceMeta(t), Deadline: 100})
	d, _ := svc.Submit(RunSpec{Meta: serviceMeta(t), Deadline: 10})
	e, _ := svc.Submit(RunSpec{Meta: serviceMeta(t), Deadline: 500, Priority: 1})
	for _, q := range []*Tenant{c, d, e} {
		if q.State() != TenantQueued {
			t.Fatalf("tenant %d state %s, want queued", q.ID(), q.State())
		}
	}
	// Dispatch order must be e (priority 1), d (deadline 10), c (100).
	for _, want := range []*Tenant{e, d, c} {
		prev := want
		switch want {
		case e:
			prev = a
		case d:
			prev = e
		case c:
			prev = d
		}
		if err := prev.Finish(); err != nil {
			t.Fatal(err)
		}
		if err := want.Wait(); err != nil {
			t.Fatal(err)
		}
		if want.State() != TenantRunning {
			t.Fatalf("tenant %d (deadline %v prio %d) not dispatched next",
				want.ID(), want.spec.Deadline, want.spec.Priority)
		}
	}
	if err := c.Finish(); err != nil {
		t.Fatal(err)
	}
}

// TestServiceEvictionReturnsPooledBuffers is the service-level
// extension of the PR 6 loss-path tests: a tenant evicted mid-iteration
// — pending merges parked at aggregators because coverage is
// incomplete — must return every pooled payload buffer it cloned.
func TestServiceEvictionReturnsPooledBuffers(t *testing.T) {
	svc, err := NewService(ClusterConfig{
		Platform: topology.Platform{Name: "svc", Nodes: 4, CoresPerNode: 3},
		Store:    storage.NewMemory(nil, 2, 1e9),
	}, ServiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	base := buf.Stats()
	tn, err := svc.Submit(RunSpec{Meta: serviceMeta(t)})
	if err != nil {
		t.Fatal(err)
	}
	c := tn.Cluster()

	// Mid-iteration state: every node except the tree root writes, so
	// iteration 0 forwards batches up the tree but can never reach full
	// coverage — the merges sit pending at the root holding pooled
	// buffers.
	var wg sync.WaitGroup
	for n := 1; n < c.Nodes(); n++ {
		for s := 0; s < c.ClientsPerNode(); s++ {
			wg.Add(1)
			go func(n, s int) {
				defer wg.Done()
				cl := c.Client(n, s)
				if err := cl.Write("theta", 0, make([]byte, 16*8)); err != nil {
					t.Errorf("node %d src %d: %v", n, s, err)
					return
				}
				cl.EndIteration(0)
			}(n, s)
		}
	}
	wg.Wait()
	if err := waitFor(func() bool { return c.Stats().BatchesForwarded >= 1 }); err != nil {
		t.Fatalf("no batch in flight before eviction: %v", err)
	}

	if err := tn.Evict(); err != nil {
		t.Fatal(err)
	}
	if tn.State() != TenantEvicted {
		t.Fatalf("state %s, want evicted", tn.State())
	}
	st := tn.Stats()
	if st.BlocksLost == 0 {
		t.Fatal("eviction lost nothing; the mid-iteration state never existed")
	}
	now := buf.Stats()
	if gets, puts := now.Gets-base.Gets, now.Puts-base.Puts; gets != puts {
		t.Fatalf("pooled buffers leaked on eviction: %d gets, %d puts", gets, puts)
	}
	if ss := svc.Stats(); ss.Evicted != 1 {
		t.Fatalf("evicted %d, want 1", ss.Evicted)
	}
}

// TestServiceQuotaMaxBytes runs a tenant whose byte budget covers only
// part of its output: the over-budget objects are skipped (counted, not
// stored) and the run still completes every iteration.
func TestServiceQuotaMaxBytes(t *testing.T) {
	const iters = 4
	store := storage.NewMemory(nil, 2, 1e9)
	svc, err := NewService(ClusterConfig{
		Platform:         topology.Platform{Name: "svc", Nodes: 2, CoresPerNode: 2},
		Store:            store,
		DisableManifests: true,
	}, ServiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// One root object per iteration; each is a bit over 128 bytes of
	// payload, so a 300-byte budget admits the first one or two objects
	// and drops the rest.
	tn, err := svc.Submit(RunSpec{
		Meta:  serviceMeta(t),
		Quota: Quota{MaxBytes: 300},
	})
	if err != nil {
		t.Fatal(err)
	}
	driveTenant(t, tn, iters)
	if err := tn.Finish(); err != nil {
		t.Fatal(err)
	}
	st := tn.Stats()
	if st.QuotaDroppedObjects == 0 {
		t.Fatal("no object hit the byte quota; budget not enforced")
	}
	if st.ObjectsWritten+st.QuotaDroppedObjects != iters {
		t.Fatalf("stored %d + dropped %d != %d iterations",
			st.ObjectsWritten, st.QuotaDroppedObjects, iters)
	}
	if st.IterationsCompleted != iters {
		t.Fatalf("iterations completed %d, want %d — quota drop broke liveness",
			st.IterationsCompleted, iters)
	}
}

// TestServiceFourTenantSmoke is the race-detector smoke (make
// service-race): four tenants admitted, driven, and finished fully
// concurrently on one shared broker and store.
func TestServiceFourTenantSmoke(t *testing.T) {
	const iters = 2
	broker := storage.NewShardedBroker(storage.BrokerOptions{
		Policy:  storage.PolicyFairShare,
		Targets: 2,
	}, 2)
	svc, err := NewService(ClusterConfig{
		Platform: topology.Platform{Name: "svc", Nodes: 4, CoresPerNode: 3},
		Store:    storage.NewMemory(nil, 4, 1e9),
		Broker:   broker,
	}, ServiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tn, err := svc.Submit(RunSpec{
				Meta:     serviceMeta(t),
				Quota:    Quota{Nodes: 1},
				Priority: i % 2,
			})
			if err != nil {
				t.Errorf("tenant %d: %v", i, err)
				return
			}
			if err := tn.Wait(); err != nil {
				t.Errorf("tenant %d admission: %v", i, err)
				return
			}
			driveTenant(t, tn, iters)
			if err := tn.Finish(); err != nil {
				t.Errorf("tenant %d finish: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if got := broker.Outstanding(); got != 0 {
		t.Fatalf("%d tokens leaked", got)
	}
	ss := svc.Stats()
	if ss.Completed != 4 {
		t.Fatalf("completed %d, want 4", ss.Completed)
	}
	if ss.Total.ObjectsWritten != 4*iters {
		t.Fatalf("total objects %d, want %d", ss.Total.ObjectsWritten, 4*iters)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(RunSpec{Meta: serviceMeta(t)}); err == nil {
		t.Fatal("Submit after Close succeeded")
	}
}
