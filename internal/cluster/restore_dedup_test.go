package cluster

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/des"
	"repro/internal/rng"
	"repro/internal/storage"
	"repro/internal/storage/chunk"
	"repro/internal/topology"
)

// payloadDedup builds the 512-byte block for (node, source, it) of the
// incremental-checkpoint workload: only node 0's source 0 changes
// between iterations, every other block is bit-stable — the
// slowly-changing state a dedup store exists for. The stable content is
// pseudorandom, not a ramp: a low-entropy ramp never trips the rolling
// hash's boundary mask, so the chunker would degenerate to fixed
// Max-size cuts and hide the content-defined behaviour under test.
func payloadDedup(node, source, it int) []byte {
	r := rand.New(rand.NewSource(int64(node)<<16 | int64(source)))
	p := make([]byte, 64*8)
	r.Read(p)
	if node == 0 && source == 0 {
		for i := 0; i < 64; i++ {
			p[i] = byte(it*13 + i)
		}
	}
	return p
}

// runDedupWorkload drives a cluster with the incremental payloads over
// the given store stack and returns its stats.
func runDedupWorkload(t *testing.T, store storage.ObjectStore, nodes, clients, iters, retain int, sched *FailureSchedule) Stats {
	t.Helper()
	c, err := New(Config{
		Platform: testPlatform(nodes, clients+1),
		Meta:     testMeta(t),
		Fanout:   2,
		Store:    store,
		Failures: sched,
		Retain:   retain,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for n := 0; n < nodes; n++ {
		for s := 0; s < clients; s++ {
			wg.Add(1)
			go func(n, s int) {
				defer wg.Done()
				cl := c.Client(n, s)
				for it := 0; it < iters; it++ {
					if err := cl.Write("theta", it, payloadDedup(n, s, it)); err != nil {
						t.Errorf("node %d src %d it %d: %v", n, s, it, err)
						return
					}
					cl.EndIteration(it)
				}
			}(n, s)
		}
	}
	wg.Wait()
	c.WaitIteration(iters - 1)
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	return c.Stats()
}

// checkDedupRestore verifies exact non-lost recovery: every restored
// block is byte-identical to what its client wrote, and the recovered
// count matches produced-minus-lost.
func checkDedupRestore(t *testing.T, r *Restored, st Stats, nodes, clients, iters int) {
	t.Helper()
	produced := nodes * clients * iters
	if got, want := r.TotalBlocks(), produced-st.BlocksLost; got != want {
		t.Fatalf("recovered %d blocks, want exactly the non-lost %d (produced %d, lost %d)",
			got, want, produced, st.BlocksLost)
	}
	for it, ri := range r.Iterations {
		for _, blk := range ri.Blocks {
			if !bytes.Equal(blk.Data, payloadDedup(blk.Node, blk.Source, it)) {
				t.Fatalf("iteration %d node %d src %d: payload corrupted through the dedup stack",
					it, blk.Node, blk.Source)
			}
		}
	}
}

// TestRestoreDedupMatrix is the dedup round-trip matrix: chunk store
// over {memory, sdf}, with and without the compression pipeline in
// between, with and without a mid-run node failure. Every cell must
// recover exactly the non-lost blocks byte-identical, the manifests
// must carry the v2 chunk sets, and the stream must actually have
// deduplicated.
func TestRestoreDedupMatrix(t *testing.T) {
	const nodes, clients, iters, failAt = 9, 2, 4, 2
	for _, backend := range []string{"memory", "sdf"} {
		for _, codec := range []string{"", "adaptive"} {
			for _, fail := range []bool{false, true} {
				name := fmt.Sprintf("%s/codec=%s/fail=%v", backend, codec, fail)
				t.Run(name, func(t *testing.T) {
					dir := t.TempDir()
					build := func() (storage.Backend, error) {
						var base storage.Backend
						var err error
						switch backend {
						case "memory":
							base = storage.NewMemory(nil, 4, 1e9)
						case "sdf":
							base, err = storage.NewSDF(nil, 4, 1e9, dir)
						}
						if err != nil {
							return nil, err
						}
						if codec != "" {
							base = storage.NewCompressing(base, storage.CompressionOptions{Codec: codec})
						}
						return base, nil
					}
					inner, err := build()
					if err != nil {
						t.Fatal(err)
					}
					st := chunk.New(inner, chunk.Options{})
					var sched *FailureSchedule
					if fail {
						sched = NewFailureSchedule().Add(1, failAt)
					}
					stats := runDedupWorkload(t, st, nodes, clients, iters, 0, sched)
					if fail && stats.BlocksLost == 0 {
						t.Fatal("failure cell needs actual loss")
					}

					acc := st.Accounting()
					if acc.ChunksDeduped == 0 || acc.DedupBytesSaved <= 0 {
						t.Fatalf("no dedup happened: %+v", acc)
					}
					if !fail && acc.ChunkBytesDeduped <= acc.ChunkBytesStored {
						t.Fatalf("incremental workload deduped %d bytes vs %d stored — expected most of the stream to repeat",
							acc.ChunkBytesDeduped, acc.ChunkBytesStored)
					}

					// Restore through the same stack.
					r, err := Restore(st, "clustertest")
					if err != nil {
						t.Fatal(err)
					}
					if len(r.Problems) != 0 {
						t.Fatalf("restore problems: %v", r.Problems)
					}
					checkDedupRestore(t, r, stats, nodes, clients, iters)

					// Manifest v2: every stored data object's manifest carries
					// its chunk set.
					names, err := st.List("clustertest-")
					if err != nil {
						t.Fatal(err)
					}
					v2 := 0
					for _, n := range names {
						if !IsManifestName(n) {
							continue
						}
						data, err := st.Get(n)
						if err != nil {
							t.Fatal(err)
						}
						m, err := DecodeManifest(data)
						if err != nil {
							t.Fatal(err)
						}
						if len(m.Chunks) > 0 {
							v2++
							if m.ChunkNewBytes > m.ChunkRawBytes {
								t.Fatalf("manifest %s: new %d > raw %d", n, m.ChunkNewBytes, m.ChunkRawBytes)
							}
						}
					}
					if v2 == 0 {
						t.Fatal("no manifest carried a v2 chunk set")
					}

					// SDF persists: a fresh stack over the same directory (a
					// restarted process with empty indexes) must restore too.
					if backend == "sdf" {
						freshInner, err := build()
						if err != nil {
							t.Fatal(err)
						}
						fresh := chunk.New(freshInner, chunk.Options{})
						r2, err := Restore(fresh, "clustertest")
						if err != nil {
							t.Fatal(err)
						}
						if len(r2.Problems) != 0 {
							t.Fatalf("fresh-process restore problems: %v", r2.Problems)
						}
						checkDedupRestore(t, r2, stats, nodes, clients, iters)
					}
				})
			}
		}
	}
}

// TestRestoreDedupPFSDegrades: the dedup store over the pure DES cost
// model keeps the accounting story (chunks and recipes are accounted,
// never retained), and a restore degrades exactly like the plain pfs
// case — empty, one problem per unreadable manifest, no panic.
func TestRestoreDedupPFSDegrades(t *testing.T) {
	const nodes, clients, iters = 4, 1, 2
	plat := topology.Kraken(1)
	st := chunk.New(storage.NewPFS(des.NewEngine(), plat.PFS, rng.New(7, 1)), chunk.Options{})
	stats := runDedupWorkload(t, st, nodes, clients, iters, 0, nil)
	if stats.ObjectsWritten != iters {
		t.Fatalf("ObjectsWritten = %d, want %d", stats.ObjectsWritten, iters)
	}
	r, err := Restore(st, "clustertest")
	if err != nil {
		t.Fatal(err)
	}
	if r.Manifests != 0 || r.TotalBlocks() != 0 {
		t.Fatalf("recovered something from a payload-free model: %+v", r)
	}
	if len(r.Problems) != iters {
		t.Fatalf("%d problems, want %d: %v", len(r.Problems), iters, r.Problems)
	}
}

// TestRestoreDedupRetainSweep: a run with a retention window releases
// aged iterations; after a GC sweep the retained window must restore
// byte-identical — sweeping past N earlier iterations never breaks a
// retained one, because shared chunks survive while their referencing
// manifests live.
func TestRestoreDedupRetainSweep(t *testing.T) {
	const nodes, clients, iters, retain = 9, 2, 6, 2
	st := chunk.New(storage.NewMemory(nil, 4, 1e9), chunk.Options{})
	stats := runDedupWorkload(t, st, nodes, clients, iters, retain, nil)
	if stats.ObjectsReleased == 0 {
		t.Fatal("retention released nothing")
	}
	swept, err := st.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if swept.Objects == 0 || swept.Chunks == 0 {
		t.Fatalf("sweep reclaimed nothing after %d releases: %+v", stats.ObjectsReleased, swept)
	}

	r, err := Restore(st, "clustertest")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Problems) != 0 {
		t.Fatalf("restore problems after sweep: %v", r.Problems)
	}
	// The retained window — the last `retain` iterations — is fully
	// recoverable; everything older was collected.
	if it, ok := r.LatestComplete(nodes); !ok || it != iters-1 {
		t.Fatalf("LatestComplete = %d, %v; want %d", it, ok, iters-1)
	}
	for it := iters - retain; it < iters; it++ {
		ri := r.Iterations[it]
		if ri == nil || !ri.Complete(nodes) {
			t.Fatalf("retained iteration %d not fully recoverable after sweep", it)
		}
		for _, blk := range ri.Blocks {
			if !bytes.Equal(blk.Data, payloadDedup(blk.Node, blk.Source, it)) {
				t.Fatalf("retained iteration %d: block corrupted after sweep", it)
			}
		}
	}
	for it := 0; it < iters-retain; it++ {
		if _, ok := r.Iterations[it]; ok {
			t.Fatalf("released iteration %d survived the sweep", it)
		}
	}
}
