package cluster

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/storage"
)

// RestoredIteration is one iteration's reconstructed state: the union
// of every root object stored for it.
type RestoredIteration struct {
	// Iteration is the simulation iteration number.
	Iteration int
	// Covers is the set of origin nodes whose contribution reached a
	// stored root object (a node can cover with zero blocks, e.g. when
	// its data was skipped but it still took part in the round).
	Covers map[int]bool
	// Blocks holds the decoded payload blocks in normalized (node,
	// source, variable) order.
	Blocks []Block
	// Partial is true when any root stored this iteration below its
	// full live-subtree coverage.
	Partial bool
	// PayloadMissing is true when at least one manifest's data object
	// could not be fetched or decoded — the iteration is known from its
	// manifests but not fully replayable.
	PayloadMissing bool
}

// Complete reports whether the iteration is fully recoverable for a
// cluster of n nodes: every node covered and every payload present.
func (ri *RestoredIteration) Complete(n int) bool {
	return !ri.PayloadMissing && len(ri.Covers) == n
}

// Restored is the result of reading a job's stored objects back: the
// read-side mirror of a Cluster run, reconstructed purely from
// manifests and batch objects.
type Restored struct {
	// Job is the prefix the restore scanned for ("" = everything).
	Job string
	// Manifests counts the manifest objects consumed.
	Manifests int
	// Iterations maps iteration number → reconstructed state.
	Iterations map[int]*RestoredIteration
	// Problems collects non-fatal per-object failures (undecodable
	// manifest, missing data object, manifest/batch mismatch). A
	// problem marks the affected iteration PayloadMissing instead of
	// aborting the restore: partial recovery beats none, the same trade
	// the write side makes under the §V.C skip policy.
	Problems []error
}

// Restore reads a job's manifests and batch objects back from a store
// and reconstructs per-iteration state. It is the checkpoint/restart
// entry point: after a run (including one with node failures), Restore
// reports exactly which iterations are recoverable and hands back the
// decoded blocks for replay. Only Get/List are required, so any
// storage.Backend works; the pure pfs cost model retains no bytes at
// all, so restoring from it yields an empty result with one problem
// per unreadable manifest.
func Restore(store storage.ObjectReader, job string) (*Restored, error) {
	prefix := job
	if job != "" {
		prefix = job + "-"
	}
	names, err := store.List(prefix)
	if err != nil {
		return nil, fmt.Errorf("cluster: restore: listing %q: %w", prefix, err)
	}
	r := &Restored{Job: job, Iterations: map[int]*RestoredIteration{}}
	for _, name := range names {
		if !IsManifestName(name) {
			continue
		}
		data, err := store.Get(name)
		if err != nil {
			r.Problems = append(r.Problems, fmt.Errorf("manifest %s: %w", name, err))
			continue
		}
		m, err := DecodeManifest(data)
		if err != nil {
			r.Problems = append(r.Problems, fmt.Errorf("manifest %s: %w", name, err))
			continue
		}
		if job != "" && m.Job != job {
			// The prefix scan can catch a job whose name extends the
			// requested one (e.g. "exp-v2" under "exp"); mixing two
			// runs' blocks would corrupt the restored state.
			continue
		}
		r.Manifests++
		ri := r.Iterations[m.Iteration]
		if ri == nil {
			ri = &RestoredIteration{Iteration: m.Iteration, Covers: map[int]bool{}}
			r.Iterations[m.Iteration] = ri
		}
		for _, n := range m.Covers {
			ri.Covers[n] = true
		}
		ri.Partial = ri.Partial || m.Partial
		b, err := fetchBatch(store, m)
		if err != nil {
			ri.PayloadMissing = true
			if !errors.Is(err, storage.ErrNoPayload) {
				r.Problems = append(r.Problems, err)
			}
			continue
		}
		ri.Blocks = append(ri.Blocks, b.Blocks...)
	}
	for _, ri := range r.Iterations {
		(&Batch{Iteration: ri.Iteration, Blocks: ri.Blocks}).normalize()
	}
	return r, nil
}

// fetchBatch reads and validates one manifest's data object.
func fetchBatch(store storage.ObjectReader, m *Manifest) (*Batch, error) {
	obj, err := store.Get(m.Object)
	if err != nil {
		return nil, fmt.Errorf("object %s: %w", m.Object, err)
	}
	if len(m.Chunks) > 0 && int64(len(obj)) != m.ChunkRawBytes {
		// A v2 manifest pins the object's reassembled size: a dedup store
		// serves exactly the chunk sum, so a mismatch means the store
		// returned something other than what the manifest indexed (e.g. a
		// raw recipe read through a non-dedup-aware store).
		return nil, fmt.Errorf("object %s: %d bytes served, manifest chunks sum to %d",
			m.Object, len(obj), m.ChunkRawBytes)
	}
	b, err := DecodeBatch(obj)
	if err != nil {
		return nil, fmt.Errorf("object %s: %w", m.Object, err)
	}
	if b.Iteration != m.Iteration || len(b.Blocks) != len(m.Blocks) {
		return nil, fmt.Errorf("object %s: holds iteration %d with %d blocks, manifest says %d/%d",
			m.Object, b.Iteration, len(b.Blocks), m.Iteration, len(m.Blocks))
	}
	return b, nil
}

// IterationNumbers returns the restored iteration numbers ascending.
func (r *Restored) IterationNumbers() []int {
	its := make([]int, 0, len(r.Iterations))
	for it := range r.Iterations {
		its = append(its, it)
	}
	sort.Ints(its)
	return its
}

// TotalBlocks returns the number of payload blocks recovered across
// every iteration.
func (r *Restored) TotalBlocks() int {
	n := 0
	for _, ri := range r.Iterations {
		n += len(ri.Blocks)
	}
	return n
}

// Completeness returns iteration → fraction of a n-node cluster covered
// by the restored objects — the read-side mirror of Stats.Completeness,
// so a restore can be checked against the run that produced it.
func (r *Restored) Completeness(n int) map[int]float64 {
	out := make(map[int]float64, len(r.Iterations))
	for it, ri := range r.Iterations {
		out[it] = float64(len(ri.Covers)) / float64(n)
	}
	return out
}

// LatestComplete returns the highest iteration that is fully
// recoverable for an n-node cluster — the checkpoint a restart should
// resume from — and ok=false when no iteration qualifies.
func (r *Restored) LatestComplete(n int) (iteration int, ok bool) {
	best := -1
	for it, ri := range r.Iterations {
		if ri.Complete(n) && it > best {
			best = it
		}
	}
	return best, best >= 0
}

// NodeBlocks returns iteration it's blocks grouped by origin node — the
// per-node state a restarting simulation loads back.
func (r *Restored) NodeBlocks(it int) map[int][]Block {
	ri := r.Iterations[it]
	if ri == nil {
		return nil
	}
	out := map[int][]Block{}
	for _, blk := range ri.Blocks {
		out[blk.Node] = append(out[blk.Node], blk)
	}
	return out
}

// Replay drives fn once per restored iteration, ascending, with the
// merged batch — the read-side mirror of Hook.OnIteration, so the same
// plugin logic can run on a live cluster or on a stored run. Iterations
// with missing payloads are skipped. Replay stops at fn's first error.
func (r *Restored) Replay(fn func(it int, b *Batch) error) error {
	for _, it := range r.IterationNumbers() {
		ri := r.Iterations[it]
		if ri.PayloadMissing {
			continue
		}
		b := &Batch{Iteration: it, Blocks: ri.Blocks}
		if err := fn(it, b); err != nil {
			return fmt.Errorf("cluster: replay iteration %d: %w", it, err)
		}
	}
	return nil
}
