package cluster

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// randomBatch builds a pseudo-random batch from a seeded source, so
// failures reproduce from the logged seed.
func randomBatch(rng *rand.Rand) *Batch {
	b := &Batch{Iteration: rng.Intn(1000)}
	nblocks := rng.Intn(20)
	for i := 0; i < nblocks; i++ {
		data := make([]byte, rng.Intn(512))
		rng.Read(data)
		b.Blocks = append(b.Blocks, Block{
			Node:     rng.Intn(8),
			Source:   rng.Intn(4),
			Variable: fmt.Sprintf("v%d", rng.Intn(6)),
			Data:     data,
		})
	}
	return b
}

// TestEncodeBatchVecMatchesFlat is the property test behind the
// zero-copy write path: for arbitrary batches, the concatenation of
// EncodeBatchVec's segments must be byte-identical to EncodeBatch, and
// both must round-trip through DecodeBatch.
func TestEncodeBatchVecMatchesFlat(t *testing.T) {
	const seed = 7
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 200; trial++ {
		b := randomBatch(rng)
		flat := EncodeBatch(b)
		var joined []byte
		for _, seg := range EncodeBatchVec(b) {
			joined = append(joined, seg...)
		}
		if !bytes.Equal(flat, joined) {
			t.Fatalf("seed %d trial %d: vec concatenation differs from flat encoding (%d vs %d bytes)",
				seed, trial, len(joined), len(flat))
		}
		dec, err := DecodeBatch(joined)
		if err != nil {
			t.Fatalf("seed %d trial %d: decode: %v", seed, trial, err)
		}
		if dec.Iteration != b.Iteration || len(dec.Blocks) != len(b.Blocks) {
			t.Fatalf("seed %d trial %d: round trip lost blocks: %d vs %d",
				seed, trial, len(dec.Blocks), len(b.Blocks))
		}
		for i := range dec.Blocks {
			got, want := dec.Blocks[i], b.Blocks[i] // b was normalized by encode
			if got.Node != want.Node || got.Source != want.Source ||
				got.Variable != want.Variable || !bytes.Equal(got.Data, want.Data) {
				t.Fatalf("seed %d trial %d: block %d differs after round trip", seed, trial, i)
			}
		}
	}
}

// TestEncodeBatchVecAliasesPayloads pins the zero-copy contract: the
// payload segments must reference each Block's Data directly, not a
// copy — that is the entire point of the vector encoding.
func TestEncodeBatchVecAliasesPayloads(t *testing.T) {
	b := &Batch{Iteration: 3, Blocks: []Block{
		{Node: 0, Source: 0, Variable: "a", Data: []byte{1, 2, 3, 4}},
		{Node: 1, Source: 0, Variable: "b", Data: []byte{5, 6, 7}},
	}}
	segs := EncodeBatchVec(b)
	// Layout: header, then (blockHeader, payload) pairs.
	if len(segs) != 1+2*len(b.Blocks) {
		t.Fatalf("got %d segments, want %d", len(segs), 1+2*len(b.Blocks))
	}
	for i := range b.Blocks {
		payload := segs[2+2*i]
		if len(payload) == 0 {
			continue
		}
		if &payload[0] != &b.Blocks[i].Data[0] {
			t.Fatalf("payload segment %d is a copy, not an alias", i)
		}
	}
}

// TestEncodeBatchVecEmpty covers the degenerate batch: header only.
func TestEncodeBatchVecEmpty(t *testing.T) {
	b := &Batch{Iteration: 9}
	segs := EncodeBatchVec(b)
	if len(segs) != 1 {
		t.Fatalf("empty batch produced %d segments", len(segs))
	}
	dec, err := DecodeBatch(EncodeBatch(b))
	if err != nil || dec.Iteration != 9 || len(dec.Blocks) != 0 {
		t.Fatalf("empty batch round trip: %v, %+v", err, dec)
	}
}
