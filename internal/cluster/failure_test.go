package cluster

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/storage"
)

func TestFailureScheduleBasics(t *testing.T) {
	var nilSched *FailureSchedule
	if !nilSched.Empty() || nilSched.Len() != 0 || nilSched.Nodes() != nil {
		t.Fatal("nil schedule must behave as empty")
	}
	if _, ok := nilSched.At(3); ok {
		t.Fatal("nil schedule has no entries")
	}
	s := NewFailureSchedule().Add(4, 2).Add(1, -5).Add(4, 7)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if it, ok := s.At(1); !ok || it != 0 {
		t.Fatalf("At(1) = %d, %v; want 0 (negative clamps)", it, ok)
	}
	if it, _ := s.At(4); it != 2 {
		t.Fatalf("At(4) = %d, want 2 (earlier death wins)", it)
	}
	if got, want := fmt.Sprint(s), "1@0,4@2"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestRandomFailuresDeterministic(t *testing.T) {
	a := RandomFailures(64, 10, 0.3, 42)
	b := RandomFailures(64, 10, 0.3, 42)
	if a.String() != b.String() {
		t.Fatalf("same seed differs: %s vs %s", a, b)
	}
	if a.Empty() {
		t.Fatal("rate 0.3 over 64 nodes produced no failures")
	}
	for _, n := range a.Nodes() {
		it, _ := a.At(n)
		if n < 0 || n >= 64 || it < 0 || it >= 10 {
			t.Fatalf("entry %d@%d out of range", n, it)
		}
	}
	if !RandomFailures(64, 10, 0, 42).Empty() {
		t.Fatal("rate 0 must be empty")
	}
	if RandomFailures(64, 10, 1, 42).Len() != 64 {
		t.Fatal("rate 1 must kill everything")
	}
}

func TestTreeFailInterior(t *testing.T) {
	tr := NewTree(7, 2, 1) // 0 → {1,2}; 1 → {3,4}; 2 → {5,6}
	edges := tr.Fail(1)
	if len(edges) != 2 {
		t.Fatalf("rerouted %d edges, want 2: %v", len(edges), edges)
	}
	if tr.Alive(1) {
		t.Fatal("node 1 still alive")
	}
	for _, k := range []int{3, 4} {
		if p, ok := tr.Parent(k); !ok || p != 0 {
			t.Fatalf("Parent(%d) = %d, %v; want 0", k, p, ok)
		}
	}
	if got := tr.Children(0); !equalInts(got, []int{2, 3, 4}) {
		t.Fatalf("Children(0) = %v, want [2 3 4]", got)
	}
	if got := tr.Roots(); !equalInts(got, []int{0}) {
		t.Fatalf("Roots = %v, want [0]", got)
	}
	if dest, ok := tr.DrainTarget(1); !ok || dest != 0 {
		t.Fatalf("DrainTarget(1) = %d, %v; want 0", dest, ok)
	}
	if got := tr.LiveSubtree(0); !equalInts(got, []int{0, 2, 3, 4, 5, 6}) {
		t.Fatalf("LiveSubtree(0) = %v", got)
	}
	if tr.LiveSubtree(1) != nil {
		t.Fatal("dead node has no live subtree")
	}
}

func TestTreeFailRootPromotesSibling(t *testing.T) {
	tr := NewTree(7, 2, 1)
	edges := tr.Fail(0)
	// 1 promoted to root, 2 re-routed to 1.
	if len(edges) != 2 || edges[0] != (RerouteEdge{Child: 1, NewParent: -1}) ||
		edges[1] != (RerouteEdge{Child: 2, NewParent: 1}) {
		t.Fatalf("edges = %v", edges)
	}
	if got := tr.Roots(); !equalInts(got, []int{1}) {
		t.Fatalf("Roots = %v, want [1]", got)
	}
	if !tr.IsRoot(1) || tr.IsRoot(0) {
		t.Fatal("promotion not reflected in IsRoot")
	}
	if got := tr.Children(1); !equalInts(got, []int{2, 3, 4}) {
		t.Fatalf("Children(1) = %v, want [2 3 4]", got)
	}
	if r := tr.RootOf(6); r != 1 {
		t.Fatalf("RootOf(6) = %d, want 1", r)
	}
	if dest, ok := tr.DrainTarget(0); !ok || dest != 1 {
		t.Fatalf("DrainTarget(0) = %d, %v; want 1", dest, ok)
	}
}

func TestTreeFailChildlessRoot(t *testing.T) {
	tr := NewTree(4, 2, 4) // every node its own root
	if edges := tr.Fail(2); len(edges) != 0 {
		t.Fatalf("childless root rerouted %v", edges)
	}
	if got := tr.Roots(); !equalInts(got, []int{0, 1, 3}) {
		t.Fatalf("Roots = %v", got)
	}
	if _, ok := tr.DrainTarget(2); ok {
		t.Fatal("childless dead root has no drain target")
	}
}

func TestTreeDrainTargetChasesChain(t *testing.T) {
	tr := NewTree(15, 2, 1) // 0 → {1,2}; 1 → {3,4}; 3 → {7,8}
	tr.Fail(3)              // 7,8 → 1; drain(3) = 1
	tr.Fail(1)              // 4,7,8 → 0; drain(1) = 0
	if dest, ok := tr.DrainTarget(3); !ok || dest != 0 {
		t.Fatalf("DrainTarget(3) = %d, %v; want 0 through the chain", dest, ok)
	}
	for _, k := range []int{4, 7, 8} {
		if p, ok := tr.Parent(k); !ok || p != 0 {
			t.Fatalf("Parent(%d) = %d, %v; want 0", k, p, ok)
		}
	}
}

func TestTreeCloneIndependent(t *testing.T) {
	tr := NewTree(7, 2, 1)
	tr.Fail(1)
	cp := tr.Clone()
	cp.Fail(2)
	if !tr.Alive(2) {
		t.Fatal("failing the clone leaked into the original")
	}
	if cp.Alive(2) || cp.Alive(1) {
		t.Fatal("clone lost state")
	}
}

// TestClusterInteriorFailure is the acceptance scenario: a 9-node
// binary tree loses interior node 1 at iteration 1 of 4. The run must
// finish without deadlock, the re-routed children's later iterations
// must reach the root, and the stats must account the loss.
func TestClusterInteriorFailure(t *testing.T) {
	const nodes, clients, iters, failAt = 9, 2, 4, 1
	store := storage.NewMemory(nil, 4, 1e9)
	c, err := New(Config{
		Platform: testPlatform(nodes, clients+1),
		Meta:     testMeta(t),
		Fanout:   2, // 0 → {1,2}; 1 → {3,4}; 2 → {5,6}; 3 → {7,8}
		Store:    store,
		Failures: NewFailureSchedule().Add(1, failAt),
	})
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, c, clients, iters)
	c.WaitIteration(iters - 1) // must not deadlock
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}

	st := c.Stats()
	if st.NodesFailed != 1 {
		t.Errorf("NodesFailed = %d, want 1", st.NodesFailed)
	}
	if st.ReroutedEdges != 2 {
		t.Errorf("ReroutedEdges = %d, want 2 (children 3,4 → 0)", st.ReroutedEdges)
	}
	// Node 1's own blocks for iterations 1..3: clients blocks each.
	if want := clients * (iters - failAt); st.BlocksLost != want {
		t.Errorf("BlocksLost = %d, want %d", st.BlocksLost, want)
	}
	if st.IterationsCompleted != iters {
		t.Errorf("IterationsCompleted = %d, want %d", st.IterationsCompleted, iters)
	}
	tr := c.Tree()
	if tr.Alive(1) {
		t.Error("tree snapshot still shows node 1 alive")
	}

	for it := 0; it < iters; it++ {
		obj, ok := store.Object(fmt.Sprintf("clustertest-root000-it%06d", it))
		if !ok {
			t.Fatalf("missing root object for iteration %d", it)
		}
		b, err := DecodeBatch(obj)
		if err != nil {
			t.Fatal(err)
		}
		got := map[int]int{}
		for _, blk := range b.Blocks {
			got[blk.Node]++
			if !bytes.Equal(blk.Data, payload(blk.Node, blk.Source, it)) {
				t.Fatalf("iteration %d: node %d payload corrupted", it, blk.Node)
			}
		}
		wantNodes := nodes
		if it >= failAt {
			wantNodes = nodes - 1 // only node 1 itself is missing
		}
		if len(got) != wantNodes {
			t.Fatalf("iteration %d covers %d nodes, want %d (%v)", it, len(got), wantNodes, got)
		}
		if it >= failAt {
			if _, hasDead := got[1]; hasDead {
				t.Fatalf("iteration %d contains blocks from the dead node", it)
			}
			// The re-routed children and their subtrees must be present.
			for _, k := range []int{3, 4, 7, 8} {
				if got[k] != clients {
					t.Fatalf("iteration %d: re-routed node %d contributed %d blocks, want %d",
						it, k, got[k], clients)
				}
			}
		}
		wantFrac := float64(wantNodes) / float64(nodes)
		if frac := st.Completeness[it]; frac != wantFrac {
			t.Errorf("Completeness[%d] = %v, want %v", it, frac, wantFrac)
		}
	}
	// Missing data from a dead node is loss, not a straggler: the
	// surviving subtree was complete every iteration.
	if st.PartialIterations != 0 {
		t.Errorf("PartialIterations = %d, want 0", st.PartialIterations)
	}
}

// TestClusterRootFailure kills one of two roots: its first child must
// take over as root and store the subtree's remaining iterations.
func TestClusterRootFailure(t *testing.T) {
	const nodes, clients, iters, failAt = 12, 1, 3, 1
	store := storage.NewMemory(nil, 4, 1e9)
	c, err := New(Config{
		Platform: testPlatform(nodes, clients+1),
		Meta:     testMeta(t),
		Fanout:   2,
		Roots:    2, // subtrees [0..5] and [6..11]
		Store:    store,
		Failures: NewFailureSchedule().Add(6, failAt),
	})
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, c, clients, iters)
	c.WaitIteration(iters - 1)
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}

	st := c.Stats()
	if st.NodesFailed != 1 {
		t.Errorf("NodesFailed = %d, want 1", st.NodesFailed)
	}
	// 7 promoted to root, 8 re-routed under 7.
	if st.ReroutedEdges != 2 {
		t.Errorf("ReroutedEdges = %d, want 2", st.ReroutedEdges)
	}
	if got := c.Tree().Roots(); !equalInts(got, []int{0, 7}) {
		t.Fatalf("Roots = %v, want [0 7]", got)
	}
	// Every iteration after the death must be stored by the promoted
	// root and cover the subtree minus the dead node.
	for it := failAt; it < iters; it++ {
		obj, ok := store.Object(fmt.Sprintf("clustertest-root007-it%06d", it))
		if !ok {
			t.Fatalf("promoted root stored nothing for iteration %d", it)
		}
		b, err := DecodeBatch(obj)
		if err != nil {
			t.Fatal(err)
		}
		covered := map[int]bool{}
		for _, blk := range b.Blocks {
			covered[blk.Node] = true
		}
		for _, n := range []int{7, 8, 9, 10, 11} {
			if !covered[n] {
				t.Fatalf("iteration %d at promoted root misses node %d (%v)", it, n, covered)
			}
		}
		if covered[6] {
			t.Fatalf("iteration %d contains the dead root's blocks", it)
		}
	}
	if frac := st.Completeness[iters-1]; frac != float64(nodes-1)/float64(nodes) {
		t.Errorf("Completeness[%d] = %v, want %v", iters-1, frac, float64(nodes-1)/float64(nodes))
	}
}

// TestClusterEmptyScheduleIdentical: an empty (non-nil) schedule must
// leave every object byte-identical to a nil-schedule run.
func TestClusterEmptyScheduleIdentical(t *testing.T) {
	run := func(sched *FailureSchedule) map[string][]byte {
		store := storage.NewMemory(nil, 4, 1e9)
		c, err := New(Config{
			Platform: testPlatform(8, 3),
			Meta:     testMeta(t),
			Fanout:   2,
			Roots:    2,
			Store:    store,
			Failures: sched,
		})
		if err != nil {
			t.Fatal(err)
		}
		runWorkload(t, c, 2, 2)
		if err := c.Shutdown(); err != nil {
			t.Fatal(err)
		}
		st := c.Stats()
		if st.NodesFailed != 0 || st.BlocksLost != 0 || st.ReroutedEdges != 0 {
			t.Fatalf("failure stats nonzero without failures: %+v", st)
		}
		for it, frac := range st.Completeness {
			if frac != 1 {
				t.Fatalf("Completeness[%d] = %v without failures", it, frac)
			}
		}
		out := map[string][]byte{}
		for _, n := range store.ObjectNames() {
			d, _ := store.Object(n)
			out[n] = d // manifests included: they must be deterministic too
		}
		return out
	}
	a, b := run(nil), run(NewFailureSchedule())
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("object counts differ: %d vs %d", len(a), len(b))
	}
	for name, data := range a {
		if !bytes.Equal(data, b[name]) {
			t.Fatalf("object %s differs between nil and empty schedule", name)
		}
	}
}

// TestClusterCascadingFailures kills a node and, later, the node that
// adopted its children: the drain chain must still deliver.
func TestClusterCascadingFailures(t *testing.T) {
	const nodes, clients, iters = 9, 1, 5
	store := storage.NewMemory(nil, 4, 1e9)
	c, err := New(Config{
		Platform: testPlatform(nodes, clients+1),
		Meta:     testMeta(t),
		Fanout:   2,
		Store:    store,
		// 1 dies at it 1 (3,4 → 0); 2 dies at it 3 (5,6 → 0).
		Failures: NewFailureSchedule().Add(1, 1).Add(2, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, c, clients, iters)
	c.WaitIteration(iters - 1)
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.NodesFailed != 2 {
		t.Errorf("NodesFailed = %d, want 2", st.NodesFailed)
	}
	if st.ReroutedEdges != 4 {
		t.Errorf("ReroutedEdges = %d, want 4", st.ReroutedEdges)
	}
	// Final iteration: everything except the two dead nodes.
	obj, ok := store.Object(fmt.Sprintf("clustertest-root000-it%06d", iters-1))
	if !ok {
		t.Fatal("missing final object")
	}
	b, err := DecodeBatch(obj)
	if err != nil {
		t.Fatal(err)
	}
	covered := map[int]bool{}
	for _, blk := range b.Blocks {
		covered[blk.Node] = true
	}
	for _, n := range []int{0, 3, 4, 5, 6, 7, 8} {
		if !covered[n] {
			t.Fatalf("final iteration misses live node %d: %v", n, covered)
		}
	}
}

// TestPartialIterationsCountedOncePerIteration is the regression test
// for the double-counting bug: one straggler iteration flowing through
// a depth-3 tree used to be counted once per ancestor holding a
// pending entry; it must count once.
func TestPartialIterationsCountedOncePerIteration(t *testing.T) {
	const nodes, clients = 7, 1
	store := storage.NewMemory(nil, 4, 1e9)
	c, err := New(Config{
		Platform: testPlatform(nodes, clients+1),
		Meta:     testMeta(t),
		Fanout:   2, // depth 3: 0 → {1,2} → {3,4,5,6}
		Store:    store,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := c.Tree().Depth(); d != 3 {
		t.Fatalf("depth = %d, want 3", d)
	}
	// Every node completes iteration 0; only leaf node 3 produces
	// iteration 1 — a straggler that climbs through 1 and 0.
	for n := 0; n < nodes; n++ {
		cl := c.Client(n, 0)
		if err := cl.Write("theta", 0, payload(n, 0, 0)); err != nil {
			t.Fatal(err)
		}
		cl.EndIteration(0)
	}
	cl := c.Client(3, 0)
	if err := cl.Write("theta", 1, payload(3, 0, 1)); err != nil {
		t.Fatal(err)
	}
	cl.EndIteration(1)
	c.WaitIteration(0)
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.PartialIterations != 1 {
		t.Fatalf("PartialIterations = %d, want 1 (straggler counted once, not per ancestor)",
			st.PartialIterations)
	}
	// The straggler data itself must have been stored, not dropped.
	obj, ok := store.Object("clustertest-root000-it000001")
	if !ok {
		t.Fatal("straggler iteration not stored")
	}
	b, err := DecodeBatch(obj)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Blocks) != 1 || b.Blocks[0].Node != 3 {
		t.Fatalf("straggler object wrong: %+v", b.Blocks)
	}
	if frac := st.Completeness[1]; frac != 1.0/nodes {
		t.Errorf("Completeness[1] = %v, want %v", frac, 1.0/nodes)
	}
}

// TestHookSeesNormalizedOrder: hooks must observe blocks in the same
// (node, source, variable) order EncodeBatch stores, not arrival order.
func TestHookSeesNormalizedOrder(t *testing.T) {
	const nodes, clients, iters = 6, 2, 2
	type key struct{ node, source int }
	seen := map[int][]key{}
	hook := HookFunc{HookName: "order", Fn: func(it int, b *Batch) error {
		for _, blk := range b.Blocks {
			seen[it] = append(seen[it], key{blk.Node, blk.Source})
		}
		return nil
	}}
	c, err := New(Config{
		Platform: testPlatform(nodes, clients+1),
		Meta:     testMeta(t),
		Fanout:   3,
		Store:    storage.NewMemory(nil, 4, 1e9),
		Hooks:    []Hook{hook},
	})
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, c, clients, iters)
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	for it := 0; it < iters; it++ {
		got := seen[it]
		if len(got) != nodes*clients {
			t.Fatalf("iteration %d: hook saw %d blocks", it, len(got))
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool {
			if got[i].node != got[j].node {
				return got[i].node < got[j].node
			}
			return got[i].source < got[j].source
		}) {
			t.Fatalf("iteration %d: hook saw unnormalized order %v", it, got)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestClusterAllRootsDead: when every root dies, WaitIteration must
// return instead of blocking on iterations nothing will ever store.
func TestClusterAllRootsDead(t *testing.T) {
	const nodes, clients, iters = 3, 1, 2
	store := storage.NewMemory(nil, 4, 1e9)
	c, err := New(Config{
		Platform: testPlatform(nodes, clients+1),
		Meta:     testMeta(t),
		Fanout:   2,
		Roots:    3, // every node its own (childless) root
		Store:    store,
		Failures: NewFailureSchedule().Add(0, 0).Add(1, 0).Add(2, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, c, clients, iters)
	done := make(chan struct{})
	go func() {
		c.WaitIteration(iters - 1)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("WaitIteration wedged with every root dead")
	}
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.NodesFailed != nodes {
		t.Errorf("NodesFailed = %d, want %d", st.NodesFailed, nodes)
	}
	if st.IterationsCompleted != 0 {
		t.Errorf("IterationsCompleted = %d with no surviving roots", st.IterationsCompleted)
	}
	if st.ObjectsWritten != 0 {
		t.Errorf("ObjectsWritten = %d, want 0", st.ObjectsWritten)
	}
}
