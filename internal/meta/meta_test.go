package meta

import (
	"testing"
	"testing/quick"
)

const sampleXML = `
<simulation name="cm1-proxy">
  <architecture>
    <dedicated cores="1"/>
    <buffer size="67108864"/>
    <queue size="128"/>
  </architecture>
  <data>
    <parameter name="nx" value="16"/>
    <parameter name="ny" value="16"/>
    <parameter name="nz" value="8"/>
    <layout name="grid3d" type="float64" dimensions="nz,ny,nx"/>
    <layout name="grid3d_stag" type="float64" dimensions="nz+1,ny,nx"/>
    <layout name="profile" type="float32" dimensions="nz*2"/>
    <mesh name="domain" type="rectilinear" origin="0,0,0" spacing="1,1,0.5"/>
    <variable name="theta" layout="grid3d" mesh="domain" unit="K" centering="zonal"/>
    <variable name="w" layout="grid3d_stag" mesh="domain" unit="m/s"/>
    <variable name="prof" layout="profile"/>
  </data>
  <plugins>
    <plugin name="sdf-writer" event="end_iteration" dir="out" codec="none"/>
    <plugin name="stats" event="compute_stats"/>
  </plugins>
</simulation>`

func mustParse(t *testing.T) *Config {
	t.Helper()
	cfg, err := ParseString(sampleXML)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestParseArchitecture(t *testing.T) {
	cfg := mustParse(t)
	if cfg.Name != "cm1-proxy" {
		t.Errorf("name = %q", cfg.Name)
	}
	a := cfg.Architecture
	if a.DedicatedCores != 1 || a.BufferSize != 67108864 || a.QueueSize != 128 {
		t.Errorf("architecture = %+v", a)
	}
}

func TestParseLayouts(t *testing.T) {
	cfg := mustParse(t)
	g := cfg.Layouts["grid3d"]
	if g == nil || g.Type != Float64 {
		t.Fatalf("grid3d = %+v", g)
	}
	if g.Elems() != 8*16*16 {
		t.Errorf("grid3d elems = %d", g.Elems())
	}
	if g.SizeBytes() != 8*16*16*8 {
		t.Errorf("grid3d bytes = %d", g.SizeBytes())
	}
	stag := cfg.Layouts["grid3d_stag"]
	if stag.Dims[0] != 9 {
		t.Errorf("nz+1 resolved to %d", stag.Dims[0])
	}
	prof := cfg.Layouts["profile"]
	if prof.Dims[0] != 16 || prof.Type != Float32 {
		t.Errorf("profile = %+v", prof)
	}
}

func TestParseVariablesAndMeshes(t *testing.T) {
	cfg := mustParse(t)
	v := cfg.Variables["theta"]
	if v == nil || v.Layout.Name != "grid3d" || v.Mesh != "domain" || v.Unit != "K" {
		t.Fatalf("theta = %+v", v)
	}
	m := cfg.Meshes["domain"]
	if m.MeshType != "rectilinear" || len(m.Spacing) != 3 || m.Spacing[2] != 0.5 {
		t.Fatalf("mesh = %+v", m)
	}
	order := cfg.VariableNames()
	if len(order) != 3 || order[0] != "theta" || order[2] != "prof" {
		t.Fatalf("variable order = %v", order)
	}
}

func TestParsePlugins(t *testing.T) {
	cfg := mustParse(t)
	if len(cfg.Plugins) != 2 {
		t.Fatalf("plugins = %+v", cfg.Plugins)
	}
	p := cfg.Plugins[0]
	if p.Name != "sdf-writer" || p.Event != "end_iteration" || p.Config["dir"] != "out" {
		t.Fatalf("plugin 0 = %+v", p)
	}
	if cfg.Plugins[1].Event != "compute_stats" {
		t.Fatalf("plugin 1 = %+v", cfg.Plugins[1])
	}
}

func TestIterationBytes(t *testing.T) {
	cfg := mustParse(t)
	want := 8*16*16*8 + 9*16*16*8 + 16*4
	if got := cfg.IterationBytes(); got != want {
		t.Fatalf("IterationBytes = %d, want %d", got, want)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown layout type": `<simulation><data><layout name="l" type="complex128" dimensions="4"/></data></simulation>`,
		"unknown parameter":   `<simulation><data><layout name="l" type="float64" dimensions="bogus"/></data></simulation>`,
		"zero dimension":      `<simulation><data><parameter name="n" value="0"/><layout name="l" type="float64" dimensions="n"/></data></simulation>`,
		"unknown layout ref":  `<simulation><data><variable name="v" layout="nope"/></data></simulation>`,
		"unknown mesh ref": `<simulation><data><layout name="l" type="float64" dimensions="4"/>` +
			`<variable name="v" layout="l" mesh="nope"/></data></simulation>`,
		"bad xml": `<simulation`,
	}
	for name, xml := range cases {
		if _, err := ParseString(xml); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestArchitectureDefaults(t *testing.T) {
	cfg, err := ParseString(`<simulation name="min"><data/></simulation>`)
	if err != nil {
		t.Fatal(err)
	}
	a := cfg.Architecture
	if a.DedicatedCores != 1 || a.BufferSize != 64<<20 || a.QueueSize != 256 {
		t.Fatalf("defaults = %+v", a)
	}
}

func TestTypeSizes(t *testing.T) {
	sizes := map[Type]int{Float32: 4, Float64: 8, Int32: 4, Int64: 8, Uint8: 1, Type("x"): 0}
	for typ, want := range sizes {
		if got := typ.Size(); got != want {
			t.Errorf("%s size = %d, want %d", typ, got, want)
		}
	}
	if Type("nope").Valid() {
		t.Error("invalid type reported valid")
	}
}

// TestLayoutSizeProperty: layout byte size always equals the product of
// dims times element size, for arbitrary dimension values.
func TestLayoutSizeProperty(t *testing.T) {
	if err := quick.Check(func(a, b, c uint8) bool {
		da, db, dc := int(a%32)+1, int(b%32)+1, int(c%32)+1
		l := Layout{Type: Float64, Dims: []int{da, db, dc}}
		return l.SizeBytes() == da*db*dc*8
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlockKeyString(t *testing.T) {
	k := BlockKey{Variable: "theta", Source: 3, Iteration: 12}
	if k.String() != "theta/it0012/src0003" {
		t.Fatalf("key = %q", k.String())
	}
}

func TestIndexPutGet(t *testing.T) {
	ix := NewIndex()
	key := BlockKey{Variable: "u", Source: 1, Iteration: 0}
	ix.Put(BlockRef{Key: key, Size: 100})
	ref, ok := ix.Get(key)
	if !ok || ref.Size != 100 {
		t.Fatalf("get = %+v ok=%v", ref, ok)
	}
	if _, ok := ix.Get(BlockKey{Variable: "v"}); ok {
		t.Fatal("found nonexistent block")
	}
	old, replaced := ix.Put(BlockRef{Key: key, Size: 200})
	if !replaced || old.Size != 100 {
		t.Fatalf("replace: old=%+v replaced=%v", old, replaced)
	}
	if ix.Len() != 1 {
		t.Fatalf("len = %d", ix.Len())
	}
}

func TestIndexIterationQueriesSorted(t *testing.T) {
	ix := NewIndex()
	for _, src := range []int{3, 1, 2} {
		for _, v := range []string{"w", "u"} {
			ix.Put(BlockRef{Key: BlockKey{Variable: v, Source: src, Iteration: 7}})
		}
	}
	ix.Put(BlockRef{Key: BlockKey{Variable: "u", Source: 0, Iteration: 8}})
	refs := ix.Iteration(7)
	if len(refs) != 6 {
		t.Fatalf("iteration 7 has %d blocks", len(refs))
	}
	for i := 1; i < len(refs); i++ {
		a, b := refs[i-1].Key, refs[i].Key
		if a.Variable > b.Variable || (a.Variable == b.Variable && a.Source >= b.Source) {
			t.Fatalf("unsorted refs: %v before %v", a, b)
		}
	}
	us := ix.Variable("u", 7)
	if len(us) != 3 || us[0].Key.Source != 1 || us[2].Key.Source != 3 {
		t.Fatalf("Variable(u,7) = %+v", us)
	}
}

func TestIndexRemoveIteration(t *testing.T) {
	ix := NewIndex()
	ix.Put(BlockRef{Key: BlockKey{Variable: "u", Source: 0, Iteration: 1}})
	ix.Put(BlockRef{Key: BlockKey{Variable: "u", Source: 0, Iteration: 2}})
	removed := ix.RemoveIteration(1)
	if len(removed) != 1 || removed[0].Key.Iteration != 1 {
		t.Fatalf("removed = %+v", removed)
	}
	if ix.Len() != 1 {
		t.Fatalf("len after remove = %d", ix.Len())
	}
}
