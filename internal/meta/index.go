package meta

import (
	"sort"
	"sync"
)

// BlockRef is one indexed block: its identity plus an opaque handle to
// the data (in practice a *shm.Block, kept opaque to avoid a dependency
// from the description layer onto the memory layer).
type BlockRef struct {
	Key  BlockKey
	Size int
	Data interface{}
}

// Index is the thread-safe metadata structure through which dedicated
// cores search for the blocks written by simulation cores (§III.B: "all
// data blocks are indexed in a metadata structure").
type Index struct {
	mu     sync.RWMutex
	blocks map[BlockKey]BlockRef
}

// NewIndex creates an empty block index.
func NewIndex() *Index {
	return &Index{blocks: make(map[BlockKey]BlockRef)}
}

// Put registers a block. A block with the same key replaces the previous
// one and the old ref is returned so the caller can release its storage.
func (ix *Index) Put(ref BlockRef) (old BlockRef, replaced bool) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	old, replaced = ix.blocks[ref.Key]
	ix.blocks[ref.Key] = ref
	return old, replaced
}

// Get returns the block with the given key.
func (ix *Index) Get(key BlockKey) (BlockRef, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ref, ok := ix.blocks[key]
	return ref, ok
}

// Len returns the number of indexed blocks.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.blocks)
}

// Iteration returns every block of the given iteration, sorted by
// (variable, source) for deterministic consumption.
func (ix *Index) Iteration(it int) []BlockRef {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var out []BlockRef
	for k, ref := range ix.blocks {
		if k.Iteration == it {
			out = append(out, ref)
		}
	}
	sortRefs(out)
	return out
}

// Variable returns every block of one variable at one iteration, sorted
// by source.
func (ix *Index) Variable(name string, it int) []BlockRef {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var out []BlockRef
	for k, ref := range ix.blocks {
		if k.Iteration == it && k.Variable == name {
			out = append(out, ref)
		}
	}
	sortRefs(out)
	return out
}

// RemoveIteration removes and returns all blocks of an iteration (the
// garbage-collection step after a dedicated core has consumed them).
func (ix *Index) RemoveIteration(it int) []BlockRef {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	var out []BlockRef
	for k, ref := range ix.blocks {
		if k.Iteration == it {
			out = append(out, ref)
			delete(ix.blocks, k)
		}
	}
	sortRefs(out)
	return out
}

func sortRefs(refs []BlockRef) {
	sort.Slice(refs, func(i, j int) bool {
		a, b := refs[i].Key, refs[j].Key
		if a.Variable != b.Variable {
			return a.Variable < b.Variable
		}
		return a.Source < b.Source
	})
}
