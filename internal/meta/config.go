package meta

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Config is the parsed Damaris XML description.
type Config struct {
	Name         string
	Architecture Architecture
	Parameters   map[string]int
	Layouts      map[string]*Layout
	Variables    map[string]*Variable
	Meshes       map[string]*Mesh
	Plugins      []PluginSpec

	varOrder []string // declaration order, for stable iteration
}

// Architecture holds the per-node deployment parameters.
type Architecture struct {
	DedicatedCores int
	BufferSize     int // shared-memory segment bytes
	QueueSize      int // event queue capacity
}

// Layout describes the shape of a variable's blocks.
type Layout struct {
	Name string
	Type Type
	// Dims are the resolved dimension extents, slowest-varying first.
	Dims []int
}

// Elems returns the number of elements in one block of this layout.
func (l *Layout) Elems() int {
	n := 1
	for _, d := range l.Dims {
		n *= d
	}
	return n
}

// SizeBytes returns the byte size of one block of this layout.
func (l *Layout) SizeBytes() int { return l.Elems() * l.Type.Size() }

// Variable is one named quantity the simulation shares.
type Variable struct {
	Name   string
	Layout *Layout
	Mesh   string // optional mesh name
	Unit   string
	// Centering is "nodal" or "zonal" (visualization hint).
	Centering string
}

// Mesh describes the grid variables live on.
type Mesh struct {
	Name     string
	MeshType string // "rectilinear", "uniform", ...
	Origin   []float64
	Spacing  []float64
}

// PluginSpec binds a named action to an event.
type PluginSpec struct {
	Name   string // registered action name
	Event  string // "end_iteration" or a custom signal name
	Config map[string]string
}

// xml wire structures

type xmlRoot struct {
	XMLName      xml.Name    `xml:"simulation"`
	Name         string      `xml:"name,attr"`
	Architecture xmlArch     `xml:"architecture"`
	Data         xmlData     `xml:"data"`
	Plugins      []xmlPlugin `xml:"plugins>plugin"`
}

type xmlArch struct {
	Dedicated struct {
		Cores int `xml:"cores,attr"`
	} `xml:"dedicated"`
	Buffer struct {
		Size int `xml:"size,attr"`
	} `xml:"buffer"`
	Queue struct {
		Size int `xml:"size,attr"`
	} `xml:"queue"`
}

type xmlData struct {
	Parameters []xmlParam  `xml:"parameter"`
	Layouts    []xmlLayout `xml:"layout"`
	Variables  []xmlVar    `xml:"variable"`
	Meshes     []xmlMesh   `xml:"mesh"`
}

type xmlParam struct {
	Name  string `xml:"name,attr"`
	Value int    `xml:"value,attr"`
}

type xmlLayout struct {
	Name       string `xml:"name,attr"`
	Type       string `xml:"type,attr"`
	Dimensions string `xml:"dimensions,attr"`
}

type xmlVar struct {
	Name      string `xml:"name,attr"`
	Layout    string `xml:"layout,attr"`
	Mesh      string `xml:"mesh,attr"`
	Unit      string `xml:"unit,attr"`
	Centering string `xml:"centering,attr"`
}

type xmlMesh struct {
	Name    string `xml:"name,attr"`
	Type    string `xml:"type,attr"`
	Origin  string `xml:"origin,attr"`
	Spacing string `xml:"spacing,attr"`
}

type xmlPlugin struct {
	Name   string     `xml:"name,attr"`
	Event  string     `xml:"event,attr"`
	Fields []xml.Attr `xml:",any,attr"`
}

// Parse reads a Damaris XML configuration.
func Parse(r io.Reader) (*Config, error) {
	var root xmlRoot
	if err := xml.NewDecoder(r).Decode(&root); err != nil {
		return nil, fmt.Errorf("meta: %w", err)
	}
	cfg := &Config{
		Name: root.Name,
		Architecture: Architecture{
			DedicatedCores: root.Architecture.Dedicated.Cores,
			BufferSize:     root.Architecture.Buffer.Size,
			QueueSize:      root.Architecture.Queue.Size,
		},
		Parameters: map[string]int{},
		Layouts:    map[string]*Layout{},
		Variables:  map[string]*Variable{},
		Meshes:     map[string]*Mesh{},
	}
	if cfg.Architecture.DedicatedCores <= 0 {
		cfg.Architecture.DedicatedCores = 1
	}
	if cfg.Architecture.BufferSize <= 0 {
		cfg.Architecture.BufferSize = 64 << 20
	}
	if cfg.Architecture.QueueSize <= 0 {
		cfg.Architecture.QueueSize = 256
	}
	for _, p := range root.Data.Parameters {
		cfg.Parameters[p.Name] = p.Value
	}
	for _, l := range root.Data.Layouts {
		dims, err := cfg.resolveDims(l.Dimensions)
		if err != nil {
			return nil, fmt.Errorf("meta: layout %q: %w", l.Name, err)
		}
		typ := Type(l.Type)
		if !typ.Valid() {
			return nil, fmt.Errorf("meta: layout %q: unknown type %q", l.Name, l.Type)
		}
		cfg.Layouts[l.Name] = &Layout{Name: l.Name, Type: typ, Dims: dims}
	}
	for _, m := range root.Data.Meshes {
		origin, err := parseFloats(m.Origin)
		if err != nil {
			return nil, fmt.Errorf("meta: mesh %q origin: %w", m.Name, err)
		}
		spacing, err := parseFloats(m.Spacing)
		if err != nil {
			return nil, fmt.Errorf("meta: mesh %q spacing: %w", m.Name, err)
		}
		cfg.Meshes[m.Name] = &Mesh{Name: m.Name, MeshType: m.Type, Origin: origin, Spacing: spacing}
	}
	for _, v := range root.Data.Variables {
		layout, ok := cfg.Layouts[v.Layout]
		if !ok {
			return nil, fmt.Errorf("meta: variable %q references unknown layout %q", v.Name, v.Layout)
		}
		if v.Mesh != "" {
			if _, ok := cfg.Meshes[v.Mesh]; !ok {
				return nil, fmt.Errorf("meta: variable %q references unknown mesh %q", v.Name, v.Mesh)
			}
		}
		cfg.Variables[v.Name] = &Variable{
			Name: v.Name, Layout: layout, Mesh: v.Mesh, Unit: v.Unit, Centering: v.Centering,
		}
		cfg.varOrder = append(cfg.varOrder, v.Name)
	}
	for _, p := range root.Plugins {
		spec := PluginSpec{Name: p.Name, Event: p.Event, Config: map[string]string{}}
		for _, a := range p.Fields {
			if a.Name.Local != "name" && a.Name.Local != "event" {
				spec.Config[a.Name.Local] = a.Value
			}
		}
		if spec.Event == "" {
			spec.Event = "end_iteration"
		}
		cfg.Plugins = append(cfg.Plugins, spec)
	}
	return cfg, nil
}

// ParseString parses an XML configuration held in a string.
func ParseString(s string) (*Config, error) { return Parse(strings.NewReader(s)) }

// VariableNames returns the variables in declaration order.
func (c *Config) VariableNames() []string {
	return append([]string(nil), c.varOrder...)
}

// IterationBytes returns the total bytes one writer produces per
// iteration if it writes every declared variable once.
func (c *Config) IterationBytes() int {
	total := 0
	for _, name := range c.varOrder {
		total += c.Variables[name].Layout.SizeBytes()
	}
	return total
}

// resolveDims parses a dimensions attribute like "nx,ny+1,4" where each
// term is an integer, a parameter name, or parameter±integer /
// parameter*integer.
func (c *Config) resolveDims(spec string) ([]int, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("empty dimensions")
	}
	parts := strings.Split(spec, ",")
	dims := make([]int, 0, len(parts))
	for _, part := range parts {
		v, err := c.evalDim(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if v <= 0 {
			return nil, fmt.Errorf("non-positive dimension %q = %d", part, v)
		}
		dims = append(dims, v)
	}
	return dims, nil
}

func (c *Config) evalDim(expr string) (int, error) {
	for _, op := range []byte{'+', '-', '*'} {
		if i := strings.IndexByte(expr, op); i > 0 {
			lhs, err := c.evalDim(strings.TrimSpace(expr[:i]))
			if err != nil {
				return 0, err
			}
			rhs, err := c.evalDim(strings.TrimSpace(expr[i+1:]))
			if err != nil {
				return 0, err
			}
			switch op {
			case '+':
				return lhs + rhs, nil
			case '-':
				return lhs - rhs, nil
			default:
				return lhs * rhs, nil
			}
		}
	}
	if n, err := strconv.Atoi(expr); err == nil {
		return n, nil
	}
	if v, ok := c.Parameters[expr]; ok {
		return v, nil
	}
	return 0, fmt.Errorf("unknown dimension term %q", expr)
}

func parseFloats(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}
