// Package meta implements the high-level data description at the center
// of the Damaris design (§III.A): an external XML file describes the
// variables a simulation shares — their types, layouts (dimensions
// parameterized by named values), meshes — and the plugins that consume
// them. It also provides the metadata index through which dedicated cores
// find the blocks written by simulation cores (§III.B).
package meta

import "fmt"

// Type is the element type of a variable.
type Type string

// Supported element types.
const (
	Float32 Type = "float32"
	Float64 Type = "float64"
	Int32   Type = "int32"
	Int64   Type = "int64"
	Uint8   Type = "uint8"
)

// Size returns the byte size of one element, or 0 for an unknown type.
func (t Type) Size() int {
	switch t {
	case Float32, Int32:
		return 4
	case Float64, Int64:
		return 8
	case Uint8:
		return 1
	}
	return 0
}

// Valid reports whether t names a supported type.
func (t Type) Valid() bool { return t.Size() != 0 }

// BlockKey identifies one block of data in the metadata index, following
// §III.B: "blocks are identified by a block identifier, the writer's
// process identifier, and the associated time step".
type BlockKey struct {
	Variable  string
	Source    int // writer identifier (rank or core index)
	Iteration int
}

// String renders the key as variable/itNNNN/srcNNNN.
func (k BlockKey) String() string {
	return fmt.Sprintf("%s/it%04d/src%04d", k.Variable, k.Iteration, k.Source)
}
