// Package baselines implements the two state-of-the-art I/O approaches
// the paper compares against (§II), in executable form over the mpi and
// sdf substrates:
//
//   - file-per-process: every rank writes its own SDF file — no
//     synchronization, many small files;
//   - collective two-phase I/O: ranks ship their data to node-level
//     aggregators, aggregators forward to a root writer that produces a
//     single shared file (the data reorganization of "two-phase I/O",
//     Thakur et al.).
//
// The proxy applications use these interchangeably with the Damaris
// client, so examples and integration tests can compare all three paths
// on real data.
package baselines

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/compress"
	"repro/internal/insitu"
	"repro/internal/mpi"
	"repro/internal/sdf"
)

// WriteFPP writes this rank's fields to its own file
// dir/<sim>-rank<r>-it<n>.sdf and returns the file path.
func WriteFPP(comm *mpi.Comm, dir, sim string, iteration int, fields []insitu.Field) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	rank := 0
	if comm != nil {
		rank = comm.Rank()
	}
	path := filepath.Join(dir, fmt.Sprintf("%s-rank%04d-it%06d.sdf", sim, rank, iteration))
	w, err := sdf.Create(path)
	if err != nil {
		return "", err
	}
	w.SetAttrInt("", "iteration", int64(iteration))
	w.SetAttrInt("", "rank", int64(rank))
	for _, f := range fields {
		if err := writeField(w, f, rank); err != nil {
			w.Close()
			return "", err
		}
	}
	return path, w.Close()
}

// collective message tags.
const (
	tagToAggregator = 301
	tagToRoot       = 302
)

// WriteCollective performs two-phase collective I/O into one shared file
// dir/<sim>-it<n>.sdf: phase one ships each rank's payload to its node
// aggregator (local rank 0 within groups of coresPerNode), phase two
// ships aggregated node payloads to global rank 0, which writes the
// file. All ranks must call it; the path is returned on every rank. Like
// MPI_File_write_all, it returns only once the write completed.
func WriteCollective(comm *mpi.Comm, coresPerNode int, dir, sim string, iteration int, fields []insitu.Field) (string, error) {
	if comm == nil {
		return "", fmt.Errorf("baselines: collective I/O needs a communicator")
	}
	if coresPerNode <= 0 || comm.Size()%coresPerNode != 0 {
		return "", fmt.Errorf("baselines: %d ranks not divisible into nodes of %d", comm.Size(), coresPerNode)
	}
	path := filepath.Join(dir, fmt.Sprintf("%s-it%06d.sdf", sim, iteration))

	payload := encodeFields(comm.Rank(), fields)
	node := comm.Rank() / coresPerNode
	aggregator := node * coresPerNode
	isAggregator := comm.Rank() == aggregator

	// Phase 1: node-local aggregation.
	var nodePayloads [][]byte
	if isAggregator {
		nodePayloads = append(nodePayloads, payload)
		for l := 1; l < coresPerNode; l++ {
			data, _ := comm.Recv(aggregator+l, tagToAggregator)
			nodePayloads = append(nodePayloads, data)
		}
	} else {
		comm.Send(aggregator, tagToAggregator, payload)
	}

	// Phase 2: aggregators forward to the writer (global rank 0).
	nNodes := comm.Size() / coresPerNode
	if comm.Rank() == 0 {
		all := [][]byte{}
		all = append(all, nodePayloads...)
		for n := 1; n < nNodes; n++ {
			for l := 0; l < coresPerNode; l++ {
				data, _ := comm.Recv(n*coresPerNode, tagToRoot)
				all = append(all, data)
				_ = l
			}
		}
		if err := writeShared(path, sim, iteration, all); err != nil {
			// Surface the error on every rank via the barrier payload
			// being absent; simplest robust policy: panic in the writer
			// is worse, so broadcast a status byte.
			comm.Bcast(0, []byte{1})
			return "", err
		}
		comm.Bcast(0, []byte{0})
	} else {
		if isAggregator {
			for _, p := range nodePayloads {
				comm.Send(0, tagToRoot, p)
			}
		}
		status := comm.Bcast(0, nil)
		if len(status) == 1 && status[0] == 1 {
			return "", fmt.Errorf("baselines: collective write failed on the root rank")
		}
	}
	comm.Barrier()
	return path, nil
}

// encodeFields serializes one rank's fields as a length-prefixed stream
// the writer side can decode without knowing the layout a priori.
func encodeFields(rank int, fields []insitu.Field) []byte {
	var out []byte
	out = append(out, byte(rank), byte(rank>>8), byte(rank>>16), byte(rank>>24))
	out = append(out, byte(len(fields)))
	for _, f := range fields {
		name := []byte(f.Name)
		out = append(out, byte(len(name)))
		out = append(out, name...)
		for _, d := range []int{f.NZ, f.NY, f.NX} {
			out = append(out, byte(d), byte(d>>8), byte(d>>16), byte(d>>24))
		}
		out = append(out, compress.Float64Bytes(f.Data)...)
	}
	return out
}

// decodeFields is the inverse of encodeFields.
func decodeFields(buf []byte) (rank int, fields []insitu.Field, err error) {
	defer func() {
		if recover() != nil {
			err = fmt.Errorf("baselines: corrupt field payload")
		}
	}()
	rank = int(buf[0]) | int(buf[1])<<8 | int(buf[2])<<16 | int(buf[3])<<24
	n := int(buf[4])
	pos := 5
	for f := 0; f < n; f++ {
		nameLen := int(buf[pos])
		pos++
		name := string(buf[pos : pos+nameLen])
		pos += nameLen
		dims := make([]int, 3)
		for d := range dims {
			dims[d] = int(buf[pos]) | int(buf[pos+1])<<8 | int(buf[pos+2])<<16 | int(buf[pos+3])<<24
			pos += 4
		}
		elems := dims[0] * dims[1] * dims[2]
		data := compress.BytesFloat64(buf[pos : pos+elems*8])
		pos += elems * 8
		fields = append(fields, insitu.Field{Name: name, NZ: dims[0], NY: dims[1], NX: dims[2], Data: data})
	}
	return rank, fields, nil
}

// writeShared writes all ranks' payloads into one shared SDF file.
func writeShared(path, sim string, iteration int, payloads [][]byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	w, err := sdf.Create(path)
	if err != nil {
		return err
	}
	w.SetAttrInt("", "iteration", int64(iteration))
	w.SetAttrString("", "simulation", sim)
	for _, p := range payloads {
		rank, fields, err := decodeFields(p)
		if err != nil {
			w.Close()
			return err
		}
		for _, f := range fields {
			if err := writeField(w, f, rank); err != nil {
				w.Close()
				return err
			}
		}
	}
	return w.Close()
}

func writeField(w *sdf.Writer, f insitu.Field, rank int) error {
	if err := f.Validate(); err != nil {
		return err
	}
	path := fmt.Sprintf("%s/src%04d", f.Name, rank)
	return w.WriteDataset(path, "float64", []int{f.NZ, f.NY, f.NX},
		compress.Float64Bytes(f.Data), "none")
}
