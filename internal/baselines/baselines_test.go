package baselines

import (
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/insitu"
	"repro/internal/mpi"
	"repro/internal/sdf"
)

func testField(name string, seed float64) insitu.Field {
	f := insitu.NewField(name, 2, 3, 4)
	for i := range f.Data {
		f.Data[i] = seed + float64(i)
	}
	return f
}

func TestWriteFPPSerial(t *testing.T) {
	dir := t.TempDir()
	path, err := WriteFPP(nil, dir, "sim", 3, []insitu.Field{testField("u", 10)})
	if err != nil {
		t.Fatal(err)
	}
	r, err := sdf.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	vals, err := r.ReadFloat64s("u/src0000")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 24 || vals[0] != 10 {
		t.Fatalf("read back %d values, first %v", len(vals), vals[0])
	}
	if it, _ := r.AttrInt("", "iteration"); it != 3 {
		t.Fatalf("iteration attr = %d", it)
	}
}

func TestWriteFPPOneFilePerRank(t *testing.T) {
	dir := t.TempDir()
	mpi.Run(4, func(c *mpi.Comm) {
		if _, err := WriteFPP(c, dir, "sim", 0, []insitu.Field{testField("u", float64(c.Rank()))}); err != nil {
			t.Error(err)
		}
	})
	files, _ := filepath.Glob(filepath.Join(dir, "*.sdf"))
	if len(files) != 4 {
		t.Fatalf("FPP produced %d files, want 4", len(files))
	}
}

func TestWriteCollectiveSharedFile(t *testing.T) {
	dir := t.TempDir()
	var mu sync.Mutex
	paths := map[string]bool{}
	mpi.Run(8, func(c *mpi.Comm) {
		fields := []insitu.Field{
			testField("u", float64(100*c.Rank())),
			testField("p", float64(1000*c.Rank())),
		}
		path, err := WriteCollective(c, 4, dir, "cavity", 7, fields)
		if err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		paths[path] = true
		mu.Unlock()
	})
	if len(paths) != 1 {
		t.Fatalf("collective produced %d distinct paths", len(paths))
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.sdf"))
	if len(files) != 1 {
		t.Fatalf("collective produced %d files, want 1 shared file", len(files))
	}
	r, err := sdf.Open(files[0])
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// 8 ranks × 2 variables = 16 datasets.
	if got := len(r.Datasets()); got != 16 {
		t.Fatalf("shared file has %d datasets, want 16", got)
	}
	// Every rank's data must be present and correct.
	for rank := 0; rank < 8; rank++ {
		vals, err := r.ReadFloat64s(filepath.Join("u", "src000"+string(rune('0'+rank))))
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
		if vals[0] != float64(100*rank) {
			t.Fatalf("rank %d data = %v", rank, vals[0])
		}
	}
}

func TestWriteCollectiveValidation(t *testing.T) {
	if _, err := WriteCollective(nil, 4, t.TempDir(), "x", 0, nil); err == nil {
		t.Fatal("nil comm accepted")
	}
	mpi.Run(6, func(c *mpi.Comm) {
		if _, err := WriteCollective(c, 4, t.TempDir(), "x", 0, nil); err == nil {
			t.Error("non-divisible node size accepted")
		}
	})
}

func TestEncodeDecodeFields(t *testing.T) {
	fields := []insitu.Field{testField("alpha", 1), testField("beta", 2)}
	rank, decoded, err := decodeFields(encodeFields(42, fields))
	if err != nil {
		t.Fatal(err)
	}
	if rank != 42 || len(decoded) != 2 {
		t.Fatalf("rank=%d fields=%d", rank, len(decoded))
	}
	for i, f := range decoded {
		if f.Name != fields[i].Name || f.Len() != fields[i].Len() {
			t.Fatalf("field %d = %+v", i, f)
		}
		for j := range f.Data {
			if f.Data[j] != fields[i].Data[j] {
				t.Fatalf("field %d data mismatch at %d", i, j)
			}
		}
	}
	if _, _, err := decodeFields([]byte{1, 2}); err == nil {
		t.Fatal("corrupt payload accepted")
	}
}
