// Package insitu is the analysis and visualization library of the
// reproduction — the stand-in for the VisIt backend the paper embeds in
// Damaris (§V). It provides the kernels an in-situ pipeline needs
// (moments, histograms, isosurface cell classification, orthographic
// rendering to PGM images) over 3-D scalar fields, independent of how
// the coupling is done: synchronously from the simulation loop
// (VisIt-style) or asynchronously from a dedicated core (Damaris-style).
package insitu

import (
	"fmt"
	"math"
)

// Field is a 3-D scalar field in z-slowest (k, j, i) layout.
type Field struct {
	Name string
	NZ   int
	NY   int
	NX   int
	Data []float64
}

// NewField allocates a zero field of the given shape.
func NewField(name string, nz, ny, nx int) Field {
	return Field{Name: name, NZ: nz, NY: ny, NX: nx, Data: make([]float64, nz*ny*nx)}
}

// Len returns the number of elements.
func (f Field) Len() int { return f.NZ * f.NY * f.NX }

// Validate checks the dims/data consistency.
func (f Field) Validate() error {
	if f.NZ <= 0 || f.NY <= 0 || f.NX <= 0 {
		return fmt.Errorf("insitu: non-positive dims %dx%dx%d", f.NZ, f.NY, f.NX)
	}
	if len(f.Data) != f.Len() {
		return fmt.Errorf("insitu: field %q has %d values for %dx%dx%d",
			f.Name, len(f.Data), f.NZ, f.NY, f.NX)
	}
	return nil
}

// At returns the value at (k, j, i).
func (f Field) At(k, j, i int) float64 { return f.Data[(k*f.NY+j)*f.NX+i] }

// Set stores a value at (k, j, i).
func (f *Field) Set(k, j, i int, v float64) { f.Data[(k*f.NY+j)*f.NX+i] = v }

// Moments summarizes a field.
type Moments struct {
	Min, Max, Mean, Std float64
	N                   int
}

// ComputeMoments returns min/max/mean/std of the field.
func ComputeMoments(f Field) Moments {
	if len(f.Data) == 0 {
		return Moments{}
	}
	min, max := f.Data[0], f.Data[0]
	sum, sumSq := 0.0, 0.0
	for _, v := range f.Data {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		sum += v
		sumSq += v * v
	}
	n := float64(len(f.Data))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Moments{Min: min, Max: max, Mean: mean, Std: math.Sqrt(variance), N: len(f.Data)}
}

// Histogram bins the field's values into nbins equal-width bins between
// lo and hi; values outside clamp to the edge bins.
func Histogram(f Field, nbins int, lo, hi float64) []int {
	if nbins <= 0 || hi <= lo {
		return nil
	}
	bins := make([]int, nbins)
	scale := float64(nbins) / (hi - lo)
	for _, v := range f.Data {
		b := int((v - lo) * scale)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		bins[b]++
	}
	return bins
}

// IsosurfaceCells counts the grid cells straddled by the isosurface at
// the given level — the cell-classification pass of marching cubes,
// which is the work an isosurface extraction is dominated by.
func IsosurfaceCells(f Field, iso float64) int {
	count := 0
	for k := 0; k+1 < f.NZ; k++ {
		for j := 0; j+1 < f.NY; j++ {
			for i := 0; i+1 < f.NX; i++ {
				below, above := false, false
				for c := 0; c < 8; c++ {
					v := f.At(k+(c&1), j+((c>>1)&1), i+((c>>2)&1))
					if v < iso {
						below = true
					} else {
						above = true
					}
				}
				if below && above {
					count++
				}
			}
		}
	}
	return count
}

// Image is an 8-bit grayscale image.
type Image struct {
	W, H int
	Pix  []byte
}

// RenderMaxIntensity produces a maximum-intensity orthographic
// projection of the field along z, normalized to the field's range —
// the simplest honest renderer an in-situ pipeline can ship.
func RenderMaxIntensity(f Field) Image {
	img := Image{W: f.NX, H: f.NY, Pix: make([]byte, f.NX*f.NY)}
	m := ComputeMoments(f)
	span := m.Max - m.Min
	if span == 0 {
		span = 1
	}
	for j := 0; j < f.NY; j++ {
		for i := 0; i < f.NX; i++ {
			max := math.Inf(-1)
			for k := 0; k < f.NZ; k++ {
				if v := f.At(k, j, i); v > max {
					max = v
				}
			}
			img.Pix[j*f.NX+i] = byte(255 * (max - m.Min) / span)
		}
	}
	return img
}

// EncodePGM serializes the image as a binary PGM (P5) file.
func (img Image) EncodePGM() []byte {
	header := fmt.Sprintf("P5\n%d %d\n255\n", img.W, img.H)
	out := make([]byte, 0, len(header)+len(img.Pix))
	out = append(out, header...)
	out = append(out, img.Pix...)
	return out
}

// Result is what one analysis pass produces.
type Result struct {
	Field     string
	Iteration int
	Moments   Moments
	Histogram []int
	IsoCells  int
	Image     Image
}

// Pipeline is a configured analysis: which kernels to run on each field.
type Pipeline struct {
	Bins     int
	IsoLevel float64
	Render   bool
}

// DefaultPipeline mirrors the paper's visualization use case: histogram,
// isosurface and a rendered image.
func DefaultPipeline() Pipeline {
	return Pipeline{Bins: 32, IsoLevel: 0.5, Render: true}
}

// Analyze runs the pipeline on one field.
func (p Pipeline) Analyze(f Field, iteration int) (Result, error) {
	if err := f.Validate(); err != nil {
		return Result{}, err
	}
	m := ComputeMoments(f)
	res := Result{Field: f.Name, Iteration: iteration, Moments: m}
	if p.Bins > 0 {
		lo, hi := m.Min, m.Max
		if hi == lo {
			hi = lo + 1
		}
		res.Histogram = Histogram(f, p.Bins, lo, hi)
	}
	res.IsoCells = IsosurfaceCells(f, m.Min+(m.Max-m.Min)*p.IsoLevel)
	if p.Render {
		res.Image = RenderMaxIntensity(f)
	}
	return res, nil
}
