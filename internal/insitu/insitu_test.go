package insitu

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func sphereField(n int) Field {
	f := NewField("s", n, n, n)
	c := float64(n-1) / 2
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				dx, dy, dz := float64(i)-c, float64(j)-c, float64(k)-c
				f.Set(k, j, i, math.Sqrt(dx*dx+dy*dy+dz*dz))
			}
		}
	}
	return f
}

func TestFieldValidate(t *testing.T) {
	f := NewField("ok", 2, 3, 4)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Field{Name: "bad", NZ: 2, NY: 2, NX: 2, Data: make([]float64, 7)}
	if err := bad.Validate(); err == nil {
		t.Fatal("size mismatch accepted")
	}
	neg := Field{Name: "neg", NZ: -1, NY: 2, NX: 2}
	if err := neg.Validate(); err == nil {
		t.Fatal("negative dim accepted")
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	f := NewField("f", 3, 4, 5)
	f.Set(2, 3, 4, 42)
	if f.At(2, 3, 4) != 42 {
		t.Fatal("At/Set mismatch")
	}
	if f.At(0, 0, 0) != 0 {
		t.Fatal("unexpected nonzero")
	}
}

func TestMoments(t *testing.T) {
	f := Field{Name: "m", NZ: 1, NY: 1, NX: 4, Data: []float64{1, 2, 3, 4}}
	m := ComputeMoments(f)
	if m.Min != 1 || m.Max != 4 || m.Mean != 2.5 || m.N != 4 {
		t.Fatalf("moments = %+v", m)
	}
	if math.Abs(m.Std-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("std = %v", m.Std)
	}
}

func TestMomentsProperty(t *testing.T) {
	if err := quick.Check(func(vals []float64) bool {
		clean := make([]float64, 0, len(vals))
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e100 {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		f := Field{Name: "p", NZ: 1, NY: 1, NX: len(clean), Data: clean}
		m := ComputeMoments(f)
		return m.Min <= m.Mean && m.Mean <= m.Max && m.Std >= 0
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMassConserved(t *testing.T) {
	f := sphereField(8)
	h := Histogram(f, 10, 0, 8)
	total := 0
	for _, c := range h {
		total += c
	}
	if total != f.Len() {
		t.Fatalf("histogram mass = %d, want %d", total, f.Len())
	}
	if Histogram(f, 0, 0, 1) != nil || Histogram(f, 4, 2, 2) != nil {
		t.Fatal("degenerate histogram inputs should return nil")
	}
}

func TestHistogramClamping(t *testing.T) {
	// 0.5 sits exactly on the bin boundary and belongs to the upper bin;
	// the out-of-range values clamp to the edge bins.
	f := Field{Name: "c", NZ: 1, NY: 1, NX: 3, Data: []float64{-100, 0.5, 100}}
	h := Histogram(f, 2, 0, 1)
	if h[0] != 1 || h[1] != 2 {
		t.Fatalf("clamped histogram = %v", h)
	}
}

func TestIsosurfaceSphere(t *testing.T) {
	f := sphereField(16)
	cells := IsosurfaceCells(f, 5)
	if cells == 0 {
		t.Fatal("sphere isosurface found no cells")
	}
	// The isosurface of radius r has O(r²) cells; radius 5 inside a 16³
	// grid should be a few hundred cells, not thousands.
	if cells > 4000 {
		t.Fatalf("suspiciously many cells: %d", cells)
	}
	// A level outside the data range crosses nothing.
	if IsosurfaceCells(f, 1e9) != 0 {
		t.Fatal("out-of-range isosurface crossed cells")
	}
}

func TestIsosurfaceGrowsWithRadius(t *testing.T) {
	f := sphereField(24)
	small := IsosurfaceCells(f, 3)
	large := IsosurfaceCells(f, 9)
	if small >= large {
		t.Fatalf("r=3 cells (%d) >= r=9 cells (%d)", small, large)
	}
}

func TestRenderMaxIntensity(t *testing.T) {
	f := NewField("r", 4, 8, 6)
	f.Set(2, 3, 1, 10) // bright voxel
	img := RenderMaxIntensity(f)
	if img.W != 6 || img.H != 8 {
		t.Fatalf("image dims %dx%d", img.W, img.H)
	}
	if img.Pix[3*6+1] != 255 {
		t.Fatalf("bright voxel rendered as %d", img.Pix[3*6+1])
	}
	if img.Pix[0] != 0 {
		t.Fatalf("dark pixel rendered as %d", img.Pix[0])
	}
}

func TestEncodePGM(t *testing.T) {
	img := Image{W: 2, H: 1, Pix: []byte{0, 255}}
	out := img.EncodePGM()
	if !bytes.HasPrefix(out, []byte("P5\n2 1\n255\n")) {
		t.Fatalf("PGM header wrong: %q", out[:12])
	}
	if !bytes.HasSuffix(out, []byte{0, 255}) {
		t.Fatal("PGM payload wrong")
	}
}

func TestPipelineAnalyze(t *testing.T) {
	p := DefaultPipeline()
	res, err := p.Analyze(sphereField(12), 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Field != "s" || res.Iteration != 3 {
		t.Fatalf("result identity: %+v", res)
	}
	if len(res.Histogram) != p.Bins || res.IsoCells == 0 || len(res.Image.Pix) == 0 {
		t.Fatalf("incomplete result: hist=%d iso=%d img=%d",
			len(res.Histogram), res.IsoCells, len(res.Image.Pix))
	}
	if _, err := p.Analyze(Field{Name: "bad", NZ: 1, NY: 1, NX: 2}, 0); err == nil {
		t.Fatal("invalid field accepted")
	}
}

func TestPipelineConstantField(t *testing.T) {
	f := NewField("flat", 4, 4, 4)
	res, err := DefaultPipeline().Analyze(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.IsoCells != 0 {
		t.Fatal("constant field has no isosurface")
	}
}

func BenchmarkAnalyze32(b *testing.B) {
	f := sphereField(32)
	p := DefaultPipeline()
	for i := 0; i < b.N; i++ {
		p.Analyze(f, 0)
	}
}
