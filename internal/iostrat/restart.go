package iostrat

import (
	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/rng"
	"repro/internal/storage"
)

// RestartResult reports what the restart-read model measured.
type RestartResult struct {
	// ReadTime is the virtual time until every root finished reading
	// its checkpoint object back from the backend.
	ReadTime float64
	// TotalTime additionally covers scattering the state back down the
	// aggregation tree to every live node over the NIC.
	TotalTime float64
	// BytesRead is the payload volume read from the backend.
	BytesRead float64
	// Roots and Stripes echo the topology the model used.
	Roots   int
	Stripes int
}

// RestartRead is the DES mirror of the object read path: it prices
// restarting one checkpoint (a single iteration's stored objects) on
// the configured backend, the inverse of the tree-mode write path. Each
// aggregation-tree root reads its subtree's object back as striped
// big-sequential streams — reads share the same per-target queues as
// writes — then scatters the blocks down the tree over the NIC, each
// sender serializing its children's transfers. With Fanout < 2 every
// node reads its own per-node file instead (the paper's baseline
// layout). A failure schedule is applied up front: a restart happens
// after the deaths, so dead nodes neither hold data to read nor
// receive any.
func RestartRead(cfg Config) (RestartResult, error) {
	cfg = cfg.withDefaults()
	eng := des.NewEngine()
	root := rng.New(cfg.Seed, 17)
	be, _, err := cfg.newBackend(eng, root.Named("pfs"))
	if err != nil {
		return RestartResult{}, err
	}
	plat := cfg.Platform
	nodeBytes := cfg.Workload.NodeBytes(plat.CoresPerNode)
	res := RestartResult{}
	be.BeginPhase()

	if cfg.Fanout < 2 {
		// Baseline: one file per node, read back in parallel.
		res.Roots = plat.Nodes
		res.Stripes = 1
		for n := 0; n < plat.Nodes; n++ {
			node := n
			eng.Spawn("restart-read", func(p *des.Proc) {
				be.Open(p)
				be.Read(p, node%be.Targets(), nodeBytes, storage.BigSequential)
				be.Close(p)
			})
		}
		res.ReadTime = eng.Run()
		res.TotalTime = res.ReadTime
		res.BytesRead = be.Accounting().BytesRead
		return res, nil
	}

	tree := cluster.NewTree(plat.Nodes, cfg.Fanout, cfg.AggRoots)
	if cfg.Failures != nil {
		for _, n := range cfg.Failures.Nodes() {
			if tree.Alive(n) {
				tree.Fail(n)
			}
		}
	}
	roots := tree.Roots()
	numRoots := len(roots)
	if numRoots == 0 {
		// Every root died: nothing stored, nothing to restart from.
		return res, nil
	}
	stripes := rootStripes(cfg, be.Targets(), numRoots)
	res.Roots = numRoots
	res.Stripes = stripes

	subtreeBytes := func(n int) float64 {
		return nodeBytes * float64(len(tree.LiveSubtree(n)))
	}
	// scatter pushes a node's children their subtree state: the sender
	// serializes the transfers onto its NIC, each child then forwards
	// its own subtree concurrently.
	var scatter func(p *des.Proc, node int)
	scatter = func(p *des.Proc, node int) {
		for _, k := range tree.Children(node) {
			p.Wait(subtreeBytes(k)/plat.NICBandwidth + plat.NICLatency)
			kid := k
			eng.Spawn("restart-scatter", func(cp *des.Proc) { scatter(cp, kid) })
		}
	}
	for i, r := range roots {
		ordinal, rootID := i, r
		eng.Spawn("restart-root", func(p *des.Proc) {
			base := (ordinal * stripes) % be.Targets()
			be.Open(p)
			per := subtreeBytes(rootID) / float64(stripes)
			futs := make([]*des.Future, stripes)
			for s := 0; s < stripes; s++ {
				futs[s] = be.ReadAsync((base+s)%be.Targets(), per, storage.BigSequential)
			}
			for _, f := range futs {
				p.Await(f)
			}
			be.Close(p)
			if p.Now() > res.ReadTime {
				res.ReadTime = p.Now()
			}
			scatter(p, rootID)
		})
	}
	res.TotalTime = eng.Run()
	res.BytesRead = be.Accounting().BytesRead
	return res, nil
}
