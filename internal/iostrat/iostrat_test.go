package iostrat

import (
	"testing"

	"repro/internal/storage"
	"repro/internal/topology"
)

// smallConfig returns a quick configuration: a shrunken Kraken-like
// machine, a few iterations.
func smallConfig() Config {
	plat := topology.Kraken(8) // 8 nodes × 12 cores = 96 ranks
	plat.PFS.OSTs = 16
	w := CM1Workload(3)
	w.ComputeTime = 50
	return Config{Platform: plat, Workload: w, Seed: 99}
}

func TestRunUnknownApproach(t *testing.T) {
	if _, err := Run("nonsense", smallConfig()); err == nil {
		t.Fatal("unknown approach should error")
	}
}

func TestAllApproachesConserveBytes(t *testing.T) {
	cfg := smallConfig()
	want := cfg.Workload.NodeBytes(cfg.Platform.CoresPerNode) *
		float64(cfg.Platform.Nodes) * float64(cfg.Workload.Iterations)
	for _, a := range []Approach{FilePerProcess, Collective, Damaris} {
		res, err := Run(a, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.SkippedIters > 0 {
			continue // Damaris may legitimately drop data under pressure
		}
		if res.BytesWritten < want*0.999 || res.BytesWritten > want*1.001 {
			t.Errorf("%s wrote %v bytes, want %v", a, res.BytesWritten, want)
		}
	}
}

func TestIterationAccounting(t *testing.T) {
	cfg := smallConfig()
	for _, a := range []Approach{FilePerProcess, Collective, Damaris} {
		res, err := Run(a, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.IOTimes) != cfg.Workload.Iterations {
			t.Errorf("%s recorded %d phases, want %d", a, len(res.IOTimes), cfg.Workload.Iterations)
		}
		for i, io := range res.IOTimes {
			if io <= 0 {
				t.Errorf("%s phase %d has non-positive duration %v", a, i, io)
			}
		}
		if res.TotalTime <= 0 {
			t.Errorf("%s total time %v", a, res.TotalTime)
		}
	}
}

func TestDeterministicResults(t *testing.T) {
	cfg := smallConfig()
	for _, a := range []Approach{FilePerProcess, Collective, Damaris} {
		r1, _ := Run(a, cfg)
		r2, _ := Run(a, cfg)
		if r1.TotalTime != r2.TotalTime || r1.BytesWritten != r2.BytesWritten {
			t.Errorf("%s is not deterministic: %v/%v vs %v/%v",
				a, r1.TotalTime, r1.BytesWritten, r2.TotalTime, r2.BytesWritten)
		}
		for i := range r1.IOTimes {
			if r1.IOTimes[i] != r2.IOTimes[i] {
				t.Errorf("%s phase %d differs across runs", a, i)
			}
		}
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	cfg := smallConfig()
	r1, _ := Run(FilePerProcess, cfg)
	cfg.Seed = 12345
	r2, _ := Run(FilePerProcess, cfg)
	if r1.TotalTime == r2.TotalTime {
		t.Error("different seeds produced identical totals; jitter not applied?")
	}
}

func TestDamarisHidesIO(t *testing.T) {
	cfg := smallConfig()
	fpp, _ := Run(FilePerProcess, cfg)
	dam, _ := Run(Damaris, cfg)
	// Client-visible write time: Damaris pays only the shared-memory copy.
	if dam.MeanIOTime() > 1.0 {
		t.Errorf("Damaris visible I/O phase = %v s, want well under a second", dam.MeanIOTime())
	}
	if dam.MeanIOTime() > fpp.MeanIOTime()/5 {
		t.Errorf("Damaris I/O (%v) not clearly below FPP (%v)", dam.MeanIOTime(), fpp.MeanIOTime())
	}
}

func TestDamarisComputeStretch(t *testing.T) {
	// With one of 12 cores dedicated, each compute phase stretches by
	// 12/11; total time must reflect that but stay close to pure compute.
	cfg := smallConfig()
	cfg.Workload.ComputeJitter = 0
	res, _ := Run(Damaris, cfg)
	pureCompute := cfg.Workload.ComputeTime * 12.0 / 11.0 * float64(cfg.Workload.Iterations)
	if res.TotalTime < pureCompute {
		t.Fatalf("total %v below stretched compute %v", res.TotalTime, pureCompute)
	}
	if res.TotalTime > pureCompute*1.10 {
		t.Fatalf("total %v far above stretched compute %v: I/O not hidden", res.TotalTime, pureCompute)
	}
}

func TestDamarisDedicatedAccounting(t *testing.T) {
	res, _ := Run(Damaris, smallConfig())
	if res.DedicatedTotal <= 0 || res.DedicatedBusy <= 0 {
		t.Fatalf("dedicated accounting: busy=%v total=%v", res.DedicatedBusy, res.DedicatedTotal)
	}
	if res.DedicatedBusy > res.DedicatedTotal {
		t.Fatalf("busy %v exceeds available %v", res.DedicatedBusy, res.DedicatedTotal)
	}
	if f := res.IdleFraction(); f <= 0 || f >= 1 {
		t.Fatalf("idle fraction = %v", f)
	}
}

func TestDamarisSkipsWhenShmFull(t *testing.T) {
	cfg := smallConfig()
	// Tiny segment: it cannot even hold one iteration → every iteration
	// is skipped, and the simulation never blocks.
	cfg.ShmCapacity = 1e6
	res, _ := Run(Damaris, cfg)
	if res.SkippedIters == 0 {
		t.Fatal("expected skipped iterations with a tiny shm segment")
	}
	if res.MeanIOTime() > 1.0 {
		t.Fatalf("simulation blocked despite skip policy: io=%v", res.MeanIOTime())
	}
}

func TestDamarisSchedulingHelps(t *testing.T) {
	cfg := smallConfig()
	// Stress the file system so scheduling matters: more nodes than OSTs.
	cfg.Platform = topology.Kraken(32)
	cfg.Platform.PFS.OSTs = 8
	base, _ := Run(Damaris, cfg)
	cfg.Scheduling = SchedOSTToken
	sched, _ := Run(Damaris, cfg)
	if sched.Throughput() <= base.Throughput() {
		t.Errorf("OST-token scheduling did not help: %v vs %v B/s",
			sched.Throughput(), base.Throughput())
	}
}

func TestCollectiveSlowestFPPMiddleDamarisFastest(t *testing.T) {
	cfg := smallConfig()
	coll, _ := Run(Collective, cfg)
	fpp, _ := Run(FilePerProcess, cfg)
	dam, _ := Run(Damaris, cfg)
	if !(coll.Throughput() < fpp.Throughput() && fpp.Throughput() < dam.Throughput()) {
		t.Errorf("throughput ordering violated: coll=%v fpp=%v dam=%v",
			coll.Throughput(), fpp.Throughput(), dam.Throughput())
	}
}

func TestFilesCreatedCounts(t *testing.T) {
	cfg := smallConfig()
	fpp, _ := Run(FilePerProcess, cfg)
	iters := cfg.Workload.Iterations
	if want := cfg.Platform.Cores() * iters; fpp.FilesCreated != want {
		t.Errorf("FPP files = %d, want %d", fpp.FilesCreated, want)
	}
	coll, _ := Run(Collective, cfg)
	if coll.FilesCreated != iters {
		t.Errorf("collective files = %d, want %d", coll.FilesCreated, iters)
	}
	dam, _ := Run(Damaris, cfg)
	if want := cfg.Platform.Nodes * iters; dam.FilesCreated != want {
		t.Errorf("Damaris files = %d, want %d (one per node per iteration)", dam.FilesCreated, want)
	}
}

func TestResultDerivedMetrics(t *testing.T) {
	r := Result{TotalTime: 100, IOTimes: []float64{10, 20}, BytesWritten: 300, IOWindow: 3}
	if r.IOFraction() != 0.3 {
		t.Errorf("IOFraction = %v", r.IOFraction())
	}
	if r.Throughput() != 100 {
		t.Errorf("Throughput = %v", r.Throughput())
	}
	if r.MaxIOTime() != 20 || r.MeanIOTime() != 15 {
		t.Errorf("IO time stats wrong")
	}
	var zero Result
	if zero.IOFraction() != 0 || zero.Throughput() != 0 || zero.IdleFraction() != 0 {
		t.Error("zero Result should have zero derived metrics")
	}
}

func TestAggregationGranularityAblation(t *testing.T) {
	cfg := smallConfig()
	one, _ := Run(Damaris, cfg)
	cfg.FilesPerIter = 12 // one small file per core: should hurt
	many, _ := Run(Damaris, cfg)
	if many.Throughput() >= one.Throughput() {
		t.Errorf("fragmenting output did not reduce throughput: %v vs %v",
			many.Throughput(), one.Throughput())
	}
}

// TestCodecPipelineWiring: a Damaris run with the storage-codec
// pipeline moves codec-ratio fewer bytes to storage, charges codec CPU
// on the dedicated cores, leaves the application schedule untouched,
// and works in tree mode too. An unknown codec errors out up front.
func TestCodecPipelineWiring(t *testing.T) {
	cfg := smallConfig()
	plain, err := Run(Damaris, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ccfg := cfg
	ccfg.Codec = "gorilla"
	comp, err := Run(Damaris, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	prof, ok := storage.Profile("gorilla")
	if !ok {
		t.Fatal("gorilla profile missing")
	}
	ratio := plain.BytesWritten / comp.BytesWritten
	if ratio < prof.AssumedRatio*0.99 || ratio > prof.AssumedRatio*1.01 {
		t.Errorf("storage bytes ratio = %v, want ~%v", ratio, prof.AssumedRatio)
	}
	if comp.BytesSaved <= 0 || comp.CodecCPUTime <= 0 {
		t.Errorf("codec accounting missing: saved=%v cpu=%v", comp.BytesSaved, comp.CodecCPUTime)
	}
	if comp.TotalTime != plain.TotalTime {
		t.Errorf("compression visible to the simulation: %v vs %v", comp.TotalTime, plain.TotalTime)
	}
	if comp.SkippedIters != plain.SkippedIters {
		t.Errorf("compression changed skips: %d vs %d", comp.SkippedIters, plain.SkippedIters)
	}

	tcfg := ccfg
	tcfg.Fanout = 2
	tree, err := Run(Damaris, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	if tree.BytesSaved <= 0 {
		t.Error("tree mode did not run the pipeline")
	}

	bad := cfg
	bad.Codec = "zstd"
	if _, err := Run(Damaris, bad); err == nil {
		t.Fatal("unknown codec must error")
	}

	// "none" is a disable alias, and Codec supersedes CompressRatio.
	alias := cfg
	alias.Codec = "none"
	alias.CompressRatio = 6
	al, err := Run(Damaris, alias)
	if err != nil {
		t.Fatal(err)
	}
	if al.BytesSaved != 0 {
		t.Errorf("codec \"none\" still saved bytes: %v", al.BytesSaved)
	}
}

// TestCodecRestartRead: the restart-read model through a compressing
// backend reads the encoded volume and charges decode CPU.
func TestCodecRestartRead(t *testing.T) {
	cfg := smallConfig()
	cfg.Fanout = 4
	plain, err := RestartRead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ccfg := cfg
	ccfg.Codec = "gorilla"
	comp, err := RestartRead(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	prof, _ := storage.Profile("gorilla")
	ratio := plain.BytesRead / comp.BytesRead
	if ratio < prof.AssumedRatio*0.99 || ratio > prof.AssumedRatio*1.01 {
		t.Errorf("restart read ratio = %v, want ~%v", ratio, prof.AssumedRatio)
	}
}
