package iostrat

import (
	"math"

	"repro/internal/des"
	"repro/internal/rng"
	"repro/internal/storage"
)

// runCollective models two-phase collective I/O into a single shared file
// (the paper's §II "collective I/O" baseline): one aggregator per node
// first receives the node's data over the network, then all aggregators
// write the shared file in barriered rounds of CollectiveBuffer bytes.
// File extents map round-robin onto OSTs, so each round every OST serves
// ~nAggs/nOSTs interleaved shared-file streams under extent locking, and
// the barrier lets the slowest OST pace everyone — the two mechanisms
// behind the approach's collapse at scale.
func runCollective(cfg Config) (Result, error) {
	eng := des.NewEngine()
	root := rng.New(cfg.Seed, 2)
	be, _, err := cfg.newBackend(eng, root.Named("pfs"))
	if err != nil {
		return Result{}, err
	}

	plat := cfg.Platform
	w := cfg.Workload
	ranks := plat.Cores()
	nAggs := plat.Nodes
	nodeBytes := w.NodeBytes(plat.CoresPerNode)
	rounds := int(math.Ceil(nodeBytes / cfg.CollectiveBuffer))

	res := Result{Approach: Collective, Platform: plat, Workload: w, Backend: cfg.Backend}
	res.IOTimes = make([]float64, w.Iterations)
	res.RankWriteTimes = make([]float64, 0, ranks*w.Iterations)

	stepBarrier := eng.NewBarrier(ranks)
	aggDone := eng.NewBarrier(nAggs)
	phaseDone := make([]*des.Future, w.Iterations)
	for i := range phaseDone {
		phaseDone[i] = eng.NewFuture()
	}
	phaseStart := make([]float64, w.Iterations)

	for r := 0; r < ranks; r++ {
		rank := r
		isAgg := rank%plat.CoresPerNode == 0
		aggIdx := rank / plat.CoresPerNode
		compRng := root.Named("compute").Child(uint64(rank))
		eng.Spawn("rank", func(p *des.Proc) {
			for it := 0; it < w.Iterations; it++ {
				p.Wait(w.ComputeTime * compRng.UnitLogNormal(w.ComputeJitter))
				p.Arrive(stepBarrier)
				if rank == 0 {
					be.BeginPhase()
					phaseStart[it] = p.Now()
				}
				t0 := p.Now()
				if isAgg {
					// Shuffle phase: collect the node's data over the NIC.
					p.Wait(nodeBytes/plat.NICBandwidth +
						plat.NICLatency*float64(plat.CoresPerNode))
					if aggIdx == 0 {
						be.Create(p) // the shared file
					}
					be.Open(p)
					for round := 0; round < rounds; round++ {
						chunk := cfg.CollectiveBuffer
						if rem := nodeBytes - float64(round)*cfg.CollectiveBuffer; rem < chunk {
							chunk = rem
						}
						// Extent → OST mapping: round-robin striping of the
						// shared file across all OSTs. Aggregators pipeline
						// their rounds independently (ROMIO does not
						// barrier between rounds); the phase ends when the
						// slowest aggregator finishes.
						ost := (aggIdx + round*nAggs) % be.Targets()
						be.WriteChunk(p, ost, chunk, storage.SharedFile)
					}
					be.Close(p)
					p.Arrive(aggDone)
					if aggIdx == 0 {
						phaseDone[it].Complete()
					}
				} else {
					// Send local data to the aggregator, then wait for the
					// collective write to finish (MPI_File_write_all
					// returns only when the phase completes).
					p.Wait(w.BytesPerCore/plat.NICBandwidth + plat.NICLatency)
					p.Await(phaseDone[it])
				}
				res.RankWriteTimes = append(res.RankWriteTimes, p.Now()-t0)
				p.Arrive(stepBarrier)
				if rank == 0 {
					res.IOTimes[it] = p.Now() - phaseStart[it]
				}
			}
			if rank == 0 {
				res.TotalTime = p.Now()
			}
		})
	}
	eng.Run()

	acc := be.Accounting()
	res.BytesWritten = acc.BytesWritten
	res.IOWindow = acc.IOBusyTime
	res.BytesSaved = acc.BytesSaved
	res.CodecCPUTime = acc.EncodeTime + acc.DecodeTime
	res.DedupBytesSaved = acc.DedupBytesSaved
	res.HashCPUTime = acc.ChunkHashTime
	res.FilesCreated = w.Iterations
	res.DrainTime = res.TotalTime
	return res, nil
}
