// Package iostrat implements the three I/O approaches compared in the
// paper as discrete-event models over the pfs substrate:
//
//   - file-per-process (§II): every rank writes its own file each output
//     phase — no synchronization, but a metadata storm and many small
//     interleaved streams;
//   - collective two-phase I/O (§II, Thakur et al.): node-level
//     aggregators exchange data and write a single shared file in
//     barriered rounds;
//   - Damaris (§III): one core per node is dedicated to I/O; simulation
//     cores hand their data to it through shared memory (≈0.1 s visible
//     cost) and the dedicated core writes one big file per node
//     asynchronously, overlapped with the next compute phase.
//
// All three run the same bulk-synchronous workload (compute phase, then
// output phase, repeated), so their results are directly comparable.
package iostrat

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/storage/chunk"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Approach names one of the modeled I/O strategies.
type Approach string

// The strategies of the paper's evaluation.
const (
	FilePerProcess Approach = "file-per-process"
	Collective     Approach = "collective"
	Damaris        Approach = "damaris"
)

// Scheduling selects how Damaris dedicated cores coordinate their writes
// (§IV.D "a better I/O scheduling schema").
type Scheduling string

const (
	// SchedNone starts every write immediately (uncoordinated).
	SchedNone Scheduling = "none"
	// SchedOSTToken serializes writers per target OST: at most one
	// dedicated-core stream per OST at a time.
	SchedOSTToken Scheduling = "ost-token"
	// SchedGlobalToken bounds the number of concurrently writing
	// dedicated cores to the number of OSTs.
	SchedGlobalToken Scheduling = "global-token"
	// SchedClusterToken arbitrates across every tree root of the run
	// through one storage.TokenBroker: each stream holds its whole
	// stripe window exclusively, and when roots contend the one whose
	// iteration deadline is nearest is granted first (§IV.C spare-time
	// scheduling across nodes, not just within one backend).
	SchedClusterToken Scheduling = "cluster-token"
)

// Schedulings lists the scheduling policies, SchedNone first.
func Schedulings() []Scheduling {
	return []Scheduling{SchedNone, SchedOSTToken, SchedGlobalToken, SchedClusterToken}
}

// AdaptPolicy selects whether the aggregation forest keeps its
// configured shape for the whole run or re-forms itself mid-run from
// observed bandwidths (tree mode only; see docs/SCENARIOS.md).
type AdaptPolicy string

const (
	// AdaptStatic keeps the configured Fanout/AggRoots (the default).
	AdaptStatic AdaptPolicy = "static"
	// AdaptAdaptive re-derives the forest shape from the observed
	// NIC-vs-PFS bandwidths (cluster.RecommendTopology) and re-forms
	// the tree at an epoch fence: iterations already routing keep
	// their old topology — parents, coverage, root stripe windows —
	// so no in-flight aggregation is stranded or double-written.
	AdaptAdaptive AdaptPolicy = "adaptive"
)

// AdaptPolicies lists the adaptation policies, AdaptStatic first.
func AdaptPolicies() []AdaptPolicy { return []AdaptPolicy{AdaptStatic, AdaptAdaptive} }

// ValidateAdaptPolicy rejects unknown policy names before a run starts
// ("" means AdaptStatic).
func ValidateAdaptPolicy(a AdaptPolicy) error {
	switch a {
	case "", AdaptStatic, AdaptAdaptive:
		return nil
	}
	return fmt.Errorf("iostrat: unknown adaptation policy %q (have %v)", a, AdaptPolicies())
}

// ValidateScheduling rejects unknown policy names before a run starts.
func ValidateScheduling(s Scheduling) error {
	for _, known := range Schedulings() {
		if s == known {
			return nil
		}
	}
	return fmt.Errorf("iostrat: unknown scheduling policy %q", s)
}

// Workload describes the application's output behaviour, CM1-like: a
// predictable compute phase followed by a synchronized output of all
// variables.
type Workload struct {
	// BytesPerCore written by each simulation core per output phase.
	BytesPerCore float64
	// VarsPerCore is the number of distinct variables (i.e. write calls)
	// per core per output phase.
	VarsPerCore int
	// ComputeTime is the duration of one compute phase (seconds) when all
	// cores of the node compute.
	ComputeTime float64
	// ComputeJitter is the log-normal sigma of per-rank compute noise;
	// CM1's compute phases are "extremely predictable", so keep it small.
	ComputeJitter float64
	// Iterations is the number of compute+output cycles.
	Iterations int
}

// NodeBytes returns the bytes produced per node per output phase.
func (w Workload) NodeBytes(coresPerNode int) float64 {
	return w.BytesPerCore * float64(coresPerNode)
}

// CM1Workload returns the workload used for the Kraken runs: ≈38 MB per
// core per output phase across 20 variables, with a 300 s compute phase
// between outputs.
func CM1Workload(iterations int) Workload {
	return Workload{
		BytesPerCore:  38e6,
		VarsPerCore:   20,
		ComputeTime:   300,
		ComputeJitter: 0.004,
		Iterations:    iterations,
	}
}

// Config parameterizes one strategy run.
type Config struct {
	Platform topology.Platform
	Workload Workload
	Seed     uint64

	// Backend selects the storage model every strategy writes through
	// (default storage.KindPFS, the paper's Lustre model).
	Backend storage.Kind
	// BackendDir is the artifact directory of the sdf backend (unused
	// by the others).
	BackendDir string

	// Damaris options.

	// DedicatedPerNode is the number of cores per node removed from
	// computation and devoted to I/O (default 1).
	DedicatedPerNode int
	// ShmCapacity is the per-node shared-memory segment size in bytes
	// (default: 4× the per-iteration node output).
	ShmCapacity float64
	// Scheduling coordinates dedicated-core writes (default SchedNone).
	Scheduling Scheduling
	// Fanout, when >= 2, routes dedicated-core output through the
	// cross-node k-ary aggregation tree of internal/cluster: leaf
	// dedicated cores forward their node's iteration over the NIC,
	// interior nodes batch their subtree, and tree roots stripe few
	// large sequential streams onto the backend. 0 or 1 keeps the
	// paper's baseline of one file per node per iteration.
	Fanout int
	// AggRoots is the number of aggregation trees when Fanout >= 2
	// (default: Nodes/Fanout², keeping trees about two levels deep so
	// aggregation does not funnel the whole machine through one node).
	AggRoots int
	// RootStripes is how many backend targets each root write is
	// striped over. The default scales with the storage system —
	// Targets/(2·roots), clamped to [8, 64] — so few aggregated
	// streams can still fill the OST array.
	RootStripes int
	// FilesPerIter is the number of files each dedicated core writes per
	// iteration (default 1; the A2 ablation sweeps it).
	FilesPerIter int
	// CompressRatio, when > 1, makes the dedicated core compress the
	// node's output before writing: bytes on storage shrink by the ratio
	// and the core spends bytes/CompressRate seconds of CPU on it (E5).
	CompressRatio float64
	// CompressRate is the dedicated-core compression speed in bytes/s
	// (default 400 MB/s).
	CompressRate float64
	// Codec enables the storage-layer compression pipeline: the backend
	// is wrapped in storage.Compressing, so every Write/Read charges
	// real per-codec CPU rates on the dedicated cores and moves only
	// the encoded volume (and, on backends that persist objects, real
	// payloads are framed and encoded). "" or "none" disables it; a
	// codec name fixes the codec; storage.AdaptiveCodec lets the
	// selector choose. Codec supersedes the abstract CompressRatio knob
	// — setting both resets CompressRatio to 1 so the cost is not
	// charged twice.
	Codec string
	// Dedup wraps the backend in the content-addressed chunk store
	// (internal/storage/chunk), outermost — dedup sees raw payload
	// bytes and individual chunks ride the codec pipeline underneath.
	// On the DES face every write is charged chunking+hashing CPU on
	// the dedicated core and only the assumed-new fraction of the
	// volume (plus recipe overhead) is forwarded to the backend; on
	// backends that persist objects, payloads are actually
	// deduplicated (E10).
	Dedup bool
	// DedupNewFraction is the DES-face assumption for the fraction of
	// each write's chunks not already present in the store (default 1:
	// every chunk is new, dedup saves nothing). E10's
	// overwrite-fraction sweep varies it.
	DedupNewFraction float64
	// InSitu couples an analysis consumer to every aggregation-tree
	// root (tree mode only): the DES mirror of the runtime streaming
	// face, pricing analysis CPU against dedicated-core spare time and
	// sweeping stream vs file-then-read couplings (the E7 extension).
	// See InSituConfig. The zero value disables it.
	InSitu InSituConfig
	// Failures schedules node deaths in tree mode (nil: none), the DES
	// mirror of cluster.Config.Failures: when a scheduled node's
	// dedicated core reaches its death iteration, the node's I/O stack
	// stops (its output from that iteration on is lost), its children
	// re-route to its parent (or a promoted sibling when a root dies),
	// and its in-flight aggregations drain to the re-route target. The
	// simulation ranks keep computing — the model isolates the
	// I/O-layer data-loss/latency trade of losing aggregation nodes.
	Failures *cluster.FailureSchedule
	// Scenario, when non-nil, drives the run from a deterministic
	// workload trace (internal/workload): per-iteration output volumes,
	// compute times and variable counts replace the flat Workload
	// numbers, platform shifts step the NIC/PFS bandwidth mid-run, and
	// node losses merge into Failures. The trace must be generated for
	// this platform's node count. Workload.Iterations is taken from the
	// trace.
	Scenario *workload.Trace
	// Adapt selects static vs adaptive tree shaping in tree mode
	// (default AdaptStatic). See AdaptPolicy.
	Adapt AdaptPolicy

	// Collective options.

	// CollectiveBuffer is the per-aggregator bytes written per two-phase
	// round (default 16 MB, ROMIO's cb_buffer_size scale).
	CollectiveBuffer float64

	// testWrapBackend, when set (tests only), wraps the run's backend
	// outermost, so probes observe every strategy-level operation.
	testWrapBackend func(*des.Engine, storage.Backend) storage.Backend
}

func (c Config) withDefaults() Config {
	if c.DedicatedPerNode == 0 {
		c.DedicatedPerNode = 1
	}
	if c.Scenario != nil {
		// The trace overrides the flat workload: its first iteration
		// seeds the base numbers (reports, stretch math), the trace
		// length fixes the iteration count, and the per-iteration
		// values are applied inside the run.
		c.Workload.Iterations = c.Scenario.Iterations()
		if len(c.Scenario.Iters) > 0 {
			it0 := c.Scenario.Iters[0]
			c.Workload.BytesPerCore = it0.BytesPerCore
			c.Workload.ComputeTime = it0.ComputeTime
			c.Workload.VarsPerCore = it0.VarsPerCore
		}
	}
	if c.ShmCapacity == 0 {
		peak := c.Workload.BytesPerCore
		if c.Scenario != nil {
			// Size the segment for the trace's peak iteration (AMR
			// growth), so scenario volume swings do not turn into §V.C
			// skips that break the no-loss acceptance checks.
			if m := c.Scenario.MaxBytesPerCore(); m > peak {
				peak = m
			}
		}
		c.ShmCapacity = 4 * peak * float64(c.Platform.CoresPerNode)
	}
	if c.Adapt == "" {
		c.Adapt = AdaptStatic
	}
	if c.Scheduling == "" {
		c.Scheduling = SchedNone
	}
	if c.FilesPerIter == 0 {
		c.FilesPerIter = 1
	}
	if c.CompressRatio == 0 {
		c.CompressRatio = 1
	}
	if c.CompressRate == 0 {
		c.CompressRate = 400e6
	}
	if c.Codec == "none" {
		c.Codec = ""
	}
	if c.Codec != "" {
		// The pipeline prices compression inside the backend; the legacy
		// per-strategy knob must not charge it a second time.
		c.CompressRatio = 1
	}
	if c.CollectiveBuffer == 0 {
		c.CollectiveBuffer = 16e6
	}
	if c.Backend == "" {
		c.Backend = storage.KindPFS
	}
	c.InSitu = c.InSitu.withDefaults()
	if c.Fanout >= 2 && c.AggRoots == 0 {
		c.AggRoots = c.Platform.Nodes / (c.Fanout * c.Fanout)
		if c.AggRoots < 1 {
			c.AggRoots = 1
		}
	}
	return c
}

// newBackend builds the configured storage backend for one run,
// wrapped in the compression pipeline when a codec is configured. The
// unwrapped base is returned alongside, so scenario platform shifts can
// reach model-level knobs (bandwidth factors) through the wrappers.
func (c Config) newBackend(eng *des.Engine, r *rng.Stream) (storage.Backend, storage.Backend, error) {
	base, err := storage.New(c.Backend, eng, c.Platform, r, c.BackendDir)
	if err != nil {
		return nil, nil, err
	}
	be := base
	if c.Codec != "" {
		if err := storage.ValidateCodecName(c.Codec); err != nil {
			return nil, nil, err
		}
		be = storage.NewCompressing(be, storage.CompressionOptions{
			Codec:  c.Codec,
			Engine: eng,
		})
	}
	if c.Dedup {
		be = chunk.New(be, chunk.Options{
			Engine:             eng,
			AssumedNewFraction: c.DedupNewFraction,
		})
	}
	if c.testWrapBackend != nil {
		be = c.testWrapBackend(eng, be)
	}
	return be, base, nil
}

// Result reports what one strategy run measured.
type Result struct {
	Approach Approach
	Platform topology.Platform
	Workload Workload
	// Backend is the storage model the run wrote through.
	Backend storage.Kind

	// TotalTime is the application run time: start until the last rank
	// finishes its final iteration (dedicated-core draining excluded, as
	// in the paper's "scalability does not depend on I/O anymore").
	TotalTime float64
	// IOTimes has one entry per iteration: the application-visible
	// duration of the output phase (max over ranks).
	IOTimes []float64
	// RankWriteTimes samples the per-rank, per-iteration time spent in
	// the write call (file write for sync approaches, shared-memory write
	// for Damaris).
	RankWriteTimes []float64
	// BytesWritten is the total payload that reached the file system.
	BytesWritten float64
	// IOWindow is the union of time during which at least one transfer
	// was in flight; BytesWritten/IOWindow is the achieved aggregate
	// throughput.
	IOWindow float64
	// FilesCreated counts MDS create operations.
	FilesCreated int
	// BytesSaved is the payload kept off the storage transfer by the
	// Codec pipeline (0 without one); BytesWritten already reflects the
	// shrunken volume.
	BytesSaved float64
	// CodecCPUTime is the codec CPU charged on the dedicated cores by
	// the Codec pipeline (encode plus decode).
	CodecCPUTime float64
	// DedupBytesSaved is the payload volume the Dedup chunk store kept
	// off the backend transfer (0 without it); BytesWritten already
	// reflects the deduplicated volume.
	DedupBytesSaved float64
	// HashCPUTime is the chunking/hashing CPU the Dedup store charged
	// on the dedicated cores (write-side fingerprinting plus read-side
	// verification).
	HashCPUTime float64
	// SchedWaitTime is the total virtual time dedicated cores spent
	// waiting for a scheduling token (0 under SchedNone).
	SchedWaitTime float64
	// RootContention counts token grants that had to queue behind
	// another writer — how often the schedule actually arbitrated.
	RootContention int

	// Damaris-only measurements.

	// DedicatedBusy is the total busy time summed over dedicated cores.
	DedicatedBusy float64
	// DedicatedTotal is the total dedicated-core time available
	// (cores × run time, including the drain window).
	DedicatedTotal float64
	// SkippedIters counts iterations dropped because the shared-memory
	// segment was full (the paper's §V.C loss-over-blocking policy).
	SkippedIters int
	// DrainTime is when the last dedicated-core write completed.
	DrainTime float64

	// Failure measurements (tree mode with a failure schedule).

	// NodesFailed counts nodes killed by the failure schedule.
	NodesFailed int
	// ReroutedEdges counts aggregation-tree edges moved by failures,
	// root promotions included.
	ReroutedEdges int
	// LostBytes is the payload that never reached the backend because
	// its node died (own output from the death iteration on, plus any
	// orphaned aggregations with nowhere to drain).
	LostBytes float64
	// Completeness has one entry per iteration in tree mode: the
	// fraction of nodes whose contribution reached a root write (1.0
	// everywhere without failures; skips still count as participation,
	// mirroring the runtime cluster's zero-block batches).
	Completeness []float64
	// TreeWriteLatencies has one entry per iteration in tree mode: from
	// the output phase's start until the last root write of that
	// iteration completed, token waits included — the per-iteration
	// write tail the cross-root schedule is meant to flatten.
	TreeWriteLatencies []float64
	// TreeReforms counts mid-run topology re-formations (0 under
	// AdaptStatic); each one opened a new tree epoch at an iteration
	// fence.
	TreeReforms int

	// In-situ measurements (tree mode with Config.InSitu).

	// FramesAnalyzed counts root frames the analysis consumers fully
	// processed; FramesDropped counts frames the slow-consumer policy
	// discarded (evicted under drop-oldest, refused under sample).
	FramesAnalyzed int
	FramesDropped  int
	// AnalysisCPUTime is the kernel CPU the consumers charged on the
	// dedicated cores — §V spare time spent on analysis, also included
	// in DedicatedBusy.
	AnalysisCPUTime float64
	// StreamBlockTime is the total time publishers (root write paths)
	// spent blocked on a full consumer queue — non-zero only under the
	// storage.Block policy, and the write-path cost E7's extension
	// shows drop-oldest avoiding.
	StreamBlockTime float64
	// AnalysisLatencies has one entry per analyzed frame: from the
	// frame's output-phase start until its analysis completed — the
	// end-to-end freshness metric streaming is meant to shrink.
	AnalysisLatencies []float64
}

// MeanAnalysisLatency returns the mean end-to-end analysis latency
// (0 without in-situ frames).
func (r Result) MeanAnalysisLatency() float64 {
	if len(r.AnalysisLatencies) == 0 {
		return 0
	}
	return stats.Mean(r.AnalysisLatencies)
}

// WriteTailSpread returns the standard deviation of the per-iteration
// root-write latencies (0 outside tree mode) — E6's cross-root
// variability metric.
func (r Result) WriteTailSpread() float64 {
	if len(r.TreeWriteLatencies) == 0 {
		return 0
	}
	return stats.StdDev(r.TreeWriteLatencies)
}

// MeanIOTime returns the mean application-visible output-phase duration.
func (r Result) MeanIOTime() float64 { return stats.Mean(r.IOTimes) }

// MaxIOTime returns the worst output phase.
func (r Result) MaxIOTime() float64 { return stats.Max(r.IOTimes) }

// IOFraction returns the share of run time spent in application-visible
// I/O phases.
func (r Result) IOFraction() float64 {
	if r.TotalTime == 0 {
		return 0
	}
	sum := 0.0
	for _, t := range r.IOTimes {
		sum += t
	}
	return sum / r.TotalTime
}

// Throughput returns the achieved aggregate write throughput in bytes/s.
func (r Result) Throughput() float64 {
	if r.IOWindow == 0 {
		return 0
	}
	return r.BytesWritten / r.IOWindow
}

// DataLossFraction returns the share of node-iterations whose output
// never reached the storage backend: §V.C skips plus failure-driven
// coverage loss. 0 for a run with neither.
func (r Result) DataLossFraction() float64 {
	total := float64(r.Platform.Nodes * r.Workload.Iterations)
	if total == 0 {
		return 0
	}
	lost := float64(r.SkippedIters)
	for _, frac := range r.Completeness {
		lost += (1 - frac) * float64(r.Platform.Nodes)
	}
	return lost / total
}

// IdleFraction returns the idle share of the dedicated cores (Damaris
// only; 0 for other approaches).
func (r Result) IdleFraction() float64 {
	if r.DedicatedTotal == 0 {
		return 0
	}
	return 1 - r.DedicatedBusy/r.DedicatedTotal
}

// RankByThroughput returns the given approaches sorted by their
// measured value, best first — the cross-backend ordering contract the
// cluster-layer tests assert.
func RankByThroughput(th map[Approach]float64) []Approach {
	ranked := make([]Approach, 0, len(th))
	for a := range th {
		ranked = append(ranked, a)
	}
	sort.Slice(ranked, func(i, j int) bool {
		if th[ranked[i]] != th[ranked[j]] {
			return th[ranked[i]] > th[ranked[j]]
		}
		return ranked[i] < ranked[j] // deterministic tiebreak
	})
	return ranked
}

// Run executes the named approach under cfg and returns its measurements.
func Run(a Approach, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	switch a {
	case FilePerProcess:
		return runFPP(cfg)
	case Collective:
		return runCollective(cfg)
	case Damaris:
		return runDamaris(cfg)
	default:
		return Result{}, fmt.Errorf("iostrat: unknown approach %q", a)
	}
}
