package iostrat

import (
	"sort"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/storage"
	"repro/internal/topology"
)

// writeInterval is one observed occupancy of a backend target: from the
// moment the write was handed to the backend until its completion —
// exactly the span a write token is supposed to cover.
type writeInterval struct {
	target     int
	start, end float64
}

// probeBackend wraps a Backend and records every write's target
// occupancy interval, async submissions included.
type probeBackend struct {
	storage.Backend
	eng *des.Engine

	mu        sync.Mutex
	intervals []writeInterval
}

func (pb *probeBackend) record(target int, start, end float64) {
	pb.mu.Lock()
	pb.intervals = append(pb.intervals, writeInterval{target, start, end})
	pb.mu.Unlock()
}

func (pb *probeBackend) Write(p *des.Proc, target int, bytes float64, pat storage.Pattern) {
	start := p.Now()
	pb.Backend.Write(p, target, bytes, pat)
	pb.record(target, start, p.Now())
}

func (pb *probeBackend) WriteChunk(p *des.Proc, target int, bytes float64, pat storage.Pattern) {
	start := p.Now()
	pb.Backend.WriteChunk(p, target, bytes, pat)
	pb.record(target, start, p.Now())
}

func (pb *probeBackend) WriteAsync(target int, bytes float64, pat storage.Pattern) *des.Future {
	start := pb.eng.Now()
	inner := pb.Backend.WriteAsync(target, bytes, pat)
	done := pb.eng.NewFuture()
	pb.eng.Spawn("probe", func(p *des.Proc) {
		p.Await(inner)
		pb.record(target, start, p.Now())
		done.Complete()
	})
	return done
}

// overlaps returns the number of target-time conflicts: pairs of write
// intervals on the same target with positive-measure overlap (touching
// endpoints are fine — a release and the next grant share a timestamp).
func (pb *probeBackend) overlaps() int {
	pb.mu.Lock()
	defer pb.mu.Unlock()
	byTarget := map[int][]writeInterval{}
	for _, iv := range pb.intervals {
		byTarget[iv.target] = append(byTarget[iv.target], iv)
	}
	conflicts := 0
	for _, ivs := range byTarget {
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })
		for i := 1; i < len(ivs); i++ {
			if ivs[i].start < ivs[i-1].end-1e-9 {
				conflicts++
			}
			if ivs[i].end > ivs[i-1].end {
				continue
			}
			// Nested interval: keep the widest end for the next check.
			ivs[i].end = ivs[i-1].end
		}
	}
	return conflicts
}

// clusterTokenConfig returns a tree-mode run whose stripe windows are
// wide enough that the roots collide without cross-root scheduling.
func clusterTokenConfig(seed uint64, nodes, fanout, roots, osts int) (Config, *probeBackend) {
	plat := topology.Kraken(nodes)
	plat.PFS.OSTs = osts
	w := CM1Workload(3)
	w.ComputeTime = 50
	pb := &probeBackend{}
	return Config{
		Platform:    plat,
		Workload:    w,
		Seed:        seed,
		Fanout:      fanout,
		AggRoots:    roots,
		RootStripes: osts, // every root stripes the full array: maximal collision
		Scheduling:  SchedClusterToken,
		testWrapBackend: func(eng *des.Engine, be storage.Backend) storage.Backend {
			pb.eng = eng
			pb.Backend = be
			return pb
		},
	}, pb
}

// TestClusterTokenPropertyNoConcurrentWriters is the scheduling
// invariant of the cluster broker: under SchedClusterToken no OST ever
// serves two concurrent writers, whatever the forest shape — including
// runs where Tree.Fail re-routes subtrees and promotes roots mid-run.
func TestClusterTokenPropertyNoConcurrentWriters(t *testing.T) {
	type tc struct {
		nodes, fanout, roots, osts int
		fail                       *cluster.FailureSchedule
	}
	cases := []tc{
		{nodes: 8, fanout: 2, roots: 2, osts: 8},
		{nodes: 12, fanout: 3, roots: 3, osts: 16},
		{nodes: 16, fanout: 4, roots: 4, osts: 12},
		// Root 0 dies mid-run: a sibling is promoted and inherits the
		// stripe window.
		{nodes: 8, fanout: 2, roots: 2, osts: 8,
			fail: cluster.NewFailureSchedule().Add(0, 1)},
		// An interior node and a root die in the same run.
		{nodes: 16, fanout: 4, roots: 2, osts: 16,
			fail: cluster.NewFailureSchedule().Add(8, 1).Add(1, 2)},
	}
	for i, c := range cases {
		for _, seed := range []uint64{1, 17, 4242} {
			cfg, pb := clusterTokenConfig(seed, c.nodes, c.fanout, c.roots, c.osts)
			cfg.Failures = c.fail
			res, err := Run(Damaris, cfg)
			if err != nil {
				t.Fatalf("case %d seed %d: %v", i, seed, err)
			}
			if len(pb.intervals) == 0 {
				t.Fatalf("case %d seed %d: probe saw no writes", i, seed)
			}
			if n := pb.overlaps(); n != 0 {
				t.Errorf("case %d seed %d: %d concurrent-writer conflicts under %s",
					i, seed, n, SchedClusterToken)
			}
			if c.fail != nil && res.NodesFailed != c.fail.Len() {
				t.Errorf("case %d seed %d: %d nodes failed, schedule had %d",
					i, seed, res.NodesFailed, c.fail.Len())
			}
		}
	}
}

// Without coordination the same layout does collide — the probe is
// actually capable of seeing the conflicts the token prevents.
func TestUncoordinatedRootsCollide(t *testing.T) {
	cfg, pb := clusterTokenConfig(1, 8, 2, 2, 8)
	cfg.Scheduling = SchedNone
	if _, err := Run(Damaris, cfg); err != nil {
		t.Fatal(err)
	}
	if pb.overlaps() == 0 {
		t.Fatal("uncoordinated full-array striping should produce concurrent writers on some OST")
	}
}

// SchedOSTToken guards only the stream's base target: with overlapping
// stripe windows the roots still collide — the per-backend token is not
// a cluster schedule. This is the gap SchedClusterToken closes.
func TestOSTTokenStillCollidesAcrossRoots(t *testing.T) {
	cfg, pb := clusterTokenConfig(1, 8, 2, 2, 12)
	// Bases 0 and 8, windows 8 wide on 12 targets: distinct base tokens,
	// overlapping windows — the collision a base-only token cannot see.
	cfg.RootStripes = 8
	cfg.Scheduling = SchedOSTToken
	if _, err := Run(Damaris, cfg); err != nil {
		t.Fatal(err)
	}
	if pb.overlaps() == 0 {
		t.Fatal("base-target tokens should not prevent stripe-window collisions")
	}
}

func TestSchedulingValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.Scheduling = "bogus"
	if _, err := Run(Damaris, cfg); err == nil {
		t.Fatal("unknown scheduling policy accepted")
	}
	for _, s := range Schedulings() {
		if err := ValidateScheduling(s); err != nil {
			t.Fatalf("listed policy %q rejected: %v", s, err)
		}
	}
}

// The broker's wait shows up in the run's ledger: a contended cluster
// run reports scheduling wait time and root contention.
func TestClusterTokenReportsWait(t *testing.T) {
	cfg, _ := clusterTokenConfig(3, 8, 2, 2, 8)
	res, err := Run(Damaris, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RootContention == 0 {
		t.Fatal("full-array striping with 2 roots should contend")
	}
	if res.SchedWaitTime <= 0 {
		t.Fatal("contended grants should accumulate SchedWaitTime")
	}
	if len(res.TreeWriteLatencies) != cfg.Workload.Iterations {
		t.Fatalf("want %d per-iteration write latencies, got %d",
			cfg.Workload.Iterations, len(res.TreeWriteLatencies))
	}
	for it, l := range res.TreeWriteLatencies {
		if l <= 0 {
			t.Fatalf("iteration %d write latency %v, want > 0", it, l)
		}
	}
}
