package iostrat

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/storage"
)

// insituConfig is treeConfig with an analysis consumer coupled to the
// tree roots.
func insituConfig(mode InSituMode) Config {
	cfg := treeConfig()
	cfg.InSitu = InSituConfig{Mode: mode, AnalysisBandwidth: 5e9}
	return cfg
}

func TestInSituValidation(t *testing.T) {
	cfg := treeConfig()
	cfg.Fanout = 0 // baseline mode: no tree roots to couple to
	cfg.InSitu.Mode = InSituStream
	if _, err := Run(Damaris, cfg); err == nil {
		t.Fatal("in-situ without tree mode must be rejected")
	}
	cfg = insituConfig("bogus")
	if _, err := Run(Damaris, cfg); err == nil {
		t.Fatal("unknown in-situ mode must be rejected")
	}
	cfg = insituConfig(InSituStream)
	cfg.InSitu.Policy = "bogus"
	if _, err := Run(Damaris, cfg); err == nil {
		t.Fatal("unknown slow-consumer policy must be rejected")
	}
	if err := ValidateInSituMode(InSituFile); err != nil {
		t.Fatal(err)
	}
}

// TestInSituFastConsumerAnalyzesEverything: a consumer faster than the
// production rate analyzes every frame under every mode and policy,
// dropping nothing.
func TestInSituFastConsumerAnalyzesEverything(t *testing.T) {
	for _, mode := range InSituModes() {
		for _, pol := range storage.SlowPolicies() {
			cfg := insituConfig(mode)
			cfg.InSitu.Policy = pol
			res, err := Run(Damaris, cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", mode, pol, err)
			}
			// 1 root (16 nodes, fanout 4) × 3 iterations.
			if want := cfg.Workload.Iterations; res.FramesAnalyzed != want {
				t.Errorf("%s/%s: FramesAnalyzed = %d, want %d", mode, pol, res.FramesAnalyzed, want)
			}
			if res.FramesDropped != 0 {
				t.Errorf("%s/%s: FramesDropped = %d, want 0", mode, pol, res.FramesDropped)
			}
			if res.AnalysisCPUTime <= 0 {
				t.Errorf("%s/%s: no analysis CPU charged", mode, pol)
			}
			if len(res.AnalysisLatencies) != res.FramesAnalyzed {
				t.Errorf("%s/%s: %d latencies for %d frames", mode, pol,
					len(res.AnalysisLatencies), res.FramesAnalyzed)
			}
			for i, l := range res.AnalysisLatencies {
				if l <= 0 {
					t.Errorf("%s/%s: latency[%d] = %v", mode, pol, i, l)
				}
			}
		}
	}
}

// TestInSituStreamBeatsFile: the headline shape of the E7 extension on
// the DES face — for a fast consumer, streaming's end-to-end analysis
// latency undercuts file-then-read, which pays write completion plus
// the read-back first. Bytes on storage are identical (streaming rides
// along, it does not replace the write).
func TestInSituStreamBeatsFile(t *testing.T) {
	stream, err := Run(Damaris, insituConfig(InSituStream))
	if err != nil {
		t.Fatal(err)
	}
	file, err := Run(Damaris, insituConfig(InSituFile))
	if err != nil {
		t.Fatal(err)
	}
	if s, f := stream.MeanAnalysisLatency(), file.MeanAnalysisLatency(); s >= f {
		t.Errorf("stream latency %v not below file-then-read %v", s, f)
	}
	if stream.BytesWritten != file.BytesWritten {
		t.Errorf("coupling changed stored bytes: %v vs %v", stream.BytesWritten, file.BytesWritten)
	}
	// The read-back is the difference: only the file coupling grows
	// BytesRead on the backend (visible as extra analysis latency).
	if file.MeanAnalysisLatency()-stream.MeanAnalysisLatency() <= 0 {
		t.Error("file coupling paid no read-back cost")
	}
}

// TestInSituSlowConsumerPolicies: a consumer much slower than the
// production rate. Drop-oldest must leave the write path untouched and
// drop frames; block must leave no frame behind but stall the
// publisher (visible in StreamBlockTime); sample must never block.
func TestInSituSlowConsumerPolicies(t *testing.T) {
	slow := func(pol storage.SlowPolicy) Config {
		cfg := insituConfig(InSituStream)
		cfg.Workload.Iterations = 6
		cfg.InSitu.AnalysisBandwidth = 10e6 // far below production rate
		cfg.InSitu.Buffer = 1
		cfg.InSitu.Policy = pol
		return cfg
	}
	base := slow(storage.DropOldest)
	base.InSitu.Mode = InSituOff
	noInsitu, err := Run(Damaris, base)
	if err != nil {
		t.Fatal(err)
	}

	drop, err := Run(Damaris, slow(storage.DropOldest))
	if err != nil {
		t.Fatal(err)
	}
	if drop.FramesDropped == 0 {
		t.Error("drop-oldest under a slow consumer dropped nothing")
	}
	if drop.StreamBlockTime != 0 {
		t.Errorf("drop-oldest blocked the publisher for %v", drop.StreamBlockTime)
	}
	// The write path must be untouched: per-iteration root-write
	// latency identical to a run with no in-situ coupling at all.
	for it, l := range drop.TreeWriteLatencies {
		if base := noInsitu.TreeWriteLatencies[it]; l != base {
			t.Errorf("iteration %d: drop-oldest write latency %v != baseline %v", it, l, base)
		}
	}

	block, err := Run(Damaris, slow(storage.Block))
	if err != nil {
		t.Fatal(err)
	}
	if block.FramesDropped != 0 {
		t.Errorf("block policy dropped %d frames", block.FramesDropped)
	}
	if block.StreamBlockTime <= 0 {
		t.Error("block policy under a slow consumer measured no backpressure")
	}
	if block.FramesAnalyzed != 6 {
		t.Errorf("block policy analyzed %d frames, want all 6", block.FramesAnalyzed)
	}

	sample, err := Run(Damaris, slow(storage.Sample))
	if err != nil {
		t.Fatal(err)
	}
	if sample.StreamBlockTime != 0 {
		t.Errorf("sample policy blocked the publisher for %v", sample.StreamBlockTime)
	}
	if sample.FramesAnalyzed+sample.FramesDropped != 6 {
		t.Errorf("sample accounting: %d analyzed + %d dropped != 6 offered",
			sample.FramesAnalyzed, sample.FramesDropped)
	}
}

// TestInSituDeterministic: same seed, same frames, same latencies.
func TestInSituDeterministic(t *testing.T) {
	a, err := Run(Damaris, insituConfig(InSituStream))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Damaris, insituConfig(InSituStream))
	if err != nil {
		t.Fatal(err)
	}
	if a.FramesAnalyzed != b.FramesAnalyzed || a.AnalysisCPUTime != b.AnalysisCPUTime {
		t.Fatal("in-situ run not deterministic")
	}
	for i := range a.AnalysisLatencies {
		if a.AnalysisLatencies[i] != b.AnalysisLatencies[i] {
			t.Fatalf("latency %d differs: %v vs %v", i, a.AnalysisLatencies[i], b.AnalysisLatencies[i])
		}
	}
}

// TestInSituSurvivesRootFailure: killing a root mid-run promotes a
// sibling that inherits the consumer queue; the run completes and the
// surviving roots' frames keep flowing.
func TestInSituSurvivesRootFailure(t *testing.T) {
	cfg := insituConfig(InSituStream)
	cfg.AggRoots = 2
	cfg.Workload.Iterations = 4
	rootID := cluster.NewTree(cfg.Platform.Nodes, cfg.Fanout, 2).Roots()[0]
	cfg.Failures = cluster.NewFailureSchedule().Add(rootID, 1)
	res, err := Run(Damaris, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NodesFailed != 1 {
		t.Fatalf("NodesFailed = %d, want 1", res.NodesFailed)
	}
	if res.FramesAnalyzed == 0 {
		t.Fatal("no frames analyzed after a root failure")
	}
	// Analysis CPU rides the dedicated cores' ledger.
	if res.DedicatedBusy < res.AnalysisCPUTime {
		t.Fatalf("DedicatedBusy %v below AnalysisCPUTime %v", res.DedicatedBusy, res.AnalysisCPUTime)
	}
}
