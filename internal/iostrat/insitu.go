package iostrat

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/storage"
)

// InSituMode selects how the DES face couples analysis consumers to the
// aggregation-tree roots — the virtual-time mirror of the runtime
// streaming face (storage.Stream + cluster.NewStreamingHook).
type InSituMode string

const (
	// InSituOff runs no in-situ analysis (the default).
	InSituOff InSituMode = ""
	// InSituStream hands each root's merged iteration to its analysis
	// consumer the moment aggregation completes, before and overlapped
	// with the backend write — the streaming pipeline.
	InSituStream InSituMode = "stream"
	// InSituFile publishes only after the root's backend write
	// completed, and the consumer pays a striped read-back before
	// analyzing — the file-then-read baseline the E7 extension compares
	// streaming against.
	InSituFile InSituMode = "file"
)

// InSituModes lists the couplings the E7 extension sweeps.
func InSituModes() []InSituMode { return []InSituMode{InSituStream, InSituFile} }

// ValidateInSituMode rejects unknown coupling names before a run starts.
func ValidateInSituMode(m InSituMode) error {
	switch m {
	case InSituOff, InSituStream, InSituFile:
		return nil
	}
	return fmt.Errorf("iostrat: unknown in-situ mode %q (have %v)", m, InSituModes())
}

// InSituConfig prices the paper's §V in-situ story at multi-node scale:
// one analysis consumer per aggregation-tree root, running on the
// root's dedicated-core spare time, fed through a bounded queue with
// the same slow-consumer policies as the runtime streaming face.
// Tree mode (Config.Fanout >= 2) only.
type InSituConfig struct {
	// Mode selects the coupling (InSituOff disables everything).
	Mode InSituMode
	// AnalysisBandwidth is the consumer's kernel throughput in raw
	// bytes/s — how fast the dedicated core chews through a frame
	// (default 1 GB/s). Lowering it below the production rate makes the
	// consumer "slow" and exercises the policy.
	AnalysisBandwidth float64
	// Buffer is the per-root queue capacity in iterations (default
	// storage.DefaultStreamBuffer). It bounds staleness: under
	// DropOldest a consumer is never more than Buffer frames behind its
	// root.
	Buffer int
	// Policy is the slow-consumer policy (default storage.DropOldest).
	// storage.Block models backpressure without a timeout on this face:
	// the publisher — the root's write path — waits for queue space,
	// and the wait is measured in Result.StreamBlockTime (and visible
	// in TreeWriteLatencies). The runtime face adds the detach timeout.
	Policy storage.SlowPolicy
}

func (c InSituConfig) withDefaults() InSituConfig {
	if c.AnalysisBandwidth <= 0 {
		c.AnalysisBandwidth = 1e9
	}
	if c.Buffer <= 0 {
		c.Buffer = storage.DefaultStreamBuffer
	}
	if c.Policy == "" {
		c.Policy = storage.DropOldest
	}
	return c
}

// validate rejects a configuration the DES face cannot run.
func (c InSituConfig) validate(treeMode bool) error {
	if c.Mode == InSituOff {
		return nil
	}
	if err := ValidateInSituMode(c.Mode); err != nil {
		return err
	}
	if !treeMode {
		return fmt.Errorf("iostrat: in-situ coupling requires tree mode (Fanout >= 2)")
	}
	return storage.ValidateSlowPolicy(string(c.Policy))
}

// insituQ is the DES counterpart of a storage.Subscription: one root's
// bounded frame queue between its dedicated core (publisher) and its
// analysis consumer proc, with des.Future parking instead of mutexes —
// the same discipline as nodeShm. One publisher (the node currently
// owning the root ordinal) and one consumer per queue.
type insituQ struct {
	eng      *des.Engine
	capacity int
	policy   storage.SlowPolicy
	pending  []shmIter
	waiting  *des.Future // consumer parked on an empty queue
	space    *des.Future // Block-policy publisher parked on a full queue
	closed   bool
	dropped  int
}

// publish offers one frame under the queue's policy and returns how
// long the publisher was blocked (non-zero only under storage.Block).
func (q *insituQ) publish(p *des.Proc, item shmIter) float64 {
	blocked := 0.0
	for {
		if q.closed {
			return blocked
		}
		if len(q.pending) < q.capacity {
			q.pending = append(q.pending, item)
			q.wakeConsumer()
			return blocked
		}
		switch q.policy {
		case storage.Sample:
			q.dropped++
			return blocked
		case storage.Block:
			t0 := p.Now()
			q.space = q.eng.NewFuture()
			p.Await(q.space)
			blocked += p.Now() - t0
		default: // storage.DropOldest
			q.pending = q.pending[1:]
			q.dropped++
		}
	}
}

// take blocks the consumer until a frame is pending, draining the
// backlog before honouring closure.
func (q *insituQ) take(p *des.Proc) (shmIter, bool) {
	for len(q.pending) == 0 {
		if q.closed {
			return shmIter{}, false
		}
		q.waiting = q.eng.NewFuture()
		p.Await(q.waiting)
	}
	item := q.pending[0]
	q.pending = q.pending[1:]
	if q.space != nil {
		f := q.space
		q.space = nil
		f.Complete()
	}
	return item, true
}

func (q *insituQ) wakeConsumer() {
	if q.waiting != nil {
		f := q.waiting
		q.waiting = nil
		f.Complete()
	}
}

// close ends the stream: the consumer drains what is queued and exits;
// a parked Block publisher is released.
func (q *insituQ) close() {
	q.closed = true
	q.wakeConsumer()
	if q.space != nil {
		f := q.space
		q.space = nil
		f.Complete()
	}
}

// publishInSitu hands a completed root frame to the given root
// ordinal's consumer queue (no-op when in-situ is off), charging any
// Block-policy wait to the publisher and the run's StreamBlockTime.
// The caller resolves the ordinal through the frame's topology epoch,
// so a frame routed by an older tree reaches the queue that root owned.
func (tr *treeRun) publishInSitu(p *des.Proc, ord int, item shmIter) {
	if tr.insituQs == nil || item.bytes <= 0 {
		return
	}
	q := tr.insituQs[ord]
	if blocked := q.publish(p, item); blocked > 0 {
		tr.res.StreamBlockTime += blocked
	}
}

// growInsitu widens the per-root-ordinal queue/consumer array to cover
// numRoots ordinals (no-op when in-situ is off or already wide enough):
// a re-formation that flattens the forest spawns consumers for the new
// ordinals mid-run, while shrunken root sets keep their extra queues —
// frames from fenced iterations may still arrive on them.
func (tr *treeRun) growInsitu(numRoots int) {
	if tr.cfg.InSitu.Mode == InSituOff {
		return
	}
	for len(tr.insituQs) < numRoots {
		q := &insituQ{
			eng:      tr.eng,
			capacity: tr.cfg.InSitu.Buffer,
			policy:   tr.cfg.InSitu.Policy,
		}
		tr.insituQs = append(tr.insituQs, q)
		ord := len(tr.insituQs) - 1
		tr.eng.Spawn("insitu", func(p *des.Proc) { tr.runConsumer(p, ord) })
	}
}

// closeInSituOrdinal ends one root ordinal's stream (no-op when
// in-situ is off).
func (tr *treeRun) closeInSituOrdinal(ord int) {
	if tr.insituQs != nil {
		tr.insituQs[ord].close()
	}
}

// runConsumer is one root's analysis consumer: a proc on the root's
// dedicated-core pool that drains the frame queue and pays analysis
// CPU per frame — §V's visualization running on the cores' spare time.
// Under InSituFile each frame additionally pays the striped read-back
// of the root object before any kernel runs (the file-then-read
// baseline); under InSituStream the frame is already in memory.
func (tr *treeRun) runConsumer(p *des.Proc, ord int) {
	cfg, be, res := tr.cfg, tr.be, tr.res
	q := tr.insituQs[ord]
	for {
		item, ok := q.take(p)
		if !ok {
			return
		}
		if cfg.InSitu.Mode == InSituFile {
			// Read the just-written root object back through the same
			// stripe window the write used — the frame's own epoch's,
			// which a later re-formation does not retarget; the read
			// competes with whatever the storage system is serving.
			stripes := tr.epochFor(item.iter).stripes
			base := (ord * stripes) % be.Targets()
			futs := make([]*des.Future, stripes)
			for s := 0; s < stripes; s++ {
				futs[s] = be.ReadAsync((base+s)%be.Targets(), item.bytes/float64(stripes),
					storage.BigSequential)
			}
			for _, f := range futs {
				p.Await(f)
			}
		}
		cpu := item.bytes / cfg.InSitu.AnalysisBandwidth
		p.Wait(cpu)
		res.AnalysisCPUTime += cpu
		res.DedicatedBusy += cpu // analysis rides the dedicated cores
		res.FramesAnalyzed++
		res.AnalysisLatencies = append(res.AnalysisLatencies,
			p.Now()-tr.phaseStart[item.iter])
	}
}
