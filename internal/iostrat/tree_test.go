package iostrat

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/storage"
	"repro/internal/topology"
)

// treeConfig returns a 16-node machine with cross-node aggregation on.
func treeConfig() Config {
	plat := topology.Kraken(16)
	plat.PFS.OSTs = 32
	w := CM1Workload(3)
	w.ComputeTime = 50
	return Config{Platform: plat, Workload: w, Seed: 7, Fanout: 4}
}

func TestDamarisTreeConservesBytes(t *testing.T) {
	cfg := treeConfig()
	res, err := Run(Damaris, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SkippedIters > 0 {
		t.Fatalf("unexpected skips: %d", res.SkippedIters)
	}
	want := cfg.Workload.NodeBytes(cfg.Platform.CoresPerNode) *
		float64(cfg.Platform.Nodes) * float64(cfg.Workload.Iterations)
	if res.BytesWritten < want*0.999 || res.BytesWritten > want*1.001 {
		t.Errorf("tree mode wrote %v bytes, want %v", res.BytesWritten, want)
	}
}

func TestDamarisTreeAggregatesFiles(t *testing.T) {
	cfg := treeConfig()
	base, err := Run(Damaris, Config{Platform: cfg.Platform, Workload: cfg.Workload, Seed: cfg.Seed})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Run(Damaris, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 16 nodes, fanout 4 → 1 root: one file per iteration instead of 16.
	if want := cfg.Workload.Iterations; tree.FilesCreated != want {
		t.Errorf("tree mode created %d files, want %d", tree.FilesCreated, want)
	}
	if tree.FilesCreated >= base.FilesCreated {
		t.Errorf("aggregation did not reduce file count: %d vs %d",
			tree.FilesCreated, base.FilesCreated)
	}
	if base.BytesWritten != tree.BytesWritten {
		t.Errorf("aggregation changed the payload: %v vs %v", tree.BytesWritten, base.BytesWritten)
	}
}

func TestDamarisTreeHidesIO(t *testing.T) {
	res, err := Run(Damaris, treeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanIOTime() > 1.0 {
		t.Errorf("tree mode visible I/O phase = %v s, want well under a second", res.MeanIOTime())
	}
}

func TestDamarisTreeDeterministic(t *testing.T) {
	cfg := treeConfig()
	r1, err := Run(Damaris, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(Damaris, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalTime != r2.TotalTime || r1.BytesWritten != r2.BytesWritten ||
		r1.DrainTime != r2.DrainTime {
		t.Errorf("tree mode not deterministic: %+v vs %+v", r1, r2)
	}
}

func TestDamarisTreeSurvivesSkips(t *testing.T) {
	cfg := treeConfig()
	cfg.ShmCapacity = 1e6 // cannot hold one iteration: every node skips
	res, err := Run(Damaris, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SkippedIters == 0 {
		t.Fatal("expected skips with a tiny segment")
	}
	// Zero-byte markers must keep the tree in lockstep: the run ends
	// without a modeling deadlock and writes next to nothing.
	if res.BytesWritten > 0 {
		t.Errorf("skipped iterations still wrote %v bytes", res.BytesWritten)
	}
}

func TestDamarisTreeMultiRoot(t *testing.T) {
	cfg := treeConfig()
	cfg.AggRoots = 4
	res, err := Run(Damaris, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 * cfg.Workload.Iterations; res.FilesCreated != want {
		t.Errorf("4 roots created %d files, want %d", res.FilesCreated, want)
	}
}

func TestDamarisTreeWithScheduling(t *testing.T) {
	cfg := treeConfig()
	cfg.Scheduling = SchedOSTToken
	if _, err := Run(Damaris, cfg); err != nil {
		t.Fatal(err)
	}
	cfg.Scheduling = SchedGlobalToken
	if _, err := Run(Damaris, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDamarisTreeCompression(t *testing.T) {
	cfg := treeConfig()
	cfg.CompressRatio = 2
	res, err := Run(Damaris, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.Workload.NodeBytes(cfg.Platform.CoresPerNode) *
		float64(cfg.Platform.Nodes) * float64(cfg.Workload.Iterations) / 2
	if res.BytesWritten < want*0.999 || res.BytesWritten > want*1.001 {
		t.Errorf("compressed tree mode wrote %v bytes, want %v", res.BytesWritten, want)
	}
}

// TestBackendSwapOrderingConsistent is the cross-backend contract: at
// 16 simulated nodes, the aggregate-throughput ordering of the three
// strategies must be the same whichever backend the run writes
// through, with Damaris on top.
func TestBackendSwapOrderingConsistent(t *testing.T) {
	order := func(kind storage.Kind) []Approach {
		cfg := treeConfig()
		cfg.Backend = kind
		th := map[Approach]float64{}
		for _, a := range []Approach{FilePerProcess, Collective, Damaris} {
			res, err := Run(a, cfg)
			if err != nil {
				t.Fatal(err)
			}
			th[a] = res.Throughput()
		}
		ranked := RankByThroughput(th)
		if ranked[0] != Damaris {
			t.Errorf("%s: Damaris not on top: dam=%v fpp=%v coll=%v",
				kind, th[Damaris], th[FilePerProcess], th[Collective])
		}
		return ranked
	}
	pfsOrder := order(storage.KindPFS)
	memOrder := order(storage.KindMemory)
	for i := range pfsOrder {
		if pfsOrder[i] != memOrder[i] {
			t.Fatalf("throughput ordering differs across backends: pfs=%v memory=%v",
				pfsOrder, memOrder)
		}
	}
}

func TestMemoryBackendBitReproducible(t *testing.T) {
	cfg := treeConfig()
	cfg.Backend = storage.KindMemory
	r1, err := Run(Damaris, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(Damaris, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalTime != r2.TotalTime || r1.IOWindow != r2.IOWindow {
		t.Error("memory backend runs differ")
	}
}

func TestSDFBackendNeedsDir(t *testing.T) {
	cfg := treeConfig()
	cfg.Backend = storage.KindSDF
	if _, err := Run(Damaris, cfg); err == nil {
		t.Fatal("sdf backend without BackendDir should error")
	}
	cfg.BackendDir = t.TempDir()
	if _, err := Run(Damaris, cfg); err != nil {
		t.Fatal(err)
	}
}

// failConfig kills interior node 1 (children 5..8) at iteration 1 of 3.
func failConfig() Config {
	cfg := treeConfig()
	cfg.Failures = cluster.NewFailureSchedule().Add(1, 1)
	return cfg
}

func TestDamarisTreeFailureAccounting(t *testing.T) {
	cfg := failConfig()
	res, err := Run(Damaris, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NodesFailed != 1 {
		t.Errorf("NodesFailed = %d, want 1", res.NodesFailed)
	}
	if res.ReroutedEdges != 4 {
		t.Errorf("ReroutedEdges = %d, want 4 (children 5..8 re-route to the root)", res.ReroutedEdges)
	}
	nodeBytes := cfg.Workload.NodeBytes(cfg.Platform.CoresPerNode)
	total := nodeBytes * float64(cfg.Platform.Nodes) * float64(cfg.Workload.Iterations)
	// Node 1's own output for iterations 1 and 2 is the only loss; the
	// re-routed children's data still reaches the root.
	wantLost := 2 * nodeBytes
	if res.LostBytes < wantLost*0.999 || res.LostBytes > wantLost*1.001 {
		t.Errorf("LostBytes = %v, want %v", res.LostBytes, wantLost)
	}
	wantWritten := total - wantLost
	if res.BytesWritten < wantWritten*0.999 || res.BytesWritten > wantWritten*1.001 {
		t.Errorf("BytesWritten = %v, want %v (conservation)", res.BytesWritten, wantWritten)
	}
	want := []float64{1, 15.0 / 16, 15.0 / 16}
	for it, frac := range res.Completeness {
		if frac != want[it] {
			t.Errorf("Completeness[%d] = %v, want %v", it, frac, want[it])
		}
	}
	if loss := res.DataLossFraction(); loss <= 0 || loss >= 0.1 {
		t.Errorf("DataLossFraction = %v, want small but positive", loss)
	}
	if res.SkippedIters != 0 {
		t.Errorf("SkippedIters = %d: failure loss must not masquerade as skips", res.SkippedIters)
	}
}

func TestDamarisTreeFailureDeterministic(t *testing.T) {
	cfg := failConfig()
	r1, err := Run(Damaris, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(Damaris, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalTime != r2.TotalTime || r1.BytesWritten != r2.BytesWritten ||
		r1.LostBytes != r2.LostBytes || r1.DrainTime != r2.DrainTime {
		t.Errorf("failure runs differ: %+v vs %+v", r1, r2)
	}
	for it := range r1.Completeness {
		if r1.Completeness[it] != r2.Completeness[it] {
			t.Errorf("Completeness[%d] differs", it)
		}
	}
}

func TestDamarisTreeRootFailurePromotes(t *testing.T) {
	cfg := treeConfig()
	cfg.AggRoots = 4 // subtrees of 4 nodes: roots 0, 4, 8, 12
	cfg.Failures = cluster.NewFailureSchedule().Add(0, 1)
	res, err := Run(Damaris, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NodesFailed != 1 {
		t.Errorf("NodesFailed = %d, want 1", res.NodesFailed)
	}
	// Node 1 promoted to root, 2 and 3 re-routed under it.
	if res.ReroutedEdges != 3 {
		t.Errorf("ReroutedEdges = %d, want 3", res.ReroutedEdges)
	}
	// The last iteration, well past the death, must be written by the
	// promoted root: only the dead node itself is missing.
	last := len(res.Completeness) - 1
	if want := 15.0 / 16; res.Completeness[last] != want {
		t.Errorf("Completeness[%d] = %v, want %v", last, res.Completeness[last], want)
	}
	// Every root wrote iteration 0; the promoted root writes again
	// after the takeover.
	if res.FilesCreated < 10 || res.FilesCreated > 12 {
		t.Errorf("FilesCreated = %d, want within [10, 12]", res.FilesCreated)
	}
}

func TestDamarisTreeEmptyScheduleMatchesNil(t *testing.T) {
	cfg := treeConfig()
	base, err := Run(Damaris, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Failures = cluster.NewFailureSchedule()
	empty, err := Run(Damaris, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.TotalTime != empty.TotalTime || base.BytesWritten != empty.BytesWritten ||
		base.DrainTime != empty.DrainTime || empty.NodesFailed != 0 || empty.LostBytes != 0 {
		t.Errorf("empty schedule changed the run: %+v vs %+v", base, empty)
	}
	for it, frac := range empty.Completeness {
		if frac != 1 {
			t.Errorf("Completeness[%d] = %v without failures", it, frac)
		}
	}
}

func TestDamarisTreeFailureWithSkips(t *testing.T) {
	// Failures and the §V.C skip policy must compose: a tiny segment
	// makes every live node skip, while node 1 dies outright.
	cfg := failConfig()
	cfg.ShmCapacity = 1e6
	res, err := Run(Damaris, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SkippedIters == 0 {
		t.Fatal("expected skips with a tiny segment")
	}
	if res.NodesFailed != 1 {
		t.Errorf("NodesFailed = %d, want 1", res.NodesFailed)
	}
	if res.BytesWritten > 0 {
		t.Errorf("skipped iterations still wrote %v bytes", res.BytesWritten)
	}
	if loss := res.DataLossFraction(); loss <= 0.9 {
		t.Errorf("DataLossFraction = %v, want near-total loss", loss)
	}
}
