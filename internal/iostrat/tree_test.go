package iostrat

import (
	"testing"

	"repro/internal/storage"
	"repro/internal/topology"
)

// treeConfig returns a 16-node machine with cross-node aggregation on.
func treeConfig() Config {
	plat := topology.Kraken(16)
	plat.PFS.OSTs = 32
	w := CM1Workload(3)
	w.ComputeTime = 50
	return Config{Platform: plat, Workload: w, Seed: 7, Fanout: 4}
}

func TestDamarisTreeConservesBytes(t *testing.T) {
	cfg := treeConfig()
	res, err := Run(Damaris, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SkippedIters > 0 {
		t.Fatalf("unexpected skips: %d", res.SkippedIters)
	}
	want := cfg.Workload.NodeBytes(cfg.Platform.CoresPerNode) *
		float64(cfg.Platform.Nodes) * float64(cfg.Workload.Iterations)
	if res.BytesWritten < want*0.999 || res.BytesWritten > want*1.001 {
		t.Errorf("tree mode wrote %v bytes, want %v", res.BytesWritten, want)
	}
}

func TestDamarisTreeAggregatesFiles(t *testing.T) {
	cfg := treeConfig()
	base, err := Run(Damaris, Config{Platform: cfg.Platform, Workload: cfg.Workload, Seed: cfg.Seed})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Run(Damaris, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 16 nodes, fanout 4 → 1 root: one file per iteration instead of 16.
	if want := cfg.Workload.Iterations; tree.FilesCreated != want {
		t.Errorf("tree mode created %d files, want %d", tree.FilesCreated, want)
	}
	if tree.FilesCreated >= base.FilesCreated {
		t.Errorf("aggregation did not reduce file count: %d vs %d",
			tree.FilesCreated, base.FilesCreated)
	}
	if base.BytesWritten != tree.BytesWritten {
		t.Errorf("aggregation changed the payload: %v vs %v", tree.BytesWritten, base.BytesWritten)
	}
}

func TestDamarisTreeHidesIO(t *testing.T) {
	res, err := Run(Damaris, treeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanIOTime() > 1.0 {
		t.Errorf("tree mode visible I/O phase = %v s, want well under a second", res.MeanIOTime())
	}
}

func TestDamarisTreeDeterministic(t *testing.T) {
	cfg := treeConfig()
	r1, err := Run(Damaris, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(Damaris, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalTime != r2.TotalTime || r1.BytesWritten != r2.BytesWritten ||
		r1.DrainTime != r2.DrainTime {
		t.Errorf("tree mode not deterministic: %+v vs %+v", r1, r2)
	}
}

func TestDamarisTreeSurvivesSkips(t *testing.T) {
	cfg := treeConfig()
	cfg.ShmCapacity = 1e6 // cannot hold one iteration: every node skips
	res, err := Run(Damaris, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SkippedIters == 0 {
		t.Fatal("expected skips with a tiny segment")
	}
	// Zero-byte markers must keep the tree in lockstep: the run ends
	// without a modeling deadlock and writes next to nothing.
	if res.BytesWritten > 0 {
		t.Errorf("skipped iterations still wrote %v bytes", res.BytesWritten)
	}
}

func TestDamarisTreeMultiRoot(t *testing.T) {
	cfg := treeConfig()
	cfg.AggRoots = 4
	res, err := Run(Damaris, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 * cfg.Workload.Iterations; res.FilesCreated != want {
		t.Errorf("4 roots created %d files, want %d", res.FilesCreated, want)
	}
}

func TestDamarisTreeWithScheduling(t *testing.T) {
	cfg := treeConfig()
	cfg.Scheduling = SchedOSTToken
	if _, err := Run(Damaris, cfg); err != nil {
		t.Fatal(err)
	}
	cfg.Scheduling = SchedGlobalToken
	if _, err := Run(Damaris, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDamarisTreeCompression(t *testing.T) {
	cfg := treeConfig()
	cfg.CompressRatio = 2
	res, err := Run(Damaris, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.Workload.NodeBytes(cfg.Platform.CoresPerNode) *
		float64(cfg.Platform.Nodes) * float64(cfg.Workload.Iterations) / 2
	if res.BytesWritten < want*0.999 || res.BytesWritten > want*1.001 {
		t.Errorf("compressed tree mode wrote %v bytes, want %v", res.BytesWritten, want)
	}
}

// TestBackendSwapOrderingConsistent is the cross-backend contract: at
// 16 simulated nodes, the aggregate-throughput ordering of the three
// strategies must be the same whichever backend the run writes
// through, with Damaris on top.
func TestBackendSwapOrderingConsistent(t *testing.T) {
	order := func(kind storage.Kind) []Approach {
		cfg := treeConfig()
		cfg.Backend = kind
		th := map[Approach]float64{}
		for _, a := range []Approach{FilePerProcess, Collective, Damaris} {
			res, err := Run(a, cfg)
			if err != nil {
				t.Fatal(err)
			}
			th[a] = res.Throughput()
		}
		ranked := RankByThroughput(th)
		if ranked[0] != Damaris {
			t.Errorf("%s: Damaris not on top: dam=%v fpp=%v coll=%v",
				kind, th[Damaris], th[FilePerProcess], th[Collective])
		}
		return ranked
	}
	pfsOrder := order(storage.KindPFS)
	memOrder := order(storage.KindMemory)
	for i := range pfsOrder {
		if pfsOrder[i] != memOrder[i] {
			t.Fatalf("throughput ordering differs across backends: pfs=%v memory=%v",
				pfsOrder, memOrder)
		}
	}
}

func TestMemoryBackendBitReproducible(t *testing.T) {
	cfg := treeConfig()
	cfg.Backend = storage.KindMemory
	r1, err := Run(Damaris, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(Damaris, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalTime != r2.TotalTime || r1.IOWindow != r2.IOWindow {
		t.Error("memory backend runs differ")
	}
}

func TestSDFBackendNeedsDir(t *testing.T) {
	cfg := treeConfig()
	cfg.Backend = storage.KindSDF
	if _, err := Run(Damaris, cfg); err == nil {
		t.Fatal("sdf backend without BackendDir should error")
	}
	cfg.BackendDir = t.TempDir()
	if _, err := Run(Damaris, cfg); err != nil {
		t.Fatal(err)
	}
}
