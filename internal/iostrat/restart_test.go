package iostrat

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/storage"
	"repro/internal/topology"
)

func restartConfig(nodes, fanout int) Config {
	return Config{
		Platform: topology.Kraken(nodes),
		Workload: CM1Workload(2),
		Seed:     7,
		Backend:  storage.KindMemory,
		Fanout:   fanout,
	}
}

// TestRestartReadShape: both layouts read the full checkpoint back, and
// the tree mode reads through few roots with wide stripes.
func TestRestartReadShape(t *testing.T) {
	const nodes = 16
	wantBytes := CM1Workload(2).NodeBytes(topology.Kraken(1).CoresPerNode) * nodes
	for _, fanout := range []int{0, 4} {
		res, err := RestartRead(restartConfig(nodes, fanout))
		if err != nil {
			t.Fatal(err)
		}
		if res.BytesRead != wantBytes {
			t.Errorf("fanout %d: BytesRead = %g, want %g", fanout, res.BytesRead, wantBytes)
		}
		if res.ReadTime <= 0 || res.TotalTime < res.ReadTime {
			t.Errorf("fanout %d: times wrong: read=%g total=%g", fanout, res.ReadTime, res.TotalTime)
		}
		if fanout == 0 && res.Roots != nodes {
			t.Errorf("baseline should read one file per node, got %d roots", res.Roots)
		}
		if fanout == 4 && res.Roots >= nodes {
			t.Errorf("tree mode should read through few roots, got %d", res.Roots)
		}
	}
	// Tree mode pays NIC scatter on top of the read; baseline does not.
	base, _ := RestartRead(restartConfig(nodes, 0))
	if base.TotalTime != base.ReadTime {
		t.Errorf("baseline has no scatter phase: read=%g total=%g", base.ReadTime, base.TotalTime)
	}
}

// TestRestartReadDeterministic: the memory backend has no stochastic
// inputs, so two runs are bit-identical.
func TestRestartReadDeterministic(t *testing.T) {
	a, err := RestartRead(restartConfig(8, 2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RestartRead(restartConfig(8, 2))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("restart model not deterministic: %+v vs %+v", a, b)
	}
}

// TestRestartReadAfterFailures: dead nodes hold no data and receive
// none, so the restart reads strictly less.
func TestRestartReadAfterFailures(t *testing.T) {
	cfg := restartConfig(16, 2)
	full, err := RestartRead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Failures = cluster.NewFailureSchedule().Add(3, 0).Add(5, 0)
	less, err := RestartRead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perNode := CM1Workload(2).NodeBytes(topology.Kraken(1).CoresPerNode)
	want := full.BytesRead - 2*perNode
	if diff := less.BytesRead - want; diff > 1 || diff < -1 {
		t.Fatalf("BytesRead = %g after 2 deaths, want %g", less.BytesRead, want)
	}
}

// TestRestartReadAllRootsDead: nothing was stored, nothing to read.
func TestRestartReadAllRootsDead(t *testing.T) {
	cfg := restartConfig(2, 2)
	cfg.AggRoots = 1
	sched := cluster.NewFailureSchedule()
	for n := 0; n < 2; n++ {
		sched.Add(n, 0)
	}
	cfg.Failures = sched
	res, err := RestartRead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesRead != 0 || res.TotalTime != 0 {
		t.Fatalf("read %g bytes from a dead forest: %+v", res.BytesRead, res)
	}
}
