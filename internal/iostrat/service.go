// This file is the multi-tenant service model: the DES face of
// cluster.Service. Where the runtime face hosts a handful of real
// tenant clusters, this model prices thousands of queued jobs cheaply —
// one lightweight process per job, a node-counting admission gate in
// front of the machine, and a shared deadline broker arbitrating the
// write phases — so E9 can sweep tenancy × arrival rate × admission
// policy in virtual time.

package iostrat

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/topology"
)

// ServiceConfig parameterizes one multi-tenant DES run.
type ServiceConfig struct {
	// Platform is the shared machine; Platform.Nodes is the admission
	// capacity in nodes (one dedicated core each).
	Platform topology.Platform
	// Seed drives every random stream of the run.
	Seed uint64
	// Jobs is the number of tenant jobs submitted.
	Jobs int
	// ArrivalRate is the mean job arrival rate in jobs per second
	// (Poisson). 0 submits every job at t=0.
	ArrivalRate float64
	// Admission is the oversubscription policy, shared with the runtime
	// face (cluster.AdmitFIFO, AdmitDeadline, AdmitReject,
	// AdmitDegrade).
	Admission cluster.AdmissionPolicy
	// NodesPerJob is each job's node ask (default max(1, Nodes/4)).
	NodesPerJob int
	// Workload is the per-job base workload; big jobs scale its
	// iteration count.
	Workload Workload
	// BigJobFraction of jobs are "big": BigJobFactor× the base
	// iterations AND BigJobFactor× the node ask (clamped to the
	// machine). The bimodal mix is what makes admission ordering
	// matter — under FIFO a wide job at the head convoys everything
	// behind it (defaults 0.25 and 4).
	BigJobFraction float64
	BigJobFactor   int
	// DeadlineSlack sets each job's completion deadline to
	// arrival + slack × its ideal (unqueued) runtime (default 1.5).
	// Under AdmitDeadline, shorter jobs therefore carry earlier
	// deadlines and go first — EDF degrades to shortest-job-first on
	// this mix, which is exactly what flattens the tail.
	DeadlineSlack float64
	// WriteSlots is how many jobs the PFS serves at full stripe speed
	// concurrently; more writers queue on the shared broker (default
	// max(2, OSTs/64)).
	WriteSlots int
}

func (c ServiceConfig) withDefaults() ServiceConfig {
	if c.NodesPerJob <= 0 {
		c.NodesPerJob = c.Platform.Nodes / 4
		if c.NodesPerJob < 1 {
			c.NodesPerJob = 1
		}
	}
	if c.Admission == "" {
		c.Admission = cluster.AdmitFIFO
	}
	if c.BigJobFraction == 0 {
		c.BigJobFraction = 0.25
	}
	if c.BigJobFactor <= 0 {
		c.BigJobFactor = 4
	}
	if c.DeadlineSlack <= 0 {
		c.DeadlineSlack = 1.5
	}
	if c.WriteSlots <= 0 {
		c.WriteSlots = c.Platform.PFS.OSTs / 64
		if c.WriteSlots < 2 {
			c.WriteSlots = 2
		}
	}
	return c
}

// JobResult is one tenant job's measurements.
type JobResult struct {
	ID      int
	Arrival float64
	// AdmitTime is when the job got its nodes (== Arrival when it never
	// queued); meaningless when Rejected.
	AdmitTime float64
	// NodesAsked and Nodes are the quota and the actual grant (they
	// differ only under AdmitDegrade).
	NodesAsked int
	Nodes      int
	Rejected   bool
	Degraded   bool
	Iterations int
	Deadline   float64
	Finish     float64
	// Bytes reached storage; LostBytes is what degradation shed (the
	// nodes the job did not get still would have produced output).
	Bytes     float64
	LostBytes float64
	// WriteLatencies has one entry per iteration: the write's
	// completion time minus its ideal (admitted-at-arrival, unqueued)
	// completion time — admission wait, broker wait, and bandwidth
	// sharing all land here.
	WriteLatencies []float64
}

// MissedDeadline reports whether the job finished past its deadline.
func (j JobResult) MissedDeadline() bool {
	return !j.Rejected && j.Finish > j.Deadline
}

// ServiceResult aggregates one multi-tenant DES run.
type ServiceResult struct {
	Config    ServiceConfig
	Jobs      []JobResult
	Admitted  int
	Rejected  int
	Degraded  int
	MaxQueued int
	// TotalTime is when the last job finished.
	TotalTime float64
	// TokenWaitTime is the virtual time jobs spent queued on the shared
	// write broker (contention between already-admitted tenants).
	TokenWaitTime float64
	// AdmissionWaitTime is the virtual time jobs spent queued for
	// nodes.
	AdmissionWaitTime float64
	// DeadlinesMissed counts jobs finishing past their deadline.
	DeadlinesMissed int
}

// writeLatencies returns every per-iteration write latency, sorted.
func (r ServiceResult) writeLatencies() []float64 {
	var all []float64
	for _, j := range r.Jobs {
		all = append(all, j.WriteLatencies...)
	}
	sort.Float64s(all)
	return all
}

// P99WriteLatency returns the 99th percentile of per-iteration write
// latency across every admitted job — E9's headline tail metric.
func (r ServiceResult) P99WriteLatency() float64 {
	return stats.Percentile(r.writeLatencies(), 99)
}

// MeanWriteLatency returns the mean per-iteration write latency.
func (r ServiceResult) MeanWriteLatency() float64 {
	return stats.Mean(r.writeLatencies())
}

// desJob is one job's in-flight state.
type desJob struct {
	res     JobResult
	need    int
	granted int
	fut     *des.Future
	prio    int
}

// desAdmission is the DES mirror of cluster.Service admission: a node
// counter and a policy-ordered queue. The engine is single-threaded, so
// no locking — everything runs in event order.
type desAdmission struct {
	eng       *des.Engine
	policy    cluster.AdmissionPolicy
	free      int
	queue     []*desJob
	maxQueued int
}

// admit blocks p until the job has nodes; ok=false means rejected.
func (ad *desAdmission) admit(p *des.Proc, j *desJob) (granted int, ok bool) {
	if j.need <= ad.free {
		ad.free -= j.need
		return j.need, true
	}
	switch ad.policy {
	case cluster.AdmitReject:
		return 0, false
	case cluster.AdmitDegrade:
		if ad.free > 0 {
			g := ad.free
			ad.free = 0
			return g, true
		}
		// Nothing free: even a degradable job waits its turn.
	}
	j.fut = ad.eng.NewFuture()
	ad.queue = append(ad.queue, j)
	if len(ad.queue) > ad.maxQueued {
		ad.maxQueued = len(ad.queue)
	}
	p.Await(j.fut)
	return j.granted, true
}

// release returns nodes and dispatches the queue in policy order, with
// the same deliberate head-of-line blocking as the runtime face.
func (ad *desAdmission) release(n int) {
	ad.free += n
	if ad.policy == cluster.AdmitDeadline {
		sort.SliceStable(ad.queue, func(i, k int) bool {
			a, b := ad.queue[i], ad.queue[k]
			if a.prio != b.prio {
				return a.prio > b.prio
			}
			if a.res.Deadline != b.res.Deadline {
				return a.res.Deadline < b.res.Deadline
			}
			return a.res.ID < b.res.ID
		})
	}
	for len(ad.queue) > 0 {
		head := ad.queue[0]
		g := head.need
		if g > ad.free {
			if ad.policy != cluster.AdmitDegrade || ad.free <= 0 {
				return
			}
			g = ad.free
		}
		ad.queue = ad.queue[1:]
		ad.free -= g
		head.granted = g
		head.fut.Complete()
	}
}

// RunService executes the multi-tenant DES model and returns its
// measurements.
func RunService(cfg ServiceConfig) (ServiceResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Platform.Nodes <= 0 {
		return ServiceResult{}, fmt.Errorf("iostrat: platform has %d nodes", cfg.Platform.Nodes)
	}
	if cfg.Jobs <= 0 {
		return ServiceResult{}, fmt.Errorf("iostrat: %d jobs", cfg.Jobs)
	}
	if err := cluster.ValidateAdmissionPolicy(cfg.Admission); err != nil {
		return ServiceResult{}, err
	}
	if cfg.Workload.Iterations <= 0 || cfg.Workload.ComputeTime <= 0 {
		return ServiceResult{}, fmt.Errorf("iostrat: service workload needs iterations and compute time")
	}

	eng := des.NewEngine()
	root := rng.New(cfg.Seed, 0).Named("service")
	arrivals := root.Named("arrivals")
	mix := root.Named("mix")

	// The shared write broker: WriteSlots stripe windows, deadline
	// arbitration among admitted tenants (the E6 result, applied
	// cross-tenant). Holder = tenant id — one lightweight writer each.
	broker := storage.NewBroker(storage.BrokerOptions{
		Policy:  storage.PolicyDeadline,
		Targets: cfg.WriteSlots,
		Engine:  eng,
	})

	// Per-writer bandwidth when every slot is busy: the OST array's
	// sequential capacity divided by the concurrent slots.
	perWriterBW := cfg.Platform.PFS.OSTBandwidth * float64(cfg.Platform.PFS.OSTs) /
		float64(cfg.WriteSlots)
	if perWriterBW <= 0 {
		return ServiceResult{}, fmt.Errorf("iostrat: platform has no PFS bandwidth")
	}

	ad := &desAdmission{eng: eng, policy: cfg.Admission, free: cfg.Platform.Nodes}
	jobs := make([]*desJob, cfg.Jobs)
	nodeBytes := cfg.Workload.NodeBytes(cfg.Platform.CoresPerNode)

	at := 0.0
	for i := 0; i < cfg.Jobs; i++ {
		if i > 0 && cfg.ArrivalRate > 0 {
			at += arrivals.Exponential(1 / cfg.ArrivalRate)
		}
		iters := cfg.Workload.Iterations
		need := cfg.NodesPerJob
		if mix.Float64() < cfg.BigJobFraction {
			iters *= cfg.BigJobFactor
			need *= cfg.BigJobFactor
		}
		if need > cfg.Platform.Nodes {
			need = cfg.Platform.Nodes
		}
		// Ideal (unqueued, full-grant) runtime prices the deadline.
		idealWrite := nodeBytes * float64(need) / perWriterBW
		ideal := float64(iters) * (cfg.Workload.ComputeTime + idealWrite)
		j := &desJob{
			need: need,
			res: JobResult{
				ID:         i,
				Arrival:    at,
				NodesAsked: need,
				Iterations: iters,
				Deadline:   at + cfg.DeadlineSlack*ideal,
			},
		}
		jobs[i] = j

		jitter := root.Child(uint64(i))
		eng.SpawnAt(at, fmt.Sprintf("job%d", i), func(p *des.Proc) {
			granted, ok := ad.admit(p, j)
			if !ok {
				j.res.Rejected = true
				return
			}
			j.res.AdmitTime = p.Now()
			j.res.Nodes = granted
			j.res.Degraded = granted < j.need
			jobBytes := nodeBytes * float64(granted)
			j.res.LostBytes = nodeBytes * float64(j.need-granted) * float64(j.res.Iterations)
			idealWrite := nodeBytes * float64(j.need) / perWriterBW
			for it := 0; it < j.res.Iterations; it++ {
				p.Wait(cfg.Workload.ComputeTime * jitter.UnitLogNormal(cfg.Workload.ComputeJitter))
				g := broker.AcquireSim(p, storage.TokenRequest{
					Holder:   j.res.ID,
					Tenant:   j.res.ID,
					Targets:  []int{j.res.ID % cfg.WriteSlots},
					Deadline: j.res.Deadline,
					Bytes:    jobBytes,
				})
				p.Wait(jobBytes / perWriterBW *
					jitter.UnitLogNormal(cfg.Platform.PFS.JitterSigma))
				g.Release()
				j.res.Bytes += jobBytes
				// Latency against the job's ideal schedule: admitted at
				// arrival, never queued, full grant. Admission and broker
				// waits both surface here — the tail E9 compares.
				idealDone := j.res.Arrival +
					float64(it+1)*(cfg.Workload.ComputeTime+idealWrite)
				j.res.WriteLatencies = append(j.res.WriteLatencies, p.Now()-idealDone)
			}
			j.res.Finish = p.Now()
			ad.release(granted)
		})
	}
	eng.Run()

	out := ServiceResult{Config: cfg, MaxQueued: ad.maxQueued}
	for _, j := range jobs {
		out.Jobs = append(out.Jobs, j.res)
		switch {
		case j.res.Rejected:
			out.Rejected++
		default:
			out.Admitted++
			if j.res.Degraded {
				out.Degraded++
			}
			out.AdmissionWaitTime += j.res.AdmitTime - j.res.Arrival
			if j.res.Finish > out.TotalTime {
				out.TotalTime = j.res.Finish
			}
			if j.res.MissedDeadline() {
				out.DeadlinesMissed++
			}
		}
	}
	out.TokenWaitTime = broker.Stats().WaitTime
	return out, nil
}
