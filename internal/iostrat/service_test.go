package iostrat

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/topology"
)

// serviceBase is an oversubscribed quick-scale setup: 16 jobs of 24
// nodes each arriving onto a 96-node machine — four run at once, the
// rest queue.
func serviceBase(admission cluster.AdmissionPolicy) ServiceConfig {
	return ServiceConfig{
		Platform:      topology.Kraken(96),
		Seed:          2013,
		Jobs:          24,
		ArrivalRate:   1.0 / 20,
		Admission:     admission,
		NodesPerJob:   24,
		DeadlineSlack: 3,
		Workload: Workload{
			BytesPerCore:  38e6,
			VarsPerCore:   20,
			ComputeTime:   60,
			ComputeJitter: 0.004,
			Iterations:    4,
		},
	}
}

func TestServiceModelDeterministic(t *testing.T) {
	a, err := RunService(serviceBase(cluster.AdmitFIFO))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunService(serviceBase(cluster.AdmitFIFO))
	if err != nil {
		t.Fatal(err)
	}
	if a.P99WriteLatency() != b.P99WriteLatency() || a.TotalTime != b.TotalTime {
		t.Fatalf("same seed diverged: p99 %v vs %v, total %v vs %v",
			a.P99WriteLatency(), b.P99WriteLatency(), a.TotalTime, b.TotalTime)
	}
	if a.Admitted != 24 || a.Rejected != 0 {
		t.Fatalf("admitted %d rejected %d, want 24/0 under FIFO", a.Admitted, a.Rejected)
	}
	if a.MaxQueued == 0 {
		t.Fatal("no job ever queued; the setup is not oversubscribed")
	}
	if a.AdmissionWaitTime <= 0 {
		t.Fatal("oversubscription produced no admission wait")
	}
}

// TestServiceModelDeadlineBeatsFIFO is the DES acceptance check at unit
// scale: with a bimodal job mix, EDF admission (which degrades to
// shortest-job-first) must beat FIFO on the p99 per-iteration write
// latency.
func TestServiceModelDeadlineBeatsFIFO(t *testing.T) {
	fifo, err := RunService(serviceBase(cluster.AdmitFIFO))
	if err != nil {
		t.Fatal(err)
	}
	edf, err := RunService(serviceBase(cluster.AdmitDeadline))
	if err != nil {
		t.Fatal(err)
	}
	if edf.P99WriteLatency() >= fifo.P99WriteLatency() {
		t.Fatalf("deadline admission p99 %.1fs not better than FIFO %.1fs",
			edf.P99WriteLatency(), fifo.P99WriteLatency())
	}
	if edf.DeadlinesMissed > fifo.DeadlinesMissed {
		t.Fatalf("deadline admission missed more deadlines (%d) than FIFO (%d)",
			edf.DeadlinesMissed, fifo.DeadlinesMissed)
	}
}

func TestServiceModelReject(t *testing.T) {
	cfg := serviceBase(cluster.AdmitReject)
	cfg.ArrivalRate = 1 // jobs pile in long before nodes free up
	res, err := RunService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected == 0 {
		t.Fatal("reject policy rejected nothing under oversubscription")
	}
	if res.Admitted+res.Rejected != cfg.Jobs {
		t.Fatalf("admitted %d + rejected %d != %d", res.Admitted, res.Rejected, cfg.Jobs)
	}
	for _, j := range res.Jobs {
		if j.Rejected && len(j.WriteLatencies) != 0 {
			t.Fatalf("rejected job %d wrote %d iterations", j.ID, len(j.WriteLatencies))
		}
	}
}

func TestServiceModelDegrade(t *testing.T) {
	cfg := serviceBase(cluster.AdmitDegrade)
	cfg.ArrivalRate = 1
	res, err := RunService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded == 0 {
		t.Fatal("degrade policy never shrank a job under oversubscription")
	}
	lost := 0.0
	for _, j := range res.Jobs {
		if j.Degraded {
			if j.Nodes >= j.NodesAsked || j.Nodes <= 0 {
				t.Fatalf("degraded job %d granted %d of %d nodes", j.ID, j.Nodes, j.NodesAsked)
			}
			lost += j.LostBytes
		}
	}
	if lost <= 0 {
		t.Fatal("degraded jobs shed no bytes; the skip-policy analogue is not priced")
	}
	if res.Rejected != 0 {
		t.Fatalf("degrade policy rejected %d jobs", res.Rejected)
	}
}
