package iostrat

import "repro/internal/des"

// writeScheduler coordinates dedicated-core writes (E6). acquire blocks
// until the write may start and returns the matching release.
type writeScheduler interface {
	acquire(p *des.Proc, ost int) (release func())
}

type nopScheduler struct{}

func (nopScheduler) acquire(*des.Proc, int) func() { return func() {} }

// ostTokens serializes writers per OST.
type ostTokens struct{ tokens []*des.Resource }

func newOSTTokens(eng *des.Engine, n int) *ostTokens {
	t := &ostTokens{tokens: make([]*des.Resource, n)}
	for i := range t.tokens {
		t.tokens[i] = eng.NewResource(1)
	}
	return t
}

func (t *ostTokens) acquire(p *des.Proc, ost int) func() {
	p.Acquire(t.tokens[ost], 1)
	return func() { t.tokens[ost].Release(1) }
}

// globalTokens bounds the number of concurrent dedicated-core writers.
type globalTokens struct{ sem *des.Resource }

func newGlobalTokens(eng *des.Engine, n int) *globalTokens {
	return &globalTokens{sem: eng.NewResource(n)}
}

func (t *globalTokens) acquire(p *des.Proc, _ int) func() {
	p.Acquire(t.sem, 1)
	return func() { t.sem.Release(1) }
}
