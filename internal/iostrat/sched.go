package iostrat

import (
	"repro/internal/des"
	"repro/internal/storage"
)

// writeReq describes one dedicated-core file stream about to start: who
// writes, which backend targets the stream touches, and by when the
// §IV.C spare-time schedule would like it done.
type writeReq struct {
	// holder is the writing node id — the token owner the broker frees
	// if the node dies.
	holder int
	// base is the first backend target; the stream touches stripes
	// consecutive targets from it (1 for unstriped files).
	base    int
	stripes int
	// deadline is the virtual time the next output phase is expected to
	// start: the write should finish inside the spare window, and under
	// SchedClusterToken the nearest deadline is granted first.
	deadline float64
	// bytes is the stream's payload, for accounting.
	bytes float64
}

// writeScheduler coordinates dedicated-core writes (E6). acquire blocks
// until the write may start and returns the matching release.
type writeScheduler interface {
	acquire(p *des.Proc, w writeReq) (release func())
	// releaseHolder frees every token a dead node holds or waits for.
	releaseHolder(node int)
	// brokerStats exposes the contention ledger (zero for SchedNone).
	brokerStats() storage.BrokerStats
}

type nopScheduler struct{}

func (nopScheduler) acquire(*des.Proc, writeReq) func() { return func() {} }
func (nopScheduler) releaseHolder(int)                  {}
func (nopScheduler) brokerStats() storage.BrokerStats   { return storage.BrokerStats{} }

// brokerScheduler adapts the cluster-wide storage.TokenBroker to the
// strategy write paths. All tree roots of a run share the one broker,
// which is what makes the schedule cluster-wide.
//
//   - SchedOSTToken: a token on the stream's base target only (the
//     per-backend legacy — striped writes still spill onto neighbours).
//   - SchedGlobalToken: one bounded concurrency slot per stream.
//   - SchedClusterToken: the whole stripe window, granted atomically,
//     earliest iteration deadline first.
type brokerScheduler struct {
	broker *storage.Broker
	// window acquires the full stripe window instead of the base target
	// (SchedClusterToken).
	window bool
}

// newScheduler builds the write scheduler for a run, binding the broker
// to the run's engine and target space. SchedNone coordinates nothing.
func newScheduler(eng *des.Engine, pol Scheduling, targets int) writeScheduler {
	opts := storage.BrokerOptions{Targets: targets, Engine: eng}
	switch pol {
	case SchedOSTToken:
		opts.Policy = storage.PolicyPerTarget
	case SchedGlobalToken:
		opts.Policy = storage.PolicyGlobal
	case SchedClusterToken:
		opts.Policy = storage.PolicyDeadline
	default:
		return nopScheduler{}
	}
	return &brokerScheduler{
		broker: storage.NewBroker(opts),
		window: pol == SchedClusterToken,
	}
}

func (s *brokerScheduler) acquire(p *des.Proc, w writeReq) func() {
	req := storage.TokenRequest{
		Holder:   w.holder,
		Deadline: w.deadline,
		Bytes:    w.bytes,
	}
	if s.window && w.stripes > 1 {
		req.Targets = make([]int, w.stripes)
		for i := range req.Targets {
			req.Targets[i] = w.base + i
		}
	} else {
		req.Targets = []int{w.base}
	}
	g := s.broker.AcquireSim(p, req)
	if g.Denied {
		// The node died while parked on the queue; there is no token to
		// return and the caller's write is moot.
		return func() {}
	}
	return g.Release
}

func (s *brokerScheduler) releaseHolder(node int) { s.broker.ReleaseHolder(node) }

func (s *brokerScheduler) brokerStats() storage.BrokerStats { return s.broker.Stats() }
