package iostrat

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/rng"
	"repro/internal/storage"
	"repro/internal/workload"
)

// nodeShm models one node's shared-memory segment between simulation
// cores and the dedicated core: bounded capacity, a FIFO of pending
// iterations, and the paper's §V.C policy of *skipping* an iteration
// (rather than blocking the simulation) when the segment is full.
type nodeShm struct {
	eng      *des.Engine
	capacity float64
	occupied float64
	pending  []shmIter
	waiting  *des.Future // dedicated core parked on an empty queue
	skipped  int
	closed   bool
	dead     bool    // node failed: offers are dropped, not skipped
	lost     float64 // bytes dropped because the node was dead
}

type shmIter struct {
	iter  int
	bytes float64
}

// offer tries to enqueue an iteration's data; it reports false (and counts
// a skip) when the segment cannot hold it. On a dead node the data is
// dropped silently and accounted as failure loss, not as a skip.
func (s *nodeShm) offer(it int, bytes float64) bool {
	if s.dead {
		s.lost += bytes
		return true
	}
	if s.occupied+bytes > s.capacity {
		s.skipped++
		return false
	}
	s.occupied += bytes
	s.pending = append(s.pending, shmIter{iter: it, bytes: bytes})
	s.wake()
	return true
}

// offerEmpty enqueues a zero-byte marker for an iteration whose data was
// dropped, keeping tree-mode dedicated cores in iteration lockstep: the
// node still participates in the aggregation round, contributing nothing.
func (s *nodeShm) offerEmpty(it int) {
	if s.dead {
		return
	}
	s.pending = append(s.pending, shmIter{iter: it})
	s.wake()
}

// kill marks the node's I/O stack dead: queued and future offers are
// dropped and charged to the failure loss.
func (s *nodeShm) kill() {
	for _, it := range s.pending {
		s.lost += it.bytes
	}
	s.dead = true
	s.pending = nil
	s.occupied = 0
}

func (s *nodeShm) wake() {
	if s.waiting != nil {
		f := s.waiting
		s.waiting = nil
		f.Complete()
	}
}

// take blocks the dedicated core until data is pending, then dequeues one
// iteration. It returns false when closed and drained.
func (s *nodeShm) take(p *des.Proc) (shmIter, bool) {
	for len(s.pending) == 0 {
		if s.closed {
			return shmIter{}, false
		}
		s.waiting = s.eng.NewFuture()
		p.Await(s.waiting)
	}
	it := s.pending[0]
	s.pending = s.pending[1:]
	return it, true
}

// free releases an iteration's bytes after the dedicated core wrote them.
func (s *nodeShm) free(bytes float64) { s.occupied -= bytes }

// close marks the producer finished; a parked dedicated core is woken to
// observe the closure.
func (s *nodeShm) close() {
	s.closed = true
	s.wake()
}

// desAgg collects child-subtree contributions at one node of the
// aggregation tree (the DES counterpart of cluster's aggregator). Like
// the runtime aggregator it tracks coverage sets — which origin nodes
// an iteration's delivered data spans — instead of counting against a
// fixed child count, so failures that re-route children or shrink the
// required coverage mid-run cannot wedge a parked dedicated core.
type desAgg struct {
	eng     *des.Engine
	covered map[int]map[int]bool // iteration → origin nodes delivered
	bytes   map[int]float64
	waiting *des.Future
}

func newDesAgg(eng *des.Engine) *desAgg {
	return &desAgg{eng: eng, covered: map[int]map[int]bool{}, bytes: map[int]float64{}}
}

// deliver records a contribution covering the given origin nodes for an
// iteration and wakes the parked dedicated core to re-check.
func (a *desAgg) deliver(it int, b float64, covers []int) {
	m := a.covered[it]
	if m == nil {
		m = map[int]bool{}
		a.covered[it] = m
	}
	for _, n := range covers {
		m[n] = true
	}
	a.bytes[it] += b
	a.wake()
}

// wake unparks the dedicated core, if parked; it re-evaluates its
// coverage requirement on resumption.
func (a *desAgg) wake() {
	if a.waiting != nil {
		f := a.waiting
		a.waiting = nil
		f.Complete()
	}
}

// await blocks until the delivered coverage for iteration it spans
// required (re-evaluated after every wake — failures shrink it), then
// consumes and returns the merged volume and its coverage set.
func (a *desAgg) await(p *des.Proc, it int, required func() []int) (float64, []int) {
	for !cluster.CoversAll(a.covered[it], required()) {
		a.waiting = a.eng.NewFuture()
		p.Await(a.waiting)
	}
	b := a.bytes[it]
	covers := sortedIntKeys(a.covered[it])
	delete(a.covered, it)
	delete(a.bytes, it)
	return b, covers
}

// sortedIntKeys returns m's keys ascending: map iteration order must
// never leak into the deterministic event schedule.
func sortedIntKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// bandwidthShifter is the model-level knob scenario PFS shifts reach
// through the backend stack (implemented by storage.PFS).
type bandwidthShifter interface{ SetBandwidthFactor(float64) }

// runDamaris models the Damaris approach: per node, CoresPerNode-D
// simulation cores and D dedicated cores. Simulation cores pay only the
// shared-memory write (bytes/ShmBandwidth + per-variable overhead); the
// dedicated core asynchronously aggregates the node's output and writes
// it overlapped with the next compute phase. Because the node computes
// the same (weak-scaling) problem on fewer cores, the compute phase
// stretches by CoresPerNode/(CoresPerNode-D) — the paper's "slight
// impact".
//
// With Fanout < 2 every node writes FilesPerIter files per iteration
// (the paper's baseline). With Fanout >= 2 the dedicated cores form the
// k-ary aggregation forest of internal/cluster: leaves forward their
// node's iteration over the NIC, interior nodes batch their subtree,
// and only tree roots touch the backend — few, large, striped
// sequential streams.
//
// A Config.Scenario trace makes the workload per-iteration (volumes,
// compute times, variable counts), steps the NIC/PFS bandwidth mid-run
// and merges node losses into the failure schedule; Config.Adapt =
// AdaptAdaptive lets tree mode re-form the forest at epoch fences when
// the observed bandwidths say the configured shape is no longer right.
func runDamaris(cfg Config) (Result, error) {
	if err := ValidateScheduling(cfg.Scheduling); err != nil {
		return Result{}, err
	}
	if err := ValidateAdaptPolicy(cfg.Adapt); err != nil {
		return Result{}, err
	}
	if err := cfg.InSitu.validate(cfg.Fanout >= 2); err != nil {
		return Result{}, err
	}
	if cfg.Adapt == AdaptAdaptive && cfg.Fanout < 2 {
		return Result{}, fmt.Errorf("iostrat: adaptive tree re-formation requires tree mode (Fanout >= 2)")
	}
	plat := cfg.Platform
	trace := cfg.Scenario
	if trace != nil && trace.Nodes != plat.Nodes {
		return Result{}, fmt.Errorf("iostrat: scenario %q generated for %d nodes, platform has %d",
			trace.Scenario, trace.Nodes, plat.Nodes)
	}
	eng := des.NewEngine()
	root := rng.New(cfg.Seed, 3)
	be, baseBE, err := cfg.newBackend(eng, root.Named("pfs"))
	if err != nil {
		return Result{}, err
	}

	w := cfg.Workload
	dedicated := cfg.DedicatedPerNode
	computePerNode := plat.CoresPerNode - dedicated
	if computePerNode <= 0 {
		panic("iostrat: no compute cores left on the node")
	}
	nComputeRanks := plat.Nodes * computePerNode
	// Same per-node problem on fewer cores: longer compute phase.
	stretch := float64(plat.CoresPerNode) / float64(computePerNode)
	computeTime := w.ComputeTime * stretch
	// The node still produces the same output volume per iteration.
	nodeBytes := w.NodeBytes(plat.CoresPerNode)

	// Per-iteration workload: the flat numbers, or the scenario trace's.
	computeAt := func(int) float64 { return computeTime }
	nodeBytesAt := func(int) float64 { return nodeBytes }
	varsAt := func(int) int { return w.VarsPerCore }
	if trace != nil {
		computeAt = func(it int) float64 { return trace.Iters[it].ComputeTime * stretch }
		nodeBytesAt = func(it int) float64 {
			return trace.Iters[it].BytesPerCore * float64(plat.CoresPerNode)
		}
		varsAt = func(it int) int { return trace.Iters[it].VarsPerCore }
	}

	// Scenario node losses merge into the failure schedule; on a node
	// listed twice the earliest death wins, as always.
	failures := cfg.Failures
	if trace != nil {
		if losses := trace.NodeLosses(); len(losses) > 0 {
			merged := cluster.NewFailureSchedule()
			for _, n := range cfg.Failures.Nodes() {
				k, _ := cfg.Failures.At(n)
				merged.Add(n, k)
			}
			for _, l := range losses {
				merged.Add(l.Node, l.Iteration)
			}
			failures = merged
		}
	}

	treeMode := cfg.Fanout >= 2
	var aggs []*desAgg
	var rootCovered []int // per iteration, origin nodes reaching a root
	if treeMode {
		aggs = make([]*desAgg, plat.Nodes)
		for n := 0; n < plat.Nodes; n++ {
			aggs[n] = newDesAgg(eng)
		}
		rootCovered = make([]int, w.Iterations)
	}

	res := Result{Approach: Damaris, Platform: plat, Workload: w, Backend: cfg.Backend}
	res.IOTimes = make([]float64, w.Iterations)
	res.RankWriteTimes = make([]float64, 0, nComputeRanks*w.Iterations)

	stepBarrier := eng.NewBarrier(nComputeRanks)
	phaseStart := make([]float64, w.Iterations)

	shms := make([]*nodeShm, plat.Nodes)
	arrived := make([][]int, plat.Nodes) // per node, per iteration rank count
	for n := range shms {
		shms[n] = &nodeShm{eng: eng, capacity: cfg.ShmCapacity}
		arrived[n] = make([]int, w.Iterations)
	}

	// One broker per run, shared by every dedicated core and tree root:
	// the schedule is cluster-wide, not per backend stream.
	schedule := newScheduler(eng, cfg.Scheduling, be.Targets())

	// Platform shifts: rank 0 applies the trace's cumulative factors at
	// the phase start of the shift's iteration. NIC shifts scale the
	// tree-mode forward bandwidth; PFS shifts reach the storage model
	// through the backend stack; both (and rejoins) mark the adaptive
	// controller dirty so it re-evaluates the forest shape.
	var tr *treeRun
	shifter, _ := baseBE.(bandwidthShifter)
	curNIC, curPFS := 1.0, 1.0
	applyShifts := func(it int) {
		if trace == nil || len(trace.ShiftsAt(it)) == 0 {
			return
		}
		if f := trace.NICFactorAt(it); f != curNIC {
			curNIC = f
			if tr != nil {
				tr.nicFactor = f
				tr.adaptDirty = true
			}
		}
		if f := trace.PFSFactorAt(it); f != curPFS {
			curPFS = f
			if shifter != nil {
				shifter.SetBandwidthFactor(f)
			}
			if tr != nil {
				tr.adaptDirty = true
			}
		}
		for _, s := range trace.ShiftsAt(it) {
			// A rejoin does not resurrect the node's I/O stack on this
			// face, but it is a topology event the adaptive policy
			// re-evaluates on.
			if s.Kind == workload.ShiftNodeRejoin && tr != nil {
				tr.adaptDirty = true
			}
		}
	}

	// Simulation cores.
	var appEnd float64
	for r := 0; r < nComputeRanks; r++ {
		rank := r
		node := rank / computePerNode
		compRng := root.Named("compute").Child(uint64(rank))
		eng.Spawn("sim", func(p *des.Proc) {
			for it := 0; it < w.Iterations; it++ {
				p.Wait(computeAt(it) * compRng.UnitLogNormal(w.ComputeJitter))
				p.Arrive(stepBarrier)
				if rank == 0 {
					be.BeginPhase()
					applyShifts(it)
					phaseStart[it] = p.Now()
				}
				// The application-visible "I/O": copy the variables into
				// the shared-memory segment.
				t0 := p.Now()
				nb := nodeBytesAt(it)
				p.Wait(nb/float64(computePerNode)/plat.ShmBandwidth +
					float64(varsAt(it))*plat.ShmWriteOverhead)
				res.RankWriteTimes = append(res.RankWriteTimes, p.Now()-t0)
				// Last core of the node in this iteration publishes the
				// node's data to the dedicated core.
				arrived[node][it]++
				if arrived[node][it] == computePerNode {
					if !shms[node].offer(it, nb) && treeMode {
						// Data lost, but the node must still take part in
						// the aggregation round.
						shms[node].offerEmpty(it)
					}
				}
				p.Arrive(stepBarrier)
				if rank == 0 {
					res.IOTimes[it] = p.Now() - phaseStart[it]
				}
			}
			if rank == 0 {
				appEnd = p.Now()
				for _, s := range shms {
					s.close()
				}
			}
		})
	}

	// Dedicated cores (one writer proc per node; D dedicated cores share
	// the same work, so busy time is attributed to the node's pool).
	if treeMode {
		tr = &treeRun{
			cfg:         cfg,
			eng:         eng,
			be:          be,
			schedule:    schedule,
			res:         &res,
			aggs:        aggs,
			failures:    failures,
			maxStarted:  -1,
			rootCovered: rootCovered,
			writeEnd:    make([]float64, w.Iterations),
			phaseStart:  phaseStart,
			computeAt:   computeAt,
			nodeBytesAt: nodeBytesAt,
			nicFactor:   1,
			obsNIC:      plat.NICBandwidth,
			obsPFS:      plat.PFS.OSTBandwidth,
			lastAdapt:   -adaptCooldown,
			liveNodes:   plat.Nodes,
		}
		tr.epochs = []*desEpoch{tr.newEpoch(0, cfg.Fanout, cfg.AggRoots)}
		// One bounded frame queue and one analysis consumer per root
		// ordinal — a promoted root inherits its predecessor's queue
		// along with the stripe window, and re-formations that widen
		// the root set grow the array mid-run.
		tr.growInsitu(tr.curEpoch().numRoots)
	}
	for n := 0; n < plat.Nodes; n++ {
		node := n
		if treeMode {
			eng.Spawn("dedicated", func(p *des.Proc) {
				tr.runNode(p, shms[node], node)
			})
			continue
		}
		eng.Spawn("dedicated", func(p *des.Proc) {
			fileSeq := 0
			for {
				item, ok := shms[node].take(p)
				if !ok {
					return
				}
				t0 := p.Now()
				payload := item.bytes
				if cfg.CompressRatio > 1 {
					// Compression runs on the dedicated core: CPU time
					// here, fewer bytes toward the file system, and no
					// cost at all on the simulation side.
					p.Wait(payload / cfg.CompressRate)
					payload /= cfg.CompressRatio
				}
				files := cfg.FilesPerIter
				per := payload / float64(files)
				pat := storage.BigSequential
				if per < 64e6 {
					pat = storage.SmallFile
				}
				for f := 0; f < files; f++ {
					// Usage-balanced allocation (Lustre QoS allocator):
					// spread node files round-robin over the OSTs.
					ost := (node + fileSeq*plat.Nodes) % be.Targets()
					fileSeq++
					release := schedule.acquire(p, writeReq{
						holder:   node,
						base:     ost,
						stripes:  1,
						deadline: phaseStart[item.iter] + computeAt(item.iter),
						bytes:    per,
					})
					be.Create(p)
					be.Write(p, ost, per, pat)
					be.Close(p)
					release()
					res.FilesCreated++
				}
				shms[node].free(item.bytes)
				res.DedicatedBusy += p.Now() - t0
			}
		})
	}

	drainEnd := eng.Run()
	res.TotalTime = appEnd
	res.DrainTime = drainEnd
	acc := be.Accounting()
	bs := schedule.brokerStats()
	acc.AddBroker(bs)
	res.BytesWritten = acc.BytesWritten
	res.IOWindow = acc.IOBusyTime
	res.BytesSaved = acc.BytesSaved
	res.CodecCPUTime = acc.EncodeTime + acc.DecodeTime
	res.DedupBytesSaved = acc.DedupBytesSaved
	res.HashCPUTime = acc.ChunkHashTime
	res.SchedWaitTime = acc.TokenWaitTime
	res.RootContention = bs.ContendedGrants
	res.DedicatedTotal = float64(plat.Nodes*dedicated) * drainEnd
	for _, s := range shms {
		res.SkippedIters += s.skipped
	}
	if treeMode {
		res.Completeness = make([]float64, w.Iterations)
		res.TreeWriteLatencies = make([]float64, w.Iterations)
		for it := 0; it < w.Iterations; it++ {
			res.Completeness[it] = float64(rootCovered[it]) / float64(plat.Nodes)
			if tr.writeEnd[it] > phaseStart[it] {
				res.TreeWriteLatencies[it] = tr.writeEnd[it] - phaseStart[it]
			}
		}
		// Aggregations nobody consumed (their consumer died or moved on
		// when the coverage requirement shrank) are lost payload, as is
		// everything a dead node's shm dropped.
		for _, a := range aggs {
			for _, it := range sortedIntKeys(a.bytes) {
				res.LostBytes += a.bytes[it]
			}
		}
		for _, s := range shms {
			res.LostBytes += s.lost
		}
		for _, q := range tr.insituQs {
			res.FramesDropped += q.dropped
		}
	}
	return res, nil
}

// adaptCooldown is the minimum iteration spacing between adaptation
// decisions that were not forced by a platform shift or node death.
const adaptCooldown = 2

// desEpoch binds one aggregation topology to the iterations it routes:
// from from until the next epoch's from. It carries everything derived
// from the root set — ordinals, count, stripe window width — so an
// iteration keeps its parents, coverage requirement and stripe layout
// for its whole life even when later iterations route differently.
type desEpoch struct {
	from        int
	fanout      int
	roots       int // requested root count (before failure overlays)
	tree        cluster.Tree
	rootOrdinal map[int]int
	numRoots    int
	stripes     int
}

// treeRun bundles the state shared by every dedicated core of a
// tree-mode run: the topology epochs, the per-node aggregators, the
// shared write scheduler, the adaptation controller state and the
// per-iteration measurements.
type treeRun struct {
	cfg      Config
	eng      *des.Engine
	be       storage.Backend
	schedule writeScheduler
	res      *Result
	aggs     []*desAgg
	failures *cluster.FailureSchedule

	// epochs is the append-only topology history: epochs[i] routes
	// iterations in [epochs[i].from, epochs[i+1].from). maxStarted is
	// the routing high-water mark fencing re-formations — once any
	// node has taken an iteration from its shm, that iteration's epoch
	// is fixed for every node. dead lists failed nodes in death order;
	// every new epoch re-applies them.
	epochs     []*desEpoch
	maxStarted int
	dead       []int

	rootCovered []int
	writeEnd    []float64 // per iteration, last root-write completion
	phaseStart  []float64
	computeAt   func(it int) float64
	nodeBytesAt func(it int) float64

	// Adaptation state (AdaptAdaptive): EWMAs of the observed NIC and
	// per-stream PFS bandwidths, the dirty flag platform shifts and
	// deaths raise, and the last iteration a decision ran. nicFactor is
	// the trace's current cumulative NIC multiplier (1 without shifts).
	nicFactor  float64
	obsNIC     float64
	obsPFS     float64
	adaptDirty bool
	lastAdapt  int

	// insituQs holds one analysis frame queue per root ordinal (nil
	// when Config.InSitu is off); liveNodes counts dedicated cores
	// still running, so the queues close — releasing the consumer
	// procs — exactly when no publisher remains.
	insituQs  []*insituQ
	liveNodes int
}

// epochFor returns the epoch routing iteration it.
func (tr *treeRun) epochFor(it int) *desEpoch {
	for i := len(tr.epochs) - 1; i > 0; i-- {
		if tr.epochs[i].from <= it {
			return tr.epochs[i]
		}
	}
	return tr.epochs[0]
}

// curEpoch returns the newest epoch — the one new iterations route by.
func (tr *treeRun) curEpoch() *desEpoch { return tr.epochs[len(tr.epochs)-1] }

// noteStarted records that iteration it began routing, fencing future
// re-formations past it.
func (tr *treeRun) noteStarted(it int) {
	if it > tr.maxStarted {
		tr.maxStarted = it
	}
}

// newEpoch builds a fresh topology epoch with the accumulated failure
// overlay re-applied, ordinals assigned to its live roots ascending.
func (tr *treeRun) newEpoch(from, fanout, roots int) *desEpoch {
	t := cluster.NewTree(tr.cfg.Platform.Nodes, fanout, roots)
	for _, d := range tr.dead {
		t.Fail(d)
	}
	rs := t.Roots()
	ro := make(map[int]int, len(rs))
	for i, r := range rs {
		ro[r] = i
	}
	nr := len(rs)
	if nr == 0 {
		nr = 1 // stripe math only; a rootless epoch is never installed
	}
	return &desEpoch{
		from:        from,
		fanout:      fanout,
		roots:       roots,
		tree:        t,
		rootOrdinal: ro,
		numRoots:    len(rs),
		stripes:     rootStripes(tr.cfg, tr.be.Targets(), nr),
	}
}

// reform installs a new topology epoch at the fence maxStarted+1: every
// iteration at or past the fence routes through the new tree, every
// older one keeps its original epoch end to end. When the previous
// epoch never routed anything it is replaced in place instead of
// stacking unused epochs.
func (tr *treeRun) reform(fanout, roots int) {
	from := tr.maxStarted + 1
	ep := tr.newEpoch(from, fanout, roots)
	if ep.numRoots == 0 {
		return
	}
	last := tr.epochs[len(tr.epochs)-1]
	if last.from >= from {
		ep.from = last.from
		tr.epochs[len(tr.epochs)-1] = ep
	} else {
		tr.epochs = append(tr.epochs, ep)
	}
	tr.res.TreeReforms++
	tr.growInsitu(ep.numRoots)
}

// maybeAdapt re-derives the forest shape from the bandwidths observed
// so far and re-forms the tree when the recommendation moved — right
// after a platform shift or node death, otherwise at most every
// adaptCooldown iterations. Called at a root once its write completes,
// i.e. exactly when a fresh PFS observation exists.
func (tr *treeRun) maybeAdapt(it int) {
	if tr.cfg.Adapt != AdaptAdaptive {
		return
	}
	if !tr.adaptDirty && it < tr.lastAdapt+adaptCooldown {
		return
	}
	tr.adaptDirty = false
	tr.lastAdapt = it
	next := it + 1
	if next >= tr.cfg.Workload.Iterations {
		return
	}
	fanout, roots := cluster.RecommendTopology(tr.cfg.Platform.Nodes,
		tr.nodeBytesAt(next), tr.obsNIC, tr.obsPFS, tr.be.Targets())
	cur := tr.curEpoch()
	if fanout == cur.fanout && roots == cur.roots {
		return
	}
	tr.reform(fanout, roots)
}

// observeNIC and observePFS fold one measured transfer into the EWMAs
// the adaptation controller steers by (0.7 history, 0.3 new sample).
func (tr *treeRun) observeNIC(bw float64) { tr.obsNIC = 0.7*tr.obsNIC + 0.3*bw }
func (tr *treeRun) observePFS(bw float64) { tr.obsPFS = 0.7*tr.obsPFS + 0.3*bw }

// nodeDone retires one dedicated core; the last one out closes every
// in-situ queue so consumers drain their backlog and exit (the engine
// treats an eternally parked proc as a deadlock).
func (tr *treeRun) nodeDone() {
	tr.liveNodes--
	if tr.liveNodes == 0 {
		for _, q := range tr.insituQs {
			q.close()
		}
	}
}

// deadline is when iteration it's spare window closes: the next output
// phase starts roughly one compute phase after this one began, and the
// cluster schedule wants the write done by then (§IV.C).
func (tr *treeRun) deadline(it int) float64 {
	return tr.phaseStart[it] + tr.computeAt(it)
}

// runNode is one dedicated core's life in tree mode: per iteration,
// merge the node's own output with the children's subtree volumes, then
// either forward upward over the NIC or — at a root — stripe the merged
// payload onto the backend as few large sequential streams. The parent
// and the coverage requirement come from the iteration's topology
// epoch, re-read every iteration: a failure elsewhere can re-route this
// node, and a re-formation can change its role for *later* iterations
// while the in-flight ones keep their original tree. A node's own
// scheduled death ends its loop.
func (tr *treeRun) runNode(p *des.Proc, shm *nodeShm, node int) {
	defer tr.nodeDone()
	cfg, be, res := tr.cfg, tr.be, tr.res
	plat := cfg.Platform
	fileSeq := 0
	failAt, willFail := tr.failures.At(node)

	for it := 0; it < cfg.Workload.Iterations; it++ {
		item, ok := shm.take(p)
		if !ok {
			return
		}
		if willFail && item.iter >= failAt {
			tr.failNode(shm, node, item)
			return
		}
		// Routing decision point: from here on, iteration item.iter
		// flows through this epoch's tree on every node, so any
		// re-formation fences past it.
		tr.noteStarted(item.iter)
		ep := tr.epochFor(item.iter)
		busy := 0.0
		t0 := p.Now()
		own := item.bytes
		if cfg.CompressRatio > 1 && own > 0 {
			p.Wait(own / cfg.CompressRate)
			own /= cfg.CompressRatio
		}
		busy += p.Now() - t0

		// The coverage this node must merge before forwarding: its live
		// subtree under the iteration's epoch, minus itself (own output
		// arrives through the shm loop). Awaiting stragglers is idle
		// time, not work.
		required := func() []int {
			subtree := ep.tree.LiveSubtree(node)
			req := subtree[:0]
			for _, n := range subtree {
				if n != node {
					req = append(req, n)
				}
			}
			return req
		}
		childBytes, covers := tr.aggs[node].await(p, item.iter, required)
		subtree := own + childBytes
		covers = append(covers, node)

		t1 := p.Now()
		if parent, hasParent := ep.tree.Parent(node); hasParent {
			if subtree > 0 {
				// Store-and-forward: the sender serializes the batch onto
				// its NIC (at the trace's current effective bandwidth);
				// the parent sees it after latency.
				tSend := p.Now()
				p.Wait(subtree/(plat.NICBandwidth*tr.nicFactor) + plat.NICLatency)
				if el := p.Now() - tSend; el > 0 {
					tr.observeNIC(subtree / el)
				}
			}
			// The parent may have died during the transfer: relay along
			// the drain chain, like the runtime cluster's dead relays.
			deliverUp(&ep.tree, tr.aggs, res, parent, item.iter, subtree, covers)
		} else {
			tr.rootCovered[item.iter] += len(covers)
			ord := ep.rootOrdinal[node]
			if cfg.InSitu.Mode == InSituStream {
				// Streaming coupling: the consumer sees the merged frame
				// the moment aggregation completes, overlapped with the
				// write below. Only a Block-policy consumer can delay the
				// write path here (measured in StreamBlockTime).
				tr.publishInSitu(p, ord, shmIter{iter: item.iter, bytes: subtree})
			}
			if subtree > 0 {
				files := cfg.FilesPerIter
				per := subtree / float64(files)
				for f := 0; f < files; f++ {
					// Spread root files over the target array, stripes-wide
					// windows per file so roots do not collide.
					base := ((ord + fileSeq*ep.numRoots) * ep.stripes) % be.Targets()
					fileSeq++
					release := tr.schedule.acquire(p, writeReq{
						holder:   node,
						base:     base,
						stripes:  ep.stripes,
						deadline: tr.deadline(item.iter),
						bytes:    subtree,
					})
					be.Create(p)
					tw := p.Now()
					futs := make([]*des.Future, ep.stripes)
					for s := 0; s < ep.stripes; s++ {
						futs[s] = be.WriteAsync((base+s)%be.Targets(), per/float64(ep.stripes),
							storage.BigSequential)
					}
					for _, fu := range futs {
						p.Await(fu)
					}
					if el := p.Now() - tw; el > 0 {
						tr.observePFS(per / float64(ep.stripes) / el)
					}
					be.Close(p)
					release()
					res.FilesCreated++
				}
				if p.Now() > tr.writeEnd[item.iter] {
					tr.writeEnd[item.iter] = p.Now()
				}
				tr.maybeAdapt(item.iter)
			}
			if cfg.InSitu.Mode == InSituFile {
				// File-then-read coupling: the frame is only announced
				// once the object is durable; the consumer pays the
				// read-back before analyzing.
				tr.publishInSitu(p, ord, shmIter{iter: item.iter, bytes: subtree})
			}
		}
		busy += p.Now() - t1
		shm.free(item.bytes)
		res.DedicatedBusy += busy
	}
}

// rootStripes resolves how many backend targets each root stream is
// striped over: the configured override, or wide enough that the few
// root streams can saturate the target array while staying "few large
// streams". The write path and the restart-read model share this, so
// the read mirror always prices the layout the write side produced.
func rootStripes(cfg Config, targets, numRoots int) int {
	stripes := cfg.RootStripes
	if stripes <= 0 {
		stripes = targets / (2 * numRoots)
		if stripes < 8 {
			stripes = 8
		}
		if stripes > 64 {
			stripes = 64
		}
	}
	if stripes > targets {
		stripes = targets
	}
	return stripes
}

// deliverUp hands a merged batch to dest's aggregator, chasing the
// drain chain when dest died mid-transfer; a batch with no live
// destination is lost.
func deliverUp(tree *cluster.Tree, aggs []*desAgg, res *Result, dest, it int,
	b float64, covers []int) {

	for !tree.Alive(dest) {
		next, ok := tree.DrainTarget(dest)
		if !ok {
			res.LostBytes += b
			return
		}
		dest = next
	}
	aggs[dest].deliver(it, b, covers)
}

// failNode executes one scheduled death on the DES side, mirroring
// Cluster.killNode: re-route every topology epoch (the corpse is dead
// in all of them, with per-epoch root-ordinal inheritance on
// promotions), free any scheduling tokens the dead node holds or waits
// for, hand each in-flight aggregation to its own iteration's drain
// target with its coverage intact, account the lost own output, and
// wake every parked dedicated core so it re-checks its (now smaller)
// coverage requirement.
func (tr *treeRun) failNode(shm *nodeShm, node int, item shmIter) {
	res := tr.res
	tr.dead = append(tr.dead, node)
	res.NodesFailed++
	routing := tr.epochFor(item.iter)
	for _, ep := range tr.epochs {
		if !ep.tree.Alive(node) {
			continue
		}
		wasRoot := ep.tree.IsRoot(node)
		edges := ep.tree.Fail(node)
		if ep == routing {
			res.ReroutedEdges += len(edges)
		}
		if wasRoot {
			// The promoted sibling inherits the dead root's stripe
			// window in this epoch.
			for _, e := range edges {
				if e.NewParent == -1 {
					ep.rootOrdinal[e.Child] = ep.rootOrdinal[node]
				}
			}
		}
	}
	// A dead root must not strand an OST token for the rest of the run:
	// whatever it held or queued for goes back to the broker.
	tr.schedule.releaseHolder(node)
	// The triggering iteration's own output is the mid-iteration loss;
	// kill() charges whatever else the segment held or receives later.
	res.LostBytes += item.bytes
	shm.kill()

	a := tr.aggs[node]
	for _, it := range sortedIntKeys(a.covered) {
		ep := tr.epochFor(it)
		if dest, ok := ep.tree.DrainTarget(node); ok {
			tr.aggs[dest].deliver(it, a.bytes[it], sortedIntKeys(a.covered[it]))
			delete(a.covered, it)
			delete(a.bytes, it)
		}
	}
	// Orphans with no drain target stay in a.bytes and are swept into
	// LostBytes after the run.
	for _, other := range tr.aggs {
		other.wake()
	}
	// The machine shrank: an adaptive run may want a different forest.
	tr.adaptDirty = true
}
