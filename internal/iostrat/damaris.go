package iostrat

import (
	"repro/internal/des"
	"repro/internal/pfs"
	"repro/internal/rng"
)

// nodeShm models one node's shared-memory segment between simulation
// cores and the dedicated core: bounded capacity, a FIFO of pending
// iterations, and the paper's §V.C policy of *skipping* an iteration
// (rather than blocking the simulation) when the segment is full.
type nodeShm struct {
	eng      *des.Engine
	capacity float64
	occupied float64
	pending  []shmIter
	waiting  *des.Future // dedicated core parked on an empty queue
	skipped  int
	closed   bool
}

type shmIter struct {
	iter  int
	bytes float64
}

// offer tries to enqueue an iteration's data; it reports false (and counts
// a skip) when the segment cannot hold it.
func (s *nodeShm) offer(it int, bytes float64) bool {
	if s.occupied+bytes > s.capacity {
		s.skipped++
		return false
	}
	s.occupied += bytes
	s.pending = append(s.pending, shmIter{iter: it, bytes: bytes})
	if s.waiting != nil {
		f := s.waiting
		s.waiting = nil
		f.Complete()
	}
	return true
}

// take blocks the dedicated core until data is pending, then dequeues one
// iteration. It returns false when closed and drained.
func (s *nodeShm) take(p *des.Proc) (shmIter, bool) {
	for len(s.pending) == 0 {
		if s.closed {
			return shmIter{}, false
		}
		s.waiting = s.eng.NewFuture()
		p.Await(s.waiting)
	}
	it := s.pending[0]
	s.pending = s.pending[1:]
	return it, true
}

// free releases an iteration's bytes after the dedicated core wrote them.
func (s *nodeShm) free(bytes float64) { s.occupied -= bytes }

// close marks the producer finished; a parked dedicated core is woken to
// observe the closure.
func (s *nodeShm) close() {
	s.closed = true
	if s.waiting != nil {
		f := s.waiting
		s.waiting = nil
		f.Complete()
	}
}

// runDamaris models the Damaris approach: per node, CoresPerNode-D
// simulation cores and D dedicated cores. Simulation cores pay only the
// shared-memory write (bytes/ShmBandwidth + per-variable overhead); the
// dedicated core asynchronously aggregates the node's output into
// FilesPerIter big files per iteration and writes them overlapped with
// the next compute phase. Because the node computes the same (weak-
// scaling) problem on fewer cores, the compute phase stretches by
// CoresPerNode/(CoresPerNode-D) — the paper's "slight impact".
func runDamaris(cfg Config) Result {
	eng := des.NewEngine()
	root := rng.New(cfg.Seed, 3)
	fs := pfs.New(eng, cfg.Platform.PFS, root.Named("pfs"))

	plat := cfg.Platform
	w := cfg.Workload
	dedicated := cfg.DedicatedPerNode
	computePerNode := plat.CoresPerNode - dedicated
	if computePerNode <= 0 {
		panic("iostrat: no compute cores left on the node")
	}
	nComputeRanks := plat.Nodes * computePerNode
	// Same per-node problem on fewer cores: longer compute phase.
	stretch := float64(plat.CoresPerNode) / float64(computePerNode)
	computeTime := w.ComputeTime * stretch
	// The node still produces the same output volume per iteration.
	nodeBytes := w.NodeBytes(plat.CoresPerNode)
	bytesPerComputeRank := nodeBytes / float64(nComputeRanks/plat.Nodes)

	res := Result{Approach: Damaris, Platform: plat, Workload: w}
	res.IOTimes = make([]float64, w.Iterations)
	res.RankWriteTimes = make([]float64, 0, nComputeRanks*w.Iterations)

	stepBarrier := eng.NewBarrier(nComputeRanks)
	phaseStart := make([]float64, w.Iterations)

	shms := make([]*nodeShm, plat.Nodes)
	arrived := make([][]int, plat.Nodes) // per node, per iteration rank count
	for n := range shms {
		shms[n] = &nodeShm{eng: eng, capacity: cfg.ShmCapacity}
		arrived[n] = make([]int, w.Iterations)
	}

	var schedule writeScheduler
	switch cfg.Scheduling {
	case SchedOSTToken:
		schedule = newOSTTokens(eng, fs.OSTCount())
	case SchedGlobalToken:
		schedule = newGlobalTokens(eng, fs.OSTCount())
	default:
		schedule = nopScheduler{}
	}

	// Simulation cores.
	var appEnd float64
	for r := 0; r < nComputeRanks; r++ {
		rank := r
		node := rank / computePerNode
		compRng := root.Named("compute").Child(uint64(rank))
		eng.Spawn("sim", func(p *des.Proc) {
			for it := 0; it < w.Iterations; it++ {
				p.Wait(computeTime * compRng.UnitLogNormal(w.ComputeJitter))
				p.Arrive(stepBarrier)
				if rank == 0 {
					fs.BeginPhase()
					phaseStart[it] = p.Now()
				}
				// The application-visible "I/O": copy the variables into
				// the shared-memory segment.
				t0 := p.Now()
				p.Wait(bytesPerComputeRank/plat.ShmBandwidth +
					float64(w.VarsPerCore)*plat.ShmWriteOverhead)
				res.RankWriteTimes = append(res.RankWriteTimes, p.Now()-t0)
				// Last core of the node in this iteration publishes the
				// node's data to the dedicated core.
				arrived[node][it]++
				if arrived[node][it] == computePerNode {
					shms[node].offer(it, nodeBytes)
				}
				p.Arrive(stepBarrier)
				if rank == 0 {
					res.IOTimes[it] = p.Now() - phaseStart[it]
				}
			}
			if rank == 0 {
				appEnd = p.Now()
				for _, s := range shms {
					s.close()
				}
			}
		})
	}

	// Dedicated cores (one writer proc per node; D dedicated cores share
	// the same work, so busy time is attributed to the node's pool).
	for n := 0; n < plat.Nodes; n++ {
		node := n
		eng.Spawn("dedicated", func(p *des.Proc) {
			fileSeq := 0
			for {
				item, ok := shms[node].take(p)
				if !ok {
					return
				}
				t0 := p.Now()
				payload := item.bytes
				if cfg.CompressRatio > 1 {
					// Compression runs on the dedicated core: CPU time
					// here, fewer bytes toward the file system, and no
					// cost at all on the simulation side.
					p.Wait(payload / cfg.CompressRate)
					payload /= cfg.CompressRatio
				}
				files := cfg.FilesPerIter
				per := payload / float64(files)
				pat := pfs.BigSequential
				if per < 64e6 {
					pat = pfs.SmallFile
				}
				for f := 0; f < files; f++ {
					// Usage-balanced allocation (Lustre QoS allocator):
					// spread node files round-robin over the OSTs.
					ost := (node + fileSeq*plat.Nodes) % fs.OSTCount()
					fileSeq++
					release := schedule.acquire(p, ost)
					fs.Create(p)
					fs.Write(p, ost, per, pat)
					fs.Close(p)
					release()
					res.FilesCreated++
				}
				shms[node].free(item.bytes)
				res.DedicatedBusy += p.Now() - t0
			}
		})
	}

	drainEnd := eng.Run()
	res.TotalTime = appEnd
	res.DrainTime = drainEnd
	res.BytesWritten = fs.TotalBytes()
	res.IOWindow = fs.IOBusyTime()
	res.DedicatedTotal = float64(plat.Nodes*dedicated) * drainEnd
	for _, s := range shms {
		res.SkippedIters += s.skipped
	}
	return res
}

// writeScheduler coordinates dedicated-core writes (E6). acquire blocks
// until the write may start and returns the matching release.
type writeScheduler interface {
	acquire(p *des.Proc, ost int) (release func())
}

type nopScheduler struct{}

func (nopScheduler) acquire(*des.Proc, int) func() { return func() {} }

// ostTokens serializes writers per OST.
type ostTokens struct{ tokens []*des.Resource }

func newOSTTokens(eng *des.Engine, n int) *ostTokens {
	t := &ostTokens{tokens: make([]*des.Resource, n)}
	for i := range t.tokens {
		t.tokens[i] = eng.NewResource(1)
	}
	return t
}

func (t *ostTokens) acquire(p *des.Proc, ost int) func() {
	p.Acquire(t.tokens[ost], 1)
	return func() { t.tokens[ost].Release(1) }
}

// globalTokens bounds the number of concurrent dedicated-core writers.
type globalTokens struct{ sem *des.Resource }

func newGlobalTokens(eng *des.Engine, n int) *globalTokens {
	return &globalTokens{sem: eng.NewResource(n)}
}

func (t *globalTokens) acquire(p *des.Proc, _ int) func() {
	p.Acquire(t.sem, 1)
	return func() { t.sem.Release(1) }
}
