package iostrat

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/workload"
)

// scenarioConfig builds a tree-mode run driven by a generated trace.
func scenarioConfig(t *testing.T, sc string, adapt AdaptPolicy) Config {
	t.Helper()
	plat := topology.Kraken(32)
	plat.PFS.OSTs = 32
	tr, err := workload.Generate(workload.Spec{
		Scenario:         sc,
		Seed:             2013,
		Iterations:       8,
		Nodes:            plat.Nodes,
		BaseBytesPerCore: 38e6,
		BaseComputeTime:  50,
	})
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Platform: plat,
		Workload: CM1Workload(8),
		Seed:     7,
		Fanout:   4,
		Scenario: tr,
		Adapt:    adapt,
	}
}

// TestScenarioReplayBitIdentical is the DES half of the determinism
// contract: the same scenario and seed replay to identical measurements,
// for every scenario, under both adaptation policies.
func TestScenarioReplayBitIdentical(t *testing.T) {
	for _, sc := range workload.Scenarios() {
		for _, adapt := range AdaptPolicies() {
			a, err := Run(Damaris, scenarioConfig(t, sc, adapt))
			if err != nil {
				t.Fatalf("%s/%s: %v", sc, adapt, err)
			}
			b, err := Run(Damaris, scenarioConfig(t, sc, adapt))
			if err != nil {
				t.Fatalf("%s/%s: %v", sc, adapt, err)
			}
			if a.TotalTime != b.TotalTime || a.DrainTime != b.DrainTime ||
				a.BytesWritten != b.BytesWritten || a.TreeReforms != b.TreeReforms {
				t.Fatalf("%s/%s: replay diverged: %+v vs %+v", sc, adapt,
					[4]float64{a.TotalTime, a.DrainTime, a.BytesWritten, float64(a.TreeReforms)},
					[4]float64{b.TotalTime, b.DrainTime, b.BytesWritten, float64(b.TreeReforms)})
			}
			for i := range a.TreeWriteLatencies {
				if a.TreeWriteLatencies[i] != b.TreeWriteLatencies[i] {
					t.Fatalf("%s/%s: iteration %d write latency diverged", sc, adapt, i)
				}
			}
		}
	}
}

// TestScenarioAdaptReformsWithoutLoss puts the adaptive policy on a
// mid-run platform shift: the tree must actually re-form, and the epoch
// fence must keep every iteration complete — no acknowledged data lost
// to the re-formation.
func TestScenarioAdaptReformsWithoutLoss(t *testing.T) {
	for _, sc := range []string{workload.NICStep, workload.PFSStep} {
		res, err := Run(Damaris, scenarioConfig(t, sc, AdaptAdaptive))
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		if res.TreeReforms == 0 {
			t.Fatalf("%s: adaptive run never re-formed the tree", sc)
		}
		if res.LostBytes != 0 {
			t.Fatalf("%s: lost %g bytes with no injected failures", sc, res.LostBytes)
		}
		if res.SkippedIters != 0 {
			t.Fatalf("%s: %d skipped iterations", sc, res.SkippedIters)
		}
		for it, frac := range res.Completeness {
			if frac != 1 {
				t.Fatalf("%s: iteration %d completeness %g, want 1", sc, it, frac)
			}
		}
	}
}

// TestScenarioStaticNeverReforms pins the control leg: static runs keep
// their configured topology whatever the trace does.
func TestScenarioStaticNeverReforms(t *testing.T) {
	res, err := Run(Damaris, scenarioConfig(t, workload.NICStep, AdaptStatic))
	if err != nil {
		t.Fatal(err)
	}
	if res.TreeReforms != 0 {
		t.Fatalf("static run re-formed %d times", res.TreeReforms)
	}
}

// TestScenarioAdaptChurnLossBounded runs node-churn under adaptation:
// only the dead nodes' contributions may go missing, and completeness
// must exactly account for them.
func TestScenarioAdaptChurnLossBounded(t *testing.T) {
	cfg := scenarioConfig(t, workload.NodeChurn, AdaptAdaptive)
	res, err := Run(Damaris, cfg)
	if err != nil {
		t.Fatal(err)
	}
	losses := cfg.Scenario.NodeLosses()
	if res.NodesFailed != len(losses) {
		t.Fatalf("NodesFailed = %d, want %d", res.NodesFailed, len(losses))
	}
	nodes := cfg.Platform.Nodes
	for it, frac := range res.Completeness {
		deadBy := 0
		for _, l := range losses {
			if l.Iteration <= it {
				deadBy++
			}
		}
		min := float64(nodes-deadBy) / float64(nodes)
		if frac < min-1e-9 || frac > 1+1e-9 {
			t.Fatalf("iteration %d completeness %g outside [%g, 1]", it, frac, min)
		}
	}
}

// TestScenarioAMRGrowsVolume checks the per-iteration workload actually
// reaches the backend: an AMR trace must write more than iterations ×
// first-iteration volume.
func TestScenarioAMRGrowsVolume(t *testing.T) {
	cfg := scenarioConfig(t, workload.AMR, AdaptStatic)
	res, err := Run(Damaris, cfg)
	if err != nil {
		t.Fatal(err)
	}
	flat := cfg.Scenario.Iters[0].BytesPerCore * float64(cfg.Platform.CoresPerNode) *
		float64(cfg.Platform.Nodes) * float64(cfg.Scenario.Iterations())
	if res.BytesWritten <= flat*1.01 {
		t.Fatalf("AMR growth invisible: wrote %g, flat baseline %g", res.BytesWritten, flat)
	}
	if res.SkippedIters != 0 {
		t.Fatalf("AMR peak overflowed the shm segment: %d skips", res.SkippedIters)
	}
}

// TestScenarioAdaptiveHelpsOnShift is the headline E11 claim in unit
// form: on a NIC bandwidth step, re-forming the tree beats keeping the
// static shape on aggregate write latency — and never by losing data.
func TestScenarioAdaptiveHelpsOnShift(t *testing.T) {
	static, err := Run(Damaris, scenarioConfig(t, workload.NICStep, AdaptStatic))
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := Run(Damaris, scenarioConfig(t, workload.NICStep, AdaptAdaptive))
	if err != nil {
		t.Fatal(err)
	}
	// Median: the PFS model's heavy-tailed stragglers can blow up a
	// mean on either leg; the topology comparison is the median's job.
	sm, am := stats.Median(static.TreeWriteLatencies), stats.Median(adaptive.TreeWriteLatencies)
	if am >= sm {
		t.Fatalf("adaptive write latency %.3f s not below static %.3f s", am, sm)
	}
	if adaptive.BytesWritten != static.BytesWritten {
		t.Fatalf("adaptation changed the stored volume: %g vs %g",
			adaptive.BytesWritten, static.BytesWritten)
	}
}

// TestScenarioValidation exercises the configuration guards.
func TestScenarioValidation(t *testing.T) {
	cfg := scenarioConfig(t, workload.Steady, AdaptStatic)

	bad := cfg
	bad.Adapt = "sometimes"
	if _, err := Run(Damaris, bad); err == nil {
		t.Fatal("unknown adapt policy accepted")
	}

	bad = cfg
	bad.Adapt = AdaptAdaptive
	bad.Fanout = 0
	if _, err := Run(Damaris, bad); err == nil {
		t.Fatal("adaptive without tree mode accepted")
	}

	bad = cfg
	bad.Platform = topology.Kraken(8)
	if _, err := Run(Damaris, bad); err == nil {
		t.Fatal("node-count mismatch between trace and platform accepted")
	}
}
