package iostrat

import (
	"repro/internal/des"
	"repro/internal/pfs"
	"repro/internal/rng"
)

// runFPP models the file-per-process approach: every rank creates and
// writes its own file each output phase. There is no inter-rank
// synchronization inside the phase, but the application is bulk-
// synchronous, so the next compute phase starts only when every rank has
// finished writing — the phase cost is the max over ranks.
func runFPP(cfg Config) Result {
	eng := des.NewEngine()
	root := rng.New(cfg.Seed, 1)
	fs := pfs.New(eng, cfg.Platform.PFS, root.Named("pfs"))

	plat := cfg.Platform
	w := cfg.Workload
	ranks := plat.Cores()

	res := Result{Approach: FilePerProcess, Platform: plat, Workload: w}
	res.IOTimes = make([]float64, w.Iterations)
	res.RankWriteTimes = make([]float64, 0, ranks*w.Iterations)

	stepBarrier := eng.NewBarrier(ranks)
	phaseStart := make([]float64, w.Iterations)

	for r := 0; r < ranks; r++ {
		rank := r
		compRng := root.Named("compute").Child(uint64(rank))
		placeRng := root.Named("place").Child(uint64(rank))
		eng.Spawn("rank", func(p *des.Proc) {
			for it := 0; it < w.Iterations; it++ {
				p.Wait(w.ComputeTime * compRng.UnitLogNormal(w.ComputeJitter))
				p.Arrive(stepBarrier)
				if rank == 0 {
					// First process into the phase: fresh interference
					// draws and the phase-start timestamp.
					fs.BeginPhase()
					phaseStart[it] = p.Now()
				}
				t0 := p.Now()
				ost := fs.PlaceFile(1, placeRng)[0]
				fs.Create(p)
				fs.Write(p, ost, w.BytesPerCore, pfs.SmallFile)
				fs.Close(p)
				res.RankWriteTimes = append(res.RankWriteTimes, p.Now()-t0)
				p.Arrive(stepBarrier)
				if rank == 0 {
					res.IOTimes[it] = p.Now() - phaseStart[it]
				}
			}
			if rank == 0 {
				res.TotalTime = p.Now()
			}
		})
	}
	eng.Run()

	res.BytesWritten = fs.TotalBytes()
	res.IOWindow = fs.IOBusyTime()
	res.FilesCreated = ranks * w.Iterations
	res.DrainTime = res.TotalTime
	return res
}
