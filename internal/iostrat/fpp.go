package iostrat

import (
	"repro/internal/des"
	"repro/internal/rng"
	"repro/internal/storage"
)

// runFPP models the file-per-process approach: every rank creates and
// writes its own file each output phase. There is no inter-rank
// synchronization inside the phase, but the application is bulk-
// synchronous, so the next compute phase starts only when every rank has
// finished writing — the phase cost is the max over ranks.
func runFPP(cfg Config) (Result, error) {
	eng := des.NewEngine()
	root := rng.New(cfg.Seed, 1)
	be, _, err := cfg.newBackend(eng, root.Named("pfs"))
	if err != nil {
		return Result{}, err
	}

	plat := cfg.Platform
	w := cfg.Workload
	ranks := plat.Cores()

	res := Result{Approach: FilePerProcess, Platform: plat, Workload: w, Backend: cfg.Backend}
	res.IOTimes = make([]float64, w.Iterations)
	res.RankWriteTimes = make([]float64, 0, ranks*w.Iterations)

	stepBarrier := eng.NewBarrier(ranks)
	phaseStart := make([]float64, w.Iterations)

	for r := 0; r < ranks; r++ {
		rank := r
		compRng := root.Named("compute").Child(uint64(rank))
		placeRng := root.Named("place").Child(uint64(rank))
		eng.Spawn("rank", func(p *des.Proc) {
			for it := 0; it < w.Iterations; it++ {
				p.Wait(w.ComputeTime * compRng.UnitLogNormal(w.ComputeJitter))
				p.Arrive(stepBarrier)
				if rank == 0 {
					// First process into the phase: fresh interference
					// draws and the phase-start timestamp.
					be.BeginPhase()
					phaseStart[it] = p.Now()
				}
				t0 := p.Now()
				ost := be.PlaceFile(1, placeRng)[0]
				be.Create(p)
				be.Write(p, ost, w.BytesPerCore, storage.SmallFile)
				be.Close(p)
				res.RankWriteTimes = append(res.RankWriteTimes, p.Now()-t0)
				p.Arrive(stepBarrier)
				if rank == 0 {
					res.IOTimes[it] = p.Now() - phaseStart[it]
				}
			}
			if rank == 0 {
				res.TotalTime = p.Now()
			}
		})
	}
	eng.Run()

	acc := be.Accounting()
	res.BytesWritten = acc.BytesWritten
	res.IOWindow = acc.IOBusyTime
	res.BytesSaved = acc.BytesSaved
	res.CodecCPUTime = acc.EncodeTime + acc.DecodeTime
	res.DedupBytesSaved = acc.DedupBytesSaved
	res.HashCPUTime = acc.ChunkHashTime
	res.FilesCreated = ranks * w.Iterations
	res.DrainTime = res.TotalTime
	return res, nil
}
