// Package topology defines the cluster platform presets used by the
// paper's evaluation: the Kraken Cray XT5 (12 cores/node, Lustre), the
// Grid'5000 testbed (24 cores/node) and a Power5 cluster (16 cores/node).
//
// The parallel-file-system parameters are calibrated so that the
// discrete-event model reproduces the I/O phenomena reported in the paper
// and its companion study (Dorier et al., CLUSTER 2012): metadata storms
// under file-per-process, shared-file lock collapse under collective I/O,
// and high-efficiency big sequential streams under dedicated-core
// aggregation. Absolute numbers are calibration, the mechanisms are not.
package topology

// PFSParams describes a Lustre-like parallel file system: one metadata
// server in front of OSTs (object storage targets) that serve concurrent
// write streams with pattern-dependent efficiency.
type PFSParams struct {
	OSTs         int     // number of object storage targets
	OSTBandwidth float64 // effective sequential peak per OST, bytes/s
	StripeSize   int64   // bytes per stripe unit

	// Metadata service times (seconds per operation, serialized at the MDS).
	MDSCreate float64
	MDSOpen   float64
	MDSClose  float64

	// FileOverhead is the fixed OST-side cost charged once per file
	// stream (object allocation, initial seeks); it is what makes many
	// small files slower than one aggregated file of the same volume.
	FileOverhead float64

	// Concurrency efficiency: a stream of a given access pattern writing
	// alongside n-1 other streams on the same OST achieves
	//   base / (1 + alpha*(n-1))
	// of the OST peak, shared equally among streams.
	AlphaSeq    float64 // unique big sequential files (dedicated cores)
	SmallBase   float64 // base efficiency of small per-process files (seeks)
	AlphaSmall  float64 // degradation per extra small-file stream (FPP)
	SharedBase  float64 // base efficiency for a shared file (extent locks)
	AlphaShared float64

	// Per-request multiplicative jitter: UnitLogNormal(JitterSigma).
	// Independently, with probability HeavyTailProb a request suffers an
	// additive straggler delay of Pareto(HeavyTailScale, HeavyTailAlpha)
	// seconds (a stuck RPC, a server hiccup).
	JitterSigma    float64
	HeavyTailProb  float64
	HeavyTailAlpha float64
	HeavyTailScale float64 // seconds

	// Cross-application interference: at each I/O phase every OST draws a
	// congestion factor UnitLogNormal(CongestionSigma) that divides its
	// bandwidth for the duration of the phase.
	CongestionSigma float64
}

// Platform describes one machine of the evaluation.
type Platform struct {
	Name         string
	Nodes        int
	CoresPerNode int

	// NICBandwidth is the per-node injection bandwidth (bytes/s), used by
	// the collective two-phase exchange.
	NICBandwidth float64
	// NICLatency is the per-message latency (seconds).
	NICLatency float64

	// ShmBandwidth is the node-local memory copy bandwidth seen by a
	// simulation core writing into the shared-memory segment (bytes/s).
	ShmBandwidth float64
	// ShmWriteOverhead is the fixed per-variable overhead of a Damaris
	// write call (metadata registration, queue event), seconds.
	ShmWriteOverhead float64

	PFS PFSParams
}

// Cores returns the total core count.
func (p Platform) Cores() int { return p.Nodes * p.CoresPerNode }

// WithNodes returns a copy of the platform resized to n nodes (weak
// scaling keeps the per-node PFS unchanged: the file system does not grow
// with the job).
func (p Platform) WithNodes(n int) Platform {
	p.Nodes = n
	return p
}

const (
	kb = 1 << 10
	mb = 1 << 20
)

// Kraken returns a Kraken-Cray-XT5-like platform: 12 cores per node and a
// Lustre file system with a single MDS and 336 OSTs.
func Kraken(nodes int) Platform {
	return Platform{
		Name:         "kraken",
		Nodes:        nodes,
		CoresPerNode: 12,
		NICBandwidth: 1.6e9,
		NICLatency:   5e-6,
		// Client-observable memcpy bandwidth into shm and the fixed cost
		// of one damaris_write call; 20 variables × (size/5 GB/s + 4 ms)
		// lands near the ~0.1 s the paper reports.
		ShmBandwidth:     5e9,
		ShmWriteOverhead: 4e-3,
		PFS: PFSParams{
			OSTs:            336,
			OSTBandwidth:    100e6,
			StripeSize:      1 * mb,
			MDSCreate:       3e-3,
			MDSOpen:         1e-3,
			MDSClose:        0.5e-3,
			FileOverhead:    0.10,
			AlphaSeq:        0.30,
			SmallBase:       0.85,
			AlphaSmall:      0.27,
			SharedBase:      0.045,
			AlphaShared:     0.15,
			JitterSigma:     0.30,
			HeavyTailProb:   0.002,
			HeavyTailAlpha:  1.3,
			HeavyTailScale:  2.0,
			CongestionSigma: 0.20,
		},
	}
}

// Grid5000 returns a Grid'5000-Rennes-like platform: 24 cores per node and
// a smaller cluster file system.
func Grid5000(nodes int) Platform {
	return Platform{
		Name:             "grid5000",
		Nodes:            nodes,
		CoresPerNode:     24,
		NICBandwidth:     1.25e9, // 10 GbE
		NICLatency:       20e-6,
		ShmBandwidth:     6e9,
		ShmWriteOverhead: 4e-3,
		PFS: PFSParams{
			OSTs:            24,
			OSTBandwidth:    60e6,
			StripeSize:      1 * mb,
			MDSCreate:       2e-3,
			MDSOpen:         0.8e-3,
			MDSClose:        0.4e-3,
			FileOverhead:    0.12,
			AlphaSeq:        0.35,
			SmallBase:       0.85,
			AlphaSmall:      0.30,
			SharedBase:      0.045,
			AlphaShared:     0.15,
			JitterSigma:     0.35,
			HeavyTailProb:   0.003,
			HeavyTailAlpha:  1.3,
			HeavyTailScale:  2.0,
			CongestionSigma: 0.30,
		},
	}
}

// Power5 returns a Power5-cluster-like platform: 16 cores per node, GPFS-
// like storage with fewer, faster servers.
func Power5(nodes int) Platform {
	return Platform{
		Name:             "power5",
		Nodes:            nodes,
		CoresPerNode:     16,
		NICBandwidth:     2e9,
		NICLatency:       8e-6,
		ShmBandwidth:     4e9,
		ShmWriteOverhead: 4e-3,
		PFS: PFSParams{
			OSTs:            48,
			OSTBandwidth:    80e6,
			StripeSize:      4 * mb,
			MDSCreate:       1.5e-3,
			MDSOpen:         0.7e-3,
			MDSClose:        0.3e-3,
			FileOverhead:    0.10,
			AlphaSeq:        0.25,
			SmallBase:       0.90,
			AlphaSmall:      0.30,
			SharedBase:      0.055,
			AlphaShared:     0.12,
			JitterSigma:     0.25,
			HeavyTailProb:   0.002,
			HeavyTailAlpha:  1.3,
			HeavyTailScale:  2.0,
			CongestionSigma: 0.25,
		},
	}
}

// ByName returns the preset platform with the given name resized to nodes,
// or false if unknown. Recognized names: kraken, grid5000, power5.
func ByName(name string, nodes int) (Platform, bool) {
	switch name {
	case "kraken":
		return Kraken(nodes), true
	case "grid5000":
		return Grid5000(nodes), true
	case "power5":
		return Power5(nodes), true
	}
	return Platform{}, false
}
