package topology

import "testing"

func TestPresets(t *testing.T) {
	cases := []struct {
		name  string
		nodes int
		cores int
	}{
		{"kraken", 768, 12},
		{"grid5000", 34, 24},
		{"power5", 16, 16},
	}
	for _, c := range cases {
		p, ok := ByName(c.name, c.nodes)
		if !ok {
			t.Fatalf("preset %q not found", c.name)
		}
		if p.CoresPerNode != c.cores {
			t.Errorf("%s cores/node = %d, want %d", c.name, p.CoresPerNode, c.cores)
		}
		if p.Cores() != c.nodes*c.cores {
			t.Errorf("%s total cores = %d", c.name, p.Cores())
		}
		if p.PFS.OSTs <= 0 || p.PFS.OSTBandwidth <= 0 || p.NICBandwidth <= 0 {
			t.Errorf("%s has non-positive hardware parameters: %+v", c.name, p)
		}
		if p.PFS.MDSCreate <= 0 || p.PFS.StripeSize <= 0 {
			t.Errorf("%s has non-positive PFS service parameters", c.name)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, ok := ByName("bluewaters", 1); ok {
		t.Fatal("unknown platform should not resolve")
	}
}

func TestWithNodes(t *testing.T) {
	p := Kraken(768)
	q := p.WithNodes(48)
	if q.Nodes != 48 || q.Cores() != 576 {
		t.Fatalf("WithNodes: %+v", q)
	}
	if p.Nodes != 768 {
		t.Fatal("WithNodes mutated the receiver")
	}
	if q.PFS.OSTs != p.PFS.OSTs {
		t.Fatal("weak scaling must keep the PFS size fixed")
	}
}

func TestKrakenPaperScale(t *testing.T) {
	// The paper's largest run: 9216 processes on Kraken = 768 nodes.
	p := Kraken(768)
	if p.Cores() != 9216 {
		t.Fatalf("Kraken(768) cores = %d, want 9216", p.Cores())
	}
}
