package sdf

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/compress"
	"repro/internal/meta"
)

// Reader opens and reads SDF files.
type Reader struct {
	r      io.ReaderAt
	closer io.Closer

	datasets map[string]DatasetInfo
	order    []string
	attrs    map[[2]string]attr
	groups   []string
}

// Open opens the SDF file at path.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	r, err := NewReader(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	r.closer = f
	return r, nil
}

// NewReader parses an SDF file from any random-access source.
func NewReader(src io.ReaderAt, size int64) (*Reader, error) {
	head := make([]byte, len(magic))
	if _, err := src.ReadAt(head, 0); err != nil || !bytes.Equal(head, magic) {
		return nil, fmt.Errorf("sdf: not an SDF file")
	}
	if size < int64(len(magic))+20 {
		return nil, fmt.Errorf("sdf: truncated file")
	}
	var tail [20]byte
	if _, err := src.ReadAt(tail[:], size-20); err != nil {
		return nil, fmt.Errorf("sdf: reading trailer: %w", err)
	}
	if !bytes.Equal(tail[12:], trailerMagic) {
		return nil, fmt.Errorf("sdf: bad trailer magic (unclosed writer?)")
	}
	indexOff := int64(binary.LittleEndian.Uint64(tail[0:]))
	wantCRC := binary.LittleEndian.Uint32(tail[8:])
	if indexOff < int64(len(magic)) || indexOff > size-20 {
		return nil, fmt.Errorf("sdf: corrupt index offset %d", indexOff)
	}
	idx := make([]byte, size-20-indexOff)
	if _, err := src.ReadAt(idx, indexOff); err != nil {
		return nil, fmt.Errorf("sdf: reading index: %w", err)
	}
	if crc32.ChecksumIEEE(idx) != wantCRC {
		return nil, fmt.Errorf("sdf: index checksum mismatch")
	}
	r := &Reader{
		r:        src,
		datasets: map[string]DatasetInfo{},
		attrs:    map[[2]string]attr{},
	}
	if err := r.decodeIndex(idx); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *Reader) decodeIndex(buf []byte) error {
	p := parser{buf: buf}
	nds := p.u32()
	for i := uint32(0); i < nds && p.err == nil; i++ {
		var d DatasetInfo
		d.Path = p.str()
		d.Type = meta.Type(p.str())
		ndims := p.u32()
		if p.err == nil && ndims > 64 {
			return fmt.Errorf("sdf: implausible rank %d", ndims)
		}
		d.Dims = make([]int, ndims)
		for j := range d.Dims {
			d.Dims[j] = int(p.u64())
		}
		d.Codec = p.str()
		d.RawSize = int64(p.u64())
		d.EncSize = int64(p.u64())
		d.Offset = int64(p.u64())
		d.CRC = p.u32()
		r.datasets[d.Path] = d
		r.order = append(r.order, d.Path)
	}
	nattrs := p.u32()
	for i := uint32(0); i < nattrs && p.err == nil; i++ {
		var a attr
		a.Path = p.str()
		a.Key = p.str()
		a.Kind = p.byte()
		switch a.Kind {
		case 's':
			a.Str = p.str()
		case 'i':
			a.Int = int64(p.u64())
		case 'f':
			a.Float = math.Float64frombits(p.u64())
		default:
			if p.err == nil {
				return fmt.Errorf("sdf: unknown attribute kind %q", a.Kind)
			}
		}
		r.attrs[[2]string{a.Path, a.Key}] = a
	}
	ngroups := p.u32()
	for i := uint32(0); i < ngroups && p.err == nil; i++ {
		r.groups = append(r.groups, p.str())
	}
	if p.err != nil {
		return fmt.Errorf("sdf: corrupt index: %w", p.err)
	}
	return nil
}

type parser struct {
	buf []byte
	pos int
	err error
}

func (p *parser) take(n int) []byte {
	if p.err != nil {
		return nil
	}
	if p.pos+n > len(p.buf) {
		p.err = io.ErrUnexpectedEOF
		return nil
	}
	out := p.buf[p.pos : p.pos+n]
	p.pos += n
	return out
}

func (p *parser) u32() uint32 {
	b := p.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (p *parser) u64() uint64 {
	b := p.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (p *parser) byte() byte {
	b := p.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (p *parser) str() string {
	n := p.u32()
	if p.err == nil && int(n) > len(p.buf)-p.pos {
		p.err = io.ErrUnexpectedEOF
		return ""
	}
	return string(p.take(int(n)))
}

// Datasets returns the dataset infos in write order.
func (r *Reader) Datasets() []DatasetInfo {
	out := make([]DatasetInfo, 0, len(r.order))
	for _, p := range r.order {
		out = append(out, r.datasets[p])
	}
	return out
}

// Groups returns the registered group paths (sorted).
func (r *Reader) Groups() []string { return append([]string(nil), r.groups...) }

// Dataset returns the info for one path.
func (r *Reader) Dataset(path string) (DatasetInfo, bool) {
	d, ok := r.datasets[cleanPath(path)]
	return d, ok
}

// ReadDataset reads, CRC-checks and decompresses a dataset's payload.
func (r *Reader) ReadDataset(path string) ([]byte, error) {
	d, ok := r.datasets[cleanPath(path)]
	if !ok {
		return nil, fmt.Errorf("sdf: no dataset %q", path)
	}
	enc := make([]byte, d.EncSize)
	if _, err := r.r.ReadAt(enc, d.Offset); err != nil {
		return nil, fmt.Errorf("sdf: reading %q: %w", path, err)
	}
	if crc32.ChecksumIEEE(enc) != d.CRC {
		return nil, fmt.Errorf("sdf: dataset %q checksum mismatch", path)
	}
	codec, err := compress.ByName(d.Codec)
	if err != nil {
		return nil, err
	}
	return codec.Decode(enc, int(d.RawSize), d.Type.Size())
}

// ReadFloat64s reads a float64 dataset as a slice.
func (r *Reader) ReadFloat64s(path string) ([]float64, error) {
	d, ok := r.datasets[cleanPath(path)]
	if !ok {
		return nil, fmt.Errorf("sdf: no dataset %q", path)
	}
	if d.Type != meta.Float64 {
		return nil, fmt.Errorf("sdf: dataset %q is %s, not float64", path, d.Type)
	}
	raw, err := r.ReadDataset(path)
	if err != nil {
		return nil, err
	}
	return compress.BytesFloat64(raw), nil
}

// AttrString returns a string attribute.
func (r *Reader) AttrString(path, key string) (string, bool) {
	a, ok := r.attrs[[2]string{cleanPath(path), key}]
	if !ok || a.Kind != 's' {
		return "", false
	}
	return a.Str, true
}

// AttrInt returns an integer attribute.
func (r *Reader) AttrInt(path, key string) (int64, bool) {
	a, ok := r.attrs[[2]string{cleanPath(path), key}]
	if !ok || a.Kind != 'i' {
		return 0, false
	}
	return a.Int, true
}

// AttrFloat returns a float attribute.
func (r *Reader) AttrFloat(path, key string) (float64, bool) {
	a, ok := r.attrs[[2]string{cleanPath(path), key}]
	if !ok || a.Kind != 'f' {
		return 0, false
	}
	return a.Float, true
}

// Close releases the underlying file (if opened via Open).
func (r *Reader) Close() error {
	if r.closer != nil {
		return r.closer.Close()
	}
	return nil
}
