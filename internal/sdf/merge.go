package sdf

import (
	"fmt"
	"sort"
)

// Merge combines several SDF files into one, re-encoding every dataset
// with the given codec. Dataset paths must not collide across inputs
// (per-rank files use distinct src segments, so they never do); root
// attributes of later files win. This is the post-processing step the
// paper calls out as the pain of file-per-process output: datasets
// "spread in many small files" reassembled into one shared file.
func Merge(outPath, codec string, inPaths ...string) error {
	if len(inPaths) == 0 {
		return fmt.Errorf("sdf: nothing to merge")
	}
	sorted := append([]string(nil), inPaths...)
	sort.Strings(sorted) // deterministic dataset order in the output
	out, err := Create(outPath)
	if err != nil {
		return err
	}
	for _, in := range sorted {
		r, err := Open(in)
		if err != nil {
			out.Close()
			return fmt.Errorf("sdf: merging %s: %w", in, err)
		}
		for _, g := range r.Groups() {
			if err := out.CreateGroup(g); err != nil {
				r.Close()
				out.Close()
				return err
			}
		}
		for _, d := range r.Datasets() {
			data, err := r.ReadDataset(d.Path)
			if err != nil {
				r.Close()
				out.Close()
				return fmt.Errorf("sdf: merging %s: %w", in, err)
			}
			if err := out.WriteDataset(d.Path, d.Type, d.Dims, data, codec); err != nil {
				r.Close()
				out.Close()
				return fmt.Errorf("sdf: merging %s: %w", in, err)
			}
		}
		r.Close()
	}
	return out.Close()
}
