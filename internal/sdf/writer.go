// Package sdf implements SDF, a self-describing hierarchical scientific
// data format standing in for HDF5 in this reproduction: groups, typed
// n-dimensional datasets, string/number attributes, optional per-dataset
// compression, and CRC-verified reads.
//
// Layout: a small magic header, then dataset payloads appended in write
// order, then a binary index (datasets, attributes, groups), then a fixed
// trailer holding the index offset and checksum — so files are written in
// one streaming pass and opened by reading the trailer first, like HDF5
// and Parquet do.
package sdf

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/compress"
	"repro/internal/meta"
)

var (
	magic        = []byte("SDFv1\x00\x00\x00")
	trailerMagic = []byte("SDFEND\x00\x00")
)

// DatasetInfo describes one stored dataset.
type DatasetInfo struct {
	Path    string
	Type    meta.Type
	Dims    []int
	Codec   string
	RawSize int64
	EncSize int64
	Offset  int64
	CRC     uint32
}

// Elems returns the number of elements.
func (d DatasetInfo) Elems() int {
	n := 1
	for _, dim := range d.Dims {
		n *= dim
	}
	return n
}

// attr is one attribute value; only string, int64 and float64 are stored.
type attr struct {
	Path, Key string
	Kind      byte // 's', 'i', 'f'
	Str       string
	Int       int64
	Float     float64
}

// Writer streams an SDF file.
type Writer struct {
	w      io.Writer
	closer io.Closer
	off    int64

	datasets []DatasetInfo
	paths    map[string]bool
	attrs    []attr
	groups   map[string]bool
	closed   bool
	err      error
}

// Create creates an SDF file at path.
func Create(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := NewWriter(f)
	w.closer = f
	return w, nil
}

// NewWriter wraps an io.Writer; Close does not close the underlying
// writer unless the Writer was obtained from Create.
func NewWriter(out io.Writer) *Writer {
	w := &Writer{w: out, paths: map[string]bool{}, groups: map[string]bool{}}
	w.write(magic)
	return w
}

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	n, err := w.w.Write(p)
	w.off += int64(n)
	w.err = err
}

// CreateGroup registers a group path (and its ancestors).
func (w *Writer) CreateGroup(path string) error {
	if w.closed {
		return fmt.Errorf("sdf: writer closed")
	}
	path = cleanPath(path)
	if path == "" {
		return fmt.Errorf("sdf: empty group path")
	}
	for p := path; p != ""; p = parentPath(p) {
		w.groups[p] = true
	}
	return nil
}

// WriteDataset appends a dataset. data must hold exactly
// product(dims) × dtype.Size() bytes; codecName selects the compression
// codec ("none", "gorilla", "delta", "rle", "flate").
func (w *Writer) WriteDataset(path string, dtype meta.Type, dims []int, data []byte, codecName string) error {
	if w.closed {
		return fmt.Errorf("sdf: writer closed")
	}
	path = cleanPath(path)
	if path == "" {
		return fmt.Errorf("sdf: empty dataset path")
	}
	if w.paths[path] {
		return fmt.Errorf("sdf: dataset %q already exists", path)
	}
	if !dtype.Valid() {
		return fmt.Errorf("sdf: invalid dtype %q", dtype)
	}
	elems := 1
	for _, d := range dims {
		if d <= 0 {
			return fmt.Errorf("sdf: non-positive dimension in %v", dims)
		}
		elems *= d
	}
	if want := elems * dtype.Size(); len(data) != want {
		return fmt.Errorf("sdf: dataset %q: %d bytes for dims %v of %s (want %d)",
			path, len(data), dims, dtype, want)
	}
	codec, err := compress.ByName(codecName)
	if err != nil {
		return err
	}
	enc, err := codec.Encode(data, dtype.Size())
	if err != nil {
		return fmt.Errorf("sdf: encoding %q: %w", path, err)
	}
	info := DatasetInfo{
		Path:    path,
		Type:    dtype,
		Dims:    append([]int(nil), dims...),
		Codec:   codec.Name(),
		RawSize: int64(len(data)),
		EncSize: int64(len(enc)),
		Offset:  w.off,
		CRC:     crc32.ChecksumIEEE(enc),
	}
	w.write(enc)
	if w.err != nil {
		return w.err
	}
	w.datasets = append(w.datasets, info)
	w.paths[path] = true
	if p := parentPath(path); p != "" {
		w.CreateGroup(p)
	}
	return nil
}

// SetAttrString attaches a string attribute to a path.
func (w *Writer) SetAttrString(path, key, v string) {
	w.attrs = append(w.attrs, attr{Path: cleanPath(path), Key: key, Kind: 's', Str: v})
}

// SetAttrInt attaches an integer attribute to a path.
func (w *Writer) SetAttrInt(path, key string, v int64) {
	w.attrs = append(w.attrs, attr{Path: cleanPath(path), Key: key, Kind: 'i', Int: v})
}

// SetAttrFloat attaches a float attribute to a path.
func (w *Writer) SetAttrFloat(path, key string, v float64) {
	w.attrs = append(w.attrs, attr{Path: cleanPath(path), Key: key, Kind: 'f', Float: v})
}

// BytesWritten returns the bytes emitted so far (payloads + header).
func (w *Writer) BytesWritten() int64 { return w.off }

// Close writes the index and trailer. The Writer is unusable afterwards.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	indexOff := w.off
	idx := w.encodeIndex()
	w.write(idx)
	var tail [20]byte
	binary.LittleEndian.PutUint64(tail[0:], uint64(indexOff))
	binary.LittleEndian.PutUint32(tail[8:], crc32.ChecksumIEEE(idx))
	copy(tail[12:], trailerMagic)
	w.write(tail[:])
	err := w.err
	if w.closer != nil {
		if cerr := w.closer.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

func (w *Writer) encodeIndex() []byte {
	var b builder
	b.u32(uint32(len(w.datasets)))
	for _, d := range w.datasets {
		b.str(d.Path)
		b.str(string(d.Type))
		b.u32(uint32(len(d.Dims)))
		for _, dim := range d.Dims {
			b.u64(uint64(dim))
		}
		b.str(d.Codec)
		b.u64(uint64(d.RawSize))
		b.u64(uint64(d.EncSize))
		b.u64(uint64(d.Offset))
		b.u32(d.CRC)
	}
	b.u32(uint32(len(w.attrs)))
	for _, a := range w.attrs {
		b.str(a.Path)
		b.str(a.Key)
		b.buf = append(b.buf, a.Kind)
		switch a.Kind {
		case 's':
			b.str(a.Str)
		case 'i':
			b.u64(uint64(a.Int))
		case 'f':
			b.u64(uint64(float64bits(a.Float)))
		}
	}
	groups := make([]string, 0, len(w.groups))
	for g := range w.groups {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	b.u32(uint32(len(groups)))
	for _, g := range groups {
		b.str(g)
	}
	return b.buf
}

type builder struct{ buf []byte }

func (b *builder) u32(v uint32) {
	var t [4]byte
	binary.LittleEndian.PutUint32(t[:], v)
	b.buf = append(b.buf, t[:]...)
}

func (b *builder) u64(v uint64) {
	var t [8]byte
	binary.LittleEndian.PutUint64(t[:], v)
	b.buf = append(b.buf, t[:]...)
}

func (b *builder) str(s string) {
	b.u32(uint32(len(s)))
	b.buf = append(b.buf, s...)
}

// cleanPath normalizes to slash-separated, no leading/trailing slash.
func cleanPath(p string) string {
	return strings.Trim(strings.ReplaceAll(p, "//", "/"), "/")
}

func parentPath(p string) string {
	i := strings.LastIndexByte(p, '/')
	if i < 0 {
		return ""
	}
	return p[:i]
}

func float64bits(f float64) uint64 {
	return binary.LittleEndian.Uint64(compress.Float64Bytes([]float64{f}))
}
