package sdf

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/compress"
	"repro/internal/meta"
)

func tempFile(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "test.sdf")
}

func TestWriteReadRoundTrip(t *testing.T) {
	path := tempFile(t)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	data := compress.Float64Bytes([]float64{1, 2, 3, 4, 5, 6})
	if err := w.WriteDataset("iter0000/theta/rank0000", meta.Float64, []int{2, 3}, data, "none"); err != nil {
		t.Fatal(err)
	}
	w.SetAttrString("iter0000/theta/rank0000", "unit", "K")
	w.SetAttrInt("iter0000", "iteration", 0)
	w.SetAttrFloat("iter0000/theta/rank0000", "dt", 0.5)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	d, ok := r.Dataset("iter0000/theta/rank0000")
	if !ok || d.Type != meta.Float64 || len(d.Dims) != 2 || d.Dims[0] != 2 || d.Dims[1] != 3 {
		t.Fatalf("dataset info = %+v ok=%v", d, ok)
	}
	if d.Elems() != 6 {
		t.Fatalf("elems = %d", d.Elems())
	}
	got, err := r.ReadFloat64s("iter0000/theta/rank0000")
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range []float64{1, 2, 3, 4, 5, 6} {
		if got[i] != v {
			t.Fatalf("data[%d] = %v", i, got[i])
		}
	}
	if u, ok := r.AttrString("iter0000/theta/rank0000", "unit"); !ok || u != "K" {
		t.Fatalf("unit attr = %q ok=%v", u, ok)
	}
	if it, ok := r.AttrInt("iter0000", "iteration"); !ok || it != 0 {
		t.Fatalf("iteration attr = %d ok=%v", it, ok)
	}
	if dt, ok := r.AttrFloat("iter0000/theta/rank0000", "dt"); !ok || dt != 0.5 {
		t.Fatalf("dt attr = %v ok=%v", dt, ok)
	}
}

func TestGroupsRegisteredWithAncestors(t *testing.T) {
	path := tempFile(t)
	w, _ := Create(path)
	if err := w.CreateGroup("a/b/c"); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 8)
	w.WriteDataset("x/y/ds", meta.Float64, []int{1}, data, "none")
	w.Close()
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	want := map[string]bool{"a": true, "a/b": true, "a/b/c": true, "x": true, "x/y": true}
	got := map[string]bool{}
	for _, g := range r.Groups() {
		got[g] = true
	}
	for g := range want {
		if !got[g] {
			t.Errorf("missing group %q (have %v)", g, r.Groups())
		}
	}
}

func TestAllCodecsRoundTripThroughFile(t *testing.T) {
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = 250 + 10*math.Sin(float64(i)/100)
	}
	data := compress.Float64Bytes(vals)
	for _, codec := range []string{"none", "gorilla", "flate", "rle"} {
		path := tempFile(t)
		w, _ := Create(path)
		if err := w.WriteDataset("v", meta.Float64, []int{4096}, data, codec); err != nil {
			t.Fatalf("%s: %v", codec, err)
		}
		w.Close()
		r, err := Open(path)
		if err != nil {
			t.Fatalf("%s: %v", codec, err)
		}
		got, err := r.ReadDataset("v")
		r.Close()
		if err != nil {
			t.Fatalf("%s: %v", codec, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%s: data mismatch", codec)
		}
	}
}

func TestWriterValidation(t *testing.T) {
	w, _ := Create(tempFile(t))
	defer w.Close()
	data := make([]byte, 16)
	if err := w.WriteDataset("", meta.Float64, []int{2}, data, "none"); err == nil {
		t.Error("empty path accepted")
	}
	if err := w.WriteDataset("v", meta.Type("bad"), []int{2}, data, "none"); err == nil {
		t.Error("bad dtype accepted")
	}
	if err := w.WriteDataset("v", meta.Float64, []int{3}, data, "none"); err == nil {
		t.Error("size mismatch accepted")
	}
	if err := w.WriteDataset("v", meta.Float64, []int{0}, nil, "none"); err == nil {
		t.Error("zero dim accepted")
	}
	if err := w.WriteDataset("v", meta.Float64, []int{2}, data, "bogus"); err == nil {
		t.Error("unknown codec accepted")
	}
	if err := w.WriteDataset("v", meta.Float64, []int{2}, data, "none"); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteDataset("v", meta.Float64, []int{2}, data, "none"); err == nil {
		t.Error("duplicate path accepted")
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage")
	if err := writeFile(path, []byte("this is not an SDF file at all......")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestOpenRejectsUnclosedFile(t *testing.T) {
	path := tempFile(t)
	w, _ := Create(path)
	w.WriteDataset("v", meta.Float64, []int{1}, make([]byte, 8), "none")
	// No Close: the trailer is missing.
	w.closer.Close()
	if _, err := Open(path); err == nil {
		t.Fatal("unclosed file accepted")
	}
}

func TestCorruptPayloadDetected(t *testing.T) {
	path := tempFile(t)
	w, _ := Create(path)
	w.WriteDataset("v", meta.Float64, []int{128}, make([]byte, 1024), "none")
	w.Close()
	raw, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(magic)+10] ^= 0xFF // flip a payload byte
	if err := writeFile(path, raw); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err) // index is intact
	}
	defer r.Close()
	if _, err := r.ReadDataset("v"); err == nil {
		t.Fatal("corrupt payload not detected")
	}
}

func TestDatasetsOrder(t *testing.T) {
	path := tempFile(t)
	w, _ := Create(path)
	for _, name := range []string{"c", "a", "b"} {
		w.WriteDataset(name, meta.Uint8, []int{4}, make([]byte, 4), "none")
	}
	w.Close()
	r, _ := Open(path)
	defer r.Close()
	ds := r.Datasets()
	if len(ds) != 3 || ds[0].Path != "c" || ds[1].Path != "a" || ds[2].Path != "b" {
		t.Fatalf("order = %+v", ds)
	}
}

func TestReadFloat64sTypeCheck(t *testing.T) {
	path := tempFile(t)
	w, _ := Create(path)
	w.WriteDataset("i", meta.Int32, []int{2}, make([]byte, 8), "none")
	w.Close()
	r, _ := Open(path)
	defer r.Close()
	if _, err := r.ReadFloat64s("i"); err == nil {
		t.Fatal("type mismatch not detected")
	}
	if _, err := r.ReadFloat64s("missing"); err == nil {
		t.Fatal("missing dataset not detected")
	}
}

// TestRoundTripProperty: arbitrary float64 datasets round-trip through an
// in-memory SDF file with every codec that accepts them.
func TestRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(vals []float64, pick uint8) bool {
		if len(vals) == 0 {
			vals = []float64{0}
		}
		codecs := []string{"none", "gorilla", "flate"}
		codec := codecs[int(pick)%len(codecs)]
		data := compress.Float64Bytes(vals)
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteDataset("v", meta.Float64, []int{len(vals)}, data, codec); err != nil {
			return false
		}
		if err := w.Close(); err != nil {
			return false
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
		if err != nil {
			return false
		}
		got, err := r.ReadDataset("v")
		return err == nil && bytes.Equal(got, data)
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteDatasetNone(b *testing.B) {
	data := make([]byte, 1<<20)
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.WriteDataset("v", meta.Uint8, []int{len(data)}, data, "none")
		w.Close()
	}
	b.SetBytes(1 << 20)
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func readFile(path string) ([]byte, error) {
	return os.ReadFile(path)
}

func TestMergeCombinesRankFiles(t *testing.T) {
	dir := t.TempDir()
	var inputs []string
	for rank := 0; rank < 3; rank++ {
		path := filepath.Join(dir, fmt.Sprintf("rank%d.sdf", rank))
		w, err := Create(path)
		if err != nil {
			t.Fatal(err)
		}
		vals := make([]float64, 16)
		for i := range vals {
			vals[i] = float64(rank*100 + i)
		}
		ds := fmt.Sprintf("theta/src%04d", rank)
		if err := w.WriteDataset(ds, meta.Float64, []int{16}, compress.Float64Bytes(vals), "none"); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		inputs = append(inputs, path)
	}
	out := filepath.Join(dir, "merged.sdf")
	if err := Merge(out, "gorilla", inputs...); err != nil {
		t.Fatal(err)
	}
	r, err := Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if len(r.Datasets()) != 3 {
		t.Fatalf("merged %d datasets, want 3", len(r.Datasets()))
	}
	vals, err := r.ReadFloat64s("theta/src0002")
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 200 || vals[15] != 215 {
		t.Fatalf("merged data wrong: %v", vals)
	}
	// Re-encoding changed the codec.
	if d, _ := r.Dataset("theta/src0002"); d.Codec != "gorilla" {
		t.Fatalf("codec after merge = %s", d.Codec)
	}
}

func TestMergeErrors(t *testing.T) {
	if err := Merge(filepath.Join(t.TempDir(), "o.sdf"), "none"); err == nil {
		t.Fatal("empty merge accepted")
	}
	if err := Merge(filepath.Join(t.TempDir(), "o.sdf"), "none", "/nonexistent.sdf"); err == nil {
		t.Fatal("missing input accepted")
	}
}
