package storage

import (
	"sync"

	"repro/internal/des"
	"repro/internal/pfs"
	"repro/internal/rng"
	"repro/internal/topology"
)

// PFS adapts the discrete-event Lustre model to the Backend interface.
// The simulated face delegates to pfs.FS; the real face (Put) has no
// storage behind it — a pure model — so it only accounts the object.
type PFS struct {
	fs *pfs.FS

	mu      sync.Mutex
	creates int
	objects int
	objByte int64
}

// NewPFS wraps a fresh pfs.FS over the given parameters.
func NewPFS(eng *des.Engine, params topology.PFSParams, r *rng.Stream) *PFS {
	return &PFS{fs: pfs.New(eng, params, r)}
}

// FS exposes the underlying model (diagnostics, pfs-specific tests).
func (b *PFS) FS() *pfs.FS { return b.fs }

// Name implements Backend.
func (b *PFS) Name() string { return string(KindPFS) }

// Targets implements Backend.
func (b *PFS) Targets() int { return b.fs.OSTCount() }

// BeginPhase implements Backend: fresh per-OST congestion draws.
func (b *PFS) BeginPhase() { b.fs.BeginPhase() }

// Create implements Backend.
func (b *PFS) Create(p *des.Proc) {
	b.mu.Lock()
	b.creates++
	b.mu.Unlock()
	b.fs.Create(p)
}

// Open implements Backend.
func (b *PFS) Open(p *des.Proc) { b.fs.Open(p) }

// Close implements Backend.
func (b *PFS) Close(p *des.Proc) { b.fs.Close(p) }

// Write implements Backend.
func (b *PFS) Write(p *des.Proc, target int, bytes float64, pat Pattern) {
	b.fs.Write(p, target%b.fs.OSTCount(), bytes, pfsPattern(pat))
}

// WriteChunk implements Backend.
func (b *PFS) WriteChunk(p *des.Proc, target int, bytes float64, pat Pattern) {
	b.fs.WriteChunk(p, target%b.fs.OSTCount(), bytes, pfsPattern(pat))
}

// WriteAsync implements Backend.
func (b *PFS) WriteAsync(target int, bytes float64, pat Pattern) *des.Future {
	return b.fs.WriteAsync(target%b.fs.OSTCount(), bytes, pfsPattern(pat))
}

// PlaceFile implements Backend (Lustre's randomized allocator).
func (b *PFS) PlaceFile(stripes int, r *rng.Stream) []int {
	return b.fs.PlaceFile(stripes, r)
}

// Put implements ObjectStore. The DES model stores no payloads, so the
// object is accounted and dropped.
func (b *PFS) Put(name string, data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.objects++
	b.objByte += int64(len(data))
	return nil
}

// Accounting implements Backend.
func (b *PFS) Accounting() Accounting {
	b.mu.Lock()
	defer b.mu.Unlock()
	return Accounting{
		BytesWritten: b.fs.TotalBytes(),
		IOBusyTime:   b.fs.IOBusyTime(),
		FilesCreated: b.creates,
		Objects:      b.objects,
		ObjectBytes:  b.objByte,
	}
}

func pfsPattern(p Pattern) pfs.Pattern {
	switch p {
	case SmallFile:
		return pfs.SmallFile
	case SharedFile:
		return pfs.SharedFile
	default:
		return pfs.BigSequential
	}
}
