package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/des"
	"repro/internal/pfs"
	"repro/internal/rng"
	"repro/internal/topology"
)

// PFS adapts the discrete-event Lustre model to the Backend interface.
// The simulated face delegates to pfs.FS; the real face has no storage
// behind it — a pure model — so Put only accounts the object and Get
// charges the read before reporting ErrNoPayload. Names are retained,
// so List works and Get can tell "never stored" from "not retained".
type PFS struct {
	fs *pfs.FS

	mu       sync.Mutex
	creates  int
	objSize  map[string]int64
	objByte  int64
	objReads int
	objRead  int64
}

// NewPFS wraps a fresh pfs.FS over the given parameters.
func NewPFS(eng *des.Engine, params topology.PFSParams, r *rng.Stream) *PFS {
	return &PFS{fs: pfs.New(eng, params, r), objSize: map[string]int64{}}
}

// FS exposes the underlying model (diagnostics, pfs-specific tests).
func (b *PFS) FS() *pfs.FS { return b.fs }

// SetBandwidthFactor forwards a mid-run platform shift — an absolute
// multiplier on nominal OST bandwidth — to the file-system model; the
// workload scenarios use it for their PFS bandwidth steps.
func (b *PFS) SetBandwidthFactor(factor float64) { b.fs.SetBandwidthFactor(factor) }

// Name implements Backend.
func (b *PFS) Name() string { return string(KindPFS) }

// Targets implements Backend.
func (b *PFS) Targets() int { return b.fs.OSTCount() }

// BeginPhase implements Backend: fresh per-OST congestion draws.
func (b *PFS) BeginPhase() { b.fs.BeginPhase() }

// Create implements Backend.
func (b *PFS) Create(p *des.Proc) {
	b.mu.Lock()
	b.creates++
	b.mu.Unlock()
	b.fs.Create(p)
}

// Open implements Backend.
func (b *PFS) Open(p *des.Proc) { b.fs.Open(p) }

// Close implements Backend.
func (b *PFS) Close(p *des.Proc) { b.fs.Close(p) }

// Write implements Backend.
func (b *PFS) Write(p *des.Proc, target int, bytes float64, pat Pattern) {
	b.fs.Write(p, target%b.fs.OSTCount(), bytes, pfsPattern(pat))
}

// WriteChunk implements Backend.
func (b *PFS) WriteChunk(p *des.Proc, target int, bytes float64, pat Pattern) {
	b.fs.WriteChunk(p, target%b.fs.OSTCount(), bytes, pfsPattern(pat))
}

// WriteAsync implements Backend.
func (b *PFS) WriteAsync(target int, bytes float64, pat Pattern) *des.Future {
	return b.fs.WriteAsync(target%b.fs.OSTCount(), bytes, pfsPattern(pat))
}

// Read implements Backend.
func (b *PFS) Read(p *des.Proc, target int, bytes float64, pat Pattern) {
	b.fs.Read(p, target%b.fs.OSTCount(), bytes, pfsPattern(pat))
}

// ReadAsync implements Backend.
func (b *PFS) ReadAsync(target int, bytes float64, pat Pattern) *des.Future {
	return b.fs.ReadAsync(target%b.fs.OSTCount(), bytes, pfsPattern(pat))
}

// PlaceFile implements Backend (Lustre's randomized allocator).
func (b *PFS) PlaceFile(stripes int, r *rng.Stream) []int {
	return b.fs.PlaceFile(stripes, r)
}

// Put implements ObjectStore. The DES model stores no payloads, so the
// object's name and size are accounted and the bytes dropped.
func (b *PFS) Put(name string, data []byte) error {
	return b.putSized(name, int64(len(data)))
}

// PutVec implements VecStore: the pure cost model never touches the
// payload, so a scatter-gather write is accounted from the segment
// lengths alone — the fully zero-copy case.
func (b *PFS) PutVec(name string, segs [][]byte) error {
	return b.putSized(name, int64(SegsLen(segs)))
}

func (b *PFS) putSized(name string, size int64) error {
	if name == "" {
		return fmt.Errorf("storage: empty object name")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if old, ok := b.objSize[name]; ok {
		b.objByte -= old
	}
	b.objSize[name] = size
	b.objByte += size
	return nil
}

// Delete implements ObjectDeleter: the accounting entry is dropped (no
// payload was ever retained).
func (b *PFS) Delete(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	size, ok := b.objSize[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	b.objByte -= size
	delete(b.objSize, name)
	return nil
}

// Get implements ObjectReader. The read is charged to the ledger at the
// object's recorded size, but the model retained no payload: a known
// name returns ErrNoPayload, an unknown one ErrNotFound. Virtual read
// *time* is charged through the simulated face (Read/ReadAsync), which
// is what the restart model in internal/iostrat drives.
func (b *PFS) Get(name string) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	size, ok := b.objSize[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	b.objReads++
	b.objRead += size
	return nil, fmt.Errorf("%w: %q", ErrNoPayload, name)
}

// List implements ObjectReader: recorded names with the prefix,
// ascending.
func (b *PFS) List(prefix string) ([]string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	names := make([]string, 0, len(b.objSize))
	for n := range b.objSize {
		if strings.HasPrefix(n, prefix) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Accounting implements Backend.
func (b *PFS) Accounting() Accounting {
	b.mu.Lock()
	defer b.mu.Unlock()
	return Accounting{
		BytesWritten:    b.fs.TotalBytes(),
		BytesRead:       b.fs.TotalBytesRead(),
		IOBusyTime:      b.fs.IOBusyTime(),
		FilesCreated:    b.creates,
		Objects:         len(b.objSize),
		ObjectBytes:     b.objByte,
		ObjectsRead:     b.objReads,
		ObjectReadBytes: b.objRead,
	}
}

func pfsPattern(p Pattern) pfs.Pattern {
	switch p {
	case SmallFile:
		return pfs.SmallFile
	case SharedFile:
		return pfs.SharedFile
	default:
		return pfs.BigSequential
	}
}
