package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"repro/internal/compress"
	"repro/internal/des"
)

// smoothFloats returns n smooth float64 values as bytes — the CM1-like
// payload Gorilla-family codecs are built for.
func smoothFloats(n int) []byte {
	out := make([]byte, n*8)
	for i := 0; i < n; i++ {
		v := 300.0 + 2*math.Sin(float64(i)/32.0)
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

// sparseMask returns n bytes of mostly zeros — RLE's home turf.
func sparseMask(n int) []byte {
	out := make([]byte, n)
	for i := 61; i < n; i += 127 {
		out[i] = 1
	}
	return out
}

// monotonicInts returns n int64 counters with small steps — delta's
// home turf.
func monotonicInts(n int) []byte {
	out := make([]byte, n*8)
	v := int64(0)
	for i := 0; i < n; i++ {
		v += int64(1 + i%17)
		binary.LittleEndian.PutUint64(out[i*8:], uint64(v))
	}
	return out
}

// incompressible returns n bytes with no structure any registered
// codec can exploit.
func incompressible(n int) []byte {
	out := make([]byte, n)
	x := uint32(2463534242)
	for i := range out {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		out[i] = byte(x)
	}
	return out
}

// TestCompressingGetEquality: on every backend, Get of an object
// stored with compression enabled returns the original bytes (the pfs
// model retains no payloads and must keep its documented ErrNoPayload
// contract instead).
func TestCompressingGetEquality(t *testing.T) {
	payloads := map[string][]byte{
		"floats-it000001": smoothFloats(4096),
		"mask-it000001":   sparseMask(32 << 10),
		"counts-it000001": monotonicInts(4096),
		"noise-it000001":  incompressible(4 << 10),
		"empty-it000001":  {},
	}
	for _, kind := range Kinds() {
		for _, codecName := range append(compress.Names(), AdaptiveCodec) {
			t.Run(string(kind)+"/"+codecName, func(t *testing.T) {
				inner := newBackend(t, kind, des.NewEngine())
				b := NewCompressing(inner, CompressionOptions{Codec: codecName})
				for name, raw := range payloads {
					if err := b.Put(name, raw); err != nil {
						t.Fatalf("Put(%s): %v", name, err)
					}
					got, err := b.Get(name)
					if kind == KindPFS {
						if !errors.Is(err, ErrNoPayload) {
							t.Fatalf("pfs Get(%s) must report ErrNoPayload, got %v", name, err)
						}
						continue
					}
					if err != nil {
						t.Fatalf("Get(%s): %v", name, err)
					}
					if !bytes.Equal(got, raw) {
						t.Fatalf("Get(%s) differs: %d vs %d bytes", name, len(got), len(raw))
					}
				}
				if _, err := b.Get("never-stored"); !errors.Is(err, ErrNotFound) {
					t.Fatalf("missing object: %v, want ErrNotFound", err)
				}
				acc := b.Accounting()
				if acc.ObjectsCompressed != len(payloads) {
					t.Fatalf("ObjectsCompressed = %d, want %d", acc.ObjectsCompressed, len(payloads))
				}
				if acc.PerCodec == nil {
					t.Fatal("PerCodec ledger missing")
				}
			})
		}
	}
}

// TestCompressingStoredFramed: what lands on the inner backend is the
// framed encoding, and the reported codec info describes it.
func TestCompressingStoredFramed(t *testing.T) {
	inner := NewMemory(nil, 4, 1e8)
	b := NewCompressing(inner, CompressionOptions{Codec: "gorilla"})
	raw := smoothFloats(8192)
	if err := b.Put("theta-it000004", raw); err != nil {
		t.Fatal(err)
	}
	stored, err := inner.Get("theta-it000004")
	if err != nil {
		t.Fatal(err)
	}
	if !IsFramed(stored) {
		t.Fatal("inner object is not framed")
	}
	h, _, err := ParseFrameHeader(stored)
	if err != nil {
		t.Fatal(err)
	}
	if h.Codec != "gorilla" || h.RawSize != len(raw) {
		t.Fatalf("frame header %+v", h)
	}
	if len(stored) >= len(raw) {
		t.Fatalf("gorilla on smooth floats did not shrink: %d -> %d", len(raw), len(stored))
	}
	info, ok := b.ObjectCodec("theta-it000004")
	if !ok || info.Codec != "gorilla" || info.RawBytes != int64(len(raw)) ||
		info.EncodedBytes != int64(h.EncodedSize) {
		t.Fatalf("ObjectCodec = %+v, %v", info, ok)
	}
}

// TestCompressingAdaptiveSelection: the selector picks the right tool
// per dataset, caches the choice per dataset key, and re-uses it for
// later iterations of the same variable.
func TestCompressingAdaptiveSelection(t *testing.T) {
	b := NewCompressing(NewMemory(nil, 4, 1e8), CompressionOptions{})
	sets := map[string]func(int) []byte{
		"temp": func(int) []byte { return smoothFloats(8192) },
		"mask": func(int) []byte { return sparseMask(64 << 10) },
	}
	for it := 0; it < 3; it++ {
		for name, gen := range sets {
			objName := name + "-it00000" + string(rune('0'+it))
			if err := b.Put(objName, gen(it)); err != nil {
				t.Fatal(err)
			}
		}
	}
	tempInfo, _ := b.ObjectCodec("temp-it000000")
	maskInfo, _ := b.ObjectCodec("mask-it000000")
	if tempInfo.Codec == maskInfo.Codec {
		t.Fatalf("selector chose %q for both smooth floats and a sparse mask", tempInfo.Codec)
	}
	if maskInfo.Codec != "rle" {
		t.Fatalf("sparse mask chose %q, want rle", maskInfo.Codec)
	}
	for it := 1; it < 3; it++ {
		info, ok := b.ObjectCodec("temp-it00000" + string(rune('0'+it)))
		if !ok || info.Codec != tempInfo.Codec {
			t.Fatalf("iteration %d of temp re-chose %q, want cached %q", it, info.Codec, tempInfo.Codec)
		}
	}
}

// TestCompressingIncompressibleFallsBack: data no codec helps with is
// stored under a "none" frame, costing only the header.
func TestCompressingIncompressibleFallsBack(t *testing.T) {
	inner := NewMemory(nil, 4, 1e8)
	b := NewCompressing(inner, CompressionOptions{Codec: "flate"})
	raw := incompressible(16 << 10)
	if err := b.Put("noise-it000000", raw); err != nil {
		t.Fatal(err)
	}
	info, ok := b.ObjectCodec("noise-it000000")
	if !ok || info.Codec != "none" {
		t.Fatalf("incompressible object stored as %+v, want none fallback", info)
	}
	stored, err := inner.Get("noise-it000000")
	if err != nil {
		t.Fatal(err)
	}
	if len(stored) > len(raw)+frameHeaderLen("none") {
		t.Fatalf("fallback cost %d bytes over raw, want only the header", len(stored)-len(raw))
	}
}

// TestCompressingPassThroughReads: a store written without the
// pipeline reads back unchanged through it, so one reader handles old
// and new stores.
func TestCompressingPassThroughReads(t *testing.T) {
	inner := NewMemory(nil, 4, 1e8)
	plain := []byte("written before compression existed")
	if err := inner.Put("legacy", plain); err != nil {
		t.Fatal(err)
	}
	b := NewCompressing(inner, CompressionOptions{})
	got, err := b.Get("legacy")
	if err != nil || !bytes.Equal(got, plain) {
		t.Fatalf("pass-through read failed: %q, %v", got, err)
	}
}

// TestCompressingCorruptObject: a framed object damaged at rest is
// reported as corrupt on Get, the read-side mirror of the manifest
// error contract.
func TestCompressingCorruptObject(t *testing.T) {
	inner := NewMemory(nil, 4, 1e8)
	b := NewCompressing(inner, CompressionOptions{Codec: "flate"})
	if err := b.Put("obj-it000000", smoothFloats(1024)); err != nil {
		t.Fatal(err)
	}
	stored, err := inner.Get("obj-it000000")
	if err != nil {
		t.Fatal(err)
	}
	stored[len(stored)-1] ^= 0xff
	if err := inner.Put("obj-it000000", stored); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get("obj-it000000"); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("corrupt object Get = %v, want ErrCorruptFrame", err)
	}
}

// TestCompressingUnknownCodecConfig: a bad fixed codec surfaces the
// shared sentinel on the first Put (and from ValidateCodecName).
func TestCompressingUnknownCodecConfig(t *testing.T) {
	b := NewCompressing(NewMemory(nil, 4, 1e8), CompressionOptions{Codec: "bogus"})
	if err := b.Put("x", []byte("y")); !errors.Is(err, compress.ErrUnknownCodec) {
		t.Fatalf("Put with bogus codec = %v, want ErrUnknownCodec", err)
	}
	if err := ValidateCodecName("bogus"); !errors.Is(err, compress.ErrUnknownCodec) {
		t.Fatalf("ValidateCodecName(bogus) = %v", err)
	}
	if err := ValidateCodecName(AdaptiveCodec); err != nil {
		t.Fatalf("ValidateCodecName(adaptive) = %v", err)
	}
}

// TestCompressingDESFace: on the simulated face, Write charges encode
// CPU on the dedicated core, moves only the encoded volume to the
// inner backend, and the ledger records the trade; Read mirrors it.
// Two identical runs are bit-identical.
func TestCompressingDESFace(t *testing.T) {
	run := func() (float64, Accounting) {
		eng := des.NewEngine()
		inner := NewMemory(eng, 4, 1e8)
		b := NewCompressing(inner, CompressionOptions{Codec: "gorilla", Engine: eng})
		eng.Spawn("dedicated", func(p *des.Proc) {
			b.BeginPhase()
			b.Create(p)
			b.Write(p, 0, 60e6, BigSequential)
			b.Close(p)
			p.Await(b.WriteAsync(1, 60e6, BigSequential))
			b.Read(p, 0, 30e6, BigSequential)
			p.Await(b.ReadAsync(1, 30e6, BigSequential))
		})
		end := eng.Run()
		return end, b.Accounting()
	}
	end, acc := run()
	ratio := defaultProfiles["gorilla"].AssumedRatio
	wantWritten := 2 * 60e6 / ratio
	if math.Abs(acc.BytesWritten-wantWritten) > 1 {
		t.Errorf("BytesWritten = %v, want %v (encoded volume only)", acc.BytesWritten, wantWritten)
	}
	wantRead := 2 * 30e6 / ratio
	if math.Abs(acc.BytesRead-wantRead) > 1 {
		t.Errorf("BytesRead = %v, want %v", acc.BytesRead, wantRead)
	}
	wantSaved := 2*60e6 - wantWritten
	if math.Abs(acc.BytesSaved-wantSaved) > 1 {
		t.Errorf("BytesSaved = %v, want %v", acc.BytesSaved, wantSaved)
	}
	wantEnc := 2 * 60e6 / defaultProfiles["gorilla"].EncodeRate
	if math.Abs(acc.EncodeTime-wantEnc) > 1e-9 {
		t.Errorf("EncodeTime = %v, want %v", acc.EncodeTime, wantEnc)
	}
	if acc.DecodeTime <= 0 {
		t.Error("DecodeTime not charged")
	}
	if end <= 0 {
		t.Error("no virtual time elapsed")
	}
	// The encode wait must actually appear in the schedule: a plain
	// run writing the encoded volume directly finishes faster.
	engPlain := des.NewEngine()
	plain := NewMemory(engPlain, 4, 1e8)
	engPlain.Spawn("dedicated", func(p *des.Proc) {
		plain.BeginPhase()
		plain.Create(p)
		plain.Write(p, 0, 60e6/ratio, BigSequential)
		plain.Close(p)
		p.Await(plain.WriteAsync(1, 60e6/ratio, BigSequential))
		plain.Read(p, 0, 30e6/ratio, BigSequential)
		p.Await(plain.ReadAsync(1, 30e6/ratio, BigSequential))
	})
	plainEnd := engPlain.Run()
	if end <= plainEnd {
		t.Errorf("codec CPU not visible in the schedule: %v <= %v", end, plainEnd)
	}
	end2, acc2 := run()
	if end != end2 || acc.BytesWritten != acc2.BytesWritten || acc.EncodeTime != acc2.EncodeTime {
		t.Errorf("compressing DES face not deterministic")
	}
}

// TestCompressingName tags the inner backend name with the codec mode.
func TestCompressingName(t *testing.T) {
	b := NewCompressing(NewMemory(nil, 1, 1e8), CompressionOptions{Codec: "rle"})
	if b.Name() != "memory+rle" {
		t.Fatalf("Name = %q", b.Name())
	}
	if b.Inner().Name() != "memory" {
		t.Fatalf("Inner().Name = %q", b.Inner().Name())
	}
}

// TestCompressingVaryingSizesSameDataset: a cached per-dataset choice
// must never make a later Put of the same dataset fail — a partial
// batch after a failure shrinks the object to a length the cached
// element width may not divide.
func TestCompressingVaryingSizesSameDataset(t *testing.T) {
	b := NewCompressing(NewMemory(nil, 4, 1e8), CompressionOptions{})
	full := smoothFloats(4096) // aligned: caches an 8-byte-element codec
	if err := b.Put("job-root000-it000000", full); err != nil {
		t.Fatal(err)
	}
	info, _ := b.ObjectCodec("job-root000-it000000")
	if info.Codec == "none" {
		t.Fatalf("smooth floats chose none; test needs an element-structured choice")
	}
	short := full[:1021] // same dataset key, unaligned length
	if err := b.Put("job-root000-it000001", short); err != nil {
		t.Fatalf("unaligned later object of the same dataset failed: %v", err)
	}
	got, err := b.Get("job-root000-it000001")
	if err != nil || !bytes.Equal(got, short) {
		t.Fatalf("unaligned object round trip: %v", err)
	}
}

// TestEncodeFrameRejectsOversize: the header's raw-size field is
// 32-bit; the limit must be enforced at encode time, not discovered as
// corruption at decode time. (Allocating 4 GiB in a unit test is not
// on — the guard is checked through the element-size limit plus a
// direct length probe via the exported error path.)
func TestEncodeFrameRejectsOversize(t *testing.T) {
	if _, err := EncodeFrame("none", []byte("x"), maxFrameElemSize+1); err == nil {
		t.Fatal("element size beyond the frame limit must be rejected")
	}
}
