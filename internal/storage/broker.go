package storage

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/des"
)

// TokenPolicy names a broker arbitration policy (§IV.D "a better I/O
// scheduling schema", extended across tree roots).
type TokenPolicy string

const (
	// PolicyPerTarget grants at most one token per storage target at a
	// time, FIFO within the whole request queue: a writer holds every
	// OST its stream touches exclusively.
	PolicyPerTarget TokenPolicy = "per-target"
	// PolicyGlobal bounds the number of concurrently granted writers to
	// MaxConcurrent, regardless of target, FIFO.
	PolicyGlobal TokenPolicy = "global"
	// PolicyDeadline is per-target exclusivity with earliest-deadline-
	// first ordering: when several writers wait for overlapping targets,
	// the one whose iteration deadline is nearest is granted first (the
	// §IV.C spare-time schedule — a root that is behind must not starve
	// behind a root that is ahead). Requests with a higher Priority are
	// ordered ahead of lower-priority ones regardless of deadline — the
	// service's priority arbitration between tenants; leaving Priority 0
	// everywhere keeps the pure-EDF behaviour.
	PolicyDeadline TokenPolicy = "deadline"
	// PolicyFairShare is per-target exclusivity ordered by accumulated
	// granted bytes per tenant, least served first (weighted by each
	// request's Weight): when several tenants contend for the same OSTs,
	// the one that has moved the least data so far goes first, so a
	// chatty tenant cannot starve a quiet one. Ties fall back to FIFO.
	PolicyFairShare TokenPolicy = "fair-share"
)

// TokenRequest asks a broker for the right to write one stream.
type TokenRequest struct {
	// Holder identifies the writer (tree-root node id). ReleaseHolder
	// frees everything a holder owns when its node dies. Use -1 for an
	// anonymous writer.
	Holder int
	// Targets are the storage targets (OSTs) the stream will touch. The
	// grant is atomic: all targets, or wait. Under PolicyGlobal the
	// request consumes one concurrency slot whatever its targets.
	Targets []int
	// Deadline orders waiters under PolicyDeadline (lower = more
	// urgent); ignored by the FIFO policies.
	Deadline float64
	// Bytes is the payload the grant covers: accounting under most
	// policies, and the fair-share currency under PolicyFairShare.
	Bytes float64
	// Tenant groups holders for cross-run accounting and fair-share
	// arbitration: every run admitted by a cluster.Service tags its
	// requests with its tenant id. 0 is the untenanted default.
	Tenant int
	// Priority orders waiters under PolicyDeadline before the deadline
	// comparison (higher wins). 0 everywhere keeps pure EDF.
	Priority int
	// Weight scales the tenant's fair share under PolicyFairShare (a
	// weight-2 tenant may move twice the bytes of a weight-1 tenant
	// before queueing behind it). 0 means 1.
	Weight float64
}

// TokenGrant is the outcome of an acquire: the release handle plus what
// the wait cost.
type TokenGrant struct {
	// Wait is how long the requester waited for the grant — virtual
	// seconds on the DES face, wall-clock seconds on the real face.
	Wait float64
	// Contended reports that the grant had to queue behind other
	// writers (Wait may still be ~0 on the real face).
	Contended bool
	// Denied reports that the request was canceled by ReleaseHolder
	// (the holder's node died while waiting): no token is held and
	// Release is a no-op.
	Denied bool

	release func()
}

// Release returns the granted tokens. It is idempotent and safe on a
// denied grant.
func (g *TokenGrant) Release() {
	if g.release != nil {
		r := g.release
		g.release = nil
		r()
	}
}

// BrokerStats is the broker's contention ledger.
type BrokerStats struct {
	// Grants counts successful acquisitions; ContendedGrants the subset
	// that had to wait behind another writer.
	Grants          int
	ContendedGrants int
	// WaitTime is the total time writers spent waiting for a token
	// (virtual seconds on the DES face, wall seconds on the real face).
	WaitTime float64
	// GrantsByTarget counts grants per storage target.
	GrantsByTarget map[int]int
	// GrantsByHolder counts grants per holder, so a run sharing the
	// broker with other tenants can recover its own grant count.
	GrantsByHolder map[int]int
	// BytesByTenant is the payload volume granted per tenant — the
	// fair-share ledger, and the service's per-tenant bandwidth
	// accounting.
	BytesByTenant map[int]float64
	// WaitByHolder splits WaitTime per holder (tree root).
	WaitByHolder map[int]float64
	// ContendedByHolder splits ContendedGrants per holder.
	ContendedByHolder map[int]int
	// CanceledRequests counts queued requests canceled by
	// ReleaseHolder; HolderReleases counts held tokens freed by it.
	CanceledRequests int
	HolderReleases   int
	// MaxQueueLen is the deepest the wait queue ever got.
	MaxQueueLen int
}

// TokenBroker arbitrates write tokens across every tree root of a
// cluster run. One broker serves one run; all roots share it, which is
// what makes the schedule cluster-wide rather than per-backend.
//
// It has two faces, mirroring storage.Backend: AcquireSim blocks a DES
// process in virtual time (the iostrat strategies), Acquire blocks a
// goroutine in wall time (the runtime cluster layer). A single broker
// instance serves one face per run.
type TokenBroker interface {
	// AcquireSim blocks p until the request is granted (DES face).
	AcquireSim(p *des.Proc, req TokenRequest) TokenGrant
	// Acquire blocks the calling goroutine until the request is granted
	// or denied (real face).
	Acquire(req TokenRequest) TokenGrant
	// ReleaseHolder frees every token held by holder and cancels its
	// queued requests — the failure path when a node dies mid-write. It
	// returns the number of tokens freed plus requests canceled.
	ReleaseHolder(holder int) int
	// Outstanding returns the number of currently held target tokens
	// (or global slots) — 0 means every writer released cleanly.
	Outstanding() int
	// Stats returns a snapshot of the contention ledger.
	Stats() BrokerStats
}

// BrokerOptions parameterize NewBroker.
type BrokerOptions struct {
	// Policy selects the arbitration discipline (default PolicyPerTarget).
	Policy TokenPolicy
	// Targets is the size of the target space; request targets are taken
	// modulo it (default 1).
	Targets int
	// MaxConcurrent bounds PolicyGlobal grants (default Targets).
	MaxConcurrent int
	// Engine, when non-nil, binds the broker to a DES run: waits are
	// measured on the virtual clock and AcquireSim is usable. A nil
	// engine gives the wall-clock real face.
	Engine *des.Engine
}

// brokerWaiter is one queued request with its wake mechanism.
type brokerWaiter struct {
	req     TokenRequest
	targets []int // resolved (mod Targets, deduplicated, sorted)
	seq     int   // arrival order, the FIFO key
	enq     float64
	enqWall time.Time
	denied  bool
	granted bool
	fut     *des.Future   // DES face
	ch      chan struct{} // real face
}

// Broker is the in-process TokenBroker implementation.
type Broker struct {
	mu      sync.Mutex
	opts    BrokerOptions
	held    map[int]int // target → holder (the exclusive policies)
	inUse   int         // granted slots (PolicyGlobal)
	slotsBy map[int]int // holder → held slots (PolicyGlobal)
	queue   []*brokerWaiter
	seq     int
	stats   BrokerStats
	// servedByTenant is the weighted fair-share ledger: granted bytes
	// divided by request weight, per tenant (PolicyFairShare's sort key).
	servedByTenant map[int]float64
}

// NewBroker builds an in-process broker. See BrokerOptions for the
// defaults.
func NewBroker(opts BrokerOptions) *Broker {
	if opts.Policy == "" {
		opts.Policy = PolicyPerTarget
	}
	if opts.Targets <= 0 {
		opts.Targets = 1
	}
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = opts.Targets
	}
	return &Broker{
		opts:           opts,
		held:           map[int]int{},
		slotsBy:        map[int]int{},
		servedByTenant: map[int]float64{},
	}
}

// Policy returns the broker's arbitration policy.
func (b *Broker) Policy() TokenPolicy { return b.opts.Policy }

// Targets returns the size of the broker's target space.
func (b *Broker) Targets() int { return b.opts.Targets }

// now returns the broker clock: virtual when bound to an engine.
func (b *Broker) now() float64 {
	if b.opts.Engine != nil {
		return b.opts.Engine.Now()
	}
	return 0 // real face measures with enqWall instead
}

// resolve normalizes a request's targets: modulo the target space,
// deduplicated, sorted. A nil/empty list means one unspecified slot
// (target 0 under the exclusive policies).
func (b *Broker) resolve(targets []int) []int {
	return resolveTargets(targets, b.opts.Targets)
}

// resolveTargets is resolve's standalone form, shared with the sharded
// broker (which must route by resolved target id before any shard's
// lock is taken).
func resolveTargets(targets []int, space int) []int {
	if len(targets) == 0 {
		return []int{0}
	}
	seen := map[int]bool{}
	out := make([]int, 0, len(targets))
	for _, t := range targets {
		t %= space
		if t < 0 {
			t += space
		}
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	sort.Ints(out)
	return out
}

// grantableLocked reports whether w's tokens are all free, ignoring
// targets already spoken for by more urgent waiters (claimed).
func (b *Broker) grantableLocked(w *brokerWaiter, claimed map[int]bool) bool {
	if b.opts.Policy == PolicyGlobal {
		return b.inUse < b.opts.MaxConcurrent
	}
	for _, t := range w.targets {
		if _, busy := b.held[t]; busy || claimed[t] {
			return false
		}
	}
	return true
}

// takeLocked marks w's tokens held.
func (b *Broker) takeLocked(w *brokerWaiter) {
	if b.opts.Policy == PolicyGlobal {
		b.inUse++
		b.slotsBy[w.req.Holder]++
	} else {
		for _, t := range w.targets {
			b.held[t] = w.req.Holder
		}
	}
	b.stats.Grants++
	if b.stats.GrantsByTarget == nil {
		b.stats.GrantsByTarget = map[int]int{}
	}
	for _, t := range w.targets {
		b.stats.GrantsByTarget[t]++
	}
	if b.stats.GrantsByHolder == nil {
		b.stats.GrantsByHolder = map[int]int{}
	}
	b.stats.GrantsByHolder[w.req.Holder]++
	if b.stats.BytesByTenant == nil {
		b.stats.BytesByTenant = map[int]float64{}
	}
	b.stats.BytesByTenant[w.req.Tenant] += w.req.Bytes
	b.servedByTenant[w.req.Tenant] += w.req.Bytes / reqWeight(w.req)
}

// reqWeight returns a request's fair-share weight (default 1).
func reqWeight(req TokenRequest) float64 {
	if req.Weight > 0 {
		return req.Weight
	}
	return 1
}

// order returns the queue scan order under the policy: arrival order
// for the FIFO policies, priority then earliest deadline first (arrival
// as the tie break) for PolicyDeadline, and least-served tenant first
// for PolicyFairShare.
func (b *Broker) order() []*brokerWaiter {
	scan := append([]*brokerWaiter(nil), b.queue...)
	switch b.opts.Policy {
	case PolicyDeadline:
		sort.SliceStable(scan, func(i, j int) bool {
			if scan[i].req.Priority != scan[j].req.Priority {
				return scan[i].req.Priority > scan[j].req.Priority
			}
			if scan[i].req.Deadline != scan[j].req.Deadline {
				return scan[i].req.Deadline < scan[j].req.Deadline
			}
			return scan[i].seq < scan[j].seq
		})
	case PolicyFairShare:
		sort.SliceStable(scan, func(i, j int) bool {
			si := b.servedByTenant[scan[i].req.Tenant]
			sj := b.servedByTenant[scan[j].req.Tenant]
			if si != sj {
				return si < sj
			}
			return scan[i].seq < scan[j].seq
		})
	}
	return scan
}

// dispatchLocked grants every queued request that can run, in policy
// order. An ungranted request reserves its targets so later arrivals
// cannot starve it (work is left on the table instead).
func (b *Broker) dispatchLocked() {
	claimed := map[int]bool{}
	var rest []*brokerWaiter
	granted := map[*brokerWaiter]bool{}
	for _, w := range b.order() {
		if b.grantableLocked(w, claimed) {
			b.takeLocked(w)
			granted[w] = true
			b.wakeLocked(w, false)
			continue
		}
		for _, t := range w.targets {
			claimed[t] = true
		}
	}
	for _, w := range b.queue {
		if !granted[w] {
			rest = append(rest, w)
		}
	}
	b.queue = rest
}

// wakeLocked completes a waiter's grant (or denial) and accounts the
// wait it paid.
func (b *Broker) wakeLocked(w *brokerWaiter, denied bool) {
	w.denied = denied
	w.granted = !denied
	var wait float64
	if b.opts.Engine != nil {
		wait = b.now() - w.enq
	} else {
		wait = time.Since(w.enqWall).Seconds()
	}
	if !denied {
		b.accountWaitLocked(w.req.Holder, wait, true)
	}
	if w.fut != nil {
		w.fut.Complete()
	}
	if w.ch != nil {
		close(w.ch)
	}
}

// accountWaitLocked charges a contended grant's wait to the ledger.
func (b *Broker) accountWaitLocked(holder int, wait float64, contended bool) {
	if !contended {
		return
	}
	b.stats.ContendedGrants++
	b.stats.WaitTime += wait
	if b.stats.WaitByHolder == nil {
		b.stats.WaitByHolder = map[int]float64{}
	}
	b.stats.WaitByHolder[holder] += wait
	if b.stats.ContendedByHolder == nil {
		b.stats.ContendedByHolder = map[int]int{}
	}
	b.stats.ContendedByHolder[holder]++
}

// releaseFor builds the release closure of a granted request.
func (b *Broker) releaseFor(w *brokerWaiter) func() {
	return func() {
		b.mu.Lock()
		if b.opts.Policy == PolicyGlobal {
			// A holder whose slots were already reclaimed by
			// ReleaseHolder must not free someone else's slot.
			if b.slotsBy[w.req.Holder] > 0 {
				b.slotsBy[w.req.Holder]--
				if b.inUse > 0 {
					b.inUse--
				}
			}
		} else {
			for _, t := range w.targets {
				if b.held[t] == w.req.Holder {
					delete(b.held, t)
				}
			}
		}
		b.dispatchLocked()
		b.mu.Unlock()
	}
}

// enqueue registers a request; it reports whether the grant was
// immediate (no waiting needed).
func (b *Broker) enqueue(w *brokerWaiter) (immediate bool) {
	w.targets = b.resolve(w.req.Targets)
	b.seq++
	w.seq = b.seq
	w.enq = b.now()
	w.enqWall = time.Now()
	// An immediate grant must still respect queued waiters: overtaking
	// the queue would starve wide (multi-target) requests forever.
	claimed := map[int]bool{}
	for _, q := range b.order() {
		for _, t := range q.targets {
			claimed[t] = true
		}
	}
	if (b.opts.Policy == PolicyGlobal && len(b.queue) == 0 && b.grantableLocked(w, nil)) ||
		(b.opts.Policy != PolicyGlobal && b.grantableLocked(w, claimed)) {
		b.takeLocked(w)
		w.granted = true
		return true
	}
	b.queue = append(b.queue, w)
	if len(b.queue) > b.stats.MaxQueueLen {
		b.stats.MaxQueueLen = len(b.queue)
	}
	return false
}

// AcquireSim implements TokenBroker (DES face): the wait parks the
// process on a future, so contention costs virtual time exactly where
// the modeled dedicated core would stall.
func (b *Broker) AcquireSim(p *des.Proc, req TokenRequest) TokenGrant {
	if b.opts.Engine == nil {
		panic("storage: AcquireSim on a broker with no engine")
	}
	b.mu.Lock()
	w := &brokerWaiter{req: req}
	if b.enqueue(w) {
		g := TokenGrant{release: b.releaseFor(w)}
		b.mu.Unlock()
		return g
	}
	w.fut = b.opts.Engine.NewFuture()
	b.mu.Unlock()
	p.Await(w.fut)
	b.mu.Lock()
	defer b.mu.Unlock()
	if w.denied {
		return TokenGrant{Denied: true, Wait: b.now() - w.enq}
	}
	return TokenGrant{
		Wait:      b.now() - w.enq,
		Contended: true,
		release:   b.releaseFor(w),
	}
}

// Acquire implements TokenBroker (real face): the wait blocks the
// calling goroutine.
func (b *Broker) Acquire(req TokenRequest) TokenGrant {
	b.mu.Lock()
	w := &brokerWaiter{req: req, ch: make(chan struct{})}
	if b.enqueue(w) {
		g := TokenGrant{release: b.releaseFor(w)}
		b.mu.Unlock()
		return g
	}
	b.mu.Unlock()
	<-w.ch
	b.mu.Lock()
	defer b.mu.Unlock()
	wait := time.Since(w.enqWall).Seconds()
	if w.denied {
		return TokenGrant{Denied: true, Wait: wait}
	}
	return TokenGrant{Wait: wait, Contended: true, release: b.releaseFor(w)}
}

// ReleaseHolder implements TokenBroker: frees held tokens and cancels
// queued requests of a dead holder, then re-dispatches — the token a
// dead root held must not stay stranded for the rest of the run.
func (b *Broker) ReleaseHolder(holder int) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	freed := 0
	if b.opts.Policy == PolicyGlobal {
		for b.slotsBy[holder] > 0 && b.inUse > 0 {
			b.slotsBy[holder]--
			b.inUse--
			freed++
		}
		delete(b.slotsBy, holder)
	} else {
		for t, h := range b.held {
			if h == holder {
				delete(b.held, t)
				freed++
			}
		}
	}
	b.stats.HolderReleases += freed
	var rest []*brokerWaiter
	for _, w := range b.queue {
		if w.req.Holder == holder {
			b.stats.CanceledRequests++
			freed++
			b.wakeLocked(w, true)
			continue
		}
		rest = append(rest, w)
	}
	b.queue = rest
	b.dispatchLocked()
	return freed
}

// Outstanding implements TokenBroker.
func (b *Broker) Outstanding() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.opts.Policy == PolicyGlobal {
		return b.inUse
	}
	return len(b.held)
}

// QueueLen returns the number of waiting requests (diagnostics).
func (b *Broker) QueueLen() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.queue)
}

// Stats implements TokenBroker.
func (b *Broker) Stats() BrokerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.stats
	s.GrantsByTarget = copyIntMap(b.stats.GrantsByTarget)
	s.GrantsByHolder = copyIntMap(b.stats.GrantsByHolder)
	s.BytesByTenant = copyFloatMap(b.stats.BytesByTenant)
	s.WaitByHolder = copyFloatMap(b.stats.WaitByHolder)
	s.ContendedByHolder = copyIntMap(b.stats.ContendedByHolder)
	return s
}

func copyIntMap(m map[int]int) map[int]int {
	if m == nil {
		return nil
	}
	c := make(map[int]int, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func copyFloatMap(m map[int]float64) map[int]float64 {
	if m == nil {
		return nil
	}
	c := make(map[int]float64, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// ValidateTokenPolicy rejects unknown policy names before a run starts.
func ValidateTokenPolicy(p TokenPolicy) error {
	switch p {
	case PolicyPerTarget, PolicyGlobal, PolicyDeadline, PolicyFairShare:
		return nil
	default:
		return fmt.Errorf("storage: unknown token policy %q", p)
	}
}
