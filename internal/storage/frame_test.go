package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"repro/internal/compress"
)

// framePayload builds a deterministic payload of n bytes whose length
// is a multiple of every element size under test and whose content is
// structured enough that every codec exercises its real encode path.
func framePayload(n int) []byte {
	out := make([]byte, n)
	for i := 0; i+8 <= n; i += 8 {
		v := 100.0 + math.Sin(float64(i)/64.0)
		binary.LittleEndian.PutUint64(out[i:], math.Float64bits(v))
	}
	return out
}

// TestFrameRoundTrip: every codec × element size × payload shape must
// survive encode-frame-decode byte-for-byte, and the parsed header
// must describe the object truthfully.
func TestFrameRoundTrip(t *testing.T) {
	payloads := map[string][]byte{
		"empty":   {},
		"small":   framePayload(64),
		"typical": framePayload(64 << 10),
		"runs":    bytes.Repeat([]byte{0, 0, 0, 7}, 4096),
	}
	for _, codec := range compress.Names() {
		for _, elem := range []int{1, 4, 8} {
			if codec == "delta" && elem != 8 {
				continue // delta is 8-byte only
			}
			if codec == "gorilla" && elem == 1 {
				continue // gorilla is 4/8-byte only
			}
			for label, raw := range payloads {
				obj, err := EncodeFrame(codec, raw, elem)
				if err != nil {
					t.Fatalf("%s/%d/%s: EncodeFrame: %v", codec, elem, label, err)
				}
				if !IsFramed(obj) {
					t.Fatalf("%s/%d/%s: encoded object not recognized as framed", codec, elem, label)
				}
				h, enc, err := ParseFrameHeader(obj)
				if err != nil {
					t.Fatalf("%s/%d/%s: ParseFrameHeader: %v", codec, elem, label, err)
				}
				if h.Codec != codec || h.RawSize != len(raw) || h.ElemSize != elem ||
					h.EncodedSize != len(enc) {
					t.Fatalf("%s/%d/%s: header %+v does not describe %d raw bytes", codec, elem, label, h, len(raw))
				}
				got, h2, err := DecodeFrame(obj)
				if err != nil {
					t.Fatalf("%s/%d/%s: DecodeFrame: %v", codec, elem, label, err)
				}
				if !bytes.Equal(got, raw) {
					t.Fatalf("%s/%d/%s: round trip differs (%d vs %d bytes)", codec, elem, label, len(got), len(raw))
				}
				if h2 != h {
					t.Fatalf("%s/%d/%s: DecodeFrame header %+v != ParseFrameHeader %+v", codec, elem, label, h2, h)
				}
			}
		}
	}
}

// TestFrameRejectsUnalignedElements: a payload that is not a multiple
// of the element size must be rejected at encode time — a Gorilla
// frame would silently drop the trailing partial element otherwise.
func TestFrameRejectsUnalignedElements(t *testing.T) {
	if _, err := EncodeFrame("gorilla", make([]byte, 17), 8); err == nil {
		t.Fatal("17 bytes with 8-byte elements must not frame")
	}
	if _, err := EncodeFrame("none", make([]byte, 17), 1); err != nil {
		t.Fatalf("byte-element frame rejected: %v", err)
	}
}

// TestFrameUnknownCodec: both the encoder and the header parser must
// reject unknown codec names with the shared sentinel, so a corrupt
// store reports the same way everywhere.
func TestFrameUnknownCodec(t *testing.T) {
	if _, err := EncodeFrame("bogus", []byte("x"), 1); !errors.Is(err, compress.ErrUnknownCodec) {
		t.Fatalf("EncodeFrame(bogus) = %v, want ErrUnknownCodec", err)
	}
	// Hand-build a frame whose header names a codec that does not exist.
	obj := append([]byte{}, frameMagic...)
	obj = append(obj, 5)
	obj = append(obj, "bogus"...)
	obj = binary.LittleEndian.AppendUint32(obj, 1)
	obj = binary.LittleEndian.AppendUint32(obj, 1)
	obj = append(obj, 'x')
	if _, _, err := ParseFrameHeader(obj); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("bogus codec name: %v, want ErrCorruptFrame", err)
	}
	if _, _, err := ParseFrameHeader(obj); !errors.Is(err, compress.ErrUnknownCodec) {
		t.Fatalf("bogus codec name: %v, want wrapped ErrUnknownCodec", err)
	}
}

// TestFrameNotFramed: plain objects must be reported as unframed, not
// corrupt.
func TestFrameNotFramed(t *testing.T) {
	for _, obj := range [][]byte{nil, {}, []byte("x"), []byte("DMB1 something else")} {
		if IsFramed(obj) {
			t.Fatalf("%q reported framed", obj)
		}
		if _, _, err := ParseFrameHeader(obj); !errors.Is(err, ErrNotFramed) {
			t.Fatalf("%q: %v, want ErrNotFramed", obj, err)
		}
		if _, _, err := DecodeFrame(obj); !errors.Is(err, ErrNotFramed) {
			t.Fatalf("%q: DecodeFrame %v, want ErrNotFramed", obj, err)
		}
	}
}

// TestFrameTruncationAndCorruption: every strict prefix of a valid
// frame, and every single-byte corruption of its header, must come
// back as a clean error — never a panic, never silent success with
// wrong bytes.
func TestFrameTruncationAndCorruption(t *testing.T) {
	raw := framePayload(4096)
	for _, codec := range compress.Names() {
		obj, err := EncodeFrame(codec, raw, 8)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(obj); cut++ {
			trunc := obj[:cut]
			if got, _, err := DecodeFrame(trunc); err == nil && !bytes.Equal(got, raw) {
				t.Fatalf("%s: truncation at %d decoded silently to wrong bytes", codec, cut)
			}
		}
		// Flip each header byte (the payload region is the codec's own
		// robustness problem, covered by the fuzz targets).
		hdrLen := len(frameMagic) + 1 + len(codec) + 8
		for i := len(frameMagic); i < hdrLen; i++ {
			mut := append([]byte(nil), obj...)
			mut[i] ^= 0xff
			got, _, err := DecodeFrame(mut)
			if err == nil && !bytes.Equal(got, raw) {
				t.Fatalf("%s: header corruption at %d decoded silently to wrong bytes", codec, i)
			}
		}
	}
}

// TestFrameImplausibleRawSize: a header claiming a raw size far beyond
// what any registered codec can expand to must be rejected before
// allocation.
func TestFrameImplausibleRawSize(t *testing.T) {
	obj := append([]byte{}, frameMagic...)
	obj = append(obj, 4)
	obj = append(obj, "none"...)
	obj = binary.LittleEndian.AppendUint32(obj, math.MaxUint32)
	obj = binary.LittleEndian.AppendUint32(obj, 1)
	obj = append(obj, 1, 2, 3)
	if _, _, err := ParseFrameHeader(obj); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("4 GiB raw from 3 encoded bytes: %v, want ErrCorruptFrame", err)
	}
}

// TestFrameHeaderRatio spot-checks the reporting helper.
func TestFrameHeaderRatio(t *testing.T) {
	h := FrameHeader{RawSize: 600, EncodedSize: 100}
	if h.Ratio() != 6 {
		t.Fatalf("Ratio = %v, want 6", h.Ratio())
	}
}
