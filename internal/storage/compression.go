package storage

import (
	"fmt"
	"math"
	"regexp"
	"sync"

	"repro/internal/buf"
	"repro/internal/compress"
	"repro/internal/des"
)

// AdaptiveCodec selects the per-dataset adaptive codec choice instead
// of a fixed codec.
const AdaptiveCodec = "adaptive"

// DefaultCPUCostWeight is the spare-time discount on codec CPU in the
// selection score: E4 measures the dedicated cores ≥75% idle, so a
// codec second displaces roughly a quarter of a transfer second.
const DefaultCPUCostWeight = 0.25

// CodecProfile prices one codec for the cost model: how fast a
// dedicated core runs it and, for the DES face where no real bytes
// exist to measure, what compression ratio to assume.
type CodecProfile struct {
	// EncodeRate and DecodeRate are dedicated-core codec throughputs in
	// raw bytes per second (0 = free, used by "none").
	EncodeRate float64
	DecodeRate float64
	// AssumedRatio is the raw/encoded ratio the DES cost face charges
	// when only simulated byte counts flow.
	AssumedRatio float64
}

// defaultProfiles price the registered codecs. Rates are in the range
// the paper's §IV.D setup implies (a few hundred MB/s of codec work on
// one dedicated core, the E5 default being 400 MB/s); assumed ratios
// follow the measured shape — Gorilla reaches the §IV.D 600% on smooth
// float fields, DEFLATE trades much more CPU for a middling ratio on
// binary data, RLE and delta are cheap but narrow.
var defaultProfiles = map[string]CodecProfile{
	"none":    {EncodeRate: 0, DecodeRate: 0, AssumedRatio: 1},
	"rle":     {EncodeRate: 2e9, DecodeRate: 4e9, AssumedRatio: 3},
	"delta":   {EncodeRate: 1.2e9, DecodeRate: 1.5e9, AssumedRatio: 2.5},
	"gorilla": {EncodeRate: 800e6, DecodeRate: 1e9, AssumedRatio: 6},
	"flate":   {EncodeRate: 120e6, DecodeRate: 400e6, AssumedRatio: 4},
}

// Profile returns the cost profile of a registered codec.
func Profile(codec string) (CodecProfile, bool) {
	p, ok := defaultProfiles[codec]
	return p, ok
}

// CodecInfo records how one object was stored by the compression
// pipeline; cluster manifests embed it so a restart knows each block
// container's codec and sizes before fetching any payload.
type CodecInfo struct {
	// Codec is the chosen codec name.
	Codec string
	// RawBytes and EncodedBytes are the object's payload sizes before
	// and after encoding (EncodedBytes excludes the frame header).
	RawBytes     int64
	EncodedBytes int64
}

// ObjectCodecInfoer is implemented by stores that can report how an
// object was encoded (the Compressing wrapper). Consumers test for it
// with a type assertion, so plain backends keep working unchanged.
type ObjectCodecInfoer interface {
	// ObjectCodec reports the codec info recorded when name was stored
	// through this process, and ok=false for unknown or pass-through
	// objects.
	ObjectCodec(name string) (CodecInfo, bool)
}

// CodecCount is one codec's slice of the per-codec ledger.
type CodecCount struct {
	// Objects stored with this codec.
	Objects int
	// RawBytes and EncodedBytes they held before and after encoding.
	RawBytes     int64
	EncodedBytes int64
}

// CompressionOptions configure the Compressing wrapper.
type CompressionOptions struct {
	// Codec is a fixed codec name, or AdaptiveCodec (also the ""
	// default) for the per-dataset selector.
	Codec string
	// Candidates are the codecs the adaptive selector trials (default:
	// the full registry).
	Candidates []string
	// ElemSize is the element width handed to element-structured codecs
	// (default: 8 when the payload length is a multiple of 8, else 4,
	// else 1).
	ElemSize int
	// SampleBytes bounds the trial-encode sample per dataset (default
	// 64 KiB).
	SampleBytes int
	// TransferBandwidth (bytes/s) converts codec CPU seconds into
	// transfer-byte equivalents for the ratio×cost score: a codec is
	// worth choosing when the bytes it saves outweigh the transfer-time
	// equivalent of its CPU. Default 200 MB/s, the per-stream share a
	// dedicated core typically sees of the modeled OST array.
	TransferBandwidth float64
	// CPUCostWeight discounts codec CPU in the score (default
	// DefaultCPUCostWeight). Dedicated cores are mostly idle between
	// drains (E4 measures the idle fraction; §IV.D spends exactly that
	// "spare time" on compression), so a second of codec CPU costs less
	// than a second of transfer. 1 prices CPU and transfer equally.
	CPUCostWeight float64
	// Engine lets the DES face charge codec CPU on WriteAsync/ReadAsync
	// (which have no blocking proc to wait on). nil is fine when only
	// the real object face or the blocking simulated face is used.
	Engine *des.Engine
	// DatasetKey maps an object name to the dataset the selector caches
	// its choice under (default: strip the "-it<digits>" iteration part,
	// so every iteration of a variable shares one choice).
	DatasetKey func(name string) string
}

var iterationPart = regexp.MustCompile(`-it\d+`)

// defaultDatasetKey strips the per-iteration part of cluster object
// names, so "job-root000-it000042" and "-it000043" share a choice.
func defaultDatasetKey(name string) string {
	return iterationPart.ReplaceAllString(name, "")
}

func (o CompressionOptions) withDefaults() CompressionOptions {
	if o.Codec == "" {
		o.Codec = AdaptiveCodec
	}
	if len(o.Candidates) == 0 {
		o.Candidates = compress.Names()
	}
	if o.SampleBytes <= 0 {
		o.SampleBytes = 64 << 10
	}
	if o.TransferBandwidth <= 0 {
		o.TransferBandwidth = 200e6
	}
	if o.CPUCostWeight <= 0 {
		o.CPUCostWeight = DefaultCPUCostWeight
	}
	if o.DatasetKey == nil {
		o.DatasetKey = defaultDatasetKey
	}
	return o
}

// elemSizeFor resolves the element width for one payload.
func (o CompressionOptions) elemSizeFor(n int) int {
	if o.ElemSize > 0 {
		return o.ElemSize
	}
	switch {
	case n%8 == 0:
		return 8
	case n%4 == 0:
		return 4
	default:
		return 1
	}
}

// Compressing runs the internal/compress codecs on both faces of an
// inner backend — the §IV.D pipeline on the real data path.
//
// Real face: Put trial-encodes a sample per dataset, picks the codec
// minimizing ratio×cost (bytes moved plus the transfer-equivalent of
// the codec CPU), caches the choice per dataset, and stores the object
// framed (see frame.go); Get transparently decodes framed objects and
// passes unframed ones through, so compressed and plain stores read
// the same way.
//
// Simulated face: Write/Read charge the codec CPU time on the calling
// proc — the dedicated core — and forward only the encoded volume to
// the inner backend, the §IV.D trade of spare core time against NIC
// and PFS bytes. The ledger grows BytesSaved, Encode/DecodeTime and
// per-codec counters on top of the inner accounting.
type Compressing struct {
	Backend
	opts CompressionOptions

	mu     sync.Mutex
	choice map[string]string // dataset key → cached codec choice
	// info records how each object was stored — one small entry per
	// object name, the same per-object footprint the inner backends'
	// accounting maps (sdf/pfs objSize) already keep.
	info map[string]CodecInfo
	des  *selected // lazily chosen DES-face codec

	bytesSaved float64
	encodeTime float64
	decodeTime float64
	objects    int
	rawBytes   int64
	encBytes   int64
	perCodec   map[string]CodecCount
}

// selected is one resolved codec choice.
type selected struct {
	codec    string
	elemSize int
}

// NewCompressing wraps inner with the compression pipeline.
func NewCompressing(inner Backend, opts CompressionOptions) *Compressing {
	return &Compressing{
		Backend:  inner,
		opts:     opts.withDefaults(),
		choice:   map[string]string{},
		info:     map[string]CodecInfo{},
		perCodec: map[string]CodecCount{},
	}
}

// Name implements Backend: the inner name tagged with the codec mode.
func (c *Compressing) Name() string {
	return c.Backend.Name() + "+" + c.opts.Codec
}

// Inner returns the wrapped backend.
func (c *Compressing) Inner() Backend { return c.Backend }

// cpuCost converts codec CPU seconds for n raw bytes into
// transfer-byte equivalents under the configured bandwidth, discounted
// by the spare-time weight.
func (c *Compressing) cpuCost(p CodecProfile, n float64) float64 {
	if p.EncodeRate <= 0 {
		return 0
	}
	return n / p.EncodeRate * c.opts.TransferBandwidth * c.opts.CPUCostWeight
}

// score is the selector's objective for one candidate on a sample:
// encoded bytes moved plus the transfer equivalent of the encode CPU.
// Lower is better; "none" scores exactly the raw size.
func (c *Compressing) score(codec string, encLen int, rawLen float64) float64 {
	prof := defaultProfiles[codec]
	return float64(encLen) + c.cpuCost(prof, rawLen)
}

// chooseFor resolves the codec name for one object, consulting and
// filling the per-dataset cache in adaptive mode. sample is a
// contiguous prefix of the payload (the scatter-gather path hands in
// only that much; Put hands in the whole object) and total is the full
// payload length, which drives the element-width heuristic. Only the
// codec is cached — the element width is re-derived per payload,
// because later objects of the same dataset can have different sizes
// (a partial batch after a failure shrinks the root object). Callers
// hold c.mu.
func (c *Compressing) chooseFor(name string, sample []byte, total int) (string, error) {
	if c.opts.Codec != AdaptiveCodec {
		if _, err := compress.ByName(c.opts.Codec); err != nil {
			return "", err
		}
		return c.opts.Codec, nil
	}
	key := c.opts.DatasetKey(name)
	if codec, ok := c.choice[key]; ok {
		return codec, nil
	}
	elem := c.opts.elemSizeFor(total)
	if len(sample) > c.opts.SampleBytes {
		sample = sample[:c.opts.SampleBytes]
	}
	if n := len(sample) - len(sample)%elem; n != len(sample) {
		sample = sample[:n] // element-structured codecs need whole elements
	}
	best := "none"
	bestScore := c.score("none", len(sample), float64(len(sample)))
	for _, cand := range c.opts.Candidates {
		if cand == "none" {
			continue
		}
		codec, err := compress.ByName(cand)
		if err != nil {
			return "", err
		}
		enc, err := codec.Encode(sample, elem)
		if err != nil {
			// The candidate cannot handle this element structure
			// (e.g. delta on non-8-byte data): not a choice.
			continue
		}
		// Trial encodes are real codec work on the dedicated core;
		// charge them so the adaptive path's advantage is honest.
		c.chargeEncode(defaultProfiles[cand], float64(len(sample)))
		if s := c.score(cand, len(enc), float64(len(sample))); s < bestScore {
			bestScore = s
			best = cand
		}
	}
	c.choice[key] = best
	return best, nil
}

// chargeEncode accounts codec CPU for n raw bytes. Callers hold c.mu.
func (c *Compressing) chargeEncode(p CodecProfile, n float64) float64 {
	if p.EncodeRate <= 0 {
		return 0
	}
	t := n / p.EncodeRate
	c.encodeTime += t
	return t
}

// chargeDecode accounts codec CPU for n raw bytes. Callers hold c.mu.
func (c *Compressing) chargeDecode(p CodecProfile, n float64) float64 {
	if p.DecodeRate <= 0 {
		return 0
	}
	t := n / p.DecodeRate
	c.decodeTime += t
	return t
}

// Put implements ObjectStore: encode with the chosen codec, frame, and
// hand the framed object to the inner backend. An object the chosen
// codec cannot handle (element width does not divide this payload) or
// whose encoding does not pay for itself (framed size ≥ raw size)
// falls back to a "none" frame, so it costs only the header — a cached
// per-dataset choice never makes a later Put fail.
func (c *Compressing) Put(name string, data []byte) error {
	c.mu.Lock()
	used, err := c.chooseFor(name, data, len(data))
	c.mu.Unlock()
	if err != nil {
		return err
	}
	framed, err := EncodeFrame(used, data, c.opts.elemSizeFor(len(data)))
	if err != nil {
		// The codec is registered (chooseFor validated it), so the
		// failure is a capability mismatch with this payload.
		framed, err = EncodeFrame("none", data, 1)
		if err != nil {
			return err
		}
		used = "none"
	}
	if used != "none" && len(framed) >= len(data) {
		if framed, err = EncodeFrame("none", data, 1); err != nil {
			return err
		}
		used = "none"
	}
	if err := c.Backend.Put(name, framed); err != nil {
		return err
	}
	c.recordPut(name, used, int64(len(data)), int64(len(framed)-frameHeaderLen(used)))
	return nil
}

// PutVec implements VecStore: the compression pipeline's share of the
// zero-copy aggregation path. The codec choice runs on a contiguous
// sample prefix (no flatten needed to decide). When the choice is
// "none" — incompressible data, or the framed form would not pay — the
// frame header goes out as its own leading segment and the payload
// segments pass through to the inner backend untouched: the whole
// write moves headers, not payloads. Only a payload that actually
// compresses is gathered into one buffer for the codec.
func (c *Compressing) PutVec(name string, segs [][]byte) error {
	total := SegsLen(segs)
	sample, free := sampleFromSegs(segs, c.opts.SampleBytes)
	c.mu.Lock()
	used, err := c.chooseFor(name, sample, total)
	c.mu.Unlock()
	free()
	if err != nil {
		return err
	}
	if used != "none" {
		flat := FlattenSegs(segs)
		framed, ferr := EncodeFrame(used, flat, c.opts.elemSizeFor(total))
		if ferr == nil && len(framed) < total {
			if err := c.Backend.Put(name, framed); err != nil {
				return err
			}
			c.recordPut(name, used, int64(total), int64(len(framed)-frameHeaderLen(used)))
			return nil
		}
		// Capability mismatch with this payload, or the encoding does
		// not pay: fall through to the pass-through frame.
		used = "none"
	}
	if int64(total) > math.MaxUint32 {
		return fmt.Errorf("storage: %d-byte payload exceeds the 4 GiB frame limit", total)
	}
	vec := make([][]byte, 0, len(segs)+1)
	vec = append(vec, appendFrameHeader(make([]byte, 0, frameHeaderLen("none")), "none", total, 1))
	vec = append(vec, segs...)
	if err := PutVec(c.Backend, name, vec); err != nil {
		return err
	}
	c.recordPut(name, "none", int64(total), int64(total))
	return nil
}

// sampleFromSegs returns a contiguous prefix of up to limit payload
// bytes for the codec selector, avoiding a copy when the first segment
// alone covers it. free returns the scratch buffer (if any) to the
// buffer pool.
func sampleFromSegs(segs [][]byte, limit int) (sample []byte, free func()) {
	total := SegsLen(segs)
	if total < limit {
		limit = total
	}
	if len(segs) > 0 && len(segs[0]) >= limit {
		return segs[0][:limit], func() {}
	}
	s := buf.Get(limit)
	n := 0
	for _, seg := range segs {
		if n == limit {
			break
		}
		n += copy(s[n:], seg)
	}
	return s[:n], func() { buf.Put(s) }
}

// recordPut accounts one stored object: codec CPU, the per-object
// codec info manifests embed, and the per-codec ledger.
func (c *Compressing) recordPut(name, used string, rawBytes, encBytes int64) {
	info := CodecInfo{Codec: used, RawBytes: rawBytes, EncodedBytes: encBytes}
	c.mu.Lock()
	c.chargeEncode(defaultProfiles[used], float64(rawBytes))
	c.info[name] = info
	c.objects++
	c.rawBytes += info.RawBytes
	c.encBytes += info.EncodedBytes
	pc := c.perCodec[used]
	pc.Objects++
	pc.RawBytes += info.RawBytes
	pc.EncodedBytes += info.EncodedBytes
	c.perCodec[used] = pc
	c.mu.Unlock()
}

// frameHeaderLen is the frame envelope size for a codec name.
func frameHeaderLen(codec string) int {
	return len(frameMagic) + 1 + len(codec) + 8
}

// Get implements ObjectReader: fetch from the inner backend and
// transparently decode framed objects. Unframed objects (a store
// written without compression) pass through byte-for-byte; inner
// errors (ErrNotFound, ErrNoPayload) propagate unchanged.
func (c *Compressing) Get(name string) ([]byte, error) {
	obj, err := c.Backend.Get(name)
	if err != nil {
		return obj, err
	}
	if !IsFramed(obj) {
		return obj, nil
	}
	raw, h, err := DecodeFrame(obj)
	if err != nil {
		return nil, fmt.Errorf("storage: object %q: %w", name, err)
	}
	c.mu.Lock()
	c.chargeDecode(defaultProfiles[h.Codec], float64(len(raw)))
	c.mu.Unlock()
	return raw, nil
}

// Delete implements ObjectDeleter when the inner backend does,
// dropping the local codec-info entry either way.
func (c *Compressing) Delete(name string) error {
	del, ok := c.Backend.(ObjectDeleter)
	if !ok {
		return fmt.Errorf("storage: backend %s cannot delete objects", c.Backend.Name())
	}
	err := del.Delete(name)
	if err == nil {
		c.mu.Lock()
		delete(c.info, name)
		c.mu.Unlock()
	}
	return err
}

// ObjectCodec implements ObjectCodecInfoer.
func (c *Compressing) ObjectCodec(name string) (CodecInfo, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	info, ok := c.info[name]
	return info, ok
}

// desChoice resolves the single codec the DES face prices. A fixed
// configuration uses that codec; adaptive mode picks the candidate
// minimizing assumed-ratio×cost under the configured bandwidth — the
// same objective as the real face, evaluated on the profile table
// because no real bytes flow on this face.
func (c *Compressing) desChoice() selected {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.des != nil {
		return *c.des
	}
	sel := selected{codec: c.opts.Codec, elemSize: 8}
	if c.opts.Codec == AdaptiveCodec {
		sel.codec = "none"
		best := c.score("none", 1<<20, 1<<20)
		for _, cand := range c.opts.Candidates {
			prof, ok := defaultProfiles[cand]
			if !ok || cand == "none" {
				continue
			}
			if s := c.score(cand, int((1<<20)/prof.AssumedRatio), 1<<20); s < best {
				best = s
				sel.codec = cand
			}
		}
	}
	c.des = &sel
	return sel
}

// desEncode charges encode CPU for the DES face and returns the wait
// time plus the shrunken transfer volume.
func (c *Compressing) desEncode(bytes float64) (wait, encoded float64) {
	sel := c.desChoice()
	prof := defaultProfiles[sel.codec]
	encoded = bytes / prof.AssumedRatio
	c.mu.Lock()
	wait = c.chargeEncode(prof, bytes)
	c.bytesSaved += bytes - encoded
	c.mu.Unlock()
	return wait, encoded
}

// desDecode is desEncode's read mirror: the raw volume is reassembled
// from encoded bytes read back, charging decode CPU.
func (c *Compressing) desDecode(bytes float64) (wait, encoded float64) {
	sel := c.desChoice()
	prof := defaultProfiles[sel.codec]
	encoded = bytes / prof.AssumedRatio
	c.mu.Lock()
	wait = c.chargeDecode(prof, bytes)
	c.mu.Unlock()
	return wait, encoded
}

// Write implements Backend: the dedicated core encodes (CPU time on
// p), then only the encoded volume travels to the inner backend.
func (c *Compressing) Write(p *des.Proc, target int, bytes float64, pat Pattern) {
	wait, encoded := c.desEncode(bytes)
	if wait > 0 {
		p.Wait(wait)
	}
	c.Backend.Write(p, target, encoded, pat)
}

// WriteChunk implements Backend (one round of an open file).
func (c *Compressing) WriteChunk(p *des.Proc, target int, bytes float64, pat Pattern) {
	wait, encoded := c.desEncode(bytes)
	if wait > 0 {
		p.Wait(wait)
	}
	c.Backend.WriteChunk(p, target, encoded, pat)
}

// WriteAsync implements Backend. With an engine configured the codec
// CPU is charged inside the async transfer (encode, then write);
// without one the volume still shrinks but the CPU is not modeled.
func (c *Compressing) WriteAsync(target int, bytes float64, pat Pattern) *des.Future {
	wait, encoded := c.desEncode(bytes)
	if wait <= 0 || c.opts.Engine == nil {
		return c.Backend.WriteAsync(target, encoded, pat)
	}
	f := c.opts.Engine.NewFuture()
	c.opts.Engine.Spawn("codec-encode", func(p *des.Proc) {
		p.Wait(wait)
		p.Await(c.Backend.WriteAsync(target, encoded, pat))
		f.Complete()
	})
	return f
}

// Read implements Backend: only the encoded volume travels from the
// inner backend, then the dedicated core decodes (CPU time on p).
func (c *Compressing) Read(p *des.Proc, target int, bytes float64, pat Pattern) {
	wait, encoded := c.desDecode(bytes)
	c.Backend.Read(p, target, encoded, pat)
	if wait > 0 {
		p.Wait(wait)
	}
}

// ReadAsync implements Backend; see WriteAsync for the engine note.
func (c *Compressing) ReadAsync(target int, bytes float64, pat Pattern) *des.Future {
	wait, encoded := c.desDecode(bytes)
	if wait <= 0 || c.opts.Engine == nil {
		return c.Backend.ReadAsync(target, encoded, pat)
	}
	f := c.opts.Engine.NewFuture()
	c.opts.Engine.Spawn("codec-decode", func(p *des.Proc) {
		p.Await(c.Backend.ReadAsync(target, encoded, pat))
		p.Wait(wait)
		f.Complete()
	})
	return f
}

// Accounting implements Backend: the inner ledger plus the
// compression counters.
func (c *Compressing) Accounting() Accounting {
	acc := c.Backend.Accounting()
	c.mu.Lock()
	defer c.mu.Unlock()
	acc.BytesSaved = c.bytesSaved
	acc.EncodeTime = c.encodeTime
	acc.DecodeTime = c.decodeTime
	acc.ObjectsCompressed = c.objects
	acc.ObjectRawBytes = c.rawBytes
	acc.ObjectEncodedBytes = c.encBytes
	if len(c.perCodec) > 0 {
		acc.PerCodec = make(map[string]CodecCount, len(c.perCodec))
		for k, v := range c.perCodec {
			acc.PerCodec[k] = v
		}
	}
	return acc
}

// ValidateCodecName checks a user-supplied codec option: a registered
// codec name, AdaptiveCodec, or empty (meaning adaptive).
func ValidateCodecName(name string) error {
	if name == "" || name == AdaptiveCodec {
		return nil
	}
	_, err := compress.ByName(name)
	return err
}
