package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/des"
	"repro/internal/rng"
)

// simModel is the deterministic cost model shared by the memory and SDF
// backends: per-target FIFO service at a fixed bandwidth, constant
// pattern efficiencies, a per-file overhead and a constant metadata
// service time. No jitter, no congestion — two runs are bit-identical.
type simModel struct {
	eng      *des.Engine
	targets  []*des.Resource
	metaRes  *des.Resource
	bw       float64 // per-target bandwidth, bytes/s
	metaTime float64 // seconds per metadata op
	overhead float64 // seconds charged once per file stream

	// Pattern efficiencies: the fraction of target bandwidth a stream
	// of each pattern achieves. The ordering mirrors the pfs model
	// (sequential > small files > shared-file extent locking) so the
	// paper's strategy ranking survives a backend swap.
	effSeq    float64
	effSmall  float64
	effShared float64

	mu           sync.Mutex
	bytesWritten float64
	bytesRead    float64
	files        int
	active       int
	busySince    float64
	busyTotal    float64
}

func newSimModel(eng *des.Engine, targets int, bandwidth float64) *simModel {
	if targets <= 0 {
		targets = 1
	}
	m := &simModel{
		eng:       eng,
		bw:        bandwidth,
		metaTime:  1e-3,
		overhead:  0.05,
		effSeq:    1.0,
		effSmall:  0.45,
		effShared: 0.06,
	}
	if eng != nil {
		m.targets = make([]*des.Resource, targets)
		for i := range m.targets {
			m.targets[i] = eng.NewResource(1)
		}
		m.metaRes = eng.NewResource(1)
	}
	return m
}

func (m *simModel) targetCount() int {
	if m.targets == nil {
		return 1
	}
	return len(m.targets)
}

func (m *simModel) eff(pat Pattern) float64 {
	switch pat {
	case SmallFile:
		return m.effSmall
	case SharedFile:
		return m.effShared
	default:
		return m.effSeq
	}
}

func (m *simModel) metaOp(p *des.Proc) {
	p.Acquire(m.metaRes, 1)
	p.Wait(m.metaTime)
	m.metaRes.Release(1)
}

func (m *simModel) beginTransfer() {
	m.mu.Lock()
	if m.active == 0 {
		m.busySince = m.eng.Now()
	}
	m.active++
	m.mu.Unlock()
}

func (m *simModel) endTransfer(bytes float64, read bool) {
	m.mu.Lock()
	m.active--
	if m.active == 0 {
		m.busyTotal += m.eng.Now() - m.busySince
	}
	if read {
		m.bytesRead += bytes
	} else {
		m.bytesWritten += bytes
	}
	m.mu.Unlock()
}

// transfer serves one stream — write or read — on a target: reads are
// priced exactly like writes (same per-target FIFO, same pattern
// efficiency), so the restart path inherits the model's determinism.
func (m *simModel) transfer(p *des.Proc, target int, bytes float64, pat Pattern, overhead float64, read bool) {
	if bytes <= 0 {
		return
	}
	t := m.targets[target%len(m.targets)]
	p.Acquire(t, 1)
	m.beginTransfer()
	p.Wait(overhead + bytes/(m.bw*m.eff(pat)))
	m.endTransfer(bytes, read)
	t.Release(1)
}

func (m *simModel) write(p *des.Proc, target int, bytes float64, pat Pattern, overhead float64) {
	m.transfer(p, target, bytes, pat, overhead, false)
}

func (m *simModel) read(p *des.Proc, target int, bytes float64, pat Pattern) {
	m.transfer(p, target, bytes, pat, m.overhead, true)
}

func (m *simModel) transferAsync(target int, bytes float64, pat Pattern, read bool) *des.Future {
	f := m.eng.NewFuture()
	if bytes <= 0 {
		f.Complete()
		return f
	}
	m.eng.Spawn("storage-xfer", func(p *des.Proc) {
		m.transfer(p, target, bytes, pat, m.overhead, read)
		f.Complete()
	})
	return f
}

func (m *simModel) writeAsync(target int, bytes float64, pat Pattern) *des.Future {
	return m.transferAsync(target, bytes, pat, false)
}

func (m *simModel) readAsync(target int, bytes float64, pat Pattern) *des.Future {
	return m.transferAsync(target, bytes, pat, true)
}

func (m *simModel) accounting() Accounting {
	m.mu.Lock()
	defer m.mu.Unlock()
	busy := m.busyTotal
	if m.active > 0 {
		busy += m.eng.Now() - m.busySince
	}
	return Accounting{
		BytesWritten: m.bytesWritten,
		BytesRead:    m.bytesRead,
		IOBusyTime:   busy,
		FilesCreated: m.files,
	}
}

// Memory is an in-memory backend: the deterministic cost model for the
// simulated face, and a plain map for real objects. It is the fast,
// reproducible choice for tests.
type Memory struct {
	*simModel

	omu      sync.Mutex
	objects  map[string][]byte
	objByte  int64
	objReads int
	objRead  int64
}

// NewMemory builds a memory backend with the given number of targets
// and per-target bandwidth. eng may be nil when only the object face
// (Put/Object) is used.
func NewMemory(eng *des.Engine, targets int, bandwidth float64) *Memory {
	return &Memory{
		simModel: newSimModel(eng, targets, bandwidth),
		objects:  map[string][]byte{},
	}
}

// Name implements Backend.
func (b *Memory) Name() string { return string(KindMemory) }

// Targets implements Backend.
func (b *Memory) Targets() int { return b.targetCount() }

// BeginPhase implements Backend (no congestion model: nothing to draw).
func (b *Memory) BeginPhase() {}

// Create implements Backend.
func (b *Memory) Create(p *des.Proc) {
	b.mu.Lock()
	b.files++
	b.mu.Unlock()
	b.metaOp(p)
}

// Open implements Backend.
func (b *Memory) Open(p *des.Proc) { b.metaOp(p) }

// Close implements Backend.
func (b *Memory) Close(p *des.Proc) { b.metaOp(p) }

// Write implements Backend.
func (b *Memory) Write(p *des.Proc, target int, bytes float64, pat Pattern) {
	b.write(p, target, bytes, pat, b.overhead)
}

// WriteChunk implements Backend.
func (b *Memory) WriteChunk(p *des.Proc, target int, bytes float64, pat Pattern) {
	b.write(p, target, bytes, pat, 0)
}

// WriteAsync implements Backend.
func (b *Memory) WriteAsync(target int, bytes float64, pat Pattern) *des.Future {
	return b.writeAsync(target, bytes, pat)
}

// Read implements Backend.
func (b *Memory) Read(p *des.Proc, target int, bytes float64, pat Pattern) {
	b.read(p, target, bytes, pat)
}

// ReadAsync implements Backend.
func (b *Memory) ReadAsync(target int, bytes float64, pat Pattern) *des.Future {
	return b.readAsync(target, bytes, pat)
}

// PlaceFile implements Backend: a reproducible random draw of targets.
func (b *Memory) PlaceFile(stripes int, r *rng.Stream) []int {
	return placeUniform(b.targetCount(), stripes, r)
}

// Put implements ObjectStore: the object is kept in memory.
func (b *Memory) Put(name string, data []byte) error {
	return b.PutVec(name, [][]byte{data})
}

// PutVec implements VecStore: the segments are gathered with a single
// copy into the one buffer the store keeps — the backend's share of
// the zero-copy aggregation path (callers never pre-flatten).
func (b *Memory) PutVec(name string, segs [][]byte) error {
	if name == "" {
		return fmt.Errorf("storage: empty object name")
	}
	obj := FlattenSegs(segs)
	b.omu.Lock()
	defer b.omu.Unlock()
	if old, ok := b.objects[name]; ok {
		b.objByte -= int64(len(old))
	}
	b.objects[name] = obj
	b.objByte += int64(len(obj))
	return nil
}

// Delete implements ObjectDeleter: the object is dropped from memory.
func (b *Memory) Delete(name string) error {
	b.omu.Lock()
	defer b.omu.Unlock()
	d, ok := b.objects[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	b.objByte -= int64(len(d))
	delete(b.objects, name)
	return nil
}

// Get implements ObjectReader: a copy of the stored bytes.
func (b *Memory) Get(name string) ([]byte, error) {
	b.omu.Lock()
	defer b.omu.Unlock()
	d, ok := b.objects[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	b.objReads++
	b.objRead += int64(len(d))
	return append([]byte(nil), d...), nil
}

// List implements ObjectReader: stored names with the prefix, ascending.
func (b *Memory) List(prefix string) ([]string, error) {
	b.omu.Lock()
	defer b.omu.Unlock()
	names := make([]string, 0, len(b.objects))
	for n := range b.objects {
		if strings.HasPrefix(n, prefix) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Object returns a stored object's bytes (the pre-Get boolean API, kept
// for existing callers).
func (b *Memory) Object(name string) ([]byte, bool) {
	d, err := b.Get(name)
	return d, err == nil
}

// ObjectNames returns the names of all stored objects.
func (b *Memory) ObjectNames() []string {
	names, _ := b.List("")
	return names
}

// Accounting implements Backend.
func (b *Memory) Accounting() Accounting {
	acc := b.simModel.accounting()
	b.omu.Lock()
	acc.Objects = len(b.objects)
	acc.ObjectBytes = b.objByte
	acc.ObjectsRead = b.objReads
	acc.ObjectReadBytes = b.objRead
	b.omu.Unlock()
	return acc
}

// placeUniform draws stripes distinct targets out of n.
func placeUniform(n, stripes int, r *rng.Stream) []int {
	if stripes >= n {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	return r.Perm(n)[:stripes]
}
