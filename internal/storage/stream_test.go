package storage

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestValidateSlowPolicy(t *testing.T) {
	for _, p := range append(SlowPolicies(), "") {
		if err := ValidateSlowPolicy(string(p)); err != nil {
			t.Errorf("ValidateSlowPolicy(%q) = %v", p, err)
		}
	}
	if err := ValidateSlowPolicy("bogus"); err == nil {
		t.Errorf("ValidateSlowPolicy(bogus) = nil, want error")
	}
}

// TestDropOldestNeverStallsPublisher is the drop-oldest property: with
// no consumer draining at all, a publisher pushes far more messages
// than the buffer holds without ever blocking, and the subscriber is
// left holding exactly the newest Buffer messages in order.
func TestDropOldestNeverStallsPublisher(t *testing.T) {
	s := NewStream()
	sub := s.Subscribe(SubOptions{Buffer: 4, Policy: DropOldest})
	const n = 5000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			s.Publish(fmt.Sprintf("obj-%d", i), []byte{byte(i)})
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("publisher stalled under drop-oldest")
	}
	if got := sub.Dropped(); got != n-4 {
		t.Fatalf("Dropped = %d, want %d", got, n-4)
	}
	for i := 0; i < 4; i++ {
		msg, err := sub.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if want := uint64(n - 4 + i + 1); msg.Seq != want {
			t.Fatalf("Recv %d: Seq = %d, want %d (newest window)", i, msg.Seq, want)
		}
	}
	if p := sub.Pending(); p != 0 {
		t.Fatalf("Pending = %d after drain, want 0", p)
	}
}

// TestBlockBackpressure is the block property: a publisher into a full
// queue does not complete until the consumer makes room (real
// backpressure), and completes promptly once it does — the wait is
// bounded by the consumer, not lost.
func TestBlockBackpressure(t *testing.T) {
	s := NewStream()
	sub := s.Subscribe(SubOptions{Buffer: 2, Policy: Block, BlockTimeout: time.Minute})
	s.Publish("a", nil)
	s.Publish("b", nil)
	third := make(chan struct{})
	go func() {
		s.Publish("c", nil) // queue full: must wait for a Recv
		close(third)
	}()
	select {
	case <-third:
		t.Fatal("publish into a full block-policy queue returned without backpressure")
	case <-time.After(50 * time.Millisecond):
	}
	if _, err := sub.Recv(); err != nil {
		t.Fatalf("Recv: %v", err)
	}
	select {
	case <-third:
	case <-time.After(5 * time.Second):
		t.Fatal("blocked publish did not complete after the consumer made room")
	}
	if got := sub.Dropped(); got != 0 {
		t.Fatalf("Dropped = %d under block policy, want 0", got)
	}
}

// TestBlockTimeoutDetaches: a Block subscriber that holds a publisher
// past its timeout is detached; the backlog stays readable and then
// Recv reports ErrSlowConsumer. Later publishes skip the detached
// subscriber entirely.
func TestBlockTimeoutDetaches(t *testing.T) {
	s := NewStream()
	sub := s.Subscribe(SubOptions{Buffer: 1, Policy: Block, BlockTimeout: 20 * time.Millisecond})
	s.Publish("a", nil)
	start := time.Now()
	s.Publish("b", nil) // times out and detaches
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("publish held for %v, want ~BlockTimeout", el)
	}
	s.Publish("c", nil) // detached: must not block or enqueue
	msg, err := sub.Recv()
	if err != nil || msg.Name != "a" {
		t.Fatalf("Recv backlog = %q, %v; want a, nil", msg.Name, err)
	}
	if _, err := sub.Recv(); !errors.Is(err, ErrSlowConsumer) {
		t.Fatalf("Recv after detach = %v, want ErrSlowConsumer", err)
	}
}

// TestSamplePreservesOrdering is the sample property: whatever subset a
// slow consumer sees arrives in publish order (strictly increasing
// sequence numbers), the publisher never blocks, and accounting covers
// every message either delivered or dropped.
func TestSamplePreservesOrdering(t *testing.T) {
	s := NewStream()
	sub := s.Subscribe(SubOptions{Buffer: 3, Policy: Sample})
	const n = 2000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			s.Publish(fmt.Sprintf("obj-%d", i), nil)
		}
		s.Close()
	}()
	var got []uint64
	for {
		msg, err := sub.Recv()
		if err != nil {
			if !errors.Is(err, ErrStreamClosed) {
				t.Fatalf("Recv: %v", err)
			}
			break
		}
		got = append(got, msg.Seq)
		if len(got)%2 == 0 {
			time.Sleep(50 * time.Microsecond) // fall behind on purpose
		}
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("publisher stalled under sample policy")
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("sampled sequence out of order at %d: %d after %d", i, got[i], got[i-1])
		}
	}
	if delivered := uint64(len(got)); delivered+sub.Dropped() != n {
		t.Fatalf("delivered %d + dropped %d != published %d", delivered, sub.Dropped(), n)
	}
}

func TestStreamCloseDrainsBacklog(t *testing.T) {
	s := NewStream()
	sub := s.Subscribe(SubOptions{Buffer: 8})
	s.Publish("a", []byte("1"))
	s.Publish("b", []byte("2"))
	s.Close()
	s.Publish("late", nil) // dropped: closed stream
	for _, want := range []string{"a", "b"} {
		msg, err := sub.Recv()
		if err != nil || msg.Name != want {
			t.Fatalf("Recv = %q, %v; want %q, nil", msg.Name, err, want)
		}
	}
	if _, err := sub.Recv(); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("Recv after close = %v, want ErrStreamClosed", err)
	}
	late := s.Subscribe(SubOptions{})
	if _, err := late.Recv(); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("Recv on post-close subscription = %v, want ErrStreamClosed", err)
	}
}

func TestSubscriptionCancel(t *testing.T) {
	s := NewStream()
	sub := s.Subscribe(SubOptions{Buffer: 2})
	s.Publish("a", nil)
	sub.Cancel()
	s.Publish("b", nil) // after cancel: not delivered
	if msg, err := sub.Recv(); err != nil || msg.Name != "a" {
		t.Fatalf("Recv backlog = %q, %v; want a, nil", msg.Name, err)
	}
	if _, err := sub.Recv(); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("Recv after cancel = %v, want ErrStreamClosed", err)
	}
	if s.HasSubscribers() {
		t.Fatal("HasSubscribers still true after the only subscriber cancelled")
	}
}

func TestTryRecv(t *testing.T) {
	s := NewStream()
	sub := s.Subscribe(SubOptions{})
	if _, ok, err := sub.TryRecv(); ok || err != nil {
		t.Fatalf("TryRecv on empty live queue = ok=%v err=%v", ok, err)
	}
	s.Publish("a", nil)
	if msg, ok, err := sub.TryRecv(); !ok || err != nil || msg.Name != "a" {
		t.Fatalf("TryRecv = %q ok=%v err=%v", msg.Name, ok, err)
	}
	s.Close()
	if _, ok, err := sub.TryRecv(); ok || !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("TryRecv after close = ok=%v err=%v", ok, err)
	}
}

// TestStreamChurnRace hammers subscribe/receive/cancel from many
// goroutines while publishers keep publishing — the storage-side half
// of the subscriber-churn race (`make stream-race`).
func TestStreamChurnRace(t *testing.T) {
	s := NewStream()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s.Publish(fmt.Sprintf("p%d-%d", p, i), []byte{byte(i)})
			}
		}(p)
	}
	var churn sync.WaitGroup
	for c := 0; c < 8; c++ {
		churn.Add(1)
		go func(c int) {
			defer churn.Done()
			policies := SlowPolicies()
			for i := 0; i < 50; i++ {
				sub := s.Subscribe(SubOptions{Buffer: 2, Policy: policies[i%len(policies)], BlockTimeout: time.Millisecond})
				for j := 0; j < 3; j++ {
					if _, _, err := sub.TryRecv(); err != nil {
						break
					}
				}
				sub.Cancel()
			}
		}(c)
	}
	churn.Wait()
	close(stop)
	wg.Wait()
	s.Close()
}

func TestStreamingWrapper(t *testing.T) {
	inner := NewMemory(nil, 4, 1e8)
	st := NewStreaming(inner)
	if st.Name() != inner.Name()+"+stream" {
		t.Fatalf("Name = %q", st.Name())
	}
	// No subscriber: Put stores without publishing a copy.
	if err := st.Put("quiet", []byte("x")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if n := st.Stream().Published(); n != 0 {
		t.Fatalf("Published with no subscribers = %d, want 0", n)
	}
	sub := st.Subscribe(SubOptions{Buffer: 4})
	payload := []byte("hello stream")
	if err := st.Put("obj-1", payload); err != nil {
		t.Fatalf("Put: %v", err)
	}
	msg, err := sub.Recv()
	if err != nil || msg.Name != "obj-1" || string(msg.Data) != string(payload) {
		t.Fatalf("Recv = %+v, %v", msg, err)
	}
	// The published copy must be independent of the caller's buffer.
	payload[0] = '!'
	if string(msg.Data) != "hello stream" {
		t.Fatal("published payload aliases the caller's buffer")
	}
	// Scatter-gather path: subscriber sees the flattened payload.
	if err := st.PutVec("obj-2", [][]byte{[]byte("ab"), []byte("cd")}); err != nil {
		t.Fatalf("PutVec: %v", err)
	}
	if msg, err = sub.Recv(); err != nil || string(msg.Data) != "abcd" {
		t.Fatalf("Recv after PutVec = %q, %v", msg.Data, err)
	}
	// The inner store saw both objects.
	if got, err := st.Get("obj-2"); err != nil || string(got) != "abcd" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	// PutStream face and helper.
	if err := PutStream(st, "obj-3", []byte("z")); err != nil {
		t.Fatalf("PutStream: %v", err)
	}
	if msg, err = sub.Recv(); err != nil || msg.Name != "obj-3" {
		t.Fatalf("Recv after PutStream = %q, %v", msg.Name, err)
	}
	// Optional faces forward.
	if err := st.Delete("obj-3"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := st.Get("obj-3"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after Delete = %v, want ErrNotFound", err)
	}
	if err := st.Retain("obj-1"); err == nil {
		t.Fatal("Retain over a store without the face = nil, want error")
	}
	if _, ok := st.ObjectCodec("obj-1"); ok {
		t.Fatal("ObjectCodec over a plain store reported info")
	}
	if _, ok := st.ObjectChunks("obj-1"); ok {
		t.Fatal("ObjectChunks over a plain store reported info")
	}
	st.CloseStream()
	if _, err := sub.Recv(); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("Recv after CloseStream = %v, want ErrStreamClosed", err)
	}
}

// TestPutStreamFallback: the helper degrades to a plain Put on stores
// without the streaming face.
func TestPutStreamFallback(t *testing.T) {
	inner := NewMemory(nil, 1, 1e8)
	if err := PutStream(inner, "plain", []byte("p")); err != nil {
		t.Fatalf("PutStream fallback: %v", err)
	}
	if got, err := inner.Get("plain"); err != nil || string(got) != "p" {
		t.Fatalf("Get = %q, %v", got, err)
	}
}

// TestStreamingForwardsCompressedPayloads: stacked outermost over
// Compressing, subscribers receive the raw payload while the inner
// store holds the framed form.
func TestStreamingForwardsCompressedPayloads(t *testing.T) {
	mem := NewMemory(nil, 4, 1e8)
	st := NewStreaming(NewCompressing(mem, CompressionOptions{Codec: "rle"}))
	sub := st.Subscribe(SubOptions{Buffer: 2})
	raw := make([]byte, 4096) // zeros: RLE-friendly
	if err := st.Put("field-it000001", raw); err != nil {
		t.Fatalf("Put: %v", err)
	}
	msg, err := sub.Recv()
	if err != nil || len(msg.Data) != len(raw) {
		t.Fatalf("Recv = %d bytes, %v; want the raw payload", len(msg.Data), err)
	}
	stored, err := mem.Get("field-it000001")
	if err != nil {
		t.Fatalf("inner Get: %v", err)
	}
	if len(stored) >= len(raw) {
		t.Fatalf("inner store holds %d bytes, want framed/compressed (< %d)", len(stored), len(raw))
	}
	if got, err := st.Get("field-it000001"); err != nil || len(got) != len(raw) {
		t.Fatalf("outer Get = %d bytes, %v", len(got), err)
	}
}
