package storage

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestShardedBrokerFallbacks(t *testing.T) {
	// Shard counts below two and PolicyGlobal get the plain broker.
	if _, ok := NewShardedBroker(BrokerOptions{Targets: 8}, 1).(*Broker); !ok {
		t.Fatal("shards=1 did not fall back to *Broker")
	}
	if _, ok := NewShardedBroker(BrokerOptions{Policy: PolicyGlobal, Targets: 8}, 4).(*Broker); !ok {
		t.Fatal("PolicyGlobal did not fall back to *Broker")
	}
	// Shard count is clamped to the target space.
	sb, ok := NewShardedBroker(BrokerOptions{Targets: 3}, 8).(*ShardedBroker)
	if !ok || sb.Shards() != 3 {
		t.Fatalf("shards not clamped to Targets: %T", sb)
	}
}

func TestShardedBrokerPartition(t *testing.T) {
	s := NewShardedBroker(BrokerOptions{Targets: 8}, 4).(*ShardedBroker)
	// Targets resolve mod 8, then split by t mod 4 in ascending shard
	// order with sorted per-shard lists.
	parts := s.partition([]int{6, 1, 9, 5, 13})
	// resolved: {1, 5, 6, 9%8=1, 13%8=5} → {1, 5, 6}; shards: 1→1, 5→1, 6→2.
	if len(parts) != 2 {
		t.Fatalf("got %d parts: %+v", len(parts), parts)
	}
	if parts[0].shard != 1 || len(parts[0].targets) != 2 ||
		parts[0].targets[0] != 1 || parts[0].targets[1] != 5 {
		t.Fatalf("part 0 = %+v", parts[0])
	}
	if parts[1].shard != 2 || len(parts[1].targets) != 1 || parts[1].targets[0] != 6 {
		t.Fatalf("part 1 = %+v", parts[1])
	}
}

// TestShardedBrokerExclusive verifies per-target mutual exclusion holds
// across the shard split: many goroutines hammer the same target while
// others write disjoint targets, and at most one holder may be inside
// the critical section per target at any instant.
func TestShardedBrokerExclusive(t *testing.T) {
	const (
		targets = 8
		workers = 4 // per target
		rounds  = 200
	)
	b := NewShardedBroker(BrokerOptions{Policy: PolicyPerTarget, Targets: targets}, 4)
	var inside [targets]atomic.Int32
	var wg sync.WaitGroup
	for tg := 0; tg < targets; tg++ {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(tg, holder int) {
				defer wg.Done()
				for i := 0; i < rounds; i++ {
					g := b.Acquire(TokenRequest{Holder: holder, Targets: []int{tg}})
					if g.Denied {
						t.Errorf("unexpected denial for target %d", tg)
						return
					}
					if n := inside[tg].Add(1); n != 1 {
						t.Errorf("target %d: %d concurrent holders", tg, n)
					}
					inside[tg].Add(-1)
					g.Release()
				}
			}(tg, tg*workers+w)
		}
	}
	wg.Wait()
	if got := b.Outstanding(); got != 0 {
		t.Fatalf("Outstanding() = %d after all releases", got)
	}
	st := b.Stats()
	if st.Grants != targets*workers*rounds {
		t.Fatalf("Grants = %d, want %d", st.Grants, targets*workers*rounds)
	}
}

// TestShardedBrokerSpanning checks a request whose targets straddle
// shards: it is atomic (holds every target), and exclusivity against
// single-shard writers on each side still holds.
func TestShardedBrokerSpanning(t *testing.T) {
	const rounds = 300
	b := NewShardedBroker(BrokerOptions{Policy: PolicyPerTarget, Targets: 4}, 4)
	var t1, t3 atomic.Int32
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // spanning writer: shards 1 and 3
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			g := b.Acquire(TokenRequest{Holder: 100, Targets: []int{1, 3}})
			if a, c := t1.Add(1), t3.Add(1); a != 1 || c != 1 {
				t.Errorf("spanning grant not exclusive: %d %d", a, c)
			}
			t1.Add(-1)
			t3.Add(-1)
			g.Release()
		}
	}()
	for _, tg := range []int{1, 3} {
		ctr := &t1
		if tg == 3 {
			ctr = &t3
		}
		go func(tg int, ctr *atomic.Int32) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				g := b.Acquire(TokenRequest{Holder: tg, Targets: []int{tg}})
				if n := ctr.Add(1); n != 1 {
					t.Errorf("target %d: %d concurrent holders", tg, n)
				}
				ctr.Add(-1)
				g.Release()
			}
		}(tg, ctr)
	}
	wg.Wait()
	if got := b.Outstanding(); got != 0 {
		t.Fatalf("Outstanding() = %d after all releases", got)
	}
}

// TestShardedBrokerReleaseHolderRollback kills a holder that is queued
// behind a busy shard mid-spanning-acquisition: the denial must roll
// back the shard grants it already held, leaving no token stranded.
func TestShardedBrokerReleaseHolderRollback(t *testing.T) {
	b := NewShardedBroker(BrokerOptions{Policy: PolicyPerTarget, Targets: 4}, 4)

	// Occupy target 2 so the spanning request (0 then 2) takes shard 0
	// and then queues on shard 2.
	blocker := b.Acquire(TokenRequest{Holder: 1, Targets: []int{2}})

	done := make(chan TokenGrant)
	go func() {
		done <- b.Acquire(TokenRequest{Holder: 9, Targets: []int{0, 2}})
	}()

	// Wait until the spanning writer holds target 0 and is queued on
	// shard 2 (in-package test: peek at the shard's queue directly —
	// Outstanding alone cannot distinguish "granted shard 0" from
	// "granted shard 0 and queued on shard 2").
	shard2 := b.(*ShardedBroker).shards[2]
	deadline := time.Now().Add(2 * time.Second)
	for b.Outstanding() != 2 || shard2.QueueLen() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("spanning writer never reached the queued state")
		}
		time.Sleep(time.Millisecond)
	}

	// Kill holder 9: its queued request on shard 2 is canceled, and the
	// rollback must free target 0 too.
	b.ReleaseHolder(9)
	g := <-done
	if !g.Denied {
		t.Fatal("killed holder's acquire was not denied")
	}
	g.Release() // no-op on a denied grant
	blocker.Release()
	if got := b.Outstanding(); got != 0 {
		t.Fatalf("Outstanding() = %d after rollback, want 0", got)
	}

	// The freed targets must be acquirable again, immediately.
	g0 := b.Acquire(TokenRequest{Holder: 2, Targets: []int{0}})
	g2 := b.Acquire(TokenRequest{Holder: 2, Targets: []int{2}})
	if g0.Denied || g2.Denied {
		t.Fatal("targets stranded after rollback")
	}
	g0.Release()
	g2.Release()

	st := b.Stats()
	if st.CanceledRequests == 0 {
		t.Fatal("cancellation not visible in merged stats")
	}
}

// TestShardedBrokerDeathBetweenAcquisitionAndRollback kills a holder
// in the window AFTER the ReleaseHolder sweep could see its shard-0
// grant but BEFORE the spanning acquisition takes shard 2. The sweep
// cannot free a token that is not held yet, so only the death-epoch
// re-check can stop the acquirer from completing with a token owned by
// a dead holder.
func TestShardedBrokerDeathBetweenAcquisitionAndRollback(t *testing.T) {
	b := NewShardedBroker(BrokerOptions{Policy: PolicyPerTarget, Targets: 4}, 4).(*ShardedBroker)
	fired := false
	b.testBetweenShards = func(next int) {
		if fired {
			return
		}
		fired = true
		if next != 2 {
			t.Errorf("hook fired before shard %d, want 2", next)
		}
		// Holder 9 holds shard 0 and nothing else; the sweep frees that
		// and bumps the death epoch.
		if freed := b.ReleaseHolder(9); freed != 1 {
			t.Errorf("ReleaseHolder freed %d tokens, want 1 (shard 0)", freed)
		}
	}
	g := b.Acquire(TokenRequest{Holder: 9, Targets: []int{0, 2}})
	if !fired {
		t.Fatal("request did not span shards; test is vacuous")
	}
	if !g.Denied {
		t.Fatal("acquisition completed for a holder that died mid-spanning-acquire")
	}
	g.Release() // no-op on a denied grant
	if got := b.Outstanding(); got != 0 {
		t.Fatalf("Outstanding() = %d after mid-acquisition death, want 0", got)
	}

	// Both targets must be acquirable again: neither the swept shard-0
	// token nor the epoch-rolled-back shard-2 token may stay stranded.
	g0 := b.Acquire(TokenRequest{Holder: 2, Targets: []int{0}})
	g2 := b.Acquire(TokenRequest{Holder: 2, Targets: []int{2}})
	if g0.Denied || g2.Denied {
		t.Fatal("targets stranded after mid-acquisition death")
	}
	g0.Release()
	g2.Release()

	// The denied spanning request must not appear in the grant ledger.
	if n := b.Stats().GrantsByHolder[9]; n != 0 {
		t.Fatalf("dead holder shows %d request-level grants, want 0", n)
	}
}
