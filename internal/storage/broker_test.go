package storage

import (
	"sync"
	"testing"

	"repro/internal/des"
)

func TestBrokerPerTargetSerializes(t *testing.T) {
	eng := des.NewEngine()
	b := NewBroker(BrokerOptions{Policy: PolicyPerTarget, Targets: 4, Engine: eng})
	var order []int
	for i := 0; i < 3; i++ {
		id := i
		eng.Spawn("w", func(p *des.Proc) {
			g := b.AcquireSim(p, TokenRequest{Holder: id, Targets: []int{1}})
			p.Wait(10)
			order = append(order, id)
			g.Release()
		})
	}
	end := eng.Run()
	if end != 30 {
		t.Fatalf("three exclusive 10s holds should end at 30, got %v", end)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("FIFO order violated: %v", order)
	}
	if b.Outstanding() != 0 {
		t.Fatalf("%d tokens still held after run", b.Outstanding())
	}
	s := b.Stats()
	if s.Grants != 3 || s.ContendedGrants != 2 {
		t.Fatalf("grants=%d contended=%d, want 3/2", s.Grants, s.ContendedGrants)
	}
	if s.WaitTime != 10+20 {
		t.Fatalf("wait time %v, want 30", s.WaitTime)
	}
	if s.GrantsByTarget[1] != 3 {
		t.Fatalf("grants by target: %v", s.GrantsByTarget)
	}
}

func TestBrokerDistinctTargetsOverlap(t *testing.T) {
	eng := des.NewEngine()
	b := NewBroker(BrokerOptions{Policy: PolicyPerTarget, Targets: 4, Engine: eng})
	for i := 0; i < 4; i++ {
		target := i
		eng.Spawn("w", func(p *des.Proc) {
			g := b.AcquireSim(p, TokenRequest{Holder: target, Targets: []int{target}})
			p.Wait(10)
			g.Release()
		})
	}
	if end := eng.Run(); end != 10 {
		t.Fatalf("disjoint targets should run in parallel (end 10), got %v", end)
	}
}

func TestBrokerDeadlineOrdersWaiters(t *testing.T) {
	eng := des.NewEngine()
	b := NewBroker(BrokerOptions{Policy: PolicyDeadline, Targets: 2, Engine: eng})
	var order []int
	// Holder 0 takes the token at t=0; holders 1..3 queue at t=1 in
	// arrival order 1,2,3 but with deadlines 30,10,20.
	deadlines := map[int]float64{1: 30, 2: 10, 3: 20}
	eng.Spawn("first", func(p *des.Proc) {
		g := b.AcquireSim(p, TokenRequest{Holder: 0, Targets: []int{0}, Deadline: 5})
		p.Wait(10)
		order = append(order, 0)
		g.Release()
	})
	for i := 1; i <= 3; i++ {
		id := i
		eng.SpawnAt(1, "late", func(p *des.Proc) {
			g := b.AcquireSim(p, TokenRequest{Holder: id, Targets: []int{0}, Deadline: deadlines[id]})
			p.Wait(1)
			order = append(order, id)
			g.Release()
		})
	}
	eng.Run()
	want := []int{0, 2, 3, 1} // earliest deadline first among the waiters
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order %v, want %v", order, want)
		}
	}
}

func TestBrokerWindowGrantIsAtomic(t *testing.T) {
	eng := des.NewEngine()
	b := NewBroker(BrokerOptions{Policy: PolicyDeadline, Targets: 4, Engine: eng})
	active := map[int]int{}
	overlapped := false
	writer := func(holder int, targets []int, start float64) {
		eng.SpawnAt(start, "w", func(p *des.Proc) {
			g := b.AcquireSim(p, TokenRequest{Holder: holder, Targets: targets})
			for _, tg := range targets {
				active[tg]++
				if active[tg] > 1 {
					overlapped = true
				}
			}
			p.Wait(10)
			for _, tg := range targets {
				active[tg]--
			}
			g.Release()
		})
	}
	writer(0, []int{0, 1, 2}, 0)
	writer(1, []int{2, 3}, 1)
	writer(2, []int{1, 3}, 2)
	eng.Run()
	if overlapped {
		t.Fatal("two writers held the same target at once")
	}
	if b.Outstanding() != 0 {
		t.Fatalf("%d tokens leaked", b.Outstanding())
	}
}

// A wide request parked at the head of the queue reserves its targets:
// later narrow arrivals must not starve it forever.
func TestBrokerWideRequestNotStarved(t *testing.T) {
	eng := des.NewEngine()
	b := NewBroker(BrokerOptions{Policy: PolicyPerTarget, Targets: 2, Engine: eng})
	var wideGranted float64
	eng.Spawn("narrow0", func(p *des.Proc) {
		g := b.AcquireSim(p, TokenRequest{Holder: 0, Targets: []int{0}})
		p.Wait(10)
		g.Release()
	})
	eng.SpawnAt(1, "wide", func(p *des.Proc) {
		g := b.AcquireSim(p, TokenRequest{Holder: 1, Targets: []int{0, 1}})
		wideGranted = p.Now()
		p.Wait(10)
		g.Release()
	})
	// A stream of narrow requests on target 1 that could starve the
	// wide one if they could grab target 1 out from under it.
	for i := 0; i < 5; i++ {
		at := float64(2 + i)
		eng.SpawnAt(at, "narrow1", func(p *des.Proc) {
			g := b.AcquireSim(p, TokenRequest{Holder: 2, Targets: []int{1}})
			p.Wait(10)
			g.Release()
		})
	}
	eng.Run()
	if wideGranted != 10 {
		t.Fatalf("wide request granted at %v, want 10 (right after the first narrow hold)", wideGranted)
	}
}

func TestBrokerGlobalBoundsConcurrency(t *testing.T) {
	eng := des.NewEngine()
	b := NewBroker(BrokerOptions{Policy: PolicyGlobal, Targets: 8, MaxConcurrent: 2, Engine: eng})
	active, peak := 0, 0
	for i := 0; i < 6; i++ {
		id := i
		eng.Spawn("w", func(p *des.Proc) {
			g := b.AcquireSim(p, TokenRequest{Holder: id, Targets: []int{id}})
			active++
			if active > peak {
				peak = active
			}
			p.Wait(10)
			active--
			g.Release()
		})
	}
	if end := eng.Run(); end != 30 {
		t.Fatalf("6 writers / 2 slots / 10s each should end at 30, got %v", end)
	}
	if peak != 2 {
		t.Fatalf("peak concurrency %d, want 2", peak)
	}
}

func TestBrokerReleaseHolderFreesAndCancels(t *testing.T) {
	eng := des.NewEngine()
	b := NewBroker(BrokerOptions{Policy: PolicyPerTarget, Targets: 2, Engine: eng})
	var survivorGranted float64
	deniedSeen := false
	eng.Spawn("doomed", func(p *des.Proc) {
		b.AcquireSim(p, TokenRequest{Holder: 7, Targets: []int{0}})
		// Holder 7 "dies" at t=5 without releasing; ReleaseHolder must
		// reclaim the token.
		p.Wait(100)
	})
	eng.SpawnAt(1, "doomed-queued", func(p *des.Proc) {
		g := b.AcquireSim(p, TokenRequest{Holder: 7, Targets: []int{0}})
		if g.Denied {
			deniedSeen = true
		}
	})
	eng.SpawnAt(2, "survivor", func(p *des.Proc) {
		g := b.AcquireSim(p, TokenRequest{Holder: 1, Targets: []int{0}})
		survivorGranted = p.Now()
		g.Release()
	})
	eng.At(5, func() { b.ReleaseHolder(7) })
	eng.Run()
	if !deniedSeen {
		t.Fatal("queued request of the dead holder was not denied")
	}
	if survivorGranted != 5 {
		t.Fatalf("survivor granted at %v, want 5 (the moment the dead holder's token was reclaimed)", survivorGranted)
	}
	s := b.Stats()
	if s.HolderReleases != 1 || s.CanceledRequests != 1 {
		t.Fatalf("holder releases %d / canceled %d, want 1/1", s.HolderReleases, s.CanceledRequests)
	}
	if b.Outstanding() != 0 {
		t.Fatalf("%d tokens leaked", b.Outstanding())
	}
}

func TestBrokerRealFaceExcludesConcurrentWriters(t *testing.T) {
	b := NewBroker(BrokerOptions{Policy: PolicyDeadline, Targets: 3})
	var mu sync.Mutex
	active := map[int]int{}
	overlap := false
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			target := id % 3
			g := b.Acquire(TokenRequest{Holder: id, Targets: []int{target}, Deadline: float64(id)})
			mu.Lock()
			active[target]++
			if active[target] > 1 {
				overlap = true
			}
			mu.Unlock()
			mu.Lock()
			active[target]--
			mu.Unlock()
			g.Release()
		}(i)
	}
	wg.Wait()
	if overlap {
		t.Fatal("real face granted the same target twice concurrently")
	}
	if b.Outstanding() != 0 {
		t.Fatalf("%d tokens leaked", b.Outstanding())
	}
	if s := b.Stats(); s.Grants != 24 {
		t.Fatalf("grants %d, want 24", s.Grants)
	}
}

func TestBrokerReleaseIdempotent(t *testing.T) {
	eng := des.NewEngine()
	b := NewBroker(BrokerOptions{Policy: PolicyPerTarget, Targets: 1, Engine: eng})
	eng.Spawn("w", func(p *des.Proc) {
		g := b.AcquireSim(p, TokenRequest{Holder: 0, Targets: []int{0}})
		g.Release()
		g.Release() // second release must be a no-op
	})
	eng.Run()
	if b.Outstanding() != 0 {
		t.Fatal("token leaked")
	}
}

func TestValidateTokenPolicy(t *testing.T) {
	for _, p := range []TokenPolicy{PolicyPerTarget, PolicyGlobal, PolicyDeadline} {
		if err := ValidateTokenPolicy(p); err != nil {
			t.Fatalf("valid policy %q rejected: %v", p, err)
		}
	}
	if err := ValidateTokenPolicy("nonsense"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestAccountingAddBroker(t *testing.T) {
	var acc Accounting
	acc.AddBroker(BrokerStats{Grants: 3, WaitTime: 1.5, GrantsByTarget: map[int]int{2: 3}})
	acc.AddBroker(BrokerStats{Grants: 1, WaitTime: 0.5, GrantsByTarget: map[int]int{2: 1, 4: 1}})
	if acc.TokenGrants != 4 || acc.TokenWaitTime != 2.0 {
		t.Fatalf("merged grants=%d wait=%v", acc.TokenGrants, acc.TokenWaitTime)
	}
	if acc.GrantsByTarget[2] != 4 || acc.GrantsByTarget[4] != 1 {
		t.Fatalf("merged by-target: %v", acc.GrantsByTarget)
	}
}

// Fair-share ordering: the waiter whose tenant has consumed the least
// weight-normalized bytes is granted first, regardless of arrival
// order. Tenant 2's small Weight inflates its normalized consumption,
// pushing it behind tenant 1 even though it moved fewer raw bytes.
func TestBrokerFairShareOrdersByServedBytes(t *testing.T) {
	eng := des.NewEngine()
	b := NewBroker(BrokerOptions{Policy: PolicyFairShare, Targets: 1, Engine: eng})
	var order []int
	hold := func(at float64, tenant, holder int, bytes, weight, dur float64) {
		eng.SpawnAt(at, "w", func(p *des.Proc) {
			g := b.AcquireSim(p, TokenRequest{
				Holder: holder, Tenant: tenant, Targets: []int{0},
				Bytes: bytes, Weight: weight,
			})
			order = append(order, tenant)
			p.Wait(dur)
			g.Release()
		})
	}
	// Warm-up consumption: tenant 1 moves 1000 bytes at weight 1,
	// tenant 2 moves 400 bytes at weight 0.25 (normalized 1600). The
	// second warm-up holds the token until t=10 so a queue forms.
	hold(0, 1, 11, 1000, 0, 1)
	hold(1, 2, 12, 400, 0.25, 9)
	// Waiters queue in arrival order 1, 2, 3; fair-share must grant
	// tenant 3 (served 0), then 1 (1000), then 2 (1600).
	hold(2, 1, 11, 10, 0, 1)
	hold(3, 2, 12, 10, 0.25, 1)
	hold(4, 3, 13, 10, 0, 1)
	eng.Run()
	want := []int{1, 2, 3, 1, 2}
	if len(order) != len(want) {
		t.Fatalf("grant order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order %v, want %v", order, want)
		}
	}
	st := b.Stats()
	if st.BytesByTenant[1] != 1010 || st.BytesByTenant[2] != 410 || st.BytesByTenant[3] != 10 {
		t.Fatalf("BytesByTenant = %v", st.BytesByTenant)
	}
	if st.GrantsByHolder[11] != 2 || st.GrantsByHolder[12] != 2 || st.GrantsByHolder[13] != 1 {
		t.Fatalf("GrantsByHolder = %v", st.GrantsByHolder)
	}
}

// Priority outranks deadline under PolicyDeadline: a high-priority
// tenant's waiter is granted before lower-priority waiters with
// earlier deadlines.
func TestBrokerDeadlinePriorityFirst(t *testing.T) {
	eng := des.NewEngine()
	b := NewBroker(BrokerOptions{Policy: PolicyDeadline, Targets: 1, Engine: eng})
	var order []int
	eng.Spawn("first", func(p *des.Proc) {
		g := b.AcquireSim(p, TokenRequest{Holder: 0, Targets: []int{0}, Deadline: 5})
		p.Wait(10)
		order = append(order, 0)
		g.Release()
	})
	// Holder 1 has the worst deadline but Priority 1; holders 2 and 3
	// keep the default priority and sort by deadline among themselves.
	specs := []struct {
		holder, prio int
		deadline     float64
	}{
		{1, 1, 30}, {2, 0, 10}, {3, 0, 20},
	}
	for _, s := range specs {
		s := s
		eng.SpawnAt(1, "late", func(p *des.Proc) {
			g := b.AcquireSim(p, TokenRequest{
				Holder: s.holder, Priority: s.prio, Targets: []int{0}, Deadline: s.deadline,
			})
			p.Wait(1)
			order = append(order, s.holder)
			g.Release()
		})
	}
	eng.Run()
	want := []int{0, 1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order %v, want %v", order, want)
		}
	}
}
