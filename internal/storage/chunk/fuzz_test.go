package chunk

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/storage"
)

// FuzzChunkFrameDecode hardens the recipe decoder against hostile
// stores: corrupt hashes, truncated chunk lists and inflated counts
// must surface as typed errors — never a panic, and never an
// allocation the object's own length cannot justify.
func FuzzChunkFrameDecode(f *testing.F) {
	valid, err := EncodeRecipe([]storage.ChunkRef{
		{Hash: Sum([]byte("alpha")), Bytes: 5},
		{Hash: Sum([]byte("beta")), Bytes: 2048},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-7])        // truncated chunk list
	f.Add(valid[:recipeHeaderLen])     // header only, entries missing
	f.Add([]byte("DCK1"))              // bare magic
	f.Add([]byte("DCF1 not a recipe")) // foreign magic
	f.Add([]byte{})                    // empty
	huge := append([]byte(nil), valid...)
	huge[4], huge[5], huge[6], huge[7] = 0xff, 0xff, 0xff, 0xff // absurd count
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		refs, rawSize, err := DecodeRecipe(data)
		if err != nil {
			if !errors.Is(err, ErrNotChunked) && !errors.Is(err, ErrCorruptRecipe) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// The per-entry footprint bounds any successful decode: a corrupt
		// count cannot have driven an allocation beyond the input length.
		if len(refs)*recipeEntryLen > len(data) {
			t.Fatalf("%d entries decoded from %d bytes", len(refs), len(data))
		}
		var sum int64
		for _, r := range refs {
			if r.Bytes <= 0 || len(r.Hash) != 64 {
				t.Fatalf("invalid ref survived decode: %+v", r)
			}
			sum += int64(r.Bytes)
		}
		if sum != rawSize {
			t.Fatalf("decoded sizes sum to %d, header said %d", sum, rawSize)
		}
		// Round trip: re-encoding a valid decode must reproduce the
		// canonical bytes, and decode again identically.
		enc, err := EncodeRecipe(refs)
		if err != nil {
			t.Fatalf("re-encode of valid decode failed: %v", err)
		}
		refs2, raw2, err := DecodeRecipe(enc)
		if err != nil || raw2 != rawSize || len(refs2) != len(refs) {
			t.Fatalf("re-decode mismatch (err %v)", err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatalf("valid recipe did not re-encode canonically")
		}
	})
}
