package chunk

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/des"
	"repro/internal/storage"
)

func newMem() *storage.Memory { return storage.NewMemory(nil, 4, 1e9) }

// TestDedupStoreRoundTrip: a chunked object reads back byte-identical,
// and re-storing an edited copy pays only for the changed chunks.
func TestDedupStoreRoundTrip(t *testing.T) {
	mem := newMem()
	st := New(mem, Options{})
	data := payload(42, 64<<10)
	if err := st.Put("obj-it000001", data); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get("obj-it000001")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	info, ok := st.ObjectChunks("obj-it000001")
	if !ok || len(info.Chunks) < 2 {
		t.Fatalf("expected a multi-chunk decomposition, got ok=%v chunks=%d", ok, len(info.Chunks))
	}
	if info.RawBytes != int64(len(data)) || info.NewBytes != info.RawBytes {
		t.Fatalf("first store should be all-new: %+v", info)
	}

	// Overwrite a quarter of the payload and store it as the next
	// iteration: at least half the volume must dedup.
	edited := append([]byte(nil), data...)
	copy(edited[8<<10:], payload(43, 16<<10))
	if err := st.Put("obj-it000002", edited); err != nil {
		t.Fatal(err)
	}
	info2, ok := st.ObjectChunks("obj-it000002")
	if !ok {
		t.Fatal("second iteration lost its chunk info")
	}
	if info2.NewBytes >= info2.RawBytes/2 {
		t.Fatalf("25%% overwrite stored %d of %d bytes new — dedup not working",
			info2.NewBytes, info2.RawBytes)
	}
	acc := st.Accounting()
	if acc.ChunksDeduped == 0 || acc.DedupBytesSaved <= 0 {
		t.Fatalf("dedup counters empty: %+v", acc)
	}
	got2, err := st.Get("obj-it000002")
	if err != nil || !bytes.Equal(got2, edited) {
		t.Fatalf("edited round trip mismatch (err %v)", err)
	}
}

// TestDedupStorePassThrough: small objects are stored raw (still
// registered for retention), and List hides the chunk namespace.
func TestDedupStorePassThrough(t *testing.T) {
	mem := newMem()
	st := New(mem, Options{})
	small := []byte("a tiny manifest payload")
	if err := st.Put("job-manifest", small); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.ObjectChunks("job-manifest"); ok {
		t.Fatal("pass-through object should report no chunk info")
	}
	raw, err := mem.Get("job-manifest")
	if err != nil || !bytes.Equal(raw, small) {
		t.Fatalf("pass-through object should land unchunked (err %v)", err)
	}
	if err := st.Put("big", payload(1, 32<<10)); err != nil {
		t.Fatal(err)
	}
	names, err := st.List("")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if len(n) >= 6 && n[:6] == "chunk/" {
			t.Fatalf("List leaked internal chunk object %q", n)
		}
	}
	inner, _ := mem.List("chunk/")
	if len(inner) == 0 {
		t.Fatal("no chunk objects landed on the inner backend")
	}
}

// TestDedupStoreRecipeMagicPayload: a small payload that happens to
// start with the recipe magic must not be passed through raw (Get would
// misparse it) — the store chunks it instead and it round-trips.
func TestDedupStoreRecipeMagicPayload(t *testing.T) {
	st := New(newMem(), Options{})
	tricky := append([]byte("DCK1"), payload(5, 100)...)
	if err := st.Put("tricky", tricky); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get("tricky")
	if err != nil || !bytes.Equal(got, tricky) {
		t.Fatalf("recipe-magic payload did not round-trip (err %v)", err)
	}
}

// TestDedupStoreRetainReleaseSweep: releasing an object makes the next
// sweep collect it and exactly the chunks no live object still
// references; retained objects keep every chunk they need.
func TestDedupStoreRetainReleaseSweep(t *testing.T) {
	mem := newMem()
	st := New(mem, Options{})
	base := payload(9, 48<<10)
	edited := append([]byte(nil), base...)
	copy(edited[4<<10:], payload(10, 8<<10))
	if err := st.Put("it1", base); err != nil {
		t.Fatal(err)
	}
	if err := st.Put("it2", edited); err != nil {
		t.Fatal(err)
	}
	if err := st.Release("it1"); err != nil {
		t.Fatal(err)
	}
	stats, err := st.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Objects != 1 {
		t.Fatalf("sweep collected %d objects, want 1", stats.Objects)
	}
	if stats.Chunks == 0 {
		t.Fatal("sweep freed no chunks although it1 had unique ones")
	}
	if _, err := st.Get("it1"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("swept object still readable (err %v)", err)
	}
	got, err := st.Get("it2")
	if err != nil || !bytes.Equal(got, edited) {
		t.Fatalf("retained object broken after sweep (err %v)", err)
	}
	// Releasing the survivor frees everything.
	if err := st.Release("it2"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Sweep(); err != nil {
		t.Fatal(err)
	}
	left, _ := mem.List("chunk/")
	if len(left) != 0 {
		t.Fatalf("%d chunks left after everything was released", len(left))
	}
	acc := st.Accounting()
	if acc.ChunksCollected == 0 || acc.ChunkBytesFreed == 0 {
		t.Fatalf("GC counters empty: %+v", acc)
	}
}

// TestDedupStoreResurrection: a released object survives if it is
// retained again before any sweep runs.
func TestDedupStoreResurrection(t *testing.T) {
	st := New(newMem(), Options{})
	data := payload(11, 16<<10)
	if err := st.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	if err := st.Release("obj"); err != nil {
		t.Fatal(err)
	}
	if err := st.Retain("obj"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Sweep(); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get("obj")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("resurrected object broken (err %v)", err)
	}
}

// TestDedupStoreRetainFreshProcess: a second store over the same
// backend (a restarted process with an empty index) can retain an
// object it never stored, and its sweep then protects that object's
// chunks while collecting everything else.
func TestDedupStoreRetainFreshProcess(t *testing.T) {
	mem := newMem()
	first := New(mem, Options{})
	keep := payload(12, 32<<10)
	drop := payload(13, 32<<10)
	if err := first.Put("keep", keep); err != nil {
		t.Fatal(err)
	}
	if err := first.Put("drop", drop); err != nil {
		t.Fatal(err)
	}

	second := New(mem, Options{})
	if err := second.Retain("keep"); err != nil {
		t.Fatal(err)
	}
	// The fresh index never saw "drop": its sweep collects only chunks
	// it knows to be garbage, which is none — so "drop" survives too.
	// But after the fresh process retains and releases it, it goes.
	if err := second.Retain("drop"); err != nil {
		t.Fatal(err)
	}
	if err := second.Release("drop"); err != nil {
		t.Fatal(err)
	}
	if err := second.Release("drop"); err != nil {
		t.Fatal(err)
	}
	if _, err := second.Sweep(); err != nil {
		t.Fatal(err)
	}
	got, err := second.Get("keep")
	if err != nil || !bytes.Equal(got, keep) {
		t.Fatalf("retained object broken after fresh-process sweep (err %v)", err)
	}
	if _, err := second.Get("drop"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("released object still readable in fresh process (err %v)", err)
	}
}

// TestDedupStoreDanglingChunk: a recipe whose chunk was deleted behind
// the store's back surfaces ErrDanglingChunk, not garbage data.
func TestDedupStoreDanglingChunk(t *testing.T) {
	mem := newMem()
	st := New(mem, Options{})
	if err := st.Put("obj", payload(14, 16<<10)); err != nil {
		t.Fatal(err)
	}
	info, ok := st.ObjectChunks("obj")
	if !ok {
		t.Fatal("no chunk info")
	}
	if err := mem.Delete(ChunkObjectName(info.Chunks[0].Hash)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get("obj"); !errors.Is(err, ErrDanglingChunk) {
		t.Fatalf("want ErrDanglingChunk, got %v", err)
	}
}

// TestDedupStoreCorruptChunk: a chunk whose stored bytes no longer
// match its hash is rejected, not silently reassembled.
func TestDedupStoreCorruptChunk(t *testing.T) {
	mem := newMem()
	st := New(mem, Options{})
	if err := st.Put("obj", payload(15, 16<<10)); err != nil {
		t.Fatal(err)
	}
	info, _ := st.ObjectChunks("obj")
	name := ChunkObjectName(info.Chunks[0].Hash)
	raw, err := mem.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xff
	if err := mem.Put(name, raw); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get("obj"); !errors.Is(err, ErrCorruptRecipe) {
		t.Fatalf("want ErrCorruptRecipe, got %v", err)
	}
}

// TestDedupStoreOverCompression: the dedup store layered over the
// compression pipeline — the production stacking — still round-trips;
// chunks are individually framed by the inner wrapper and transparently
// decoded on the way back.
func TestDedupStoreOverCompression(t *testing.T) {
	inner := storage.NewCompressing(newMem(), storage.CompressionOptions{Codec: "flate"})
	st := New(inner, Options{})
	// Compressible data: repeated structure plus noise.
	data := bytes.Repeat(payload(16, 1<<10), 32)
	if err := st.Put("obj-it000001", data); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get("obj-it000001")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip through compression mismatch (err %v)", err)
	}
	// A sweep over the layered stack must forward deletes to the base.
	if err := st.Release("obj-it000001"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Sweep(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get("obj-it000001"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("swept object still readable through compression (err %v)", err)
	}
}

// TestDedupStoreConcurrentSweep runs writers, retention churn and GC
// sweeps concurrently (the -race gate for the store): no chunk
// referenced by a retained object may ever be collected, so every
// object still live at the end must read back intact.
func TestDedupStoreConcurrentSweep(t *testing.T) {
	st := New(newMem(), Options{})
	const writers = 4
	const perWriter = 20
	var wg sync.WaitGroup
	errc := make(chan error, writers+1)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := payload(int64(100+w), 24<<10)
			for i := 0; i < perWriter; i++ {
				data := append([]byte(nil), base...)
				copy(data[(i%8)<<10:], payload(int64(1000*w+i), 2<<10))
				name := fmt.Sprintf("w%d-it%06d", w, i)
				if err := st.Put(name, data); err != nil {
					errc <- err
					return
				}
				// Keep a window of 3 iterations; release the rest.
				if i >= 3 {
					if err := st.Release(fmt.Sprintf("w%d-it%06d", w, i-3)); err != nil {
						errc <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if _, err := st.Sweep(); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if _, err := st.Sweep(); err != nil {
		t.Fatal(err)
	}
	// The last 3 iterations of every writer are still retained: each
	// must reassemble exactly.
	for w := 0; w < writers; w++ {
		for i := perWriter - 3; i < perWriter; i++ {
			name := fmt.Sprintf("w%d-it%06d", w, i)
			got, err := st.Get(name)
			if err != nil {
				t.Fatalf("%s unreadable after concurrent sweeps: %v", name, err)
			}
			want := append([]byte(nil), payload(int64(100+w), 24<<10)...)
			copy(want[(i%8)<<10:], payload(int64(1000*w+i), 2<<10))
			if !bytes.Equal(got, want) {
				t.Fatalf("%s corrupted after concurrent sweeps", name)
			}
		}
	}
}

// TestDedupStoreDESFace: the simulated face charges hash CPU and
// forwards only the assumed-new fraction of each write, while reads
// forward the full raw volume.
func TestDedupStoreDESFace(t *testing.T) {
	eng := des.NewEngine()
	mem := storage.NewMemory(eng, 4, 1e9)
	st := New(mem, Options{AssumedNewFraction: 0.25, Engine: eng})
	const vol = 8 << 20
	eng.Spawn("writer", func(p *des.Proc) {
		st.Write(p, 0, vol, storage.BigSequential)
		st.Read(p, 0, vol, storage.BigSequential)
	})
	eng.Run()
	acc := st.Accounting()
	if acc.ChunkHashTime <= 0 {
		t.Fatalf("no hash CPU charged: %+v", acc)
	}
	// Written volume: ~25% of raw plus recipe overhead, far below half.
	if acc.BytesWritten >= vol/2 {
		t.Fatalf("DES face forwarded %.0f of %d bytes — dedup fraction not applied", acc.BytesWritten, vol)
	}
	if acc.BytesWritten <= vol/5 {
		t.Fatalf("DES face forwarded %.0f bytes — below the 25%% new fraction", acc.BytesWritten)
	}
	if acc.BytesRead != vol {
		t.Fatalf("restore read %.0f bytes, want the full %d raw volume", acc.BytesRead, vol)
	}
	if acc.DedupBytesSaved <= 0 {
		t.Fatalf("no dedup savings recorded: %+v", acc)
	}
}
