package chunk

import (
	"bytes"
	"math/rand"
	"testing"
)

// payload builds a reproducible pseudo-random payload.
func payload(seed int64, n int) []byte {
	r := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	r.Read(b)
	return b
}

// reassemble concatenates a chunk list.
func reassemble(chunks [][]byte) []byte {
	var out []byte
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out
}

// hashMultiset counts chunk hashes with multiplicity.
func hashMultiset(chunks [][]byte) map[string]int {
	m := map[string]int{}
	for _, c := range chunks {
		m[Sum(c)]++
	}
	return m
}

// sharedBytes sums the raw volume of chunks present in both multisets.
func sharedBytes(a, b [][]byte) int64 {
	bm := hashMultiset(b)
	sizes := map[string]int{}
	for _, c := range b {
		sizes[Sum(c)] = len(c)
	}
	var n int64
	for h, ca := range hashMultiset(a) {
		cb := bm[h]
		if cb < ca {
			ca = cb
		}
		n += int64(ca * sizes[h])
	}
	return n
}

// TestChunkSplitInvariants checks, across sizes and seeds, that Split
// is lossless, deterministic, and respects the min/max bounds.
func TestChunkSplitInvariants(t *testing.T) {
	p := Params{}.withDefaults()
	for _, size := range []int{0, 1, 100, p.Min, p.Min + 1, 4 << 10, 64 << 10, 256 << 10} {
		for seed := int64(1); seed <= 3; seed++ {
			data := payload(seed, size)
			chunks := Split(data, Params{})
			if !bytes.Equal(reassemble(chunks), data) {
				t.Fatalf("size %d seed %d: reassembly mismatch", size, seed)
			}
			again := Split(data, Params{})
			if len(again) != len(chunks) {
				t.Fatalf("size %d seed %d: non-deterministic chunk count", size, seed)
			}
			for i, c := range chunks {
				if !bytes.Equal(c, again[i]) {
					t.Fatalf("size %d seed %d: non-deterministic chunk %d", size, seed, i)
				}
				if len(c) > p.Max {
					t.Fatalf("size %d seed %d: chunk %d is %d bytes, max %d", size, seed, i, len(c), p.Max)
				}
				if i < len(chunks)-1 && len(c) < p.Min {
					t.Fatalf("size %d seed %d: non-final chunk %d is %d bytes, min %d",
						size, seed, i, len(c), p.Min)
				}
			}
		}
	}
}

// TestChunkBoundaryStability is the property the dedup layer rests on:
// editing a span of the payload changes only the chunks overlapping
// (or within one resync window of) that span — everything else keeps
// its content hash and deduplicates. The unshared volume between the
// original and the edited payload must stay within the edit span plus
// a bounded resync region, at every edit offset and payload size.
func TestChunkBoundaryStability(t *testing.T) {
	p := Params{}.withDefaults()
	const editSpan = 37
	// Chunks overlapping the edit plus the max-clamped resync run:
	// generous but still a small fraction of the larger payloads.
	slack := int64(editSpan + 4*p.Max)
	for _, size := range []int{8 << 10, 32 << 10, 128 << 10} {
		for seed := int64(1); seed <= 3; seed++ {
			data := payload(seed, size)
			base := Split(data, Params{})
			for _, off := range []int{0, size / 3, size / 2, size - editSpan - 1} {
				edited := append([]byte(nil), data...)
				for i := 0; i < editSpan; i++ {
					edited[off+i] ^= 0xa5
				}
				mod := Split(edited, Params{})
				if !bytes.Equal(reassemble(mod), edited) {
					t.Fatalf("size %d seed %d off %d: reassembly mismatch", size, seed, off)
				}
				unshared := int64(size) - sharedBytes(base, mod)
				if unshared > slack {
					t.Errorf("size %d seed %d off %d: %d bytes unshared after a %d-byte edit (slack %d)",
						size, seed, off, unshared, editSpan, slack)
				}
			}
		}
	}
}

// TestChunkInsertStability checks the harder variant: inserting bytes
// shifts everything after the edit, and content-defined boundaries must
// still resync (a fixed-size chunker would lose every following chunk).
func TestChunkInsertStability(t *testing.T) {
	p := Params{}.withDefaults()
	size := 64 << 10
	data := payload(7, size)
	base := Split(data, Params{})
	off := size / 2
	ins := payload(8, 100)
	edited := append(append(append([]byte(nil), data[:off]...), ins...), data[off:]...)
	mod := Split(edited, Params{})
	unshared := int64(len(edited)) - sharedBytes(base, mod)
	if slack := int64(len(ins) + 4*p.Max); unshared > slack {
		t.Errorf("insert: %d bytes unshared after a %d-byte insert (slack %d)", unshared, len(ins), slack)
	}
}

// TestChunkParamsNormalization pins the defaults and the power-of-two
// rounding the boundary mask depends on.
func TestChunkParamsNormalization(t *testing.T) {
	p := Params{}.withDefaults()
	if p.Min != DefaultMin || p.Avg != DefaultAvg || p.Max != DefaultMax {
		t.Fatalf("defaults: got %+v", p)
	}
	p = Params{Min: 100, Avg: 3000, Max: 5000}.withDefaults()
	if p.Avg != 2048 {
		t.Fatalf("avg 3000 should round to 2048, got %d", p.Avg)
	}
	p = Params{Min: 4096, Avg: 100, Max: 200}.withDefaults()
	if p.Avg < p.Min || p.Max < p.Avg {
		t.Fatalf("normalization left inconsistent params %+v", p)
	}
}
