package chunk

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/des"
	"repro/internal/storage"
)

// DefaultHashRate is the dedicated-core chunk+hash throughput in raw
// bytes per second the cost model charges: rolling-hash boundary
// detection plus SHA-256 on one core lands near 1 GB/s, an order of
// magnitude above the flate codec and in the rle/delta band — cheap
// enough that §IV.D spare time absorbs it.
const DefaultHashRate = 1e9

// Options configure the dedup Store.
type Options struct {
	// Params bound the content-defined chunk sizes (zero fields take the
	// package defaults).
	Params Params
	// HashRate is the dedicated-core chunking+hashing throughput in raw
	// bytes per second, charged on both faces (default DefaultHashRate).
	HashRate float64
	// AssumedNewFraction is the fraction of each simulated write the DES
	// face assumes has not been stored before and must travel to the
	// inner backend — the model's stand-in for the overwrite fraction,
	// the way CodecProfile.AssumedRatio stands in for real compression.
	// Default 1 (no dedup assumed).
	AssumedNewFraction float64
	// Engine lets the DES face charge hash CPU on WriteAsync/ReadAsync
	// (which have no blocking proc to wait on). nil is fine when only
	// the real object face or the blocking simulated face is used.
	Engine *des.Engine
}

func (o Options) withDefaults() Options {
	o.Params = o.Params.withDefaults()
	if o.HashRate <= 0 {
		o.HashRate = DefaultHashRate
	}
	if o.AssumedNewFraction <= 0 || o.AssumedNewFraction > 1 {
		o.AssumedNewFraction = 1
	}
	return o
}

// chunkEntry is the store's index record for one content-addressed
// chunk: how many live object recipes reference it (one count per
// recipe occurrence) and its raw size.
type chunkEntry struct {
	refs int
	size int
}

// objectEntry is the index record for one stored object: its reference
// count (Put starts it at one; Retain/Release move it) and the chunk
// decomposition manifests embed.
type objectEntry struct {
	refs int
	info storage.ChunkInfo
}

// SweepStats reports what one GC sweep reclaimed.
type SweepStats struct {
	// Objects is the number of zero-reference recipes/objects deleted.
	Objects int
	// Chunks is the number of unreferenced chunks deleted, BytesFreed
	// their total raw payload.
	Chunks     int
	BytesFreed int64
}

// Store layers content-addressed deduplication over any inner backend —
// the incremental-checkpoint path. It has the same two faces as every
// backend:
//
// Real face: Put splits the payload at content-defined boundaries,
// stores each chunk the inner backend has not seen under its hash
// ("chunk/<hex>"), and writes a small recipe (see recipe.go) under the
// object's own name — so iteration N+1 of a slowly-changing variable
// costs only its changed chunks. Get transparently reassembles recipes
// (and passes plain objects through), verifying every chunk against its
// hash. Objects smaller than twice the minimum chunk size are stored
// raw — chunking them could not dedup anything — but still registered
// for retention, so manifests age out with their data objects.
//
// GC: every stored object starts with one reference; Retain/Release
// move the count and Sweep deletes zero-reference objects, then every
// chunk no live object references. The store's single mutex makes the
// Put-time dedup check atomic with Sweep's collection, so a chunk can
// never be judged "already stored" by a Put while a sweep deletes it.
//
// Simulated face: Write charges chunk+hash CPU on the calling proc —
// the dedicated core — and forwards only the assumed-new fraction of
// the volume (plus recipe overhead) to the inner backend; Read forwards
// the full raw volume and charges verify CPU. The ledger grows
// ChunkHashTime and DedupBytesSaved on top of the inner accounting.
//
// Layering: wrap Store outermost (chunk.New(storage.NewCompressing(...)))
// so each chunk and recipe is compressed individually by the inner
// pipeline and dedup operates on raw, stable bytes — compressing first
// would smear a one-byte edit across the whole compressed stream and
// destroy dedup.
type Store struct {
	storage.Backend
	opts Options

	mu      sync.Mutex
	chunks  map[string]*chunkEntry
	objects map[string]*objectEntry

	hashTime     float64
	dedupSaved   float64
	chunksStored int
	chunksDedup  int
	bytesStored  int64
	bytesDedup   int64
	collected    int
	bytesFreed   int64
}

// New wraps inner with the dedup chunk store.
func New(inner storage.Backend, opts Options) *Store {
	return &Store{
		Backend: inner,
		opts:    opts.withDefaults(),
		chunks:  map[string]*chunkEntry{},
		objects: map[string]*objectEntry{},
	}
}

// Name implements Backend: the inner name tagged with the dedup layer.
func (s *Store) Name() string { return s.Backend.Name() + "+dedup" }

// Inner returns the wrapped backend.
func (s *Store) Inner() storage.Backend { return s.Backend }

// passThreshold is the size below which chunking cannot dedup anything
// (a single chunk would cover the whole object).
func (s *Store) passThreshold() int { return 2 * s.opts.Params.Min }

// Put implements ObjectStore: chunk, dedup, store new chunks, store the
// recipe. Small payloads pass through raw unless they would collide
// with the recipe magic.
func (s *Store) Put(name string, data []byte) error {
	if len(data) < s.passThreshold() && !IsRecipe(data) {
		if err := s.Backend.Put(name, data); err != nil {
			return err
		}
		n := int64(len(data))
		s.mu.Lock()
		s.replaceLocked(name, &objectEntry{refs: 1,
			info: storage.ChunkInfo{RawBytes: n, NewBytes: n}})
		s.mu.Unlock()
		return nil
	}
	pieces := Split(data, s.opts.Params)
	refs := make([]storage.ChunkRef, len(pieces))
	for i, p := range pieces {
		refs[i] = storage.ChunkRef{Hash: Sum(p), Bytes: len(p)}
	}
	recipe, err := EncodeRecipe(refs)
	if err != nil {
		return err
	}
	// The whole dedup-check/store/index transaction runs under the store
	// mutex: a sweep can never collect a chunk between this Put judging
	// it "already stored" and the recipe landing.
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hashTime += float64(len(data)) / s.opts.HashRate
	var newBytes int64
	for i, p := range pieces {
		h := refs[i].Hash
		if e, ok := s.chunks[h]; ok {
			e.refs++
			s.chunksDedup++
			s.bytesDedup += int64(len(p))
			s.dedupSaved += float64(len(p))
			continue
		}
		if err := s.Backend.Put(ChunkObjectName(h), p); err != nil {
			s.unrefLocked(refs[:i])
			return err
		}
		s.chunks[h] = &chunkEntry{refs: 1, size: len(p)}
		s.chunksStored++
		s.bytesStored += int64(len(p))
		newBytes += int64(len(p))
	}
	if err := s.Backend.Put(name, recipe); err != nil {
		s.unrefLocked(refs)
		return err
	}
	s.replaceLocked(name, &objectEntry{refs: 1, info: storage.ChunkInfo{
		Chunks:   refs,
		RawBytes: int64(len(data)),
		NewBytes: newBytes,
	}})
	return nil
}

// PutVec implements VecStore: the chunker needs one contiguous view of
// the payload, so the segments are gathered once here — the same single
// copy a pre-flattened Put would have paid.
func (s *Store) PutVec(name string, segs [][]byte) error {
	return s.Put(name, storage.FlattenSegs(segs))
}

// unrefLocked rolls back the chunk references a failed Put took (newly
// stored chunks drop to zero references and the next sweep reclaims
// them). Callers hold s.mu.
func (s *Store) unrefLocked(refs []storage.ChunkRef) {
	for _, r := range refs {
		if e, ok := s.chunks[r.Hash]; ok {
			e.refs--
		}
	}
}

// replaceLocked installs an object's index entry. Overwriting a name
// drops the old entry's chunk references (its recipe is gone from the
// backend) but keeps its reference count — the object's identity, and
// whatever retention pinned it, survives the overwrite. Callers hold
// s.mu.
func (s *Store) replaceLocked(name string, e *objectEntry) {
	if old, ok := s.objects[name]; ok {
		s.unrefLocked(old.info.Chunks)
		e.refs = old.refs
	}
	s.objects[name] = e
}

// Get implements ObjectReader: recipes are transparently reassembled
// from their chunks — each fetched chunk is verified against its hash —
// and plain objects pass through byte-for-byte. Get is stateless (it
// needs no index entry), so a fresh process can restore a store left by
// an earlier run.
func (s *Store) Get(name string) ([]byte, error) {
	obj, err := s.Backend.Get(name)
	if err != nil || !IsRecipe(obj) {
		return obj, err
	}
	refs, rawSize, err := DecodeRecipe(obj)
	if err != nil {
		return nil, fmt.Errorf("chunk: object %q: %w", name, err)
	}
	out := make([]byte, 0, rawSize)
	for i, r := range refs {
		cb, err := s.Backend.Get(ChunkObjectName(r.Hash))
		if errors.Is(err, storage.ErrNotFound) {
			return nil, fmt.Errorf("%w: object %q chunk %d/%d (%s)",
				ErrDanglingChunk, name, i, len(refs), r.Hash)
		}
		if err != nil {
			return nil, fmt.Errorf("chunk: object %q chunk %d/%d: %w", name, i, len(refs), err)
		}
		if len(cb) != r.Bytes || Sum(cb) != r.Hash {
			return nil, fmt.Errorf("%w: object %q chunk %d/%d (%s): stored bytes do not match",
				ErrCorruptRecipe, name, i, len(refs), r.Hash)
		}
		out = append(out, cb...)
	}
	s.mu.Lock()
	s.hashTime += float64(rawSize) / s.opts.HashRate
	s.mu.Unlock()
	return out, nil
}

// List implements ObjectReader, hiding the internal chunk namespace:
// callers see the logical objects they stored, not the content-addressed
// pieces behind them.
func (s *Store) List(prefix string) ([]string, error) {
	names, err := s.Backend.List(prefix)
	if err != nil {
		return nil, err
	}
	out := names[:0]
	for _, n := range names {
		if len(n) >= 6 && n[:6] == "chunk/" {
			continue
		}
		out = append(out, n)
	}
	return out, nil
}

// Retain implements storage.Retainer: one more reference on a stored
// object. An object this process has not indexed (stored by an earlier
// run) is loaded from the backend — its recipe's chunks join the index
// as referenced, so a later sweep protects them.
func (s *Store) Retain(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.objects[name]; ok {
		e.refs++
		return nil
	}
	obj, err := s.Backend.Get(name)
	if err != nil {
		return fmt.Errorf("chunk: retain %q: %w", name, err)
	}
	e := &objectEntry{refs: 1}
	if IsRecipe(obj) {
		refs, rawSize, err := DecodeRecipe(obj)
		if err != nil {
			return fmt.Errorf("chunk: retain %q: %w", name, err)
		}
		for _, r := range refs {
			if c, ok := s.chunks[r.Hash]; ok {
				c.refs++
			} else {
				s.chunks[r.Hash] = &chunkEntry{refs: 1, size: r.Bytes}
			}
		}
		e.info = storage.ChunkInfo{Chunks: refs, RawBytes: rawSize}
	} else {
		e.info = storage.ChunkInfo{RawBytes: int64(len(obj))}
	}
	s.objects[name] = e
	return nil
}

// Release implements storage.Retainer: drop one reference. Nothing is
// deleted here — a zero-reference object stays resurrectable (Retain it
// back) until the next Sweep actually collects it.
func (s *Store) Release(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.objects[name]
	if !ok {
		return fmt.Errorf("chunk: release of untracked object %q", name)
	}
	e.refs--
	return nil
}

// Sweep collects garbage: every zero-reference object is deleted from
// the inner backend and its chunk references dropped; then every chunk
// no live object references is deleted. The sweep holds the store mutex
// end to end, so concurrent Puts either complete before it (their
// references protect their chunks) or start after it — a retained
// object can never lose a chunk.
func (s *Store) Sweep() (SweepStats, error) {
	var stats SweepStats
	del, ok := s.Backend.(storage.ObjectDeleter)
	if !ok {
		return stats, fmt.Errorf("chunk: backend %s cannot delete objects", s.Backend.Name())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, e := range s.objects {
		if e.refs > 0 {
			continue
		}
		if err := del.Delete(name); err != nil && !errors.Is(err, storage.ErrNotFound) {
			return stats, fmt.Errorf("chunk: sweep %q: %w", name, err)
		}
		s.unrefLocked(e.info.Chunks)
		delete(s.objects, name)
		stats.Objects++
	}
	for h, c := range s.chunks {
		if c.refs > 0 {
			continue
		}
		if err := del.Delete(ChunkObjectName(h)); err != nil && !errors.Is(err, storage.ErrNotFound) {
			return stats, fmt.Errorf("chunk: sweep chunk %s: %w", h, err)
		}
		delete(s.chunks, h)
		stats.Chunks++
		stats.BytesFreed += int64(c.size)
	}
	s.collected += stats.Chunks
	s.bytesFreed += stats.BytesFreed
	return stats, nil
}

// ObjectChunks implements storage.ObjectChunkInfoer for chunked objects
// stored or retained through this process (pass-through objects report
// ok=false, like the codec infoer does).
func (s *Store) ObjectChunks(name string) (storage.ChunkInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.objects[name]
	if !ok || len(e.info.Chunks) == 0 {
		return storage.ChunkInfo{}, false
	}
	return e.info, true
}

// desWrite charges chunk+hash CPU for the DES face and returns the wait
// time plus the deduplicated transfer volume: the assumed-new fraction
// of the payload, plus one recipe entry per average chunk.
func (s *Store) desWrite(bytes float64) (wait, forwarded float64) {
	if bytes <= 0 {
		return 0, bytes
	}
	wait = bytes / s.opts.HashRate
	forwarded = bytes*s.opts.AssumedNewFraction +
		bytes/float64(s.opts.Params.Avg)*recipeEntryLen + recipeHeaderLen
	if forwarded > bytes {
		forwarded = bytes // dedup never inflates a fully-new payload
	}
	s.mu.Lock()
	s.hashTime += wait
	s.dedupSaved += bytes - forwarded
	s.mu.Unlock()
	return wait, forwarded
}

// desRead is desWrite's restore mirror: every chunk of the object must
// travel back regardless of how it deduplicated on the way in, so the
// full raw volume is forwarded and the verify CPU charged.
func (s *Store) desRead(bytes float64) (wait float64) {
	if bytes <= 0 {
		return 0
	}
	wait = bytes / s.opts.HashRate
	s.mu.Lock()
	s.hashTime += wait
	s.mu.Unlock()
	return wait
}

// Write implements Backend: the dedicated core chunks and hashes (CPU
// time on p), then only the not-seen-before volume travels inward.
func (s *Store) Write(p *des.Proc, target int, bytes float64, pat storage.Pattern) {
	wait, fwd := s.desWrite(bytes)
	if wait > 0 {
		p.Wait(wait)
	}
	s.Backend.Write(p, target, fwd, pat)
}

// WriteChunk implements Backend (one round of an open file).
func (s *Store) WriteChunk(p *des.Proc, target int, bytes float64, pat storage.Pattern) {
	wait, fwd := s.desWrite(bytes)
	if wait > 0 {
		p.Wait(wait)
	}
	s.Backend.WriteChunk(p, target, fwd, pat)
}

// WriteAsync implements Backend. With an engine configured the hash CPU
// is charged inside the async transfer (hash, then write); without one
// the volume still shrinks but the CPU is not modeled.
func (s *Store) WriteAsync(target int, bytes float64, pat storage.Pattern) *des.Future {
	wait, fwd := s.desWrite(bytes)
	if wait <= 0 || s.opts.Engine == nil {
		return s.Backend.WriteAsync(target, fwd, pat)
	}
	f := s.opts.Engine.NewFuture()
	s.opts.Engine.Spawn("chunk-hash", func(p *des.Proc) {
		p.Wait(wait)
		p.Await(s.Backend.WriteAsync(target, fwd, pat))
		f.Complete()
	})
	return f
}

// Read implements Backend: the full raw volume travels from the inner
// backend, then the dedicated core verifies chunk hashes (CPU on p).
func (s *Store) Read(p *des.Proc, target int, bytes float64, pat storage.Pattern) {
	wait := s.desRead(bytes)
	s.Backend.Read(p, target, bytes, pat)
	if wait > 0 {
		p.Wait(wait)
	}
}

// ReadAsync implements Backend; see WriteAsync for the engine note.
func (s *Store) ReadAsync(target int, bytes float64, pat storage.Pattern) *des.Future {
	wait := s.desRead(bytes)
	if wait <= 0 || s.opts.Engine == nil {
		return s.Backend.ReadAsync(target, bytes, pat)
	}
	f := s.opts.Engine.NewFuture()
	s.opts.Engine.Spawn("chunk-verify", func(p *des.Proc) {
		p.Await(s.Backend.ReadAsync(target, bytes, pat))
		p.Wait(wait)
		f.Complete()
	})
	return f
}

// Accounting implements Backend: the inner ledger plus the dedup
// counters.
func (s *Store) Accounting() storage.Accounting {
	acc := s.Backend.Accounting()
	s.mu.Lock()
	defer s.mu.Unlock()
	acc.ChunkHashTime += s.hashTime
	acc.DedupBytesSaved += s.dedupSaved
	acc.ChunksStored += s.chunksStored
	acc.ChunksDeduped += s.chunksDedup
	acc.ChunkBytesStored += s.bytesStored
	acc.ChunkBytesDeduped += s.bytesDedup
	acc.ChunksCollected += s.collected
	acc.ChunkBytesFreed += s.bytesFreed
	return acc
}
