// Package chunk implements content-addressed incremental checkpoints:
// a content-defined chunker (rolling-hash boundaries with min/avg/max
// chunk sizes), a content-addressed chunk store layered over any
// storage.Backend, and reference-counting garbage collection
// (Retain/Release/Sweep) so a long-lived store does not grow without
// bound.
//
// Checkpoint traffic at scale is dominated by bytes that did not
// change between iterations. The chunker cuts every object at
// positions determined by the content itself, so when iteration N+1
// differs from iteration N in a small span, only the chunks overlapping
// that span get new hashes — everything else deduplicates against the
// chunks iteration N already stored. The paper's dedicated-core model
// (§IV.D) leaves exactly the spare-core budget this costs: chunking and
// hashing run off the critical path, and the Store's simulated face
// prices that CPU against dedicated-core spare time the same way the
// compression pipeline does.
package chunk

import (
	"crypto/sha256"
	"encoding/hex"
)

// Default chunking parameters: small enough that the few-hundred-KiB
// batch objects the aggregation roots store decompose into dozens of
// chunks (so a partial overwrite dedups), large enough that per-chunk
// overhead (hash, recipe entry, object-store entry) stays under a few
// percent.
const (
	DefaultMin = 512
	DefaultAvg = 2048
	DefaultMax = 8192
)

// chunkWindow is the rolling-hash window width in bytes.
const chunkWindow = 48

// Params bound the content-defined chunk sizes.
type Params struct {
	// Min and Max clamp every chunk's size; Avg sets the expected size
	// by choosing how many hash bits a boundary must match. Avg must be
	// a power of two between Min and Max.
	Min, Avg, Max int
}

// withDefaults fills zero values and normalizes Avg to a power of two.
func (p Params) withDefaults() Params {
	if p.Min <= 0 {
		p.Min = DefaultMin
	}
	if p.Avg <= 0 {
		p.Avg = DefaultAvg
	}
	if p.Max <= 0 {
		p.Max = DefaultMax
	}
	// Round Avg down to a power of two so the boundary mask is exact.
	avg := 1
	for avg*2 <= p.Avg {
		avg *= 2
	}
	p.Avg = avg
	if p.Avg < p.Min {
		p.Avg = p.Min
	}
	if p.Max < p.Avg {
		p.Max = p.Avg
	}
	return p
}

// hashTable is the byte→uint64 substitution table of the rolling hash.
// It is generated deterministically from a fixed seed, so identical
// payloads chunk identically in every process on every platform — the
// property the dedup layer's cross-run stability rests on.
var hashTable = buildHashTable(0x2013_0d0a_1e57_ab1e)

// buildHashTable fills the substitution table from a splitmix64 stream.
func buildHashTable(seed uint64) [256]uint64 {
	var t [256]uint64
	x := seed
	for i := range t {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		t[i] = z ^ (z >> 31)
	}
	return t
}

// rotl64 rotates left by one.
func rotl64(v uint64) uint64 { return v<<1 | v>>63 }

// Split cuts data into content-defined chunks whose concatenation is
// data. The boundaries depend only on the bytes inside the rolling
// window, so inserting or mutating a span of the payload moves only the
// boundaries of chunks overlapping (or immediately following within one
// window of) that span. Split never copies: each chunk aliases data.
//
// The algorithm is a buzhash (cyclic-polynomial) rolling hash over a
// fixed window; a position is a boundary when the low log2(Avg) bits of
// the hash are all ones, clamped to [Min, Max].
func Split(data []byte, p Params) [][]byte {
	p = p.withDefaults()
	if len(data) == 0 {
		return nil
	}
	mask := uint64(p.Avg - 1)
	var chunks [][]byte
	start := 0
	for start < len(data) {
		rest := data[start:]
		if len(rest) <= p.Min {
			chunks = append(chunks, rest)
			break
		}
		end := len(rest)
		if end > p.Max {
			end = p.Max
		}
		// Warm the window over the Min-prefix so the first eligible cut
		// position already sees a full window of context.
		var h uint64
		warm := p.Min - chunkWindow
		if warm < 0 {
			warm = 0
		}
		for i := warm; i < p.Min; i++ {
			h = rotl64(h) ^ hashTable[rest[i]]
		}
		cut := end
		for i := p.Min; i < end; i++ {
			h = rotl64(h) ^ hashTable[rest[i]]
			if out := i - chunkWindow; out >= warm {
				// Age the byte leaving the window: rotated once per step
				// since it entered, i.e. chunkWindow times.
				h ^= rotN(hashTable[rest[out]], chunkWindow)
			}
			if h&mask == mask {
				cut = i + 1
				break
			}
		}
		chunks = append(chunks, rest[:cut])
		start += cut
	}
	return chunks
}

// rotN rotates left by n (n < 64).
func rotN(v uint64, n uint) uint64 { return v<<n | v>>(64-n) }

// Sum returns the content hash naming a chunk: lowercase-hex SHA-256.
func Sum(data []byte) string {
	h := sha256.Sum256(data)
	return hex.EncodeToString(h[:])
}
