package chunk

import (
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"

	"repro/internal/storage"
)

// The chunk recipe is the self-describing envelope the dedup store
// writes under an object's own name once the payload has been split
// into content-addressed chunks:
//
//	offset 0  magic "DCK1" (4 bytes)
//	offset 4  chunk count, uint32 little-endian
//	offset 8  total raw payload size, uint32 little-endian
//	offset 12 count × entry: raw SHA-256 hash (32 bytes)
//	                       + chunk raw size, uint32 little-endian
//
// Like the compression frame (DCF1), the recipe carries everything Get
// needs to reassemble the object, so a store can be read back by a
// process that knows nothing about how it was written — recipes and
// chunks are plain objects on the inner backend. Objects written
// without the dedup store (no magic) pass through untouched.

// recipeMagic marks (and versions) the chunk-recipe envelope.
var recipeMagic = []byte("DCK1")

// recipeEntryLen is the per-chunk entry size: raw hash + size field.
const recipeEntryLen = 32 + 4

// recipeHeaderLen is the fixed envelope prefix: magic + count + raw size.
const recipeHeaderLen = 4 + 4 + 4

// ErrNotChunked is returned when an object does not start with the
// recipe magic: it was stored without the dedup store. Callers should
// test with errors.Is and use the bytes as they are.
var ErrNotChunked = errors.New("chunk: object not a chunk recipe")

// ErrCorruptRecipe is returned for an object that carries the recipe
// magic but cannot be decoded: truncated header or chunk list, a chunk
// count the payload cannot hold, sizes that do not sum to the declared
// raw size, or a fetched chunk whose bytes hash to something other than
// its recipe entry. Restore paths report it the same way they report
// missing objects: the object is known but not recoverable.
var ErrCorruptRecipe = errors.New("chunk: corrupt chunk recipe")

// ErrDanglingChunk is returned by Get when a recipe references a chunk
// the inner backend no longer stores — the dedup invariant (every
// recipe's chunks outlive it) was broken, e.g. by an external delete or
// a sweep racing a foreign process.
var ErrDanglingChunk = errors.New("chunk: recipe references a missing chunk")

// IsRecipe reports whether an object starts with the recipe magic.
func IsRecipe(obj []byte) bool {
	return len(obj) >= len(recipeMagic) && string(obj[:len(recipeMagic)]) == string(recipeMagic)
}

// EncodeRecipe serializes a chunk reference list (hex hashes + sizes in
// payload order) into a recipe object.
func EncodeRecipe(refs []storage.ChunkRef) ([]byte, error) {
	var total int64
	for _, r := range refs {
		if r.Bytes <= 0 {
			return nil, fmt.Errorf("chunk: recipe entry %q has size %d", r.Hash, r.Bytes)
		}
		total += int64(r.Bytes)
	}
	if total > int64(^uint32(0)) {
		return nil, fmt.Errorf("chunk: %d-byte payload exceeds the 4 GiB recipe limit", total)
	}
	out := make([]byte, 0, recipeHeaderLen+len(refs)*recipeEntryLen)
	out = append(out, recipeMagic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(refs)))
	out = binary.LittleEndian.AppendUint32(out, uint32(total))
	for _, r := range refs {
		raw, err := hex.DecodeString(r.Hash)
		if err != nil || len(raw) != 32 {
			return nil, fmt.Errorf("chunk: recipe entry hash %q is not 64 hex chars", r.Hash)
		}
		out = append(out, raw...)
		out = binary.LittleEndian.AppendUint32(out, uint32(r.Bytes))
	}
	return out, nil
}

// DecodeRecipe parses a recipe object back into its chunk reference
// list and declared raw size. Objects without the magic return
// ErrNotChunked; anything structurally damaged returns ErrCorruptRecipe.
// The chunk-count field is validated against the object's actual length
// before any allocation, so a corrupt count cannot drive a giant
// allocation.
func DecodeRecipe(obj []byte) ([]storage.ChunkRef, int64, error) {
	if !IsRecipe(obj) {
		return nil, 0, fmt.Errorf("%w (%d bytes)", ErrNotChunked, len(obj))
	}
	rest := obj[len(recipeMagic):]
	if len(rest) < 8 {
		return nil, 0, fmt.Errorf("%w: truncated header", ErrCorruptRecipe)
	}
	count := int(binary.LittleEndian.Uint32(rest))
	rawSize := int64(binary.LittleEndian.Uint32(rest[4:]))
	rest = rest[8:]
	if count < 0 || len(rest) != count*recipeEntryLen {
		return nil, 0, fmt.Errorf("%w: %d entries declared, %d bytes of entries held",
			ErrCorruptRecipe, count, len(rest))
	}
	refs := make([]storage.ChunkRef, count)
	var sum int64
	for i := range refs {
		e := rest[i*recipeEntryLen:]
		size := int(binary.LittleEndian.Uint32(e[32:36]))
		if size <= 0 {
			return nil, 0, fmt.Errorf("%w: entry %d has size %d", ErrCorruptRecipe, i, size)
		}
		refs[i] = storage.ChunkRef{Hash: hex.EncodeToString(e[:32]), Bytes: size}
		sum += int64(size)
	}
	if sum != rawSize {
		return nil, 0, fmt.Errorf("%w: entries sum to %d bytes, header says %d",
			ErrCorruptRecipe, sum, rawSize)
	}
	return refs, rawSize, nil
}

// ChunkObjectName maps a content hash to the inner-backend object name
// of its chunk. The "chunk/" prefix keeps the chunk namespace disjoint
// from recipe/object names (SDF flattens the separator to "_").
func ChunkObjectName(hash string) string { return "chunk/" + hash }
