package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/des"
	"repro/internal/meta"
	"repro/internal/rng"
	"repro/internal/sdf"
)

// SDF is a local-filesystem backend: the same deterministic cost model
// as Memory for the simulated face, and real SDF files (internal/sdf)
// for objects — every Put lands as <dir>/<name>.sdf holding the object
// bytes plus size/backend attributes, so small runs leave inspectable
// artifacts that sdfdump can open.
type SDF struct {
	*simModel
	dir string

	omu      sync.Mutex
	objSize  map[string]int64  // object name → stored size (overwrites replace)
	owner    map[string]string // flattened file name → object name (collision guard)
	objByte  int64
	objReads int
	objRead  int64
}

// NewSDF builds an SDF backend storing objects under dir (created if
// missing). eng may be nil when only the object face is used. The
// simulated face is priced below the memory backend (local disks are
// slower than the modeled OST array).
func NewSDF(eng *des.Engine, targets int, bandwidth float64, dir string) (*SDF, error) {
	if dir == "" {
		return nil, fmt.Errorf("storage: sdf backend needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	m := newSimModel(eng, targets, bandwidth*0.8)
	m.overhead = 0.08 // local fs: object creation costs more than RAM
	return &SDF{
		simModel: m,
		dir:      dir,
		objSize:  map[string]int64{},
		owner:    map[string]string{},
	}, nil
}

// Dir returns the artifact directory.
func (b *SDF) Dir() string { return b.dir }

// Name implements Backend.
func (b *SDF) Name() string { return string(KindSDF) }

// Targets implements Backend.
func (b *SDF) Targets() int { return b.targetCount() }

// BeginPhase implements Backend.
func (b *SDF) BeginPhase() {}

// Create implements Backend.
func (b *SDF) Create(p *des.Proc) {
	b.mu.Lock()
	b.files++
	b.mu.Unlock()
	b.metaOp(p)
}

// Open implements Backend.
func (b *SDF) Open(p *des.Proc) { b.metaOp(p) }

// Close implements Backend.
func (b *SDF) Close(p *des.Proc) { b.metaOp(p) }

// Write implements Backend.
func (b *SDF) Write(p *des.Proc, target int, bytes float64, pat Pattern) {
	b.write(p, target, bytes, pat, b.overhead)
}

// WriteChunk implements Backend.
func (b *SDF) WriteChunk(p *des.Proc, target int, bytes float64, pat Pattern) {
	b.write(p, target, bytes, pat, 0)
}

// WriteAsync implements Backend.
func (b *SDF) WriteAsync(target int, bytes float64, pat Pattern) *des.Future {
	return b.writeAsync(target, bytes, pat)
}

// Read implements Backend.
func (b *SDF) Read(p *des.Proc, target int, bytes float64, pat Pattern) {
	b.read(p, target, bytes, pat)
}

// ReadAsync implements Backend.
func (b *SDF) ReadAsync(target int, bytes float64, pat Pattern) *des.Future {
	return b.readAsync(target, bytes, pat)
}

// PlaceFile implements Backend.
func (b *SDF) PlaceFile(stripes int, r *rng.Stream) []int {
	return placeUniform(b.targetCount(), stripes, r)
}

// PutVec implements VecStore. The SDF container needs one contiguous
// dataset, so the segments are gathered once here — the same single
// copy a pre-flattened Put would have paid, kept inside the backend so
// scatter-gather callers need no special case.
func (b *SDF) PutVec(name string, segs [][]byte) error {
	return b.Put(name, FlattenSegs(segs))
}

// Put implements ObjectStore: the object becomes one SDF file.
// Overwriting an existing name replaces the object (accounted once,
// like Memory.Put); two distinct names that flatten to the same file
// are rejected instead of silently clobbering each other.
func (b *SDF) Put(name string, data []byte) error {
	if name == "" {
		return fmt.Errorf("storage: empty object name")
	}
	path := b.objectPath(name)
	b.omu.Lock()
	if prev, taken := b.owner[path]; taken && prev != name {
		b.omu.Unlock()
		return fmt.Errorf("storage: object %q collides with %q (both flatten to %s)",
			name, prev, path)
	}
	b.owner[path] = name
	b.omu.Unlock()
	w, err := sdf.Create(path)
	if err != nil {
		return err
	}
	if len(data) > 0 {
		if err := w.WriteDataset("data", meta.Uint8, []int{len(data)}, data, "none"); err != nil {
			w.Close()
			return err
		}
	}
	w.SetAttrInt("", "size", int64(len(data)))
	w.SetAttrString("", "backend", b.Name())
	// The unflattened name travels inside the file, so Get and List can
	// recover it in a fresh process (and Get can reject a name that
	// merely flattens to the same file).
	w.SetAttrString("", "name", name)
	if err := w.Close(); err != nil {
		return err
	}
	b.omu.Lock()
	if old, ok := b.objSize[name]; ok {
		b.objByte -= old
	}
	b.objSize[name] = int64(len(data))
	b.objByte += int64(len(data))
	b.omu.Unlock()
	return nil
}

// Get implements ObjectReader: the object is read back from its SDF
// file. The name is hardened the same way Put's collision guard is: a
// request whose name merely flattens to an existing file — the file
// belongs to a different unflattened name — is rejected as a collision
// instead of served, whether the owner is known from this process's
// Puts or only from the name attribute inside the file.
func (b *SDF) Get(name string) ([]byte, error) {
	if name == "" {
		return nil, fmt.Errorf("storage: empty object name")
	}
	path := b.objectPath(name)
	b.omu.Lock()
	if prev, taken := b.owner[path]; taken && prev != name {
		b.omu.Unlock()
		return nil, fmt.Errorf("storage: object %q collides with %q (both flatten to %s)",
			name, prev, path)
	}
	b.omu.Unlock()
	r, err := sdf.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
		}
		return nil, err
	}
	defer r.Close()
	if stored, ok := r.AttrString("", "name"); ok && stored != name {
		return nil, fmt.Errorf("storage: object %q collides with %q (both flatten to %s)",
			name, stored, path)
	}
	var data []byte
	if n, ok := r.AttrInt("", "size"); !ok || n > 0 {
		data, err = r.ReadDataset("data")
		if err != nil {
			return nil, fmt.Errorf("storage: object %q: %w", name, err)
		}
	}
	b.omu.Lock()
	b.objReads++
	b.objRead += int64(len(data))
	b.omu.Unlock()
	return data, nil
}

// Delete implements ObjectDeleter: the object's SDF file is removed.
// The collision guard applies like Get's — a name that merely flattens
// to another object's file must not delete that object.
func (b *SDF) Delete(name string) error {
	if name == "" {
		return fmt.Errorf("storage: empty object name")
	}
	path := b.objectPath(name)
	b.omu.Lock()
	defer b.omu.Unlock()
	if prev, taken := b.owner[path]; taken && prev != name {
		return fmt.Errorf("storage: object %q collides with %q (both flatten to %s)",
			name, prev, path)
	}
	if _, known := b.objSize[name]; !known {
		// Not stored by this process: the file may still exist from an
		// earlier run — honor the delete if its name attribute matches.
		if r, err := sdf.Open(path); err == nil {
			stored, ok := r.AttrString("", "name")
			r.Close()
			if ok && stored != name {
				return fmt.Errorf("storage: object %q collides with %q (both flatten to %s)",
					name, stored, path)
			}
		}
	}
	if err := os.Remove(path); err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("%w: %q", ErrNotFound, name)
		}
		return err
	}
	if old, ok := b.objSize[name]; ok {
		b.objByte -= old
		delete(b.objSize, name)
	}
	delete(b.owner, path)
	return nil
}

// List implements ObjectReader: the directory is scanned and each
// file's unflattened name recovered from its name attribute (falling
// back to the file name for objects written by other tools), so a
// fresh process can list a store left by an earlier run.
func (b *SDF) List(prefix string) ([]string, error) {
	entries, err := os.ReadDir(b.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		flat, ok := strings.CutSuffix(e.Name(), ".sdf")
		if !ok || e.IsDir() {
			continue
		}
		name := flat
		// Flattening only rewrites path separators to "_": a flat name
		// without one is provably the original, so only ambiguous files
		// need opening for their name attribute.
		if strings.Contains(flat, "_") {
			if r, err := sdf.Open(filepath.Join(b.dir, e.Name())); err == nil {
				if stored, ok := r.AttrString("", "name"); ok {
					name = stored
				}
				r.Close()
			}
		}
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Object reads a stored object back from its SDF file (the pre-Get
// boolean API, kept for existing callers).
func (b *SDF) Object(name string) ([]byte, bool) {
	data, err := b.Get(name)
	if err != nil {
		return nil, false
	}
	if data == nil {
		data = []byte{}
	}
	return data, true
}

// ObjectNames lists the stored objects.
func (b *SDF) ObjectNames() []string {
	names, _ := b.List("")
	return names
}

func (b *SDF) objectPath(name string) string {
	// Object names may carry path separators of either convention;
	// flatten both so every object is one file directly under dir.
	// Put rejects distinct names that flatten to the same file.
	safe := strings.ReplaceAll(name, "/", "_")
	safe = strings.ReplaceAll(safe, `\`, "_")
	return filepath.Join(b.dir, safe+".sdf")
}

// Accounting implements Backend.
func (b *SDF) Accounting() Accounting {
	acc := b.simModel.accounting()
	b.omu.Lock()
	acc.Objects = len(b.objSize)
	acc.ObjectBytes = b.objByte
	acc.ObjectsRead = b.objReads
	acc.ObjectReadBytes = b.objRead
	b.omu.Unlock()
	return acc
}
