package storage_test

import (
	"fmt"

	"repro/internal/storage"
)

// Example_subscribe wraps a backend with the streaming face, attaches
// a bounded subscriber, and receives each stored object live — the
// consumer side of the in-situ pipeline (see docs/STREAMING.md).
func Example_subscribe() {
	st := storage.NewStreaming(storage.NewMemory(nil, 4, 1e9))
	sub := st.Subscribe(storage.SubOptions{Buffer: 4, Policy: storage.DropOldest})

	for it := 0; it < 3; it++ {
		name := fmt.Sprintf("job-root000-it%06d", it)
		if err := st.Put(name, []byte{byte(it)}); err != nil {
			fmt.Println("put:", err)
			return
		}
	}
	st.CloseStream()

	for {
		msg, err := sub.Recv()
		if err != nil {
			return // ErrStreamClosed after the backlog drains
		}
		fmt.Printf("seq %d: %s (%d bytes)\n", msg.Seq, msg.Name, len(msg.Data))
	}
	// Output:
	// seq 1: job-root000-it000000 (1 bytes)
	// seq 2: job-root000-it000001 (1 bytes)
	// seq 3: job-root000-it000002 (1 bytes)
}
