// Package storage abstracts where aggregated output lands. The three
// I/O strategies, the experiments and the cluster layer write through
// the Backend interface instead of calling the pfs model directly, so a
// run can target:
//
//   - the discrete-event Lustre model (KindPFS) — the paper's storage
//     substrate with metadata serialization, pattern-dependent OST
//     efficiency, jitter and congestion;
//   - a deterministic in-memory model (KindMemory) — no jitter, fixed
//     pattern efficiencies, fast and bit-reproducible, for tests;
//   - a local-filesystem SDF store (KindSDF) — same deterministic cost
//     model, but real objects are persisted as SDF files via
//     internal/sdf, so small runs leave inspectable artifacts.
//
// A Backend has two faces. The simulated face (Create/Open/Close/Write,
// *des.Proc-blocking) charges virtual time and feeds the cost
// accounting; it is what the iostrat strategies drive. The real face
// (Put) stores actual bytes and is what the runtime cluster layer and
// plugins use; on the pure DES model it degrades to accounting only.
package storage

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/rng"
	"repro/internal/topology"
)

// Pattern classifies a write stream's access pattern; it mirrors the
// pfs patterns so every backend can price concurrency the same way.
type Pattern int

const (
	// BigSequential is a large contiguous stream into its own file.
	BigSequential Pattern = iota
	// SmallFile is a per-process file written in small chunks.
	SmallFile
	// SharedFile is a write into a file shared with other clients,
	// subject to extent-lock serialization.
	SharedFile
)

// String returns the pattern name.
func (p Pattern) String() string {
	switch p {
	case BigSequential:
		return "big-sequential"
	case SmallFile:
		return "small-file"
	case SharedFile:
		return "shared-file"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Accounting is the cost ledger every backend maintains.
type Accounting struct {
	// BytesWritten is the completed simulated payload in bytes.
	BytesWritten float64
	// IOBusyTime is the union of time with at least one transfer in
	// flight; BytesWritten/IOBusyTime is the achieved throughput.
	IOBusyTime float64
	// FilesCreated counts simulated file creates (metadata ops).
	FilesCreated int
	// Objects and ObjectBytes count real objects stored through Put.
	Objects     int
	ObjectBytes int64
}

// ObjectStore is the real-data face of a backend: store a named blob.
// Every Backend implements it; consumers that only persist objects
// (the cluster layer, plugins) should depend on this narrow interface.
type ObjectStore interface {
	// Put durably stores data under name. Implementations must be safe
	// for concurrent use.
	Put(name string, data []byte) error
}

// Backend is a storage target: simulated operations that charge virtual
// time on a des.Proc, a real object path, and cost accounting.
type Backend interface {
	ObjectStore

	// Name identifies the backend kind in logs and reports.
	Name() string
	// Targets returns the number of independent storage targets (OSTs,
	// disks); placement indices are taken modulo this.
	Targets() int
	// BeginPhase marks the start of one application I/O phase (the pfs
	// model redraws per-OST congestion there).
	BeginPhase()

	// Create, Open and Close are blocking metadata operations.
	Create(p *des.Proc)
	Open(p *des.Proc)
	Close(p *des.Proc)

	// Write blocks until a whole-file write of bytes with the given
	// pattern to the target completes (per-file overhead charged).
	Write(p *des.Proc, target int, bytes float64, pat Pattern)
	// WriteChunk is Write without the per-file overhead (one round of
	// an already-open file).
	WriteChunk(p *des.Proc, target int, bytes float64, pat Pattern)
	// WriteAsync submits a whole-file write and returns a future
	// completed when the transfer finishes.
	WriteAsync(target int, bytes float64, pat Pattern) *des.Future

	// PlaceFile chooses stripes distinct targets for a new file, drawn
	// from r so placement is reproducible per caller.
	PlaceFile(stripes int, r *rng.Stream) []int

	// Accounting returns a snapshot of the cost ledger.
	Accounting() Accounting
}

// Kind names a backend implementation.
type Kind string

// The built-in backends.
const (
	KindPFS    Kind = "pfs"
	KindMemory Kind = "memory"
	KindSDF    Kind = "sdf"
)

// Kinds lists the built-in backend kinds.
func Kinds() []Kind { return []Kind{KindPFS, KindMemory, KindSDF} }

// New builds the named backend sized for the platform's storage system.
// eng is the DES engine of the run; r seeds stochastic models (only the
// pfs backend draws from it); dir is the artifact directory of the SDF
// backend (unused by the others).
func New(kind Kind, eng *des.Engine, plat topology.Platform, r *rng.Stream, dir string) (Backend, error) {
	switch kind {
	case KindPFS, "":
		return NewPFS(eng, plat.PFS, r), nil
	case KindMemory:
		return NewMemory(eng, plat.PFS.OSTs, plat.PFS.OSTBandwidth), nil
	case KindSDF:
		return NewSDF(eng, plat.PFS.OSTs, plat.PFS.OSTBandwidth, dir)
	default:
		return nil, fmt.Errorf("storage: unknown backend kind %q", kind)
	}
}
