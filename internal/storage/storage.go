// Package storage abstracts where aggregated output lands. The three
// I/O strategies, the experiments and the cluster layer write through
// the Backend interface instead of calling the pfs model directly, so a
// run can target:
//
//   - the discrete-event Lustre model (KindPFS) — the paper's storage
//     substrate with metadata serialization, pattern-dependent OST
//     efficiency, jitter and congestion;
//   - a deterministic in-memory model (KindMemory) — no jitter, fixed
//     pattern efficiencies, fast and bit-reproducible, for tests;
//   - a local-filesystem SDF store (KindSDF) — same deterministic cost
//     model, but real objects are persisted as SDF files via
//     internal/sdf, so small runs leave inspectable artifacts.
//
// A Backend has two faces. The simulated face (Create/Open/Close/
// Write/Read, *des.Proc-blocking) charges virtual time and feeds the
// cost accounting; it is what the iostrat strategies drive. The real
// face (Put/Get/List) stores and serves actual bytes and is what the
// runtime cluster layer, restart path and plugins use; on the pure DES
// model it degrades to accounting only (Get returns ErrNoPayload).
package storage

import (
	"errors"
	"fmt"

	"repro/internal/des"
	"repro/internal/rng"
	"repro/internal/topology"
)

// ErrNotFound is returned by Get when no object with the given name was
// ever stored. Callers should test with errors.Is.
var ErrNotFound = errors.New("storage: object not found")

// ErrNoPayload is returned by Get on backends that account objects
// without retaining their bytes (the pure pfs cost model): the object
// exists — List sees it, the read is charged to the ledger — but there
// is nothing to hand back. Restart paths treat it as "known but not
// recoverable from this backend".
var ErrNoPayload = errors.New("storage: object payload not retained")

// Pattern classifies a write stream's access pattern; it mirrors the
// pfs patterns so every backend can price concurrency the same way.
type Pattern int

const (
	// BigSequential is a large contiguous stream into its own file.
	BigSequential Pattern = iota
	// SmallFile is a per-process file written in small chunks.
	SmallFile
	// SharedFile is a write into a file shared with other clients,
	// subject to extent-lock serialization.
	SharedFile
)

// String returns the pattern name.
func (p Pattern) String() string {
	switch p {
	case BigSequential:
		return "big-sequential"
	case SmallFile:
		return "small-file"
	case SharedFile:
		return "shared-file"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Accounting is the cost ledger every backend maintains.
type Accounting struct {
	// BytesWritten is the completed simulated payload in bytes.
	BytesWritten float64
	// IOBusyTime is the union of time with at least one transfer in
	// flight; BytesWritten/IOBusyTime is the achieved throughput.
	IOBusyTime float64
	// FilesCreated counts simulated file creates (metadata ops).
	FilesCreated int
	// BytesRead is the completed simulated read payload in bytes (the
	// restart path's mirror of BytesWritten).
	BytesRead float64
	// Objects and ObjectBytes count real objects stored through Put.
	Objects     int
	ObjectBytes int64
	// ObjectsRead and ObjectReadBytes count real objects served back
	// through Get (pfs counts the request even though it returns no
	// payload).
	ObjectsRead     int
	ObjectReadBytes int64

	// Compression-pipeline counters, populated only when the backend is
	// wrapped in Compressing (zero otherwise).

	// BytesSaved is the simulated payload kept off the NIC/PFS transfer
	// by encoding on the DES face (raw minus encoded volume).
	BytesSaved float64
	// EncodeTime and DecodeTime are the codec CPU seconds charged on
	// the dedicated cores — the §IV.D spare time spent to earn
	// BytesSaved (both faces contribute; trial encodes count too).
	EncodeTime float64
	DecodeTime float64
	// ObjectsCompressed counts real objects stored framed, with their
	// payload volume before and after encoding.
	ObjectsCompressed  int
	ObjectRawBytes     int64
	ObjectEncodedBytes int64
	// PerCodec splits the object counters by chosen codec (nil when no
	// framed object was stored).
	PerCodec map[string]CodecCount

	// Dedup-store counters, populated only when the backend is wrapped
	// in a content-addressed chunk store (internal/storage/chunk; zero
	// otherwise).

	// ChunkHashTime is the chunking + hashing CPU seconds charged on
	// the dedicated cores — like the codec times, §IV.D spare time
	// spent to earn DedupBytesSaved.
	ChunkHashTime float64
	// DedupBytesSaved is the simulated payload kept off the NIC/PFS
	// transfer because the chunk store only forwards bytes it has not
	// seen before (DES face), plus — on the real face — the raw bytes
	// of chunks deduplicated against already-stored ones.
	DedupBytesSaved float64
	// ChunksStored and ChunksDeduped count real chunk objects written
	// to the inner backend vs chunks satisfied by an existing stored
	// copy, with their raw payload volumes.
	ChunksStored      int
	ChunksDeduped     int
	ChunkBytesStored  int64
	ChunkBytesDeduped int64
	// ChunksCollected and ChunkBytesFreed count what refcount GC sweeps
	// reclaimed from the inner backend.
	ChunksCollected int
	ChunkBytesFreed int64

	// Token-broker counters, populated only when the run's writes were
	// arbitrated by a TokenBroker (zero otherwise).

	// TokenGrants counts write tokens granted; TokenWaitTime is the
	// total time writers spent waiting for one (virtual seconds on the
	// DES face, wall seconds on the real face).
	TokenGrants   int
	TokenWaitTime float64
	// GrantsByTarget splits TokenGrants per storage target, the
	// schedule's placement footprint.
	GrantsByTarget map[int]int
}

// AddBroker folds a broker's contention ledger into the accounting —
// the backend moved the bytes, the broker decided when, and one
// snapshot should tell both stories.
func (a *Accounting) AddBroker(s BrokerStats) {
	a.TokenGrants += s.Grants
	a.TokenWaitTime += s.WaitTime
	if len(s.GrantsByTarget) > 0 && a.GrantsByTarget == nil {
		a.GrantsByTarget = map[int]int{}
	}
	for t, n := range s.GrantsByTarget {
		a.GrantsByTarget[t] += n
	}
}

// ObjectStore is the real-data write face of a backend: store a named
// blob. Every Backend implements it; consumers that only persist
// objects (the cluster layer, plugins) should depend on this narrow
// interface.
type ObjectStore interface {
	// Put durably stores data under name. Implementations must be safe
	// for concurrent use.
	Put(name string, data []byte) error
}

// ObjectReader is the real-data read face of a backend: fetch objects
// back and enumerate what is stored. Restart/replay consumers
// (cluster.Restore, sdfdump's store listing) should depend on this
// narrow interface.
type ObjectReader interface {
	// Get returns a stored object's bytes. It returns ErrNotFound for a
	// name never stored and ErrNoPayload on backends that account
	// objects without retaining bytes. Implementations must be safe for
	// concurrent use.
	Get(name string) ([]byte, error)
	// List returns the stored object names with the given prefix,
	// ascending ("" lists everything).
	List(prefix string) ([]string, error)
}

// ObjectDeleter is the optional delete face of a backend: remove a
// stored object by name. The built-in backends implement it; wrappers
// (Compressing, the chunk store) forward it to their inner backend.
// Garbage collection (chunk.Store.Sweep) depends on it — a store
// without it can only drop objects from its index, not free bytes.
type ObjectDeleter interface {
	// Delete removes the named object. Deleting a name that was never
	// stored returns ErrNotFound. Implementations must be safe for
	// concurrent use.
	Delete(name string) error
}

// ChunkRef is one content-addressed chunk reference: the hash that
// names the chunk object and the chunk's raw payload size. Manifests
// (cluster manifest v2) embed chunk sets so a restart can see exactly
// which stored chunks an iteration depends on without fetching any
// payload.
type ChunkRef struct {
	// Hash is the chunk's content hash in lowercase hex (SHA-256, 64
	// characters) — also the suffix of the chunk's object name.
	Hash string `json:"hash"`
	// Bytes is the chunk's raw payload size.
	Bytes int `json:"bytes"`
}

// ChunkInfo records how one object was stored by a dedup chunk store.
type ChunkInfo struct {
	// Chunks lists the object's content-addressed chunk references in
	// payload order (nil for objects stored raw, below the chunking
	// threshold).
	Chunks []ChunkRef
	// RawBytes is the object's payload size before chunking.
	RawBytes int64
	// NewBytes is the payload volume actually written to the inner
	// backend — the chunks no earlier object had already stored.
	NewBytes int64
}

// ObjectChunkInfoer is implemented by stores that can report an
// object's chunk decomposition (the dedup chunk store). Consumers test
// for it with a type assertion, so plain backends keep working
// unchanged — the same pattern as ObjectCodecInfoer.
type ObjectChunkInfoer interface {
	// ObjectChunks reports the chunk info recorded when name was stored
	// through this process, and ok=false for unknown or pass-through
	// objects.
	ObjectChunks(name string) (ChunkInfo, bool)
}

// Retainer is the reference-lifecycle face of a store with garbage
// collection: objects start live when Put, Retain pins them an extra
// reference, Release drops one, and a sweep may collect whatever
// reached zero. Consumers (cluster retention) test for it with a type
// assertion, so stores without GC keep working unchanged.
type Retainer interface {
	// Retain adds one reference to a stored object, loading its chunk
	// references from the store if this process has not seen it.
	Retain(name string) error
	// Release drops one reference. An object at zero references — and
	// every chunk no live object references — becomes collectable by
	// the next sweep.
	Release(name string) error
}

// VecStore is the scatter-gather write face: store one object whose
// bytes arrive as an iovec-style segment list. Implementations must
// treat the concatenation of segs as the object's bytes and must own
// their copy by the time PutVec returns — callers are free to recycle
// the segment buffers immediately afterwards. All built-in backends
// (and the Compressing wrapper) implement it; callers should go
// through the PutVec helper, which falls back to flattening for plain
// ObjectStores.
type VecStore interface {
	// PutVec durably stores the concatenation of segs under name.
	// Implementations must be safe for concurrent use.
	PutVec(name string, segs [][]byte) error
}

// PutVec writes a scatter-gather segment list as one object: through
// the store's VecStore face when it has one (zero or one copy,
// depending on the backend), or by flattening into a single buffer for
// a plain ObjectStore. Either way the store owns its bytes when PutVec
// returns, so callers may recycle the segment buffers.
func PutVec(store ObjectStore, name string, segs [][]byte) error {
	if vs, ok := store.(VecStore); ok {
		return vs.PutVec(name, segs)
	}
	return store.Put(name, FlattenSegs(segs))
}

// SegsLen returns the total byte length of a segment list.
func SegsLen(segs [][]byte) int {
	n := 0
	for _, s := range segs {
		n += len(s)
	}
	return n
}

// FlattenSegs concatenates a segment list into one freshly allocated
// buffer (the scatter-gather fallback for contiguous consumers).
func FlattenSegs(segs [][]byte) []byte {
	out := make([]byte, 0, SegsLen(segs))
	for _, s := range segs {
		out = append(out, s...)
	}
	return out
}

// Backend is a storage target: simulated operations that charge virtual
// time on a des.Proc, a real object path, and cost accounting.
type Backend interface {
	ObjectStore
	ObjectReader

	// Name identifies the backend kind in logs and reports.
	Name() string
	// Targets returns the number of independent storage targets (OSTs,
	// disks); placement indices are taken modulo this.
	Targets() int
	// BeginPhase marks the start of one application I/O phase (the pfs
	// model redraws per-OST congestion there).
	BeginPhase()

	// Create, Open and Close are blocking metadata operations.
	Create(p *des.Proc)
	Open(p *des.Proc)
	Close(p *des.Proc)

	// Write blocks until a whole-file write of bytes with the given
	// pattern to the target completes (per-file overhead charged).
	Write(p *des.Proc, target int, bytes float64, pat Pattern)
	// WriteChunk is Write without the per-file overhead (one round of
	// an already-open file).
	WriteChunk(p *des.Proc, target int, bytes float64, pat Pattern)
	// WriteAsync submits a whole-file write and returns a future
	// completed when the transfer finishes.
	WriteAsync(target int, bytes float64, pat Pattern) *des.Future

	// Read blocks until a whole-file read of bytes with the given
	// pattern from the target completes (per-file overhead charged) —
	// the restart path's mirror of Write. Reads flow through the same
	// per-target queues as writes, so a restart competes with whatever
	// else the storage system serves.
	Read(p *des.Proc, target int, bytes float64, pat Pattern)
	// ReadAsync submits a whole-file read and returns a future
	// completed when the transfer finishes.
	ReadAsync(target int, bytes float64, pat Pattern) *des.Future

	// PlaceFile chooses stripes distinct targets for a new file, drawn
	// from r so placement is reproducible per caller.
	PlaceFile(stripes int, r *rng.Stream) []int

	// Accounting returns a snapshot of the cost ledger.
	Accounting() Accounting
}

// Kind names a backend implementation.
type Kind string

// The built-in backends.
const (
	KindPFS    Kind = "pfs"
	KindMemory Kind = "memory"
	KindSDF    Kind = "sdf"
)

// Kinds lists the built-in backend kinds.
func Kinds() []Kind { return []Kind{KindPFS, KindMemory, KindSDF} }

// New builds the named backend sized for the platform's storage system.
// eng is the DES engine of the run; r seeds stochastic models (only the
// pfs backend draws from it); dir is the artifact directory of the SDF
// backend (unused by the others).
func New(kind Kind, eng *des.Engine, plat topology.Platform, r *rng.Stream, dir string) (Backend, error) {
	switch kind {
	case KindPFS, "":
		return NewPFS(eng, plat.PFS, r), nil
	case KindMemory:
		return NewMemory(eng, plat.PFS.OSTs, plat.PFS.OSTBandwidth), nil
	case KindSDF:
		return NewSDF(eng, plat.PFS.OSTs, plat.PFS.OSTBandwidth, dir)
	default:
		return nil, fmt.Errorf("storage: unknown backend kind %q", kind)
	}
}
