package storage

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrStreamClosed is returned by Subscription.Recv after the stream is
// closed (or the subscription cancelled) and the queued backlog has
// been drained. Callers should test with errors.Is.
var ErrStreamClosed = errors.New("storage: stream closed")

// ErrSlowConsumer is returned by Subscription.Recv after a Block-policy
// subscriber held a publisher past its BlockTimeout: the stream detaches
// the subscriber rather than stall the write path forever, and the
// subscriber learns why on its next receive (after draining whatever
// was already queued). Callers should test with errors.Is.
var ErrSlowConsumer = errors.New("storage: subscriber too slow, detached")

// SlowPolicy names what a publisher does when a subscriber's bounded
// queue is full. The choice trades the publisher's latency against the
// subscriber's completeness — see docs/STREAMING.md.
type SlowPolicy string

const (
	// DropOldest evicts the oldest queued message to make room for the
	// new one. The publisher never blocks and the subscriber always sees
	// the most recent Buffer messages — staleness is bounded, coverage
	// is not. This is the default, and the only policy safe on the
	// cluster write path without a timeout.
	DropOldest SlowPolicy = "drop-oldest"
	// Block makes the publisher wait for queue space up to
	// SubOptions.BlockTimeout — real backpressure, full coverage — and
	// detach the subscriber with ErrSlowConsumer when the wait runs out.
	Block SlowPolicy = "block"
	// Sample drops the incoming message when the queue is full: the
	// publisher never blocks and the subscriber sees an in-order
	// subsample of the stream (older queued messages are never
	// displaced, so what it sees is a prefix-preserving subsequence).
	Sample SlowPolicy = "sample"
)

// SlowPolicies lists the slow-consumer policies.
func SlowPolicies() []SlowPolicy { return []SlowPolicy{DropOldest, Block, Sample} }

// ValidateSlowPolicy checks a user-supplied policy name ("" means
// DropOldest).
func ValidateSlowPolicy(p string) error {
	switch SlowPolicy(p) {
	case "", DropOldest, Block, Sample:
		return nil
	}
	return fmt.Errorf("storage: unknown slow-consumer policy %q (have %v)", p, SlowPolicies())
}

// StreamMsg is one published object: the name it was (or is about to
// be) stored under, a stream-wide sequence number, and the payload.
// Data is shared read-only among all subscribers — receivers must not
// modify it.
type StreamMsg struct {
	// Name is the object name, e.g. "job-root000-it000042".
	Name string
	// Seq is the stream-wide publish sequence number (starting at 1);
	// gaps in the sequence a subscriber observes are messages its
	// policy dropped.
	Seq uint64
	// Data is the payload as the publisher saw it — decoded bytes, not
	// the framed/chunked form a wrapped backend stores.
	Data []byte
}

// DefaultStreamBuffer is the per-subscriber queue capacity when
// SubOptions.Buffer is unset. It bounds a subscriber's staleness: under
// DropOldest a consumer is never more than Buffer messages behind the
// publisher.
const DefaultStreamBuffer = 8

// DefaultBlockTimeout is the publisher's patience with a Block-policy
// subscriber when SubOptions.BlockTimeout is unset.
const DefaultBlockTimeout = time.Second

// SubOptions configure one subscription.
type SubOptions struct {
	// Buffer is the bounded queue capacity in messages (default
	// DefaultStreamBuffer).
	Buffer int
	// Policy is what publishers do when the queue is full (default
	// DropOldest).
	Policy SlowPolicy
	// BlockTimeout bounds how long a Block-policy publisher waits for
	// queue space before detaching this subscriber (default
	// DefaultBlockTimeout). Ignored by the other policies.
	BlockTimeout time.Duration
}

func (o SubOptions) withDefaults() SubOptions {
	if o.Buffer <= 0 {
		o.Buffer = DefaultStreamBuffer
	}
	if o.Policy == "" {
		o.Policy = DropOldest
	}
	if o.BlockTimeout <= 0 {
		o.BlockTimeout = DefaultBlockTimeout
	}
	return o
}

// Stream is a fan-out hub from publishers (tree roots, the Streaming
// store wrapper) to in-situ subscribers. Each subscriber owns a bounded
// FIFO queue; when it falls behind, its SlowPolicy — not the other
// subscribers' — decides what gives. Publish order is delivery order
// within one publisher; messages carry stream-wide sequence numbers so
// consumers can detect drops. All methods are safe for concurrent use.
type Stream struct {
	mu     sync.Mutex
	subs   map[*Subscription]struct{}
	seq    uint64
	closed bool
}

// NewStream returns an empty hub.
func NewStream() *Stream {
	return &Stream{subs: map[*Subscription]struct{}{}}
}

// Subscribe attaches a new subscriber. On a closed stream the
// subscription is returned already closed (Recv fails fast with
// ErrStreamClosed).
func (s *Stream) Subscribe(opts SubOptions) *Subscription {
	sub := newSubscription(s, opts.withDefaults())
	s.mu.Lock()
	if s.closed {
		sub.closed = true
	} else {
		s.subs[sub] = struct{}{}
	}
	s.mu.Unlock()
	return sub
}

// HasSubscribers reports whether anyone is listening — publishers use
// it to skip payload copies when nobody would see them.
func (s *Stream) HasSubscribers() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs) > 0
}

// Published returns the number of messages published so far.
func (s *Stream) Published() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Publish hands one payload to every current subscriber. The stream
// takes ownership of data: it is shared read-only among subscribers,
// so the caller must not reuse or recycle the buffer afterwards (pass
// a copy when the source buffer is pooled). Publish blocks only for
// Block-policy subscribers with full queues, and each of those at most
// its own BlockTimeout — after which the laggard is detached with
// ErrSlowConsumer and the publisher moves on. Publishing on a closed
// stream is a no-op.
func (s *Stream) Publish(name string, data []byte) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.seq++
	msg := StreamMsg{Name: name, Seq: s.seq, Data: data}
	targets := make([]*Subscription, 0, len(s.subs))
	for sub := range s.subs {
		targets = append(targets, sub)
	}
	s.mu.Unlock()
	for _, sub := range targets {
		sub.offer(msg)
	}
}

// Close shuts the hub down: every subscriber drains its backlog and
// then sees ErrStreamClosed; later Publish calls are dropped. Close is
// idempotent.
func (s *Stream) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	subs := make([]*Subscription, 0, len(s.subs))
	for sub := range s.subs {
		subs = append(subs, sub)
	}
	s.subs = map[*Subscription]struct{}{}
	s.mu.Unlock()
	for _, sub := range subs {
		sub.close(nil)
	}
}

// detach removes a subscription from the fan-out set (it stops
// receiving new messages; queued ones remain readable).
func (s *Stream) detach(sub *Subscription) {
	s.mu.Lock()
	delete(s.subs, sub)
	s.mu.Unlock()
}

// Subscription is one subscriber's bounded FIFO view of a Stream.
// Recv is single-consumer; the counters and Cancel are safe from any
// goroutine.
type Subscription struct {
	stream *Stream
	opts   SubOptions

	mu       sync.Mutex
	queue    []StreamMsg
	closed   bool  // no more messages will be queued
	failed   error // terminal error after the backlog drains
	dropped  uint64
	notEmpty chan struct{} // 1-buffered wakeup for Recv
	notFull  chan struct{} // 1-buffered wakeup for Block publishers
}

func newSubscription(s *Stream, opts SubOptions) *Subscription {
	return &Subscription{
		stream:   s,
		opts:     opts,
		notEmpty: make(chan struct{}, 1),
		notFull:  make(chan struct{}, 1),
	}
}

// signal performs a non-blocking send on a 1-buffered wakeup channel.
func signal(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// offer enqueues one message under this subscription's slow-consumer
// policy. Safe for concurrent publishers.
func (c *Subscription) offer(msg StreamMsg) {
	var timeout <-chan time.Time
	var timer *time.Timer
	c.mu.Lock()
	for {
		if c.closed {
			c.mu.Unlock()
			if timer != nil {
				timer.Stop()
			}
			return
		}
		if len(c.queue) < c.opts.Buffer {
			c.queue = append(c.queue, msg)
			c.mu.Unlock()
			if timer != nil {
				timer.Stop()
			}
			signal(c.notEmpty)
			return
		}
		switch c.opts.Policy {
		case Sample:
			// Drop the newcomer: what stays queued is an in-order
			// subsample the consumer will still see oldest-first.
			c.dropped++
			c.mu.Unlock()
			if timer != nil {
				timer.Stop()
			}
			return
		case Block:
			// Backpressure: wait for the consumer to make room, up to
			// the subscriber's timeout — then detach it rather than
			// hold the write path hostage.
			if timeout == nil {
				timer = time.NewTimer(c.opts.BlockTimeout)
				timeout = timer.C
			}
			c.mu.Unlock()
			select {
			case <-c.notFull:
				c.mu.Lock()
			case <-timeout:
				c.close(ErrSlowConsumer)
				return
			}
		default: // DropOldest
			c.queue = c.queue[1:]
			c.dropped++
		}
	}
}

// Recv returns the next message, blocking until one arrives or the
// subscription reaches a terminal state. The queued backlog is always
// drained first; then Recv reports ErrStreamClosed (stream closed or
// subscription cancelled) or ErrSlowConsumer (detached by a Block
// timeout). Recv must not be called concurrently with itself.
func (c *Subscription) Recv() (StreamMsg, error) {
	for {
		c.mu.Lock()
		if len(c.queue) > 0 {
			msg := c.queue[0]
			c.queue = c.queue[1:]
			c.mu.Unlock()
			signal(c.notFull)
			return msg, nil
		}
		if c.closed {
			err := c.failed
			c.mu.Unlock()
			if err == nil {
				err = ErrStreamClosed
			}
			return StreamMsg{}, err
		}
		c.mu.Unlock()
		<-c.notEmpty
	}
}

// TryRecv is Recv without blocking: ok=false means the queue is empty
// right now (err is then nil on a live subscription, terminal
// otherwise).
func (c *Subscription) TryRecv() (msg StreamMsg, ok bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.queue) > 0 {
		msg = c.queue[0]
		c.queue = c.queue[1:]
		signal(c.notFull)
		return msg, true, nil
	}
	if c.closed {
		if err = c.failed; err == nil {
			err = ErrStreamClosed
		}
	}
	return StreamMsg{}, false, err
}

// Cancel detaches the subscription. Pending messages remain readable;
// after the drain Recv returns ErrStreamClosed. Safe to call more than
// once and concurrently with Recv.
func (c *Subscription) Cancel() { c.close(nil) }

// Dropped returns how many messages this subscription's policy has
// discarded so far (evicted under DropOldest, refused under Sample).
func (c *Subscription) Dropped() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Pending returns the current queue depth.
func (c *Subscription) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// close marks the subscription terminal with cause (nil = plain close)
// and wakes both sides. First cause wins.
func (c *Subscription) close(cause error) {
	c.stream.detach(c)
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		c.failed = cause
	}
	c.mu.Unlock()
	signal(c.notEmpty)
	signal(c.notFull)
}

// StreamPublisher is the streaming write face: store an object and
// publish its payload to live subscribers in one call. The Streaming
// wrapper implements it; callers should go through the PutStream
// helper, which degrades to a plain Put on stores without the face.
type StreamPublisher interface {
	// PutStream durably stores data under name and then publishes it.
	PutStream(name string, data []byte) error
}

// Subscribable is implemented by stores that can hand out live
// subscriptions (the Streaming wrapper). Consumers test for it with a
// type assertion, so plain backends keep working unchanged.
type Subscribable interface {
	// Subscribe attaches a new subscriber to the store's stream.
	Subscribe(opts SubOptions) *Subscription
}

// PutStream stores one object and publishes it to live subscribers:
// through the store's StreamPublisher face when it has one, or as a
// plain Put (no publication) otherwise.
func PutStream(store ObjectStore, name string, data []byte) error {
	if sp, ok := store.(StreamPublisher); ok {
		return sp.PutStream(name, data)
	}
	return store.Put(name, data)
}

// Streaming adds the streaming face to any backend: every object
// stored through Put/PutVec/PutStream is also published on an embedded
// Stream, after the inner store accepted it. The wrapper belongs
// *outermost* in the pipeline stack — above the chunk store, above
// Compressing — so subscribers receive the payload as the application
// wrote it (decoded, unchunked), not the framed form that lands on the
// device. Payloads are copied once per publish and only while someone
// is subscribed, so an unwatched stream costs nothing on the write
// path.
type Streaming struct {
	Backend
	stream *Stream
}

// NewStreaming wraps inner with the streaming face.
func NewStreaming(inner Backend) *Streaming {
	return &Streaming{Backend: inner, stream: NewStream()}
}

// Name implements Backend: the inner name tagged with the face.
func (s *Streaming) Name() string { return s.Backend.Name() + "+stream" }

// Inner returns the wrapped backend.
func (s *Streaming) Inner() Backend { return s.Backend }

// Stream returns the hub publishers and subscribers share.
func (s *Streaming) Stream() *Stream { return s.stream }

// Subscribe implements Subscribable.
func (s *Streaming) Subscribe(opts SubOptions) *Subscription {
	return s.stream.Subscribe(opts)
}

// Put implements ObjectStore: store, then publish a copy to live
// subscribers (the inner store may alias or recycle data; subscribers
// need their own stable bytes).
func (s *Streaming) Put(name string, data []byte) error {
	if err := s.Backend.Put(name, data); err != nil {
		return err
	}
	if s.stream.HasSubscribers() {
		s.stream.Publish(name, append([]byte(nil), data...))
	}
	return nil
}

// PutVec implements VecStore: the scatter-gather path publishes the
// flattened payload, and flattens only when someone is subscribed.
func (s *Streaming) PutVec(name string, segs [][]byte) error {
	var flat []byte
	if s.stream.HasSubscribers() {
		flat = FlattenSegs(segs) // before the store recycles the segments
	}
	if err := PutVec(s.Backend, name, segs); err != nil {
		return err
	}
	if flat != nil {
		s.stream.Publish(name, flat)
	}
	return nil
}

// PutStream implements StreamPublisher. On this wrapper it is Put —
// the face exists so callers can require publication via the
// storage.PutStream helper.
func (s *Streaming) PutStream(name string, data []byte) error {
	return s.Put(name, data)
}

// CloseStream shuts the stream down (subscribers drain, then see
// ErrStreamClosed). The inner backend is untouched.
func (s *Streaming) CloseStream() { s.stream.Close() }

// Delete forwards ObjectDeleter to the inner backend.
func (s *Streaming) Delete(name string) error {
	if d, ok := s.Backend.(ObjectDeleter); ok {
		return d.Delete(name)
	}
	return fmt.Errorf("storage: backend %s cannot delete objects", s.Backend.Name())
}

// Retain forwards Retainer to the inner backend.
func (s *Streaming) Retain(name string) error {
	if r, ok := s.Backend.(Retainer); ok {
		return r.Retain(name)
	}
	return fmt.Errorf("storage: backend %s has no retain face", s.Backend.Name())
}

// Release forwards Retainer to the inner backend.
func (s *Streaming) Release(name string) error {
	if r, ok := s.Backend.(Retainer); ok {
		return r.Release(name)
	}
	return fmt.Errorf("storage: backend %s has no retain face", s.Backend.Name())
}

// ObjectCodec forwards ObjectCodecInfoer to the inner backend.
func (s *Streaming) ObjectCodec(name string) (CodecInfo, bool) {
	if ci, ok := s.Backend.(ObjectCodecInfoer); ok {
		return ci.ObjectCodec(name)
	}
	return CodecInfo{}, false
}

// ObjectChunks forwards ObjectChunkInfoer to the inner backend.
func (s *Streaming) ObjectChunks(name string) (ChunkInfo, bool) {
	if ci, ok := s.Backend.(ObjectChunkInfoer); ok {
		return ci.ObjectChunks(name)
	}
	return ChunkInfo{}, false
}
