package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/compress"
)

// The compression frame is the self-describing envelope the pipeline
// wraps every compressed object in before it reaches a backend:
//
//	offset 0  magic "DCF1" (4 bytes)
//	offset 4  codec-name length (1 byte)
//	offset 5  codec name (ASCII)
//	       +  raw payload size, uint32 little-endian
//	       +  element size, uint32 little-endian
//	       +  encoded payload
//
// The header carries everything Decode needs — codec, expected raw
// size, element structure — so a store can be read back by a process
// that knows nothing about how it was written, and objects written
// without compression (no magic) pass through untouched.

// frameMagic marks (and versions) the compression frame envelope.
var frameMagic = []byte("DCF1")

// maxFrameExpansion bounds how much larger than its encoded payload a
// frame may claim its raw payload is. The most aggressive registered
// codec cannot legitimately exceed it (DEFLATE tops out near 1032:1,
// byte RLE at 128:1, Gorilla at one control bit per 64-bit word), and
// the bound keeps a corrupt header's raw-size field from driving a
// giant allocation before the codec ever sees the payload.
const maxFrameExpansion = 1040

// frameSlack lets tiny payloads round-trip: expansion bounds only bite
// past this many raw bytes.
const frameSlack = 4096

// maxFrameElemSize bounds the element width a frame may declare; the
// encoder and the header parser enforce the same limit.
const maxFrameElemSize = 64

// ErrNotFramed is returned when an object does not start with the
// compression-frame magic: it was stored without the compression
// pipeline. Callers should test with errors.Is and fall back to using
// the bytes as they are.
var ErrNotFramed = errors.New("storage: object not compression-framed")

// ErrCorruptFrame is returned for an object that carries the frame
// magic but whose header or payload cannot be decoded: truncated
// header fields, an implausible raw size, an unknown codec name (also
// wrapping compress.ErrUnknownCodec), or a payload the named codec
// rejects. Restore paths report it the same way they report missing
// objects: the object is known but not recoverable.
var ErrCorruptFrame = errors.New("storage: corrupt compression frame")

// FrameHeader describes a framed object without decoding its payload.
type FrameHeader struct {
	// Codec is the registered codec name the payload was encoded with.
	Codec string
	// RawSize is the decoded payload length in bytes.
	RawSize int
	// ElemSize is the element width handed to element-structured codecs
	// (1 for byte-oriented codecs).
	ElemSize int
	// EncodedSize is the encoded payload length in bytes (excluding the
	// header itself).
	EncodedSize int
}

// Ratio returns RawSize/EncodedSize, the paper's "600%" being 6.0.
func (h FrameHeader) Ratio() float64 {
	return compress.Ratio(h.RawSize, h.EncodedSize)
}

// IsFramed reports whether an object starts with the compression-frame
// magic.
func IsFramed(obj []byte) bool {
	return len(obj) >= len(frameMagic) && string(obj[:len(frameMagic)]) == string(frameMagic)
}

// EncodeFrame compresses raw with the named codec and wraps the result
// in a frame. elemSize is handed to element-structured codecs; it must
// divide len(raw) when greater than one (a trailing partial element
// would be silently dropped by Gorilla-style codecs, so it is rejected
// here instead).
func EncodeFrame(codecName string, raw []byte, elemSize int) ([]byte, error) {
	if elemSize <= 0 {
		elemSize = 1
	}
	if elemSize > maxFrameElemSize {
		return nil, fmt.Errorf("storage: element size %d exceeds the frame limit of %d",
			elemSize, maxFrameElemSize)
	}
	if int64(len(raw)) > math.MaxUint32 {
		// The header's raw-size field is 32-bit; a silent wrap would
		// store an object that can never decode.
		return nil, fmt.Errorf("storage: %d-byte payload exceeds the 4 GiB frame limit", len(raw))
	}
	if elemSize > 1 && len(raw)%elemSize != 0 {
		return nil, fmt.Errorf("storage: frame payload of %d bytes is not a multiple of element size %d",
			len(raw), elemSize)
	}
	codec, err := compress.ByName(codecName)
	if err != nil {
		return nil, err
	}
	enc, err := codec.Encode(raw, elemSize)
	if err != nil {
		return nil, err
	}
	name := codec.Name()
	if len(name) > 255 {
		return nil, fmt.Errorf("storage: codec name %q too long to frame", name)
	}
	out := make([]byte, 0, len(frameMagic)+1+len(name)+8+len(enc))
	out = appendFrameHeader(out, name, len(raw), elemSize)
	return append(out, enc...), nil
}

// appendFrameHeader appends the frame envelope header — magic, codec
// name, raw size, element size — to dst. It is the one place the
// header layout is written, shared by EncodeFrame and the
// scatter-gather path (which sends the header as its own segment ahead
// of the payload segments instead of copying payloads into one
// buffer). The caller has validated name length, raw size and element
// size.
func appendFrameHeader(dst []byte, name string, rawSize, elemSize int) []byte {
	dst = append(dst, frameMagic...)
	dst = append(dst, byte(len(name)))
	dst = append(dst, name...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(rawSize))
	return binary.LittleEndian.AppendUint32(dst, uint32(elemSize))
}

// ParseFrameHeader splits a framed object into its header and encoded
// payload without decoding. It returns ErrNotFramed for objects
// without the magic and ErrCorruptFrame for damaged headers; the codec
// name is validated against the registry, so garbage names surface as
// ErrCorruptFrame wrapping compress.ErrUnknownCodec.
func ParseFrameHeader(obj []byte) (FrameHeader, []byte, error) {
	if !IsFramed(obj) {
		return FrameHeader{}, nil, fmt.Errorf("%w (%d bytes)", ErrNotFramed, len(obj))
	}
	rest := obj[len(frameMagic):]
	if len(rest) < 1 {
		return FrameHeader{}, nil, fmt.Errorf("%w: truncated before codec name", ErrCorruptFrame)
	}
	nameLen := int(rest[0])
	rest = rest[1:]
	if len(rest) < nameLen+8 {
		return FrameHeader{}, nil, fmt.Errorf("%w: truncated header", ErrCorruptFrame)
	}
	h := FrameHeader{Codec: string(rest[:nameLen])}
	if _, err := compress.ByName(h.Codec); err != nil {
		return FrameHeader{}, nil, fmt.Errorf("%w: %w", ErrCorruptFrame, err)
	}
	rest = rest[nameLen:]
	h.RawSize = int(binary.LittleEndian.Uint32(rest))
	h.ElemSize = int(binary.LittleEndian.Uint32(rest[4:]))
	enc := rest[8:]
	h.EncodedSize = len(enc)
	if h.ElemSize <= 0 || h.ElemSize > maxFrameElemSize {
		return FrameHeader{}, nil, fmt.Errorf("%w: element size %d", ErrCorruptFrame, h.ElemSize)
	}
	if h.ElemSize > 1 && h.RawSize%h.ElemSize != 0 {
		return FrameHeader{}, nil, fmt.Errorf("%w: raw size %d not a multiple of element size %d",
			ErrCorruptFrame, h.RawSize, h.ElemSize)
	}
	if h.RawSize > frameSlack && h.RawSize > maxFrameExpansion*h.EncodedSize {
		return FrameHeader{}, nil, fmt.Errorf("%w: implausible raw size %d for %d encoded bytes",
			ErrCorruptFrame, h.RawSize, h.EncodedSize)
	}
	return h, enc, nil
}

// DecodeFrame parses and decodes a framed object back to its raw
// payload. Objects without the magic return ErrNotFramed; anything the
// header parser or codec rejects returns ErrCorruptFrame.
func DecodeFrame(obj []byte) ([]byte, FrameHeader, error) {
	h, enc, err := ParseFrameHeader(obj)
	if err != nil {
		return nil, FrameHeader{}, err
	}
	codec, err := compress.ByName(h.Codec)
	if err != nil {
		// Unreachable after ParseFrameHeader, kept for defense in depth.
		return nil, h, fmt.Errorf("%w: %w", ErrCorruptFrame, err)
	}
	raw, err := codec.Decode(enc, h.RawSize, h.ElemSize)
	if err != nil {
		return nil, h, fmt.Errorf("%w: %s payload: %v", ErrCorruptFrame, h.Codec, err)
	}
	if len(raw) != h.RawSize {
		return nil, h, fmt.Errorf("%w: %s decoded %d bytes, header says %d",
			ErrCorruptFrame, h.Codec, len(raw), h.RawSize)
	}
	return raw, h, nil
}
