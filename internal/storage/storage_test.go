package storage

import (
	"bytes"
	"errors"
	"reflect"
	"sort"
	"testing"

	"repro/internal/des"
	"repro/internal/rng"
	"repro/internal/topology"
)

func testPlatform() topology.Platform {
	p := topology.Kraken(4)
	p.PFS.OSTs = 8
	return p
}

func newBackend(t *testing.T, kind Kind, eng *des.Engine) Backend {
	t.Helper()
	b, err := New(kind, eng, testPlatform(), rng.New(7, 1), t.TempDir())
	if err != nil {
		t.Fatalf("New(%s): %v", kind, err)
	}
	return b
}

func TestNewUnknownKind(t *testing.T) {
	if _, err := New("bogus", des.NewEngine(), testPlatform(), rng.New(1, 1), ""); err == nil {
		t.Fatal("unknown kind should error")
	}
}

func TestSDFNeedsDir(t *testing.T) {
	if _, err := NewSDF(des.NewEngine(), 4, 1e8, ""); err == nil {
		t.Fatal("sdf backend without a directory should error")
	}
}

// TestSimulatedFaceAccounting drives the full simulated life cycle on
// every backend and checks the ledger.
func TestSimulatedFaceAccounting(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(string(kind), func(t *testing.T) {
			eng := des.NewEngine()
			b := newBackend(t, kind, eng)
			const files, perFile = 3, 5e6
			eng.Spawn("writer", func(p *des.Proc) {
				b.BeginPhase()
				for i := 0; i < files; i++ {
					b.Create(p)
					b.Write(p, i, perFile, BigSequential)
					b.Close(p)
				}
			})
			end := eng.Run()
			acc := b.Accounting()
			if acc.BytesWritten != files*perFile {
				t.Errorf("BytesWritten = %v, want %v", acc.BytesWritten, float64(files*perFile))
			}
			if acc.FilesCreated != files {
				t.Errorf("FilesCreated = %d, want %d", acc.FilesCreated, files)
			}
			if acc.IOBusyTime <= 0 || acc.IOBusyTime > end {
				t.Errorf("IOBusyTime = %v outside (0, %v]", acc.IOBusyTime, end)
			}
			if b.Targets() <= 0 {
				t.Errorf("Targets = %d", b.Targets())
			}
		})
	}
}

// TestWriteAsyncCompletes exercises the future-returning write path.
func TestWriteAsyncCompletes(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(string(kind), func(t *testing.T) {
			eng := des.NewEngine()
			b := newBackend(t, kind, eng)
			var done bool
			eng.Spawn("writer", func(p *des.Proc) {
				f := b.WriteAsync(0, 1e6, BigSequential)
				p.Await(f)
				done = true
			})
			eng.Run()
			if !done {
				t.Fatal("async write never completed")
			}
			if got := b.Accounting().BytesWritten; got != 1e6 {
				t.Errorf("BytesWritten = %v, want 1e6", got)
			}
		})
	}
}

// TestPatternOrdering checks that every backend prices the paper's three
// access patterns in the same order: big-sequential streams beat small
// files, which beat extent-locked shared files.
func TestPatternOrdering(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(string(kind), func(t *testing.T) {
			times := map[Pattern]float64{}
			for _, pat := range []Pattern{BigSequential, SmallFile, SharedFile} {
				eng := des.NewEngine()
				b := newBackend(t, kind, eng)
				// Several concurrent streams so pattern-dependent
				// concurrency penalties apply.
				for s := 0; s < 4; s++ {
					target := s
					eng.Spawn("writer", func(p *des.Proc) {
						b.Write(p, target, 50e6, pat)
					})
				}
				times[pat] = eng.Run()
			}
			if !(times[BigSequential] < times[SmallFile] && times[SmallFile] < times[SharedFile]) {
				t.Errorf("pattern cost ordering violated: seq=%v small=%v shared=%v",
					times[BigSequential], times[SmallFile], times[SharedFile])
			}
		})
	}
}

// TestMemoryDeterminism: two identical memory-backend runs are
// bit-identical (no stochastic inputs at all).
func TestMemoryDeterminism(t *testing.T) {
	run := func() (float64, Accounting) {
		eng := des.NewEngine()
		b := NewMemory(eng, 8, 1e8)
		for s := 0; s < 6; s++ {
			target := s
			eng.Spawn("w", func(p *des.Proc) {
				b.Create(p)
				b.Write(p, target, 3e6, SmallFile)
				b.Close(p)
			})
		}
		return eng.Run(), b.Accounting()
	}
	t1, a1 := run()
	t2, a2 := run()
	if t1 != t2 || !reflect.DeepEqual(a1, a2) {
		t.Fatalf("memory backend not deterministic: %v/%v vs %v/%v", t1, a1, t2, a2)
	}
}

// TestObjectRoundTrip stores and reads back real objects on the two
// backends that persist payloads.
func TestObjectRoundTrip(t *testing.T) {
	mem := NewMemory(nil, 4, 1e8)
	sdfB, err := NewSDF(nil, 4, 1e8, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	type store interface {
		Put(string, []byte) error
		Object(string) ([]byte, bool)
		ObjectNames() []string
		Accounting() Accounting
	}
	for name, b := range map[string]store{"memory": mem, "sdf": sdfB} {
		payload := []byte("damaris iteration payload \x00\x01\x02")
		if err := b.Put("job-it000001", payload); err != nil {
			t.Fatalf("%s: Put: %v", name, err)
		}
		if err := b.Put("empty", nil); err != nil {
			t.Fatalf("%s: Put empty: %v", name, err)
		}
		got, ok := b.Object("job-it000001")
		if !ok || !bytes.Equal(got, payload) {
			t.Fatalf("%s: Object round trip failed: ok=%v got=%q", name, ok, got)
		}
		if e, ok := b.Object("empty"); !ok || len(e) != 0 {
			t.Fatalf("%s: empty object round trip failed", name)
		}
		if _, ok := b.Object("missing"); ok {
			t.Fatalf("%s: missing object reported present", name)
		}
		if n := len(b.ObjectNames()); n != 2 {
			t.Fatalf("%s: ObjectNames = %d, want 2", name, n)
		}
		acc := b.Accounting()
		if acc.Objects != 2 || acc.ObjectBytes != int64(len(payload)) {
			t.Fatalf("%s: object accounting = %+v", name, acc)
		}
		if err := b.Put("", []byte("x")); err == nil {
			t.Fatalf("%s: empty name should error", name)
		}
	}
}

// TestPFSPutAccountsOnly: the DES model has no real storage; Put must
// succeed and only move the ledger.
func TestPFSPutAccountsOnly(t *testing.T) {
	b := NewPFS(des.NewEngine(), testPlatform().PFS, rng.New(3, 1))
	if err := b.Put("obj", make([]byte, 128)); err != nil {
		t.Fatal(err)
	}
	acc := b.Accounting()
	if acc.Objects != 1 || acc.ObjectBytes != 128 {
		t.Fatalf("accounting = %+v", acc)
	}
}

func TestPlaceFile(t *testing.T) {
	for _, kind := range Kinds() {
		b := newBackend(t, kind, des.NewEngine())
		r := rng.New(11, 2)
		osts := b.PlaceFile(3, r)
		if len(osts) != 3 {
			t.Fatalf("%s: PlaceFile returned %d targets", kind, len(osts))
		}
		seen := map[int]bool{}
		for _, o := range osts {
			if o < 0 || o >= b.Targets() || seen[o] {
				t.Fatalf("%s: bad placement %v", kind, osts)
			}
			seen[o] = true
		}
		if all := b.PlaceFile(b.Targets()+5, r); len(all) != b.Targets() {
			t.Fatalf("%s: over-striping returned %d targets", kind, len(all))
		}
	}
}

func TestPatternString(t *testing.T) {
	if BigSequential.String() != "big-sequential" || SmallFile.String() != "small-file" ||
		SharedFile.String() != "shared-file" {
		t.Error("pattern names wrong")
	}
	if Pattern(42).String() != "Pattern(42)" {
		t.Error("unknown pattern formatting wrong")
	}
}

// TestGetListRoundTrip drives the full real read face on every
// backend: Put → List → Get, with the pfs model accounting the read
// but returning ErrNoPayload instead of bytes.
func TestGetListRoundTrip(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(string(kind), func(t *testing.T) {
			b := newBackend(t, kind, des.NewEngine())
			payload := []byte("iteration state \x00\x7f")
			objects := map[string][]byte{
				"job-root000-it000000": payload,
				"job-root000-it000001": []byte("x"),
				"other-it000000":       []byte("y"),
			}
			for name, data := range objects {
				if err := b.Put(name, data); err != nil {
					t.Fatalf("Put(%s): %v", name, err)
				}
			}

			all, err := b.List("")
			if err != nil {
				t.Fatal(err)
			}
			if len(all) != 3 || !sort.StringsAreSorted(all) {
				t.Fatalf("List(\"\") = %v", all)
			}
			job, err := b.List("job-")
			if err != nil {
				t.Fatal(err)
			}
			if len(job) != 2 {
				t.Fatalf("List(job-) = %v, want the 2 job objects", job)
			}
			none, err := b.List("absent")
			if err != nil || len(none) != 0 {
				t.Fatalf("List(absent) = %v, %v", none, err)
			}

			got, err := b.Get("job-root000-it000000")
			if kind == KindPFS {
				if !errors.Is(err, ErrNoPayload) {
					t.Fatalf("pfs Get must report ErrNoPayload, got %v", err)
				}
			} else {
				if err != nil || !bytes.Equal(got, payload) {
					t.Fatalf("Get round trip failed: %q, %v", got, err)
				}
			}
			if _, err := b.Get("never-stored"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("missing object: got %v, want ErrNotFound", err)
			}

			acc := b.Accounting()
			if acc.ObjectsRead != 1 {
				t.Errorf("ObjectsRead = %d, want 1 (missing names are not reads)", acc.ObjectsRead)
			}
			if acc.ObjectReadBytes != int64(len(payload)) {
				t.Errorf("ObjectReadBytes = %d, want %d", acc.ObjectReadBytes, len(payload))
			}
		})
	}
}

// TestSimulatedReadFace: the restart path's Read/ReadAsync mirror of
// the write face, on every backend.
func TestSimulatedReadFace(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(string(kind), func(t *testing.T) {
			eng := des.NewEngine()
			b := newBackend(t, kind, eng)
			const perRead = 5e6
			eng.Spawn("reader", func(p *des.Proc) {
				b.BeginPhase()
				b.Open(p)
				b.Read(p, 0, perRead, BigSequential)
				p.Await(b.ReadAsync(1, perRead, BigSequential))
				b.Close(p)
			})
			end := eng.Run()
			if end <= 0 {
				t.Fatal("reads charged no virtual time")
			}
			acc := b.Accounting()
			if acc.BytesRead != 2*perRead {
				t.Errorf("BytesRead = %v, want %v", acc.BytesRead, 2*perRead)
			}
			if acc.BytesWritten != 0 {
				t.Errorf("reads leaked into BytesWritten: %v", acc.BytesWritten)
			}
			if acc.IOBusyTime <= 0 || acc.IOBusyTime > end {
				t.Errorf("IOBusyTime = %v outside (0, %v]", acc.IOBusyTime, end)
			}
		})
	}
}

// TestSDFGetCollidedName: a name that merely flattens to an existing
// file must be rejected by Get, in-process and from a fresh backend.
func TestSDFGetCollidedName(t *testing.T) {
	dir := t.TempDir()
	b, err := NewSDF(nil, 4, 1e9, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Put("a/b", []byte{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get("a_b"); err == nil || errors.Is(err, ErrNotFound) {
		t.Fatalf("collided Get must fail with a collision error, got %v", err)
	}
	if got, err := b.Get("a/b"); err != nil || !bytes.Equal(got, []byte{1}) {
		t.Fatalf("owner Get broken: %q, %v", got, err)
	}
	// A fresh backend over the same directory has no in-memory owner
	// map; the name attribute inside the file must still catch it.
	fresh, err := NewSDF(nil, 4, 1e9, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Get("a_b"); err == nil || errors.Is(err, ErrNotFound) {
		t.Fatalf("fresh-process collided Get must fail with a collision error, got %v", err)
	}
	if got, err := fresh.Get("a/b"); err != nil || !bytes.Equal(got, []byte{1}) {
		t.Fatalf("fresh-process owner Get broken: %q, %v", got, err)
	}
	// List recovers the unflattened name from the file.
	names, err := fresh.List("a/")
	if err != nil || len(names) != 1 || names[0] != "a/b" {
		t.Fatalf("List = %v, %v; want [a/b]", names, err)
	}
	if _, err := fresh.Get(""); err == nil {
		t.Fatal("empty name must error")
	}
}

// TestSDFOverwriteAccounting: re-putting the same object name replaces
// it, so it counts once — with the size of the latest version — just
// like Memory.Put.
func TestSDFOverwriteAccounting(t *testing.T) {
	b, err := NewSDF(nil, 4, 1e9, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Put("obj", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := b.Put("obj", make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	acc := b.Accounting()
	if acc.Objects != 1 {
		t.Errorf("Objects = %d, want 1 after overwrite", acc.Objects)
	}
	if acc.ObjectBytes != 40 {
		t.Errorf("ObjectBytes = %d, want 40 (latest version only)", acc.ObjectBytes)
	}
	data, ok := b.Object("obj")
	if !ok || len(data) != 40 {
		t.Fatalf("stored object wrong: ok=%v len=%d", ok, len(data))
	}
	if n := len(b.ObjectNames()); n != 1 {
		t.Errorf("%d files on disk, want 1", n)
	}
}

// TestSDFPathCollisionRejected: distinct object names that flatten to
// the same file must error instead of silently clobbering each other.
func TestSDFPathCollisionRejected(t *testing.T) {
	b, err := NewSDF(nil, 4, 1e9, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Put("a/b", []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := b.Put("a_b", []byte{2}); err == nil {
		t.Fatal("a_b must collide with a/b")
	}
	if err := b.Put(`a\b`, []byte{3}); err == nil {
		t.Fatal(`a\b must collide with a/b`)
	}
	// The original survives untouched and re-putting it still works.
	if data, ok := b.Object("a/b"); !ok || len(data) != 1 || data[0] != 1 {
		t.Fatalf("original object damaged: ok=%v data=%v", ok, data)
	}
	if err := b.Put("a/b", []byte{9}); err != nil {
		t.Fatalf("re-put of the owner rejected: %v", err)
	}
	acc := b.Accounting()
	if acc.Objects != 1 || acc.ObjectBytes != 1 {
		t.Errorf("accounting after collisions: %+v", acc)
	}
}
