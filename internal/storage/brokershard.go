package storage

import (
	"sync"
	"time"

	"repro/internal/des"
)

// ShardedBroker is a TokenBroker that partitions the target space
// across independent child brokers, so writers contending for disjoint
// targets never touch the same mutex. Target t belongs to shard
// t mod K; a request whose targets all land in one shard routes
// straight to it, and a request spanning shards acquires them in
// ascending shard order — every spanning writer uses the same order,
// so cross-shard acquisition cannot deadlock.
//
// The cluster workload is the single-shard case almost always: each
// tree root claims a small contiguous target window, and distinct
// windows spread across shards, so K roots writing concurrently hit K
// different locks instead of serializing on one.
//
// PolicyGlobal counts concurrent writers, not targets, so it cannot be
// partitioned without changing its meaning; NewShardedBroker falls
// back to a single Broker for it.
type ShardedBroker struct {
	opts   BrokerOptions
	shards []*Broker

	mu    sync.Mutex
	stats BrokerStats // request-level ledger (per-target detail lives in the shards)
	// deaths counts ReleaseHolder calls per holder. A spanning Acquire
	// snapshots its holder's count up front and re-checks it after every
	// shard grant: a bump means ReleaseHolder ran mid-acquisition, and
	// the shards it swept could not see grants taken after the sweep —
	// the acquisition rolls every shard back and reports Denied, so a
	// holder that dies between spanning acquisition and rollback cannot
	// strand tokens on shards the sweep already passed.
	deaths map[int]int

	// testBetweenShards, when set (tests only), runs between consecutive
	// shard acquisitions of a spanning request, so a test can schedule a
	// ReleaseHolder exactly inside the window the epoch check closes.
	testBetweenShards func(nextShard int)
}

// NewShardedBroker builds a broker with the given shard count. Counts
// below two, and PolicyGlobal (whose concurrency bound is inherently
// global), return the plain single-lock Broker.
func NewShardedBroker(opts BrokerOptions, shards int) TokenBroker {
	if opts.Policy == "" {
		opts.Policy = PolicyPerTarget
	}
	if opts.Targets <= 0 {
		opts.Targets = 1
	}
	if shards > opts.Targets {
		shards = opts.Targets
	}
	if shards < 2 || opts.Policy == PolicyGlobal {
		return NewBroker(opts)
	}
	s := &ShardedBroker{opts: opts, shards: make([]*Broker, shards), deaths: map[int]int{}}
	for i := range s.shards {
		// Each child keeps the full target space for resolution, so the
		// parent can hand it already-resolved target ids unchanged.
		s.shards[i] = NewBroker(opts)
	}
	return s
}

// Shards returns the shard count (diagnostics).
func (s *ShardedBroker) Shards() int { return len(s.shards) }

// shardPart is one shard's slice of a spanning request.
type shardPart struct {
	shard   int
	targets []int
}

// partition resolves a request's targets and splits them by owning
// shard, ascending — the one acquisition order every caller uses.
func (s *ShardedBroker) partition(targets []int) []shardPart {
	resolved := resolveTargets(targets, s.opts.Targets)
	parts := make([]shardPart, 0, 1)
	for _, t := range resolved { // resolved is sorted, so parts group naturally
		sh := t % len(s.shards)
		found := false
		for i := range parts {
			if parts[i].shard == sh {
				parts[i].targets = append(parts[i].targets, t)
				found = true
				break
			}
		}
		if !found {
			parts = append(parts, shardPart{shard: sh, targets: []int{t}})
		}
	}
	// Ascending shard order; the per-shard target lists stay sorted.
	for i := 1; i < len(parts); i++ {
		for j := i; j > 0 && parts[j-1].shard > parts[j].shard; j-- {
			parts[j-1], parts[j] = parts[j], parts[j-1]
		}
	}
	return parts
}

// deathEpoch returns the holder's ReleaseHolder count.
func (s *ShardedBroker) deathEpoch(holder int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deaths[holder]
}

// account records one successful request-level grant.
func (s *ShardedBroker) account(req TokenRequest, wait float64, contended bool) {
	holder := req.Holder
	s.mu.Lock()
	s.stats.Grants++
	if s.stats.GrantsByHolder == nil {
		s.stats.GrantsByHolder = map[int]int{}
	}
	s.stats.GrantsByHolder[holder]++
	if s.stats.BytesByTenant == nil {
		s.stats.BytesByTenant = map[int]float64{}
	}
	s.stats.BytesByTenant[req.Tenant] += req.Bytes
	if contended {
		s.stats.ContendedGrants++
		s.stats.WaitTime += wait
		if s.stats.WaitByHolder == nil {
			s.stats.WaitByHolder = map[int]float64{}
		}
		s.stats.WaitByHolder[holder] += wait
		if s.stats.ContendedByHolder == nil {
			s.stats.ContendedByHolder = map[int]int{}
		}
		s.stats.ContendedByHolder[holder]++
	}
	s.mu.Unlock()
}

// releaseAll releases every shard grant acquired so far.
func releaseAll(grants []TokenGrant) {
	for i := range grants {
		grants[i].Release()
	}
}

// Acquire implements TokenBroker (real face): shard grants are taken
// in ascending shard order; a denial anywhere (the holder died while
// queued) rolls back the shards already held, and a ReleaseHolder that
// lands mid-acquisition (death-epoch bump) rolls back likewise — see
// the deaths field.
func (s *ShardedBroker) Acquire(req TokenRequest) TokenGrant {
	start := time.Now()
	epoch := s.deathEpoch(req.Holder)
	parts := s.partition(req.Targets)
	grants := make([]TokenGrant, 0, len(parts))
	contended := false
	for i, p := range parts {
		if i > 0 && s.testBetweenShards != nil {
			s.testBetweenShards(p.shard)
		}
		sub := req
		sub.Targets = p.targets
		g := s.shards[p.shard].Acquire(sub)
		if g.Denied || s.deathEpoch(req.Holder) != epoch {
			grants = append(grants, g)
			releaseAll(grants)
			return TokenGrant{Denied: true, Wait: time.Since(start).Seconds()}
		}
		contended = contended || g.Contended
		grants = append(grants, g)
	}
	wait := time.Since(start).Seconds()
	s.account(req, wait, contended)
	return TokenGrant{
		Wait:      wait,
		Contended: contended,
		release:   func() { releaseAll(grants) },
	}
}

// AcquireSim implements TokenBroker (DES face); see Acquire.
func (s *ShardedBroker) AcquireSim(p *des.Proc, req TokenRequest) TokenGrant {
	if s.opts.Engine == nil {
		panic("storage: AcquireSim on a broker with no engine")
	}
	start := s.opts.Engine.Now()
	epoch := s.deathEpoch(req.Holder)
	parts := s.partition(req.Targets)
	grants := make([]TokenGrant, 0, len(parts))
	contended := false
	for _, part := range parts {
		sub := req
		sub.Targets = part.targets
		g := s.shards[part.shard].AcquireSim(p, sub)
		if g.Denied || s.deathEpoch(req.Holder) != epoch {
			grants = append(grants, g)
			releaseAll(grants)
			return TokenGrant{Denied: true, Wait: s.opts.Engine.Now() - start}
		}
		contended = contended || g.Contended
		grants = append(grants, g)
	}
	wait := s.opts.Engine.Now() - start
	s.account(req, wait, contended)
	return TokenGrant{
		Wait:      wait,
		Contended: contended,
		release:   func() { releaseAll(grants) },
	}
}

// ReleaseHolder implements TokenBroker: the holder's death epoch is
// bumped first, then EVERY child shard — not just the ones with held
// targets — frees the dead holder's tokens and cancels its queued
// requests. A spanning request of the holder that is mid-acquisition
// either sees its next shard deny it, or observes the epoch bump right
// after a grant the sweep could not see; both paths roll back every
// shard already held.
func (s *ShardedBroker) ReleaseHolder(holder int) int {
	s.mu.Lock()
	s.deaths[holder]++
	s.mu.Unlock()
	freed := 0
	for _, sh := range s.shards {
		freed += sh.ReleaseHolder(holder)
	}
	return freed
}

// Outstanding implements TokenBroker: held tokens across all shards.
func (s *ShardedBroker) Outstanding() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Outstanding()
	}
	return n
}

// Stats implements TokenBroker. Request-level counters (grants, waits,
// contention) come from the parent ledger so a spanning request counts
// once; per-target detail, cancellations and queue depth come from the
// shards (MaxQueueLen is the deepest single shard, since the shards
// queue independently).
func (s *ShardedBroker) Stats() BrokerStats {
	s.mu.Lock()
	out := s.stats
	out.WaitByHolder = copyFloatMap(s.stats.WaitByHolder)
	out.ContendedByHolder = copyIntMap(s.stats.ContendedByHolder)
	s.mu.Unlock()
	for _, sh := range s.shards {
		bs := sh.Stats()
		for t, n := range bs.GrantsByTarget {
			if out.GrantsByTarget == nil {
				out.GrantsByTarget = map[int]int{}
			}
			out.GrantsByTarget[t] += n
		}
		out.CanceledRequests += bs.CanceledRequests
		out.HolderReleases += bs.HolderReleases
		if bs.MaxQueueLen > out.MaxQueueLen {
			out.MaxQueueLen = bs.MaxQueueLen
		}
	}
	return out
}
