package storage

import (
	"bytes"
	"testing"
)

// FuzzFrameDecode feeds arbitrary bytes to the frame decoder: it must
// never panic or over-allocate, and anything it accepts must
// re-encode with the parsed header's codec and decode back to the
// same raw payload — the same contract the batch-codec fuzz target
// holds in internal/cluster.
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte("not a frame"))
	f.Add([]byte("DCF1"))
	seed := func(codec string, raw []byte, elem int) {
		obj, err := EncodeFrame(codec, raw, elem)
		if err == nil {
			f.Add(obj)
			f.Add(obj[:len(obj)-1])
		}
	}
	seed("none", []byte("plain payload"), 1)
	seed("rle", bytes.Repeat([]byte{0, 0, 9}, 100), 1)
	seed("gorilla", make([]byte, 256), 8)
	seed("delta", make([]byte, 256), 8)
	seed("flate", bytes.Repeat([]byte("abc"), 50), 1)
	f.Fuzz(func(t *testing.T, data []byte) {
		raw, h, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if len(raw) != h.RawSize {
			t.Fatalf("decoded %d bytes, header claims %d", len(raw), h.RawSize)
		}
		re, err := EncodeFrame(h.Codec, raw, h.ElemSize)
		if err != nil {
			t.Fatalf("re-encoding an accepted frame failed: %v", err)
		}
		raw2, h2, err := DecodeFrame(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if h2.Codec != h.Codec || !bytes.Equal(raw2, raw) {
			t.Fatalf("round trip not stable: %+v vs %+v", h, h2)
		}
	})
}
