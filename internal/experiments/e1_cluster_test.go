package experiments

import (
	"testing"

	"repro/internal/iostrat"
)

// TestE1ThroughCluster is the acceptance run for the multi-node layer:
// the E1 weak-scaling experiment at 16 simulated nodes (192 Kraken
// cores), routed through the internal/cluster aggregation tree, under
// two different storage backends. Damaris must beat both baselines on
// aggregate throughput with every backend, and the full throughput
// ordering of the three approaches must not depend on the backend.
func TestE1ThroughCluster(t *testing.T) {
	base := Options{
		Seed:       2013,
		Iterations: 2,
		Scales:     []int{192}, // 16 nodes × 12 cores on kraken
		Platform:   "kraken",
		Fanout:     4,
	}
	ranking := func(backend string) []iostrat.Approach {
		opts := base
		opts.Backend = backend
		res, err := RunE1(opts)
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		th := map[iostrat.Approach]float64{}
		for a, r := range res.Results[192] {
			th[a] = r.Throughput()
		}
		ranked := iostrat.RankByThroughput(th)
		if ranked[0] != iostrat.Damaris {
			t.Errorf("%s: damaris not on top: dam=%v coll=%v fpp=%v",
				backend, th[iostrat.Damaris], th[iostrat.Collective], th[iostrat.FilePerProcess])
		}
		return ranked
	}
	pfsRank := ranking("pfs")
	memRank := ranking("memory")
	for i := range pfsRank {
		if pfsRank[i] != memRank[i] {
			t.Fatalf("aggregate-throughput ordering differs across backends: pfs=%v memory=%v",
				pfsRank, memRank)
		}
	}
}

// TestE1ClusterReducesFiles: with the aggregation tree on, Damaris
// creates far fewer (larger) files than the per-node baseline.
func TestE1ClusterReducesFiles(t *testing.T) {
	opts := Options{Seed: 2013, Iterations: 2, Scales: []int{192}, Platform: "kraken"}
	baseline, err := RunE1(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Fanout = 4
	clustered, err := RunE1(opts)
	if err != nil {
		t.Fatal(err)
	}
	b := baseline.Results[192][iostrat.Damaris].FilesCreated
	c := clustered.Results[192][iostrat.Damaris].FilesCreated
	if c >= b {
		t.Errorf("cluster aggregation did not reduce files: %d vs %d", c, b)
	}
}
