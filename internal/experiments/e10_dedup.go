package experiments

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/iostrat"
	"repro/internal/meta"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/storage/chunk"
	"repro/internal/topology"
)

// e10Fracs is the overwrite-fraction sweep: the share of the dataset
// rewritten between consecutive checkpoints. 0 is the pure append /
// static-state extreme, 1 is a full overwrite every iteration (no
// cross-iteration sharing for the dedup store to find).
var e10Fracs = []float64{0, 0.25, 0.5, 1}

// e10ClusterMeta uses 2 KiB blocks so each iteration's merged object is
// large against the chunk size and the boundary dirt around an edit
// stays a small fraction of the volume.
const e10ClusterMeta = `<simulation name="e10">
  <architecture><dedicated cores="1"/><buffer size="4194304"/></architecture>
  <data>
    <parameter name="n" value="256"/>
    <layout name="row" type="float64" dimensions="n"/>
    <variable name="theta" layout="row"/>
  </data>
</simulation>`

// e10ChunkParams keeps chunks small against the 32 KiB per-iteration
// objects of the runtime sweep, so dedup granularity — not boundary
// overhead — dominates the measurement.
var e10ChunkParams = chunk.Params{Min: 256, Avg: 1024, Max: 4096}

// e10Payload builds the 2 KiB block for (node, source, it): blocks
// whose index falls below the overwrite fraction get fresh pseudorandom
// content every iteration, the rest stay bit-identical across the run.
// Content is pseudorandom, never a ramp — low-entropy data would starve
// the rolling hash of boundaries and turn content-defined chunking into
// fixed-size cuts.
func e10Payload(clients int, frac float64, total, node, source, it int) []byte {
	idx := node*clients + source
	seed := int64(node)<<20 | int64(source)<<8
	if idx < int(frac*float64(total)+0.5) {
		seed |= int64(it+1) << 32
	}
	r := rand.New(rand.NewSource(seed))
	p := make([]byte, 256*8)
	r.Read(p)
	return p
}

// RunE10 measures content-addressed incremental checkpointing (ROADMAP
// "incremental checkpoints" item) on both faces. Runtime: a real
// cluster writes an overwrite-fraction sweep twice — once to a plain
// store, once through the dedup chunk store — and the table compares
// bytes on the backend, write wall time and restore wall time; a
// retention+GC leg then releases aged iterations, sweeps, and proves
// the retained window still restores. DES: the damaris strategy runs
// with the dedup store priced on the dedicated cores (chunk/hash CPU
// vs forwarded-volume savings), the §IV.D spare-CPU trade that
// motivates doing this on the dedicated core at all.
func RunE10(opts Options) (Report, error) {
	opts = opts.withDefaults()
	rep := Report{ID: "E10", Title: "incremental checkpoints: dedup, retention GC"}

	const (
		rtNodes   = 8
		rtClients = 2
		rtIters   = 8
	)
	rtTable := stats.NewTable(
		fmt.Sprintf("dedup vs plain store, %d nodes × %d clients, %d iterations, memory store",
			rtNodes, rtClients, rtIters),
		"overwrite_frac", "plain_KB", "dedup_KB", "reduction",
		"write_ms_plain", "write_ms_dedup", "restore_ms_plain", "restore_ms_dedup", "recovered_frac")

	minRecovered := 1.0
	reductionAt25 := 0.0
	for _, frac := range e10Fracs {
		f := frac
		payload := func(node, source, it int) []byte {
			return e10Payload(rtClients, f, rtNodes*rtClients, node, source, it)
		}

		plain := storage.NewMemory(nil, 4, 1e9)
		plainWrite, err := runE10Cluster(rtNodes, rtClients, rtIters, 0, plain, payload)
		if err != nil {
			return Report{}, err
		}
		t0 := time.Now()
		if _, err := cluster.Restore(plain, "e10"); err != nil {
			return Report{}, err
		}
		plainRestore := time.Since(t0)
		plainBytes, err := storedBytes(plain)
		if err != nil {
			return Report{}, err
		}

		inner := storage.NewMemory(nil, 4, 1e9)
		ds := chunk.New(inner, chunk.Options{Params: e10ChunkParams})
		dedupWrite, err := runE10Cluster(rtNodes, rtClients, rtIters, 0, ds, payload)
		if err != nil {
			return Report{}, err
		}
		t0 = time.Now()
		restored, err := cluster.Restore(ds, "e10")
		if err != nil {
			return Report{}, err
		}
		dedupRestore := time.Since(t0)
		if len(restored.Problems) > 0 {
			return Report{}, fmt.Errorf("e10: dedup restore problems at frac %v: %v", f, restored.Problems)
		}
		dedupBytes, err := storedBytes(inner)
		if err != nil {
			return Report{}, err
		}

		recovered := float64(restored.TotalBlocks()) / float64(rtNodes*rtClients*rtIters)
		if recovered < minRecovered {
			minRecovered = recovered
		}
		reduction := plainBytes / dedupBytes
		if f == 0.25 {
			reductionAt25 = reduction
		}
		rtTable.AddRow(f, plainBytes/1e3, dedupBytes/1e3, reduction,
			float64(plainWrite.Microseconds())/1e3, float64(dedupWrite.Microseconds())/1e3,
			float64(plainRestore.Microseconds())/1e3, float64(dedupRestore.Microseconds())/1e3,
			recovered)
	}

	// Retention + GC leg at the 25% point: aged iterations are released
	// as the run advances, the sweep reclaims them, and the retained
	// window must still restore completely.
	retain := opts.Retain
	if retain <= 0 {
		retain = 2
	}
	gcInner := storage.NewMemory(nil, 4, 1e9)
	gcStore := chunk.New(gcInner, chunk.Options{Params: e10ChunkParams})
	gcPayload := func(node, source, it int) []byte {
		return e10Payload(rtClients, 0.25, rtNodes*rtClients, node, source, it)
	}
	if _, err := runE10Cluster(rtNodes, rtClients, rtIters, retain, gcStore, gcPayload); err != nil {
		return Report{}, err
	}
	swept, err := gcStore.Sweep()
	if err != nil {
		return Report{}, err
	}
	gcRestored, err := cluster.Restore(gcStore, "e10")
	if err != nil {
		return Report{}, err
	}
	retainedOK := 1.0
	if len(gcRestored.Problems) > 0 {
		retainedOK = 0
	}
	for it := rtIters - retain; it < rtIters; it++ {
		ri := gcRestored.Iterations[it]
		if ri == nil || !ri.Complete(rtNodes) {
			retainedOK = 0
		}
	}
	gcTable := stats.NewTable(
		fmt.Sprintf("retention window %d + GC sweep at overwrite 0.25", retain),
		"objects_swept", "chunks_swept", "KB_freed", "iterations_left", "retained_complete")
	gcTable.AddRow(swept.Objects, swept.Chunks, float64(swept.BytesFreed)/1e3,
		len(gcRestored.Iterations), retainedOK)

	// DES face: the damaris strategy over the priced dedup store. The
	// codec pipeline stays off so the comparison isolates the dedup
	// trade (C1 prices compression).
	cores := opts.maxScale()
	desTable := stats.NewTable(
		fmt.Sprintf("DES damaris, %d cores, dedup store on the dedicated cores",
			cores),
		"assumed_new_frac", "written_GB", "reduction", "saved_GB", "hash_cpu_s", "mean_io_s")
	baseCfg := opts.strategyConfig(cores)
	baseCfg.Codec = ""
	baseCfg.Dedup = false
	baseRes, err := iostrat.Run(iostrat.Damaris, baseCfg)
	if err != nil {
		return Report{}, err
	}
	desTable.AddRow(1.0, stats.GB(baseRes.BytesWritten), 1.0, 0.0, 0.0, baseRes.MeanIOTime())

	desReduction25 := 0.0
	hashCPU := 0.0
	for _, nf := range []float64{1, 0.5, 0.25} {
		cfg := opts.strategyConfig(cores)
		cfg.Codec = ""
		cfg.Dedup = true
		cfg.DedupNewFraction = nf
		res, err := iostrat.Run(iostrat.Damaris, cfg)
		if err != nil {
			return Report{}, err
		}
		reduction := 0.0
		if res.BytesWritten > 0 {
			reduction = baseRes.BytesWritten / res.BytesWritten
		}
		if nf == 0.25 {
			desReduction25 = reduction
			hashCPU = res.HashCPUTime
		}
		desTable.AddRow(nf, stats.GB(res.BytesWritten), reduction,
			stats.GB(res.DedupBytesSaved), res.HashCPUTime, res.MeanIOTime())
	}

	rep.Tables = []*stats.Table{rtTable, gcTable, desTable}
	rep.Checks = []Check{
		{
			Name:     "dedup cuts stored bytes >= 2x at 25% overwrite",
			Paper:    "incremental checkpoints store only changed chunks",
			Measured: reductionAt25, Unit: "x", Lo: 2,
		},
		{
			Name:     "dedup round trip is lossless",
			Paper:    "every sweep point restores 100% of its blocks",
			Measured: minRecovered, Unit: "", Lo: 1, Hi: 1,
		},
		{
			Name:     "retained window survives the GC sweep",
			Paper:    "sweeping released checkpoints never breaks retained ones",
			Measured: retainedOK, Unit: "", Lo: 1, Hi: 1,
		},
		{
			Name:     "GC sweep actually reclaims space",
			Paper:    "released iterations free their objects and chunks",
			Measured: float64(swept.Objects), Unit: "objects", Lo: 1,
		},
		{
			Name:     "DES dedup forwards only the new fraction",
			Paper:    "25% new chunks -> ~4x less volume to the backend",
			Measured: desReduction25, Unit: "x", Lo: 2, Hi: 4.5,
		},
		{
			Name:     "chunk/hash CPU is priced on the dedicated cores",
			Paper:    "fingerprinting costs spare dedicated-core cycles (§IV.D)",
			Measured: hashCPU, Unit: "s", Lo: 1e-9,
		},
	}
	return rep, nil
}

// storedBytes sums the payload sizes of every object a backend holds —
// chunks, recipes and manifests included — the bytes a capacity planner
// would see on the device.
func storedBytes(be storage.Backend) (float64, error) {
	names, err := be.List("")
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, n := range names {
		data, err := be.Get(n)
		if err != nil {
			return 0, err
		}
		total += float64(len(data))
	}
	return total, nil
}

// runE10Cluster drives one runtime cluster over the given store with
// per-(node,source,iteration) payloads and returns the write wall time.
func runE10Cluster(nodes, clients, iters, retain int, store storage.ObjectStore, payload func(node, source, it int) []byte) (time.Duration, error) {
	cfg, err := meta.ParseString(e10ClusterMeta)
	if err != nil {
		return 0, err
	}
	c, err := cluster.New(cluster.Config{
		Platform: topology.Platform{Name: "e10", Nodes: nodes, CoresPerNode: clients + 1},
		Meta:     cfg,
		Fanout:   2,
		Store:    store,
		Retain:   retain,
	})
	if err != nil {
		return 0, err
	}
	start := time.Now()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for n := 0; n < nodes; n++ {
		for s := 0; s < clients; s++ {
			wg.Add(1)
			go func(n, s int) {
				defer wg.Done()
				cl := c.Client(n, s)
				for it := 0; it < iters; it++ {
					if err := cl.Write("theta", it, payload(n, s, it)); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("node %d src %d it %d: %w", n, s, it, err)
						}
						mu.Unlock()
						return
					}
					cl.EndIteration(it)
				}
			}(n, s)
		}
	}
	wg.Wait()
	c.WaitIteration(iters - 1)
	if err := c.Shutdown(); err != nil {
		return 0, err
	}
	if firstErr != nil {
		return 0, firstErr
	}
	return time.Since(start), nil
}
