package experiments

import (
	"strings"
	"testing"
)

func TestE7SQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	rep, err := RunE7S(quick())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "E7S" || len(rep.Tables) != 4 {
		t.Fatalf("unexpected report shape: %s with %d tables", rep.ID, len(rep.Tables))
	}
	// The DES-face checks are deterministic; only the runtime-face
	// wall-clock ratios are machine-dependent, and their bands are
	// generous enough to assert here too.
	for _, c := range rep.Checks {
		if !c.Pass() {
			t.Errorf("check failed: %s", c)
		}
	}
}

func TestE7SPinnedPolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	o := quick()
	o.StreamPolicy = "block"
	o.StreamBuffer = 2
	rep, err := RunE7S(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Checks {
		if strings.HasPrefix(c.Name, "DES: block policy") && !c.Pass() {
			t.Errorf("pinned block policy measured no backpressure: %s", c)
		}
	}
	if _, err := RunE7S(Options{StreamPolicy: "bogus"}); err == nil {
		t.Fatal("bad StreamPolicy accepted")
	}
}

func TestRegistryCoversEveryRunner(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Registry() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete registry entry: %+v", e)
		}
		if e.ID != strings.ToLower(e.ID) {
			t.Errorf("registry id %q is not lower-case", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate registry id %q", e.ID)
		}
		seen[e.ID] = true
	}
	for _, id := range []string{"e1", "e7", "e7s", "e9", "e10", "f1", "r1", "c1", "a1", "a2"} {
		if !seen[id] {
			t.Errorf("registry is missing %q", id)
		}
	}
}
