package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/meta"
	"repro/internal/nek"
	"repro/internal/plugins"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/visitsim"
)

// nekCavityXML is the Damaris description of the cavity used by E7.
const nekCavityXML = `
<simulation name="e7-cavity">
  <architecture><dedicated cores="1"/><buffer size="%d"/></architecture>
  <data>
    <parameter name="n" value="%d"/>
    <layout name="cube" type="float64" dimensions="n,n,n"/>
    <variable name="u" layout="cube"/>
    <variable name="v" layout="cube"/>
    <variable name="w" layout="cube"/>
    <variable name="p" layout="cube"/>
  </data>
</simulation>`

// RunE7 reproduces §V.C.1: in-situ visualization of the Nek proxy.
// Synchronous VisIt-style coupling stalls the simulation inside every
// pipeline execution and degrades with scale; the Damaris coupling has
// no visible impact, and when the analysis cannot keep up the shm-full
// skip policy drops frames instead of blocking the simulation.
//
// Three measurements: (1) real per-step wall times of the three coupling
// modes on the cavity; (2) the skip-policy run with an undersized
// segment; (3) a scale model of the synchronous coupling's collective
// render barrier (max over N per-rank jitter draws) versus the
// scale-independent Damaris write.
func RunE7(opts Options) (Report, error) {
	opts = opts.withDefaults()
	rep := Report{ID: "E7", Title: "in-situ visualization coupling (§V.C.1)"}

	const (
		gridN  = 20
		steps  = 16
		warmup = 3 // discard cache/JIT noise from the first steps
	)
	baseline, err := timeCavitySteps(gridN, steps, nil)
	if err != nil {
		return Report{}, err
	}
	syncTimes, err := timeCavitySteps(gridN, steps, syncAnalysis())
	if err != nil {
		return Report{}, err
	}
	damarisTimes, skipped0, err := timeDamarisCoupled(gridN, steps, 64<<20, 0)
	if err != nil {
		return Report{}, err
	}

	baseMean := stats.Summarize(baseline[warmup:]).Median
	syncMean := stats.Summarize(syncTimes[warmup:]).Median
	damMean := stats.Summarize(damarisTimes[warmup:]).Median
	couple := stats.NewTable(
		fmt.Sprintf("measured per-step wall time, %d^3 cavity, %d steps", gridN, steps),
		"coupling", "mean_step_ms", "slowdown_vs_none")
	couple.AddRow("none", baseMean*1e3, 1.0)
	couple.AddRow("visit-sync", syncMean*1e3, syncMean/baseMean)
	couple.AddRow("damaris-async", damMean*1e3, damMean/baseMean)

	// Skip policy: §V.C.1's challenging case is "analysis tasks taking
	// more than the duration of a simulation time step". With the
	// segment sized for one iteration and the pipeline artificially
	// slowed past the step duration, the middleware must drop frames
	// while the simulation keeps running at full speed.
	iterBytes := 4 * gridN * gridN * gridN * 8
	slowAnalysis := time.Duration(4*baseMean*float64(time.Second)) + 20*time.Millisecond
	tinyTimes, skippedTiny, err := timeDamarisCoupled(gridN, steps, iterBytes+4096, slowAnalysis)
	if err != nil {
		return Report{}, err
	}
	skipTable := stats.NewTable(
		"skip policy under an undersized shared-memory segment",
		"segment", "mean_step_ms", "frames_dropped")
	skipTable.AddRow("ample (64 MB)", damMean*1e3, skipped0)
	skipTable.AddRow("tight (1 iteration)", stats.Mean(tinyTimes)*1e3, skippedTiny)

	// Scale model: parallel synchronous rendering ends in a barrier and
	// an image-compositing exchange (binary swap: log2(N) rounds), so
	// its cost is the max of N per-rank analysis draws plus a
	// compositing term growing with log2(N). Damaris pays the local shm
	// write regardless of N.
	scaleTable := stats.NewTable(
		"modeled per-step time at scale (grid5000 preset, measured per-rank costs)",
		"cores", "visit_sync_s", "damaris_s", "sync_penalty_x")
	r := rng.New(opts.Seed, 77)
	shmWrite := 0.001 + damMean - baseMean // client-visible damaris cost
	if shmWrite < 0.0005 {
		shmWrite = 0.0005
	}
	analysisCost := syncMean - baseMean
	if analysisCost < baseMean/4 {
		analysisCost = baseMean / 4 // floor against timer noise
	}
	var worstPenalty float64
	for _, cores := range []int{96, 192, 384, 800} {
		maxDraw := 0.0
		for i := 0; i < cores; i++ {
			if d := analysisCost * r.UnitLogNormal(0.4); d > maxDraw {
				maxDraw = d
			}
		}
		compositing := 0.15 * analysisCost * math.Log2(float64(cores))
		syncStep := baseMean + maxDraw + compositing
		damStep := baseMean + shmWrite
		penalty := syncStep / damStep
		if penalty > worstPenalty {
			worstPenalty = penalty
		}
		scaleTable.AddRow(cores, syncStep, damStep, penalty)
	}

	rep.Tables = []*stats.Table{couple, skipTable, scaleTable}
	rep.Checks = []Check{
		{
			Name:     "sync coupling slowdown (measured)",
			Paper:    "periodically stopping the application (§V.A)",
			Measured: syncMean / baseMean, Unit: "x", Lo: 1.25,
		},
		{
			Name:     "Damaris coupling slowdown (measured)",
			Paper:    "no performance impact on the simulation (§V.C.1)",
			Measured: damMean / baseMean, Unit: "x", Lo: 0, Hi: 1.5,
		},
		{
			Name:     "Damaris step cost relative to sync coupling",
			Paper:    "analysis runs in parallel with the simulation (§V.B)",
			Measured: damMean / syncMean, Unit: "x", Lo: 0, Hi: 0.85,
		},
		{
			Name:     "frames dropped with tight segment",
			Paper:    "skip iterations to keep up (§V.C.1)",
			Measured: float64(skippedTiny), Unit: "frames", Lo: 1,
		},
		{
			// Blocking on the 20 ms analysis would inflate steps ~20x;
			// the generous band absorbs scheduler noise while still
			// distinguishing "skipped" from "blocked".
			Name:     "simulation never blocks despite drops",
			Paper:    "loss of data rather than blocking (§V.C.1)",
			Measured: stats.Summarize(tinyTimes[warmup:]).Median / baseMean, Unit: "x", Lo: 0, Hi: 3,
		},
		{
			Name:     "modeled sync penalty at 800 cores",
			Paper:    "VisIt synchronous did not scale to 800 cores (§V.C.1)",
			Measured: worstPenalty, Unit: "x", Lo: 1.5,
		},
	}
	return rep, nil
}

// timeCavitySteps advances the cavity and returns per-step wall times;
// analyze, when non-nil, runs synchronously after every step (the
// VisIt-style coupling).
func timeCavitySteps(gridN, steps int, analyze func(*nek.Solver, int) error) ([]float64, error) {
	params := nek.DefaultParams()
	params.N = gridN
	params.PressureIters = 8 // keep compute comparable to the pipeline cost
	solver, err := nek.New(params)
	if err != nil {
		return nil, err
	}
	times := make([]float64, 0, steps)
	for s := 0; s < steps; s++ {
		t0 := time.Now()
		solver.Step()
		if analyze != nil {
			if err := analyze(solver, s); err != nil {
				return nil, err
			}
		}
		times = append(times, time.Since(t0).Seconds())
	}
	return times, nil
}

// syncAnalysis builds the VisIt-style synchronous coupling through the
// visitsim adapter.
func syncAnalysis() func(*nek.Solver, int) error {
	var sim *visitsim.Simulation
	return func(solver *nek.Solver, step int) error {
		if sim == nil {
			sim = visitsim.Setup("e7")
			sim.SetGetMetaData(func(md *visitsim.MetaData) {
				for _, f := range solver.Fields() {
					md.AddVariable(visitsim.VariableMetaData{Name: f.Name, MeshName: "grid", Components: 1})
				}
			})
			sim.SetGetVariable(func(name string) (*visitsim.VariableData, error) {
				for _, f := range solver.Fields() {
					if f.Name == name {
						vd := &visitsim.VariableData{}
						buf := append([]float64(nil), f.Data...)
						return vd, vd.SetData(f.NZ, f.NY, f.NX, buf)
					}
				}
				return nil, fmt.Errorf("no variable %q", name)
			})
		}
		sim.TimeStepChanged(step)
		return sim.UpdatePlots()
	}
}

// timeDamarisCoupled runs the cavity with the visualization plugin on a
// dedicated core and returns per-step times plus dropped iterations.
// analysisDelay > 0 artificially slows the pipeline to model an
// expensive rendering pass.
func timeDamarisCoupled(gridN, steps, segmentBytes int, analysisDelay time.Duration) ([]float64, int, error) {
	cfg, err := meta.ParseString(fmt.Sprintf(nekCavityXML, segmentBytes, gridN))
	if err != nil {
		return nil, 0, err
	}
	viz, err := plugins.NewVisualizer(map[string]string{"bins": "32"})
	if err != nil {
		return nil, 0, err
	}
	endPlugins := []core.Plugin{viz}
	if analysisDelay > 0 {
		endPlugins = append([]core.Plugin{core.PluginFunc{
			PluginName: "slow-render",
			Fn: func(*core.PluginContext, core.Event) error {
				time.Sleep(analysisDelay)
				return nil
			},
		}}, endPlugins...)
	}
	node, err := core.NewNode(cfg, 1, core.Options{
		ExtraPlugins: map[string][]core.Plugin{"end_iteration": endPlugins},
	})
	if err != nil {
		return nil, 0, err
	}
	params := nek.DefaultParams()
	params.N = gridN
	params.PressureIters = 8
	solver, err := nek.New(params)
	if err != nil {
		return nil, 0, err
	}
	client := node.Client(0)
	times := make([]float64, 0, steps)
	skipped := 0
	for s := 0; s < steps; s++ {
		t0 := time.Now()
		solver.Step()
		dropped := false
		for _, f := range solver.Fields() {
			if werr := client.Write(f.Name, s, compress.Float64Bytes(f.Data)); werr != nil {
				dropped = true
			}
		}
		if dropped {
			skipped++
		}
		client.EndIteration(s)
		times = append(times, time.Since(t0).Seconds())
	}
	if err := node.Shutdown(); err != nil {
		return nil, 0, err
	}
	return times, skipped, nil
}
