package experiments

import (
	"repro/internal/iostrat"
	"repro/internal/stats"
)

// RunE4 reproduces §IV.D's first claim: dedicated cores stay idle 92–99 %
// of the time on Kraken with CM1, leaving room for in-situ processing.
func RunE4(opts Options) (Report, error) {
	opts = opts.withDefaults()
	rep := Report{ID: "E4", Title: "dedicated-core idle time (§IV.D)"}
	table := stats.NewTable(
		"dedicated-core utilization across the weak-scaling sweep",
		"cores", "busy_core_s", "avail_core_s", "idle_frac", "skipped_iters")

	var minIdle, maxIdle float64 = 1, 0
	for _, cores := range opts.Scales {
		cfg := iostrat.Config{
			Platform: opts.platformFor(cores),
			Workload: iostrat.CM1Workload(opts.Iterations),
			Seed:     opts.Seed + uint64(cores),
		}
		r, err := iostrat.Run(iostrat.Damaris, cfg)
		if err != nil {
			return Report{}, err
		}
		idle := r.IdleFraction()
		if idle < minIdle {
			minIdle = idle
		}
		if idle > maxIdle {
			maxIdle = idle
		}
		table.AddRow(cores, r.DedicatedBusy, r.DedicatedTotal, idle, r.SkippedIters)
	}
	rep.Tables = []*stats.Table{table}
	rep.Checks = []Check{
		{
			Name:     "minimum idle fraction across scales",
			Paper:    "idle time ranges from 92% to 99% (§IV.D)",
			Measured: minIdle, Unit: "", Lo: 0.85, Hi: 1,
		},
		{
			Name:     "maximum idle fraction across scales",
			Paper:    "idle time ranges from 92% to 99% (§IV.D)",
			Measured: maxIdle, Unit: "", Lo: 0.9, Hi: 0.999,
		},
	}
	return rep, nil
}
