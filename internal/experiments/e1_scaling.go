package experiments

import (
	"fmt"

	"repro/internal/iostrat"
	"repro/internal/stats"
)

// E1Result holds the weak-scaling sweep of §IV.A: for each scale and each
// I/O approach, the run time, the application-visible I/O cost, and the
// speedup of Damaris over the baselines.
type E1Result struct {
	Report
	// Results indexes the raw strategy results by [scale][approach].
	Results map[int]map[iostrat.Approach]iostrat.Result
}

// approaches in presentation order.
var approaches = []iostrat.Approach{iostrat.FilePerProcess, iostrat.Collective, iostrat.Damaris}

// RunE1 reproduces §IV.A: CM1 weak scaling under the three I/O
// approaches. Paper claims: the collective I/O phase reaches 800 s — 70 %
// of the run time — at 9216 cores; Damaris scales nearly perfectly since
// its I/O is asynchronous; the speedup over collective I/O reaches 3.5×.
func RunE1(opts Options) (E1Result, error) {
	opts = opts.withDefaults()
	res := E1Result{
		Report:  Report{ID: "E1", Title: "CM1 weak scaling by I/O approach (§IV.A)"},
		Results: make(map[int]map[iostrat.Approach]iostrat.Result),
	}
	table := stats.NewTable(
		fmt.Sprintf("run time per approach, %s, %d output phases", opts.Platform, opts.Iterations),
		"cores", "approach", "total_s", "mean_io_s", "max_io_s", "io_frac", "thr_GB_s",
		"speedup_vs_collective")

	for _, cores := range opts.Scales {
		byApproach := make(map[iostrat.Approach]iostrat.Result, len(approaches))
		cfg := opts.strategyConfig(cores)
		for _, a := range approaches {
			r, err := iostrat.Run(a, cfg)
			if err != nil {
				return E1Result{}, err
			}
			byApproach[a] = r
		}
		res.Results[cores] = byApproach
		coll := byApproach[iostrat.Collective]
		for _, a := range approaches {
			r := byApproach[a]
			table.AddRow(cores, string(a), r.TotalTime, r.MeanIOTime(), r.MaxIOTime(),
				r.IOFraction(), stats.GB(r.Throughput()), coll.TotalTime/r.TotalTime)
		}
	}
	res.Tables = []*stats.Table{table}

	top := res.Results[opts.maxScale()]
	coll, dam := top[iostrat.Collective], top[iostrat.Damaris]
	if opts.maxScale() >= 4608 {
		// The absolute §IV.A numbers (800 s collective phases, 3.5×
		// speedup) are contention phenomena of the 9216-core machine; a
		// quick run cannot and should not reproduce them. The scale-free
		// shape checks below still apply.
		res.Checks = []Check{
			{
				Name:     "collective max I/O phase at top scale",
				Paper:    "up to 800 s (§IV.A)",
				Measured: coll.MaxIOTime(), Unit: "s", Lo: 450, Hi: 1300,
			},
			{
				Name:     "collective I/O fraction of run time",
				Paper:    "70% of overall run time (§IV.A)",
				Measured: coll.IOFraction(), Unit: "", Lo: 0.55, Hi: 0.85,
			},
			{
				Name:     "Damaris speedup vs collective",
				Paper:    "3.5x on Kraken (§IV.A)",
				Measured: coll.TotalTime / dam.TotalTime, Unit: "x", Lo: 2.8, Hi: 4.2,
			},
		}
	} else {
		res.Checks = []Check{
			{
				Name:     "Damaris faster than collective at every scale",
				Paper:    "dedicated cores beat collective I/O (§IV.A)",
				Measured: coll.TotalTime / dam.TotalTime, Unit: "x", Lo: 1.01, Hi: 0,
			},
		}
	}
	res.Checks = append(res.Checks,
		Check{
			Name:     "Damaris visible I/O phase at top scale",
			Paper:    "asynchronous, hidden (§IV.A)",
			Measured: dam.MeanIOTime(), Unit: "s", Lo: 0, Hi: 0.5,
		},
		Check{
			Name:     "Damaris scalability (runtime growth across sweep)",
			Paper:    "nearly perfect weak scalability (§IV.A)",
			Measured: damarisGrowth(res, opts), Unit: "x", Lo: 0.9, Hi: 1.15,
		},
	)
	return res, nil
}

// damarisGrowth returns the ratio of Damaris run time at the largest scale
// to the smallest — 1.0 is perfect weak scaling.
func damarisGrowth(res E1Result, opts Options) float64 {
	min, max := opts.Scales[0], opts.Scales[0]
	for _, s := range opts.Scales {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	small := res.Results[min][iostrat.Damaris].TotalTime
	large := res.Results[max][iostrat.Damaris].TotalTime
	if small == 0 {
		return 0
	}
	return large / small
}
