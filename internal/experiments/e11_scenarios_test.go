package experiments

import "testing"

func TestE11Quick(t *testing.T) {
	rep, err := RunE11(quick())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "E11" || len(rep.Tables) != 2 {
		t.Fatalf("unexpected report shape: %s with %d tables", rep.ID, len(rep.Tables))
	}
	// Both faces are deterministic given the seed (the runtime face
	// measures structure — blocks, reforms, frames — not wall-clock),
	// so every check is assertable here.
	for _, c := range rep.Checks {
		if !c.Pass() {
			t.Errorf("check failed: %s", c)
		}
	}
}

func TestE11PinnedScenario(t *testing.T) {
	o := quick()
	o.Scenario = "amr"
	o.Adapt = "static"
	rep, err := RunE11(o)
	if err != nil {
		t.Fatal(err)
	}
	// A pinned sweep drops the cross-policy comparison checks but must
	// keep the determinism and loss-accounting ones green.
	for _, c := range rep.Checks {
		if !c.Pass() {
			t.Errorf("check failed: %s", c)
		}
	}

	o.Scenario = "bogus"
	if _, err := RunE11(o); err == nil {
		t.Fatal("bad Scenario accepted")
	}
	o.Scenario = "amr"
	o.Adapt = "bogus"
	if _, err := RunE11(o); err == nil {
		t.Fatal("bad Adapt accepted")
	}
}

func TestScenarioOptionsThreadThrough(t *testing.T) {
	o := quick()
	o.Scenario = "nic-step"
	o.Adapt = "adaptive"
	cfg := o.strategyConfig(o.Scales[0])
	if cfg.Scenario == nil || cfg.Scenario.Scenario != "nic-step" {
		t.Fatalf("strategyConfig dropped the scenario: %+v", cfg.Scenario)
	}
	if cfg.Scenario.Nodes != cfg.Platform.Nodes {
		t.Fatalf("trace generated for %d nodes, platform has %d",
			cfg.Scenario.Nodes, cfg.Platform.Nodes)
	}
	if string(cfg.Adapt) != "adaptive" {
		t.Fatalf("strategyConfig dropped the adapt policy: %q", cfg.Adapt)
	}
	if cfg.Fanout < 2 {
		t.Fatalf("scenario run not forced into tree mode: fanout %d", cfg.Fanout)
	}
}
