package experiments

import (
	"fmt"

	"repro/internal/iostrat"
	"repro/internal/stats"
)

// RunE6 reproduces §IV.D's scheduling claim: coordinating the writes of
// the dedicated cores ("a better I/O scheduling schema") raises aggregate
// throughput from 10 GB/s to 12.7 GB/s on Kraken.
func RunE6(opts Options) (Report, error) {
	opts = opts.withDefaults()
	rep := Report{ID: "E6", Title: "dedicated-core I/O scheduling (§IV.D)"}
	cores := opts.maxScale()
	table := stats.NewTable(
		fmt.Sprintf("Damaris throughput by scheduling policy at %d cores", cores),
		"scheduling", "throughput_GB_s", "io_window_s", "gain_vs_none")

	policies := []iostrat.Scheduling{iostrat.SchedNone, iostrat.SchedOSTToken, iostrat.SchedGlobalToken}
	results := make(map[iostrat.Scheduling]iostrat.Result, len(policies))
	for _, pol := range policies {
		cfg := iostrat.Config{
			Platform:   opts.platformFor(cores),
			Workload:   iostrat.CM1Workload(opts.Iterations),
			Seed:       opts.Seed + uint64(cores),
			Scheduling: pol,
		}
		r, err := iostrat.Run(iostrat.Damaris, cfg)
		if err != nil {
			return Report{}, err
		}
		results[pol] = r
	}
	base := results[iostrat.SchedNone].Throughput()
	var best float64
	for _, pol := range policies {
		tp := results[pol].Throughput()
		if tp > best {
			best = tp
		}
		gain := 0.0
		if base > 0 {
			gain = tp / base
		}
		table.AddRow(string(pol), stats.GB(tp), results[pol].IOWindow, gain)
	}
	rep.Tables = []*stats.Table{table}
	rep.Checks = []Check{
		{
			Name:     "uncoordinated Damaris throughput",
			Paper:    "up to 10 GB/s (§IV.C)",
			Measured: stats.GB(base), Unit: "GB/s", Lo: 6.5, Hi: 13,
		},
		{
			Name:     "best scheduled throughput",
			Paper:    "up to 12.7 GB/s (§IV.D)",
			Measured: stats.GB(best), Unit: "GB/s", Lo: 9, Hi: 15,
		},
		{
			Name:     "scheduling gain over uncoordinated",
			Paper:    "further increase the throughput (§IV.D)",
			Measured: best / base, Unit: "x", Lo: 1.05, Hi: 1.8,
		},
	}
	return rep, nil
}
