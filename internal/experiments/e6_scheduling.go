package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/iostrat"
	"repro/internal/meta"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/topology"
)

// RunE6 reproduces §IV.D's scheduling claim and extends it across tree
// roots. Part one is the paper's single-backend sweep: coordinating the
// dedicated cores' writes ("a better I/O scheduling schema") raises
// aggregate throughput from 10 GB/s to 12.7 GB/s on Kraken. Part two is
// the cluster-wide extension (ROADMAP "cross-node scheduling"): N
// aggregation-tree roots × token policy × stripe layout, on both the
// DES face and the runtime cluster, showing that one shared
// storage.TokenBroker (iostrat.SchedClusterToken) beats per-backend
// tokens on aggregate write time and write-tail variability once roots
// contend for the same OSTs.
//
// With opts.Scheduling == iostrat.SchedClusterToken only the cross-root
// part runs — the CI experiment matrix's "e6-cross" mode.
func RunE6(opts Options) (Report, error) {
	opts = opts.withDefaults()
	rep := Report{ID: "E6", Title: "dedicated-core I/O scheduling (§IV.D + cross-root)"}
	crossOnly := opts.Scheduling == iostrat.SchedClusterToken

	if !crossOnly {
		if err := runE6Classic(opts, &rep); err != nil {
			return Report{}, err
		}
	}
	if err := runE6CrossRoots(opts, &rep); err != nil {
		return Report{}, err
	}
	if err := runE6Runtime(opts, &rep); err != nil {
		return Report{}, err
	}
	return rep, nil
}

// runE6Classic is the paper's single-backend policy sweep.
func runE6Classic(opts Options, rep *Report) error {
	cores := opts.maxScale()
	table := stats.NewTable(
		fmt.Sprintf("Damaris throughput by scheduling policy at %d cores", cores),
		"scheduling", "throughput_GB_s", "io_window_s", "gain_vs_none")

	policies := []iostrat.Scheduling{iostrat.SchedNone, iostrat.SchedOSTToken, iostrat.SchedGlobalToken}
	results := make(map[iostrat.Scheduling]iostrat.Result, len(policies))
	for _, pol := range policies {
		cfg := iostrat.Config{
			Platform:   opts.platformFor(cores),
			Workload:   iostrat.CM1Workload(opts.Iterations),
			Seed:       opts.Seed + uint64(cores),
			Scheduling: pol,
		}
		r, err := iostrat.Run(iostrat.Damaris, cfg)
		if err != nil {
			return err
		}
		results[pol] = r
	}
	base := results[iostrat.SchedNone].Throughput()
	var best float64
	for _, pol := range policies {
		tp := results[pol].Throughput()
		if tp > best {
			best = tp
		}
		gain := 0.0
		if base > 0 {
			gain = tp / base
		}
		table.AddRow(string(pol), stats.GB(tp), results[pol].IOWindow, gain)
	}
	rep.Tables = append(rep.Tables, table)
	if cores >= 4608 {
		// The paper's absolute numbers only make sense near Kraken scale:
		// a quick run's 16 nodes cannot pressure 336 OSTs, so scheduling
		// is (correctly) a no-op there and the bands would only measure
		// the machine shrink. The cross-root sweep carries the quick-scale
		// checks instead.
		rep.Checks = append(rep.Checks,
			Check{
				Name:     "uncoordinated Damaris throughput",
				Paper:    "up to 10 GB/s (§IV.C)",
				Measured: stats.GB(base), Unit: "GB/s", Lo: 6.5, Hi: 13,
			},
			Check{
				Name:     "best scheduled throughput",
				Paper:    "up to 12.7 GB/s (§IV.D)",
				Measured: stats.GB(best), Unit: "GB/s", Lo: 9, Hi: 15,
			},
			Check{
				Name:     "scheduling gain over uncoordinated",
				Paper:    "further increase the throughput (§IV.D)",
				Measured: best / base, Unit: "x", Lo: 1.05, Hi: 1.8,
			},
		)
	}
	return nil
}

// e6Layout names a root-stripe layout of the cross-root sweep.
type e6Layout struct {
	name string
	// stripes resolves the RootStripes override for the layout (0 keeps
	// the disjoint default).
	stripes func(targets, roots int) int
}

// e6OSTs sizes the cross-root sweep's OST array: few OSTs per root and
// ~24 nodes per OST, so the roots genuinely pressure the storage
// system (Kraken's ~30 nodes per OST, not a quick run's 20 OSTs per
// node) while the *scheduled* write still fits the §IV.C spare window —
// a saturated array has no schedule to win.
func e6OSTs(nodes, roots int) int {
	t := nodes / 24
	if min := 4 * roots; t < min {
		t = min
	}
	return t
}

// e6Layouts are the stripe layouts swept: "disjoint" partitions the
// array perfectly between the roots; "overlapped" makes every root
// stripe almost the whole array from a distinct base, so the roots'
// windows nearly coincide while their base OSTs differ — the
// cross-application contention pattern (every writer wants the full
// OST array) that a base-target token cannot see and the cluster
// broker exists to absorb.
var e6Layouts = []e6Layout{
	{name: "disjoint", stripes: func(targets, roots int) int { return targets / roots }},
	{name: "overlapped", stripes: func(targets, roots int) int {
		s := targets - roots + 1
		if s < 2 {
			s = 2
		}
		return s
	}},
}

// e6CrossPolicies are the token policies compared across roots:
// per-backend base-target tokens versus the cluster-wide broker.
var e6CrossPolicies = []iostrat.Scheduling{
	iostrat.SchedNone, iostrat.SchedOSTToken, iostrat.SchedClusterToken,
}

// runE6CrossRoots is the DES face of the cross-root sweep.
func runE6CrossRoots(opts Options, rep *Report) error {
	cores := opts.maxScale()
	plat := opts.platformFor(cores)
	fanout := opts.Fanout
	if fanout < 2 {
		fanout = 4
	}
	table := stats.NewTable(
		fmt.Sprintf("cross-root scheduling, %d nodes, fanout %d (DES)", plat.Nodes, fanout),
		"roots", "layout", "scheduling", "write_lat_s", "write_tail_sd_s",
		"sched_wait_s", "contended", "throughput_GB_s")

	type key struct {
		roots  int
		layout string
		pol    iostrat.Scheduling
	}
	results := map[key]iostrat.Result{}
	rootCounts := []int{2, 4}
	for _, roots := range rootCounts {
		if roots > plat.Nodes {
			continue
		}
		for _, layout := range e6Layouts {
			for _, pol := range e6CrossPolicies {
				cfg := opts.strategyConfig(cores)
				cfg.Fanout = fanout
				cfg.AggRoots = roots
				cfg.Scheduling = pol
				cfg.Platform.PFS.OSTs = e6OSTs(plat.Nodes, roots)
				cfg.RootStripes = layout.stripes(cfg.Platform.PFS.OSTs, roots)
				res, err := iostrat.Run(iostrat.Damaris, cfg)
				if err != nil {
					return err
				}
				results[key{roots, layout.name, pol}] = res
				table.AddRow(roots, layout.name, string(pol),
					stats.Mean(res.TreeWriteLatencies),
					res.WriteTailSpread(), res.SchedWaitTime, res.RootContention,
					stats.GB(res.Throughput()))
			}
		}
	}
	rep.Tables = append(rep.Tables, table)

	// The headline comparison: the most contended configuration —
	// maximum roots, overlapped windows.
	roots := rootCounts[len(rootCounts)-1]
	if roots > plat.Nodes {
		roots = rootCounts[0]
	}
	ost := results[key{roots, "overlapped", iostrat.SchedOSTToken}]
	clu := results[key{roots, "overlapped", iostrat.SchedClusterToken}]
	if stats.Mean(clu.TreeWriteLatencies) == 0 {
		// Nothing to compare: the machine is too small for any swept
		// root count (or no root ever wrote). Fail loudly instead of
		// reporting NaN checks.
		return fmt.Errorf("e6: cross-root sweep needs >= %d nodes (have %d)",
			rootCounts[0], plat.Nodes)
	}
	tailRatio := 0.0
	if clu.WriteTailSpread() > 0 {
		tailRatio = ost.WriteTailSpread() / clu.WriteTailSpread()
	}
	rep.Checks = append(rep.Checks,
		Check{
			Name:     "DES cross-root write-time gain",
			Paper:    "cluster tokens beat per-backend tokens (write-latency ratio > 1)",
			Measured: stats.Mean(ost.TreeWriteLatencies) / stats.Mean(clu.TreeWriteLatencies),
			Unit:     "x", Lo: 1.05, Hi: 0,
		},
		Check{
			Name:     "DES cross-root tail-variability gain",
			Paper:    "deadline grants flatten the write tail (spread ratio > 1)",
			Measured: tailRatio, Unit: "x", Lo: 1.05, Hi: 0,
		},
		Check{
			Name:     "cluster tokens actually arbitrated",
			Paper:    "overlapped roots contend without coordination",
			Measured: float64(clu.RootContention), Unit: "grants", Lo: 1, Hi: 0,
		},
	)
	return nil
}

// e6RuntimeMeta is the per-node configuration of the runtime face.
const e6RuntimeMeta = `<simulation name="e6">
  <architecture><dedicated cores="1"/><buffer size="1048576"/></architecture>
  <data>
    <parameter name="n" value="256"/>
    <layout name="row" type="float64" dimensions="n"/>
    <variable name="theta" layout="row"/>
  </data>
</simulation>`

// pacedStore models the physical storage target behind the runtime
// cluster: each Put costs a fixed service time, and concurrent streams
// on the same target interfere — n overlapping streams degrade the
// target to 1/(1+alpha·(n-1)) of peak, so every stream's service
// inflates to n·(1+alpha·(n-1))×. The ledger (total applied service,
// per-iteration spans) is what the E6 runtime comparison reads.
type pacedStore struct {
	inner    storage.ObjectStore
	targetOf func(name string) int
	service  time.Duration
	alpha    float64

	mu        sync.Mutex
	active    map[int]int
	total     time.Duration
	iterStart map[int]time.Time
	iterEnd   map[int]time.Time
	iterOf    func(name string) int
}

func (ps *pacedStore) Put(name string, data []byte) error {
	target := ps.targetOf(name)
	ps.mu.Lock()
	n := ps.active[target] + 1
	ps.active[target] = n
	// Interference inflates the service by n(1+alpha(n-1)) — the same
	// processor-sharing shape as the pfs model's OSTs.
	applied := time.Duration(float64(ps.service) * float64(n) * (1 + ps.alpha*float64(n-1)))
	ps.total += applied
	it := ps.iterOf(name)
	now := time.Now()
	if s, ok := ps.iterStart[it]; !ok || now.Before(s) {
		ps.iterStart[it] = now
	}
	ps.mu.Unlock()

	time.Sleep(applied)

	ps.mu.Lock()
	ps.active[target]--
	end := time.Now()
	if e, ok := ps.iterEnd[it]; !ok || end.After(e) {
		ps.iterEnd[it] = end
	}
	ps.mu.Unlock()
	return ps.inner.Put(name, data)
}

// iterSpans returns the per-iteration wall spans (first Put start to
// last Put end), ascending by iteration.
func (ps *pacedStore) iterSpans(iters int) []float64 {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	spans := make([]float64, 0, iters)
	for it := 0; it < iters; it++ {
		s, okS := ps.iterStart[it]
		e, okE := ps.iterEnd[it]
		if okS && okE {
			spans = append(spans, e.Sub(s).Seconds())
		}
	}
	return spans
}

// perRootBrokers emulates per-backend tokens on the runtime face: every
// root arbitrates against itself only, so roots of different trees can
// still hit the same paced target at once. It is the runtime mirror of
// iostrat.SchedOSTToken's per-stream base token.
type perRootBrokers struct {
	mu      sync.Mutex
	targets int
	brokers map[int]*storage.Broker
}

func newPerRootBrokers(targets int) *perRootBrokers {
	return &perRootBrokers{targets: targets, brokers: map[int]*storage.Broker{}}
}

func (pb *perRootBrokers) forHolder(holder int) *storage.Broker {
	pb.mu.Lock()
	defer pb.mu.Unlock()
	b, ok := pb.brokers[holder]
	if !ok {
		b = storage.NewBroker(storage.BrokerOptions{
			Policy:  storage.PolicyPerTarget,
			Targets: pb.targets,
		})
		pb.brokers[holder] = b
	}
	return b
}

// AcquireSim implements storage.TokenBroker (unused on the real face).
func (pb *perRootBrokers) AcquireSim(p *des.Proc, req storage.TokenRequest) storage.TokenGrant {
	panic("perRootBrokers: DES face not supported")
}

// Acquire implements storage.TokenBroker.
func (pb *perRootBrokers) Acquire(req storage.TokenRequest) storage.TokenGrant {
	return pb.forHolder(req.Holder).Acquire(req)
}

// ReleaseHolder implements storage.TokenBroker.
func (pb *perRootBrokers) ReleaseHolder(holder int) int {
	return pb.forHolder(holder).ReleaseHolder(holder)
}

// Outstanding implements storage.TokenBroker.
func (pb *perRootBrokers) Outstanding() int {
	pb.mu.Lock()
	defer pb.mu.Unlock()
	n := 0
	for _, b := range pb.brokers {
		n += b.Outstanding()
	}
	return n
}

// Stats implements storage.TokenBroker.
func (pb *perRootBrokers) Stats() storage.BrokerStats {
	pb.mu.Lock()
	defer pb.mu.Unlock()
	var merged storage.BrokerStats
	for _, b := range pb.brokers {
		s := b.Stats()
		merged.Grants += s.Grants
		merged.ContendedGrants += s.ContendedGrants
		merged.WaitTime += s.WaitTime
	}
	return merged
}

// runE6Runtime compares per-backend tokens against the shared cluster
// broker on a real multi-root cluster writing through a paced store.
func runE6Runtime(opts Options, rep *Report) error {
	const (
		rtNodes   = 4
		rtClients = 2
		rtIters   = 6
		rtRoots   = 2
		rtService = 12 * time.Millisecond
		rtAlpha   = 1.0
	)
	table := stats.NewTable(
		fmt.Sprintf("runtime cluster cross-root scheduling, %d nodes × %d clients, %d iterations",
			rtNodes, rtClients, rtIters),
		"scheduling", "write_service_ms", "iter_span_sd_ms", "token_wait_ms", "contended")

	type rtResult struct {
		service  time.Duration
		spans    []float64
		st       cluster.Stats
		contends int
	}
	run := func(shared bool) (rtResult, error) {
		cfg, err := meta.ParseString(e6RuntimeMeta)
		if err != nil {
			return rtResult{}, err
		}
		// Both trees collide on one paced target, mirroring the DES
		// sweep's overlapped stripe windows.
		paced := &pacedStore{
			inner:     storage.NewMemory(nil, 1, 1e9),
			targetOf:  func(string) int { return 0 },
			service:   rtService,
			alpha:     rtAlpha,
			active:    map[int]int{},
			iterStart: map[int]time.Time{},
			iterEnd:   map[int]time.Time{},
			iterOf:    iterFromObjectName,
		}
		var broker storage.TokenBroker
		if shared {
			broker = storage.NewBroker(storage.BrokerOptions{
				Policy:  storage.PolicyDeadline,
				Targets: 1,
			})
		} else {
			broker = newPerRootBrokers(1)
		}
		c, err := cluster.New(cluster.Config{
			Platform:         topology.Platform{Name: "e6", Nodes: rtNodes, CoresPerNode: rtClients + 1},
			Meta:             cfg,
			Fanout:           2,
			Roots:            rtRoots,
			Store:            paced,
			Broker:           broker,
			DisableManifests: true,
		})
		if err != nil {
			return rtResult{}, err
		}
		data := make([]byte, 256*8)
		var wg sync.WaitGroup
		errs := make(chan error, rtNodes*rtClients)
		for n := 0; n < rtNodes; n++ {
			for s := 0; s < rtClients; s++ {
				wg.Add(1)
				go func(n, s int) {
					defer wg.Done()
					cl := c.Client(n, s)
					for it := 0; it < rtIters; it++ {
						if err := cl.Write("theta", it, data); err != nil {
							errs <- fmt.Errorf("node %d src %d it %d: %w", n, s, it, err)
							return
						}
						cl.EndIteration(it)
					}
				}(n, s)
			}
		}
		wg.Wait()
		c.WaitIteration(rtIters - 1)
		if err := c.Shutdown(); err != nil {
			return rtResult{}, err
		}
		select {
		case err := <-errs:
			return rtResult{}, err
		default:
		}
		st := c.Stats()
		contends := 0
		for _, n := range st.RootContention {
			contends += n
		}
		return rtResult{
			service:  paced.total,
			spans:    paced.iterSpans(rtIters),
			st:       st,
			contends: contends,
		}, nil
	}

	perRoot, err := run(false)
	if err != nil {
		return err
	}
	shared, err := run(true)
	if err != nil {
		return err
	}
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }
	table.AddRow("per-backend tokens", ms(perRoot.service),
		stats.StdDev(perRoot.spans)*1e3, perRoot.st.TokenWaitTime*1e3, perRoot.contends)
	table.AddRow("cluster token (shared broker)", ms(shared.service),
		stats.StdDev(shared.spans)*1e3, shared.st.TokenWaitTime*1e3, shared.contends)
	rep.Tables = append(rep.Tables, table)

	rep.Checks = append(rep.Checks,
		Check{
			Name:     "runtime cross-root write-time gain",
			Paper:    "shared broker avoids target interference (service ratio > 1)",
			Measured: float64(perRoot.service) / float64(shared.service),
			Unit:     "x", Lo: 1.05, Hi: 0,
		},
		Check{
			Name:     "runtime write-tail spread",
			Paper:    "serialized grants keep iteration spans steady (per-backend − cluster, ms)",
			Measured: (stats.StdDev(perRoot.spans) - stats.StdDev(shared.spans)) * 1e3,
			Unit:     "ms", Lo: -3, Hi: 0,
		},
		Check{
			Name:     "runtime cluster broker arbitrated",
			Paper:    "colliding roots queue on the shared token",
			Measured: float64(shared.contends), Unit: "grants", Lo: 1, Hi: 0,
		},
	)
	return nil
}

// iterFromObjectName parses the trailing iteration number of a root
// object name ("job-rootNNN-itNNNNNN"); -1 when absent.
func iterFromObjectName(name string) int {
	i := strings.LastIndex(name, "-root")
	if i < 0 {
		return -1
	}
	var root, it int
	if n, _ := fmt.Sscanf(name[i:], "-root%d-it%d", &root, &it); n == 2 {
		return it
	}
	return -1
}
