package experiments

import (
	"fmt"

	"repro/internal/iostrat"
	"repro/internal/stats"
)

// RunE3 reproduces §IV.C: achieved aggregate write throughput at the
// largest scale. Paper claims on Kraken: 0.5 GB/s with collective I/O,
// less than 1.7 GB/s with file-per-process, up to 10 GB/s with Damaris.
func RunE3(opts Options) (Report, error) {
	opts = opts.withDefaults()
	rep := Report{ID: "E3", Title: "aggregate I/O throughput (§IV.C)"}
	cores := opts.maxScale()
	table := stats.NewTable(
		fmt.Sprintf("achieved aggregate throughput at %d cores (%s)", cores, opts.Platform),
		"approach", "GB_written", "io_window_s", "throughput_GB_s", "files")

	byApproach := make(map[iostrat.Approach]iostrat.Result)
	cfg := opts.strategyConfig(cores)
	for _, a := range approaches {
		r, err := iostrat.Run(a, cfg)
		if err != nil {
			return Report{}, err
		}
		byApproach[a] = r
		table.AddRow(string(a), stats.GB(r.BytesWritten), r.IOWindow,
			stats.GB(r.Throughput()), r.FilesCreated)
	}
	rep.Tables = []*stats.Table{table}

	coll := stats.GB(byApproach[iostrat.Collective].Throughput())
	fpp := stats.GB(byApproach[iostrat.FilePerProcess].Throughput())
	dam := stats.GB(byApproach[iostrat.Damaris].Throughput())
	rep.Checks = []Check{
		{
			Name:     "collective throughput",
			Paper:    "as low as 0.5 GB/s (§IV.C)",
			Measured: coll, Unit: "GB/s", Lo: 0.25, Hi: 0.8,
		},
		{
			Name:     "file-per-process throughput",
			Paper:    "less than 1.7 GB/s (§IV.C)",
			Measured: fpp, Unit: "GB/s", Lo: 0.8, Hi: 1.7,
		},
		{
			Name:     "Damaris throughput",
			Paper:    "up to 10 GB/s (§IV.C)",
			Measured: dam, Unit: "GB/s", Lo: 7, Hi: 13,
		},
		{
			Name:     "ordering collective < FPP < Damaris",
			Paper:    "Damaris makes a more efficient use of storage (§IV.C)",
			Measured: boolAsFloat(coll < fpp && fpp < dam), Unit: "", Lo: 1, Hi: 1,
		},
	}
	return rep, nil
}

func boolAsFloat(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
