package experiments

// Entry is one runnable experiment in the registry: the lower-case id
// the bench CLI's -exp flag and the CI matrix use, a short title, and
// the runner itself.
type Entry struct {
	ID    string
	Title string
	Run   func(Options) (Report, error)
}

// Registry lists every experiment in presentation order. It is the
// single source of truth consumed by cmd/damaris-bench (to build the
// -exp dispatch) and cmd/docscheck (to verify each experiment has a
// docs/EXPERIMENTS.md section) — adding a runner here without
// documenting it fails CI.
func Registry() []Entry {
	return []Entry{
		{"e1", "weak-scaling run time (§IV.A)", func(o Options) (Report, error) {
			r, err := RunE1(o)
			return r.Report, err
		}},
		{"e2", "I/O variability (§IV.B)", RunE2},
		{"e3", "aggregate throughput (§IV.C)", RunE3},
		{"e4", "dedicated-core idle time (§IV.D)", RunE4},
		{"e5", "compression on spare time (§IV.D)", RunE5},
		{"e6", "I/O scheduling (§IV.D)", RunE6},
		{"e7", "in-situ visualization coupling (§V.C.1)", RunE7},
		{"e7s", "streaming in-situ pipeline (E7 extension)", RunE7S},
		{"e8", "usability LoC (§V.C.2)", RunE8},
		{"a1", "shared-memory ablation", RunA1},
		{"a2", "aggregation ablation", RunA2},
		{"f1", "node-failure resilience", RunF1},
		{"r1", "checkpoint/restart", RunR1},
		{"c1", "compression codecs", RunC1},
		{"e9", "multi-tenant admission", RunE9},
		{"e10", "incremental checkpoints and dedup", RunE10},
		{"e11", "deterministic scenarios × elastic tree adaptation", RunE11},
	}
}
