package experiments

import (
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/iostrat"
	"repro/internal/storage"
)

// quick returns fast options for tests (small machine, few phases).
func quick() Options { return Quick() }

func TestOptionsDefaults(t *testing.T) {
	var o Options
	o = o.withDefaults()
	if o.Seed == 0 || o.Iterations == 0 || len(o.Scales) == 0 || o.Platform == "" {
		t.Fatalf("defaults not filled: %+v", o)
	}
	if o.maxScale() != 9216 {
		t.Fatalf("default max scale = %d", o.maxScale())
	}
}

func TestPlatformForValidatesDivisibility(t *testing.T) {
	o := Options{Platform: "kraken"}.withDefaults()
	defer func() {
		if recover() == nil {
			t.Fatal("indivisible core count accepted")
		}
	}()
	o.platformFor(100) // not divisible by 12
}

func TestCheckBands(t *testing.T) {
	inBand := Check{Measured: 5, Lo: 4, Hi: 6}
	if !inBand.Pass() {
		t.Fatal("in-band check failed")
	}
	atLeast := Check{Measured: 100, Lo: 10}
	if !atLeast.Pass() {
		t.Fatal("open-ended check failed")
	}
	below := Check{Measured: 3, Lo: 4, Hi: 6}
	if below.Pass() {
		t.Fatal("below-band check passed")
	}
	if !strings.Contains(below.String(), "MISS") {
		t.Fatal("failing check not labeled MISS")
	}
	if !strings.Contains(inBand.String(), "OK") {
		t.Fatal("passing check not labeled OK")
	}
}

func TestReportRendering(t *testing.T) {
	rep := Report{ID: "EX", Title: "example"}
	rep.Checks = []Check{{Name: "c", Measured: 1, Lo: 0, Hi: 2}}
	out := rep.String()
	if !strings.Contains(out, "EX") || !strings.Contains(out, "example") {
		t.Fatalf("report rendering: %q", out)
	}
	if !rep.AllPass() {
		t.Fatal("AllPass on passing report")
	}
	rep.Checks = append(rep.Checks, Check{Name: "bad", Measured: 10, Lo: 0, Hi: 2})
	if rep.AllPass() {
		t.Fatal("AllPass with failing check")
	}
}

func TestE1QuickShape(t *testing.T) {
	res, err := RunE1(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) == 0 || res.Tables[0].NumRows() != len(quick().Scales)*3 {
		t.Fatalf("E1 table shape wrong")
	}
	// Even at toy scale, Damaris must hide I/O and run fastest.
	for _, scale := range quick().Scales {
		dam := res.Results[scale][iostrat.Damaris]
		coll := res.Results[scale][iostrat.Collective]
		if dam.MeanIOTime() > 1 {
			t.Errorf("scale %d: Damaris visible I/O %v", scale, dam.MeanIOTime())
		}
		if dam.TotalTime >= coll.TotalTime {
			t.Errorf("scale %d: Damaris (%v) not faster than collective (%v)",
				scale, dam.TotalTime, coll.TotalTime)
		}
	}
}

func TestE2Quick(t *testing.T) {
	rep, err := RunE2(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 2 {
		t.Fatalf("E2 tables = %d", len(rep.Tables))
	}
	// The Damaris-specific shape claims must hold even at toy scale.
	for _, c := range rep.Checks {
		if strings.HasPrefix(c.Name, "Damaris") && !c.Pass() {
			t.Errorf("E2 check failed at quick scale: %s", c)
		}
	}
}

func TestE3QuickOrdering(t *testing.T) {
	// The full collective < FPP < Damaris ordering is a contention
	// phenomenon that appears at scale (asserted by the paper-scale
	// bench); at toy scale only the Damaris > collective gap is robust.
	rep, err := RunE3(quick())
	if err != nil {
		t.Fatal(err)
	}
	var damaris, collective float64
	for _, row := range strings.Split(rep.Tables[0].CSV(), "\n") {
		cells := strings.Split(row, ",")
		if len(cells) < 4 {
			continue
		}
		switch cells[0] {
		case "damaris":
			damaris = parseFloat(t, cells[3])
		case "collective":
			collective = parseFloat(t, cells[3])
		}
	}
	if damaris <= collective {
		t.Errorf("Damaris throughput (%v) not above collective (%v) at quick scale",
			damaris, collective)
	}
}

func parseFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestE4Quick(t *testing.T) {
	rep, err := RunE4(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 1 || rep.Tables[0].NumRows() != len(quick().Scales) {
		t.Fatalf("E4 table shape")
	}
	for _, c := range rep.Checks {
		if !c.Pass() {
			t.Errorf("E4 idle check failed at quick scale: %s", c)
		}
	}
}

func TestE5Quick(t *testing.T) {
	rep, err := RunE5(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Checks {
		if !c.Pass() {
			t.Errorf("E5 check failed: %s", c)
		}
	}
}

func TestE6QuickGain(t *testing.T) {
	if testing.Short() {
		t.Skip("the runtime face paces real writes")
	}
	rep, err := RunE6(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Classic policy sweep, cross-root DES sweep, runtime comparison.
	if len(rep.Tables) != 3 {
		t.Fatalf("E6 tables = %d, want 3", len(rep.Tables))
	}
	if rep.Tables[0].NumRows() != 3 {
		t.Fatalf("classic table rows = %d", rep.Tables[0].NumRows())
	}
	if rep.Tables[1].NumRows() != 12 { // 2 root counts × 2 layouts × 3 policies
		t.Fatalf("cross-root table rows = %d", rep.Tables[1].NumRows())
	}
	// The DES cross-root claims are deterministic and must hold at quick
	// scale (wall-clock-based runtime checks are asserted loosely by the
	// experiment itself).
	for _, c := range rep.Checks {
		if strings.HasPrefix(c.Name, "DES cross-root") && !c.Pass() {
			t.Errorf("E6 check failed at quick scale: %s", c)
		}
	}
}

// The cross-only mode (the CI matrix's e6-cross entry) must skip the
// classic sweep and still pass its checks.
func TestE6CrossOnlyMode(t *testing.T) {
	if testing.Short() {
		t.Skip("the runtime face paces real writes")
	}
	o := quick()
	o.Scheduling = iostrat.SchedClusterToken
	rep, err := RunE6(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 2 {
		t.Fatalf("cross-only tables = %d, want 2", len(rep.Tables))
	}
	for _, c := range rep.Checks {
		if strings.HasPrefix(c.Name, "DES") && !c.Pass() {
			t.Errorf("cross-only check failed: %s", c)
		}
	}
}

func TestE7Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	rep, err := RunE7(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Only assert the deterministic parts: frames dropped and the scale
	// model; absolute wall-clock ratios are machine-dependent.
	for _, c := range rep.Checks {
		if c.Name == "frames dropped with tight segment" && !c.Pass() {
			t.Errorf("skip policy did not drop frames: %s", c)
		}
	}
}

func TestE8CountsAreStable(t *testing.T) {
	rep, err := RunE8(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Checks {
		if !c.Pass() {
			t.Errorf("E8 check failed: %s", c)
		}
	}
	rep2, _ := RunE8(quick())
	if rep.Checks[0].Measured != rep2.Checks[0].Measured {
		t.Fatal("LoC count not deterministic")
	}
}

func TestA1CopySemantics(t *testing.T) {
	rep, err := RunA1(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Checks {
		if !c.Pass() {
			t.Errorf("A1 check failed: %s", c)
		}
	}
}

func TestA2QuickMonotone(t *testing.T) {
	rep, err := RunA2(quick())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tables[0].NumRows() != 4 {
		t.Fatalf("A2 sweep rows = %d", rep.Tables[0].NumRows())
	}
}

func TestCountInstrumentationErrors(t *testing.T) {
	if _, err := countInstrumentation("/nonexistent/file.go"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestDeterministicReports(t *testing.T) {
	a, err := RunE3(quick())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := RunE3(quick())
	if a.Tables[0].CSV() != b.Tables[0].CSV() {
		t.Fatal("E3 not reproducible across runs")
	}
}

// TestOtherPlatforms runs the E1 sweep on the paper's two other machines
// (Grid'5000, Power5): the Damaris-hides-I/O shape must hold on every
// preset, not just Kraken.
func TestOtherPlatforms(t *testing.T) {
	for _, platform := range []string{"grid5000", "power5"} {
		o := Options{
			Seed:       2013,
			Iterations: 2,
			Platform:   platform,
		}
		switch platform {
		case "grid5000":
			o.Scales = []int{96, 192} // multiples of 24 cores/node
		case "power5":
			o.Scales = []int{96, 192} // multiples of 16 cores/node
		}
		res, err := RunE1(o)
		if err != nil {
			t.Fatalf("%s: %v", platform, err)
		}
		for _, scale := range o.Scales {
			dam := res.Results[scale][iostrat.Damaris]
			coll := res.Results[scale][iostrat.Collective]
			if dam.MeanIOTime() > 1 {
				t.Errorf("%s @%d: Damaris visible I/O %v s", platform, scale, dam.MeanIOTime())
			}
			if dam.TotalTime >= coll.TotalTime {
				t.Errorf("%s @%d: Damaris not faster than collective", platform, scale)
			}
		}
	}
}

func TestF1Quick(t *testing.T) {
	rep, err := RunF1(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 2 {
		t.Fatalf("F1 produced %d tables, want 2 (DES + runtime)", len(rep.Tables))
	}
	for _, c := range rep.Checks {
		if !c.Pass() {
			t.Errorf("check failed: %s", c)
		}
	}
}

func TestR1Quick(t *testing.T) {
	rep, err := RunR1(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 2 {
		t.Fatalf("R1 produced %d tables, want 2 (restore + DES read model)", len(rep.Tables))
	}
	for _, c := range rep.Checks {
		if !c.Pass() {
			t.Errorf("check failed: %s", c)
		}
	}
}

// TestR1SDFArtifacts: with the sdf backend the runtime side leaves a
// restorable on-disk store behind — the `-restart-from` input.
func TestR1SDFArtifacts(t *testing.T) {
	opts := quick()
	opts.Backend = "sdf"
	opts.BackendDir = t.TempDir()
	rep, err := RunR1(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllPass() {
		t.Fatalf("checks failed:\n%s", rep.String())
	}
	// The no-failure run's artifacts restore losslessly in a fresh
	// backend over the directory, like a restarting process would.
	store, err := storage.NewSDF(nil, 1, 1e9, filepath.Join(opts.BackendDir, "fail0"))
	if err != nil {
		t.Fatal(err)
	}
	r, err := cluster.Restore(store, "r1")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Problems) != 0 || r.TotalBlocks() == 0 {
		t.Fatalf("on-disk restore wrong: %d blocks, problems %v", r.TotalBlocks(), r.Problems)
	}
	if _, ok := r.LatestComplete(8); !ok {
		t.Fatal("no complete checkpoint in the no-failure artifacts")
	}
}

func TestC1Quick(t *testing.T) {
	rep, err := RunC1(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Checks {
		if !c.Pass() {
			t.Errorf("C1 check failed: %s", c)
		}
	}
	if len(rep.Tables) != 4 {
		t.Fatalf("C1 produced %d tables, want 4", len(rep.Tables))
	}
}

// TestE9Quick runs the multi-tenant sweep at quick scale: every check —
// including the acceptance one, EDF beating FIFO on p99 write latency
// under oversubscription — must hold.
func TestE9Quick(t *testing.T) {
	rep, err := RunE9(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 2 { // DES sweep + runtime accounting
		t.Fatalf("E9 produced %d tables, want 2", len(rep.Tables))
	}
	if rep.Tables[0].NumRows() != 16 { // 2 tenancies × 2 rates × 4 policies
		t.Fatalf("E9 sweep rows = %d, want 16", rep.Tables[0].NumRows())
	}
	for _, c := range rep.Checks {
		if !c.Pass() {
			t.Errorf("E9 check failed at quick scale: %s", c)
		}
	}
}

// TestE9PinnedAdmission is the CI matrix's e9-smoke shape: the -tenants,
// -arrival and -admission flags pin the sweep to a single point and the
// cross-policy checks are skipped.
func TestE9PinnedAdmission(t *testing.T) {
	o := quick()
	o.Tenants = 8
	o.ArrivalRate = 1.0 / 10
	o.Admission = cluster.AdmitDeadline
	rep, err := RunE9(o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tables[0].NumRows() != 2 { // 2 tenancies × 1 rate × 1 policy
		t.Fatalf("pinned sweep rows = %d, want 2", rep.Tables[0].NumRows())
	}
	for _, c := range rep.Checks {
		if strings.HasPrefix(c.Name, "DES deadline") {
			t.Errorf("pinned admission still ran a cross-policy check: %s", c.Name)
		}
		if !c.Pass() {
			t.Errorf("E9 pinned check failed: %s", c)
		}
	}
}
