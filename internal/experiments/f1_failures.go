package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/iostrat"
	"repro/internal/meta"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/topology"
)

// f1Rates are the node-failure rates swept by F1.
var f1Rates = []float64{0, 0.15, 0.3}

// f1ShmFactors size the shared-memory segment (× one iteration's node
// output) for the §V.C skip-policy baseline rows: at 1.0 the segment
// holds exactly one pending iteration, below it every offer fails.
var f1ShmFactors = []float64{1.0, 0.75}

// f1ClusterMeta is the per-node configuration of the runtime-cluster
// side of the sweep: one 512-byte variable per client.
const f1ClusterMeta = `<simulation name="f1">
  <architecture><dedicated cores="1"/><buffer size="1048576"/></architecture>
  <data>
    <parameter name="n" value="64"/>
    <layout name="row" type="float64" dimensions="n"/>
    <variable name="theta" layout="row"/>
  </data>
</simulation>`

// RunF1 measures the data-loss / end-to-end-latency trade of losing
// aggregation nodes (ROADMAP open item 1): a seeded random failure
// schedule kills nodes mid-iteration, the tree re-routes their
// children, and the loss is compared against the paper's §V.C skip
// policy, which also trades data for latency but from the producer
// side. The sweep runs on both the DES tree-mode Damaris strategy and
// the runtime cluster layer, so the simulated and real re-routing
// arithmetic are exercised side by side.
func RunF1(opts Options) (Report, error) {
	opts = opts.withDefaults()
	rep := Report{ID: "F1", Title: "node-failure injection and subtree re-routing"}
	cores := opts.maxScale()
	plat := opts.platformFor(cores)
	fanout := opts.Fanout
	if fanout < 2 {
		fanout = 4
	}

	desTable := stats.NewTable(
		fmt.Sprintf("DES tree-mode Damaris under node failures, %d nodes, fanout %d",
			plat.Nodes, fanout),
		"policy", "fail_rate", "nodes_failed", "rerouted_edges", "loss_frac",
		"total_s", "drain_s", "written_GB")

	desCfg := func() iostrat.Config {
		cfg := opts.strategyConfig(cores)
		cfg.Fanout = fanout
		return cfg
	}

	type desRun struct {
		rate float64
		res  iostrat.Result
	}
	var desRuns []desRun
	for i, rate := range f1Rates {
		cfg := desCfg()
		sched := cluster.RandomFailures(plat.Nodes, opts.Iterations, rate,
			opts.Seed+uint64(i)*7919)
		if sched.Empty() && rate > 0 {
			// The random draw can miss at small node counts; the sweep
			// still needs a death to measure.
			sched.Add(plat.Nodes/3, opts.Iterations/2)
		}
		cfg.Failures = sched
		res, err := iostrat.Run(iostrat.Damaris, cfg)
		if err != nil {
			return Report{}, err
		}
		desRuns = append(desRuns, desRun{rate: rate, res: res})
		desTable.AddRow("failure+reroute", rate, res.NodesFailed, res.ReroutedEdges,
			res.DataLossFraction(), res.TotalTime, res.DrainTime, stats.GB(res.BytesWritten))
	}
	// The §V.C skip-policy baseline: no failures, but a segment small
	// enough that the producer side drops iterations instead.
	nodeBytes := iostrat.CM1Workload(opts.Iterations).NodeBytes(plat.CoresPerNode)
	for _, factor := range f1ShmFactors {
		cfg := desCfg()
		cfg.ShmCapacity = factor * nodeBytes
		res, err := iostrat.Run(iostrat.Damaris, cfg)
		if err != nil {
			return Report{}, err
		}
		desTable.AddRow(fmt.Sprintf("skip-policy shm=%.2fx", factor), 0.0,
			0, 0, res.DataLossFraction(), res.TotalTime, res.DrainTime,
			stats.GB(res.BytesWritten))
	}

	// Runtime cluster side: a small real deployment per rate, killing
	// round(rate × nodes) nodes mid-run.
	const (
		rtNodes   = 8
		rtClients = 2
		rtIters   = 4
		rtFailAt  = rtIters / 2
	)
	rtTable := stats.NewTable(
		fmt.Sprintf("runtime cluster under node failures, %d nodes × %d clients, %d iterations",
			rtNodes, rtClients, rtIters),
		"fail_rate", "nodes_failed", "rerouted_edges", "blocks_lost", "loss_frac",
		"partial_iters", "wall_ms")

	type rtRun struct {
		rate  float64
		sched *cluster.FailureSchedule
		st    cluster.Stats
	}
	var rtRuns []rtRun
	for _, rate := range f1Rates {
		sched := cluster.NewFailureSchedule()
		for k := 0; k < int(rate*rtNodes+0.5); k++ {
			// Spread the deaths over the tree, skipping node 0 so at
			// least one original root survives every rate.
			sched.Add(1+(k*3)%(rtNodes-1), rtFailAt)
		}
		st, wall, err := runF1Cluster(rtNodes, rtClients, rtIters, sched)
		if err != nil {
			return Report{}, err
		}
		rtRuns = append(rtRuns, rtRun{rate: rate, sched: sched, st: st})
		rtTable.AddRow(rate, st.NodesFailed, st.ReroutedEdges, st.BlocksLost,
			f1ClusterLoss(st, rtNodes, rtIters), st.PartialIterations,
			float64(wall.Microseconds())/1e3)
	}
	rep.Tables = []*stats.Table{desTable, rtTable}

	top := desRuns[len(desRuns)-1]
	failedShare := float64(top.res.NodesFailed) / float64(plat.Nodes)
	lossOverShare := 0.0
	if failedShare > 0 {
		lossOverShare = top.res.DataLossFraction() / failedShare
	}
	rtTop := rtRuns[len(rtRuns)-1]
	rtShare := float64(rtTop.st.NodesFailed) / float64(rtNodes)
	rtLossOverShare := 0.0
	if rtShare > 0 {
		rtLossOverShare = f1ClusterLoss(rtTop.st, rtNodes, rtIters) / rtShare
	}
	rtCompleted := 1.0
	for _, r := range rtRuns {
		frac := float64(r.st.IterationsCompleted) / float64(rtIters)
		if frac < rtCompleted {
			rtCompleted = frac
		}
		if r.st.NodesFailed != r.sched.Len() {
			rtCompleted = 0 // a scheduled death that never happened
		}
	}
	rep.Checks = []Check{
		{
			Name:     "DES loss without failures",
			Paper:    "re-routing is free when nothing fails",
			Measured: desRuns[0].res.DataLossFraction(), Unit: "", Lo: 0, Hi: 1e-12,
		},
		{
			Name:     "DES loss at top failure rate",
			Paper:    "node deaths lose only the dead nodes' output",
			Measured: top.res.DataLossFraction(), Unit: "", Lo: 1e-6, Hi: 0.9,
		},
		{
			Name:     "DES loss / dead-node share",
			Paper:    "re-routed subtrees keep flowing (≤ 1)",
			Measured: lossOverShare, Unit: "", Lo: 0, Hi: 1.001,
		},
		{
			Name:     "runtime loss / dead-node share",
			Paper:    "runtime re-routing matches the model (≤ 1)",
			Measured: rtLossOverShare, Unit: "", Lo: 0, Hi: 1.001,
		},
		{
			Name:     "runtime iterations completed under failures",
			Paper:    "no deadlock: every live root finishes every iteration",
			Measured: rtCompleted, Unit: "", Lo: 1, Hi: 1,
		},
	}
	return rep, nil
}

// f1ClusterLoss is the data-loss fraction of a runtime cluster run: the
// node-iterations whose blocks never reached a stored root object.
func f1ClusterLoss(st cluster.Stats, nodes, iters int) float64 {
	covered := 0.0
	for it := 0; it < iters; it++ {
		covered += st.Completeness[it]
	}
	return 1 - covered/float64(iters)
}

// runF1Cluster builds a real cluster, drives every client through the
// workload, and returns the final stats and the wall-clock time of the
// run (the runtime side's end-to-end latency).
func runF1Cluster(nodes, clients, iters int, sched *cluster.FailureSchedule) (cluster.Stats, time.Duration, error) {
	cfg, err := meta.ParseString(f1ClusterMeta)
	if err != nil {
		return cluster.Stats{}, 0, err
	}
	c, err := cluster.New(cluster.Config{
		Platform: topology.Platform{Name: "f1", Nodes: nodes, CoresPerNode: clients + 1},
		Meta:     cfg,
		Fanout:   2,
		Store:    storage.NewMemory(nil, 4, 1e9),
		Failures: sched,
	})
	if err != nil {
		return cluster.Stats{}, 0, err
	}
	start := time.Now()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	data := make([]byte, 64*8)
	for i := range data {
		data[i] = byte(i)
	}
	for n := 0; n < nodes; n++ {
		for s := 0; s < clients; s++ {
			wg.Add(1)
			go func(n, s int) {
				defer wg.Done()
				cl := c.Client(n, s)
				for it := 0; it < iters; it++ {
					if err := cl.Write("theta", it, data); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("node %d src %d it %d: %w", n, s, it, err)
						}
						mu.Unlock()
						return
					}
					cl.EndIteration(it)
				}
			}(n, s)
		}
	}
	wg.Wait()
	c.WaitIteration(iters - 1)
	wall := time.Since(start)
	if err := c.Shutdown(); err != nil {
		return cluster.Stats{}, 0, err
	}
	if firstErr != nil {
		return cluster.Stats{}, 0, firstErr
	}
	return c.Stats(), wall, nil
}
