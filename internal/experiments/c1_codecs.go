package experiments

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"os"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/iostrat"
	"repro/internal/meta"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/topology"
)

// c1TransferBW is the per-stream transfer bandwidth the cost metric
// prices codec CPU against — the same default the adaptive selector
// uses, so the sweep and the selector optimize the same objective.
const c1TransferBW = 200e6

// c1Iters is how many objects of each dataset the sweep stores; enough
// that the adaptive selector's one-time trial encodes amortize.
const c1Iters = 24

// c1SampleBytes bounds the selector's trial encodes in the sweep: the
// trial is codec CPU too, and a small sample keeps its cost honest
// without burying the per-iteration gains.
const c1SampleBytes = 16 << 10

// c1Dataset is one synthetic variable of the mixed workload, shaped so
// a different codec wins each: a smooth float64 field (Gorilla), a
// near-monotonic int64 counter stream (delta), a sparse byte mask
// (RLE).
type c1Dataset struct {
	name string
	gen  func(it int) []byte
}

func c1Datasets() []c1Dataset {
	return []c1Dataset{
		{name: "temp", gen: func(it int) []byte {
			// Smooth field: consecutive values XOR to mostly-zero words.
			out := make([]byte, 8192*8)
			for i := 0; i < 8192; i++ {
				v := 300.0 + 5.0*math.Sin(float64(i)/512.0+float64(it)/7.0)
				binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
			}
			return out
		}},
		{name: "rank", gen: func(it int) []byte {
			// Monotonic counters with small varying steps: tiny varint deltas.
			out := make([]byte, 8192*8)
			v := int64(it) * 1000
			for i := 0; i < 8192; i++ {
				v += int64(1 + (i*37+it)%97)
				binary.LittleEndian.PutUint64(out[i*8:], uint64(v))
			}
			return out
		}},
		{name: "mask", gen: func(it int) []byte {
			// Sparse activity mask: long zero runs with scattered ones.
			out := make([]byte, 64<<10)
			for i := 97 + it; i < len(out); i += 131 {
				out[i] = 1
			}
			return out
		}},
	}
}

// c1Policies are the storage-codec policies the sweep compares: every
// fixed codec plus the adaptive selector.
func c1Policies() []string {
	return []string{"none", "rle", "delta", "gorilla", "flate", storage.AdaptiveCodec}
}

// c1Cost is the sweep's objective in transfer-byte equivalents: bytes
// that actually moved to and from the store plus the codec CPU
// converted at the transfer bandwidth, discounted by the spare-time
// weight the selector itself uses — §IV.D's trade as a single number.
func c1Cost(acc storage.Accounting) float64 {
	moved := float64(acc.ObjectBytes) + float64(acc.ObjectReadBytes)
	return moved + (acc.EncodeTime+acc.DecodeTime)*c1TransferBW*storage.DefaultCPUCostWeight
}

// RunC1 sweeps the compression pipeline on the real data path (ROADMAP
// "backend compression pipeline" item): every fixed codec and the
// adaptive selector store and read back a mixed float/int/mask
// workload, scored by CPU charged plus bytes moved; a compressed store
// is round-tripped through cluster.Restore/Replay on all three
// backends; and the DES face prices dedicated-core compression at
// scale, mirroring E5 on the pipeline instead of the abstract ratio
// knob.
func RunC1(opts Options) (Report, error) {
	opts = opts.withDefaults()
	rep := Report{ID: "C1", Title: "storage-codec sweep and adaptive selection (§IV.D on the data path)"}

	// Part 1: codec × dataset sweep on real bytes through a memory
	// backend, write plus read-back, byte equality enforced throughout.
	sweep := stats.NewTable(
		fmt.Sprintf("codec sweep over %d iterations of 3 datasets (cost at %.0f MB/s transfer)",
			c1Iters, c1TransferBW/1e6),
		"policy", "raw_MB", "stored_MB", "ratio", "codec_cpu_ms", "cost_MB")
	datasets := c1Datasets()
	costs := map[string]float64{}
	var adaptiveChoices map[string]string
	for _, policy := range c1Policies() {
		store := storage.NewCompressing(storage.NewMemory(nil, 4, 1e9),
			storage.CompressionOptions{
				Codec:             policy,
				TransferBandwidth: c1TransferBW,
				SampleBytes:       c1SampleBytes,
			})
		for it := 0; it < c1Iters; it++ {
			for _, ds := range datasets {
				name := fmt.Sprintf("c1-%s-it%06d", ds.name, it)
				data := ds.gen(it)
				if err := store.Put(name, data); err != nil {
					return Report{}, fmt.Errorf("c1: %s put %s: %w", policy, name, err)
				}
				got, err := store.Get(name)
				if err != nil {
					return Report{}, fmt.Errorf("c1: %s get %s: %w", policy, name, err)
				}
				if !bytes.Equal(got, data) {
					return Report{}, fmt.Errorf("c1: %s round trip of %s differs", policy, name)
				}
			}
		}
		acc := store.Accounting()
		cost := c1Cost(acc)
		costs[policy] = cost
		sweep.AddRow(policy, float64(acc.ObjectRawBytes)/1e6, float64(acc.ObjectBytes)/1e6,
			float64(acc.ObjectRawBytes)/float64(acc.ObjectBytes),
			(acc.EncodeTime+acc.DecodeTime)*1e3, cost/1e6)
		if policy == storage.AdaptiveCodec {
			adaptiveChoices = map[string]string{}
			for it := 0; it < c1Iters; it++ {
				for _, ds := range datasets {
					if info, ok := store.ObjectCodec(fmt.Sprintf("c1-%s-it%06d", ds.name, it)); ok {
						adaptiveChoices[ds.name] = info.Codec
					}
				}
			}
		}
	}
	bestFixed := math.Inf(1)
	for policy, cost := range costs {
		if policy != storage.AdaptiveCodec && cost < bestFixed {
			bestFixed = cost
		}
	}
	choiceTable := stats.NewTable("adaptive selector choices", "dataset", "codec")
	distinct := map[string]bool{}
	for _, ds := range datasets {
		choiceTable.AddRow(ds.name, adaptiveChoices[ds.name])
		distinct[adaptiveChoices[ds.name]] = true
	}

	// Part 2: compressed-store restart round trip through
	// cluster.Restore/Replay on all three backends. The pfs model
	// retains no payloads — the round trip there asserts the documented
	// ErrNoPayload degradation instead of byte equality.
	rtTable := stats.NewTable("compressed-store restore round trip (4 nodes × 2 clients × 2 iterations)",
		"backend", "objects", "manifests", "blocks", "byte_equal", "replayed_iters")
	byteEqualOK, manifestCodecOK := 1.0, 1.0
	for _, kind := range storage.Kinds() {
		r, err := c1RoundTrip(opts, kind)
		if err != nil {
			return Report{}, fmt.Errorf("c1: %s round trip: %w", kind, err)
		}
		rtTable.AddRow(string(kind), r.objects, r.manifests, r.blocks, r.byteEqual, r.replayed)
		if kind != storage.KindPFS {
			if r.byteEqual != 1 {
				byteEqualOK = 0
			}
			if !r.manifestCodec {
				manifestCodecOK = 0
			}
		}
	}

	// Part 3: the DES face at scale — the §IV.D system effect, priced
	// through the pipeline instead of E5's abstract ratio knob.
	cores := opts.maxScale()
	base := opts.strategyConfig(cores)
	base.Codec = ""
	plain, err := iostrat.Run(iostrat.Damaris, base)
	if err != nil {
		return Report{}, err
	}
	withCodec := opts.strategyConfig(cores)
	withCodec.Codec = "gorilla"
	compressed, err := iostrat.Run(iostrat.Damaris, withCodec)
	if err != nil {
		return Report{}, err
	}
	desTable := stats.NewTable(
		fmt.Sprintf("Damaris at %d cores through the compressing backend", cores),
		"config", "run_time_s", "GB_to_storage", "GB_saved", "codec_cpu_s", "skipped")
	desTable.AddRow("plain", plain.TotalTime, stats.GB(plain.BytesWritten),
		stats.GB(plain.BytesSaved), plain.CodecCPUTime, plain.SkippedIters)
	desTable.AddRow("codec=gorilla", compressed.TotalTime, stats.GB(compressed.BytesWritten),
		stats.GB(compressed.BytesSaved), compressed.CodecCPUTime, compressed.SkippedIters)

	rep.Tables = []*stats.Table{sweep, choiceTable, rtTable, desTable}
	overhead := 1.0
	if plain.TotalTime > 0 {
		overhead = compressed.TotalTime / plain.TotalTime
	}
	gorillaRatio := 6.0
	if p, ok := storage.Profile("gorilla"); ok {
		gorillaRatio = p.AssumedRatio
	}
	rep.Checks = []Check{
		{
			Name:     "adaptive cost vs best fixed codec",
			Paper:    "per-dataset codec choice wins on mixed data",
			Measured: costs[storage.AdaptiveCodec] / bestFixed, Unit: "x", Lo: 0, Hi: 1.0001,
		},
		{
			Name:     "distinct codecs chosen across datasets",
			Paper:    "selection is actually per dataset",
			Measured: float64(len(distinct)), Unit: "", Lo: 2,
		},
		{
			Name:     "compressed store restores byte-for-byte",
			Paper:    "compression is lossless end to end",
			Measured: byteEqualOK, Unit: "", Lo: 1, Hi: 1,
		},
		{
			Name:     "manifests record codec and sizes",
			Paper:    "restart sees the compression story",
			Measured: manifestCodecOK, Unit: "", Lo: 1, Hi: 1,
		},
		{
			Name:     "simulation overhead with the pipeline",
			Paper:    "without any overhead on the simulation (§IV.D)",
			Measured: overhead, Unit: "x", Lo: 0.995, Hi: 1.005,
		},
		{
			Name:     "storage bytes shrink by the codec ratio",
			Paper:    "600% compression ratio (§IV.D)",
			Measured: plain.BytesWritten / compressed.BytesWritten, Unit: "x",
			Lo: gorillaRatio * 0.95, Hi: gorillaRatio * 1.05,
		},
	}
	return rep, nil
}

// c1RoundTripResult summarizes one backend's compressed-store restore.
type c1RoundTripResult struct {
	objects       int
	manifests     int
	blocks        int
	byteEqual     float64
	replayed      int
	manifestCodec bool
}

// c1ClusterMeta is the tiny per-node configuration of the round-trip
// cluster: one 64-float variable per client.
const c1ClusterMeta = `<simulation name="c1">
  <architecture><dedicated cores="1"/><buffer size="1048576"/></architecture>
  <data>
    <parameter name="n" value="64"/>
    <layout name="row" type="float64" dimensions="n"/>
    <variable name="theta" layout="row"/>
  </data>
</simulation>`

// c1Field is the deterministic payload for (node, source, iteration),
// compressible and verifiable byte-for-byte after the round trip.
func c1Field(n, s, it int) []byte {
	out := make([]byte, 64*8)
	for i := 0; i < 64; i++ {
		v := float64(n) + float64(s)/8 + math.Sin(float64(i+it)/9.0)
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

// c1RoundTrip writes a small cluster run through a compressed store on
// the given backend kind, restores it with cluster.Restore, verifies
// every recovered block byte-for-byte and replays the iterations.
func c1RoundTrip(opts Options, kind storage.Kind) (c1RoundTripResult, error) {
	const (
		nodes   = 4
		clients = 2
		iters   = 2
	)
	plat := topology.Platform{Name: "c1", Nodes: nodes, CoresPerNode: clients + 1}
	inner, cleanup, err := c1Backend(opts, kind)
	if err != nil {
		return c1RoundTripResult{}, err
	}
	if cleanup != nil {
		defer cleanup()
	}
	store := storage.NewCompressing(inner, storage.CompressionOptions{Codec: storage.AdaptiveCodec})
	cfg, err := meta.ParseString(c1ClusterMeta)
	if err != nil {
		return c1RoundTripResult{}, err
	}
	c, err := cluster.New(cluster.Config{
		Platform: plat,
		Meta:     cfg,
		Fanout:   2,
		Store:    store,
	})
	if err != nil {
		return c1RoundTripResult{}, err
	}
	for n := 0; n < nodes; n++ {
		for s := 0; s < clients; s++ {
			cl := c.Client(n, s)
			for it := 0; it < iters; it++ {
				if err := cl.Write("theta", it, c1Field(n, s, it)); err != nil {
					return c1RoundTripResult{}, err
				}
				cl.EndIteration(it)
			}
		}
	}
	c.WaitIteration(iters - 1)
	if err := c.Shutdown(); err != nil {
		return c1RoundTripResult{}, err
	}
	st := c.Stats()

	restored, err := cluster.Restore(store, "c1")
	if err != nil {
		return c1RoundTripResult{}, err
	}
	res := c1RoundTripResult{
		objects:   st.ObjectsWritten,
		manifests: restored.Manifests,
		blocks:    restored.TotalBlocks(),
	}
	if kind == storage.KindPFS {
		// The pure cost model retains no payloads: the store is known
		// but not recoverable, the same ErrNoPayload degradation the
		// uncompressed read path documents.
		if restored.TotalBlocks() != 0 {
			return res, fmt.Errorf("pfs restored %d blocks from a payload-free model", restored.TotalBlocks())
		}
		return res, nil
	}
	if len(restored.Problems) > 0 {
		return res, fmt.Errorf("restore problems: %v", restored.Problems)
	}
	res.byteEqual = 1
	want := nodes * clients * iters
	if res.blocks != want {
		return res, fmt.Errorf("recovered %d blocks, want %d", res.blocks, want)
	}
	for _, it := range restored.IterationNumbers() {
		for n, blocks := range restored.NodeBlocks(it) {
			for _, blk := range blocks {
				if !bytes.Equal(blk.Data, c1Field(n, blk.Source, it)) {
					res.byteEqual = 0
				}
			}
		}
	}
	if err := restored.Replay(func(int, *cluster.Batch) error {
		res.replayed++
		return nil
	}); err != nil {
		return res, err
	}
	// Manifests must carry the codec story: re-read them raw.
	res.manifestCodec = true
	names, err := store.List("c1-")
	if err != nil {
		return res, err
	}
	for _, name := range names {
		if !cluster.IsManifestName(name) {
			continue
		}
		data, err := store.Get(name)
		if err != nil {
			return res, err
		}
		m, err := cluster.DecodeManifest(data)
		if err != nil {
			return res, err
		}
		if m.Codec == "" || m.RawBytes <= 0 || m.EncodedBytes <= 0 {
			res.manifestCodec = false
		}
	}
	return res, nil
}

// c1Backend builds the inner store for one round-trip run; the
// returned cleanup (possibly nil) removes temporary artifacts.
func c1Backend(opts Options, kind storage.Kind) (storage.Backend, func(), error) {
	switch kind {
	case storage.KindMemory:
		return storage.NewMemory(nil, 4, 1e9), nil, nil
	case storage.KindSDF:
		dir, err := os.MkdirTemp("", "c1-roundtrip-")
		if err != nil {
			return nil, nil, err
		}
		be, err := storage.NewSDF(nil, 4, 1e9, dir)
		if err != nil {
			os.RemoveAll(dir)
			return nil, nil, err
		}
		return be, func() { os.RemoveAll(dir) }, nil
	default:
		p := opts.platformFor(opts.Scales[0])
		return storage.NewPFS(des.NewEngine(), p.PFS, rng.New(opts.Seed, 41)), nil, nil
	}
}
