// Package experiments implements the reproduction harness: one runner per
// quantitative claim of the paper's evaluation (§IV and §V.C), each
// producing the table/series the paper reports plus a set of checks
// comparing the measured shape against the published one.
//
// Experiment IDs (docs/EXPERIMENTS.md has the full index):
//
//	E1 weak-scaling run time (§IV.A)     E5 compression (§IV.D)
//	E2 I/O variability (§IV.B)           E6 I/O scheduling (§IV.D)
//	E3 aggregate throughput (§IV.C)      E7 in-situ visualization (§V.C.1)
//	E4 dedicated-core idle time (§IV.D)  E8 usability LoC (§V.C.2)
//	A1/A2 design-choice ablations        F1 node failures, R1 restart
//	E9 multi-tenant admission (cluster.Service + DES service model)
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/iostrat"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Options control the scale of an experiment run.
type Options struct {
	// Seed is the root seed for every stochastic input.
	Seed uint64
	// Iterations is the number of compute+output cycles per run.
	Iterations int
	// Scales lists the total core counts of the weak-scaling sweep.
	Scales []int
	// Platform names the preset machine (default "kraken").
	Platform string
	// Backend selects the storage backend the strategies write through
	// ("pfs" default, "memory", "sdf") — see internal/storage.
	Backend string
	// BackendDir is the artifact directory for the sdf backend.
	BackendDir string
	// Fanout, when >= 2, routes the Damaris strategy through the
	// cross-node aggregation tree of internal/cluster instead of the
	// one-file-per-node baseline.
	Fanout int
	// FailNodes lists node ids to kill at iteration FailAt in every
	// tree-mode Damaris run (the -fail-nodes/-fail-at bench flags).
	// F1 sweeps its own failure rates regardless of these.
	FailNodes []int
	// FailAt is the death iteration for FailNodes (default 0).
	FailAt int
	// Codec enables the storage compression pipeline (the -codec bench
	// flag): a codec name fixes the codec for every strategy run and
	// the R1/C1 runtime stores, "adaptive" selects per dataset, ""
	// disables it. C1 sweeps its own codecs regardless of this.
	Codec string
	// Dedup wraps every run's backend in the content-addressed chunk
	// store (the -dedup bench flag): DES runs charge chunk/hash CPU and
	// forward only the assumed-new volume; runtime stores actually
	// deduplicate. E10 sweeps its own overwrite fractions regardless.
	Dedup bool
	// Retain is the checkpoint retention window in iterations for
	// runtime cluster runs over a dedup store (the -retain bench flag;
	// 0 = keep everything). E10's GC leg uses it (default 2 there).
	Retain int
	// Scheduling coordinates dedicated-core writes in every Damaris run
	// (the -sched bench flag): "", "none", "ost-token", "global-token"
	// or "cluster-token". E6 sweeps its own policies regardless; set to
	// cluster-token it restricts E6 to the cross-root sweep (the CI
	// matrix's cross-root mode).
	Scheduling iostrat.Scheduling
	// Tenants is the number of tenant jobs E9 submits per sweep point
	// (the -tenants bench flag; default 24 — E9 also sweeps half that).
	Tenants int
	// ArrivalRate pins E9's job arrival rate in jobs per second (the
	// -arrival bench flag); 0 sweeps a light and a heavy rate.
	ArrivalRate float64
	// Admission restricts E9's policy sweep to one admission policy
	// (the -admission bench flag: fifo, deadline, reject, degrade);
	// empty sweeps all four and runs the cross-policy checks.
	Admission cluster.AdmissionPolicy
	// StreamPolicy pins E7S's slow-consumer policy (the -stream-policy
	// bench flag: drop-oldest, block, sample); empty runs drop-oldest
	// on the runtime face and sweeps all three on the DES face.
	StreamPolicy string
	// StreamBuffer is the per-subscriber queue capacity in iterations
	// for E7S's slow-consumer legs (the -stream-buffer bench flag;
	// 0 = 1, the tightest bound on staleness).
	StreamBuffer int
	// Scenario names a workload generator (the -scenario bench flag;
	// see internal/workload and docs/SCENARIOS.md): every DES strategy
	// run then replays the trace deterministically generated from Seed
	// for the run's node count, in tree mode. E11 sweeps all scenarios
	// unless this pins one.
	Scenario string
	// Adapt selects the mid-run tree adaptation policy for scenario
	// runs (the -adapt bench flag: "static" or "adaptive"). E11 sweeps
	// both unless this pins one.
	Adapt string
}

// Default returns the paper-scale options: the Kraken sweep up to 9216
// cores.
func Default() Options {
	return Options{
		Seed:       2013,
		Iterations: 4,
		Scales:     []int{576, 1152, 2304, 4608, 9216},
		Platform:   "kraken",
	}
}

// Quick returns reduced options for tests: a small machine, few phases.
func Quick() Options {
	return Options{
		Seed:       2013,
		Iterations: 2,
		Scales:     []int{96, 192},
		Platform:   "kraken",
	}
}

func (o Options) withDefaults() Options {
	d := Default()
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	if o.Iterations == 0 {
		o.Iterations = d.Iterations
	}
	if len(o.Scales) == 0 {
		o.Scales = d.Scales
	}
	if o.Platform == "" {
		o.Platform = d.Platform
	}
	return o
}

// platformFor resolves the preset and resizes it so that the total core
// count equals the requested scale.
func (o Options) platformFor(cores int) topology.Platform {
	p, ok := topology.ByName(o.Platform, 1)
	if !ok {
		panic(fmt.Sprintf("experiments: unknown platform %q", o.Platform))
	}
	if cores%p.CoresPerNode != 0 {
		panic(fmt.Sprintf("experiments: %d cores not divisible by %d cores/node",
			cores, p.CoresPerNode))
	}
	return p.WithNodes(cores / p.CoresPerNode)
}

// strategyConfig builds the iostrat configuration for one scale,
// carrying the backend and cross-node aggregation options through so
// the sweep runs on the cluster layer when they are set.
func (o Options) strategyConfig(cores int) iostrat.Config {
	cfg := iostrat.Config{
		Platform:   o.platformFor(cores),
		Workload:   iostrat.CM1Workload(o.Iterations),
		Seed:       o.Seed + uint64(cores),
		Backend:    storage.Kind(o.Backend),
		BackendDir: o.BackendDir,
		Fanout:     o.Fanout,
		Codec:      o.Codec,
		Scheduling: o.Scheduling,
		Dedup:      o.Dedup,
	}
	if len(o.FailNodes) > 0 {
		sched := cluster.NewFailureSchedule()
		for _, n := range o.FailNodes {
			sched.Add(n, o.FailAt)
		}
		cfg.Failures = sched
	}
	if o.Scenario != "" {
		tr, err := workload.Generate(workload.Spec{
			Scenario:   o.Scenario,
			Seed:       o.Seed,
			Iterations: o.Iterations,
			Nodes:      cfg.Platform.Nodes,
		})
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		cfg.Scenario = tr
		if cfg.Fanout < 2 {
			cfg.Fanout = 4 // scenario traces ride the aggregation tree
		}
	}
	if o.Adapt != "" {
		cfg.Adapt = iostrat.AdaptPolicy(o.Adapt)
	}
	return cfg
}

// maxScale returns the largest core count in the sweep.
func (o Options) maxScale() int {
	m := o.Scales[0]
	for _, s := range o.Scales[1:] {
		if s > m {
			m = s
		}
	}
	return m
}

// Check compares one measured quantity against the band implied by the
// paper's claim. Bands are generous on purpose: the substrate is a
// simulator, the paper's testbed is not, and only the shape is asserted.
type Check struct {
	Name     string
	Paper    string // the paper's claim, as text
	Measured float64
	Unit     string
	Lo, Hi   float64 // accepted band; Hi == 0 means "at least Lo"
}

// Pass reports whether the measurement falls inside the band.
func (c Check) Pass() bool {
	if c.Hi == 0 {
		return c.Measured >= c.Lo
	}
	return c.Measured >= c.Lo && c.Measured <= c.Hi
}

// String renders the check as a report line.
func (c Check) String() string {
	status := "OK  "
	if !c.Pass() {
		status = "MISS"
	}
	band := fmt.Sprintf("[%s, %s]", stats.FormatFloat(c.Lo), stats.FormatFloat(c.Hi))
	if c.Hi == 0 {
		band = fmt.Sprintf(">= %s", stats.FormatFloat(c.Lo))
	}
	return fmt.Sprintf("%s %-38s paper: %-34s measured: %s %s (band %s)",
		status, c.Name, c.Paper, stats.FormatFloat(c.Measured), c.Unit, band)
}

// Report bundles an experiment's tables and checks.
type Report struct {
	ID     string
	Title  string
	Tables []*stats.Table
	Checks []Check
}

// AllPass reports whether every check passed.
func (r Report) AllPass() bool {
	for _, c := range r.Checks {
		if !c.Pass() {
			return false
		}
	}
	return true
}

// String renders the full report.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s — %s ===\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, c := range r.Checks {
		b.WriteString(c.String())
		b.WriteByte('\n')
	}
	return b.String()
}
