package experiments

import (
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/compress"
	"repro/internal/iostrat"
	"repro/internal/meta"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/topology"
	"repro/internal/workload"
)

// e11ClusterMeta describes the runtime-face runs: one float64 row per
// client, small enough that topology mechanics dominate payload cost.
const e11ClusterMeta = `<simulation name="e11">
  <architecture><dedicated cores="1"/><buffer size="4194304"/></architecture>
  <data>
    <parameter name="n" value="512"/>
    <layout name="row" type="float64" dimensions="n"/>
    <variable name="theta" layout="row"/>
  </data>
</simulation>`

// RunE11 sweeps the deterministic workload scenarios of
// internal/workload against the two tree-adaptation policies, on both
// faces (docs/SCENARIOS.md has the vocabulary):
//
//   - DES face: every scenario × {static, adaptive} through the Damaris
//     strategy in tree mode, the trace driving per-iteration volumes,
//     compute cadence, bandwidth steps, and node churn in virtual time;
//   - runtime face: a real cluster replays a NIC-step trace with a
//     streaming subscriber attached, re-forming the tree mid-run from
//     cluster.RecommendTopology when the shift lands.
//
// The headline checks: the same seed replays bit-identically, adaptive
// beats static on aggregate write latency on a mid-run platform shift,
// and adaptation never loses acknowledged data — Completeness stays 1
// on every scenario that injects no failures.
func RunE11(opts Options) (Report, error) {
	opts = opts.withDefaults()
	rep := Report{ID: "E11", Title: "deterministic scenarios × elastic tree adaptation"}

	scenarios := workload.Scenarios()
	if opts.Scenario != "" {
		if err := workload.ValidateScenario(opts.Scenario); err != nil {
			return Report{}, err
		}
		scenarios = []string{opts.Scenario}
	}
	policies := iostrat.AdaptPolicies()
	if opts.Adapt != "" {
		pol := iostrat.AdaptPolicy(opts.Adapt)
		if err := iostrat.ValidateAdaptPolicy(pol); err != nil {
			return Report{}, err
		}
		policies = []iostrat.AdaptPolicy{pol}
	}

	// The generators place their mid-run shifts around n/3 and the
	// adaptation cooldown needs headroom after that; quick runs would
	// otherwise end before the step can matter.
	iters := opts.Iterations
	if iters < 8 {
		iters = 8
	}
	cores := opts.Scales[0]
	desCfg := func(sc string, pol iostrat.AdaptPolicy) (iostrat.Config, error) {
		cfg := opts.strategyConfig(cores)
		if cfg.Fanout < 2 {
			cfg.Fanout = 4
		}
		tr, err := workload.Generate(workload.Spec{
			Scenario:   sc,
			Seed:       opts.Seed,
			Iterations: iters,
			Nodes:      cfg.Platform.Nodes,
		})
		if err != nil {
			return iostrat.Config{}, err
		}
		cfg.Scenario = tr
		cfg.Adapt = pol
		return cfg, nil
	}

	// ---- DES face: scenario × policy sweep. ----
	type legKey struct {
		sc  string
		pol iostrat.AdaptPolicy
	}
	results := map[legKey]iostrat.Result{}
	des := stats.NewTable(
		fmt.Sprintf("DES face: scenario × adaptation at %d cores, %d iterations", cores, iters),
		"scenario", "adapt", "median_write_latency_s", "bytes_written_gb",
		"tree_reforms", "min_completeness", "skipped")
	for _, sc := range scenarios {
		for _, pol := range policies {
			cfg, err := desCfg(sc, pol)
			if err != nil {
				return Report{}, err
			}
			res, err := iostrat.Run(iostrat.Damaris, cfg)
			if err != nil {
				return Report{}, fmt.Errorf("e11 %s/%s: %w", sc, pol, err)
			}
			results[legKey{sc, pol}] = res
			// Median, not mean: per-iteration latency is a max over
			// concurrent stripe streams, so a single heavy-tailed PFS
			// straggler episode can dominate a mean; the median ranks
			// the topologies, which is what this table compares.
			des.AddRow(sc, string(pol), stats.Median(res.TreeWriteLatencies),
				stats.GB(res.BytesWritten), res.TreeReforms,
				minFloat(res.Completeness), res.SkippedIters)
		}
	}
	rep.Tables = append(rep.Tables, des)

	// ---- Determinism: the same seed must replay bit-identically. ----
	replaySc, replayPol := scenarios[0], policies[len(policies)-1]
	if opts.Scenario == "" {
		replaySc = workload.NICStep // the scenario with the most moving parts
	}
	cfgA, err := desCfg(replaySc, replayPol)
	if err != nil {
		return Report{}, err
	}
	cfgB, err := desCfg(replaySc, replayPol)
	if err != nil {
		return Report{}, err
	}
	fpStable := 0.0
	if cfgA.Scenario.Fingerprint() == cfgB.Scenario.Fingerprint() {
		fpStable = 1
	}
	again, err := iostrat.Run(iostrat.Damaris, cfgB)
	if err != nil {
		return Report{}, err
	}
	first := results[legKey{replaySc, replayPol}]
	identical := 1.0
	if first.TotalTime != again.TotalTime || first.DrainTime != again.DrainTime ||
		first.BytesWritten != again.BytesWritten || first.TreeReforms != again.TreeReforms ||
		len(first.TreeWriteLatencies) != len(again.TreeWriteLatencies) {
		identical = 0
	} else {
		for i := range first.TreeWriteLatencies {
			if first.TreeWriteLatencies[i] != again.TreeWriteLatencies[i] {
				identical = 0
				break
			}
		}
	}
	rep.Checks = append(rep.Checks,
		Check{
			Name:     "trace generation is a pure function of the seed",
			Paper:    "deterministic scenario generator (docs/SCENARIOS.md)",
			Measured: fpStable, Unit: "bool", Lo: 1, Hi: 1,
		},
		Check{
			Name:     fmt.Sprintf("DES replay bit-identical (%s/%s)", replaySc, replayPol),
			Paper:    "same seed, same trace, same measurements",
			Measured: identical, Unit: "bool", Lo: 1, Hi: 1,
		})

	// ---- Loss accounting across the sweep. ----
	minComp, maxLost := 1.0, 0.0
	for key, res := range results {
		if key.sc == workload.NodeChurn {
			continue // churn injects real failures; F1 owns that accounting
		}
		if c := minFloat(res.Completeness); c < minComp {
			minComp = c
		}
		if res.LostBytes > maxLost {
			maxLost = res.LostBytes
		}
	}
	rep.Checks = append(rep.Checks,
		Check{
			Name:     "completeness 1 absent injected failures",
			Paper:    "adaptation never loses acknowledged data",
			Measured: minComp, Unit: "fraction", Lo: 1, Hi: 1,
		},
		Check{
			Name:     "no bytes lost absent injected failures",
			Paper:    "epoch fence preserves in-flight iterations",
			Measured: maxLost, Unit: "bytes", Lo: 0, Hi: 1e-9,
		})

	// ---- Adaptive vs static on a mid-run platform shift. ----
	if opts.Scenario == "" && opts.Adapt == "" {
		st := results[legKey{workload.NICStep, iostrat.AdaptStatic}]
		ad := results[legKey{workload.NICStep, iostrat.AdaptAdaptive}]
		rep.Checks = append(rep.Checks,
			Check{
				Name:     "adaptive re-forms on the NIC step",
				Paper:    "topology follows observed bandwidth",
				Measured: float64(ad.TreeReforms), Unit: "reforms", Lo: 1,
			},
			Check{
				Name:     "static control never re-forms",
				Paper:    "fixed topology is the baseline",
				Measured: float64(st.TreeReforms), Unit: "reforms", Lo: 0, Hi: 1e-9,
			},
			Check{
				Name:     "adaptive write-latency advantage on the NIC step",
				Paper:    "re-formed tree beats the stale shape",
				Measured: stats.Median(st.TreeWriteLatencies) / stats.Median(ad.TreeWriteLatencies),
				Unit:     "x", Lo: 1.001,
			},
			Check{
				Name:     "adaptation leaves stored volume unchanged",
				Paper:    "same data, different route",
				Measured: ad.BytesWritten / st.BytesWritten,
				Unit:     "x", Lo: 0.999, Hi: 1.001,
			})
	}

	// ---- Runtime face: real goroutines, mid-run re-formation. ----
	adaptRT := opts.Adapt != string(iostrat.AdaptStatic)
	rt, err := runE11Cluster(opts.Seed, adaptRT)
	if err != nil {
		return Report{}, fmt.Errorf("e11 runtime: %w", err)
	}
	rtTab := stats.NewTable(
		"runtime face: NIC-step trace replay with streaming subscriber",
		"leg", "tree_reforms", "epochs", "blocks_stored", "blocks_expected",
		"stream_frames", "min_completeness")
	leg := "adaptive"
	if !adaptRT {
		leg = "static"
	}
	rtTab.AddRow(leg, rt.reforms, rt.epochs, rt.blocks, rt.want, rt.frames, rt.minComp)
	rep.Tables = append(rep.Tables, rtTab)
	rep.Checks = append(rep.Checks,
		Check{
			Name:     "runtime: every acknowledged block stored once",
			Paper:    "re-formation preserves in-flight mailboxes",
			Measured: float64(rt.blocks), Unit: "blocks",
			Lo: float64(rt.want), Hi: float64(rt.want),
		},
		Check{
			Name:     "runtime: completeness 1 through re-formation",
			Paper:    "adaptation never loses acknowledged data",
			Measured: rt.minComp, Unit: "fraction", Lo: 1, Hi: 1,
		},
		Check{
			Name:     "runtime: streaming survives re-formation",
			Paper:    "composes with the streaming hooks",
			Measured: float64(rt.frames), Unit: "frames", Lo: 1,
		})
	if adaptRT {
		rep.Checks = append(rep.Checks, Check{
			Name:     "runtime: tree re-formed when the shift landed",
			Paper:    "topology follows observed bandwidth",
			Measured: float64(rt.reforms), Unit: "reforms", Lo: 1,
		})
	}
	return rep, nil
}

// e11Run is one runtime-face measurement.
type e11Run struct {
	reforms int
	epochs  int
	blocks  int     // distinct (iteration, node, source) blocks stored
	want    int     // blocks acknowledged by clients
	frames  int     // streaming frames delivered across re-formations
	minComp float64 // worst per-iteration completeness
}

// runE11Cluster replays a NIC-step trace on a real cluster: every
// client writes each iteration, a streaming subscriber consumes merged
// batches throughout, and — on the adaptive leg — the topology is
// re-formed from RecommendTopology the moment the trace's bandwidth
// step lands, using the shifted factors as the observed bandwidths.
func runE11Cluster(seed uint64, adapt bool) (e11Run, error) {
	const nodes, clients, iters = 8, 2, 8
	tr, err := workload.Generate(workload.Spec{
		Scenario:   workload.NICStep,
		Seed:       seed,
		Iterations: iters,
		Nodes:      nodes,
	})
	if err != nil {
		return e11Run{}, err
	}
	metaCfg, err := meta.ParseString(e11ClusterMeta)
	if err != nil {
		return e11Run{}, err
	}
	mem := storage.NewMemory(nil, 4, 1e9)
	stream := storage.NewStream()
	sub := stream.Subscribe(storage.SubOptions{Buffer: nodes * iters})
	c, err := cluster.New(cluster.Config{
		Platform: topology.Platform{Name: "e11", Nodes: nodes, CoresPerNode: clients + 1},
		Meta:     metaCfg,
		Fanout:   2,
		Roots:    1,
		Store:    mem,
		Hooks:    []cluster.Hook{cluster.NewStreamingHook(stream)},
	})
	if err != nil {
		return e11Run{}, err
	}

	var consumerWG sync.WaitGroup
	consumerWG.Add(1)
	frames := 0
	consumerErr := make(chan error, 1)
	go func() {
		defer consumerWG.Done()
		for {
			msg, err := sub.Recv()
			if err != nil {
				if err != storage.ErrStreamClosed && err != storage.ErrSlowConsumer {
					consumerErr <- err
				}
				return
			}
			if _, err := cluster.DecodeBatch(msg.Data); err != nil {
				consumerErr <- err
				return
			}
			frames++
		}
	}()

	// The recommendation models the simulated job — kraken-class nominal
	// bandwidths scaled by the trace's cumulative shift factors, and the
	// trace's own per-node volume — not the toy payload below.
	nominal := topology.Kraken(nodes)
	fanout, roots := 2, 1
	row := make([]float64, 512)
	for it := 0; it < iters; it++ {
		for i := range row {
			row[i] = float64(it*len(row) + i)
		}
		data := compress.Float64Bytes(row)
		for n := 0; n < nodes; n++ {
			for s := 0; s < clients; s++ {
				if err := c.Client(n, s).Write("theta", it, data); err != nil {
					return e11Run{}, fmt.Errorf("node %d src %d it %d: %w", n, s, it, err)
				}
				c.Client(n, s).EndIteration(it)
			}
		}
		if adapt && len(tr.ShiftsAt(it+1)) > 0 {
			// The shift lands next iteration: settle this one, observe
			// the new bandwidths, and re-form ahead of the step.
			c.WaitIteration(it)
			nodeBytes := tr.Iters[it].BytesPerCore * float64(clients)
			f, r := cluster.RecommendTopology(nodes, nodeBytes,
				nominal.NICBandwidth*tr.NICFactorAt(it+1),
				nominal.PFS.OSTBandwidth*tr.PFSFactorAt(it+1), nominal.PFS.OSTs)
			if f != fanout || r != roots {
				if _, err := c.Reform(f, r); err != nil {
					return e11Run{}, fmt.Errorf("reform (%d, %d): %w", f, r, err)
				}
				fanout, roots = f, r
			}
		}
	}
	c.WaitIteration(iters - 1)
	if err := c.Shutdown(); err != nil {
		return e11Run{}, err
	}
	stream.Close()
	consumerWG.Wait()
	select {
	case err := <-consumerErr:
		return e11Run{}, err
	default:
	}

	minComp := 1.0
	for _, frac := range c.Stats().Completeness {
		if frac < minComp {
			minComp = frac
		}
	}
	run := e11Run{
		reforms: c.Stats().TreeReforms,
		epochs:  c.Epochs(),
		want:    nodes * clients * iters,
		frames:  frames,
		minComp: minComp,
	}
	seen := map[[3]int]bool{}
	for _, name := range mem.ObjectNames() {
		if cluster.IsManifestName(name) {
			continue
		}
		obj, ok := mem.Object(name)
		if !ok {
			continue
		}
		b, err := cluster.DecodeBatch(obj)
		if err != nil {
			return e11Run{}, fmt.Errorf("decode %s: %w", name, err)
		}
		for _, blk := range b.Blocks {
			key := [3]int{b.Iteration, blk.Node, blk.Source}
			if seen[key] {
				return e11Run{}, fmt.Errorf("iteration %d: block (node %d, source %d) stored twice",
					b.Iteration, blk.Node, blk.Source)
			}
			seen[key] = true
		}
	}
	run.blocks = len(seen)
	return run, nil
}

// minFloat returns the smallest element (1 for an empty slice, the
// neutral completeness).
func minFloat(xs []float64) float64 {
	m := 1.0
	for i, x := range xs {
		if i == 0 || x < m {
			m = x
		}
	}
	return m
}
