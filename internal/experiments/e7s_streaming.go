package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/compress"
	"repro/internal/iostrat"
	"repro/internal/meta"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/topology"
)

// e7sClusterMeta is the per-node description of the runtime-face runs:
// one float64 row per client, small enough that the paced store's
// artificial write delay dominates every other cost.
const e7sClusterMeta = `<simulation name="e7s">
  <architecture><dedicated cores="1"/><buffer size="4194304"/></architecture>
  <data>
    <parameter name="n" value="512"/>
    <layout name="row" type="float64" dimensions="n"/>
    <variable name="theta" layout="row"/>
  </data>
</simulation>`

// e7sWriteDelay is the paced store's per-object write latency on the
// runtime face — the gap a streaming consumer gets to skip.
const e7sWriteDelay = 15 * time.Millisecond

// RunE7S extends E7 with the streaming pipeline of docs/STREAMING.md:
// instead of comparing coupled vs uncoupled simulation speed, it
// compares how *fresh* the data is when the analysis sees it. Two
// couplings on two faces:
//
//   - runtime face: a real cluster publishes every merged iteration
//     through cluster.NewStreamingHook before the store write begins,
//     while a file-then-read consumer waits for the write and reads the
//     object back — wall-clock end-to-end latency per frame;
//   - DES face: the same comparison in virtual time at multi-node scale
//     via iostrat's InSituConfig, plus the slow-consumer policy sweep
//     (drop-oldest / block / sample) pricing §V's "loss of data rather
//     than blocking" against real backpressure.
//
// The headline checks: streaming beats file-then-read for a fast
// consumer on both faces, and a slow consumer under drop-oldest never
// blocks the write path.
func RunE7S(opts Options) (Report, error) {
	opts = opts.withDefaults()
	rep := Report{ID: "E7S", Title: "streaming in-situ pipeline vs file-then-read (E7 extension)"}

	// ---- Runtime face: wall-clock frame freshness. ----
	const (
		rtNodes   = 4
		rtClients = 2
		rtIters   = 6
	)
	fast, err := runE7SCluster(rtNodes, rtClients, rtIters, fastConsumer())
	if err != nil {
		return Report{}, fmt.Errorf("e7s runtime (fast consumer): %w", err)
	}
	slowPolicy := storage.DropOldest
	if opts.StreamPolicy != "" {
		if err := storage.ValidateSlowPolicy(opts.StreamPolicy); err != nil {
			return Report{}, err
		}
		slowPolicy = storage.SlowPolicy(opts.StreamPolicy)
	}
	slowBuf := 1
	if opts.StreamBuffer > 0 {
		slowBuf = opts.StreamBuffer
	}
	slow, err := runE7SCluster(rtNodes, rtClients, rtIters, slowConsumer(slowPolicy, slowBuf))
	if err != nil {
		return Report{}, fmt.Errorf("e7s runtime (slow consumer): %w", err)
	}

	rt := stats.NewTable(
		fmt.Sprintf("runtime face: end-to-end frame latency, %d nodes × %d clients, %v paced store",
			rtNodes, rtClients, e7sWriteDelay),
		"consumer_path", "mean_latency_ms", "p95_latency_ms", "frames")
	rt.AddRow("streaming hook", stats.Mean(fast.streamLat)*1e3,
		stats.Percentile(sorted(fast.streamLat), 95)*1e3, len(fast.streamLat))
	rt.AddRow("file-then-read", stats.Mean(fast.fileLat)*1e3,
		stats.Percentile(sorted(fast.fileLat), 95)*1e3, len(fast.fileLat))

	rtSlow := stats.NewTable(
		fmt.Sprintf("runtime face: slow consumer under %s (buffer %d)", slowPolicy, slowBuf),
		"consumer", "frames_received", "frames_dropped", "objects_written", "mean_step_ms")
	rtSlow.AddRow("fast", len(fast.streamLat), fast.dropped, fast.objects, stats.Mean(fast.stepTimes)*1e3)
	rtSlow.AddRow("slow", len(slow.streamLat), slow.dropped, slow.objects, stats.Mean(slow.stepTimes)*1e3)

	// ---- DES face: virtual-time freshness at multi-node scale. ----
	cores := opts.Scales[0]
	desCfg := func(mode iostrat.InSituMode, bw float64, pol storage.SlowPolicy, buf int) iostrat.Config {
		cfg := opts.strategyConfig(cores)
		if cfg.Fanout < 2 {
			cfg.Fanout = 4
		}
		cfg.InSitu = iostrat.InSituConfig{
			Mode: mode, AnalysisBandwidth: bw, Policy: pol, Buffer: buf,
		}
		return cfg
	}
	const (
		fastBW = 5e9 // consumer far above production rate
		// slowBW makes one ~1.8 GB root frame cost ~900 s of analysis —
		// three times the CM1 compute interval — so a buffer-1 queue
		// must shed or stall within a handful of iterations.
		slowBW = 2e6
	)
	desStream, err := iostrat.Run(iostrat.Damaris, desCfg(iostrat.InSituStream, fastBW, "", 0))
	if err != nil {
		return Report{}, err
	}
	desFile, err := iostrat.Run(iostrat.Damaris, desCfg(iostrat.InSituFile, fastBW, "", 0))
	if err != nil {
		return Report{}, err
	}
	baseCfg := desCfg(iostrat.InSituOff, fastBW, "", 0)
	baseCfg.InSitu = iostrat.InSituConfig{}
	desBase, err := iostrat.Run(iostrat.Damaris, baseCfg)
	if err != nil {
		return Report{}, err
	}

	des := stats.NewTable(
		fmt.Sprintf("DES face: analysis freshness at %d cores (fast consumer)", cores),
		"coupling", "mean_analysis_latency_s", "frames_analyzed", "bytes_written_gb")
	des.AddRow("stream", desStream.MeanAnalysisLatency(), desStream.FramesAnalyzed,
		stats.GB(desStream.BytesWritten))
	des.AddRow("file-then-read", desFile.MeanAnalysisLatency(), desFile.FramesAnalyzed,
		stats.GB(desFile.BytesWritten))

	policies := []storage.SlowPolicy{storage.DropOldest, storage.Block, storage.Sample}
	if opts.StreamPolicy != "" {
		policies = []storage.SlowPolicy{slowPolicy}
	}
	// The slow-consumer legs need enough iterations that a buffer-1
	// queue can actually overflow (the consumer drains the first frame
	// the moment it lands); quick runs would otherwise never shed.
	slowIters := opts.Iterations
	if slowIters < 6 {
		slowIters = 6
	}
	desPol := stats.NewTable(
		fmt.Sprintf("DES face: slow consumer × policy (stream coupling, buffer %d, %d iterations)",
			slowBuf, slowIters),
		"policy", "frames_analyzed", "frames_dropped", "publisher_block_s", "mean_write_latency_s")
	var desDrop, desBlock iostrat.Result
	for _, pol := range policies {
		cfg := desCfg(iostrat.InSituStream, slowBW, pol, slowBuf)
		cfg.Workload.Iterations = slowIters
		res, err := iostrat.Run(iostrat.Damaris, cfg)
		if err != nil {
			return Report{}, err
		}
		switch pol {
		case storage.DropOldest:
			desDrop = res
		case storage.Block:
			desBlock = res
		}
		desPol.AddRow(string(pol), res.FramesAnalyzed, res.FramesDropped,
			res.StreamBlockTime, stats.Mean(res.TreeWriteLatencies))
	}

	rep.Tables = []*stats.Table{rt, rtSlow, des, desPol}
	rep.Checks = []Check{
		{
			Name:     "runtime: streaming freshness advantage",
			Paper:    "analysis runs in parallel with the write (§V.B)",
			Measured: stats.Mean(fast.fileLat) / stats.Mean(fast.streamLat),
			Unit:     "x", Lo: 1.5,
		},
		{
			Name:     "runtime: write path complete despite slow consumer",
			Paper:    "loss of data rather than blocking (§V.C.1)",
			Measured: float64(slow.objects), Unit: "objects", Lo: float64(rtIters), Hi: float64(rtIters) * 2,
		},
		{
			Name:     "runtime: slow consumer sheds frames",
			Paper:    "skip iterations to keep up (§V.C.1)",
			Measured: float64(slow.dropped + (rtIters - len(slow.streamLat))),
			Unit:     "frames", Lo: minDropsExpected(slowPolicy),
		},
		{
			Name:     "runtime: production pace unaffected by slow consumer",
			Paper:    "no performance impact on the simulation (§V.C.1)",
			Measured: stats.Mean(slow.stepTimes) / stats.Mean(fast.stepTimes),
			Unit:     "x", Lo: 0, Hi: slowStepBand(slowPolicy),
		},
		{
			Name:     "DES: streaming freshness advantage",
			Paper:    "in-situ sees data before it reaches storage (§V.B)",
			Measured: desFile.MeanAnalysisLatency() / desStream.MeanAnalysisLatency(),
			Unit:     "x", Lo: 1.01,
		},
		{
			Name:     "DES: coupling leaves stored volume unchanged",
			Paper:    "streaming rides along with the write",
			Measured: desStream.BytesWritten / desBase.BytesWritten,
			Unit:     "x", Lo: 0.999, Hi: 1.001,
		},
	}
	// The per-policy checks only apply when that policy actually ran:
	// -stream-policy pins the sweep to a single leg.
	if hasPolicy(policies, storage.DropOldest) {
		rep.Checks = append(rep.Checks,
			Check{
				Name:     "DES: drop-oldest never blocks the publisher",
				Paper:    "loss of data rather than blocking (§V.C.1)",
				Measured: desDrop.StreamBlockTime, Unit: "s", Lo: 0, Hi: 1e-9,
			},
			Check{
				Name:     "DES: drop-oldest sheds frames under a slow consumer",
				Paper:    "skip iterations to keep up (§V.C.1)",
				Measured: float64(desDrop.FramesDropped), Unit: "frames", Lo: 1,
			})
	}
	if hasPolicy(policies, storage.Block) {
		rep.Checks = append(rep.Checks, Check{
			Name:     "DES: block policy measures real backpressure",
			Paper:    "blocking coupling stalls the pipeline (§V.A)",
			Measured: desBlock.StreamBlockTime, Unit: "s", Lo: 1e-9,
		})
	}
	return rep, nil
}

// minDropsExpected returns how many shed frames the slow-consumer leg
// must see: the block policy sheds nothing (it stalls instead).
func minDropsExpected(pol storage.SlowPolicy) float64 {
	if pol == storage.Block {
		return 0
	}
	return 1
}

// slowStepBand is the accepted production-slowdown band for the slow
// consumer: tight for the shedding policies (the write path must be
// untouched), opened wide under block (backpressure is the point).
func slowStepBand(pol storage.SlowPolicy) float64 {
	if pol == storage.Block {
		return 1000
	}
	return 3
}

func hasPolicy(pols []storage.SlowPolicy, want storage.SlowPolicy) bool {
	for _, p := range pols {
		if p == want {
			return true
		}
	}
	return false
}

func sorted(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// e7sRun is one runtime-face measurement: per-frame latencies on both
// consumer paths plus the producer's step times.
type e7sRun struct {
	streamLat []float64 // streaming-hook frame latency, seconds
	fileLat   []float64 // file-then-read frame latency, seconds
	stepTimes []float64 // producer-side per-iteration wall time
	dropped   int       // frames shed by the subscriber queue
	objects   int       // root objects the store accepted
}

// e7sConsumer abstracts the subscriber side of a runtime run.
type e7sConsumer struct {
	opts  storage.SubOptions
	delay time.Duration // per-frame processing cost
}

// fastConsumer drains instantly and never falls behind.
func fastConsumer() e7sConsumer {
	return e7sConsumer{opts: storage.SubOptions{Buffer: storage.DefaultStreamBuffer}}
}

// slowConsumer processes each frame slower than the producer emits
// them, forcing the queue policy to act.
func slowConsumer(pol storage.SlowPolicy, buffer int) e7sConsumer {
	return e7sConsumer{
		opts:  storage.SubOptions{Buffer: buffer, Policy: pol, BlockTimeout: 50 * time.Millisecond},
		delay: 3 * e7sWriteDelay,
	}
}

// delayedStore delays every Put by a fixed wall-clock amount — a
// stand-in for a storage system whose write latency dwarfs aggregation
// (E6's pacedStore models contention; here only the latency gap
// matters). It deliberately does not implement storage.VecStore, so
// the cluster write path issues one flattened Put per root object.
type delayedStore struct {
	inner storage.ObjectStore
	delay time.Duration
}

func (s *delayedStore) Put(name string, data []byte) error {
	time.Sleep(s.delay)
	return s.inner.Put(name, data)
}

// runE7SCluster drives one runtime cluster through a paced store with a
// streaming hook attached and measures, per iteration, how long each
// consumer path waits for the data.
func runE7SCluster(nodes, clients, iters int, cons e7sConsumer) (e7sRun, error) {
	metaCfg, err := meta.ParseString(e7sClusterMeta)
	if err != nil {
		return e7sRun{}, err
	}
	mem := storage.NewMemory(nil, 4, 1e9)
	stream := storage.NewStream()
	sub := stream.Subscribe(cons.opts)
	c, err := cluster.New(cluster.Config{
		Platform: topology.Platform{Name: "e7s", Nodes: nodes, CoresPerNode: clients + 1},
		Meta:     metaCfg,
		Fanout:   nodes, // one tree, one root: one object per iteration
		Store:    &delayedStore{inner: mem, delay: e7sWriteDelay},
		Hooks:    []cluster.Hook{cluster.NewStreamingHook(stream)},
	})
	if err != nil {
		return e7sRun{}, err
	}

	// prodDone[it] is closed with the production timestamp once every
	// client has ended iteration it — the zero point both latencies are
	// measured from.
	prodTime := make([]time.Time, iters)
	var mu sync.Mutex
	run := e7sRun{}

	// The streaming consumer: receives merged batches as roots finish
	// aggregating, before the paced write completes.
	var consumerWG sync.WaitGroup
	consumerWG.Add(1)
	consumerErr := make(chan error, 1)
	go func() {
		defer consumerWG.Done()
		for {
			msg, err := sub.Recv()
			if err != nil {
				if err != storage.ErrStreamClosed && err != storage.ErrSlowConsumer {
					consumerErr <- err
				}
				return
			}
			now := time.Now()
			b, err := cluster.DecodeBatch(msg.Data)
			if err != nil {
				consumerErr <- err
				return
			}
			if cons.delay > 0 {
				time.Sleep(cons.delay)
			}
			mu.Lock()
			run.streamLat = append(run.streamLat, now.Sub(prodTime[b.Iteration]).Seconds())
			mu.Unlock()
		}
	}()

	payload := make([]float64, 512)
	for it := 0; it < iters; it++ {
		step0 := time.Now()
		for i := range payload {
			payload[i] = float64(it*len(payload) + i)
		}
		data := compress.Float64Bytes(payload)
		for n := 0; n < nodes; n++ {
			for s := 0; s < clients; s++ {
				if err := c.Client(n, s).Write("theta", it, data); err != nil {
					return e7sRun{}, fmt.Errorf("node %d src %d it %d: %w", n, s, it, err)
				}
			}
		}
		prodTime[it] = time.Now()
		for n := 0; n < nodes; n++ {
			for s := 0; s < clients; s++ {
				c.Client(n, s).EndIteration(it)
			}
		}
		// The file-then-read consumer: wait for the root write, then
		// read the object back — it pays the paced store's latency.
		c.WaitIteration(it)
		names, err := mem.List("e7s-root")
		if err != nil {
			return e7sRun{}, err
		}
		got := false
		for _, name := range names {
			if strings.HasSuffix(name, fmt.Sprintf("-it%06d", it)) {
				if _, err := mem.Get(name); err != nil {
					return e7sRun{}, err
				}
				got = true
			}
		}
		if !got {
			return e7sRun{}, fmt.Errorf("iteration %d: no root object stored", it)
		}
		run.fileLat = append(run.fileLat, time.Since(prodTime[it]).Seconds())
		run.stepTimes = append(run.stepTimes, time.Since(step0).Seconds())
	}

	if err := c.Shutdown(); err != nil {
		return e7sRun{}, err
	}
	stream.Close()
	consumerWG.Wait()
	select {
	case err := <-consumerErr:
		return e7sRun{}, err
	default:
	}
	run.dropped = int(sub.Dropped())
	run.objects = c.Stats().ObjectsWritten
	return run, nil
}
