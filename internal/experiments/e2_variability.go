package experiments

import (
	"fmt"

	"repro/internal/iostrat"
	"repro/internal/stats"
)

// RunE2 reproduces §IV.B: the variability of the time each process spends
// writing, per phase and across phases. Paper claims: synchronous
// approaches show gaps of orders of magnitude between the slowest and the
// fastest processes and hundreds of seconds of unpredictability across
// phases, while Damaris cuts the visible write to the ~0.1 s needed to
// copy into shared memory, independent of scale.
func RunE2(opts Options) (Report, error) {
	opts = opts.withDefaults()
	rep := Report{ID: "E2", Title: "I/O variability (§IV.B)"}

	perRank := stats.NewTable(
		fmt.Sprintf("per-rank write time distribution at %d cores", opts.maxScale()),
		"approach", "mean_s", "std_s", "cov", "min_s", "max_s", "max/min")
	perPhase := stats.NewTable(
		"per-phase I/O duration across iterations (app-visible)",
		"approach", "mean_s", "std_s", "min_s", "max_s", "range_s")

	cfgAt := func(cores int) iostrat.Config {
		return iostrat.Config{
			Platform: opts.platformFor(cores),
			Workload: iostrat.CM1Workload(opts.Iterations),
			Seed:     opts.Seed + uint64(cores),
		}
	}

	top := make(map[iostrat.Approach]iostrat.Result)
	for _, a := range approaches {
		r, err := iostrat.Run(a, cfgAt(opts.maxScale()))
		if err != nil {
			return Report{}, err
		}
		top[a] = r
		rk := stats.Summarize(r.RankWriteTimes)
		perRank.AddRow(string(a), rk.Mean, rk.Std, rk.CoV(), rk.Min, rk.Max, rk.Spread())
		ph := stats.Summarize(r.IOTimes)
		perPhase.AddRow(string(a), ph.Mean, ph.Std, ph.Min, ph.Max, ph.Max-ph.Min)
	}
	rep.Tables = []*stats.Table{perRank, perPhase}

	// Scale independence of the Damaris write: compare smallest vs largest.
	damSmall, err := iostrat.Run(iostrat.Damaris, cfgAt(opts.Scales[0]))
	if err != nil {
		return Report{}, err
	}
	smallMean := stats.Summarize(damSmall.RankWriteTimes).Mean
	largeMean := stats.Summarize(top[iostrat.Damaris].RankWriteTimes).Mean
	scaleRatio := 1.0
	if smallMean > 0 {
		scaleRatio = largeMean / smallMean
	}

	fppRank := stats.Summarize(top[iostrat.FilePerProcess].RankWriteTimes)
	collPhase := stats.Summarize(top[iostrat.Collective].IOTimes)
	rep.Checks = []Check{
		{
			// The simulator reproduces one order of magnitude of spread;
			// the paper's "several orders" includes pathologies (hung
			// clients) outside the queueing model. See EXPERIMENTS.md.
			Name:     "FPP slowest/fastest rank gap",
			Paper:    "orders of magnitude between processes (§II, §IV.B)",
			Measured: fppRank.Spread(), Unit: "x", Lo: 8,
		},
		{
			Name:     "collective cross-phase range",
			Paper:    "up to hundreds of seconds of unpredictability (§IV.B)",
			Measured: collPhase.Max - collPhase.Min, Unit: "s", Lo: 50,
		},
		{
			Name:     "Damaris visible write time",
			Paper:    "~0.1 s, time to write into shared memory (§IV.B)",
			Measured: largeMean, Unit: "s", Lo: 0.02, Hi: 0.3,
		},
		{
			Name:     "Damaris write scale independence (9216 vs smallest)",
			Paper:    "does not depend on scale (§IV.B)",
			Measured: scaleRatio, Unit: "x", Lo: 0.8, Hi: 1.25,
		},
		{
			Name:     "Damaris write variability (CoV)",
			Paper:    "perfectly hides the I/O variability (§IV.B)",
			Measured: stats.Summarize(top[iostrat.Damaris].RankWriteTimes).CoV(),
			Unit:     "", Lo: 0, Hi: 0.05,
		},
	}
	return rep, nil
}
