package experiments

import (
	"fmt"

	"repro/internal/cm1"
	"repro/internal/compress"
	"repro/internal/iostrat"
	"repro/internal/stats"
)

// RunE5 reproduces §IV.D's compression claim: "we used this spare time to
// add data compression in files, and achieved a 600% compression ratio
// without any overhead on the simulation."
//
// Two measurements:
//  1. real codecs on real CM1-proxy fields — the achievable ratio;
//  2. the DES Damaris run with compression enabled on the dedicated
//     cores — the simulation-side overhead (none: the codec runs on
//     cores the simulation does not use) and that the dedicated cores
//     still keep up (no skipped iterations).
func RunE5(opts Options) (Report, error) {
	opts = opts.withDefaults()
	rep := Report{ID: "E5", Title: "compression on the dedicated cores (§IV.D)"}

	// Part 1: real ratios on CM1 proxy output after a short spin-up.
	params := cm1.DefaultParams()
	params.NX, params.NY, params.NZ = 32, 32, 24
	model, err := cm1.New(params, nil)
	if err != nil {
		return Report{}, err
	}
	for s := 0; s < 10; s++ {
		model.Step()
	}
	ratioTable := stats.NewTable(
		"lossless compression of CM1 proxy fields (32x32x24, step 10)",
		"codec", "raw_MB", "encoded_MB", "ratio")
	bestRatio := 0.0
	for _, name := range []string{"gorilla", "flate"} {
		codec, err := compress.ByName(name)
		if err != nil {
			return Report{}, err
		}
		var raw, enc int
		for _, f := range model.Fields() {
			src := compress.Float64Bytes(f.Data)
			out, err := codec.Encode(src, 8)
			if err != nil {
				return Report{}, err
			}
			raw += len(src)
			enc += len(out)
		}
		ratio := compress.Ratio(raw, enc)
		if ratio > bestRatio {
			bestRatio = ratio
		}
		ratioTable.AddRow(name, float64(raw)/1e6, float64(enc)/1e6, ratio)
	}

	// Part 2: system effect at scale via the DES model, using a ratio in
	// the measured range.
	cores := opts.maxScale()
	base := iostrat.Config{
		Platform: opts.platformFor(cores),
		Workload: iostrat.CM1Workload(opts.Iterations),
		Seed:     opts.Seed + uint64(cores),
	}
	plain, err := iostrat.Run(iostrat.Damaris, base)
	if err != nil {
		return Report{}, err
	}
	withComp := base
	withComp.CompressRatio = 6.0
	compressed, err := iostrat.Run(iostrat.Damaris, withComp)
	if err != nil {
		return Report{}, err
	}
	sysTable := stats.NewTable(
		fmt.Sprintf("Damaris at %d cores with and without dedicated-core compression", cores),
		"config", "run_time_s", "client_io_s", "GB_to_storage", "skipped", "dedicated_busy_s")
	sysTable.AddRow("uncompressed", plain.TotalTime, plain.MeanIOTime(),
		stats.GB(plain.BytesWritten), plain.SkippedIters, plain.DedicatedBusy)
	sysTable.AddRow("compressed 6x", compressed.TotalTime, compressed.MeanIOTime(),
		stats.GB(compressed.BytesWritten), compressed.SkippedIters, compressed.DedicatedBusy)

	rep.Tables = []*stats.Table{ratioTable, sysTable}
	overhead := 1.0
	if plain.TotalTime > 0 {
		overhead = compressed.TotalTime / plain.TotalTime
	}
	rep.Checks = []Check{
		{
			Name:     "best lossless ratio on CM1 fields",
			Paper:    "600% compression ratio (§IV.D)",
			Measured: bestRatio, Unit: "x", Lo: 4, Hi: 80,
		},
		{
			Name:     "simulation overhead with compression",
			Paper:    "without any overhead on the simulation (§IV.D)",
			Measured: overhead, Unit: "x", Lo: 0.995, Hi: 1.005,
		},
		{
			Name:     "iterations dropped under compression",
			Paper:    "dedicated cores absorb the codec cost (§IV.D)",
			Measured: float64(compressed.SkippedIters), Unit: "", Lo: 0, Hi: 0.5,
		},
		{
			Name:     "storage bytes reduction",
			Paper:    "6x fewer bytes written",
			Measured: plain.BytesWritten / compressed.BytesWritten, Unit: "x", Lo: 5.5, Hi: 6.5,
		},
	}
	return rep, nil
}
