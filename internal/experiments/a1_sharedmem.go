package experiments

import (
	"time"

	"repro/internal/shm"
	"repro/internal/stats"
)

// RunA1 is the ablation behind the central design choice of §III.A:
// Damaris communicates through shared memory so data crosses the
// client→service boundary with a single copy, where message-passing
// couplings "involve multiple copies of data".
//
// It moves the same volume from producers to a consumer two ways:
//
//   - shared-memory path: the producer copies into the segment, the
//     consumer reads the block in place (1 copy);
//   - message-passing path: the producer marshals into a message (copy
//     1), the transport hands it over, the consumer unmarshals into its
//     own buffer (copy 2) — local MPI semantics.
//
// The copy counts are deterministic; the wall-clock times are reported
// for context.
func RunA1(opts Options) (Report, error) {
	rep := Report{ID: "A1", Title: "ablation: shared memory vs message passing (§III.A)"}
	const (
		blockSize = 1 << 20
		blocks    = 256
	)

	shmCopies, shmTime, err := shmPath(blockSize, blocks)
	if err != nil {
		return Report{}, err
	}
	msgCopies, msgTime := messagePath(blockSize, blocks)

	table := stats.NewTable(
		"moving 256 MB from simulation cores to the data service",
		"path", "bytes_copied_MB", "copies_per_byte", "wall_ms")
	table.AddRow("shared-memory (damaris)", float64(shmCopies)/1e6,
		float64(shmCopies)/float64(blockSize*blocks), shmTime.Seconds()*1e3)
	table.AddRow("message-passing", float64(msgCopies)/1e6,
		float64(msgCopies)/float64(blockSize*blocks), msgTime.Seconds()*1e3)
	rep.Tables = []*stats.Table{table}
	rep.Checks = []Check{
		{
			Name:     "copies per byte, shared memory",
			Paper:    "avoid unnecessary copies (§III.A)",
			Measured: float64(shmCopies) / float64(blockSize*blocks), Unit: "", Lo: 1, Hi: 1,
		},
		{
			Name:     "copies per byte, message passing",
			Paper:    "involving multiple copies of data (§III.A)",
			Measured: float64(msgCopies) / float64(blockSize*blocks), Unit: "", Lo: 2,
		},
	}
	return rep, nil
}

// shmPath pushes blocks through a real segment: one copy in, consumed in
// place.
func shmPath(blockSize, blocks int) (copied int64, elapsed time.Duration, err error) {
	seg, err := shm.NewSegment(8 << 20)
	if err != nil {
		return 0, 0, err
	}
	src := make([]byte, blockSize)
	for i := range src {
		src[i] = byte(i)
	}
	sink := byte(0)
	start := time.Now()
	for b := 0; b < blocks; b++ {
		blk, err := seg.AllocWait(blockSize)
		if err != nil {
			return 0, 0, err
		}
		copied += int64(copy(blk.Bytes(), src)) // the single copy
		// Consumer side: read in place, no copy.
		sink ^= blk.Bytes()[b%blockSize]
		blk.Free()
	}
	elapsed = time.Since(start)
	_ = sink
	return copied, elapsed, nil
}

// messagePath pushes the same volume through a queue with value
// semantics: marshal copy on send, unmarshal copy on receive.
func messagePath(blockSize, blocks int) (copied int64, elapsed time.Duration) {
	q := shm.NewQueue[[]byte](8)
	src := make([]byte, blockSize)
	for i := range src {
		src[i] = byte(i)
	}
	done := make(chan int64)
	go func() {
		var received int64
		dst := make([]byte, blockSize)
		for {
			msg, ok := q.Recv()
			if !ok {
				done <- received
				return
			}
			received += int64(copy(dst, msg)) // copy 2: into the consumer
		}
	}()
	start := time.Now()
	for b := 0; b < blocks; b++ {
		msg := make([]byte, blockSize)
		copied += int64(copy(msg, src)) // copy 1: marshal into the message
		q.Send(msg)
	}
	q.Close()
	copied += <-done
	elapsed = time.Since(start)
	return copied, elapsed
}
