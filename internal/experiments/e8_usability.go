package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/stats"
)

// RunE8 reproduces §V.C.2: the usability comparison. The paper rewrote
// the examples shipped with VisIt using Damaris and counted the code
// changes: more than a hundred lines with the VisIt API, fewer than ten
// with Damaris (one line per shared data object plus the external XML).
//
// This repository ships both integrations of the same cavity simulation
// (examples/insitu/damaris_integration.go and visit_integration.go) with
// the instrumentation bracketed by BEGIN/END-INSTRUMENTATION markers;
// the experiment counts the marked lines.
func RunE8(opts Options) (Report, error) {
	rep := Report{ID: "E8", Title: "integration effort: Damaris vs VisIt-style coupling (§V.C.2)"}
	root, err := repoRoot()
	if err != nil {
		return Report{}, err
	}
	files := map[string]string{
		"damaris": filepath.Join(root, "examples", "insitu", "damaris_integration.go"),
		"visit":   filepath.Join(root, "examples", "insitu", "visit_integration.go"),
	}
	counts := map[string]int{}
	table := stats.NewTable(
		"instrumentation lines added to the cavity simulation per coupling",
		"coupling", "file", "instrumentation_loc")
	for _, name := range []string{"damaris", "visit"} {
		n, err := countInstrumentation(files[name])
		if err != nil {
			return Report{}, err
		}
		counts[name] = n
		table.AddRow(name, filepath.Base(files[name]), n)
	}
	rep.Tables = []*stats.Table{table}
	rep.Checks = []Check{
		{
			Name:     "Damaris instrumentation lines",
			Paper:    "less than 10 lines of code changes (§V.C.2)",
			Measured: float64(counts["damaris"]), Unit: "loc", Lo: 1, Hi: 10,
		},
		{
			Name:     "VisIt-style instrumentation lines",
			Paper:    "more than a hundred lines of code (§V.C.2)",
			Measured: float64(counts["visit"]), Unit: "loc", Lo: 80,
		},
		{
			Name:     "effort ratio VisIt/Damaris",
			Paper:    "order-of-magnitude easier integration (§V.C.2)",
			Measured: float64(counts["visit"]) / float64(counts["damaris"]), Unit: "x", Lo: 8,
		},
	}
	return rep, nil
}

// repoRoot locates the module root from this source file's location.
func repoRoot() (string, error) {
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		return "", fmt.Errorf("e8: cannot locate source directory")
	}
	// internal/experiments/e8_usability.go → repo root is three up.
	return filepath.Dir(filepath.Dir(filepath.Dir(thisFile))), nil
}

// countInstrumentation counts non-blank, non-comment-only lines between
// BEGIN-INSTRUMENTATION and END-INSTRUMENTATION markers.
func countInstrumentation(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("e8: %w", err)
	}
	count := 0
	inside := false
	for _, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.Contains(trimmed, "BEGIN-INSTRUMENTATION"):
			inside = true
		case strings.Contains(trimmed, "END-INSTRUMENTATION"):
			inside = false
		case inside && trimmed != "" && !strings.HasPrefix(trimmed, "//"):
			count++
		}
	}
	if count == 0 {
		return 0, fmt.Errorf("e8: no instrumentation markers in %s", path)
	}
	return count, nil
}
