package experiments

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/iostrat"
	"repro/internal/meta"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/storage/chunk"
	"repro/internal/topology"
)

// r1Rates are the node-failure rates swept by the runtime restore side.
var r1Rates = []float64{0, 0.25}

// r1ClusterMeta mirrors F1's per-node configuration: one 512-byte
// variable per client, so block counts are easy to reason about.
const r1ClusterMeta = `<simulation name="r1">
  <architecture><dedicated cores="1"/><buffer size="1048576"/></architecture>
  <data>
    <parameter name="n" value="64"/>
    <layout name="row" type="float64" dimensions="n"/>
    <variable name="theta" layout="row"/>
  </data>
</simulation>`

// RunR1 exercises the object read path end to end (ROADMAP "object
// read path" item): a runtime cluster writes N iterations of objects
// plus manifests — optionally losing nodes mid-run — then
// cluster.Restore reads everything back and the recovered state is
// compared block-for-block against what the failure semantics say
// survived. The DES side prices the restart read itself (tree-striped
// object reads vs per-node files, the inverse of the write path) and
// contrasts it with the §V.C skip policy, which avoids checkpoint
// reads by dropping data that must then be recomputed.
func RunR1(opts Options) (Report, error) {
	opts = opts.withDefaults()
	rep := Report{ID: "R1", Title: "checkpoint/restart from stored objects"}

	// Runtime side: write with optional failures, restore, compare.
	const (
		rtNodes   = 8
		rtClients = 2
		rtIters   = 4
		rtFailAt  = rtIters / 2
	)
	rtTable := stats.NewTable(
		fmt.Sprintf("restore-from-objects, %d nodes × %d clients, %d iterations, %s store",
			rtNodes, rtClients, rtIters, r1StoreName(opts)),
		"fail_rate", "nodes_failed", "blocks_lost", "manifests", "blocks_recovered",
		"recovered_frac", "latest_ckpt", "restore_ms")

	type rtRun struct {
		st        cluster.Stats
		recovered int
		produced  int
		frac      float64
		latest    int
		latestOK  bool
	}
	var rtRuns []rtRun
	for i, rate := range r1Rates {
		sched := cluster.NewFailureSchedule()
		for k := 0; k < int(rate*rtNodes+0.5); k++ {
			// Spread deaths over the tree, keeping node 0 (a root) alive.
			sched.Add(1+(k*3)%(rtNodes-1), rtFailAt)
		}
		store, err := r1Store(opts, i)
		if err != nil {
			return Report{}, err
		}
		st, err := runR1Cluster(rtNodes, rtClients, rtIters, sched, store)
		if err != nil {
			return Report{}, err
		}
		t0 := time.Now()
		restored, err := cluster.Restore(store, "r1")
		if err != nil {
			return Report{}, err
		}
		restoreWall := time.Since(t0)
		if len(restored.Problems) > 0 {
			return Report{}, fmt.Errorf("r1: restore problems: %v", restored.Problems)
		}
		run := rtRun{
			st:        st,
			recovered: restored.TotalBlocks(),
			produced:  rtNodes * rtClients * rtIters,
		}
		run.frac = float64(run.recovered) / float64(run.produced)
		run.latest, run.latestOK = restored.LatestComplete(rtNodes)
		if !run.latestOK {
			run.latest = -1
		}
		rtRuns = append(rtRuns, run)
		rtTable.AddRow(rate, st.NodesFailed, st.BlocksLost, restored.Manifests,
			run.recovered, run.frac, run.latest,
			float64(restoreWall.Microseconds())/1e3)
	}

	// DES side: the cost of reading a checkpoint back, against the
	// cost the skip policy hides (recomputing what it dropped).
	cores := opts.maxScale()
	plat := opts.platformFor(cores)
	fanout := opts.Fanout
	if fanout < 2 {
		fanout = 4
	}
	desTable := stats.NewTable(
		fmt.Sprintf("DES restart-read model, %d nodes, fanout %d, backend %s",
			plat.Nodes, fanout, orDefault(opts.Backend, string(storage.KindPFS))),
		"policy", "restart_read_s", "restart_total_s", "read_GB", "loss_frac", "recompute_equiv_s")

	treeCfg := opts.strategyConfig(cores)
	treeCfg.Fanout = fanout
	// The DES model here prices the *layout* of the restart read; its
	// checks compare against raw checkpoint bytes, so the compression
	// pipeline stays off regardless of -codec (C1 prices that trade).
	treeCfg.Codec = ""
	treeRes, err := iostrat.RestartRead(treeCfg)
	if err != nil {
		return Report{}, err
	}
	desTable.AddRow("restart tree-striped", treeRes.ReadTime, treeRes.TotalTime,
		stats.GB(treeRes.BytesRead), 0.0, 0.0)

	flatCfg := opts.strategyConfig(cores)
	flatCfg.Fanout = 0
	flatCfg.Codec = ""
	flatRes, err := iostrat.RestartRead(flatCfg)
	if err != nil {
		return Report{}, err
	}
	desTable.AddRow("restart per-node files", flatRes.ReadTime, flatRes.TotalTime,
		stats.GB(flatRes.BytesRead), 0.0, 0.0)

	// §V.C skip baseline: a segment too small makes the producer drop
	// iterations; nothing to read back, but the dropped share must be
	// recomputed to reach the same state a checkpoint read restores.
	skipCfg := opts.strategyConfig(cores)
	skipCfg.Fanout = fanout
	skipCfg.ShmCapacity = 0.75 * iostrat.CM1Workload(opts.Iterations).NodeBytes(plat.CoresPerNode)
	skipRes, err := iostrat.Run(iostrat.Damaris, skipCfg)
	if err != nil {
		return Report{}, err
	}
	skipLoss := skipRes.DataLossFraction()
	recompute := skipLoss * float64(opts.Iterations) * skipCfg.Workload.ComputeTime
	desTable.AddRow("skip-policy shm=0.75x", 0.0, 0.0, 0.0, skipLoss, recompute)

	rep.Tables = []*stats.Table{rtTable, desTable}

	noFail, topFail := rtRuns[0], rtRuns[len(rtRuns)-1]
	exactNonLost := 0.0
	if want := topFail.produced - topFail.st.BlocksLost; want > 0 {
		exactNonLost = float64(topFail.recovered) / float64(want)
	}
	latestOK := 0.0
	if noFail.latestOK && noFail.latest == rtIters-1 {
		latestOK = 1
	}
	wantBytes := iostrat.CM1Workload(opts.Iterations).NodeBytes(plat.CoresPerNode) *
		float64(plat.Nodes)
	rep.Checks = []Check{
		{
			Name:     "restore recovers everything without failures",
			Paper:    "checkpoint/restart is lossless",
			Measured: noFail.frac, Unit: "", Lo: 1, Hi: 1,
		},
		{
			Name:     "latest checkpoint is the final iteration",
			Paper:    "no-failure run restarts at the end",
			Measured: latestOK, Unit: "", Lo: 1, Hi: 1,
		},
		{
			Name:     "restore recovers exactly the non-lost blocks",
			Paper:    "failures lose only the dead nodes' output",
			Measured: exactNonLost, Unit: "", Lo: 1, Hi: 1,
		},
		{
			Name:     "failure run actually lost blocks",
			Paper:    "the sweep exercises loss",
			Measured: float64(topFail.st.BlocksLost), Unit: "blocks", Lo: 1,
		},
		{
			Name:     "DES restart reads the whole checkpoint",
			Paper:    "read path mirrors the write path",
			Measured: treeRes.BytesRead / wantBytes, Unit: "", Lo: 0.999, Hi: 1.001,
		},
		{
			Name:     "DES restart read completes",
			Paper:    "few large striped reads",
			Measured: treeRes.ReadTime, Unit: "s", Lo: 1e-9,
		},
	}
	return rep, nil
}

// r1StoreName names the runtime store kind for the table title.
func r1StoreName(opts Options) string {
	name := "memory"
	if storage.Kind(opts.Backend) == storage.KindSDF {
		name = "sdf"
	}
	if opts.Codec != "" {
		name += "+" + opts.Codec
	}
	if opts.Dedup {
		name += "+dedup"
	}
	return name
}

func orDefault(s, d string) string {
	if s == "" {
		return d
	}
	return s
}

// r1Store builds the object store for one runtime run. Memory by
// default; with -backend sdf the objects land on disk under
// BackendDir/fail<i>, ready for `damaris-bench -restart-from`. With
// -codec set the store runs the compression pipeline, making this the
// compressed-store restart round trip: objects are framed on the way
// in and must restore byte-for-byte on the way out.
func r1Store(opts Options, run int) (storage.Backend, error) {
	var be storage.Backend
	if storage.Kind(opts.Backend) == storage.KindSDF {
		dir := opts.BackendDir
		if dir == "" {
			dir = "out/r1-objects"
		}
		sdfBe, err := storage.NewSDF(nil, 4, 1e9, filepath.Join(dir, fmt.Sprintf("fail%d", run)))
		if err != nil {
			return nil, err
		}
		be = sdfBe
	} else {
		be = storage.NewMemory(nil, 4, 1e9)
	}
	if opts.Codec != "" {
		if err := storage.ValidateCodecName(opts.Codec); err != nil {
			return nil, err
		}
		be = storage.NewCompressing(be, storage.CompressionOptions{Codec: opts.Codec})
	}
	if opts.Dedup {
		be = chunk.New(be, chunk.Options{})
	}
	return be, nil
}

// runR1Cluster drives a real cluster through the workload and returns
// its stats; the objects and manifests stay behind in store for the
// restore pass.
func runR1Cluster(nodes, clients, iters int, sched *cluster.FailureSchedule, store storage.ObjectStore) (cluster.Stats, error) {
	cfg, err := meta.ParseString(r1ClusterMeta)
	if err != nil {
		return cluster.Stats{}, err
	}
	c, err := cluster.New(cluster.Config{
		Platform: topology.Platform{Name: "r1", Nodes: nodes, CoresPerNode: clients + 1},
		Meta:     cfg,
		Fanout:   2,
		Store:    store,
		Failures: sched,
	})
	if err != nil {
		return cluster.Stats{}, err
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	data := make([]byte, 64*8)
	for i := range data {
		data[i] = byte(i)
	}
	for n := 0; n < nodes; n++ {
		for s := 0; s < clients; s++ {
			wg.Add(1)
			go func(n, s int) {
				defer wg.Done()
				cl := c.Client(n, s)
				for it := 0; it < iters; it++ {
					if err := cl.Write("theta", it, data); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("node %d src %d it %d: %w", n, s, it, err)
						}
						mu.Unlock()
						return
					}
					cl.EndIteration(it)
				}
			}(n, s)
		}
	}
	wg.Wait()
	c.WaitIteration(iters - 1)
	if err := c.Shutdown(); err != nil {
		return cluster.Stats{}, err
	}
	if firstErr != nil {
		return cluster.Stats{}, firstErr
	}
	return c.Stats(), nil
}
