package experiments

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/cluster"
	"repro/internal/iostrat"
	"repro/internal/meta"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/topology"
)

// RunE9 measures multi-tenancy: N simulations sharing one machine, one
// token broker, and one object store through cluster.Service. The paper
// dedicates cores *within* one job; E9 asks what happens when several
// such jobs coexist — the dedicated cores become a cluster-wide
// resource that admission has to ration. Part one sweeps tenancy ×
// arrival rate × admission policy on the DES face (iostrat.RunService:
// thousands of queued jobs in virtual time) and carries the headline
// check: under oversubscription, deadline-aware admission (EDF, which
// degrades to shortest-job-first on a bimodal mix) beats FIFO on the
// p99 per-iteration write latency. Part two runs two real tenant
// clusters concurrently on one shared sharded broker and checks the
// accounting: zero cross-tenant token leaks, per-tenant stats summing
// to the service rollup and to the broker's own grant total.
//
// opts.Tenants, opts.ArrivalRate and opts.Admission (the -tenants,
// -arrival and -admission bench flags) pin the respective sweep axes;
// a pinned Admission skips the cross-policy checks, leaving the
// queue-depth one.
func RunE9(opts Options) (Report, error) {
	opts = opts.withDefaults()
	rep := Report{ID: "E9", Title: "multi-tenant admission & shared-broker accounting"}
	if err := runE9DES(opts, &rep); err != nil {
		return Report{}, err
	}
	if err := runE9Runtime(opts, &rep); err != nil {
		return Report{}, err
	}
	return rep, nil
}

// e9ServiceConfig builds one DES sweep point. The workload is the CM1
// shape with a shorter compute phase, so a quick run still pushes many
// jobs through the machine; DeadlineSlack 3 prices deadlines loosely
// enough that EDF can actually meet the ones it prioritizes.
func e9ServiceConfig(opts Options, plat topology.Platform,
	jobs int, rate float64, pol cluster.AdmissionPolicy) iostrat.ServiceConfig {
	wl := iostrat.CM1Workload(opts.Iterations)
	wl.ComputeTime = 60
	return iostrat.ServiceConfig{
		Platform:      plat,
		Seed:          opts.Seed,
		Jobs:          jobs,
		ArrivalRate:   rate,
		Admission:     pol,
		DeadlineSlack: 3,
		Workload:      wl,
	}
}

// runE9DES is the DES face: the tenancy × arrival × admission sweep.
func runE9DES(opts Options, rep *Report) error {
	plat := opts.platformFor(opts.maxScale())
	tenants := opts.Tenants
	if tenants <= 0 {
		tenants = 24
	}
	tenancies := []int{tenants / 2, tenants}
	if tenancies[0] < 1 {
		tenancies = tenancies[1:]
	}
	// Light load barely queues; heavy load oversubscribes the machine
	// several times over — the regime where admission ordering matters.
	rates := []float64{1.0 / 60, 1.0 / 20}
	if opts.ArrivalRate > 0 {
		rates = []float64{opts.ArrivalRate}
	}
	policies := []cluster.AdmissionPolicy{
		cluster.AdmitFIFO, cluster.AdmitDeadline, cluster.AdmitReject, cluster.AdmitDegrade,
	}
	if opts.Admission != "" {
		policies = []cluster.AdmissionPolicy{opts.Admission}
	}

	table := stats.NewTable(
		fmt.Sprintf("multi-tenant admission sweep, %d nodes (DES)", plat.Nodes),
		"tenants", "arrival_s", "admission", "p99_write_lat_s", "mean_write_lat_s",
		"admitted", "rejected", "degraded", "missed_deadlines", "max_queued")

	type key struct {
		jobs int
		rate float64
		pol  cluster.AdmissionPolicy
	}
	results := map[key]iostrat.ServiceResult{}
	for _, jobs := range tenancies {
		for _, rate := range rates {
			for _, pol := range policies {
				res, err := iostrat.RunService(e9ServiceConfig(opts, plat, jobs, rate, pol))
				if err != nil {
					return err
				}
				results[key{jobs, rate, pol}] = res
				table.AddRow(jobs, 1/rate, string(pol),
					res.P99WriteLatency(), res.MeanWriteLatency(),
					res.Admitted, res.Rejected, res.Degraded,
					res.DeadlinesMissed, res.MaxQueued)
			}
		}
	}
	rep.Tables = append(rep.Tables, table)

	// Checks read the most oversubscribed point: full tenancy, heaviest
	// arrival rate.
	jobs, rate := tenancies[len(tenancies)-1], rates[len(rates)-1]
	if opts.Admission != "" {
		pinned := results[key{jobs, rate, opts.Admission}]
		rep.Checks = append(rep.Checks, Check{
			Name:     "tenants queued under oversubscription",
			Paper:    "shared dedicated cores are a contended resource",
			Measured: float64(pinned.MaxQueued + pinned.Rejected), Unit: "jobs", Lo: 1, Hi: 0,
		})
		return nil
	}
	fifo := results[key{jobs, rate, cluster.AdmitFIFO}]
	edf := results[key{jobs, rate, cluster.AdmitDeadline}]
	rej := results[key{jobs, rate, cluster.AdmitReject}]
	deg := results[key{jobs, rate, cluster.AdmitDegrade}]
	if edf.P99WriteLatency() <= 0 {
		return fmt.Errorf("e9: deadline run has no positive write-latency tail — not oversubscribed")
	}
	rep.Checks = append(rep.Checks,
		Check{
			Name:     "DES deadline-admission p99 gain over FIFO",
			Paper:    "EDF flattens the write-latency tail (p99 ratio > 1)",
			Measured: fifo.P99WriteLatency() / edf.P99WriteLatency(),
			Unit:     "x", Lo: 1.02, Hi: 0,
		},
		Check{
			Name:     "DES deadline-admission mean gain over FIFO",
			Paper:    "short jobs stop convoying behind wide ones",
			Measured: fifo.MeanWriteLatency() / edf.MeanWriteLatency(),
			Unit:     "x", Lo: 1.15, Hi: 0,
		},
		Check{
			Name:     "deadline admission misses no more deadlines",
			Paper:    "EDF meets the deadlines it prioritizes (FIFO − EDF misses)",
			Measured: float64(fifo.DeadlinesMissed - edf.DeadlinesMissed),
			Unit:     "jobs", Lo: 0, Hi: 0,
		},
		Check{
			Name:     "FIFO queue depth under oversubscription",
			Paper:    "arrivals outrun the machine",
			Measured: float64(fifo.MaxQueued), Unit: "jobs", Lo: 1, Hi: 0,
		},
		Check{
			Name:     "reject policy sheds load",
			Paper:    "refusing what does not fit keeps the rest on time",
			Measured: float64(rej.Rejected), Unit: "jobs", Lo: 1, Hi: 0,
		},
		Check{
			Name:     "degrade policy shrinks jobs",
			Paper:    "the skip policy applied to admission: run smaller, not later",
			Measured: float64(deg.Degraded), Unit: "jobs", Lo: 1, Hi: 0,
		},
	)
	return nil
}

// e9Meta is the per-tenant runtime configuration.
const e9Meta = `<simulation name="e9">
  <architecture><dedicated cores="1"/><buffer size="1048576"/></architecture>
  <data>
    <parameter name="n" value="64"/>
    <layout name="row" type="float64" dimensions="n"/>
    <variable name="theta" layout="row"/>
  </data>
</simulation>`

// runE9Runtime is the runtime face: two real tenant clusters on one
// shared sharded broker, checking the token accounting closes.
func runE9Runtime(opts Options, rep *Report) error {
	const (
		rtNodes   = 4
		rtClients = 2
		rtRoots   = 2
		rtIters   = 3
	)
	broker := storage.NewShardedBroker(storage.BrokerOptions{
		Policy:  storage.PolicyFairShare,
		Targets: 2, // both tenants' root windows collide on the same targets
	}, 2)
	store := storage.NewMemory(nil, rtRoots, 1e9)
	svc, err := cluster.NewService(cluster.ClusterConfig{
		Platform: topology.Platform{Name: "e9", Nodes: rtNodes, CoresPerNode: rtClients + 1},
		Roots:    rtRoots,
		Store:    store,
		Broker:   broker,
	}, cluster.ServiceOptions{Admission: cluster.AdmitDeadline})
	if err != nil {
		return err
	}

	names := []string{"alpha", "beta"}
	tenants := make([]*cluster.Tenant, len(names))
	for i, name := range names {
		mc, err := meta.ParseString(e9Meta)
		if err != nil {
			return err
		}
		tn, err := svc.Submit(cluster.RunSpec{
			Meta:    mc,
			JobName: name,
			Quota:   cluster.Quota{Nodes: rtNodes / len(names)},
			Weight:  float64(i + 1),
		})
		if err != nil {
			return err
		}
		tenants[i] = tn
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(tenants))
	for _, tn := range tenants {
		wg.Add(1)
		go func(tn *cluster.Tenant) {
			defer wg.Done()
			if err := driveE9Tenant(tn, rtIters); err != nil {
				errs <- err
				return
			}
			if err := tn.Finish(); err != nil {
				errs <- fmt.Errorf("tenant %d finish: %w", tn.ID(), err)
			}
		}(tn)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
	}

	ss := svc.Stats()
	table := stats.NewTable(
		fmt.Sprintf("runtime tenants on one sharded broker, %d nodes × %d clients, %d iterations",
			rtNodes, rtClients, rtIters),
		"tenant", "nodes", "token_grants", "objects_written", "token_wait_s")
	sumGrants := 0
	for i, tn := range tenants {
		st := ss.PerTenant[tn.ID()]
		sumGrants += st.TokenGrants
		table.AddRow(names[i], tn.Nodes(), st.TokenGrants, st.ObjectsWritten, st.TokenWaitTime)
	}
	rep.Tables = append(rep.Tables, table)

	grantRatio := 0.0
	if bs := broker.Stats(); bs.Grants > 0 {
		grantRatio = float64(ss.Total.TokenGrants) / float64(bs.Grants)
	}
	rep.Checks = append(rep.Checks,
		Check{
			Name:     "runtime tokens outstanding after teardown",
			Paper:    "every cross-tenant grant is reclaimed",
			Measured: float64(broker.Outstanding()), Unit: "tokens", Lo: -0.5, Hi: 0.5,
		},
		Check{
			Name:     "per-tenant grants account the broker total",
			Paper:    "holder-tagged stats carve the shared broker exactly",
			Measured: grantRatio, Unit: "x", Lo: 0.999, Hi: 1.001,
		},
		Check{
			Name:     "tenant namespaces in the shared store",
			Paper:    "JobName prefixes keep tenants' objects disjoint",
			Measured: float64(e9Namespaces(store)), Unit: "prefixes", Lo: 2, Hi: 2.5,
		},
	)
	if ss.Total.TokenGrants != sumGrants {
		return fmt.Errorf("e9: Total.TokenGrants %d != per-tenant sum %d",
			ss.Total.TokenGrants, sumGrants)
	}
	return nil
}

// driveE9Tenant pushes rtIters iterations through every client of a
// tenant's cluster.
func driveE9Tenant(tn *cluster.Tenant, iters int) error {
	c := tn.Cluster()
	if c == nil {
		return fmt.Errorf("tenant %d has no cluster (state %s)", tn.ID(), tn.State())
	}
	data := make([]byte, 64*8)
	var wg sync.WaitGroup
	errs := make(chan error, c.Nodes()*c.ClientsPerNode())
	for n := 0; n < c.Nodes(); n++ {
		for s := 0; s < c.ClientsPerNode(); s++ {
			wg.Add(1)
			go func(n, s int) {
				defer wg.Done()
				cl := c.Client(n, s)
				for it := 0; it < iters; it++ {
					if err := cl.Write("theta", it, data); err != nil {
						errs <- fmt.Errorf("tenant %d node %d src %d it %d: %w",
							tn.ID(), n, s, it, err)
						return
					}
					cl.EndIteration(it)
				}
			}(n, s)
		}
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
	}
	c.WaitIteration(iters - 1)
	return nil
}

// e9Namespaces counts distinct JobName prefixes in the shared store.
func e9Namespaces(store storage.ObjectStore) int {
	reader, ok := store.(storage.ObjectReader)
	if !ok {
		return 0
	}
	names, err := reader.List("")
	if err != nil {
		return 0
	}
	seen := map[string]bool{}
	for _, n := range names {
		if i := strings.IndexByte(n, '-'); i > 0 {
			seen[n[:i]] = true
		}
	}
	return len(seen)
}
