package experiments

import (
	"fmt"

	"repro/internal/iostrat"
	"repro/internal/stats"
)

// RunA2 is the aggregation-granularity ablation behind the design choice
// of §IV.B/§IV.C: Damaris groups the output of a whole node into one big
// file. Fragmenting the same volume into more, smaller files per
// iteration pays the per-file cost repeatedly and degrades throughput —
// toward the file-per-process regime.
func RunA2(opts Options) (Report, error) {
	opts = opts.withDefaults()
	rep := Report{ID: "A2", Title: "ablation: aggregation granularity (files per node per iteration)"}
	cores := opts.maxScale()
	plat := opts.platformFor(cores)
	table := stats.NewTable(
		fmt.Sprintf("Damaris throughput vs output fragmentation at %d cores", cores),
		"files_per_iter", "file_MB", "throughput_GB_s")

	granularities := []int{1, 2, 4, plat.CoresPerNode - 1}
	nodeBytes := iostrat.CM1Workload(1).NodeBytes(plat.CoresPerNode)
	var first, last float64
	for i, g := range granularities {
		cfg := iostrat.Config{
			Platform:     plat,
			Workload:     iostrat.CM1Workload(opts.Iterations),
			Seed:         opts.Seed + uint64(cores),
			FilesPerIter: g,
		}
		r, err := iostrat.Run(iostrat.Damaris, cfg)
		if err != nil {
			return Report{}, err
		}
		tp := r.Throughput()
		if i == 0 {
			first = tp
		}
		last = tp
		table.AddRow(g, nodeBytes/float64(g)/1e6, stats.GB(tp))
	}
	rep.Tables = []*stats.Table{table}
	rep.Checks = []Check{
		{
			Name:     "aggregated (1 file) vs fragmented (per-core files)",
			Paper:    "group output into bigger files (§IV.B)",
			Measured: first / last, Unit: "x", Lo: 1.2,
		},
	}
	return rep, nil
}
