// Package des implements a deterministic process-oriented discrete-event
// simulation engine, the substrate on which the large-scale experiments of
// the paper (up to 9216 cores on a Kraken-like machine) are replayed in
// virtual time.
//
// Model: an Engine owns a virtual clock and an event heap. Processes are
// goroutines that run one at a time — the engine wakes exactly one process
// and blocks until that process either yields (Wait, Acquire, Await, ...)
// or terminates, so execution is sequential and, together with (time, seq)
// event ordering, fully deterministic regardless of the Go scheduler.
//
// Callback events (Engine.At) run inline in the engine and may wake
// processes by completing Futures or releasing Resources.
package des

import (
	"container/heap"
	"fmt"
)

// event is a scheduled occurrence: either resume a process or invoke fn.
type event struct {
	time float64
	seq  uint64 // tie-breaker: FIFO among equal-time events
	proc *Proc  // non-nil: wake this process
	fn   func() // non-nil: run this callback in engine context
	// canceled events stay in the heap but are skipped when popped.
	canceled bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation engine. Create one with NewEngine,
// spawn processes, then call Run. An Engine must not be used from multiple
// OS-level contexts at once; all interaction happens either before Run or
// from within processes/callbacks.
type Engine struct {
	now    float64
	seq    uint64
	events eventHeap
	ctl    chan struct{} // process → engine: "I yielded or finished"
	nprocs int           // live processes (diagnostics)
}

// NewEngine returns an engine with the clock at 0.
func NewEngine() *Engine {
	return &Engine{ctl: make(chan struct{})}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// schedule pushes an event at absolute time t.
func (e *Engine) schedule(ev *event) *event {
	if ev.time < e.now {
		panic(fmt.Sprintf("des: scheduling into the past: t=%v now=%v", ev.time, e.now))
	}
	e.seq++
	ev.seq = e.seq
	heap.Push(&e.events, ev)
	return ev
}

// Timer identifies a cancelable callback event scheduled with At.
type Timer struct{ ev *event }

// Cancel prevents the callback from firing. Canceling an already-fired or
// already-canceled timer is a no-op.
func (t *Timer) Cancel() {
	if t != nil && t.ev != nil {
		t.ev.canceled = true
	}
}

// At schedules fn to run at absolute virtual time t (>= Now). fn runs in
// engine context: it must not block, but may complete Futures, release
// Resources and schedule further events.
func (e *Engine) At(t float64, fn func()) *Timer {
	return &Timer{ev: e.schedule(&event{time: t, fn: fn})}
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d float64, fn func()) *Timer {
	return e.At(e.now+d, fn)
}

// Proc is a simulation process. All Proc methods must be called from the
// goroutine running the process body.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
}

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.eng.now }

// Spawn creates a process executing fn, starting at the current virtual
// time (or, during Run, at the moment Spawn is called).
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnAt(e.now, name, fn)
}

// SpawnAt creates a process that starts executing at absolute time t.
func (e *Engine) SpawnAt(t float64, name string, fn func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan struct{})}
	e.nprocs++
	go func() {
		<-p.resume // wait for the engine to start us
		fn(p)
		e.nprocs--
		e.ctl <- struct{}{} // termination counts as a yield
	}()
	e.schedule(&event{time: t, proc: p})
	return p
}

// yield hands control back to the engine and blocks until resumed.
// The caller must already have arranged for a future resume (a scheduled
// event, a Future completion, or a Resource grant), otherwise the process
// deadlocks — Run will report it.
func (p *Proc) yield() {
	p.eng.ctl <- struct{}{}
	<-p.resume
}

// Wait advances the process by d virtual seconds (d >= 0).
func (p *Proc) Wait(d float64) {
	if d < 0 {
		panic("des: negative Wait")
	}
	p.eng.schedule(&event{time: p.eng.now + d, proc: p})
	p.yield()
}

// WaitUntil advances the process to absolute time t (>= Now).
func (p *Proc) WaitUntil(t float64) {
	if t < p.eng.now {
		panic("des: WaitUntil into the past")
	}
	p.eng.schedule(&event{time: t, proc: p})
	p.yield()
}

// Run executes events until the heap is empty. It returns the final clock
// value. Run panics if processes remain blocked with no pending events
// (a modeling deadlock).
func (e *Engine) Run() float64 {
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.canceled {
			continue
		}
		e.now = ev.time
		if ev.fn != nil {
			ev.fn()
			continue
		}
		ev.proc.resume <- struct{}{}
		<-e.ctl
	}
	if e.nprocs > 0 {
		panic(fmt.Sprintf("des: deadlock: %d process(es) blocked with no pending events", e.nprocs))
	}
	return e.now
}

// Future is a one-shot completion signal that processes can Await.
type Future struct {
	eng     *Engine
	done    bool
	waiters []*Proc
}

// NewFuture creates an incomplete future.
func (e *Engine) NewFuture() *Future { return &Future{eng: e} }

// Done reports whether the future has completed.
func (f *Future) Done() bool { return f.done }

// Complete marks the future done and wakes all waiters at the current
// time. Completing twice panics: it indicates a modeling bug.
func (f *Future) Complete() {
	if f.done {
		panic("des: Future completed twice")
	}
	f.done = true
	for _, w := range f.waiters {
		f.eng.schedule(&event{time: f.eng.now, proc: w})
	}
	f.waiters = nil
}

// Await blocks the process until the future completes. Returns immediately
// if it already has.
func (p *Proc) Await(f *Future) {
	if f.done {
		return
	}
	f.waiters = append(f.waiters, p)
	p.yield()
}

// Resource is a FIFO counting resource (capacity units). Processes Acquire
// and Release units; waiters are served in arrival order. It models e.g. a
// metadata server (capacity 1) or a bounded set of I/O tokens.
type Resource struct {
	eng      *Engine
	capacity int
	inUse    int
	waiters  []resWaiter
	// Busy accounting for utilization reports.
	busySince float64
	busyTotal float64
}

type resWaiter struct {
	proc *Proc
	n    int
}

// NewResource creates a resource with the given capacity (> 0).
func (e *Engine) NewResource(capacity int) *Resource {
	if capacity <= 0 {
		panic("des: resource capacity must be positive")
	}
	return &Resource{eng: e, capacity: capacity}
}

// Available returns the number of free units.
func (r *Resource) Available() int { return r.capacity - r.inUse }

// QueueLen returns the number of waiting processes.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Acquire blocks until n units are available and takes them. FIFO: a
// request never overtakes an earlier one even if fewer units would fit.
func (p *Proc) Acquire(r *Resource, n int) {
	if n <= 0 || n > r.capacity {
		panic(fmt.Sprintf("des: Acquire(%d) on resource of capacity %d", n, r.capacity))
	}
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.take(n)
		return
	}
	r.waiters = append(r.waiters, resWaiter{proc: p, n: n})
	p.yield()
}

func (r *Resource) take(n int) {
	if r.inUse == 0 {
		r.busySince = r.eng.now
	}
	r.inUse += n
}

// Release returns n units and grants queued requests in FIFO order.
// It may be called from a process or an engine callback.
func (r *Resource) Release(n int) {
	if n <= 0 || n > r.inUse {
		panic(fmt.Sprintf("des: Release(%d) with %d in use", n, r.inUse))
	}
	r.inUse -= n
	if r.inUse == 0 {
		r.busyTotal += r.eng.now - r.busySince
	}
	for len(r.waiters) > 0 && r.inUse+r.waiters[0].n <= r.capacity {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.take(w.n)
		r.eng.schedule(&event{time: r.eng.now, proc: w.proc})
	}
}

// BusyTime returns the total virtual time during which at least one unit
// was in use. If the resource is currently busy the open interval is
// included.
func (r *Resource) BusyTime() float64 {
	t := r.busyTotal
	if r.inUse > 0 {
		t += r.eng.now - r.busySince
	}
	return t
}

// Barrier is a reusable synchronization barrier for a fixed number of
// parties, used by the collective-I/O model's rounds.
type Barrier struct {
	eng     *Engine
	parties int
	arrived int
	gen     int
	waiters []*Proc
}

// NewBarrier creates a barrier for the given number of parties (> 0).
func (e *Engine) NewBarrier(parties int) *Barrier {
	if parties <= 0 {
		panic("des: barrier parties must be positive")
	}
	return &Barrier{eng: e, parties: parties}
}

// Arrive blocks until all parties have arrived, then releases everyone and
// resets for the next generation.
func (p *Proc) Arrive(b *Barrier) {
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		b.gen++
		for _, w := range b.waiters {
			b.eng.schedule(&event{time: b.eng.now, proc: w})
		}
		b.waiters = nil
		return
	}
	b.waiters = append(b.waiters, p)
	p.yield()
}
