// Package des implements a deterministic process-oriented discrete-event
// simulation engine, the substrate on which the large-scale experiments of
// the paper (up to 9216 cores on a Kraken-like machine) are replayed in
// virtual time.
//
// Model: an Engine owns a virtual clock and an event heap. Processes are
// goroutines that run one at a time — the engine wakes exactly one process
// and blocks until that process either yields (Wait, Acquire, Await, ...)
// or terminates, so execution is sequential and, together with (time, seq)
// event ordering, fully deterministic regardless of the Go scheduler.
//
// Callback events (Engine.At) run inline in the engine and may wake
// processes by completing Futures or releasing Resources.
package des

import (
	"fmt"
)

// event is a scheduled occurrence: either resume a process or invoke
// fn. Events live in the engine's indexed heap; index tracks the heap
// position so Cancel and Reschedule are O(log n) structural updates
// instead of leaving tombstones for Run to skip. Fired or canceled
// events are recycled through the engine's freelist — gen is bumped on
// every recycle so a stale Timer handle can never touch an event that
// now belongs to someone else.
type event struct {
	time  float64
	seq   uint64 // tie-breaker: FIFO among equal-time events
	proc  *Proc  // non-nil: wake this process
	fn    func() // non-nil: run this callback in engine context
	index int    // heap position; -1 once popped, removed or recycled
	gen   uint32 // incarnation counter validated by Timer handles
}

// Engine is a discrete-event simulation engine. Create one with NewEngine,
// spawn processes, then call Run. An Engine must not be used from multiple
// OS-level contexts at once; all interaction happens either before Run or
// from within processes/callbacks.
type Engine struct {
	now    float64
	seq    uint64
	events []*event      // indexed binary min-heap on (time, seq)
	free   []*event      // recycled event structs (see event.gen)
	ctl    chan struct{} // process → engine: "I yielded or finished"
	nprocs int           // live processes (diagnostics)
}

// The indexed heap. Identical ordering to the pre-index implementation
// — (time, seq) min-heap, so equal-time events fire in schedule order —
// but every sift updates event.index, which is what makes removal and
// retiming of an arbitrary pending event logarithmic.

func (e *Engine) heapLess(a, b *event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

func (e *Engine) heapSwap(i, j int) {
	h := e.events
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (e *Engine) heapUp(i int) {
	h := e.events
	for i > 0 {
		parent := (i - 1) / 2
		if !e.heapLess(h[i], h[parent]) {
			break
		}
		e.heapSwap(i, parent)
		i = parent
	}
}

func (e *Engine) heapDown(i int) {
	h := e.events
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		least := l
		if r := l + 1; r < n && e.heapLess(h[r], h[l]) {
			least = r
		}
		if !e.heapLess(h[least], h[i]) {
			return
		}
		e.heapSwap(i, least)
		i = least
	}
}

func (e *Engine) heapPush(ev *event) {
	ev.index = len(e.events)
	e.events = append(e.events, ev)
	e.heapUp(ev.index)
}

func (e *Engine) heapPop() *event {
	h := e.events
	ev := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[0].index = 0
	h[last] = nil
	e.events = h[:last]
	ev.index = -1
	if last > 0 {
		e.heapDown(0)
	}
	return ev
}

// heapRemove unlinks a pending event, reporting false when the event
// is no longer in the heap (already fired or removed).
func (e *Engine) heapRemove(ev *event) bool {
	i := ev.index
	if i < 0 || i >= len(e.events) || e.events[i] != ev {
		return false
	}
	last := len(e.events) - 1
	e.heapSwap(i, last)
	e.events[last] = nil
	e.events = e.events[:last]
	ev.index = -1
	if i < last {
		e.heapDown(i)
		e.heapUp(i)
	}
	return true
}

// heapFix restores heap order after ev.time changed in place.
func (e *Engine) heapFix(ev *event) {
	e.heapDown(ev.index)
	e.heapUp(ev.index)
}

// newEvent takes an event struct off the freelist (or allocates one).
func (e *Engine) newEvent() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &event{}
}

// recycle retires a fired or canceled event to the freelist. The gen
// bump invalidates every Timer handle still pointing at it.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.proc = nil
	ev.fn = nil
	ev.index = -1
	e.free = append(e.free, ev)
}

// NewEngine returns an engine with the clock at 0.
func NewEngine() *Engine {
	return &Engine{ctl: make(chan struct{})}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// schedule books an event at absolute time t, resuming proc or running
// fn (exactly one is non-nil).
func (e *Engine) schedule(t float64, proc *Proc, fn func()) *event {
	if t < e.now {
		panic(fmt.Sprintf("des: scheduling into the past: t=%v now=%v", t, e.now))
	}
	ev := e.newEvent()
	ev.time = t
	ev.proc = proc
	ev.fn = fn
	e.seq++
	ev.seq = e.seq
	e.heapPush(ev)
	return ev
}

// Timer identifies a cancelable, reschedulable callback event booked
// with At or After. The zero Timer and the nil Timer are inert: every
// method is a no-op reporting false.
type Timer struct {
	eng *Engine
	ev  *event
	gen uint32
}

// pending reports whether the timer's event is still the one it booked
// and still in the heap.
func (t *Timer) pending() bool {
	return t != nil && t.ev != nil && t.ev.gen == t.gen && t.ev.index >= 0
}

// Pending reports whether the callback is still scheduled (not fired,
// not canceled).
func (t *Timer) Pending() bool { return t.pending() }

// Cancel removes the callback from the event heap so it never fires,
// reporting whether it was still pending. Canceling an already-fired
// or already-canceled timer is a no-op returning false. The removal is
// structural (O(log n)) — a canceled event costs nothing at dispatch
// time and its memory is recycled immediately.
func (t *Timer) Cancel() bool {
	if !t.pending() {
		return false
	}
	e := t.eng
	ev := t.ev
	if !e.heapRemove(ev) {
		return false
	}
	e.recycle(ev)
	return true
}

// Reschedule moves a still-pending callback to absolute time at
// (>= Now) in place — an O(log n) heap fix, not a cancel-plus-At — and
// reports whether the timer was pending. A fired or canceled timer is
// left alone (false): re-arming it would resurrect an event whose
// owner has moved on.
func (t *Timer) Reschedule(at float64) bool {
	if !t.pending() {
		return false
	}
	e := t.eng
	if at < e.now {
		panic(fmt.Sprintf("des: rescheduling into the past: t=%v now=%v", at, e.now))
	}
	t.ev.time = at
	e.seq++
	t.ev.seq = e.seq // retimed event goes to the back of its new instant
	e.heapFix(t.ev)
	return true
}

// At schedules fn to run at absolute virtual time t (>= Now). fn runs in
// engine context: it must not block, but may complete Futures, release
// Resources and schedule further events.
func (e *Engine) At(t float64, fn func()) *Timer {
	ev := e.schedule(t, nil, fn)
	return &Timer{eng: e, ev: ev, gen: ev.gen}
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d float64, fn func()) *Timer {
	return e.At(e.now+d, fn)
}

// Proc is a simulation process. All Proc methods must be called from the
// goroutine running the process body.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
}

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.eng.now }

// Spawn creates a process executing fn, starting at the current virtual
// time (or, during Run, at the moment Spawn is called).
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnAt(e.now, name, fn)
}

// SpawnAt creates a process that starts executing at absolute time t.
func (e *Engine) SpawnAt(t float64, name string, fn func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan struct{})}
	e.nprocs++
	go func() {
		<-p.resume // wait for the engine to start us
		fn(p)
		e.nprocs--
		e.ctl <- struct{}{} // termination counts as a yield
	}()
	e.schedule(t, p, nil)
	return p
}

// yield hands control back to the engine and blocks until resumed.
// The caller must already have arranged for a future resume (a scheduled
// event, a Future completion, or a Resource grant), otherwise the process
// deadlocks — Run will report it.
func (p *Proc) yield() {
	p.eng.ctl <- struct{}{}
	<-p.resume
}

// Wait advances the process by d virtual seconds (d >= 0).
func (p *Proc) Wait(d float64) {
	if d < 0 {
		panic("des: negative Wait")
	}
	p.eng.schedule(p.eng.now+d, p, nil)
	p.yield()
}

// WaitUntil advances the process to absolute time t (>= Now).
func (p *Proc) WaitUntil(t float64) {
	if t < p.eng.now {
		panic("des: WaitUntil into the past")
	}
	p.eng.schedule(t, p, nil)
	p.yield()
}

// PendingEvents returns the number of scheduled events (diagnostics;
// canceled timers are removed structurally, so they never count).
func (e *Engine) PendingEvents() int { return len(e.events) }

// Run executes events until the heap is empty. It returns the final clock
// value. Run panics if processes remain blocked with no pending events
// (a modeling deadlock).
func (e *Engine) Run() float64 {
	for len(e.events) > 0 {
		ev := e.heapPop()
		e.now = ev.time
		if fn := ev.fn; fn != nil {
			e.recycle(ev)
			fn()
			continue
		}
		proc := ev.proc
		e.recycle(ev)
		proc.resume <- struct{}{}
		<-e.ctl
	}
	if e.nprocs > 0 {
		panic(fmt.Sprintf("des: deadlock: %d process(es) blocked with no pending events", e.nprocs))
	}
	return e.now
}

// Future is a one-shot completion signal that processes can Await.
type Future struct {
	eng     *Engine
	done    bool
	waiters []*Proc
}

// NewFuture creates an incomplete future.
func (e *Engine) NewFuture() *Future { return &Future{eng: e} }

// Done reports whether the future has completed.
func (f *Future) Done() bool { return f.done }

// Complete marks the future done and wakes all waiters at the current
// time. Completing twice panics: it indicates a modeling bug.
func (f *Future) Complete() {
	if f.done {
		panic("des: Future completed twice")
	}
	f.done = true
	for _, w := range f.waiters {
		f.eng.schedule(f.eng.now, w, nil)
	}
	f.waiters = nil
}

// Await blocks the process until the future completes. Returns immediately
// if it already has.
func (p *Proc) Await(f *Future) {
	if f.done {
		return
	}
	f.waiters = append(f.waiters, p)
	p.yield()
}

// Resource is a FIFO counting resource (capacity units). Processes Acquire
// and Release units; waiters are served in arrival order. It models e.g. a
// metadata server (capacity 1) or a bounded set of I/O tokens.
type Resource struct {
	eng      *Engine
	capacity int
	inUse    int
	waiters  []resWaiter
	// Busy accounting for utilization reports.
	busySince float64
	busyTotal float64
}

type resWaiter struct {
	proc *Proc
	n    int
}

// NewResource creates a resource with the given capacity (> 0).
func (e *Engine) NewResource(capacity int) *Resource {
	if capacity <= 0 {
		panic("des: resource capacity must be positive")
	}
	return &Resource{eng: e, capacity: capacity}
}

// Available returns the number of free units.
func (r *Resource) Available() int { return r.capacity - r.inUse }

// QueueLen returns the number of waiting processes.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Acquire blocks until n units are available and takes them. FIFO: a
// request never overtakes an earlier one even if fewer units would fit.
func (p *Proc) Acquire(r *Resource, n int) {
	if n <= 0 || n > r.capacity {
		panic(fmt.Sprintf("des: Acquire(%d) on resource of capacity %d", n, r.capacity))
	}
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.take(n)
		return
	}
	r.waiters = append(r.waiters, resWaiter{proc: p, n: n})
	p.yield()
}

func (r *Resource) take(n int) {
	if r.inUse == 0 {
		r.busySince = r.eng.now
	}
	r.inUse += n
}

// Release returns n units and grants queued requests in FIFO order.
// It may be called from a process or an engine callback.
func (r *Resource) Release(n int) {
	if n <= 0 || n > r.inUse {
		panic(fmt.Sprintf("des: Release(%d) with %d in use", n, r.inUse))
	}
	r.inUse -= n
	if r.inUse == 0 {
		r.busyTotal += r.eng.now - r.busySince
	}
	for len(r.waiters) > 0 && r.inUse+r.waiters[0].n <= r.capacity {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.take(w.n)
		r.eng.schedule(r.eng.now, w.proc, nil)
	}
}

// BusyTime returns the total virtual time during which at least one unit
// was in use. If the resource is currently busy the open interval is
// included.
func (r *Resource) BusyTime() float64 {
	t := r.busyTotal
	if r.inUse > 0 {
		t += r.eng.now - r.busySince
	}
	return t
}

// Barrier is a reusable synchronization barrier for a fixed number of
// parties, used by the collective-I/O model's rounds.
type Barrier struct {
	eng     *Engine
	parties int
	arrived int
	gen     int
	waiters []*Proc
}

// NewBarrier creates a barrier for the given number of parties (> 0).
func (e *Engine) NewBarrier(parties int) *Barrier {
	if parties <= 0 {
		panic("des: barrier parties must be positive")
	}
	return &Barrier{eng: e, parties: parties}
}

// Arrive blocks until all parties have arrived, then releases everyone and
// resets for the next generation.
func (p *Proc) Arrive(b *Barrier) {
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		b.gen++
		for _, w := range b.waiters {
			b.eng.schedule(b.eng.now, w, nil)
		}
		b.waiters = nil
		return
	}
	b.waiters = append(b.waiters, p)
	p.yield()
}
