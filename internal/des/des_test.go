package des

import (
	"sort"
	"testing"
)

func TestClockAdvances(t *testing.T) {
	e := NewEngine()
	var at []float64
	e.Spawn("p", func(p *Proc) {
		p.Wait(1.5)
		at = append(at, p.Now())
		p.Wait(2.5)
		at = append(at, p.Now())
	})
	end := e.Run()
	if end != 4 {
		t.Fatalf("final clock = %v, want 4", end)
	}
	if len(at) != 2 || at[0] != 1.5 || at[1] != 4 {
		t.Fatalf("observed times %v", at)
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var order []string
		for i := 0; i < 5; i++ {
			name := string(rune('a' + i))
			e.Spawn(name, func(p *Proc) {
				p.Wait(1)
				order = append(order, p.Name())
				p.Wait(1)
				order = append(order, p.Name())
			})
		}
		e.Run()
		return order
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); len(got) != len(first) {
			t.Fatal("nondeterministic length")
		} else {
			for j := range got {
				if got[j] != first[j] {
					t.Fatalf("run differs at %d: %v vs %v", j, got, first)
				}
			}
		}
	}
	// Equal-time events must fire in spawn (FIFO) order.
	want := []string{"a", "b", "c", "d", "e", "a", "b", "c", "d", "e"}
	for i, w := range want {
		if first[i] != w {
			t.Fatalf("order = %v, want %v", first, want)
		}
	}
}

func TestSpawnAt(t *testing.T) {
	e := NewEngine()
	var started float64 = -1
	e.SpawnAt(10, "late", func(p *Proc) { started = p.Now() })
	e.Run()
	if started != 10 {
		t.Fatalf("SpawnAt started at %v", started)
	}
}

func TestCallbacksAndTimers(t *testing.T) {
	e := NewEngine()
	fired := []float64{}
	e.At(3, func() { fired = append(fired, e.Now()) })
	tm := e.At(5, func() { t.Fatal("canceled timer fired") })
	e.At(1, func() {
		fired = append(fired, e.Now())
		tm.Cancel()
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 3 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestAfter(t *testing.T) {
	e := NewEngine()
	var at float64
	e.At(2, func() {
		e.After(3, func() { at = e.Now() })
	})
	e.Run()
	if at != 5 {
		t.Fatalf("After fired at %v, want 5", at)
	}
}

func TestFuture(t *testing.T) {
	e := NewEngine()
	f := e.NewFuture()
	var woke []float64
	for i := 0; i < 3; i++ {
		e.Spawn("w", func(p *Proc) {
			p.Await(f)
			woke = append(woke, p.Now())
		})
	}
	e.At(7, f.Complete)
	e.Run()
	if len(woke) != 3 {
		t.Fatalf("woke %d waiters", len(woke))
	}
	for _, w := range woke {
		if w != 7 {
			t.Fatalf("waiter woke at %v", w)
		}
	}
	// Await on a done future returns immediately.
	e2 := NewEngine()
	f2 := e2.NewFuture()
	f2.Complete()
	var ok bool
	e2.Spawn("w", func(p *Proc) { p.Await(f2); ok = p.Now() == 0 })
	e2.Run()
	if !ok {
		t.Fatal("Await on completed future did not return immediately")
	}
}

func TestFutureDoubleCompletePanics(t *testing.T) {
	e := NewEngine()
	f := e.NewFuture()
	f.Complete()
	defer func() {
		if recover() == nil {
			t.Fatal("double Complete did not panic")
		}
	}()
	f.Complete()
}

func TestResourceFIFO(t *testing.T) {
	e := NewEngine()
	r := e.NewResource(1)
	var order []string
	hold := func(name string, start, dur float64) {
		e.SpawnAt(start, name, func(p *Proc) {
			p.Acquire(r, 1)
			order = append(order, name+"+")
			p.Wait(dur)
			r.Release(1)
			order = append(order, name+"-")
		})
	}
	hold("a", 0, 5)
	hold("b", 1, 1)
	hold("c", 2, 1)
	e.Run()
	want := []string{"a+", "a-", "b+", "b-", "c+", "c-"}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestResourceCapacityNeverExceeded(t *testing.T) {
	e := NewEngine()
	r := e.NewResource(3)
	inUse, maxInUse := 0, 0
	for i := 0; i < 20; i++ {
		e.Spawn("p", func(p *Proc) {
			p.Acquire(r, 1)
			inUse++
			if inUse > maxInUse {
				maxInUse = inUse
			}
			p.Wait(1)
			inUse--
			r.Release(1)
		})
	}
	e.Run()
	if maxInUse != 3 {
		t.Fatalf("max concurrent holders = %d, want 3", maxInUse)
	}
}

func TestResourceBusyTime(t *testing.T) {
	e := NewEngine()
	r := e.NewResource(1)
	e.Spawn("p", func(p *Proc) {
		p.Wait(2)
		p.Acquire(r, 1)
		p.Wait(3)
		r.Release(1)
		p.Wait(4)
	})
	e.Run()
	if r.BusyTime() != 3 {
		t.Fatalf("busy time = %v, want 3", r.BusyTime())
	}
}

func TestResourceMultiUnit(t *testing.T) {
	e := NewEngine()
	r := e.NewResource(2)
	var got []float64
	// First request takes both units for 5s; the 2-unit request queued at
	// t=1 must not be overtaken by the 1-unit request queued at t=2 (FIFO).
	e.SpawnAt(0, "big", func(p *Proc) {
		p.Acquire(r, 2)
		p.Wait(5)
		r.Release(2)
	})
	e.SpawnAt(1, "two", func(p *Proc) {
		p.Acquire(r, 2)
		got = append(got, p.Now())
		r.Release(2)
	})
	e.SpawnAt(2, "one", func(p *Proc) {
		p.Acquire(r, 1)
		got = append(got, p.Now())
		r.Release(1)
	})
	e.Run()
	if len(got) != 2 || got[0] != 5 || got[1] != 5 {
		t.Fatalf("grant times = %v, want [5 5]", got)
	}
}

func TestBarrier(t *testing.T) {
	e := NewEngine()
	b := e.NewBarrier(3)
	var released []float64
	starts := []float64{1, 4, 9}
	for _, s := range starts {
		e.SpawnAt(s, "p", func(p *Proc) {
			p.Arrive(b)
			released = append(released, p.Now())
		})
	}
	e.Run()
	if len(released) != 3 {
		t.Fatalf("released %d", len(released))
	}
	for _, r := range released {
		if r != 9 {
			t.Fatalf("released at %v, want 9 (last arrival)", r)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	e := NewEngine()
	b := e.NewBarrier(2)
	count := 0
	for i := 0; i < 2; i++ {
		e.Spawn("p", func(p *Proc) {
			for round := 0; round < 3; round++ {
				p.Wait(1)
				p.Arrive(b)
				count++
			}
		})
	}
	e.Run()
	if count != 6 {
		t.Fatalf("barrier rounds completed = %d, want 6", count)
	}
}

func TestTimeMonotone(t *testing.T) {
	e := NewEngine()
	var times []float64
	for i := 0; i < 50; i++ {
		d := float64((i * 7) % 13)
		e.Spawn("p", func(p *Proc) {
			p.Wait(d)
			times = append(times, p.Now())
			p.Wait(d / 2)
			times = append(times, p.Now())
		})
	}
	e.Run()
	if !sort.Float64sAreSorted(times) {
		t.Fatal("event execution times are not monotone")
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	f := e.NewFuture()
	e.Spawn("stuck", func(p *Proc) { p.Await(f) })
	defer func() {
		if recover() == nil {
			t.Fatal("Run did not panic on deadlocked process")
		}
	}()
	e.Run()
}

func TestManyProcessesScale(t *testing.T) {
	e := NewEngine()
	const n = 10000
	done := 0
	for i := 0; i < n; i++ {
		e.Spawn("p", func(p *Proc) {
			p.Wait(1)
			p.Wait(1)
			done++
		})
	}
	e.Run()
	if done != n {
		t.Fatalf("completed %d of %d", done, n)
	}
}

// TestTimerReschedule checks that Reschedule reorders events in the
// indexed heap: a timer moved earlier overtakes ones booked before it,
// a timer moved later falls behind, and equal-time retimed events fire
// after events already at that instant (retiming goes to the back).
func TestTimerReschedule(t *testing.T) {
	e := NewEngine()
	var order []string
	mk := func(name string, at float64) *Timer {
		return e.At(at, func() { order = append(order, name) })
	}
	a := mk("a", 10)
	mk("b", 20)
	c := mk("c", 30)
	e.At(1, func() {
		if !a.Reschedule(25) { // a: 10 → 25, now after b
			t.Error("Reschedule(a) reported not pending")
		}
		if !c.Reschedule(5) { // c: 30 → 5, now first
			t.Error("Reschedule(c) reported not pending")
		}
	})
	e.Run()
	want := []string{"c", "b", "a"}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
}

// TestTimerRescheduleSameInstant pins the tie-break: a timer retimed
// onto an occupied instant fires after the events already booked there.
func TestTimerRescheduleSameInstant(t *testing.T) {
	e := NewEngine()
	var order []string
	late := e.At(30, func() { order = append(order, "moved") })
	e.At(10, func() { order = append(order, "resident") })
	e.At(1, func() { late.Reschedule(10) })
	e.Run()
	if len(order) != 2 || order[0] != "resident" || order[1] != "moved" {
		t.Fatalf("order = %v, want [resident moved]", order)
	}
}

// TestTimerCancelLifecycle walks a timer's state machine: pending →
// canceled is reported exactly once, and fired/canceled timers refuse
// Cancel and Reschedule.
func TestTimerCancelLifecycle(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.At(5, func() { fired = true })
	e.At(1, func() {
		if !tm.Pending() {
			t.Error("timer not pending before cancel")
		}
		if !tm.Cancel() {
			t.Error("first Cancel returned false")
		}
		if tm.Cancel() {
			t.Error("second Cancel returned true")
		}
		if tm.Reschedule(9) {
			t.Error("Reschedule on canceled timer returned true")
		}
		if tm.Pending() {
			t.Error("timer still pending after cancel")
		}
	})
	done := e.At(2, func() {})
	e.Run()
	if fired {
		t.Fatal("canceled timer fired")
	}
	if done.Cancel() || done.Reschedule(99) || done.Pending() {
		t.Fatal("fired timer accepted Cancel/Reschedule")
	}
	var nilTimer *Timer
	if nilTimer.Cancel() || nilTimer.Pending() || (&Timer{}).Cancel() {
		t.Fatal("nil/zero Timer not inert")
	}
}

// TestTimerChurnOrdering stresses the indexed heap with a deterministic
// cancel/reschedule churn and verifies every surviving event fires in
// nondecreasing time order at its final booked time.
func TestTimerChurnOrdering(t *testing.T) {
	e := NewEngine()
	const n = 500
	type booked struct {
		tm   *Timer
		at   float64
		dead bool
	}
	var (
		evs      []*booked
		firedAt  []float64
		expected int
	)
	for i := 0; i < n; i++ {
		at := float64(100 + (i*37)%400)
		b := &booked{at: at}
		b.tm = e.At(at, func() { firedAt = append(firedAt, e.Now()) })
		evs = append(evs, b)
	}
	// Deterministic churn at t=1: cancel every third, retime every
	// fifth survivor (pseudo-random but seed-free offsets).
	e.At(1, func() {
		for i, b := range evs {
			switch {
			case i%3 == 0:
				b.tm.Cancel()
				b.dead = true
			case i%5 == 0:
				at := float64(50 + (i*73)%500)
				b.tm.Reschedule(at)
				b.at = at
			}
		}
	})
	e.Run()
	for _, b := range evs {
		if !b.dead {
			expected++
		}
	}
	if len(firedAt) != expected {
		t.Fatalf("fired %d events, want %d", len(firedAt), expected)
	}
	if !sort.Float64sAreSorted(firedAt) {
		t.Fatal("churned events fired out of time order")
	}
}

func BenchmarkEventThroughput(b *testing.B) {
	e := NewEngine()
	for i := 0; i < 100; i++ {
		e.Spawn("p", func(p *Proc) {
			for j := 0; j < b.N/100+1; j++ {
				p.Wait(1)
			}
		})
	}
	b.ResetTimer()
	e.Run()
}

// BenchmarkTimerDispatch measures the engine's pure event dispatch:
// closure events (no process handoff) booked and fired through the
// indexed heap and event freelist.
func BenchmarkTimerDispatch(b *testing.B) {
	e := NewEngine()
	fired := 0
	e.Spawn("driver", func(p *Proc) {
		var tick func()
		tick = func() {
			if fired++; fired < b.N {
				e.At(e.Now()+1, tick)
			}
		}
		e.At(e.Now()+1, tick)
	})
	b.ResetTimer()
	e.Run()
	if fired != b.N && b.N > 0 {
		b.Fatalf("fired %d of %d", fired, b.N)
	}
}

// BenchmarkTimerCancel measures the indexed heap's structural removal:
// every booked timer is canceled before it can fire, the pattern a
// timeout-heavy model generates. The tombstone-scan design this
// replaced paid O(heap) on the next pop; the index makes each cancel
// O(log n).
func BenchmarkTimerCancel(b *testing.B) {
	e := NewEngine()
	e.Spawn("driver", func(p *Proc) {
		const live = 512 // keep a realistic heap depth under the churn
		timers := make([]*Timer, 0, live)
		for i := 0; i < b.N; i++ {
			if len(timers) == live {
				timers[i%live].Cancel()
				timers[i%live] = e.At(e.Now()+float64(live+i%live), func() {})
			} else {
				timers = append(timers, e.At(e.Now()+float64(live+i), func() {}))
			}
		}
		for _, t := range timers {
			t.Cancel()
		}
	})
	b.ResetTimer()
	e.Run()
}
